// Top-level benchmark harness: one benchmark per reproduced paper
// artifact (experiments E1–E21; see DESIGN.md §4 and EXPERIMENTS.md) plus
// micro-benchmarks for the substrates they exercise. Run with
//
//	go test -bench=. -benchmem
//
// scripts/bench.sh runs the quick substrate suite and records a
// BENCH_<date>.json snapshot for cross-PR trajectory comparison.
package netdesign_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"netdesign/internal/broadcast"
	"netdesign/internal/experiments"
	"netdesign/internal/gadgets"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
	"netdesign/internal/loadgen"
	"netdesign/internal/multicast"
	"netdesign/internal/reductions"
	"netdesign/internal/serve"
	"netdesign/internal/serve/wire"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
	"netdesign/internal/sweep"
	"netdesign/internal/weighted"
)

// quickCfg keeps experiment benchmarks at quick-sweep sizes.
var quickCfg = experiments.Config{Seed: 1, Quick: true}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(quickCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkE1_SNELPFormulations(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2_BypassGadget(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3_BinPackReduction(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_ISReduction(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_Theorem6(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE5b_Figure4(b *testing.B)          { benchExperiment(b, "E5b") }
func BenchmarkE6_CycleLowerBound(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7_SATReduction(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8_AONLowerBound(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9_PriceOfStability(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10_IntegralityGap(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11_WaterFill(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12_AONConjecture(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13_Coalitions(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14_ApproxTradeoff(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15_Multicast(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16_Weighted(b *testing.B)         { benchExperiment(b, "E16") }

func BenchmarkFullSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(quickCfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSuiteParallel runs the same registry fanned out over the
// worker pool (one worker per CPU) — the cmd/experiments -parallel path.
func BenchmarkFullSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAllParallel(quickCfg, io.Discard, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func randomState(b *testing.B, n int) *broadcast.State {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(rng, n, 0.1, 0.5, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		b.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchGraph returns a random connected graph with m ≈ n(n−1)p/2 extra
// edges; p shrinks with n so the large-n variants stay sparse (m = Θ(n)).
func benchGraph(n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(3))
	return graph.RandomConnected(rng, n, p, 0.5, 3)
}

func benchMSTKruskal(b *testing.B, n int, p float64) {
	b.Helper()
	g := benchGraph(n, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.MST(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSTKruskal400(b *testing.B)  { benchMSTKruskal(b, 400, 0.05) }
func BenchmarkMSTKruskal2000(b *testing.B) { benchMSTKruskal(b, 2000, 0.01) }
func BenchmarkMSTKruskal5000(b *testing.B) { benchMSTKruskal(b, 5000, 0.004) }

func benchDijkstra(b *testing.B, n int, p float64) {
	b.Helper()
	g := benchGraph(n, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Dijkstra(g, 0, nil)
	}
}

func BenchmarkDijkstra400(b *testing.B)  { benchDijkstra(b, 400, 0.05) }
func BenchmarkDijkstra2000(b *testing.B) { benchDijkstra(b, 2000, 0.01) }
func BenchmarkDijkstra5000(b *testing.B) { benchDijkstra(b, 5000, 0.004) }

// BenchmarkDijkstraScratch400 is the steady-state sweep shape: frozen
// CSR + reused workspace. Must report 0 allocs/op.
func BenchmarkDijkstraScratch400(b *testing.B) {
	g := benchGraph(400, 0.05)
	c := g.Freeze()
	var s graph.Scratch
	s.Dijkstra(c, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Dijkstra(c, 0, nil)
	}
}

func BenchmarkMSTPrim400(b *testing.B) {
	g := benchGraph(400, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.MSTPrim(g); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEquilibriumCheck(b *testing.B, n int) {
	b.Helper()
	st := randomState(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(nil)
	}
}

func BenchmarkEquilibriumCheck200(b *testing.B)  { benchEquilibriumCheck(b, 200) }
func BenchmarkEquilibriumCheck2000(b *testing.B) { benchEquilibriumCheck(b, 2000) }

// BenchmarkLCA400 isolates the O(1) Euler-tour query on a frozen tree.
func BenchmarkLCA400(b *testing.B) {
	g := benchGraph(400, 0.05)
	mst, err := graph.MST(g)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := graph.NewRootedTree(g, 0, mst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LCA(i%400, (i*7+3)%400)
	}
}

func BenchmarkBroadcastLP64(b *testing.B) {
	st, err := gadgets.CycleInstance(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveBroadcastLP(st); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastLPDense64 is the dense two-phase tableau oracle on
// the same instance: the baseline the sparse revised simplex replaced.
func BenchmarkBroadcastLPDense64(b *testing.B) {
	st, err := gadgets.CycleInstance(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveBroadcastLPNaive(st); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRowGenState expands the E1/E11 random broadcast family into the
// general game the row-generation solver consumes.
func benchRowGenState(b *testing.B, n int) *game.State {
	b.Helper()
	st := randomState(b, n)
	_, gst, err := st.ToGeneral(1000)
	if err != nil {
		b.Fatal(err)
	}
	return gst
}

// BenchmarkRowGen40 runs the full warm-started constraint-generation
// loop (Dijkstra separation + AddRow + ResolveFrom per round) on the
// E1/E11 instance family. PR 3 rebuilt and re-solved a dense tableau
// every round; the revised simplex re-solves from the incumbent basis.
func BenchmarkRowGen40(b *testing.B) {
	gst := benchRowGenState(b, 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveRowGeneration(gst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowGen100(b *testing.B) {
	gst := benchRowGenState(b, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveRowGeneration(gst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowGen200 is the thousands-of-rows regime the sparse-LU +
// devex kernel targets: n=200 states generate hundreds of cuts and the
// basis grows far past the dense-LU comfort zone.
func BenchmarkRowGen200(b *testing.B) {
	gst := benchRowGenState(b, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveRowGeneration(gst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowGen400 doubles the player count past the separation
// oracle's resume gate: here the cursor scan and the warm-started LP
// re-solves carry essentially all of the round cost.
func BenchmarkRowGen400(b *testing.B) {
	gst := benchRowGenState(b, 400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveRowGeneration(gst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// sneLPJitterFamily prebuilds the E22 jitter family exactly as the
// sne-lp scenario's jitter mode does: one base graph, every non-tree
// edge rescaled upward per instance, so the whole family shares one
// built tree and the LPs differ only in their right-hand sides.
func sneLPJitterFamily(b *testing.B, count, n int) []*broadcast.State {
	b.Helper()
	base := graph.RandomConnected(rand.New(rand.NewSource(9)), n, 0.12, 0.5, 3)
	mst, err := graph.MST(base)
	if err != nil {
		b.Fatal(err)
	}
	onTree := make([]bool, base.M())
	for _, id := range mst {
		onTree[id] = true
	}
	sts := make([]*broadcast.State, 0, count)
	for i := 0; i < count; i++ {
		g := base.Clone()
		rng := rand.New(rand.NewSource(int64(i + 1)))
		for id := 0; id < g.M(); id++ {
			if !onTree[id] {
				g.SetWeight(id, g.Weight(id)*(1+0.25*rng.Float64()))
			}
		}
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			b.Fatal(err)
		}
		tree, err := bg.MST()
		if err != nil {
			b.Fatal(err)
		}
		st, err := broadcast.NewState(bg, tree)
		if err != nil {
			b.Fatal(err)
		}
		sts = append(sts, st)
	}
	return sts
}

// BenchmarkSweepSNELPCold solves every instance of the E22 jitter family
// from scratch: the per-instance cold baseline the warm chain is held
// against.
func BenchmarkSweepSNELPCold(b *testing.B) {
	sts := sneLPJitterFamily(b, 32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, st := range sts {
			if _, err := sne.SolveBroadcastLP(st); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSweepSNELPWarm chains the same family through cross-instance
// basis homotopy (lp.Basis handed instance to instance) — the sne-lp
// scenario's warm=1 solve path.
func BenchmarkSweepSNELPWarm(b *testing.B) {
	sts := sneLPJitterFamily(b, 32, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chain := sne.NewBroadcastLPChain()
		for _, st := range sts {
			if _, err := chain.Solve(st); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchSweepSNELPTable runs the whole scenario end to end (instance
// construction included) through the sweep engine.
func benchSweepSNELPTable(b *testing.B, warm bool) {
	b.Helper()
	params := map[string]float64{"jitter": 0.25, "p": 0.12}
	if warm {
		params["warm"] = 1
	}
	spec := sweep.Spec{Scenario: "sne-lp", Seed: 9, Count: 32, Size: 128, Params: params}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.RunTable(spec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepSNELPTableCold(b *testing.B) { benchSweepSNELPTable(b, false) }
func BenchmarkSweepSNELPTableWarm(b *testing.B) { benchSweepSNELPTable(b, true) }

// --- sned daemon load benchmarks (PR 8) ---

// serveBenchBodies serializes the E22 jitter family into ready-to-POST
// /v1/sne request bodies — the nearby-instance query stream a long-lived
// daemon sees.
func serveBenchBodies(b *testing.B, count, n int) [][]byte {
	b.Helper()
	sts := sneLPJitterFamily(b, count, n)
	bodies := make([][]byte, len(sts))
	for i, st := range sts {
		var buf bytes.Buffer
		if err := instancefile.Write(&buf, &instancefile.Instance{Game: st.BG, Tree: st.Tree.EdgeIDs}); err != nil {
			b.Fatal(err)
		}
		raw, err := json.Marshal(map[string]string{"instance": buf.String()})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}
	return bodies
}

// benchServeSNE drives the full server path — HTTP round trip, JSON
// decode, instance parse, LP solve, JSON encode — over the jitter stream.
// cacheCap < 0 disables the basis cache (every solve cold); the warm
// variant hits the fingerprint-keyed cache on all but the first instance.
func benchServeSNE(b *testing.B, cacheCap int) {
	b.Helper()
	bodies := serveBenchBodies(b, 32, 192)
	s := serve.New(serve.Config{CacheCap: cacheCap})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, body := range bodies {
			resp, err := client.Post(ts.URL+"/v1/sne", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
	}
}

func BenchmarkServeSNECold(b *testing.B) { benchServeSNE(b, -1) }
func BenchmarkServeSNEWarm(b *testing.B) { benchServeSNE(b, 512) }

// serveBenchFrames serializes the same jitter family into /v2/sne binary
// frames — the compact-protocol twin of serveBenchBodies.
func serveBenchFrames(b *testing.B, count, n int) [][]byte {
	b.Helper()
	sts := sneLPJitterFamily(b, count, n)
	frames := make([][]byte, len(sts))
	for i, st := range sts {
		inst := &instancefile.Instance{Game: st.BG, Tree: st.Tree.EdgeIDs}
		frames[i] = wire.AppendFrame(nil, wire.AppendSNERequest(nil, inst, wire.MethodLP))
	}
	return frames
}

// benchServeSNEBin drives the binary server path — HTTP round trip,
// frame decode through pooled scratch, LP solve, frame encode — over the
// same jitter stream benchServeSNE posts as JSON. The allocs/op gap
// between the two is the point of the /v2 protocol.
func benchServeSNEBin(b *testing.B, cacheCap int) {
	b.Helper()
	frames := serveBenchFrames(b, 32, 192)
	s := serve.New(serve.Config{CacheCap: cacheCap})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, frame := range frames {
			resp, err := client.Post(ts.URL+"/v2/sne", "application/octet-stream", bytes.NewReader(frame))
			if err != nil {
				b.Fatal(err)
			}
			raw, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != 200 || len(raw) < 5 || raw[4] != 0 {
				b.Fatalf("status %d, frame %x", resp.StatusCode, raw[:min(len(raw), 8)])
			}
		}
	}
}

func BenchmarkServeSNEBinCold(b *testing.B) { benchServeSNEBin(b, -1) }
func BenchmarkServeSNEBinWarm(b *testing.B) { benchServeSNEBin(b, 512) }

// benchServeLoad runs the multi-connection load harness against a live
// server: 8 workers over 8 pooled connections, one benchmark op per
// request (frame, when pipelined), so ns/op is the inverse of
// concurrent throughput. The custom req/s and p99-ms metrics land in
// BENCH_<date>.json for cross-PR comparison.
func benchServeLoad(b *testing.B, binary bool, mixKind string, pipeline int) {
	b.Helper()
	path := "/v1/sne"
	if binary {
		path = "/v2/sne"
	}
	bodies, err := loadgen.Bodies(mixKind, binary, 24, 32, 9)
	if err != nil {
		b.Fatal(err)
	}
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	b.ResetTimer()
	res, err := loadgen.Run(loadgen.Config{
		URL:       ts.URL + path,
		Binary:    binary,
		Bodies:    bodies,
		Workers:   8,
		Conns:     8,
		Total:     b.N,
		Duration:  10 * time.Minute, // the request budget is the bound
		DecodeSNE: true,             // charge each protocol its client-side decode
		Pipeline:  pipeline,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d of %d requests failed", res.Errors, res.Requests)
	}
	b.ReportMetric(res.ReqPerSec, "req/s")
	b.ReportMetric(float64(res.P99.Nanoseconds())/1e6, "p99-ms")
}

func BenchmarkServeLoadJSONJitter(b *testing.B) { benchServeLoad(b, false, loadgen.MixJitter, 1) }
func BenchmarkServeLoadBinJitter(b *testing.B)  { benchServeLoad(b, true, loadgen.MixJitter, 1) }
func BenchmarkServeLoadBinAdversarial(b *testing.B) {
	benchServeLoad(b, true, loadgen.MixAdversarial, 1)
}
func BenchmarkServeLoadBinMixed(b *testing.B) { benchServeLoad(b, true, loadgen.MixMixed, 1) }

// BenchmarkServeLoadBinPipelined is the binary protocol at pipeline
// depth 8: the length-prefixed framing lets one HTTP round trip carry
// eight solves, amortizing the per-request HTTP machinery both
// protocols otherwise pay per solve.
func BenchmarkServeLoadBinPipelined(b *testing.B) { benchServeLoad(b, true, loadgen.MixJitter, 8) }

// BenchmarkWilsonUST400 samples a uniform spanning tree on the sweep-
// scale random graph (the pos-swap start diversifier).
func BenchmarkWilsonUST400(b *testing.B) {
	g := benchGraph(400, 0.05)
	rng := rand.New(rand.NewSource(31))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.WilsonUST(g, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem6Enforce200(b *testing.B) {
	st := randomState(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := subsidy.Enforce(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAONExactPath18(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanningTreeEnum(b *testing.B) {
	g := graph.Complete(7, func(i, j int) float64 { return 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.CountSpanningTrees(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSATGadgetBuildAndCheck(b *testing.B) {
	f := &reductions.Formula{NumVars: 5, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
		{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg, err := gadgets.BuildSAT(f, nil)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sg.State()
		if err != nil {
			b.Fatal(err)
		}
		if !st.IsEquilibrium(sg.SubsidyForAssignment([]bool{true, true, true, true, true})) {
			b.Fatal("gadget broken")
		}
	}
}

func BenchmarkExactRationalCheck(b *testing.B) {
	f := &reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	sg, err := gadgets.BuildSAT(f, nil)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sg.State()
	if err != nil {
		b.Fatal(err)
	}
	sub := sg.SubsidyForAssignment([]bool{true, false, true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(sub)
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationAONHeaviestFirst vs ...LightestFirst measure the
// effect of the branch-and-bound edge ordering on the Theorem-21 path,
// where weights are maximally skewed (one unit edge among ~x-weight ones).
func BenchmarkAblationAONHeaviestFirst(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAONLightestFirst(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{LightestFirst: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWaterFillVsLP contrasts the combinatorial heuristic
// with the simplex-based optimum on the same instance.
func BenchmarkAblationWaterFill(b *testing.B) {
	st, err := gadgets.CycleInstance(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.WaterFill(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17_ParetoFrontier(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18_DirectedHn(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19_Arrival(b *testing.B)    { benchExperiment(b, "E19") }

func BenchmarkE20_SwapPoS(b *testing.B)      { benchExperiment(b, "E20") }
func BenchmarkE21_EnforceSweep(b *testing.B) { benchExperiment(b, "E21") }
func BenchmarkE22_SNELPSweep(b *testing.B)   { benchExperiment(b, "E22") }

// --- incremental swap engine vs rebuild (PR 2) ---

// benchSwapPairs returns a warmed broadcast MST state plus k valid
// (remove, add) swap pairs against its tree.
func benchSwapPairs(b *testing.B, n, k int) (*broadcast.State, [][2]int) {
	b.Helper()
	st := randomState(b, n)
	rng := rand.New(rand.NewSource(17))
	g := st.BG.G
	var nonTree []int
	for id := 0; id < g.M(); id++ {
		if !st.Tree.Contains(id) {
			nonTree = append(nonTree, id)
		}
	}
	var pairs [][2]int
	for len(pairs) < k && len(nonTree) > 0 {
		add := nonTree[rng.Intn(len(nonTree))]
		e := g.Edge(add)
		cycle := st.Tree.TreePath(e.U, e.V)
		pairs = append(pairs, [2]int{cycle[rng.Intn(len(cycle))], add})
	}
	if len(pairs) == 0 {
		b.Skip("no valid swaps")
	}
	return st, pairs
}

// benchSwapUpdate measures the incremental candidate-state update:
// ApplySwap patches the tree, NA and the warm Lemma-2 sums; Revert
// restores them. Steady state must be 0 allocs/op.
func benchSwapUpdate(b *testing.B, n int) {
	st, pairs := benchSwapPairs(b, n, 64)
	st.IsEquilibrium(nil) // warm the prefix-sum cache
	if err := st.ApplySwap(pairs[0][0], pairs[0][1]); err != nil {
		b.Fatal(err)
	}
	st.Revert()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i%len(pairs)]
		if err := st.ApplySwap(pr[0], pr[1]); err != nil {
			b.Fatal(err)
		}
		st.Revert()
	}
}

func BenchmarkSwapUpdate400(b *testing.B)  { benchSwapUpdate(b, 400) }
func BenchmarkSwapUpdate2000(b *testing.B) { benchSwapUpdate(b, 2000) }

// benchSwapRebuild is the baseline the swap engine replaces: a full
// NewRootedTree + NewState rebuild per candidate tree (the rebuild does
// strictly less — it leaves the Lemma-2 sums cold, which ApplySwap
// patches warm).
func benchSwapRebuild(b *testing.B, n int) {
	st, pairs := benchSwapPairs(b, n, 64)
	trees := make([][]int, len(pairs))
	for i, pr := range pairs {
		tr := append([]int(nil), st.Tree.EdgeIDs...)
		for j, id := range tr {
			if id == pr[0] {
				tr[j] = pr[1]
				break
			}
		}
		trees[i] = tr
	}
	bg := st.BG
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.NewState(bg, trees[i%len(trees)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSwapRebuild400(b *testing.B)  { benchSwapRebuild(b, 400) }
func BenchmarkSwapRebuild2000(b *testing.B) { benchSwapRebuild(b, 2000) }

// BenchmarkSwapEvalCheck400 is the full candidate evaluation — apply,
// Lemma-2 equilibrium check, revert — against rebuild-and-check.
func BenchmarkSwapEvalCheck400(b *testing.B) {
	st, pairs := benchSwapPairs(b, 400, 64)
	st.IsEquilibrium(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := pairs[i%len(pairs)]
		if err := st.ApplySwap(pr[0], pr[1]); err != nil {
			b.Fatal(err)
		}
		st.IsEquilibrium(nil)
		st.Revert()
	}
}

func BenchmarkSwapRebuildCheck400(b *testing.B) {
	st, pairs := benchSwapPairs(b, 400, 64)
	trees := make([][]int, len(pairs))
	for i, pr := range pairs {
		tr := append([]int(nil), st.Tree.EdgeIDs...)
		for j, id := range tr {
			if id == pr[0] {
				tr[j] = pr[1]
				break
			}
		}
		trees[i] = tr
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, err := broadcast.NewState(st.BG, trees[i%len(trees)])
		if err != nil {
			b.Fatal(err)
		}
		st2.IsEquilibrium(nil)
	}
}

// --- best-response dynamics: incremental walk vs rebuild-per-step ---

func benchDynamicsState(b *testing.B) *game.State {
	b.Helper()
	st := randomState(b, 40)
	_, gst, err := st.ToGeneral(1000)
	if err != nil {
		b.Fatal(err)
	}
	return gst
}

func BenchmarkBestResponseIncremental(b *testing.B) {
	gst := benchDynamicsState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.BestResponseDynamics(gst, nil, game.RoundRobin, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestResponseRebuild(b *testing.B) {
	gst := benchDynamicsState(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := game.BestResponseDynamicsNaive(gst, nil, game.RoundRobin, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwapDynamics100 runs the broadcast-native tree-swap descent
// (Lemma-2 violations applied as incremental swaps).
func BenchmarkSwapDynamics100(b *testing.B) {
	st := randomState(b, 100)
	mst := append([]int(nil), st.Tree.EdgeIDs...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		run, err := broadcast.NewState(st.BG, mst)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := broadcast.SwapDynamics(run, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- weighted/multicast fast paths (PR 2 port) ---

func benchWeightedState(b *testing.B, n, players int) *weighted.State {
	b.Helper()
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(rng, n, 0.05, 0.5, 3)
	pls := make([]weighted.Player, players)
	paths := make([][]int, players)
	for i := range pls {
		s := rng.Intn(n)
		d := rng.Intn(n)
		for d == s {
			d = rng.Intn(n)
		}
		pls[i] = weighted.Player{S: s, T: d, Demand: 0.5 + rng.Float64()*2}
		paths[i] = graph.Dijkstra(g, s, nil).PathTo(d)
	}
	wg, err := weighted.New(g, pls)
	if err != nil {
		b.Fatal(err)
	}
	st, err := weighted.NewState(wg, paths)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

func BenchmarkWeightedBestResponse400(b *testing.B) {
	st := benchWeightedState(b, 400, 8)
	st.BestResponse(0, nil) // warm scratch + freeze
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.BestResponse(i%8, nil)
	}
}

func BenchmarkWeightedBestResponseNaive400(b *testing.B) {
	st := benchWeightedState(b, 400, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.BestResponseNaive(i%8, nil)
	}
}

func BenchmarkSteinerTree(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	g := graph.RandomConnected(rng, 40, 0.15, 0.5, 3)
	terms := []int{0, 7, 13, 21, 30, 38}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := multicast.SteinerTree(g, terms); err != nil {
			b.Fatal(err)
		}
	}
}

// --- AnalyzeTrees: swap walk vs rebuild per tree ---

func benchAnalyzeGame(b *testing.B) *broadcast.Game {
	b.Helper()
	rng := rand.New(rand.NewSource(41))
	g := graph.RandomConnected(rng, 8, 0.6, 0.5, 2)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	return bg
}

func BenchmarkAnalyzeTreesSwapWalk(b *testing.B) {
	bg := benchAnalyzeGame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.AnalyzeTrees(bg, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeTreesRebuild(b *testing.B) {
	bg := benchAnalyzeGame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := broadcast.AnalyzeTreesNaive(bg, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sweep engine: dispatch, checkpoint codec, shard/resume I/O ---

// benchNoop isolates engine dispatch: a registered scenario whose
// per-instance work is free.
var benchNoopOnce sync.Once

func benchNoopSpec(count int) sweep.Spec {
	benchNoopOnce.Do(func() {
		sweep.Register(&sweep.Scenario{
			Name:    "bench-noop",
			TableID: "B0",
			Title:   "bench dispatch probe",
			Headers: []string{"-"},
			Run: func(spec sweep.Spec, idx int, rng *rand.Rand) (sweep.Record, error) {
				return sweep.Record{}, nil
			},
		})
	})
	return sweep.Spec{Scenario: "bench-noop", Seed: 9, Count: count}
}

func benchEnforceSpec(count int) sweep.Spec {
	return sweep.Spec{Scenario: "enforce", Seed: 7, Count: count, Size: 10, Params: map[string]float64{"spread": 4}}
}

// BenchmarkSweepDispatch256: per-instance engine overhead alone (256
// no-op instances through the full RunTable path).
func BenchmarkSweepDispatch256(b *testing.B) {
	spec := benchNoopSpec(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.RunTable(spec, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSerialEnforce16: the serial oracle over a real scenario.
func BenchmarkSweepSerialEnforce16(b *testing.B) {
	spec := benchEnforceSpec(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.RunSerial(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSharded4x16: the same family through 4 checkpointed
// shards plus merge — the full distribution-layer overhead.
func BenchmarkSweepSharded4x16(b *testing.B) {
	spec := benchEnforceSpec(16)
	root := b.TempDir()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, strconv.Itoa(i))
		if _, err := sweep.Run(spec, dir, 4, sweep.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepResumeScan: cost of resuming a fully checkpointed shard
// (scan, skip everything, write nothing).
func BenchmarkSweepResumeScan(b *testing.B) {
	spec := benchEnforceSpec(16)
	dir := b.TempDir()
	if _, err := sweep.Run(spec, dir, 1, sweep.Options{Workers: 1}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := sweep.RunShard(spec, dir, 0, 1, sweep.Options{})
		if err != nil || n != 0 {
			b.Fatalf("resume recomputed %d records: %v", n, err)
		}
	}
}

func BenchmarkSweepCheckpointEncode(b *testing.B) {
	rec := sweep.Record{Index: 123, Cells: []string{"24", "31.4159", "0.3679", "true"}, Vals: []float64{0.36787944117144233}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.EncodeRecord(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSweepCheckpointDecode(b *testing.B) {
	line, err := sweep.EncodeRecord(sweep.Record{Index: 123, Cells: []string{"24", "31.4159", "0.3679", "true"}, Vals: []float64{0.36787944117144233}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.DecodeRecord(line); err != nil {
			b.Fatal(err)
		}
	}
}

// --- weighted PNE decision: pruned vs exhaustive product sweep ---

func benchPNEGame(b *testing.B) *weighted.Game {
	// n=7 at this seed: the raw product space takes the naive sweep
	// ~1000× longer than the constraint-propagated search.
	rng := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(rng, 7, 0.5, 0.5, 3)
	players := []weighted.Player{
		{S: 0, T: 6, Demand: 1},
		{S: 1, T: 5, Demand: 2.5},
		{S: 2, T: 6, Demand: 0.7},
	}
	wg, err := weighted.New(g, players)
	if err != nil {
		b.Fatal(err)
	}
	return wg
}

func BenchmarkWeightedPNEPruned(b *testing.B) {
	wg := benchPNEGame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wg.HasPureEquilibrium(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeightedPNENaive(b *testing.B) {
	wg := benchPNEGame(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := wg.HasPureEquilibriumNaive(0); err != nil {
			b.Fatal(err)
		}
	}
}
