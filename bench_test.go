// Top-level benchmark harness: one benchmark per reproduced paper
// artifact (experiments E1–E19; see DESIGN.md §4 and EXPERIMENTS.md) plus
// micro-benchmarks for the substrates they exercise. Run with
//
//	go test -bench=. -benchmem
//
// scripts/bench.sh runs the quick substrate suite and records a
// BENCH_<date>.json snapshot for cross-PR trajectory comparison.
package netdesign_test

import (
	"io"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/experiments"
	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/reductions"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// quickCfg keeps experiment benchmarks at quick-sweep sizes.
var quickCfg = experiments.Config{Seed: 1, Quick: true}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Get(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(quickCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper artifact ---

func BenchmarkE1_SNELPFormulations(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2_BypassGadget(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3_BinPackReduction(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4_ISReduction(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5_Theorem6(b *testing.B)          { benchExperiment(b, "E5") }
func BenchmarkE5b_Figure4(b *testing.B)          { benchExperiment(b, "E5b") }
func BenchmarkE6_CycleLowerBound(b *testing.B)   { benchExperiment(b, "E6") }
func BenchmarkE7_SATReduction(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8_AONLowerBound(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9_PriceOfStability(b *testing.B)  { benchExperiment(b, "E9") }
func BenchmarkE10_IntegralityGap(b *testing.B)   { benchExperiment(b, "E10") }
func BenchmarkE11_WaterFill(b *testing.B)        { benchExperiment(b, "E11") }
func BenchmarkE12_AONConjecture(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkE13_Coalitions(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14_ApproxTradeoff(b *testing.B)   { benchExperiment(b, "E14") }
func BenchmarkE15_Multicast(b *testing.B)        { benchExperiment(b, "E15") }
func BenchmarkE16_Weighted(b *testing.B)         { benchExperiment(b, "E16") }

func BenchmarkFullSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(quickCfg, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullSuiteParallel runs the same registry fanned out over the
// worker pool (one worker per CPU) — the cmd/experiments -parallel path.
func BenchmarkFullSuiteParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAllParallel(quickCfg, io.Discard, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func randomState(b *testing.B, n int) *broadcast.State {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(rng, n, 0.1, 0.5, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		b.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchGraph returns a random connected graph with m ≈ n(n−1)p/2 extra
// edges; p shrinks with n so the large-n variants stay sparse (m = Θ(n)).
func benchGraph(n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(3))
	return graph.RandomConnected(rng, n, p, 0.5, 3)
}

func benchMSTKruskal(b *testing.B, n int, p float64) {
	b.Helper()
	g := benchGraph(n, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.MST(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMSTKruskal400(b *testing.B)  { benchMSTKruskal(b, 400, 0.05) }
func BenchmarkMSTKruskal2000(b *testing.B) { benchMSTKruskal(b, 2000, 0.01) }
func BenchmarkMSTKruskal5000(b *testing.B) { benchMSTKruskal(b, 5000, 0.004) }

func benchDijkstra(b *testing.B, n int, p float64) {
	b.Helper()
	g := benchGraph(n, p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.Dijkstra(g, 0, nil)
	}
}

func BenchmarkDijkstra400(b *testing.B)  { benchDijkstra(b, 400, 0.05) }
func BenchmarkDijkstra2000(b *testing.B) { benchDijkstra(b, 2000, 0.01) }
func BenchmarkDijkstra5000(b *testing.B) { benchDijkstra(b, 5000, 0.004) }

// BenchmarkDijkstraScratch400 is the steady-state sweep shape: frozen
// CSR + reused workspace. Must report 0 allocs/op.
func BenchmarkDijkstraScratch400(b *testing.B) {
	g := benchGraph(400, 0.05)
	c := g.Freeze()
	var s graph.Scratch
	s.Dijkstra(c, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Dijkstra(c, 0, nil)
	}
}

func BenchmarkMSTPrim400(b *testing.B) {
	g := benchGraph(400, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.MSTPrim(g); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEquilibriumCheck(b *testing.B, n int) {
	b.Helper()
	st := randomState(b, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(nil)
	}
}

func BenchmarkEquilibriumCheck200(b *testing.B)  { benchEquilibriumCheck(b, 200) }
func BenchmarkEquilibriumCheck2000(b *testing.B) { benchEquilibriumCheck(b, 2000) }

// BenchmarkLCA400 isolates the O(1) Euler-tour query on a frozen tree.
func BenchmarkLCA400(b *testing.B) {
	g := benchGraph(400, 0.05)
	mst, err := graph.MST(g)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := graph.NewRootedTree(g, 0, mst)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.LCA(i%400, (i*7+3)%400)
	}
}

func BenchmarkBroadcastLP64(b *testing.B) {
	st, err := gadgets.CycleInstance(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveBroadcastLP(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTheorem6Enforce200(b *testing.B) {
	st := randomState(b, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := subsidy.Enforce(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAONExactPath18(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpanningTreeEnum(b *testing.B) {
	g := graph.Complete(7, func(i, j int) float64 { return 1 })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.CountSpanningTrees(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSATGadgetBuildAndCheck(b *testing.B) {
	f := &reductions.Formula{NumVars: 5, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
		{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg, err := gadgets.BuildSAT(f, nil)
		if err != nil {
			b.Fatal(err)
		}
		st, err := sg.State()
		if err != nil {
			b.Fatal(err)
		}
		if !st.IsEquilibrium(sg.SubsidyForAssignment([]bool{true, true, true, true, true})) {
			b.Fatal("gadget broken")
		}
	}
}

func BenchmarkExactRationalCheck(b *testing.B) {
	f := &reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	sg, err := gadgets.BuildSAT(f, nil)
	if err != nil {
		b.Fatal(err)
	}
	st, err := sg.State()
	if err != nil {
		b.Fatal(err)
	}
	sub := sg.SubsidyForAssignment([]bool{true, false, true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(sub)
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationAONHeaviestFirst vs ...LightestFirst measure the
// effect of the branch-and-bound edge ordering on the Theorem-21 path,
// where weights are maximally skewed (one unit edge among ~x-weight ones).
func BenchmarkAblationAONHeaviestFirst(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAONLightestFirst(b *testing.B) {
	st, err := gadgets.AONPathInstance(18)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.SolveAON(st, sne.AONOptions{LightestFirst: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationWaterFillVsLP contrasts the combinatorial heuristic
// with the simplex-based optimum on the same instance.
func BenchmarkAblationWaterFill(b *testing.B) {
	st, err := gadgets.CycleInstance(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sne.WaterFill(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE17_ParetoFrontier(b *testing.B) { benchExperiment(b, "E17") }

func BenchmarkE18_DirectedHn(b *testing.B) { benchExperiment(b, "E18") }
func BenchmarkE19_Arrival(b *testing.B)    { benchExperiment(b, "E19") }
