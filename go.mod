module netdesign

go 1.24
