package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"netdesign/internal/sweep"
)

// TestMain doubles as the worker-process entry point: when the spawn
// tests re-execute this test binary with SWEEP_WORKER_PROCESS=1, it runs
// realMain on the worker argv instead of the test suite — the standard
// os/exec helper-process pattern, here proving that -spawn really
// executes shards in separate processes.
func TestMain(m *testing.M) {
	if os.Getenv("SWEEP_WORKER_PROCESS") == "1" {
		if err := realMain(os.Args[1:], os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// specArgs is a small, fast sweep family used by every CLI test.
func specArgs() []string {
	return []string{"-scenario", "enforce", "-seed", "11", "-count", "6", "-size", "5", "-param", "spread=3"}
}

func runCLI(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var buf bytes.Buffer
	err := realMain(args, &buf)
	return buf.String(), err
}

func serialOutput(t *testing.T) string {
	t.Helper()
	out, err := runCLI(t, append(specArgs(), "-serial")...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== E21:") {
		t.Fatalf("serial output missing table header:\n%s", out)
	}
	return out
}

func TestRunAndMergeMatchSerial(t *testing.T) {
	want := serialOutput(t)
	dir := t.TempDir()
	out, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "3")...)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("sharded run differs from serial:\n--- serial ---\n%s--- sharded ---\n%s", want, out)
	}
	// -merge re-renders from checkpoints alone; the pinned spec suffices.
	out, err = runCLI(t, "-dir", dir, "-shards", "3", "-merge")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("merge-only differs from serial:\n%s", out)
	}
}

func TestShardWorkerModeAndPinnedSpec(t *testing.T) {
	want := serialOutput(t)
	dir := t.TempDir()
	// Worker processes get the spec from flags once; later ones rely on
	// the pinned spec.sweep.
	if _, err := runCLI(t, append(specArgs(), "-dir", dir, "-shard", "0/2")...); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-dir", dir, "-shard", "1/2"); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-dir", dir, "-shards", "2", "-merge")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("worker-mode shards merge differs from serial:\n%s", out)
	}
}

func TestResumeGuard(t *testing.T) {
	dir := t.TempDir()
	if _, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "2")...); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "2")...); err == nil {
		t.Fatal("restart over non-empty checkpoints accepted without -resume")
	}
	want := serialOutput(t)
	out, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "2", "-resume")...)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("resumed run differs from serial:\n%s", out)
	}
}

// TestKillResumeCLI tears a checkpoint the way a killed writer would and
// resumes through the CLI: the merged table must match the serial oracle
// byte for byte.
func TestKillResumeCLI(t *testing.T) {
	want := serialOutput(t)
	dir := t.TempDir()
	if _, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "2")...); err != nil {
		t.Fatal(err)
	}
	path := sweep.ShardPath(dir, 0, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := runCLI(t, "-dir", dir, "-shards", "2", "-merge"); err == nil {
		t.Fatal("merge of torn run accepted")
	}
	if _, err := runCLI(t, "-dir", dir, "-shards", "2", "-resume"); err != nil {
		t.Fatal(err)
	}
	out, err := runCLI(t, "-dir", dir, "-shards", "2", "-merge")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("CLI kill/resume differs from serial:\n--- serial ---\n%s--- resumed ---\n%s", want, out)
	}
}

// TestSpawnWorkerProcesses exercises -spawn end to end with real child
// processes (the test binary re-entered via TestMain).
func TestSpawnWorkerProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	orig := execCommand
	execCommand = func(name string, args ...string) *exec.Cmd {
		cmd := exec.Command(name, args...)
		cmd.Env = append(os.Environ(), "SWEEP_WORKER_PROCESS=1")
		return cmd
	}
	defer func() { execCommand = orig }()

	want := serialOutput(t)
	dir := t.TempDir()
	out, err := runCLI(t, append(specArgs(), "-dir", dir, "-shards", "3", "-spawn")...)
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("spawned run differs from serial:\n--- serial ---\n%s--- spawned ---\n%s", want, out)
	}
	// All three shard checkpoints exist — each written by its own process.
	for shard := 0; shard < 3; shard++ {
		if _, err := os.Stat(sweep.ShardPath(dir, shard, 3)); err != nil {
			t.Errorf("shard %d checkpoint missing: %v", shard, err)
		}
	}
}

func TestSpecFileAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "fam.sweep")
	if err := os.WriteFile(specPath, []byte("sweep enforce\nseed 11\ncount 6\nsize 5\nparam spread 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	want := serialOutput(t)
	out, err := runCLI(t, "-spec", specPath, "-serial")
	if err != nil {
		t.Fatal(err)
	}
	if out != want {
		t.Errorf("-spec file run differs from flag-built spec:\n%s", out)
	}
	md, err := runCLI(t, "-spec", specPath, "-serial", "-markdown")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "### E21:") || !strings.Contains(md, "| n |") {
		t.Errorf("markdown output malformed:\n%s", md)
	}
}

func TestListScenarios(t *testing.T) {
	out, err := runCLI(t, "-list")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"pos-trees", "pos-swap", "enforce"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list missing scenario %q:\n%s", name, out)
		}
	}
}

func TestFlagErrors(t *testing.T) {
	cases := [][]string{
		{},                               // no spec source
		{"-scenario", "nope", "-serial"}, // unknown scenario (caught at run)
		{"-scenario", "enforce"},         // no -dir and not -serial
		{"-scenario", "enforce", "-dir", "x", "-shard", "2/2"}, // shard out of range
		{"-scenario", "enforce", "-dir", "x", "-shard", "zz"},  // malformed shard
		{"-scenario", "enforce", "-param", "broken", "-serial"},
		{"-merge", "-scenario", "enforce"}, // -merge without -dir
		{"-spec", "/nonexistent/spec"},
	}
	for _, args := range cases {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
