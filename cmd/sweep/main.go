// Command sweep runs sharded, checkpointed scenario sweeps: the
// distribution layer over the per-instance equilibrium engines. A sweep
// is a Spec — a registered scenario plus base seed, instance count and
// size — partitioned round-robin into m shards; every completed instance
// appends one JSONL record to its shard's checkpoint under the run
// directory, and merging the shards reproduces the serial table byte for
// byte (see internal/sweep's differential tests).
//
// Usage:
//
//	sweep -scenario enforce -seed 1 -count 1000 -size 24 -dir run/         # run + merge locally
//	sweep -dir run/ -shard 3/8 -resume                                     # one worker process
//	sweep -dir run/ -shards 8 -spawn                                       # spawn 8 worker processes, merge
//	sweep -dir run/ -shards 8 -merge                                       # merge completed shards only
//	sweep -coordinator http://host:8633                                    # fabric worker: lease shards until done
//	sweep -scenario pos-swap -count 16 -size 40 -serial                    # serial oracle, no files
//	sweep -list                                                            # registered scenarios
//
// With -coordinator the process is a fabric worker (see internal/fabric
// and cmd/sweepd): it acquires shard leases over HTTP, computes through
// the coordinator-served checkpoint store, heartbeats each lease, and
// exits 0 when the coordinator reports the sweep complete. The spec
// comes from the coordinator; no -dir or spec flags are needed.
// -throttle sleeps that long before every instance — a deliberate
// straggler knob the fault-injection smoke tests use to force
// speculative re-execution.
//
// The spec is pinned inside the run directory (spec.sweep), so resumed
// and spawned workers need only -dir. Restarting over a non-empty
// checkpoint requires -resume: completed indices are skipped, a torn
// final line from a killed writer is truncated and recomputed.
//
// Checkpoints are fsynced every -syncevery records (default window; close
// always syncs), so acknowledged records survive host crashes, not just
// process kills. -syncevery -1 disables fsync for throughput experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"netdesign/internal/fabric"
	"netdesign/internal/sweep"
	"netdesign/internal/table"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// paramFlags collects repeatable -param name=value pairs.
type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

// execCommand builds worker subprocesses; tests substitute it to reroute
// spawning through the test binary.
var execCommand = exec.Command

func realMain(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "read the sweep spec from this file")
		scenario = fs.String("scenario", "", "scenario name (builds the spec from flags)")
		seed     = fs.Int64("seed", 1, "base seed (instance i uses a derived seed)")
		count    = fs.Int("count", 8, "number of instances in the family")
		size     = fs.Int("size", 8, "base instance-size parameter")
		params   = paramFlags{}

		dir      = fs.String("dir", "", "run directory for shard checkpoints")
		shards   = fs.Int("shards", 1, "number of shards")
		shardArg = fs.String("shard", "", "run a single shard, formatted i/m (worker mode)")
		workers  = fs.Int("workers", 0, "worker goroutines per shard (0 = one per CPU)")
		syncEv   = fs.Int("syncevery", 0, "fsync the shard checkpoint every N records (0 = default window, <0 disables fsync)")
		resume   = fs.Bool("resume", false, "continue from existing shard checkpoints")
		spawn    = fs.Bool("spawn", false, "execute each shard in a spawned worker process")
		merge    = fs.Bool("merge", false, "merge completed shards and print; run nothing")
		serial   = fs.Bool("serial", false, "run the serial in-process oracle; no checkpoints")
		markdown = fs.Bool("markdown", false, "emit a markdown table")
		list     = fs.Bool("list", false, "list registered scenarios")

		coordinator = fs.String("coordinator", "", "fabric coordinator URL; run as a leased worker until the sweep completes")
		workerID    = fs.String("id", "", "worker label reported to the coordinator (default host-pid)")
		throttle    = fs.Duration("throttle", 0, "sleep this long before each instance (deliberate straggler for fault tests)")
	)
	fs.Var(params, "param", "scenario parameter name=value (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *list {
		for _, name := range sweep.ScenarioNames() {
			sc, _ := sweep.GetScenario(name)
			fmt.Fprintf(stdout, "%-12s %s: %s\n", name, sc.TableID, sc.Title)
		}
		return nil
	}
	if *coordinator != "" {
		// Worker mode takes the spec — and the checkpoint store — from the
		// coordinator; a local spec source would be silently ignored, so
		// refuse it outright.
		if *specPath != "" || *scenario != "" || *dir != "" {
			return fmt.Errorf("-coordinator is exclusive with -spec/-scenario/-dir: the coordinator owns the spec and store")
		}
		return runWorker(*coordinator, *workerID, *workers, *syncEv, *throttle)
	}

	spec, err := resolveSpec(*specPath, *scenario, *seed, *count, *size, params, *dir)
	if err != nil {
		return err
	}

	render := func(tb *table.Table) error {
		if *markdown {
			_, err := io.WriteString(stdout, tb.Markdown())
			return err
		}
		tb.Render(stdout)
		return nil
	}

	switch {
	case *serial:
		tb, err := sweep.RunSerial(spec)
		if err != nil {
			return err
		}
		return render(tb)

	case *merge:
		if *dir == "" {
			return fmt.Errorf("-merge needs -dir")
		}
		tb, err := sweep.Merge(spec, *dir, *shards)
		if err != nil {
			return err
		}
		return render(tb)

	case *shardArg != "": // worker mode: one shard, no merge, quiet stdout
		shard, m, err := parseShard(*shardArg)
		if err != nil {
			return err
		}
		if *dir == "" {
			return fmt.Errorf("-shard needs -dir")
		}
		if err := guardResume(spec, *dir, shard, m, *resume); err != nil {
			return err
		}
		n, err := sweep.RunShard(spec, *dir, shard, m, sweep.Options{Workers: *workers, SyncEvery: *syncEv})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: shard %d/%d: %d new records\n", shard, m, n)
		return nil

	case *spawn:
		if *dir == "" {
			return fmt.Errorf("-spawn needs -dir")
		}
		// Pin the spec first so workers need only -dir.
		if err := sweep.WriteRunSpec(*dir, spec); err != nil {
			return err
		}
		for shard := 0; shard < *shards; shard++ {
			if err := guardResume(spec, *dir, shard, *shards, *resume); err != nil {
				return err
			}
		}
		// All shard processes run at once: an unset -workers must divide
		// the CPUs between them, not hand each one the whole machine.
		perWorker := *workers
		if perWorker <= 0 {
			if perWorker = runtime.NumCPU() / *shards; perWorker < 1 {
				perWorker = 1
			}
		}
		if err := spawnShards(*dir, *shards, perWorker, *syncEv); err != nil {
			return err
		}
		tb, err := sweep.Merge(spec, *dir, *shards)
		if err != nil {
			return err
		}
		return render(tb)

	default: // run every shard in-process, then merge
		if *dir == "" {
			return fmt.Errorf("-dir is required (or use -serial for a checkpoint-free run)")
		}
		for shard := 0; shard < *shards; shard++ {
			if err := guardResume(spec, *dir, shard, *shards, *resume); err != nil {
				return err
			}
		}
		tb, err := sweep.Run(spec, *dir, *shards, sweep.Options{Workers: *workers, SyncEvery: *syncEv})
		if err != nil {
			return err
		}
		return render(tb)
	}
}

// runWorker is fabric worker mode: lease shards from the coordinator and
// compute them through its checkpoint store until the sweep is done.
func runWorker(url, id string, workers, syncEvery int, throttle time.Duration) error {
	if id == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &fabric.Worker{
		Client:  &fabric.Client{URL: strings.TrimSuffix(url, "/")},
		ID:      id,
		Options: sweep.Options{Workers: workers, SyncEvery: syncEvery},
	}
	if throttle > 0 {
		w.Interrupt = func() bool {
			time.Sleep(throttle)
			return false
		}
	}
	if err := w.Run(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: worker %s: sweep complete\n", id)
	return nil
}

// resolveSpec builds the sweep spec from, in priority order: an explicit
// spec file, scenario flags, or the spec pinned in the run directory.
func resolveSpec(specPath, scenario string, seed int64, count, size int, params paramFlags, dir string) (sweep.Spec, error) {
	switch {
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return sweep.Spec{}, err
		}
		defer f.Close()
		return sweep.ParseSpec(f)
	case scenario != "":
		spec := sweep.Spec{Scenario: scenario, Seed: seed, Count: count, Size: size}
		if len(params) > 0 {
			spec.Params = params
		}
		return spec, spec.Validate()
	case dir != "":
		spec, err := sweep.LoadRunSpec(dir)
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("no -spec/-scenario and no pinned spec: %w", err)
		}
		return spec, nil
	default:
		return sweep.Spec{}, fmt.Errorf("need -spec, -scenario, or a -dir with a pinned spec")
	}
}

// parseShard parses "i/m" worker assignments.
func parseShard(s string) (shard, m int, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("want -shard i/m, got %q", s)
	}
	shard, err1 := strconv.Atoi(a)
	m, err2 := strconv.Atoi(b)
	if err1 != nil || err2 != nil || m < 1 || shard < 0 || shard >= m {
		return 0, 0, fmt.Errorf("bad -shard %q", s)
	}
	return shard, m, nil
}

// guardResume refuses to extend a non-empty shard checkpoint unless
// -resume was given: silently reusing stale checkpoints is how two
// different sweeps end up merged. A stat suffices — RunShard does the
// actual record scan, and doing it here too would read every checkpoint
// twice on large resumed runs.
func guardResume(spec sweep.Spec, dir string, shard, m int, resume bool) error {
	if resume {
		return nil
	}
	info, err := os.Stat(sweep.ShardPath(dir, shard, m))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if info.Size() > 0 {
		return fmt.Errorf("shard %d/%d has a non-empty checkpoint (%d bytes); pass -resume to continue it", shard, m, info.Size())
	}
	return nil
}

// spawnShards runs every shard as a separate worker process of this
// binary, all concurrently (shard counts are small; each worker's
// internal parallelism is -workers). Worker stderr passes through.
func spawnShards(dir string, shards, workers, syncEvery int) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	cmds := make([]*exec.Cmd, shards)
	for shard := 0; shard < shards; shard++ {
		cmd := execCommand(exe, workerArgs(dir, shard, shards, workers, syncEvery)...)
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return fmt.Errorf("spawn shard %d/%d: %w", shard, shards, err)
		}
		cmds[shard] = cmd
	}
	var firstErr error
	for shard, cmd := range cmds {
		if err := cmd.Wait(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("worker shard %d/%d: %w", shard, shards, err)
		}
	}
	return firstErr
}

// workerArgs is the argv a spawned shard worker runs with: the pinned
// spec in -dir is the source of truth, and -resume lets relaunched
// fleets pick up checkpoints.
func workerArgs(dir string, shard, shards, workers, syncEvery int) []string {
	return []string{
		"-dir", dir,
		"-shard", fmt.Sprintf("%d/%d", shard, shards),
		"-workers", strconv.Itoa(workers),
		"-syncevery", strconv.Itoa(syncEvery),
		"-resume",
	}
}
