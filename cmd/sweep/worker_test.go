package main

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"netdesign/internal/fabric"
	"netdesign/internal/sweep"
)

// testCoordinator boots an in-process fabric coordinator over the CLI
// test spec family so -coordinator mode can be driven without a daemon.
func testCoordinator(t *testing.T, shards int) (*fabric.Coordinator, *httptest.Server) {
	t.Helper()
	spec := sweep.Spec{Scenario: "enforce", Seed: 11, Count: 6, Size: 5, Params: map[string]float64{"spread": 3}}
	c, err := fabric.New(fabric.Config{Spec: spec, Shards: shards, Store: sweep.NewDirBackend(t.TempDir())})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	return c, srv
}

// TestCoordinatorWorkerMode drives a sweep entirely through the CLI's
// -coordinator mode: the worker fetches the spec over HTTP, leases both
// shards in turn, and the coordinator's merged table matches the serial
// oracle byte for byte.
func TestCoordinatorWorkerMode(t *testing.T) {
	want := serialOutput(t)
	c, srv := testCoordinator(t, 2)
	if _, err := runCLI(t, "-coordinator", srv.URL, "-id", "cli-test"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); !st.Done || st.Completed != 2 {
		t.Fatalf("after worker run: %+v, want 2 completed", st)
	}
	tb, err := c.Merge()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	if buf.String() != want {
		t.Errorf("fabric worker merge differs from serial:\n--- serial ---\n%s--- fabric ---\n%s", want, buf.String())
	}
}

// TestCoordinatorThrottle makes sure the -throttle straggler knob still
// completes the sweep: it only slows record production, never blocks it.
func TestCoordinatorThrottle(t *testing.T) {
	c, srv := testCoordinator(t, 1)
	start := time.Now()
	if _, err := runCLI(t, "-coordinator", srv.URL, "-throttle", "5ms"); err != nil {
		t.Fatal(err)
	}
	if st := c.Status(); !st.Done {
		t.Fatalf("throttled worker did not finish: %+v", st)
	}
	// 6 instances × ≥5ms throttle each.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("throttle had no effect: sweep took %s", elapsed)
	}
}

// TestCoordinatorRejectsSpecFlags pins the flag contract: worker mode
// takes its spec from the coordinator, so combining -coordinator with a
// local spec source is an error, not a silent ignore.
func TestCoordinatorRejectsSpecFlags(t *testing.T) {
	_, srv := testCoordinator(t, 1)
	for _, args := range [][]string{
		{"-coordinator", srv.URL, "-scenario", "enforce"},
		{"-coordinator", srv.URL, "-spec", "fam.sweep"},
		{"-coordinator", srv.URL, "-dir", "x"},
	} {
		if _, err := runCLI(t, args...); err == nil {
			t.Errorf("args %v accepted; worker mode must reject local spec flags", args)
		}
	}
}
