package main

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"netdesign/internal/fabric"
	"netdesign/internal/sweep"
)

func specArgs() []string {
	return []string{"-scenario", "enforce", "-seed", "11", "-count", "6", "-size", "5", "-param", "spread=3"}
}

// TestOnceServesSweepToCompletion boots the daemon on :0 in -once mode,
// drives it with an in-process fabric worker, and checks the merged
// table printed on exit matches the serial oracle byte for byte.
func TestOnceServesSweepToCompletion(t *testing.T) {
	addrCh := make(chan net.Addr, 1)
	listening = func(a net.Addr) { addrCh <- a }
	defer func() { listening = nil }()

	var stdout, stderr bytes.Buffer
	args := append(specArgs(), "-dir", t.TempDir(), "-shards", "3", "-addr", "127.0.0.1:0", "-once")
	var wg sync.WaitGroup
	wg.Add(1)
	var mainErr error
	go func() {
		defer wg.Done()
		mainErr = realMain(args, &stdout, &stderr)
	}()

	addr := <-addrCh
	w := &fabric.Worker{
		Client:  &fabric.Client{URL: "http://" + addr.String()},
		ID:      "t",
		Options: sweep.Options{Workers: 1},
	}
	if err := w.Run(); err != nil {
		wg.Wait()
		t.Fatalf("worker: %v\nsweepd err: %v\nsweepd stderr:\n%s", err, mainErr, stderr.String())
	}
	wg.Wait()
	if mainErr != nil {
		t.Fatalf("sweepd: %v\nstderr:\n%s", mainErr, stderr.String())
	}

	want, err := sweep.RunSerial(sweep.Spec{Scenario: "enforce", Seed: 11, Count: 6, Size: 5, Params: map[string]float64{"spread": 3}})
	if err != nil {
		t.Fatal(err)
	}
	var wantText bytes.Buffer
	want.Render(&wantText)
	if stdout.String() != wantText.String() {
		t.Errorf("sweepd -once output differs from serial oracle:\n--- serial ---\n%s--- sweepd ---\n%s", wantText.String(), stdout.String())
	}
}

// TestResumePinnedSpec restarts the daemon over a completed run with no
// spec flags: the pinned spec must be enough, and -once exits
// immediately since every shard is already done.
func TestResumePinnedSpec(t *testing.T) {
	dir := t.TempDir()
	spec := sweep.Spec{Scenario: "enforce", Seed: 11, Count: 6, Size: 5, Params: map[string]float64{"spread": 3}}
	if _, err := sweep.Run(spec, dir, 2, sweep.Options{Workers: 1}); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if err := realMain([]string{"-dir", dir, "-shards", "2", "-addr", "127.0.0.1:0", "-once"}, &stdout, &stderr); err != nil {
		t.Fatalf("resume over pinned spec: %v\nstderr:\n%s", err, stderr.String())
	}
	want, err := sweep.RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var wantText bytes.Buffer
	want.Render(&wantText)
	if stdout.String() != wantText.String() {
		t.Errorf("resumed merge differs from serial oracle:\n%s", stdout.String())
	}
}

func TestFlagErrors(t *testing.T) {
	var out bytes.Buffer
	cases := [][]string{
		{"-scenario", "enforce"},                       // no -dir
		{"-dir", t.TempDir()},                          // no spec source, nothing pinned
		{"-param", "broken", "-dir", t.TempDir()},      // malformed param
		{"-spec", "/nonexistent", "-dir", t.TempDir()}, // missing spec file
	}
	for _, args := range cases {
		if err := realMain(args, &out, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
