// Command sweepd is the sweep fabric coordinator daemon: it owns one
// sweep manifest — the pinned spec, the shard plan, per-shard completion
// state — and hands out shard leases over HTTP to `sweep -coordinator`
// worker processes (see internal/fabric).
//
// Usage:
//
//	sweepd -scenario enforce -seed 1 -count 1000 -size 24 -dir run/ -shards 16 -addr :8633
//	sweepd -dir run/ -shards 16 -addr :8633 -once        # resume a crashed run, exit after merge
//
// The run directory is the durable truth: workers read and append shard
// checkpoints through the coordinator (lease-fenced, idempotent
// appends), so killing any worker — or the whole fleet — loses at most
// one fsync window of compute. Restarting sweepd over the same -dir
// resumes: completed shards stay completed, partial ones are handed out
// for resumption.
//
// Leases expire after -ttl without a heartbeat and the shard is
// reassigned. A shard held far past the median completion time is
// speculatively re-executed (-stragglerfactor, -stragglermin,
// -maxattempts); the first completed copy wins and any completed loser
// is verified bit-identical before being discarded.
//
// With -once the daemon exits after the sweep completes, printing the
// merged table to stdout — byte-identical to `sweep -serial` on the
// same spec, whatever faults the fleet suffered. Without -once it keeps
// serving /fabric/v1/status after completion. SIGINT/SIGTERM exit
// cleanly; all sweep state is already on disk.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"netdesign/internal/fabric"
	"netdesign/internal/sweep"
	"netdesign/internal/table"
)

func main() {
	if err := realMain(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
}

// paramFlags collects repeatable -param name=value pairs.
type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprintf("%v", map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad value in %q: %v", s, err)
	}
	p[name] = v
	return nil
}

// listening, when non-nil, observes the bound address; tests use it to
// dial a daemon started on :0.
var listening func(net.Addr)

func realMain(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		specPath = fs.String("spec", "", "read the sweep spec from this file")
		scenario = fs.String("scenario", "", "scenario name (builds the spec from flags)")
		seed     = fs.Int64("seed", 1, "base seed (instance i uses a derived seed)")
		count    = fs.Int("count", 8, "number of instances in the family")
		size     = fs.Int("size", 8, "base instance-size parameter")
		params   = paramFlags{}

		dir    = fs.String("dir", "", "run directory: the coordinator's durable checkpoint store")
		shards = fs.Int("shards", 1, "number of shards in the plan")
		addr   = fs.String("addr", ":8633", "listen address (host:port; :0 picks a free port)")

		ttl         = fs.Duration("ttl", fabric.DefaultLeaseTTL, "lease TTL: a worker silent this long is fenced and its shard reassigned")
		factor      = fs.Float64("stragglerfactor", fabric.DefaultStragglerFactor, "speculate on leases held this multiple of the median shard completion time")
		minStrag    = fs.Duration("stragglermin", fabric.DefaultStragglerMin, "never speculate before a lease is this old")
		maxAttempts = fs.Int("maxattempts", fabric.DefaultMaxAttempts, "concurrent attempts per shard (primary + speculative)")

		once     = fs.Bool("once", false, "exit after the sweep completes, printing the merged table to stdout")
		markdown = fs.Bool("markdown", false, "emit a markdown table (with -once)")
	)
	fs.Var(params, "param", "scenario parameter name=value (repeatable)")
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	spec, err := resolveSpec(*specPath, *scenario, *seed, *count, *size, params, *dir)
	if err != nil {
		return err
	}

	coord, err := fabric.New(fabric.Config{
		Spec:            spec,
		Shards:          *shards,
		Store:           sweep.NewDirBackend(*dir),
		LeaseTTL:        *ttl,
		StragglerFactor: *factor,
		StragglerMin:    *minStrag,
		MaxAttempts:     *maxAttempts,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stderr so scripts starting `sweepd -addr
	// :0` can discover the port without racing the log stream.
	fmt.Fprintf(stderr, "sweepd: coordinating %s (%d shards) on %s\n", spec.Scenario, *shards, ln.Addr())
	if listening != nil {
		listening(ln.Addr())
	}
	hs := &http.Server{Handler: coord.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer hs.Close()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	if !*once {
		select {
		case got := <-sig:
			fmt.Fprintf(stderr, "sweepd: %s — exiting (sweep state is durable in %s)\n", got, *dir)
			return nil
		case err := <-serveErr:
			return err
		}
	}

	select {
	case <-coord.Done():
	case got := <-sig:
		return fmt.Errorf("interrupted by %s before the sweep completed", got)
	case err := <-serveErr:
		return err
	}
	tb, err := coord.Merge()
	if err != nil {
		return err
	}
	// The attempt ledger goes to the log: attempts above the shard count
	// are the faults the fabric absorbed (expired leases reassigned,
	// stragglers speculated) — what the CI smoke asserts on.
	st := coord.Status()
	fmt.Fprintf(stderr, "sweepd: sweep complete: %d shards, %d attempts, %d records\n", st.Shards, st.Attempts, st.Records)
	return render(tb, stdout, *markdown)
}

func render(tb *table.Table, stdout io.Writer, markdown bool) error {
	if markdown {
		_, err := io.WriteString(stdout, tb.Markdown())
		return err
	}
	tb.Render(stdout)
	return nil
}

// resolveSpec builds the sweep spec from, in priority order: an explicit
// spec file, scenario flags, or the spec pinned in the run directory —
// the same precedence cmd/sweep uses, so a crashed run restarts with
// just -dir.
func resolveSpec(specPath, scenario string, seed int64, count, size int, params paramFlags, dir string) (sweep.Spec, error) {
	switch {
	case specPath != "":
		f, err := os.Open(specPath)
		if err != nil {
			return sweep.Spec{}, err
		}
		defer f.Close()
		return sweep.ParseSpec(f)
	case scenario != "":
		spec := sweep.Spec{Scenario: scenario, Seed: seed, Count: count, Size: size}
		if len(params) > 0 {
			spec.Params = params
		}
		return spec, spec.Validate()
	default:
		spec, err := sweep.LoadRunSpec(dir)
		if err != nil {
			return sweep.Spec{}, fmt.Errorf("no -spec/-scenario and no pinned spec in %s: %w", dir, err)
		}
		return spec, nil
	}
}
