package main

import (
	"testing"

	"netdesign/internal/experiments"
)

func TestRunSingleAndUnknown(t *testing.T) {
	cfg := experiments.Config{Seed: 2, Quick: true}
	if err := run(cfg, "E2", false); err != nil {
		t.Errorf("E2: %v", err)
	}
	if err := run(cfg, "E2", true); err != nil {
		t.Errorf("E2 markdown: %v", err)
	}
	if err := run(cfg, "nope", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}
