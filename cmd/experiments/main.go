// Command experiments runs the paper-reproduction suite: one experiment
// per theorem/figure of "Enforcing efficient equilibria in network design
// games via subsidies" (SPAA 2012), printing the measured tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-id E6] [-seed 1] [-quick] [-markdown] [-parallel N]
//	            [-cpuprofile f] [-memprofile f]
//
// -parallel N runs the experiments on N workers (0 = one per CPU); the
// tables are still printed in registry order. The pprof flags write
// standard runtime/pprof profiles so performance regressions can be
// diagnosed without editing code:
//
//	experiments -quick -parallel 0 -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"netdesign/internal/experiments"
)

func main() {
	if err := realMain(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// realMain carries the whole run so deferred cleanups (notably
// pprof.StopCPUProfile, which flushes the profile) execute on every
// exit path before main decides the process status.
func realMain() error {
	id := flag.String("id", "", "run a single experiment by ID (default: all)")
	seed := flag.Int64("seed", 1, "RNG seed")
	quick := flag.Bool("quick", false, "smaller sweeps")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	workers := flag.Int("parallel", 1, "experiment workers (0 or less = one per CPU, 1 = sequential)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	runErr := runParallel(cfg, *id, *markdown, *workers)

	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			if runErr != nil {
				return fmt.Errorf("%w (additionally: %v)", runErr, err)
			}
			return err
		}
	}
	return runErr
}

func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // materialize the steady-state heap
	return pprof.WriteHeapProfile(f)
}

// run executes a single experiment (or all, sequentially) and renders to
// stdout. Kept for tests; runParallel generalizes it.
func run(cfg experiments.Config, id string, markdown bool) error {
	return runParallel(cfg, id, markdown, 1)
}

// runParallel renders the selected experiments to stdout in registry
// order while executing them on up to `workers` goroutines (sequential
// runs stream each table as it completes and fail fast).
func runParallel(cfg experiments.Config, id string, markdown bool, workers int) error {
	var list []experiments.Experiment
	if id != "" {
		e, ok := experiments.Get(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.Registry()
	}
	return experiments.RunEach(cfg, list, workers,
		func(_ experiments.Experiment, tb *experiments.Table, _ time.Duration) error {
			if markdown {
				_, err := fmt.Print(tb.Markdown())
				return err
			}
			tb.Render(os.Stdout)
			return nil
		})
}
