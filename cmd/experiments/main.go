// Command experiments runs the paper-reproduction suite: one experiment
// per theorem/figure of "Enforcing efficient equilibria in network design
// games via subsidies" (SPAA 2012), printing the measured tables that
// EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-id E6] [-seed 1] [-quick] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"

	"netdesign/internal/experiments"
)

func main() {
	id := flag.String("id", "", "run a single experiment by ID (default: all)")
	seed := flag.Int64("seed", 1, "RNG seed")
	quick := flag.Bool("quick", false, "smaller sweeps")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, Quick: *quick}
	if err := run(cfg, *id, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(cfg experiments.Config, id string, markdown bool) error {
	var list []experiments.Experiment
	if id != "" {
		e, ok := experiments.Get(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		list = []experiments.Experiment{e}
	} else {
		list = experiments.Registry()
	}
	for _, e := range list {
		tb, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if markdown {
			fmt.Print(tb.Markdown())
		} else {
			tb.Render(os.Stdout)
		}
	}
	return nil
}
