// Command snedload is the sned load harness CLI: it replays a seeded
// instance mix against a running daemon over N workers × M connections
// and reports throughput, latency quantiles and errors.
//
// Usage:
//
//	snedload [-url http://127.0.0.1:8533] [-proto v2] [-mix jitter] [-n 64]
//	         [-count 32] [-seed 9] [-workers 8] [-conns 8]
//	         [-duration 5s] [-total 0] [-pipeline 1] [-reconnect 5]
//
// Mixes: jitter (warm-friendly E22 family — one structure, drifting
// weights), adversarial (shuffled never-repeating structures — every
// solve cold), mixed (both interleaved). -proto v2 speaks the compact
// binary protocol on /v2/sne; v1 posts JSON to /v1/sne. -total bounds
// the run in requests instead of wall time when > 0. -pipeline K packs
// K frames into each HTTP round trip on v2 (counts stay per frame).
//
// A request whose transport fails — the pooled connection died, the
// daemon restarted mid-run — is retried up to -reconnect times with
// capped exponential backoff before it counts as an error; HTTP error
// answers (shed 503s included) are counted, never retried. -reconnect 0
// restores strict single-shot sends.
//
// The report goes to stdout as one line, e.g.:
//
//	14310 req in 5.001s (2862 req/s), errors 0, reconnects 0, p50 2.1ms p99 6.8ms p999 11ms
//
// Exit status is 1 when any request failed, so CI can assert a clean
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"netdesign/internal/loadgen"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8533", "base URL of the daemon")
	proto := flag.String("proto", "v2", "protocol: v2 (binary) or v1 (JSON)")
	mix := flag.String("mix", loadgen.MixJitter, "instance mix: jitter | adversarial | mixed")
	n := flag.Int("n", 64, "instance size (nodes)")
	count := flag.Int("count", 32, "distinct instances in the mix")
	seed := flag.Int64("seed", 9, "mix seed")
	workers := flag.Int("workers", 8, "concurrent senders")
	conns := flag.Int("conns", 8, "pooled TCP connections")
	duration := flag.Duration("duration", 5*time.Second, "run length (wall time)")
	total := flag.Int("total", 0, "request budget (0: duration-bound)")
	pipeline := flag.Int("pipeline", 1, "frames per HTTP round trip (v2 only)")
	reconnect := flag.Int("reconnect", 5, "transport-failure retries per request, backed off (0 = single-shot)")
	flag.Parse()

	if err := run(*url, *proto, *mix, *n, *count, *seed, *workers, *conns, *duration, *total, *pipeline, *reconnect); err != nil {
		fmt.Fprintln(os.Stderr, "snedload:", err)
		os.Exit(1)
	}
}

func run(url, proto, mix string, n, count int, seed int64, workers, conns int, duration time.Duration, total, pipeline, reconnect int) error {
	binary := false
	path := "/v1/sne"
	switch proto {
	case "v1":
	case "v2":
		binary = true
		path = "/v2/sne"
	default:
		return fmt.Errorf("unknown proto %q (want v1 or v2)", proto)
	}
	bodies, err := loadgen.Bodies(mix, binary, n, count, seed)
	if err != nil {
		return err
	}
	res, err := loadgen.Run(loadgen.Config{
		URL:       url + path,
		Binary:    binary,
		Bodies:    bodies,
		Workers:   workers,
		Conns:     conns,
		Duration:  duration,
		Total:     total,
		DecodeSNE: true,
		Pipeline:  pipeline,
		Reconnect: reconnect,
	})
	if err != nil {
		return err
	}
	fmt.Println(res)
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	return nil
}
