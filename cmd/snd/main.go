// Command snd solves STABLE NETWORK DESIGN on a broadcast instance file:
// the lightest network enforceable as an equilibrium within a subsidy
// budget.
//
// Usage:
//
//	snd -in instance.txt -budget B [-exact] [-treelimit N]
//
// The default is the polynomial MST+LP heuristic; -exact enumerates all
// spanning trees (exponential — small instances only).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"netdesign/internal/instancefile"
	"netdesign/internal/snd"
)

func main() {
	inPath := flag.String("in", "", "instance file (required)")
	budget := flag.Float64("budget", 0, "subsidy budget B")
	exact := flag.Bool("exact", false, "exact solve by spanning-tree enumeration")
	treeLimit := flag.Int("treelimit", 200000, "abort exact solve beyond this many trees")
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *budget, *exact, *treeLimit); err != nil {
		fmt.Fprintln(os.Stderr, "snd:", err)
		os.Exit(1)
	}
}

func run(inPath string, budget float64, exact bool, treeLimit int) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := instancefile.Read(f)
	if err != nil {
		return err
	}
	bg := inst.Game
	fmt.Printf("instance: %d nodes, %d edges, budget %.6g\n", bg.G.N(), bg.G.M(), budget)

	var res *snd.Result
	if exact {
		res, err = snd.SolveExact(bg, budget, treeLimit)
	} else {
		res, err = snd.HeuristicMSTLP(bg, budget)
		// errors.Is, not ==: a wrapped sentinel must keep triggering the
		// Theorem-6 fallback. The diagnostic goes to stderr — stdout is
		// the machine-readable result channel.
		if errors.Is(err, snd.ErrBudgetInfeasible) {
			fmt.Fprintln(os.Stderr, "snd: MST+LP heuristic infeasible at this budget; trying Theorem-6 construction")
			res, err = snd.HeuristicTheorem6(bg, budget)
		}
	}
	if err != nil {
		return err
	}
	if err := snd.Verify(bg, res, budget); err != nil {
		return fmt.Errorf("result failed verification: %w", err)
	}
	fmt.Printf("design: weight %.6g, subsidies %.6g (%.2f%% of budget) [verified]\n",
		res.Weight, res.SubsidyCost, pct(res.SubsidyCost, budget))
	fmt.Printf("tree edges: %v\n", res.Tree)
	return nil
}

func pct(x, of float64) float64 {
	if of == 0 {
		return 0
	}
	return 100 * x / of
}
