package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.txt")
	content := "nodes 5\nedge 0 1 1\nedge 1 2 1\nedge 2 3 1\nedge 3 4 1\nedge 4 0 1\nroot 0\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunHeuristicAndExact(t *testing.T) {
	path := writeInstance(t)
	if err := run(path, 2.0, false, 0); err != nil {
		t.Errorf("heuristic: %v", err)
	}
	if err := run(path, 2.0, true, 100000); err != nil {
		t.Errorf("exact: %v", err)
	}
	if err := run(path, 0, true, 100000); err != nil {
		t.Errorf("exact zero budget: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent", 1, false, 0); err == nil {
		t.Error("missing file accepted")
	}
	path := writeInstance(t)
	if err := run(path, 1, true, 1); err == nil {
		t.Error("tree limit violation not reported")
	}
}

// TestFallbackDiagnosticStaysOffStdout pins the bugfix that routed the
// "trying Theorem-6" diagnostic to stderr: with a budget below wgt(MST)/e
// the heuristic path attempts the fallback (and ultimately fails), and
// stdout — the machine-readable channel — must carry no diagnostic.
func TestFallbackDiagnosticStaysOffStdout(t *testing.T) {
	path := writeInstance(t)
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	// Budget 1.0 < 4/e: MST+LP is infeasible, the Theorem-6 fallback is
	// attempted (diagnostic!) and is infeasible too.
	runErr := run(path, 1.0, false, 0)
	w.Close()
	os.Stdout = old
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if runErr == nil {
		t.Fatal("budget 1.0 should be infeasible for both heuristics")
	}
	if strings.Contains(string(out), "Theorem-6") {
		t.Errorf("fallback diagnostic leaked onto stdout:\n%s", out)
	}
}

func TestPct(t *testing.T) {
	if pct(1, 0) != 0 || pct(1, 2) != 50 {
		t.Error("pct wrong")
	}
}
