// Command sne solves STABLE NETWORK ENFORCEMENT on a broadcast instance
// file: the minimum subsidies under which the target tree is a Nash
// equilibrium.
//
// Usage:
//
//	sne -in instance.txt [-method lp|theorem6|aon|greedy|full] [-v]
//
// Methods: lp (optimal, LP (3)); theorem6 (the wgt(T)/e construction);
// aon (exact all-or-nothing branch-and-bound); greedy (all-or-nothing
// heuristic); full (subsidize everything — the trivial baseline).
package main

import (
	"flag"
	"fmt"
	"os"

	"netdesign/internal/instancefile"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

func main() {
	inPath := flag.String("in", "", "instance file (required)")
	method := flag.String("method", "lp", "lp | theorem6 | aon | greedy | full")
	verbose := flag.Bool("v", false, "print per-edge subsidies")
	flag.Parse()
	if *inPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*inPath, *method, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "sne:", err)
		os.Exit(1)
	}
}

func run(inPath, method string, verbose bool) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	inst, err := instancefile.Read(f)
	if err != nil {
		return err
	}
	st, err := inst.State()
	if err != nil {
		return err
	}
	fmt.Printf("instance: %d nodes, %d edges, %d players, target tree weight %.6g\n",
		inst.Game.G.N(), inst.Game.G.M(), inst.Game.NumPlayers(), st.Weight())
	if st.IsEquilibrium(nil) {
		fmt.Println("the target tree is already an equilibrium (0 subsidies needed)")
	}

	var res *sne.Result
	switch method {
	case "lp":
		res, err = sne.SolveBroadcastLP(st)
	case "theorem6":
		b, cert, serr := subsidy.Enforce(st)
		if serr != nil {
			return serr
		}
		res = &sne.Result{Subsidy: b, Cost: cert.Total}
		fmt.Printf("decomposition: %d weight levels\n", len(cert.Levels))
	case "aon":
		res, err = sne.SolveAON(st, sne.AONOptions{})
	case "greedy":
		res, err = sne.GreedyAON(st)
	case "full":
		res = sne.FullSubsidy(st)
	default:
		return fmt.Errorf("unknown method %q", method)
	}
	if err != nil {
		return err
	}
	if err := sne.VerifyBroadcast(st, res.Subsidy); err != nil {
		return fmt.Errorf("result failed verification: %w", err)
	}
	fmt.Printf("method=%s subsidies=%.6g fraction=%.4f of wgt(T) [verified: tree is an equilibrium]\n",
		method, res.Cost, res.Cost/st.Weight())
	if verbose {
		for _, id := range st.Tree.EdgeIDs {
			if res.Subsidy.At(id) > 0 {
				e := inst.Game.G.Edge(id)
				fmt.Printf("  edge %d (%d-%d, w=%.6g): subsidy %.6g\n", id, e.U, e.V, e.W, res.Subsidy.At(id))
			}
		}
	}
	return nil
}
