package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeInstance(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "cycle.txt")
	// A 7-node unit cycle rooted at 0 with the path tree as target.
	content := "nodes 7\n"
	for i := 0; i < 6; i++ {
		content += "edge " + string(rune('0'+i)) + " " + string(rune('0'+i+1)) + " 1\n"
	}
	content += "edge 6 0 1\nroot 0\ntree 0 1 2 3 4 5\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllMethods(t *testing.T) {
	path := writeInstance(t)
	for _, method := range []string{"lp", "theorem6", "aon", "greedy", "full"} {
		if err := run(path, method, true); err != nil {
			t.Errorf("method %s: %v", method, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent/file", "lp", false); err == nil {
		t.Error("missing file accepted")
	}
	path := writeInstance(t)
	if err := run(path, "frobnicate", false); err == nil {
		t.Error("unknown method accepted")
	}
	// Malformed instance.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("nodes -3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, "lp", false); err == nil {
		t.Error("malformed instance accepted")
	}
}
