package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"netdesign/internal/instancefile"
)

func TestBuildAllGadgets(t *testing.T) {
	cases := []struct {
		gadget string
	}{
		{"cycle"}, {"aonpath"}, {"bypass"}, {"binpack"}, {"is"},
	}
	for _, c := range cases {
		inst, err := build(c.gadget, 8, 4, 4, "4,2,2", 1, 8, 1, 1.0/12)
		if err != nil {
			t.Fatalf("%s: %v", c.gadget, err)
		}
		// Result must round-trip through the instance format.
		var buf bytes.Buffer
		if err := instancefile.Write(&buf, inst); err != nil {
			t.Fatal(err)
		}
		back, err := instancefile.Read(&buf)
		if err != nil {
			t.Fatalf("%s: round trip: %v", c.gadget, err)
		}
		if _, err := back.State(); err != nil {
			t.Fatalf("%s: state: %v", c.gadget, err)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := build("", 8, 4, 4, "4", 1, 8, 1, 0.05); err == nil {
		t.Error("missing gadget accepted")
	}
	if _, err := build("nope", 8, 4, 4, "4", 1, 8, 1, 0.05); err == nil {
		t.Error("unknown gadget accepted")
	}
	if _, err := build("binpack", 8, 4, 4, "x,y", 1, 8, 1, 0.05); err == nil {
		t.Error("malformed sizes accepted")
	}
	if _, err := build("binpack", 8, 4, 4, "3,3", 1, 8, 1, 0.05); err == nil {
		t.Error("invalid (odd) packing instance accepted")
	}
	if _, err := build("cycle", 0, 4, 4, "4", 1, 8, 1, 0.05); err == nil {
		t.Error("cycle n=0 accepted")
	}
	if _, err := build("is", 7, 4, 4, "4", 1, 8, 1, 0.05); err == nil {
		t.Error("odd 3-regular order accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	inst, err := build("bypass", 8, 3, 2, "4", 1, 8, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := os.CreateTemp(t.TempDir(), "dot")
	if err != nil {
		t.Fatal(err)
	}
	defer tmp.Close()
	if err := writeDOT(tmp, inst); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp.Name())
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	if !strings.Contains(out, "graph gadget {") || !strings.Contains(out, `label="r"`) {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	if !strings.Contains(out, "style=bold") || !strings.Contains(out, "style=dashed") {
		t.Error("tree/non-tree styling missing")
	}
}
