// Command gadgetgen emits the paper's gadget instances in the shared
// instance-file format consumed by cmd/sne and cmd/snd.
//
// Usage:
//
//	gadgetgen -gadget cycle -n 16                  # Theorem 11 cycle
//	gadgetgen -gadget aonpath -n 14                # Theorem 21 path
//	gadgetgen -gadget bypass -kappa 6 -beta 4      # Lemma 4 / Figure 1
//	gadgetgen -gadget binpack -sizes 4,2,2 -bins 1 -capacity 8   # Figure 2
//	gadgetgen -gadget is -n 8 -seed 1              # Theorem 5 / Figure 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
	"netdesign/internal/reductions"
)

func main() {
	gadget := flag.String("gadget", "", "cycle | aonpath | bypass | binpack | is")
	dot := flag.Bool("dot", false, "emit Graphviz DOT (target tree bold) instead of the instance format")
	n := flag.Int("n", 8, "size parameter")
	kappa := flag.Int("kappa", 4, "bypass capacity κ")
	beta := flag.Int("beta", 4, "players behind the bypass connector")
	sizes := flag.String("sizes", "4,2,2", "bin packing item sizes (comma-separated)")
	bins := flag.Int("bins", 1, "bin count")
	capacity := flag.Int("capacity", 8, "bin capacity")
	seed := flag.Int64("seed", 1, "RNG seed (is gadget)")
	delta := flag.Float64("delta", 1.0/12, "δ for the IS gadget")
	flag.Parse()

	inst, err := build(*gadget, *n, *kappa, *beta, *sizes, *bins, *capacity, *seed, *delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gadgetgen:", err)
		os.Exit(1)
	}
	if *dot {
		err = writeDOT(os.Stdout, inst)
	} else {
		err = instancefile.Write(os.Stdout, inst)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gadgetgen:", err)
		os.Exit(1)
	}
}

// writeDOT renders the instance as Graphviz DOT with the target tree in
// bold and the root labeled.
func writeDOT(w *os.File, inst *instancefile.Instance) error {
	highlight := map[int]bool{}
	for _, id := range inst.Tree {
		highlight[id] = true
	}
	return graph.WriteDOT(w, inst.Game.G, graph.DOTOptions{
		Name:      "gadget",
		Highlight: highlight,
		NodeLabel: func(v int) string {
			if v == inst.Game.Root {
				return "r"
			}
			if m := inst.Game.Mult[v]; m != 1 {
				return fmt.Sprintf("%d×%d", v, m)
			}
			return strconv.Itoa(v)
		},
	})
}

func build(gadget string, n, kappa, beta int, sizesCSV string, bins, capacity int, seed int64, delta float64) (*instancefile.Instance, error) {
	switch gadget {
	case "cycle":
		st, err := gadgets.CycleInstance(n)
		if err != nil {
			return nil, err
		}
		return &instancefile.Instance{Game: st.BG, Tree: st.Tree.EdgeIDs}, nil
	case "aonpath":
		st, err := gadgets.AONPathInstance(n)
		if err != nil {
			return nil, err
		}
		return &instancefile.Instance{Game: st.BG, Tree: st.Tree.EdgeIDs}, nil
	case "bypass":
		st, _, err := gadgets.Lemma4Instance(kappa, beta)
		if err != nil {
			return nil, err
		}
		return &instancefile.Instance{Game: st.BG, Tree: st.Tree.EdgeIDs}, nil
	case "binpack":
		var items []int
		for _, part := range strings.Split(sizesCSV, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad size %q", part)
			}
			items = append(items, s)
		}
		in := reductions.BinPacking{Sizes: items, Bins: bins, Capacity: capacity}
		bp, err := gadgets.BuildBinPack(in)
		if err != nil {
			return nil, err
		}
		// Emit with the first assignment tree as target.
		assign := make([]int, len(items))
		tree, err := bp.TreeForAssignment(assign)
		if err != nil {
			return nil, err
		}
		return &instancefile.Instance{Game: bp.BG, Tree: tree}, nil
	case "is":
		rng := rand.New(rand.NewSource(seed))
		h, err := graph.RandomRegular(rng, n, 3)
		if err != nil {
			return nil, err
		}
		ig, err := gadgets.BuildIS(h, delta)
		if err != nil {
			return nil, err
		}
		st, _, _, err := ig.BestEquilibrium()
		if err != nil {
			return nil, err
		}
		return &instancefile.Instance{Game: ig.BG, Tree: st.Tree.EdgeIDs}, nil
	case "":
		return nil, fmt.Errorf("missing -gadget (cycle | aonpath | bypass | binpack | is)")
	default:
		return nil, fmt.Errorf("unknown gadget %q", gadget)
	}
}
