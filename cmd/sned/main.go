// Command sned is the subsidy-serving daemon: a long-lived HTTP server
// answering equilibrium-check, PoS-estimate and subsidy/enforcement
// queries over submitted broadcast instances.
//
// Usage:
//
//	sned [-addr :8533] [-timeout 30s] [-maxbody 1048576] [-cache 512] [-cacheshards 16] [-cachettl 10m] [-maxinflight 0] [-drain 15s]
//
// Endpoints: POST /v1/check, /v1/sne, /v1/snd, /v1/pos (JSON bodies with
// the instance in the CLI text format); POST /v2/check, /v2/sne,
// /v2/snd, /v2/pos (the compact binary protocol of internal/serve/wire —
// length-prefixed frames, bit-identical answers to /v1 at a fraction of
// the cost; cmd/snedload speaks it); GET /healthz, /metrics. Responses
// are bit-identical to the sne/snd batch CLIs on the same instances;
// streams of structurally nearby instances are served warm through the
// fingerprint-keyed basis cache (see internal/serve). Cached bases
// expire -cachettl after their last refresh (negative disables expiry),
// and under eviction pressure a new structure is only admitted on its
// second sighting, so one-shot instances cannot flush the hot set.
//
// Liveness and readiness are separate probes: /healthz answers ok for
// as long as the process runs, while /readyz answers 503 before the
// listener is warm and again the moment a shutdown drain begins — the
// signal a load balancer needs to stop routing here without declaring
// the process dead. -maxinflight caps concurrently served solves; past
// it /v1 sheds with 503 + Retry-After and /v2 with an unavailable
// frame, counted by sned_shed_requests_total in /metrics.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the listener closes,
// in-flight solves drain for up to -drain, then the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"netdesign/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8533", "listen address (host:port; :0 picks a free port)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solve budget")
	maxBody := flag.Int64("maxbody", 1<<20, "request body size cap in bytes")
	cacheCap := flag.Int("cache", 512, "basis cache capacity in bases (negative disables caching)")
	cacheShards := flag.Int("cacheshards", 16, "basis cache lock shards (rounded up to a power of two)")
	cacheTTL := flag.Duration("cachettl", 10*time.Minute, "basis cache entry lifetime (negative disables expiry)")
	maxInflight := flag.Int("maxinflight", 0, "shed requests past this many concurrent solves (0 = unlimited)")
	drain := flag.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	flag.Parse()

	if err := run(*addr, *timeout, *maxBody, *cacheCap, *cacheShards, *cacheTTL, *maxInflight, *drain); err != nil {
		fmt.Fprintln(os.Stderr, "sned:", err)
		os.Exit(1)
	}
}

func run(addr string, timeout time.Duration, maxBody int64, cacheCap, cacheShards int, cacheTTL time.Duration, maxInflight int, drain time.Duration) error {
	srv := serve.New(serve.Config{
		MaxBodyBytes: maxBody,
		Timeout:      timeout,
		CacheCap:     cacheCap,
		CacheShards:  cacheShards,
		CacheTTL:     cacheTTL,
		MaxInflight:  maxInflight,
	})
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	// The bound address goes to stderr so scripts starting `sned -addr :0`
	// can discover the port without racing the log stream.
	fmt.Fprintf(os.Stderr, "sned: listening on %s\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "sned: %s — draining in-flight requests (budget %s)\n", got, drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "sned: drained, bye")
	return nil
}
