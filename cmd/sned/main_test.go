package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"syscall"
	"testing"
	"time"

	"netdesign/internal/serve"
)

const smokeInstance = "nodes 5\nedge 0 1 1\nedge 1 2 1\nedge 2 3 1\nedge 3 4 1\nedge 4 0 1\nroot 0\n"

// TestStartQueryShutdown is the in-process version of the CI smoke step:
// boot the daemon on a free port, answer a health probe and a solve
// query, then drain cleanly on SIGTERM.
func TestStartQueryShutdown(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		done <- run("127.0.0.1:0", 10*time.Second, 1<<20, 64, 4, time.Minute, 0, 5*time.Second)
	}()
	// run() prints the bound address to stderr; rather than scrape it,
	// boot a second server directly for the query check and use the run()
	// goroutine only for the signal/drain path.
	srv := serve.New(serve.Config{})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	body, _ := json.Marshal(map[string]any{"instance": smokeInstance, "method": "lp"})
	resp, err = http.Post(base+"/v1/sne", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sne struct {
		Cost float64 `json:"cost"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sne); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sne.Cost <= 0 {
		t.Fatalf("sne query status %d cost %v", resp.StatusCode, sne.Cost)
	}
	if err := srv.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}

	// Now the signal path: SIGTERM must drain the run() daemon and
	// return nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not drain within 10s of SIGTERM")
	}
}

// TestBadAddr: a malformed listen address must surface as an error, not
// a hung daemon.
func TestBadAddr(t *testing.T) {
	if err := run("not-an-address:foo", time.Second, 1<<20, 0, 0, 0, 0, time.Second); err == nil {
		t.Fatal("bad address accepted")
	}
}
