package instancefile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead ensures the instance parser never panics and that everything
// it accepts round-trips through Write.
func FuzzRead(f *testing.F) {
	f.Add("nodes 3\nedge 0 1 1\nedge 1 2 1\nedge 0 2 5\nroot 0\n")
	f.Add("nodes 2\nedge 0 1 2.5\nroot 1\nmult 0 3\ntree 0\n")
	f.Add("# comment\n\nnodes 1\nroot 0\n")
	f.Add("nodes -1\n")
	f.Add("edge a b c\n")
	f.Add("nodes 4\nedge 0 1 1e308\nroot 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		in, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, in); err != nil {
			t.Fatalf("accepted instance failed to serialize: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("serialized instance failed to re-parse: %v", err)
		}
		if back.Game.G.N() != in.Game.G.N() || back.Game.G.M() != in.Game.G.M() {
			t.Fatal("round trip changed the graph shape")
		}
	})
}
