// Package instancefile reads and writes broadcast SNE/SND instances in a
// line-oriented text format shared by the cmd/ tools:
//
//	# comment
//	nodes <n>
//	edge <u> <v> <weight>
//	root <r>
//	mult <node> <multiplicity>     (optional; default 1 per non-root node)
//	tree <edgeID> <edgeID> ...     (optional; default: a minimum spanning tree)
//
// cmd/gadgetgen emits this format; cmd/sne and cmd/snd consume it.
package instancefile

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
)

// Instance is a parsed broadcast instance: a game plus a target tree.
type Instance struct {
	Game *broadcast.Game
	Tree []int
}

// State materializes the target tree as a broadcast state.
func (in *Instance) State() (*broadcast.State, error) {
	return broadcast.NewState(in.Game, in.Tree)
}

// Write serializes an instance.
func Write(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	g := in.Game.G
	fmt.Fprintf(bw, "nodes %d\n", g.N())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "edge %d %d %g\n", e.U, e.V, e.W)
	}
	fmt.Fprintf(bw, "root %d\n", in.Game.Root)
	for v, m := range in.Game.Mult {
		if v != in.Game.Root && m != 1 {
			fmt.Fprintf(bw, "mult %d %d\n", v, m)
		}
	}
	if len(in.Tree) > 0 {
		parts := make([]string, len(in.Tree))
		for i, id := range in.Tree {
			parts[i] = strconv.Itoa(id)
		}
		fmt.Fprintf(bw, "tree %s\n", strings.Join(parts, " "))
	}
	return bw.Flush()
}

// NewScanner returns a line scanner sized for instance-scale inputs: a
// 64 KiB initial buffer growable to 4 MiB, enough for the longest 'tree'
// lines the gadget generators emit. The sweep spec parser
// (internal/sweep.ParseSpec) shares it, so the repo's scanner-based
// line codecs tolerate the same line lengths. (The sweep *checkpoint*
// reader is not scanner-based — it reads whole files to recover torn
// tails by byte offset.)
func NewScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	return sc
}

// Read parses an instance. Missing tree lines default to a minimum
// spanning tree; missing mult lines default to one player per node.
func Read(r io.Reader) (*Instance, error) {
	sc := NewScanner(r)
	var g *graph.Graph
	root := -1
	var tree []int
	multOverride := map[int]int64{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("instancefile: line %d: want 'nodes <n>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("instancefile: line %d: bad node count", lineNo)
			}
			g = graph.New(n)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("instancefile: line %d: 'edge' before 'nodes'", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("instancefile: line %d: want 'edge <u> <v> <w>'", lineNo)
			}
			u, e1 := strconv.Atoi(fields[1])
			v, e2 := strconv.Atoi(fields[2])
			w, e3 := strconv.ParseFloat(fields[3], 64)
			if e1 != nil || e2 != nil || e3 != nil || u < 0 || v < 0 || u >= g.N() || v >= g.N() || u == v ||
				w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("instancefile: line %d: malformed edge", lineNo)
			}
			g.AddEdge(u, v, w)
		case "root":
			if len(fields) != 2 {
				return nil, fmt.Errorf("instancefile: line %d: want 'root <r>'", lineNo)
			}
			r, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("instancefile: line %d: bad root", lineNo)
			}
			root = r
		case "mult":
			if len(fields) != 3 {
				return nil, fmt.Errorf("instancefile: line %d: want 'mult <node> <m>'", lineNo)
			}
			v, e1 := strconv.Atoi(fields[1])
			m, e2 := strconv.ParseInt(fields[2], 10, 64)
			if e1 != nil || e2 != nil {
				return nil, fmt.Errorf("instancefile: line %d: malformed mult", lineNo)
			}
			multOverride[v] = m
		case "tree":
			if g == nil {
				return nil, fmt.Errorf("instancefile: line %d: 'tree' before 'nodes'", lineNo)
			}
			for _, f := range fields[1:] {
				id, err := strconv.Atoi(f)
				if err != nil || id < 0 || id >= g.M() {
					return nil, fmt.Errorf("instancefile: line %d: bad tree edge %q", lineNo, f)
				}
				tree = append(tree, id)
			}
		default:
			return nil, fmt.Errorf("instancefile: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("instancefile: missing 'nodes'")
	}
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("instancefile: missing or invalid 'root'")
	}
	mult := make([]int64, g.N())
	for v := range mult {
		if v != root {
			mult[v] = 1
		}
	}
	for v, m := range multOverride {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("instancefile: mult node %d out of range", v)
		}
		mult[v] = m
	}
	bg, err := broadcast.NewGameMult(g, root, mult)
	if err != nil {
		return nil, err
	}
	if tree == nil {
		tree, err = graph.MST(g)
		if err != nil {
			return nil, err
		}
	}
	if !g.IsSpanningTree(tree) {
		return nil, fmt.Errorf("instancefile: 'tree' is not a spanning tree")
	}
	return &Instance{Game: bg, Tree: tree}, nil
}
