package instancefile

import (
	"bytes"
	"strings"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
)

func TestRoundTrip(t *testing.T) {
	g := graph.Cycle(4, 1)
	mult := []int64{0, 1, 3, 1, 2}
	bg, err := broadcast.NewGameMult(g, 0, mult)
	if err != nil {
		t.Fatal(err)
	}
	in := &Instance{Game: bg, Tree: []int{0, 1, 2, 3}}
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Game.G.N() != 5 || back.Game.G.M() != 5 || back.Game.Root != 0 {
		t.Fatalf("round trip shape wrong")
	}
	for v, m := range mult {
		if back.Game.Mult[v] != m {
			t.Errorf("mult[%d] = %d, want %d", v, back.Game.Mult[v], m)
		}
	}
	if len(back.Tree) != 4 {
		t.Errorf("tree = %v", back.Tree)
	}
	if _, err := back.State(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultTreeIsMST(t *testing.T) {
	src := "nodes 3\nedge 0 1 1\nedge 1 2 1\nedge 0 2 5\nroot 0\n"
	in, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tree) != 2 || in.Game.G.WeightOf(in.Tree) != 2 {
		t.Errorf("default tree %v", in.Tree)
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{
		"",
		"nodes 2\nedge 0 1 1\n",                 // no root
		"nodes 2\nedge 0 1 1\nroot 9\n",         // bad root
		"nodes 2\nedge 0 1 1\nroot 0\ntree 5\n", // bad tree edge
		"nodes 3\nedge 0 1 1\nedge 1 2 1\nroot 0\ntree 0\n", // non-spanning
		"nodes 2\nedge 0 1 1\nroot 0\nmult 9 2\n",           // bad mult node
		"nodes 2\nedge 0 1 1\nroot 0\nmult 1 0\n",           // zero mult
		"nodes 2\nfrobnicate\n",                             // unknown directive
		"nodes 2\nedge 0 0 1\nroot 0\n",                     // self loop
		"edge 0 1 1\n",                                      // edge before nodes
	}
	for i, src := range bad {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("bad input %d accepted", i)
		}
	}
}

func TestComments(t *testing.T) {
	src := "# instance\nnodes 2\n\nedge 0 1 2.5\nroot 0\n"
	in, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if in.Game.G.Weight(0) != 2.5 {
		t.Error("weight parsed wrong")
	}
}
