package instancefile

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
)

// sameInstance asserts two parsed instances are identical: graph shape,
// exact edge list bits, root, multiplicities and target tree.
func sameInstance(t *testing.T, label string, a, b *Instance) {
	t.Helper()
	ga, gb := a.Game.G, b.Game.G
	if ga.N() != gb.N() || ga.M() != gb.M() {
		t.Fatalf("%s: shape (%d,%d) != (%d,%d)", label, ga.N(), ga.M(), gb.N(), gb.M())
	}
	for id := 0; id < ga.M(); id++ {
		ea, eb := ga.Edge(id), gb.Edge(id)
		if ea.U != eb.U || ea.V != eb.V || math.Float64bits(ea.W) != math.Float64bits(eb.W) {
			t.Fatalf("%s: edge %d %+v != %+v", label, id, ea, eb)
		}
	}
	if a.Game.Root != b.Game.Root {
		t.Fatalf("%s: root %d != %d", label, a.Game.Root, b.Game.Root)
	}
	for v := range a.Game.Mult {
		if a.Game.Mult[v] != b.Game.Mult[v] {
			t.Fatalf("%s: mult[%d] %d != %d", label, v, a.Game.Mult[v], b.Game.Mult[v])
		}
	}
	if len(a.Tree) != len(b.Tree) {
		t.Fatalf("%s: tree %v != %v", label, a.Tree, b.Tree)
	}
	for i := range a.Tree {
		if a.Tree[i] != b.Tree[i] {
			t.Fatalf("%s: tree %v != %v", label, a.Tree, b.Tree)
		}
	}
}

// TestDecoderMatchesRead: the pooled byte decoder must accept exactly
// what the scanner-based Read accepts, byte-identically — and reject
// what it rejects — across random instances and a curated edge-case set.
func TestDecoderMatchesRead(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var d Decoder
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.RandomConnected(rng, n, 0.3, 0.5, 4)
		mult := make([]int64, n)
		for v := range mult {
			mult[v] = int64(1 + rng.Intn(3))
		}
		root := rng.Intn(n)
		mult[root] = 0
		bg, err := broadcast.NewGameMult(g, root, mult)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, &Instance{Game: bg, Tree: tree}); err != nil {
			t.Fatal(err)
		}
		text := buf.String()

		ref, err := Read(strings.NewReader(text))
		if err != nil {
			t.Fatalf("trial %d: Read: %v", trial, err)
		}
		got, err := d.DecodeString(text)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		sameInstance(t, fmt.Sprintf("trial %d", trial), got, ref)
	}

	cases := []string{
		"nodes 3\nedge 0 1 1\nedge 1 2 1\nedge 0 2 5\nroot 0\n",
		"nodes 2\nedge 0 1 2.5\nroot 1\nmult 0 3\ntree 0\n",
		"# comment\n\nnodes 1\nroot 0\n",
		"nodes 1\nroot 0",                                                // no trailing newline
		"nodes 2\nedge 0 1 1\nroot 0\ntree\n",                            // bare tree directive → MST default
		"mult 0 5\nnodes 2\nedge 0 1 1\nroot 0",                          // mult before nodes
		"nodes 2\r\nedge 0 1 1\r\nroot 0\r\n",                            // CRLF
		"nodes 3\nedge 0 1 1\nnodes 3\nedge 0 1 1\nedge 1 2 1\nroot 0\n", // re-declared nodes
		"nodes 2\nedge 0 1 1\nroot 0\nmult 1 2\nmult 1 7\n",              // last mult wins
		// Rejections: both parsers must refuse each of these.
		"",
		"nodes 0\n",
		"nodes 2\nroot 0\n",
		"nodes 2\nedge 0 1 1\n",
		"nodes 2\nedge 0 1 1\nroot 5\n",
		"nodes 2\nedge 0 0 1\nroot 0\n",
		"nodes 2\nedge 0 1 -3\nroot 0\n",
		"nodes 2\nedge 0 1 nan\nroot 0\n",
		"nodes 2\nedge 0 1 +Inf\nroot 0\n",
		"nodes 2\nedge 0 1 1e309\nroot 0\n",
		"edge 0 1 1\nnodes 2\nroot 0\n",
		"tree 0\nnodes 2\nedge 0 1 1\nroot 0\n",
		"nodes 2\nedge 0 1 1\nroot 0\ntree 9\n",
		"nodes 2\nedge 0 1 1\nroot 0\nmult 9 1\n",
		"nodes 2\nedge 0 1 1\nroot 0\nbogus 1\n",
		"nodes 2\nedge 0 1 1\nroot 0\ntree 0 0\n",
		"nodes two\n",
		"nodes 2 2\n",
		"nodes 99999999999999999999\n",
	}
	for i, text := range cases {
		ref, refErr := Read(strings.NewReader(text))
		got, gotErr := d.DecodeString(text)
		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("case %d %q: Read err %v, Decode err %v", i, text, refErr, gotErr)
		}
		if refErr == nil {
			sameInstance(t, fmt.Sprintf("case %d", i), got, ref)
		}
	}
}

// TestDecoderScratchReuse: consecutive decodes through one Decoder must
// not alias each other's instances — the returned instance owns its
// graph and tree.
func TestDecoderScratchReuse(t *testing.T) {
	var d Decoder
	a, err := d.DecodeString("nodes 3\nedge 0 1 1\nedge 1 2 2\nroot 0\ntree 0 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeString("nodes 2\nedge 0 1 9\nroot 0\n"); err != nil {
		t.Fatal(err)
	}
	if a.Game.G.N() != 3 || a.Game.G.M() != 2 || a.Game.G.Weight(1) != 2 || len(a.Tree) != 2 {
		t.Fatalf("first instance mutated by the second decode: %+v", a)
	}
}
