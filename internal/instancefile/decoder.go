package instancefile

import (
	"bytes"
	"fmt"
	"math"
	"strconv"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
)

// Decoder parses instance text with reusable scratch: the field splitter,
// edge list and multiplicity tables are kept between calls, so a pooled
// Decoder on a serving hot path pays roughly one allocation per numeric
// field instead of the scanner-and-strings.Fields churn of a fresh parse.
// The returned Instance owns freshly allocated graph/game state and is
// independent of the Decoder; only the parse scratch is reused. A Decoder
// is not safe for concurrent use — pool them (sync.Pool) instead.
type Decoder struct {
	buf      []byte
	edges    []graph.Edge
	multNode []int
	multVal  []int64
	tree     []int
}

// Decode parses one instance from data. It accepts exactly the format
// documented on the package (and shares all of Read's defaulting: missing
// tree → MST, missing mult → one player per non-root node).
func (d *Decoder) Decode(data []byte) (*Instance, error) {
	d.edges = d.edges[:0]
	d.multNode = d.multNode[:0]
	d.multVal = d.multVal[:0]
	d.tree = d.tree[:0]

	n := -1 // node count; -1 until the 'nodes' directive
	root := -1
	lineNo := 0
	for off := 0; off < len(data); {
		end := bytes.IndexByte(data[off:], '\n')
		var line []byte
		if end < 0 {
			line = data[off:]
			off = len(data)
		} else {
			line = data[off : off+end]
			off += end + 1
		}
		lineNo++
		line = trimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		dir, rest := nextField(line)
		switch string(dir) {
		case "nodes":
			f1, rest := nextField(rest)
			if f1 == nil || len(trimSpace(rest)) != 0 {
				return nil, fmt.Errorf("instancefile: line %d: want 'nodes <n>'", lineNo)
			}
			v, err := parseInt(f1)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("instancefile: line %d: bad node count", lineNo)
			}
			n = v
			d.edges = d.edges[:0] // re-declaring nodes drops prior edges, like Read always did
		case "edge":
			if n < 0 {
				return nil, fmt.Errorf("instancefile: line %d: 'edge' before 'nodes'", lineNo)
			}
			f1, rest := nextField(rest)
			f2, rest := nextField(rest)
			f3, rest := nextField(rest)
			if f3 == nil || len(trimSpace(rest)) != 0 {
				return nil, fmt.Errorf("instancefile: line %d: want 'edge <u> <v> <w>'", lineNo)
			}
			u, e1 := parseInt(f1)
			v, e2 := parseInt(f2)
			w, e3 := strconv.ParseFloat(string(f3), 64)
			if e1 != nil || e2 != nil || e3 != nil || u < 0 || v < 0 || u >= n || v >= n || u == v ||
				w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("instancefile: line %d: malformed edge", lineNo)
			}
			d.edges = append(d.edges, graph.Edge{U: u, V: v, W: w})
		case "root":
			f1, rest := nextField(rest)
			if f1 == nil || len(trimSpace(rest)) != 0 {
				return nil, fmt.Errorf("instancefile: line %d: want 'root <r>'", lineNo)
			}
			r, err := parseInt(f1)
			if err != nil {
				return nil, fmt.Errorf("instancefile: line %d: bad root", lineNo)
			}
			root = r
		case "mult":
			f1, rest := nextField(rest)
			f2, rest := nextField(rest)
			if f2 == nil || len(trimSpace(rest)) != 0 {
				return nil, fmt.Errorf("instancefile: line %d: want 'mult <node> <m>'", lineNo)
			}
			v, e1 := parseInt(f1)
			m, e2 := parseInt64(f2)
			if e1 != nil || e2 != nil {
				return nil, fmt.Errorf("instancefile: line %d: malformed mult", lineNo)
			}
			d.multNode = append(d.multNode, v)
			d.multVal = append(d.multVal, m)
		case "tree":
			if n < 0 {
				return nil, fmt.Errorf("instancefile: line %d: 'tree' before 'nodes'", lineNo)
			}
			for {
				f, r := nextField(rest)
				if f == nil {
					break
				}
				rest = r
				id, err := parseInt(f)
				if err != nil || id < 0 || id >= len(d.edges) {
					return nil, fmt.Errorf("instancefile: line %d: bad tree edge %q", lineNo, f)
				}
				d.tree = append(d.tree, id)
			}
		default:
			return nil, fmt.Errorf("instancefile: line %d: unknown directive %q", lineNo, dir)
		}
	}
	if n < 0 {
		return nil, fmt.Errorf("instancefile: missing 'nodes'")
	}
	if root < 0 || root >= n {
		return nil, fmt.Errorf("instancefile: missing or invalid 'root'")
	}
	tree := d.tree
	if len(tree) == 0 {
		// Matches Read's historical nil-until-appended semantics: a bare
		// 'tree' directive (or none) selects the MST default.
		tree = nil
	}
	return Assemble(graph.NewBulk(n, d.edges), root, d.multNode, d.multVal, tree)
}

// DecodeString is Decode over a string; the single copy into reusable
// scratch is what lets the parser keep zero-copy field slices.
func (d *Decoder) DecodeString(text string) (*Instance, error) {
	d.buf = append(d.buf[:0], text...)
	return d.Decode(d.buf)
}

// Assemble finalizes a parsed instance: fill default multiplicities
// (one player per non-root node), apply overrides in order (last one
// wins), construct the game, default a missing tree to an MST, and
// verify the tree spans. Both the text decoder and the binary wire
// decoder (internal/serve/wire) funnel through here, so the two formats
// accept and reject exactly the same instances past the syntax layer.
// A nil tree selects the MST default; an empty non-nil tree is invalid
// unless it spans (single-node graphs).
func Assemble(g *graph.Graph, root int, multNode []int, multVal []int64, tree []int) (*Instance, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("instancefile: missing or invalid 'root'")
	}
	mult := make([]int64, g.N())
	for v := range mult {
		if v != root {
			mult[v] = 1
		}
	}
	for i, v := range multNode {
		if v < 0 || v >= g.N() {
			return nil, fmt.Errorf("instancefile: mult node %d out of range", v)
		}
		mult[v] = multVal[i]
	}
	bg, err := broadcast.NewGameMult(g, root, mult)
	if err != nil {
		return nil, err
	}
	if tree == nil {
		tree, err = graph.MST(g)
		if err != nil {
			return nil, err
		}
	} else {
		tree = append([]int(nil), tree...) // detach from decoder scratch
	}
	if !g.IsSpanningTree(tree) {
		return nil, fmt.Errorf("instancefile: 'tree' is not a spanning tree")
	}
	return &Instance{Game: bg, Tree: tree}, nil
}

// trimSpace is bytes.TrimSpace restricted to the ASCII whitespace the
// format uses; it never allocates.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && isSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\v' || c == '\f'
}

// nextField splits the first whitespace-delimited field off b, returning
// (nil, b) when none remains. It allocates nothing.
func nextField(b []byte) (field, rest []byte) {
	i := 0
	for i < len(b) && isSpace(b[i]) {
		i++
	}
	if i == len(b) {
		return nil, nil
	}
	j := i
	for j < len(b) && !isSpace(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

// parseInt mirrors strconv.Atoi over bytes without the string copy:
// optional sign, decimal digits, overflow-checked.
func parseInt(b []byte) (int, error) {
	v, err := parseInt64(b)
	if err != nil {
		return 0, err
	}
	if int64(int(v)) != v {
		return 0, errRange
	}
	return int(v), nil
}

var (
	errSyntax = fmt.Errorf("instancefile: invalid integer")
	errRange  = fmt.Errorf("instancefile: integer out of range")
)

func parseInt64(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, errSyntax
	}
	neg := false
	if b[0] == '+' || b[0] == '-' {
		neg = b[0] == '-'
		b = b[1:]
		if len(b) == 0 {
			return 0, errSyntax
		}
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errSyntax
		}
		if v > (1<<63-1)/10 {
			return 0, errRange
		}
		v = v*10 + uint64(c-'0')
		if !neg && v > 1<<63-1 || neg && v > 1<<63 {
			return 0, errRange
		}
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}
