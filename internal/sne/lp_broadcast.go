package sne

import (
	"fmt"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/lp"
)

// broadcastLP is the LP (3) of a broadcast state in sparse form: one
// variable per tree edge, one GE row per non-tree edge direction. The
// paper's row for player u and non-tree edge (u,v) is
//
//	Σ_{a∈T_u} (w_a−b_a)/n_a ≤ w_uv − b_uv + Σ_{a∈T_v} (w_a−b_a)/(n_a+1−n_a^u).
//
// Edges shared by T_u and T_v (those above x = lca(u,v)) appear on both
// sides with denominator n_a and cancel; b_uv is fixed to zero because
// subsidizing a non-tree edge only strengthens the deviation. Moving the
// variables left and constants right gives
//
//	Σ_{a∈T_u\T_x} b_a/n_a − Σ_{a∈T_v\T_x} b_a/(n_a+1) ≥ C_uv,
//
// with C_uv = (up0[u]−up0[x]) − w_uv − (dev0[v]−dev0[x]) evaluated at
// zero subsidies. Rows are batched straight off the State's cached
// Lemma-2 prefix sums into preallocated sparse buffers: no per-row maps,
// two parent-chain walks and one AddRow per deviation.
type broadcastLP struct {
	model  *lp.Model
	varOf  []int // edge ID → LP variable (tree edges only; -1 otherwise)
	edgeOf []int // LP variable → edge ID

	// Per-row deviation metadata, for shadow pricing: the deviating
	// player, the entry node and the non-tree edge of each LP row.
	rowU, rowV, rowEdge []int

	// Row-emission scratch, pooled with the struct.
	cols []int
	vals []float64
}

// buildBroadcastLP materializes every LP (3) row of the state.
func buildBroadcastLP(st *broadcast.State) *broadcastLP {
	return buildBroadcastLPInto(st, nil)
}

// buildBroadcastLPInto is buildBroadcastLP with workspace reuse: a
// non-nil bl is reset in place (model arenas and index slices keep their
// capacity), so rebuilding the LP for instance after instance of a sweep
// allocates nothing in steady state.
func buildBroadcastLPInto(st *broadcast.State, bl *broadcastLP) *broadcastLP {
	g := st.BG.G
	if bl == nil {
		bl = &broadcastLP{model: lp.NewModel()}
	} else {
		bl.model.Reset()
	}
	if cap(bl.varOf) < g.M() {
		bl.varOf = make([]int, g.M())
	}
	bl.varOf = bl.varOf[:g.M()]
	for i := range bl.varOf {
		bl.varOf[i] = -1
	}
	nTree := len(st.Tree.EdgeIDs)
	maxRows := 2 * (g.M() - nTree) // two directions per non-tree edge
	// Nonzero hint: rows hold two disjoint root-path segments, typically
	// far shorter than the tree, so reserve a modest per-row budget plus
	// a tree-sized cushion for deep (path-like) topologies rather than
	// the Θ(rows·n) worst case.
	bl.model.Grow(nTree, maxRows, 4*maxRows+2*nTree)
	bl.edgeOf = grow(bl.edgeOf, nTree)
	bl.rowU = grow(bl.rowU, maxRows)
	bl.rowV = grow(bl.rowV, maxRows)
	bl.rowEdge = grow(bl.rowEdge, maxRows)
	for _, id := range st.Tree.EdgeIDs {
		bl.varOf[id] = bl.model.AddVar(1, g.Weight(id))
		bl.edgeOf = append(bl.edgeOf, id)
	}
	// The Lemma-2 prefix sums at b = 0 come straight from the State's
	// memoized cache: up0 prices the tree path, dev0 the deviation
	// segment, so each row's constant is O(1) on top of the two chain
	// walks that emit its coefficients.
	up0, dev0 := st.PrefixSums(nil)
	if cap(bl.cols) == 0 {
		bl.cols = make([]int, 0, 16)
		bl.vals = make([]float64, 0, 16)
	}
	cols, vals := bl.cols, bl.vals
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		if st.Tree.Contains(e.ID) {
			continue
		}
		for dir := 0; dir < 2; dir++ {
			u, v := e.U, e.V
			if dir == 1 {
				u, v = v, u
			}
			if u == st.BG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			cols, vals = cols[:0], vals[:0]
			for w := u; w != x; w = st.Tree.Parent[w] {
				id := st.Tree.ParEdge[w]
				cols = append(cols, bl.varOf[id])
				vals = append(vals, 1/float64(st.NA[id]))
			}
			for w := v; w != x; w = st.Tree.Parent[w] {
				id := st.Tree.ParEdge[w]
				cols = append(cols, bl.varOf[id])
				vals = append(vals, -1/float64(st.NA[id]+1))
			}
			if len(cols) == 0 {
				// No variables can appear only when u == x (v below u);
				// then rhs = −w_uv − devseg ≤ 0 and the row is vacuous.
				continue
			}
			rhs := (up0[u] - up0[x]) - e.W - (dev0[v] - dev0[x])
			bl.model.AddRow(cols, vals, lp.GE, rhs)
			bl.rowU = append(bl.rowU, u)
			bl.rowV = append(bl.rowV, v)
			bl.rowEdge = append(bl.rowEdge, e.ID)
		}
	}
	bl.cols, bl.vals = cols, vals // hand grown scratch back to the pool
	return bl
}

// grow returns s emptied with capacity for at least n elements.
func grow(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, 0, n)
	}
	return s[:0]
}

// subsidy converts an LP point into a subsidy assignment.
func (bl *broadcastLP) subsidy(g interface{ Weight(int) float64 }, x []float64, m int) game.Subsidy {
	b := make(game.Subsidy, m)
	for j, id := range bl.edgeOf {
		b[id] = x[j]
	}
	snap(b, g)
	return b
}

// finishBroadcast converts an Optimal LP solution into a verified Result.
func finishBroadcast(st *broadcast.State, bl *broadcastLP, sol *lp.Solution) (*Result, error) {
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sne: broadcast LP status %v (should be feasible by full subsidy)", sol.Status)
	}
	b := bl.subsidy(st.BG.G, sol.X, st.BG.G.M())
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots, Basis: sol.Basis}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, fmt.Errorf("sne: LP(3) produced a non-enforcing assignment: %w", err)
	}
	return res, nil
}

// solveBroadcast runs the LP through the chosen solver and verifies the
// resulting assignment enforces the state. A non-nil warm basis — from an
// earlier solve of this or a structurally compatible nearby instance —
// starts the sparse solver from it (lp.ResolveFrom projects and falls
// back to a cold solve when the basis does not help).
func solveBroadcast(st *broadcast.State, dense bool, warm *lp.Basis) (*broadcastLP, *lp.Solution, *Result, error) {
	bl := buildBroadcastLP(st)
	var sol *lp.Solution
	var err error
	switch {
	case dense:
		sol, err = bl.model.SolveDense()
	case warm != nil:
		sol, err = bl.model.ResolveFrom(warm)
	default:
		sol, err = bl.model.Solve()
	}
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := finishBroadcast(st, bl, sol)
	if err != nil {
		return nil, nil, nil, err
	}
	return bl, sol, res, nil
}

// BroadcastLPChain is the cross-instance homotopy driver for LP (3): it
// pools the LP build workspace (model arenas included) AND hands each
// instance's optimal basis to the next solve, which is the whole point
// on a nearby-instance family — identical structure means the projected
// basis is a few dual pivots from the new optimum, and the pooled build
// means the model rebuild allocates nothing. Not safe for concurrent
// use: one chain per worker.
type BroadcastLPChain struct {
	bl    *broadcastLP
	basis *lp.Basis
}

// NewBroadcastLPChain returns an empty chain.
func NewBroadcastLPChain() *BroadcastLPChain { return &BroadcastLPChain{} }

// Basis exposes the chain's current warm-start basis (nil before the
// first solve).
func (c *BroadcastLPChain) Basis() *lp.Basis { return c.basis }

// Solve computes the LP (3) optimum of st warm-started from the chain's
// incumbent basis, and advances the chain. The result is identical to
// SolveBroadcastLP up to pivot path.
func (c *BroadcastLPChain) Solve(st *broadcast.State) (*Result, error) {
	c.Prepare(st)
	res, _, err := c.SolvePrepared(st, c.basis)
	return res, err
}

// Prepare builds the LP (3) of st into the chain's pooled workspace —
// without solving — and returns the model's structure fingerprint. The
// fingerprint is the key a serving layer uses to look up a warm basis
// from a structurally identical earlier instance (a basis cache) before
// committing to a solve; follow with SolvePrepared.
func (c *BroadcastLPChain) Prepare(st *broadcast.State) uint64 {
	c.bl = buildBroadcastLPInto(st, c.bl)
	return c.bl.model.StructureFingerprint()
}

// SolvePrepared solves the LP built by the immediately preceding Prepare,
// warm-starting from warm when it is compatible with the prepared model
// (cold otherwise — lp.ResolveFrom's own projection fallback still
// applies on top), verifies the assignment and advances the chain. The
// returned flag reports whether the warm basis was actually attempted:
// the warm-vs-cold solve counters a server exports come from it.
func (c *BroadcastLPChain) SolvePrepared(st *broadcast.State, warm *lp.Basis) (*Result, bool, error) {
	if c.bl == nil {
		c.bl = buildBroadcastLPInto(st, c.bl)
	}
	usedWarm := warm.CompatibleWith(c.bl.model)
	var sol *lp.Solution
	var err error
	if usedWarm {
		sol, err = c.bl.model.ResolveFrom(warm)
	} else {
		sol, err = c.bl.model.Solve()
	}
	if err != nil {
		return nil, usedWarm, err
	}
	res, err := finishBroadcast(st, c.bl, sol)
	if err != nil {
		return nil, usedWarm, err
	}
	c.basis = res.Basis
	return res, usedWarm, nil
}

// SolveBroadcastLP computes a minimum-cost subsidy assignment enforcing
// the broadcast state st, via the paper's LP (3) on the sparse revised
// simplex. The LP is always feasible (full subsidies enforce anything),
// so the result is always Optimal barring numerical failure.
func SolveBroadcastLP(st *broadcast.State) (*Result, error) {
	_, _, res, err := solveBroadcast(st, false, nil)
	return res, err
}

// SolveBroadcastLPFrom is SolveBroadcastLP warm-started from the basis of
// a nearby instance's solve — the cross-instance homotopy entry point the
// sne-lp sweep scenario chains through a family. The result is the same
// optimum (the basis only changes the pivot path), and Result.Basis
// carries the chain forward.
func SolveBroadcastLPFrom(st *broadcast.State, warm *lp.Basis) (*Result, error) {
	_, _, res, err := solveBroadcast(st, false, warm)
	return res, err
}

// SolveBroadcastLPNaive solves the same LP on the dense two-phase
// tableau. It is the differential-test oracle for SolveBroadcastLP, in
// the same pattern as the other Naive implementations in this library.
func SolveBroadcastLPNaive(st *broadcast.State) (*Result, error) {
	_, _, res, err := solveBroadcast(st, true, nil)
	return res, err
}

// MinSubsidyLowerBoundLP returns the LP relaxation value only (no
// verification round-trip); used by analyses that need many optima fast.
func MinSubsidyLowerBoundLP(st *broadcast.State) (float64, error) {
	r, err := SolveBroadcastLP(st)
	if err != nil {
		return math.NaN(), err
	}
	return r.Cost, nil
}
