package sne

import (
	"fmt"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/lp"
)

// broadcastRow is one LP (3) constraint in subsidy-variable form. The
// paper's row for player u and non-tree edge (u,v) is
//
//	Σ_{a∈T_u} (w_a−b_a)/n_a ≤ w_uv − b_uv + Σ_{a∈T_v} (w_a−b_a)/(n_a+1−n_a^u).
//
// Edges shared by T_u and T_v (those above x = lca(u,v)) appear on both
// sides with denominator n_a and cancel; b_uv is fixed to zero because
// subsidizing a non-tree edge only strengthens the deviation. Moving the
// variables left and constants right gives
//
//	Σ_{a∈T_u\T_x} b_a/n_a − Σ_{a∈T_v\T_x} b_a/(n_a+1) ≥ C_uv,
//
// with C_uv = (up0[u]−up0[x]) − w_uv − (dev0[v]−dev0[x]) evaluated at
// zero subsidies.
type broadcastRow struct {
	coefs map[int]float64 // keyed by tree-edge ID
	rhs   float64
	u, v  int // deviating player and entry node, for diagnostics
	edge  int // the non-tree edge
}

// buildBroadcastRows materializes every LP (3) row of the state.
func buildBroadcastRows(st *broadcast.State) []broadcastRow {
	g := st.BG.G
	up0 := st.CostsToRoot(nil)
	dev0 := make([]float64, g.N())
	for _, v := range st.Tree.Order {
		if v == st.BG.Root {
			continue
		}
		id := st.Tree.ParEdge[v]
		dev0[v] = dev0[st.Tree.Parent[v]] + g.Weight(id)/float64(st.NA[id]+1)
	}
	var rows []broadcastRow
	for _, e := range g.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.BG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			coefs := make(map[int]float64)
			// Walk the two parent chains directly instead of
			// materializing PathUpTo slices (2 allocations per row).
			for w := u; w != x; w = st.Tree.Parent[w] {
				id := st.Tree.ParEdge[w]
				coefs[id] += 1 / float64(st.NA[id])
			}
			for w := v; w != x; w = st.Tree.Parent[w] {
				id := st.Tree.ParEdge[w]
				coefs[id] -= 1 / float64(st.NA[id]+1)
			}
			rhs := (up0[u] - up0[x]) - e.W - (dev0[v] - dev0[x])
			if len(coefs) == 0 {
				// No variables can appear only when u == x (v below u);
				// then rhs = −w_uv − devseg ≤ 0 and the row is vacuous.
				continue
			}
			rows = append(rows, broadcastRow{coefs: coefs, rhs: rhs, u: u, v: v, edge: e.ID})
		}
	}
	return rows
}

// SolveBroadcastLP computes a minimum-cost subsidy assignment enforcing
// the broadcast state st, via the paper's LP (3). The LP is always
// feasible (full subsidies enforce anything), so the result is always
// Optimal barring numerical failure.
func SolveBroadcastLP(st *broadcast.State) (*Result, error) {
	g := st.BG.G
	model := lp.NewModel()
	// One variable per tree edge, in tree-edge order.
	varOf := make(map[int]int, len(st.Tree.EdgeIDs))
	for _, id := range st.Tree.EdgeIDs {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}
	for _, row := range buildBroadcastRows(st) {
		coefs := make(map[int]float64, len(row.coefs))
		for id, c := range row.coefs {
			coefs[varOf[id]] = c
		}
		model.AddConstraint(coefs, lp.GE, row.rhs)
	}
	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sne: broadcast LP status %v (should be feasible by full subsidy)", sol.Status)
	}
	b := game.ZeroSubsidy(g)
	for id, j := range varOf {
		b[id] = sol.X[j]
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, fmt.Errorf("sne: LP(3) produced a non-enforcing assignment: %w", err)
	}
	return res, nil
}

// MinSubsidyLowerBoundLP returns the LP relaxation value only (no
// verification round-trip); used by analyses that need many optima fast.
func MinSubsidyLowerBoundLP(st *broadcast.State) (float64, error) {
	r, err := SolveBroadcastLP(st)
	if err != nil {
		return math.NaN(), err
	}
	return r.Cost, nil
}
