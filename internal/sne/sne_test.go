package sne

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// cycleInstance builds the Theorem-11 instance: unit cycle on n+1 nodes
// rooted at 0 with target tree = the full path (missing edge (n,0)).
func cycleInstance(t testing.TB, n int) *broadcast.State {
	t.Helper()
	g := graph.Cycle(n, 1)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	tree := make([]int, n)
	for i := range tree {
		tree[i] = i
	}
	st, err := broadcast.NewState(bg, tree)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestFullSubsidyEnforces(t *testing.T) {
	st := cycleInstance(t, 8)
	r := FullSubsidy(st)
	if err := VerifyBroadcast(st, r.Subsidy); err != nil {
		t.Fatal(err)
	}
	if r.Cost != 8 {
		t.Errorf("full subsidy cost = %v", r.Cost)
	}
}

func TestBroadcastLPOnEquilibrium(t *testing.T) {
	// A tree that is already an equilibrium needs zero subsidies.
	g := graph.Cycle(2, 1)
	bg, _ := broadcast.NewGame(g, 0)
	st, err := broadcast.NewState(bg, []int{0, 2}) // star at root
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost > 1e-9 {
		t.Errorf("equilibrium tree should need 0 subsidies, got %v", r.Cost)
	}
}

func TestBroadcastLPCycleBounds(t *testing.T) {
	// Theorem 11's analysis: enforcing the path needs at least
	// (n+1)/e − 2 and (by Theorem 6) at most wgt(T)/e = n/e.
	for _, n := range []int{4, 8, 16, 32, 64} {
		st := cycleInstance(t, n)
		r, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := VerifyBroadcast(st, r.Subsidy); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lo := float64(n+1)/math.E - 2
		hi := float64(n) / math.E
		if r.Cost < lo-1e-6 || r.Cost > hi+1e-6 {
			t.Errorf("n=%d: LP cost %v outside [%v, %v]", n, r.Cost, lo, hi)
		}
	}
}

func TestBroadcastLPCycleFractionConvergesToInvE(t *testing.T) {
	st := cycleInstance(t, 200)
	r, err := SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	frac := r.Cost / st.Weight()
	if math.Abs(frac-numeric.InvE) > 0.01 {
		t.Errorf("subsidy fraction %v, want ≈ 1/e = %v", frac, numeric.InvE)
	}
}

// randomBroadcastState builds a random broadcast game and picks a random
// spanning tree as the enforcement target.
func randomBroadcastState(t testing.TB, rng *rand.Rand, n int, p float64) *broadcast.State {
	t.Helper()
	g := graph.RandomConnected(rng, n, p, 0.2, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trees [][]int
	if _, err := graph.EnumerateSpanningTrees(g, 2000, func(tr []int) bool {
		trees = append(trees, tr)
		return true
	}); err != nil {
		// Too many trees: just use the MST.
		mst, merr := graph.MST(g)
		if merr != nil {
			t.Fatal(merr)
		}
		trees = [][]int{mst}
	}
	st, err := broadcast.NewState(bg, trees[rng.Intn(len(trees))])
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestThreeFormulationsAgree is the Theorem-1 cross-check: LP (3), LP (2)
// and row generation are three independent formulations of the same
// optimization problem and must return the same optimal cost.
func TestThreeFormulationsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 25; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(4), 0.5)
		r3, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatalf("trial %d LP(3): %v", trial, err)
		}
		_, gst, err := st.ToGeneral(50)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SolveGeneralLP(gst)
		if err != nil {
			t.Fatalf("trial %d LP(2): %v", trial, err)
		}
		r1, err := SolveRowGeneration(gst, 0)
		if err != nil {
			t.Fatalf("trial %d rowgen: %v", trial, err)
		}
		if !numeric.AlmostEqualTol(r3.Cost, r2.Cost, 1e-6) {
			t.Errorf("trial %d: LP(3) %v vs LP(2) %v", trial, r3.Cost, r2.Cost)
		}
		if !numeric.AlmostEqualTol(r3.Cost, r1.Cost, 1e-6) {
			t.Errorf("trial %d: LP(3) %v vs rowgen %v", trial, r3.Cost, r1.Cost)
		}
	}
}

func TestRowGenerationMulticommodity(t *testing.T) {
	// A genuinely multi-commodity instance (not broadcast): two players
	// with different sources and sinks sharing a middle edge.
	g := graph.New(4)
	g.AddEdge(0, 1, 4) // trunk
	g.AddEdge(1, 2, 4)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 2, 1)
	gm, err := game.New(g, []game.Terminal{{S: 0, T: 2}, {S: 1, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Target: player 0 via trunk 0-1-2, player 1 via 1-2.
	st, err := game.NewState(gm, [][]int{{0, 1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	r, err := SolveRowGeneration(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyGeneral(st, r.Subsidy); err != nil {
		t.Fatal(err)
	}
	// Player 0 pays 4 + 2 = 6 unsubsidized but could go 0-3-2 for 2: the
	// state is not an equilibrium for free, so subsidies are positive.
	if r.Cost <= 0 {
		t.Errorf("expected positive subsidies, got %v", r.Cost)
	}
	r2, err := SolveGeneralLP(st)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqualTol(r.Cost, r2.Cost, 1e-6) {
		t.Errorf("rowgen %v vs LP(2) %v", r.Cost, r2.Cost)
	}
}

// bruteForceAON exhaustively scans all 2^k subsidized subsets of tree
// edges with the independent Lemma-2 checker. The oracle for SolveAON.
func bruteForceAON(t *testing.T, st *broadcast.State) float64 {
	t.Helper()
	g := st.BG.G
	edges := st.Tree.EdgeIDs
	if len(edges) > 16 {
		t.Fatalf("brute force AON on %d edges too large", len(edges))
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(edges); mask++ {
		b := game.ZeroSubsidy(g)
		cost := 0.0
		for i, id := range edges {
			if mask&(1<<i) != 0 {
				b[id] = g.Weight(id)
				cost += b[id]
			}
		}
		if cost >= best {
			continue
		}
		if st.IsEquilibrium(b) {
			best = cost
		}
	}
	return best
}

func TestAONAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	for trial := 0; trial < 20; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(5), 0.5)
		want := bruteForceAON(t, st)
		r, err := SolveAON(st, AONOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !numeric.AlmostEqualTol(r.Cost, want, 1e-7) {
			t.Fatalf("trial %d: AON %v vs brute force %v", trial, r.Cost, want)
		}
		if !r.Subsidy.IsAllOrNothing(st.BG.G) {
			t.Fatalf("trial %d: result is not all-or-nothing", trial)
		}
	}
}

func TestAONCycle(t *testing.T) {
	// On the Theorem-11 cycle the AON optimum must be at least the
	// fractional optimum and at most full subsidy.
	st := cycleInstance(t, 10)
	frac, err := SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	aon, err := SolveAON(st, AONOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if aon.Cost < frac.Cost-1e-9 {
		t.Errorf("AON %v below fractional optimum %v", aon.Cost, frac.Cost)
	}
	if aon.Cost > st.Weight() {
		t.Errorf("AON %v exceeds full subsidy", aon.Cost)
	}
}

func TestGreedyAON(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	for trial := 0; trial < 25; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(5), 0.5)
		gr, err := GreedyAON(st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyBroadcast(st, gr.Subsidy); err != nil {
			t.Fatalf("trial %d greedy invalid: %v", trial, err)
		}
		if !gr.Subsidy.IsAllOrNothing(st.BG.G) {
			t.Fatalf("trial %d: greedy not all-or-nothing", trial)
		}
		opt, err := SolveAON(st, AONOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if gr.Cost < opt.Cost-1e-9 {
			t.Fatalf("trial %d: greedy %v beats exact optimum %v", trial, gr.Cost, opt.Cost)
		}
	}
}

func TestAONAtLeastFractional(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for trial := 0; trial < 15; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(4), 0.6)
		frac, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		aon, err := SolveAON(st, AONOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if aon.Cost < frac.Cost-1e-7 {
			t.Fatalf("trial %d: integral %v < fractional %v", trial, aon.Cost, frac.Cost)
		}
	}
}

func TestAONNodeBudget(t *testing.T) {
	st := cycleInstance(t, 14)
	if _, err := SolveAON(st, AONOptions{MaxNodes: 1}); err != ErrAONBudget {
		t.Errorf("err = %v, want ErrAONBudget", err)
	}
}

func TestVerifyRejectsBadSubsidy(t *testing.T) {
	st := cycleInstance(t, 5)
	b := game.ZeroSubsidy(st.BG.G)
	if err := VerifyBroadcast(st, b); err == nil {
		t.Error("unsubsidized non-equilibrium passed verification")
	}
	b[0] = 99
	if err := VerifyBroadcast(st, b); err == nil {
		t.Error("out-of-range subsidy passed verification")
	}
}

func BenchmarkBroadcastLP32(b *testing.B) {
	st := cycleInstance(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveBroadcastLP(st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAONCycle16(b *testing.B) {
	st := cycleInstance(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAON(st, AONOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestAONOrderingAblationSameOptimum(t *testing.T) {
	// Both edge orderings must reach the same optimal cost — the
	// ordering is a performance knob, never a correctness one.
	rng := rand.New(rand.NewSource(904))
	for trial := 0; trial < 12; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(5), 0.5)
		heavy, err := SolveAON(st, AONOptions{})
		if err != nil {
			t.Fatal(err)
		}
		light, err := SolveAON(st, AONOptions{LightestFirst: true})
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqualTol(heavy.Cost, light.Cost, 1e-7) {
			t.Fatalf("trial %d: orderings disagree: %v vs %v", trial, heavy.Cost, light.Cost)
		}
	}
}

func TestBindingDeviations(t *testing.T) {
	// On the Theorem-11 cycle the binding threat is the far player's
	// bypass via the closing edge.
	st := cycleInstance(t, 10)
	binding, res, err := BindingDeviations(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(binding) == 0 {
		t.Fatal("expected binding deviations on the cycle")
	}
	closing := 10 // the (n,0) edge of graph.Cycle(10, 1)
	top := binding[0]
	if top.ViaEdge != closing {
		t.Errorf("top threat via edge %d, want the closing edge %d", top.ViaEdge, closing)
	}
	if top.ShadowPrice <= 0 {
		t.Errorf("shadow price %v", top.ShadowPrice)
	}
	// The returned enforcement must match the plain LP solve.
	plain, err := SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqualTol(res.Cost, plain.Cost, 1e-7) {
		t.Errorf("costs differ: %v vs %v", res.Cost, plain.Cost)
	}
	// An already-stable tree has no binding rows.
	g2 := graph.Cycle(2, 1)
	bg2, _ := broadcast.NewGame(g2, 0)
	star, err := broadcast.NewState(bg2, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	b2, r2, err := BindingDeviations(star)
	if err != nil {
		t.Fatal(err)
	}
	if len(b2) != 0 || r2.Cost > 1e-9 {
		t.Errorf("stable tree reported binding rows %v cost %v", b2, r2.Cost)
	}
}

func TestBindingDeviationsAreTight(t *testing.T) {
	// Complementary slackness: every row with a positive shadow price
	// must be exactly tight at the optimum — the deviating player is
	// indifferent between her tree path and the threat.
	rng := rand.New(rand.NewSource(905))
	for trial := 0; trial < 10; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(5), 0.5)
		binding, res, err := BindingDeviations(st)
		if err != nil {
			t.Fatal(err)
		}
		bl := buildBroadcastLP(st)
		for _, bd := range binding {
			for i := 0; i < bl.model.NumConstraints(); i++ {
				if bl.rowU[i] != bd.Node || bl.rowEdge[i] != bd.ViaEdge || bl.rowV[i] != bd.EntryNode {
					continue
				}
				cols, vals, _, rhs := bl.model.Row(i)
				lhs := 0.0
				for k, j := range cols {
					lhs += vals[k] * res.Subsidy.At(bl.edgeOf[j])
				}
				if !numeric.AlmostEqualTol(lhs, rhs, 1e-6) {
					t.Fatalf("trial %d: binding row (%d via %d) has slack: %v vs %v",
						trial, bd.Node, bd.ViaEdge, lhs, rhs)
				}
			}
		}
	}
}
