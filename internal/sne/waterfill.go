package sne

import (
	"errors"
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

// WaterFill is a combinatorial SNE heuristic addressing the paper's first
// open problem (Section 6: "design a combinatorial algorithm for SNE ...
// Lemma 2 may be helpful in this direction"). It works directly on the
// Lemma-2 / LP (3) rows, never solving an LP:
//
// while some row  Σ_{a∈A_r} b_a/n_a − Σ_{a∈B_r} b_a/(n_a+1) ≥ C_r  is
// violated, pour subsidies into the row's A-side edges in order of
// crowdedness — least crowded first, exactly the packing that both the
// Theorem-6 construction and the Theorem-11 lower bound identify as the
// most efficient way to lower one player's cost — until the row closes.
//
// Fully subsidizing a row's A-side always satisfies it regardless of what
// happened on its B-side (the identity Σ_A w/n − Σ_B w/(n+1) = C + w_e
// guarantees slack w_e ≥ 0), so each visit can always close its row;
// because B-side pours can reopen other rows, a row visited more than
// maxVisits times has its A-side saturated outright, which bounds the
// total number of iterations.
//
// The result enforces the target but is not always optimal — the
// returned cost is ≥ the LP (3) optimum, and experiment E11 measures the
// gap. Subsidies only ever increase, so the cost is also ≤ wgt(T).
func WaterFill(st *broadcast.State) (*Result, error) {
	g := st.BG.G
	bl := buildBroadcastLP(st)
	nRows := bl.model.NumConstraints()
	b := game.ZeroSubsidy(g)

	// rowValue computes the current LHS of row i under b, straight off
	// the model's CSR arena — no per-row map.
	rowValue := func(i int) float64 {
		cols, vals, _, _ := bl.model.Row(i)
		v := 0.0
		for k, j := range cols {
			v += vals[k] * b[bl.edgeOf[j]]
		}
		return v
	}
	rowRHS := func(i int) float64 {
		_, _, _, rhs := bl.model.Row(i)
		return rhs
	}
	// aSideOf lists row i's positive-coefficient edges, least crowded
	// (largest coefficient 1/n_a) first. The rows never change, so each
	// ordering is built and sorted at most once — on the row's first
	// visit — and revisits (the hot loop) allocate nothing. Unvisited
	// rows, the overwhelming majority, never pay for a sort.
	type aEntry struct {
		id   int
		coef float64
	}
	aSides := make([][]aEntry, nRows)
	empty := []aEntry{}
	// Reused merge scratch: Model.Row may expose duplicate column
	// entries whose coefficients sum (the arena contract), so each row
	// is accumulated per variable before its A-side is read off.
	coefScratch := make([]float64, bl.model.NumVars())
	seen := make([]bool, bl.model.NumVars())
	touched := make([]int, 0, 16)
	aSideOf := func(i int) []aEntry {
		if aSides[i] != nil {
			return aSides[i]
		}
		cols, vals, _, _ := bl.model.Row(i)
		touched = touched[:0]
		for k, j := range cols {
			if !seen[j] {
				seen[j] = true
				touched = append(touched, j)
			}
			coefScratch[j] += vals[k]
		}
		npos := 0
		for _, j := range touched {
			if coefScratch[j] > 0 {
				npos++
			}
		}
		ids := empty
		if npos > 0 {
			ids = make([]aEntry, 0, npos)
			for _, j := range touched {
				if coefScratch[j] > 0 {
					ids = append(ids, aEntry{id: bl.edgeOf[j], coef: coefScratch[j]})
				}
			}
		}
		for _, j := range touched {
			coefScratch[j], seen[j] = 0, false
		}
		sort.Slice(ids, func(x, y int) bool {
			if ids[x].coef != ids[y].coef {
				return ids[x].coef > ids[y].coef
			}
			return ids[x].id < ids[y].id
		})
		aSides[i] = ids
		return ids
	}

	visits := make([]int, nRows)
	maxVisits := 2*nRows + 8
	iters := 0
	for {
		iters++
		if iters > 1000*(nRows+1) {
			return nil, errors.New("sne: water-filling failed to converge")
		}
		// Most violated row.
		worst, worstGap := -1, numeric.Eps
		for i := 0; i < nRows; i++ {
			if gap := rowRHS(i) - rowValue(i); gap > worstGap {
				worst, worstGap = i, gap
			}
		}
		if worst == -1 {
			break
		}
		visits[worst]++
		saturate := visits[worst] > maxVisits
		need := worstGap
		for _, a := range aSideOf(worst) {
			if need <= 0 && !saturate {
				break
			}
			headroom := g.Weight(a.id) - b[a.id]
			if headroom <= 0 {
				continue
			}
			pour := headroom
			if !saturate {
				// Raising b_id by δ raises the row value by coef·δ.
				if want := need / a.coef; want < pour {
					pour = want
				}
			}
			b[a.id] += pour
			need -= pour * a.coef
		}
		if need > numeric.Eps && !saturate {
			// A-side exhausted yet row still open: impossible by the
			// slack identity unless numerics drifted; saturate next time.
			visits[worst] = maxVisits + 1
		}
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: iters}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, err
	}
	return res, nil
}
