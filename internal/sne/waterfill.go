package sne

import (
	"errors"
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

// WaterFill is a combinatorial SNE heuristic addressing the paper's first
// open problem (Section 6: "design a combinatorial algorithm for SNE ...
// Lemma 2 may be helpful in this direction"). It works directly on the
// Lemma-2 / LP (3) rows, never solving an LP:
//
// while some row  Σ_{a∈A_r} b_a/n_a − Σ_{a∈B_r} b_a/(n_a+1) ≥ C_r  is
// violated, pour subsidies into the row's A-side edges in order of
// crowdedness — least crowded first, exactly the packing that both the
// Theorem-6 construction and the Theorem-11 lower bound identify as the
// most efficient way to lower one player's cost — until the row closes.
//
// Fully subsidizing a row's A-side always satisfies it regardless of what
// happened on its B-side (the identity Σ_A w/n − Σ_B w/(n+1) = C + w_e
// guarantees slack w_e ≥ 0), so each visit can always close its row;
// because B-side pours can reopen other rows, a row visited more than
// maxVisits times has its A-side saturated outright, which bounds the
// total number of iterations.
//
// The result enforces the target but is not always optimal — the
// returned cost is ≥ the LP (3) optimum, and experiment E11 measures the
// gap. Subsidies only ever increase, so the cost is also ≤ wgt(T).
func WaterFill(st *broadcast.State) (*Result, error) {
	return WaterFillWith(st, nil)
}

// aEntry is one A-side edge of a row, with its accumulated coefficient.
type aEntry struct {
	id   int
	coef float64
}

// WaterFillWorkspace pools every scratch structure WaterFillWith needs —
// the LP (3) row store (model arenas included), the per-row A-side
// orderings and the merge buffers — so a sweep calling the heuristic on
// instance after instance allocates only each call's Result and subsidy
// vector. A zero value is ready; buffers grow to the largest instance
// seen. Not safe for concurrent use: give each worker its own.
type WaterFillWorkspace struct {
	bl *broadcastLP

	// A-side orderings, stored as (offset, length) into one shared entry
	// arena so slices survive the arena's growth.
	aStart []int32
	aLen   []int32
	aEnts  []aEntry

	coef    []float64
	seen    []bool
	touched []int
	visits  []int
}

// NewWaterFillWorkspace returns an empty reusable workspace.
func NewWaterFillWorkspace() *WaterFillWorkspace { return &WaterFillWorkspace{} }

func growI32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// WaterFillWith is WaterFill running on a reusable workspace (nil
// behaves like WaterFill).
func WaterFillWith(st *broadcast.State, ws *WaterFillWorkspace) (*Result, error) {
	if ws == nil {
		ws = NewWaterFillWorkspace()
	}
	g := st.BG.G
	ws.bl = buildBroadcastLPInto(st, ws.bl)
	bl := ws.bl
	nRows := bl.model.NumConstraints()
	nVars := bl.model.NumVars()
	b := game.ZeroSubsidy(g)

	// rowValue computes the current LHS of row i under b, straight off
	// the model's CSR arena — no per-row map.
	rowValue := func(i int) float64 {
		cols, vals, _, _ := bl.model.Row(i)
		v := 0.0
		for k, j := range cols {
			v += vals[k] * b[bl.edgeOf[j]]
		}
		return v
	}
	rowRHS := func(i int) float64 {
		_, _, _, rhs := bl.model.Row(i)
		return rhs
	}
	// A-side orderings: row i's positive-coefficient edges, least crowded
	// (largest coefficient 1/n_a) first. The rows never change, so each
	// ordering is built and sorted at most once — on the row's first
	// visit — into the workspace's entry arena; revisits (the hot loop)
	// allocate nothing, and unvisited rows, the overwhelming majority,
	// never pay for a sort.
	ws.aStart = growI32s(ws.aStart, nRows)
	ws.aLen = growI32s(ws.aLen, nRows)
	for i := range ws.aStart[:nRows] {
		ws.aStart[i] = -1
	}
	ws.aEnts = ws.aEnts[:0]
	if cap(ws.coef) < nVars {
		ws.coef = make([]float64, nVars)
		ws.seen = make([]bool, nVars)
	}
	coefScratch := ws.coef[:nVars]
	seen := ws.seen[:nVars]
	touched := ws.touched[:0]
	aSideOf := func(i int) []aEntry {
		if ws.aStart[i] >= 0 {
			return ws.aEnts[ws.aStart[i] : ws.aStart[i]+int32(ws.aLen[i])]
		}
		// Model.Row may expose duplicate column entries whose
		// coefficients sum (the arena contract), so accumulate per
		// variable before reading the A-side off.
		cols, vals, _, _ := bl.model.Row(i)
		touched = touched[:0]
		for k, j := range cols {
			if !seen[j] {
				seen[j] = true
				touched = append(touched, j)
			}
			coefScratch[j] += vals[k]
		}
		start := int32(len(ws.aEnts))
		for _, j := range touched {
			if coefScratch[j] > 0 {
				ws.aEnts = append(ws.aEnts, aEntry{id: bl.edgeOf[j], coef: coefScratch[j]})
			}
			coefScratch[j], seen[j] = 0, false
		}
		ids := ws.aEnts[start:]
		sort.Slice(ids, func(x, y int) bool {
			if ids[x].coef != ids[y].coef {
				return ids[x].coef > ids[y].coef
			}
			return ids[x].id < ids[y].id
		})
		ws.aStart[i], ws.aLen[i] = start, int32(len(ids))
		return ids
	}

	if cap(ws.visits) < nRows {
		ws.visits = make([]int, nRows)
	}
	visits := ws.visits[:nRows]
	for i := range visits {
		visits[i] = 0
	}
	maxVisits := 2*nRows + 8
	iters := 0
	for {
		iters++
		if iters > 1000*(nRows+1) {
			return nil, errors.New("sne: water-filling failed to converge")
		}
		// Most violated row.
		worst, worstGap := -1, numeric.Eps
		for i := 0; i < nRows; i++ {
			if gap := rowRHS(i) - rowValue(i); gap > worstGap {
				worst, worstGap = i, gap
			}
		}
		if worst == -1 {
			break
		}
		visits[worst]++
		saturate := visits[worst] > maxVisits
		need := worstGap
		for _, a := range aSideOf(worst) {
			if need <= 0 && !saturate {
				break
			}
			headroom := g.Weight(a.id) - b[a.id]
			if headroom <= 0 {
				continue
			}
			pour := headroom
			if !saturate {
				// Raising b_id by δ raises the row value by coef·δ.
				if want := need / a.coef; want < pour {
					pour = want
				}
			}
			b[a.id] += pour
			need -= pour * a.coef
		}
		if need > numeric.Eps && !saturate {
			// A-side exhausted yet row still open: impossible by the
			// slack identity unless numerics drifted; saturate next time.
			visits[worst] = maxVisits + 1
		}
	}
	ws.touched = touched // hand grown scratch back to the workspace
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: iters}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, err
	}
	return res, nil
}
