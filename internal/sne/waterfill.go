package sne

import (
	"errors"
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

// WaterFill is a combinatorial SNE heuristic addressing the paper's first
// open problem (Section 6: "design a combinatorial algorithm for SNE ...
// Lemma 2 may be helpful in this direction"). It works directly on the
// Lemma-2 / LP (3) rows, never solving an LP:
//
// while some row  Σ_{a∈A_r} b_a/n_a − Σ_{a∈B_r} b_a/(n_a+1) ≥ C_r  is
// violated, pour subsidies into the row's A-side edges in order of
// crowdedness — least crowded first, exactly the packing that both the
// Theorem-6 construction and the Theorem-11 lower bound identify as the
// most efficient way to lower one player's cost — until the row closes.
//
// Fully subsidizing a row's A-side always satisfies it regardless of what
// happened on its B-side (the identity Σ_A w/n − Σ_B w/(n+1) = C + w_e
// guarantees slack w_e ≥ 0), so each visit can always close its row;
// because B-side pours can reopen other rows, a row visited more than
// maxVisits times has its A-side saturated outright, which bounds the
// total number of iterations.
//
// The result enforces the target but is not always optimal — the
// returned cost is ≥ the LP (3) optimum, and experiment E11 measures the
// gap. Subsidies only ever increase, so the cost is also ≤ wgt(T).
func WaterFill(st *broadcast.State) (*Result, error) {
	g := st.BG.G
	rows := buildBroadcastRows(st)
	b := game.ZeroSubsidy(g)

	// rowValue computes the current LHS of row r under b.
	rowValue := func(r *broadcastRow) float64 {
		v := 0.0
		for id, c := range r.coefs {
			v += c * b[id]
		}
		return v
	}
	// aSideOf lists row i's positive-coefficient edges, least crowded
	// (largest coefficient 1/n_a) first. The rows never change, so each
	// ordering is built and sorted at most once — on the row's first
	// visit — and revisits (the hot loop) allocate nothing. Unvisited
	// rows, the overwhelming majority, never pay for a sort.
	aSides := make([][]int, len(rows))
	empty := []int{}
	aSideOf := func(i int) []int {
		if aSides[i] != nil {
			return aSides[i]
		}
		r := &rows[i]
		var ids []int
		for id, c := range r.coefs {
			if c > 0 {
				ids = append(ids, id)
			}
		}
		if ids == nil {
			ids = empty
		}
		sort.Slice(ids, func(x, y int) bool {
			if r.coefs[ids[x]] != r.coefs[ids[y]] {
				return r.coefs[ids[x]] > r.coefs[ids[y]]
			}
			return ids[x] < ids[y]
		})
		aSides[i] = ids
		return ids
	}

	visits := make([]int, len(rows))
	maxVisits := 2*len(rows) + 8
	iters := 0
	for {
		iters++
		if iters > 1000*(len(rows)+1) {
			return nil, errors.New("sne: water-filling failed to converge")
		}
		// Most violated row.
		worst, worstGap := -1, numeric.Eps
		for i := range rows {
			if gap := rows[i].rhs - rowValue(&rows[i]); gap > worstGap {
				worst, worstGap = i, gap
			}
		}
		if worst == -1 {
			break
		}
		r := &rows[worst]
		visits[worst]++
		saturate := visits[worst] > maxVisits
		need := worstGap
		for _, id := range aSideOf(worst) {
			if need <= 0 && !saturate {
				break
			}
			headroom := g.Weight(id) - b[id]
			if headroom <= 0 {
				continue
			}
			pour := headroom
			if !saturate {
				// Raising b_id by δ raises the row value by coef·δ.
				if want := need / r.coefs[id]; want < pour {
					pour = want
				}
			}
			b[id] += pour
			need -= pour * r.coefs[id]
		}
		if need > numeric.Eps && !saturate {
			// A-side exhausted yet row still open: impossible by the
			// slack identity unless numerics drifted; saturate next time.
			visits[worst] = maxVisits + 1
		}
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: iters}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, err
	}
	return res, nil
}
