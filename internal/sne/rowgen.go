package sne

import (
	"errors"
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// ErrRowGenStalled is returned when constraint generation exceeds its
// iteration budget, which would indicate a tolerance mismatch between the
// LP solver and the separation oracle.
var ErrRowGenStalled = errors.New("sne: row generation exceeded iteration budget")

// SolveRowGeneration solves the exponential LP (1) by lazy constraint
// generation. Starting from the unconstrained relaxation (b = 0), it
// repeatedly asks the separation oracle — a Dijkstra best-response
// computation per player, exactly as described under Theorem 1 — for a
// violated equilibrium constraint, adds that row, and re-solves. Because
// the row set grows within the finite family of (player, simple-path)
// constraints, the loop terminates; on exit the incumbent is feasible for
// the full LP and optimal for a relaxation of it, hence optimal.
//
// Each round appends one sparse row (preallocated buffers, no maps) and
// re-solves warm with lp.ResolveFrom: the previous optimal basis stays
// dual feasible after AddRow, so the dual simplex only repairs the
// infeasibility the new cut introduced — it never rebuilds a tableau.
func SolveRowGeneration(st *game.State, maxIters int) (*Result, error) {
	return SolveRowGenerationFrom(st, maxIters, nil)
}

// SolveRowGenerationFrom is SolveRowGeneration seeded with a basis from a
// nearby instance's solve (cross-instance homotopy): the first re-solve
// projects warm onto the young model — structural variable statuses carry
// the previous optimum's bound pattern — and every later round chains
// within the instance as usual. Result.Basis carries the chain onward. A
// nil or incompatible warm basis degrades to the cold first solve.
func SolveRowGenerationFrom(st *game.State, maxIters int, warm *lp.Basis) (*Result, error) {
	if maxIters <= 0 {
		maxIters = 10000
	}
	g := st.Game().G
	model := lp.NewModel()
	estab := st.EstablishedEdges()
	varOf := make([]int, g.M())
	for i := range varOf {
		varOf[i] = -1
	}
	for _, id := range estab {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}

	res := &Result{}
	b := game.ZeroSubsidy(g)
	onPath := make([]bool, g.M())
	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	basis := warm
	// The strategy profile is fixed for the whole loop — only b moves —
	// which is the separation oracle's contract: on large instances it
	// resumes the scan at the last violator instead of re-proving the
	// satisfied prefix with a Dijkstra per player per round, and on small
	// ones it is exactly st.FindViolation.
	oracle := st.NewSeparationOracle()
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations++
		// Separation: find any player with a profitable deviation.
		viol := oracle.FindViolation(b)
		if viol == nil {
			snap(b, g)
			res.Subsidy = b
			res.Cost = b.Cost()
			res.Basis = basis
			if err := VerifyGeneral(st, b); err != nil {
				return nil, fmt.Errorf("sne: row generation ended non-enforcing: %w", err)
			}
			return res, nil
		}
		// Add the constraint cost_i(T;b) ≤ cost_i(T_{-i}, p; b) for the
		// violating path p. Shared edges (used by i on both sides) cancel.
		i, p := viol.Player, viol.Path
		cols, vals = cols[:0], vals[:0]
		rhs := 0.0
		for _, id := range p {
			onPath[id] = true
		}
		for _, id := range st.Paths[i] {
			if onPath[id] {
				continue // denominator n_a on both sides — cancels
			}
			na := float64(st.Usage(id))
			cols = append(cols, varOf[id])
			vals = append(vals, 1/na)
			rhs += g.Weight(id) / na
		}
		for _, id := range p {
			if st.Uses(i, id) {
				continue
			}
			den := float64(st.Usage(id) + 1)
			if j := varOf[id]; j >= 0 {
				cols = append(cols, j)
				vals = append(vals, -1/den)
			}
			rhs -= g.Weight(id) / den
		}
		for _, id := range p {
			onPath[id] = false
		}
		// Σ_{T_i\p} b/n − Σ_{p\T_i} b/(n+1) ≥ Σ_{T_i\p} w/n − Σ_{p\T_i} w/(n+1)
		model.AddRow(cols, vals, lp.GE, rhs)

		sol, err := model.ResolveFrom(basis)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, fmt.Errorf("sne: row generation LP status %v", sol.Status)
		}
		basis = sol.Basis
		res.Pivots += sol.Pivots
		for _, id := range estab {
			b[id] = numeric.Clamp(sol.X[varOf[id]], 0, g.Weight(id))
		}
	}
	return nil, ErrRowGenStalled
}
