package sne

import (
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/lp"
)

// SolveGeneralLP computes minimum-cost subsidies enforcing the general
// game state st via the paper's polynomial-size LP (2). Variables are the
// subsidies b_a on edges established by st plus, for every player i and
// node v, a shortest-path potential π_i(v) that lower-bounds the length of
// the cheapest deviation prefix in the reduced-cost graph H_i:
//
//	∀ i, (u,v) ∈ E:  π_i(v) ≤ π_i(u) + (w_uv − b_uv)/(n_uv+1−n_uv^i)
//	∀ i:             π_i(s_i) = 0,  π_i(t_i) ≥ Σ_{a∈T_i} (w_a − b_a)/n_a
//
// Θ(n·|V|) variables and Θ(n·|E|) constraints — use it for cross-checks
// and modest instances; the broadcast LP (3) and row generation scale
// further.
func SolveGeneralLP(st *game.State) (*Result, error) {
	g := st.Game().G
	n := st.Game().N()
	model := lp.NewModel()

	// Subsidy variables only on established edges; others are provably 0
	// at any optimum (they can only strengthen deviations).
	estab := st.EstablishedEdges()
	varOf := make(map[int]int, len(estab))
	for _, id := range estab {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}
	// Potentials π_i(v) for v ≠ s_i: π_i(s_i) is the constant 0.
	inf := func() float64 { return 1e308 }
	piVar := make([][]int, n)
	for i := 0; i < n; i++ {
		piVar[i] = make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			if v == st.Game().Terminals[i].S {
				piVar[i][v] = -1
			} else {
				piVar[i][v] = model.AddVar(0, inf())
			}
		}
	}

	addPi := func(coefs map[int]float64, i, v int, c float64) {
		if j := piVar[i][v]; j >= 0 {
			coefs[j] += c
		}
	}

	for i := 0; i < n; i++ {
		// Arc relaxations in both directions for every edge.
		for _, e := range g.Edges() {
			den := float64(st.Usage(e.ID) + 1)
			if st.Uses(i, e.ID) {
				den--
			}
			for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
				u, v := dir[0], dir[1]
				// π_i(v) − π_i(u) + b_e/den ≤ w_e/den
				coefs := make(map[int]float64)
				addPi(coefs, i, v, 1)
				addPi(coefs, i, u, -1)
				if j, ok := varOf[e.ID]; ok {
					coefs[j] += 1 / den
				}
				model.AddConstraint(coefs, lp.LE, e.W/den)
			}
		}
		// π_i(t_i) + Σ_{a∈T_i} b_a/n_a ≥ Σ_{a∈T_i} w_a/n_a.
		coefs := make(map[int]float64)
		addPi(coefs, i, st.Game().Terminals[i].T, 1)
		rhs := 0.0
		for _, id := range st.Paths[i] {
			na := float64(st.Usage(id))
			coefs[varOf[id]] += 1 / na
			rhs += g.Weight(id) / na
		}
		model.AddConstraint(coefs, lp.GE, rhs)
	}

	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sne: general LP status %v (should be feasible by full subsidy)", sol.Status)
	}
	b := game.ZeroSubsidy(g)
	for id, j := range varOf {
		b[id] = sol.X[j]
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots}
	if err := VerifyGeneral(st, b); err != nil {
		return nil, fmt.Errorf("sne: LP(2) produced a non-enforcing assignment: %w", err)
	}
	return res, nil
}
