package sne

import (
	"fmt"
	"math"

	"netdesign/internal/game"
	"netdesign/internal/lp"
)

// SolveGeneralLP computes minimum-cost subsidies enforcing the general
// game state st via the paper's polynomial-size LP (2). Variables are the
// subsidies b_a on edges established by st plus, for every player i and
// node v, a shortest-path potential π_i(v) that lower-bounds the length of
// the cheapest deviation prefix in the reduced-cost graph H_i:
//
//	∀ i, (u,v) ∈ E:  π_i(v) ≤ π_i(u) + (w_uv − b_uv)/(n_uv+1−n_uv^i)
//	∀ i:             π_i(s_i) = 0,  π_i(t_i) ≥ Σ_{a∈T_i} (w_a − b_a)/n_a
//
// Θ(n·|V|) variables and Θ(n·|E|) constraints — use it for cross-checks
// and modest instances; the broadcast LP (3) and row generation scale
// further. Rows are emitted as sparse triples into reused buffers; the
// potentials are genuinely unbounded above, which the revised simplex
// handles natively instead of through expanded bound rows.
func SolveGeneralLP(st *game.State) (*Result, error) {
	g := st.Game().G
	n := st.Game().N()
	model := lp.NewModel()

	// Subsidy variables only on established edges; others are provably 0
	// at any optimum (they can only strengthen deviations).
	estab := st.EstablishedEdges()
	varOf := make([]int, g.M())
	for i := range varOf {
		varOf[i] = -1
	}
	for _, id := range estab {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}
	// Potentials π_i(v) for v ≠ s_i: π_i(s_i) is the constant 0.
	piVar := make([][]int, n)
	for i := 0; i < n; i++ {
		piVar[i] = make([]int, g.N())
		for v := 0; v < g.N(); v++ {
			if v == st.Game().Terminals[i].S {
				piVar[i][v] = -1
			} else {
				piVar[i][v] = model.AddVar(0, math.Inf(1))
			}
		}
	}

	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	addPi := func(i, v int, c float64) {
		if j := piVar[i][v]; j >= 0 {
			cols = append(cols, j)
			vals = append(vals, c)
		}
	}

	for i := 0; i < n; i++ {
		// Arc relaxations in both directions for every edge.
		for _, e := range g.Edges() {
			den := float64(st.Usage(e.ID) + 1)
			if st.Uses(i, e.ID) {
				den--
			}
			for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
				u, v := dir[0], dir[1]
				// π_i(v) − π_i(u) + b_e/den ≤ w_e/den
				cols, vals = cols[:0], vals[:0]
				addPi(i, v, 1)
				addPi(i, u, -1)
				if j := varOf[e.ID]; j >= 0 {
					cols = append(cols, j)
					vals = append(vals, 1/den)
				}
				model.AddRow(cols, vals, lp.LE, e.W/den)
			}
		}
		// π_i(t_i) + Σ_{a∈T_i} b_a/n_a ≥ Σ_{a∈T_i} w_a/n_a.
		cols, vals = cols[:0], vals[:0]
		addPi(i, st.Game().Terminals[i].T, 1)
		rhs := 0.0
		for _, id := range st.Paths[i] {
			na := float64(st.Usage(id))
			cols = append(cols, varOf[id])
			vals = append(vals, 1/na)
			rhs += g.Weight(id) / na
		}
		model.AddRow(cols, vals, lp.GE, rhs)
	}

	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sne: general LP status %v (should be feasible by full subsidy)", sol.Status)
	}
	b := game.ZeroSubsidy(g)
	for _, id := range estab {
		b[id] = sol.X[varOf[id]]
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots}
	if err := VerifyGeneral(st, b); err != nil {
		return nil, fmt.Errorf("sne: LP(2) produced a non-enforcing assignment: %w", err)
	}
	return res, nil
}
