package sne

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// TestWaterFillAllocsRegression pins the heuristic's allocation count on
// a many-iteration instance: with the A-side orderings hoisted out of the
// pour loop, allocations come from row construction and the result only,
// not from the per-visit sort the original performed.
func TestWaterFillAllocsRegression(t *testing.T) {
	// Scan deterministic random MST instances for one the heuristic
	// needs several pour iterations on (B-side pours reopening rows).
	rng := rand.New(rand.NewSource(1))
	var st *broadcast.State
	var res *Result
	for trial := 0; trial < 30 && st == nil; trial++ {
		n := 8 + rng.Intn(16)
		g := graph.RandomConnected(rng, n, 0.3, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		cand, err := broadcast.NewState(bg, mst)
		if err != nil {
			t.Fatal(err)
		}
		r, err := WaterFill(cand)
		if err != nil {
			t.Fatal(err)
		}
		if r.Iterations >= 5 {
			st, res = cand, r
		}
	}
	if st == nil {
		t.Fatal("no multi-iteration instance found; adjust the scan")
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := WaterFill(st); err != nil {
			t.Fatal(err)
		}
	})
	// Construction allocates O(rows); the pour loop must add nothing,
	// so the count cannot scale with iterations × A-side size.
	rows := buildBroadcastLP(st).model.NumConstraints()
	ceiling := float64(12*rows + 64)
	if allocs > ceiling {
		t.Fatalf("WaterFill allocated %.0f times per run (%d rows, %d iterations), want ≤ %.0f",
			allocs, rows, res.Iterations, ceiling)
	}

	// With a pooled workspace the per-call count must collapse to a small
	// constant — result, subsidy vector, per-visited-row sort overhead —
	// independent of the row count (E11's hot loop).
	ws := NewWaterFillWorkspace()
	if _, err := WaterFillWith(st, ws); err != nil { // warm the buffers
		t.Fatal(err)
	}
	pooled := testing.AllocsPerRun(10, func() {
		if _, err := WaterFillWith(st, ws); err != nil {
			t.Fatal(err)
		}
	})
	if pooled > 48 {
		t.Fatalf("pooled WaterFillWith allocated %.0f times per run (%d rows), want ≤ 48", pooled, rows)
	}
	if pooled > allocs {
		t.Fatalf("workspace made things worse: %.0f pooled vs %.0f fresh", pooled, allocs)
	}

	// The workspace must not change results: same state, same subsidy.
	fresh, err := WaterFill(st)
	if err != nil {
		t.Fatal(err)
	}
	reused, err := WaterFillWith(st, ws)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Cost != reused.Cost || fresh.Iterations != reused.Iterations {
		t.Fatalf("workspace drifted: fresh cost %v/%d iters vs pooled %v/%d",
			fresh.Cost, fresh.Iterations, reused.Cost, reused.Iterations)
	}
}

// TestWaterFillWorkspaceAcrossInstances reuses one workspace over many
// different states and checks each result against the fresh path — the
// reuse pattern E11 and sweeps run.
func TestWaterFillWorkspaceAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	ws := NewWaterFillWorkspace()
	for trial := 0; trial < 30; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(8), 0.5)
		pooled, err := WaterFillWith(st, ws)
		if err != nil {
			t.Fatalf("trial %d: pooled: %v", trial, err)
		}
		fresh, err := WaterFill(st)
		if err != nil {
			t.Fatalf("trial %d: fresh: %v", trial, err)
		}
		if pooled.Cost != fresh.Cost || pooled.Iterations != fresh.Iterations {
			t.Fatalf("trial %d: pooled %v/%d vs fresh %v/%d",
				trial, pooled.Cost, pooled.Iterations, fresh.Cost, fresh.Iterations)
		}
		if err := VerifyBroadcast(st, pooled.Subsidy); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWaterFillEnforcesAndBoundsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for trial := 0; trial < 40; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(6), 0.5)
		wf, err := WaterFill(st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyBroadcast(st, wf.Subsidy); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lp, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Cost < lp.Cost-1e-7 {
			t.Fatalf("trial %d: water-fill %v beats the LP optimum %v", trial, wf.Cost, lp.Cost)
		}
	}
}

func TestWaterFillOptimalOnCycle(t *testing.T) {
	// On the Theorem-11 cycle the binding constraint is the far player's,
	// and least-crowded packing is exactly the optimal structure: the
	// heuristic should match the LP optimum.
	for _, n := range []int{8, 16, 32} {
		st := cycleInstance(t, n)
		wf, err := WaterFill(st)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqualTol(wf.Cost, lp.Cost, 1e-6) {
			t.Errorf("n=%d: water-fill %v vs LP %v", n, wf.Cost, lp.Cost)
		}
	}
}

func TestWaterFillZeroOnEquilibrium(t *testing.T) {
	g := graph.Cycle(2, 1)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := WaterFill(st)
	if err != nil {
		t.Fatal(err)
	}
	if wf.Cost != 0 {
		t.Errorf("equilibrium tree got %v subsidies", wf.Cost)
	}
}

func TestWaterFillNeverExceedsFullSubsidy(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	for trial := 0; trial < 20; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(5), 0.6)
		wf, err := WaterFill(st)
		if err != nil {
			t.Fatal(err)
		}
		if wf.Cost > st.Weight()+1e-9 {
			t.Fatalf("trial %d: water-fill spent %v > wgt(T) %v", trial, wf.Cost, st.Weight())
		}
	}
}

func TestWaterFillGapIsBounded(t *testing.T) {
	// Measure the heuristic/optimal ratio across a family; it must stay
	// finite and is recorded by experiment E11. Here we only assert it
	// never exceeds the trivial wgt(T)/LP bound when LP > 0.
	rng := rand.New(rand.NewSource(903))
	worst := 1.0
	for trial := 0; trial < 25; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(4), 0.5)
		lp, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		if lp.Cost < 1e-9 {
			continue
		}
		wf, err := WaterFill(st)
		if err != nil {
			t.Fatal(err)
		}
		ratio := wf.Cost / lp.Cost
		if ratio > worst {
			worst = ratio
		}
		if math.IsInf(ratio, 1) || math.IsNaN(ratio) {
			t.Fatal("degenerate ratio")
		}
	}
	t.Logf("worst water-fill/LP ratio observed: %.4f", worst)
}
