// Package sne solves STABLE NETWORK ENFORCEMENT, the paper's first
// optimization problem: given a network design game and a target state T,
// compute minimum-cost subsidies under which T is a Nash equilibrium.
//
// Three solvers implement the paper's Theorem 1 toolchain:
//
//   - SolveBroadcastLP — the compact LP (3) for broadcast games
//     (variables only on tree edges, one row per non-tree edge direction);
//   - SolveGeneralLP — the polynomial-size LP (2) with shortest-path
//     potentials π_i(v), for arbitrary multi-commodity games;
//   - SolveRowGeneration — LP (1) solved by constraint generation, using
//     Dijkstra best responses as the separation oracle (the practical
//     stand-in for the paper's ellipsoid argument).
//
// The all-or-nothing variant of Section 5 is solved exactly by
// branch-and-bound (SolveAON) and approximately by a greedy (GreedyAON).
package sne

import (
	"fmt"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// Result is a subsidy assignment enforcing the target, plus metadata.
type Result struct {
	Subsidy    game.Subsidy
	Cost       float64 // Σ b_a
	Iterations int     // LP re-solves (row generation) or B&B nodes (AON)
	Pivots     int     // total simplex pivots

	// Basis is the optimal LP basis of the final solve (nil for the
	// non-LP solvers and the dense oracle). Hand it to the *From variant
	// of the same solver on a nearby instance to chain cross-instance
	// warm starts (basis homotopy) through a sweep family.
	Basis *lp.Basis
}

// VerifyBroadcast confirms that b is a valid subsidy assignment enforcing
// the broadcast state st. It is deliberately independent of the solvers.
func VerifyBroadcast(st *broadcast.State, b game.Subsidy) error {
	if err := b.Validate(st.BG.G); err != nil {
		return err
	}
	if v := st.FindViolation(b); v != nil {
		return fmt.Errorf("sne: not enforced: %v", v)
	}
	return nil
}

// VerifyGeneral confirms that b enforces the general-game state st.
func VerifyGeneral(st *game.State, b game.Subsidy) error {
	if err := b.Validate(st.Game().G); err != nil {
		return err
	}
	if v := st.FindViolation(b); v != nil {
		return fmt.Errorf("sne: not enforced: player %d can improve %.6g → %.6g",
			v.Player, v.Current, v.Better)
	}
	return nil
}

// FullSubsidy returns the trivial enforcement the paper opens with: fully
// subsidize every established edge so every player's cost is zero. It is
// the baseline against which the LP optimum is compared.
func FullSubsidy(st *broadcast.State) *Result {
	g := st.BG.G
	b := game.ZeroSubsidy(g)
	cost := 0.0
	for _, id := range st.Tree.EdgeIDs {
		b[id] = g.Weight(id)
		cost += b[id]
	}
	return &Result{Subsidy: b, Cost: cost}
}

// snap cleans LP round-off: clamps into [0,w] and zeroes epsilon dust.
func snap(b game.Subsidy, gr interface{ Weight(int) float64 }) {
	for id := range b {
		w := gr.Weight(id)
		b[id] = numeric.Clamp(b[id], 0, w)
		if b[id] < numeric.Eps {
			b[id] = 0
		}
	}
}
