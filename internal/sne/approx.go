package sne

import (
	"fmt"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// This file generalizes SNE to α-approximate equilibria (the relaxation
// studied by Albers & Lenzner, cited in the paper's related work): a
// state is an α-equilibrium if no player can improve her cost by more
// than a factor α ≥ 1. Enforcing a tree as an α-equilibrium is still a
// linear program — the Lemma-2 row becomes
//
//	Σ_{a∈T_u} (w_a−b_a)/n_a ≤ α·[ w_uv − b_uv + Σ_{a∈T_v} (w_a−b_a)/(n_a+1−n_a^u) ]
//
// and, unlike the α = 1 case, the edges shared by T_u and T_v no longer
// cancel (their coefficients become (1−α)/n_a), so rows span full paths.
// Subsidy requirements fall monotonically in α and hit zero once α
// reaches the worst cost ratio of the unsubsidized tree.

// IsApproxEquilibrium reports whether the broadcast state is an
// α-approximate equilibrium under subsidies b.
func IsApproxEquilibrium(st *broadcast.State, b game.Subsidy, alpha float64) bool {
	if alpha < 1 {
		panic("sne: approximation factor must be ≥ 1")
	}
	g := st.BG.G
	up := st.CostsToRoot(b)
	for _, e := range g.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.BG.Root {
				continue
			}
			dev := e.W - b.At(e.ID)
			x := st.Tree.LCA(u, v)
			for _, id := range st.Tree.PathToRoot(v) {
				den := st.NA[id] + 1
				if onRootSide(st, id, x) {
					den = st.NA[id] // shared with T_u: the deviator already uses it
				}
				dev += (g.Weight(id) - b.At(id)) / float64(den)
			}
			if numeric.Less(alpha*dev, up[u]) {
				return false
			}
		}
	}
	return true
}

// onRootSide reports whether tree edge id lies on the path from x to the
// root (the segment shared by T_u and T_v when x = lca(u,v)).
func onRootSide(st *broadcast.State, id, x int) bool {
	e := st.BG.G.Edge(id)
	// The deeper endpoint identifies the edge's position; shared edges
	// are those whose deeper endpoint is an ancestor-or-self of x.
	child := e.U
	if st.Tree.Depth[e.V] > st.Tree.Depth[child] {
		child = e.V
	}
	return st.Tree.LCA(child, x) == child
}

// SolveBroadcastLPApprox computes minimum subsidies enforcing the state
// as an α-approximate equilibrium. α = 1 recovers SolveBroadcastLP's
// optimum (modulo the uncancelled-row formulation).
func SolveBroadcastLPApprox(st *broadcast.State, alpha float64) (*Result, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("sne: approximation factor %v must be ≥ 1", alpha)
	}
	g := st.BG.G
	model := lp.NewModel()
	varOf := make([]int, g.M())
	for i := range varOf {
		varOf[i] = -1
	}
	for _, id := range st.Tree.EdgeIDs {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}
	up0 := st.CostsToRoot(nil)
	// Dense coefficient scratch (indexed by LP variable) plus a touched
	// list: unlike the α = 1 rows, the two path walks overlap above the
	// LCA, so coefficients must be merged before vacuousness is judged.
	coef := make([]float64, model.NumVars())
	touched := make([]int, 0, 16)
	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	for _, e := range g.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.BG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			// Row: Σ_{T_u} b/n − α·Σ_{T_v} b/den ≥ up0[u] − α·dev0.
			touched = touched[:0]
			for _, id := range st.Tree.PathToRoot(u) {
				j := varOf[id]
				if coef[j] == 0 {
					touched = append(touched, j)
				}
				coef[j] += 1 / float64(st.NA[id])
			}
			dev0 := e.W
			for _, id := range st.Tree.PathToRoot(v) {
				den := float64(st.NA[id] + 1)
				if onRootSide(st, id, x) {
					den = float64(st.NA[id])
				}
				j := varOf[id]
				if coef[j] == 0 {
					touched = append(touched, j)
				}
				coef[j] -= alpha / den
				dev0 += g.Weight(id) / den
			}
			rhs := up0[u] - alpha*dev0
			cols, vals = cols[:0], vals[:0]
			for _, j := range touched {
				if coef[j] != 0 {
					cols = append(cols, j)
					vals = append(vals, coef[j])
				}
				coef[j] = 0
			}
			// Drop vacuous rows (no support after coefficient merging).
			if len(cols) > 0 || rhs > 0 {
				model.AddRow(cols, vals, lp.GE, rhs)
			}
		}
	}
	sol, err := model.Solve()
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, fmt.Errorf("sne: approximate LP status %v", sol.Status)
	}
	b := game.ZeroSubsidy(g)
	for _, id := range st.Tree.EdgeIDs {
		b[id] = sol.X[varOf[id]]
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots}
	if !IsApproxEquilibrium(st, b, alpha) {
		return nil, fmt.Errorf("sne: approximate LP produced a non-enforcing assignment")
	}
	return res, nil
}

// StabilityFactor returns the smallest α for which the tree is an
// α-approximate equilibrium without subsidies: the worst ratio of a
// player's tree cost to her best deviation. It is 1 exactly when the
// tree is a Nash equilibrium.
func StabilityFactor(st *broadcast.State) float64 {
	g := st.BG.G
	up := st.CostsToRoot(nil)
	worst := 1.0
	for _, e := range g.Edges() {
		if st.Tree.Contains(e.ID) {
			continue
		}
		for _, dir := range [2][2]int{{e.U, e.V}, {e.V, e.U}} {
			u, v := dir[0], dir[1]
			if u == st.BG.Root {
				continue
			}
			x := st.Tree.LCA(u, v)
			dev := e.W
			for _, id := range st.Tree.PathToRoot(v) {
				den := float64(st.NA[id] + 1)
				if onRootSide(st, id, x) {
					den = float64(st.NA[id])
				}
				dev += g.Weight(id) / den
			}
			if dev > 0 && up[u]/dev > worst {
				worst = up[u] / dev
			}
		}
	}
	return worst
}
