package sne

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// TestBroadcastLPSparseVsDenseOracle holds the sparse revised simplex to
// the dense tableau oracle across 120 random broadcast instances: both
// must enforce (verified inside the solvers) and agree on the optimal
// subsidy bill; per-edge subsidies may differ only across alternate
// optima, so the cross-check clamps each solver's assignment against the
// other's objective, not coordinatewise.
func TestBroadcastLPSparseVsDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(407))
	for trial := 0; trial < 120; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(7), 0.3+0.3*rng.Float64())
		sp, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		dn, err := SolveBroadcastLPNaive(st)
		if err != nil {
			t.Fatalf("trial %d: dense oracle: %v", trial, err)
		}
		if math.Abs(sp.Cost-dn.Cost) > 1e-6*(1+dn.Cost) {
			t.Fatalf("trial %d: sparse cost %v vs dense %v", trial, sp.Cost, dn.Cost)
		}
		// Each assignment is itself enforcing (checked by the solvers);
		// both must also respect the per-edge caps.
		for id, v := range sp.Subsidy {
			if v < -numeric.Eps || v > st.BG.G.Weight(id)+numeric.Eps {
				t.Fatalf("trial %d: subsidy %v out of [0,%v] on edge %d", trial, v, st.BG.G.Weight(id), id)
			}
		}
	}
}

// TestRowGenerationMatchesDenseOracle drives the warm-started row
// generation against the dense-oracle broadcast optimum on the expanded
// general game — the Theorem-1 cross-formulation identity, now spanning
// the two solver cores.
func TestRowGenerationMatchesDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(408))
	for trial := 0; trial < 30; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(5), 0.4)
		dn, err := SolveBroadcastLPNaive(st)
		if err != nil {
			t.Fatalf("trial %d: dense oracle: %v", trial, err)
		}
		_, gst, err := st.ToGeneral(1000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rg, err := SolveRowGeneration(gst, 0)
		if err != nil {
			t.Fatalf("trial %d: row generation: %v", trial, err)
		}
		if math.Abs(rg.Cost-dn.Cost) > 1e-6*(1+dn.Cost) {
			t.Fatalf("trial %d: rowgen cost %v vs dense LP(3) %v", trial, rg.Cost, dn.Cost)
		}
	}
}

// TestRowGenerationAllocs is the alloc regression guard on the warm-start
// loop: one full SolveRowGeneration on a fixed 24-node instance must stay
// within budget. The dense tableau rebuilt the whole LP every separation
// round; the revised simplex re-solves from the incumbent basis, so the
// bill is dominated by the per-round Dijkstra oracle, not the LP.
func TestRowGenerationAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g := graph.RandomConnected(rng, 24, 0.2, 0.5, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		t.Fatal(err)
	}
	_, gst, err := st.ToGeneral(1000)
	if err != nil {
		t.Fatal(err)
	}
	var res *Result
	allocs := testing.AllocsPerRun(10, func() {
		var rerr error
		res, rerr = SolveRowGeneration(gst, 0)
		if rerr != nil {
			t.Fatal(rerr)
		}
	})
	if res == nil || res.Subsidy == nil {
		t.Fatal("row generation returned nothing")
	}
	// Measured ~600 on this instance (23 vars, a handful of rounds);
	// the dense-tableau implementation sat in the tens of thousands.
	if allocs > 2000 {
		t.Errorf("SolveRowGeneration allocated %v objects/run (budget 2000)", allocs)
	}
}

// TestBroadcastLPAllocs guards the batched row emission + sparse solve on
// the cycle-64 instance the benchmarks track.
func TestBroadcastLPAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	g := graph.RandomConnected(rng, 64, 0.05, 0.5, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := SolveBroadcastLP(st); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~150 on this instance; the dense tableau needed thousands
	// (it expands every variable bound into a tableau row).
	if allocs > 500 {
		t.Errorf("SolveBroadcastLP allocated %v objects/run (budget 500)", allocs)
	}
}

// TestWarmStartedSolversStillVerify exercises the weighted and directed
// row-generation ports end to end on top of their own verification
// hooks: enforcement must hold and costs must be reproducible from a
// cold re-run (the warm starts must not leak state across solves).
func TestWarmStartedSolversStillVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 20; trial++ {
		st := randomBroadcastState(t, rng, 4+rng.Intn(4), 0.5)
		_, gst, err := st.ToGeneral(1000)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := SolveRowGeneration(gst, 0)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := SolveRowGeneration(gst, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r1.Cost-r2.Cost) > 1e-9*(1+r1.Cost) {
			t.Fatalf("trial %d: re-run drifted: %v vs %v", trial, r1.Cost, r2.Cost)
		}
		if err := VerifyGeneral(gst, r1.Subsidy); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
