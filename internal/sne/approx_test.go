package sne

import (
	"math/rand"
	"testing"

	"netdesign/internal/numeric"
)

func TestApproxMatchesExactAtAlphaOne(t *testing.T) {
	rng := rand.New(rand.NewSource(801))
	for trial := 0; trial < 25; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(5), 0.5)
		// α = 1 approximate-equilibrium check ≡ Nash check.
		if got, want := IsApproxEquilibrium(st, nil, 1), st.IsEquilibrium(nil); got != want {
			t.Fatalf("trial %d: approx(1) %v vs Nash %v", trial, got, want)
		}
		// α = 1 LP must match the exact LP optimum.
		r1, err := SolveBroadcastLPApprox(st, 1)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r0, err := SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqualTol(r1.Cost, r0.Cost, 1e-6) {
			t.Fatalf("trial %d: approx LP %v vs exact LP %v", trial, r1.Cost, r0.Cost)
		}
	}
}

func TestApproxCostMonotoneInAlpha(t *testing.T) {
	st := cycleInstance(t, 16)
	prev := st.Weight() + 1
	for _, alpha := range []float64{1, 1.1, 1.3, 1.6, 2, 3} {
		r, err := SolveBroadcastLPApprox(st, alpha)
		if err != nil {
			t.Fatalf("alpha %v: %v", alpha, err)
		}
		if r.Cost > prev+1e-9 {
			t.Fatalf("cost not monotone: alpha %v cost %v > previous %v", alpha, r.Cost, prev)
		}
		prev = r.Cost
		if !IsApproxEquilibrium(st, r.Subsidy, alpha) {
			t.Fatalf("alpha %v: result not α-enforcing", alpha)
		}
	}
}

func TestStabilityFactor(t *testing.T) {
	// On the cycle, the worst player is the far one: cost H_n against a
	// deviation of exactly 1, so the stability factor is H_n.
	for _, n := range []int{4, 8, 16} {
		st := cycleInstance(t, n)
		want := numeric.Harmonic(n)
		if got := StabilityFactor(st); !numeric.AlmostEqualTol(got, want, 1e-9) {
			t.Errorf("n=%d: stability factor %v, want H_n = %v", n, got, want)
		}
		// At α = StabilityFactor the tree is free to enforce.
		r, err := SolveBroadcastLPApprox(st, want)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost > 1e-7 {
			t.Errorf("n=%d: cost %v at the stability factor, want 0", n, r.Cost)
		}
		// Just below it, a positive subsidy is required.
		r2, err := SolveBroadcastLPApprox(st, want*0.95)
		if err != nil {
			t.Fatal(err)
		}
		if r2.Cost <= 0 {
			t.Errorf("n=%d: zero cost below the stability factor", n)
		}
	}
}

func TestStabilityFactorOneOnEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(802))
	for trial := 0; trial < 30; trial++ {
		st := randomBroadcastState(t, rng, 3+rng.Intn(5), 0.5)
		sf := StabilityFactor(st)
		if sf < 1 {
			t.Fatalf("trial %d: stability factor %v < 1", trial, sf)
		}
		if st.IsEquilibrium(nil) != (sf <= 1+1e-9) {
			t.Fatalf("trial %d: equilibrium %v vs stability factor %v", trial,
				st.IsEquilibrium(nil), sf)
		}
		// The factor is always enforceable for free; anything ≥ it too.
		r, err := SolveBroadcastLPApprox(st, sf+1e-6)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cost > 1e-6 {
			t.Fatalf("trial %d: cost %v at stability factor", trial, r.Cost)
		}
	}
}

func TestApproxPanicsAndErrors(t *testing.T) {
	st := cycleInstance(t, 4)
	if _, err := SolveBroadcastLPApprox(st, 0.5); err == nil {
		t.Error("alpha < 1 accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("IsApproxEquilibrium with alpha < 1 should panic")
		}
	}()
	IsApproxEquilibrium(st, nil, 0.9)
}
