package sne

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/lp"
)

// TestRowGenerationChainsAcrossInstances chains SolveRowGenerationFrom
// through a family of nearby broadcast states: each instance seeds its
// row generation with the previous instance's final basis. Every warm
// result must enforce and match the cold run's optimal cost.
func TestRowGenerationChainsAcrossInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(515))
	var chain *lp.Basis
	chained := 0
	for k := 0; k < 12; k++ {
		st := randomBroadcastState(t, rng, 5+k%3, 0.5)
		_, gst, err := st.ToGeneral(1000)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := SolveRowGenerationFrom(gst, 0, chain)
		if err != nil {
			t.Fatalf("inst %d: warm: %v", k, err)
		}
		cold, err := SolveRowGeneration(gst, 0)
		if err != nil {
			t.Fatalf("inst %d: cold: %v", k, err)
		}
		if err := VerifyGeneral(gst, warm.Subsidy); err != nil {
			t.Fatalf("inst %d: %v", k, err)
		}
		if math.Abs(warm.Cost-cold.Cost) > 1e-6*(1+math.Abs(cold.Cost)) {
			t.Fatalf("inst %d: warm cost %v vs cold %v", k, warm.Cost, cold.Cost)
		}
		if chain != nil {
			chained++
		}
		chain = warm.Basis
	}
	if chained < 5 {
		t.Fatalf("only %d chained instances exercised", chained)
	}
}
