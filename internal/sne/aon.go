package sne

import (
	"errors"
	"math"
	"sort"
	"sync"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/numeric"
	"netdesign/internal/parallel"
)

// ErrAONBudget is returned when branch-and-bound exceeds its node budget.
var ErrAONBudget = errors.New("sne: all-or-nothing search exceeded node budget")

// AONOptions tunes the exact all-or-nothing solver.
type AONOptions struct {
	MaxNodes      int  // search-tree node budget (≤ 0: 50M)
	Workers       int  // parallel top-level split (≤ 0: GOMAXPROCS)
	LightestFirst bool // ablation: decide cheapest edges first (default: heaviest first)
}

// aonRow is an LP (3) row specialized to 0/1 subsidy decisions: the row is
// satisfied iff Σ_{a subsidized} delta_a ≥ rhs, where delta_a = coef_a·w_a.
// Subsidizing an edge with negative delta (an edge of the deviation path
// T_v) makes the row harder — the non-monotonicity at the heart of
// Section 5's hardness results.
type aonRow struct {
	deltas map[int]float64 // keyed by position in the edge ordering
	rhs    float64
}

// aonProblem is the immutable part of a branch-and-bound run.
type aonProblem struct {
	edges   []int     // relevant tree-edge IDs, in decision order
	weights []float64 // weights of those edges
	rows    []aonRow
	touch   [][]int // touch[pos] = indices of rows containing edge pos
}

// buildAONProblem compiles the state's LP (3) rows into decision form.
// Tree edges appearing in no row are never subsidized and are dropped.
func buildAONProblem(st *broadcast.State, lightestFirst bool) *aonProblem {
	g := st.BG.G
	bl := buildBroadcastLP(st)
	used := map[int]bool{}
	for i := 0; i < bl.model.NumConstraints(); i++ {
		cols, _, _, _ := bl.model.Row(i)
		for _, j := range cols {
			used[bl.edgeOf[j]] = true
		}
	}
	var edges []int
	for _, id := range st.Tree.EdgeIDs {
		if used[id] {
			edges = append(edges, id)
		}
	}
	// Heaviest edges first by default: cost pruning bites sooner when
	// expensive decisions sit near the root of the search tree. The
	// lightest-first ordering exists for the ablation benchmark.
	sort.Slice(edges, func(i, j int) bool {
		wi, wj := g.Weight(edges[i]), g.Weight(edges[j])
		if wi != wj {
			if lightestFirst {
				return wi < wj
			}
			return wi > wj
		}
		return edges[i] < edges[j]
	})
	pos := make(map[int]int, len(edges))
	p := &aonProblem{edges: edges, weights: make([]float64, len(edges))}
	for i, id := range edges {
		pos[id] = i
		p.weights[i] = g.Weight(id)
	}
	p.touch = make([][]int, len(edges))
	for i := 0; i < bl.model.NumConstraints(); i++ {
		cols, vals, _, rhs := bl.model.Row(i)
		row := aonRow{deltas: map[int]float64{}, rhs: rhs}
		for k, j := range cols {
			id := bl.edgeOf[j]
			// += rather than =: Model.Row may expose duplicate column
			// entries, whose coefficients sum.
			row.deltas[pos[id]] += vals[k] * g.Weight(id)
		}
		p.rows = append(p.rows, row)
		ri := len(p.rows) - 1
		for pe := range row.deltas {
			p.touch[pe] = append(p.touch[pe], ri)
		}
	}
	return p
}

// aonSearch is the mutable DFS state.
type aonSearch struct {
	p        *aonProblem
	total    []float64 // per row: Σ deltas of subsidized decided edges
	future   []float64 // per row: Σ max(0, delta) over undecided edges
	chosen   []bool
	nodes    int
	maxNodes int

	mu       *sync.Mutex // shared incumbent (parallel runs)
	bestCost *float64
	bestSet  *[]bool
}

func newAONSearch(p *aonProblem, maxNodes int, mu *sync.Mutex, bestCost *float64, bestSet *[]bool) *aonSearch {
	s := &aonSearch{
		p:        p,
		total:    make([]float64, len(p.rows)),
		future:   make([]float64, len(p.rows)),
		chosen:   make([]bool, len(p.edges)),
		maxNodes: maxNodes,
		mu:       mu,
		bestCost: bestCost,
		bestSet:  bestSet,
	}
	for ri, r := range p.rows {
		for _, d := range r.deltas {
			if d > 0 {
				s.future[ri] += d
			}
		}
	}
	return s
}

func (s *aonSearch) incumbent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return *s.bestCost
}

func (s *aonSearch) offer(cost float64, set []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cost < *s.bestCost {
		*s.bestCost = cost
		cp := append([]bool(nil), set...)
		*s.bestSet = cp
	}
}

// decide applies the decision for edge pos and reports whether any touched
// row became hopeless (optimistic total < rhs). Call undo afterwards.
func (s *aonSearch) decide(pos int, subsidize bool) (feasible bool) {
	feasible = true
	for _, ri := range s.p.touch[pos] {
		d := s.p.rows[ri].deltas[pos]
		if d > 0 {
			s.future[ri] -= d
		}
		if subsidize {
			s.total[ri] += d
		}
		if s.total[ri]+s.future[ri] < s.p.rows[ri].rhs-aonTol(s.p.rows[ri].rhs) {
			feasible = false
		}
	}
	s.chosen[pos] = subsidize
	return feasible
}

func (s *aonSearch) undo(pos int, subsidize bool) {
	for _, ri := range s.p.touch[pos] {
		d := s.p.rows[ri].deltas[pos]
		if d > 0 {
			s.future[ri] += d
		}
		if subsidize {
			s.total[ri] -= d
		}
	}
	s.chosen[pos] = false
}

func aonTol(rhs float64) float64 {
	return numeric.Eps * (1 + math.Abs(rhs))
}

// dfs explores decisions from position k with accumulated subsidy cost.
func (s *aonSearch) dfs(k int, cost float64) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return ErrAONBudget
	}
	if cost >= s.incumbent()-numeric.Eps {
		return nil
	}
	if k == len(s.p.edges) {
		for ri, r := range s.p.rows {
			if s.total[ri] < r.rhs-aonTol(r.rhs) {
				return nil // infeasible leaf (should have been pruned)
			}
		}
		s.offer(cost, s.chosen)
		return nil
	}
	// Exclude first: cheaper completions are found earlier, improving the
	// incumbent for subsequent pruning.
	if s.decide(k, false) {
		if err := s.dfs(k+1, cost); err != nil {
			return err
		}
	}
	s.undo(k, false)
	if s.decide(k, true) {
		if err := s.dfs(k+1, cost+s.p.weights[k]); err != nil {
			return err
		}
	}
	s.undo(k, true)
	return nil
}

// SolveAON computes a minimum-cost all-or-nothing subsidy assignment
// enforcing the broadcast state st, by exact branch-and-bound over the
// subsets of tree edges. Rows are the LP (3) constraints in 0/1 form;
// pruning combines the incumbent cost bound with a per-row optimistic
// bound (current contribution plus all remaining positive deltas). The
// top of the search tree is split across a worker pool.
func SolveAON(st *broadcast.State, opts AONOptions) (*Result, error) {
	p := buildAONProblem(st, opts.LightestFirst)
	maxNodes := opts.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 50_000_000
	}
	g := st.BG.G

	var mu sync.Mutex
	bestCost := math.Inf(1)
	var bestSet []bool

	// Seed the incumbent with the greedy solution so pruning starts tight.
	if greedy, err := GreedyAON(st); err == nil {
		bestCost = greedy.Cost + numeric.Eps
		seed := make([]bool, len(p.edges))
		for i, id := range p.edges {
			seed[i] = greedy.Subsidy.At(id) > 0
		}
		bestSet = seed
	}

	// Split the first few decision levels into independent prefixes.
	split := 0
	workers := parallel.Workers(opts.Workers)
	for (1<<(split+1)) <= 4*workers && split < len(p.edges) {
		split++
	}
	prefixes := 1 << split
	errs := make([]error, prefixes)
	parallel.ForEach(prefixes, opts.Workers, func(mask int) {
		s := newAONSearch(p, maxNodes, &mu, &bestCost, &bestSet)
		cost := 0.0
		ok := true
		for k := 0; k < split; k++ {
			sub := mask&(1<<k) != 0
			if !s.decide(k, sub) {
				ok = false
				break
			}
			if sub {
				cost += p.weights[k]
			}
		}
		if ok && cost < s.incumbent() {
			errs[mask] = s.dfs(split, cost)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if math.IsInf(bestCost, 1) {
		// Cannot happen: subsidizing every relevant edge satisfies all
		// rows (Σ all deltas = rhs + w_e ≥ rhs).
		return nil, errors.New("sne: AON search found no feasible assignment")
	}
	b := game.ZeroSubsidy(g)
	cost := 0.0
	for i, id := range p.edges {
		if bestSet[i] {
			b[id] = g.Weight(id)
			cost += b[id]
		}
	}
	res := &Result{Subsidy: b, Cost: cost}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, err
	}
	return res, nil
}

// GreedyAON enforces st with all-or-nothing subsidies greedily: while some
// LP (3) row is unsatisfied, it subsidizes the unsubsidized edge with the
// largest per-cost contribution to that row. Subsidizing every positive
// edge of a row always satisfies it, so the loop terminates with a valid
// (not necessarily optimal) assignment — the practical heuristic the
// paper's Section 6 asks for.
func GreedyAON(st *broadcast.State) (*Result, error) {
	p := buildAONProblem(st, false)
	g := st.BG.G
	chosen := make([]bool, len(p.edges))
	totals := make([]float64, len(p.rows))
	for {
		worst, worstGap := -1, 0.0
		for ri, r := range p.rows {
			if gap := r.rhs - totals[ri]; gap > aonTol(r.rhs) && gap > worstGap {
				worst, worstGap = ri, gap
			}
		}
		if worst == -1 {
			break
		}
		best, bestScore := -1, 0.0
		for pe, d := range p.rows[worst].deltas {
			if !chosen[pe] && d > 0 {
				if score := d / p.weights[pe]; best == -1 || score > bestScore {
					best, bestScore = pe, score
				}
			}
		}
		if best == -1 {
			return nil, errors.New("sne: greedy invariant broken — unsatisfiable row")
		}
		chosen[best] = true
		for _, ri := range p.touch[best] {
			totals[ri] += p.rows[ri].deltas[best]
		}
	}
	b := game.ZeroSubsidy(g)
	cost := 0.0
	for i, id := range p.edges {
		if chosen[i] {
			b[id] = g.Weight(id)
			cost += b[id]
		}
	}
	res := &Result{Subsidy: b, Cost: cost}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, err
	}
	return res, nil
}
