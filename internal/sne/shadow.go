package sne

import (
	"fmt"
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// BindingDeviation is an LP (3) row with a positive shadow price: the
// deviation that pins down the subsidy bill. ShadowPrice is the marginal
// subsidy saved if the player at Node found entering through ViaEdge one
// unit less attractive — the designer's sensitivity report.
type BindingDeviation struct {
	Node        int
	ViaEdge     int
	EntryNode   int // the node the deviation enters the tree through
	ShadowPrice float64
}

// BindingDeviations solves the broadcast SNE LP and returns the
// constraints that are binding at the optimum, most expensive first,
// together with the optimal enforcement itself. It answers the practical
// question "which defection threats are actually costing money?".
func BindingDeviations(st *broadcast.State) ([]BindingDeviation, *Result, error) {
	g := st.BG.G
	model := lp.NewModel()
	varOf := make(map[int]int, len(st.Tree.EdgeIDs))
	for _, id := range st.Tree.EdgeIDs {
		varOf[id] = model.AddVar(1, g.Weight(id))
	}
	rows := buildBroadcastRows(st)
	for _, row := range rows {
		coefs := make(map[int]float64, len(row.coefs))
		for id, c := range row.coefs {
			coefs[varOf[id]] = c
		}
		model.AddConstraint(coefs, lp.GE, row.rhs)
	}
	sol, err := model.Solve()
	if err != nil {
		return nil, nil, err
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("sne: LP status %v", sol.Status)
	}
	b := game.ZeroSubsidy(g)
	for id, j := range varOf {
		b[id] = sol.X[j]
	}
	snap(b, g)
	res := &Result{Subsidy: b, Cost: b.Cost(), Iterations: 1, Pivots: sol.Pivots}
	if err := VerifyBroadcast(st, b); err != nil {
		return nil, nil, err
	}
	var binding []BindingDeviation
	for i, row := range rows {
		if price := sol.Duals[i]; price > numeric.Eps {
			binding = append(binding, BindingDeviation{
				Node:        row.u,
				ViaEdge:     row.edge,
				EntryNode:   row.v,
				ShadowPrice: price,
			})
		}
	}
	sort.Slice(binding, func(a, z int) bool {
		return binding[a].ShadowPrice > binding[z].ShadowPrice
	})
	return binding, res, nil
}
