package sne

import (
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/numeric"
)

// BindingDeviation is an LP (3) row with a positive shadow price: the
// deviation that pins down the subsidy bill. ShadowPrice is the marginal
// subsidy saved if the player at Node found entering through ViaEdge one
// unit less attractive — the designer's sensitivity report.
type BindingDeviation struct {
	Node        int
	ViaEdge     int
	EntryNode   int // the node the deviation enters the tree through
	ShadowPrice float64
}

// BindingDeviations solves the broadcast SNE LP and returns the
// constraints that are binding at the optimum, most expensive first,
// together with the optimal enforcement itself. It answers the practical
// question "which defection threats are actually costing money?". The
// shadow prices come straight from the sparse revised simplex's dual
// vector — one per emitted row, in emission order.
func BindingDeviations(st *broadcast.State) ([]BindingDeviation, *Result, error) {
	bl, sol, res, err := solveBroadcast(st, false, nil)
	if err != nil {
		return nil, nil, err
	}
	var binding []BindingDeviation
	for i, price := range sol.Duals {
		if price > numeric.Eps {
			binding = append(binding, BindingDeviation{
				Node:        bl.rowU[i],
				ViaEdge:     bl.rowEdge[i],
				EntryNode:   bl.rowV[i],
				ShadowPrice: price,
			})
		}
	}
	sort.Slice(binding, func(a, z int) bool {
		return binding[a].ShadowPrice > binding[z].ShadowPrice
	})
	return binding, res, nil
}
