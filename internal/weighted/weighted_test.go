package weighted

import (
	"math/rand"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

func TestNewValidation(t *testing.T) {
	g := graph.Path(2, 1)
	if _, err := New(g, nil); err == nil {
		t.Error("empty players accepted")
	}
	if _, err := New(g, []Player{{S: 0, T: 0, Demand: 1}}); err == nil {
		t.Error("equal terminals accepted")
	}
	if _, err := New(g, []Player{{S: 0, T: 2, Demand: 0}}); err == nil {
		t.Error("zero demand accepted")
	}
	if _, err := New(g, []Player{{S: 0, T: 9, Demand: 1}}); err == nil {
		t.Error("out-of-range terminal accepted")
	}
}

func TestProportionalShares(t *testing.T) {
	g := graph.New(2)
	a := g.AddEdge(0, 1, 6)
	wg, err := New(g, []Player{{S: 0, T: 1, Demand: 1}, {S: 0, T: 1, Demand: 2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(wg, [][]int{{a}, {a}})
	if err != nil {
		t.Fatal(err)
	}
	if st.Load(a) != 3 {
		t.Errorf("load = %v", st.Load(a))
	}
	if c := st.PlayerCost(0, nil); !numeric.AlmostEqual(c, 2) {
		t.Errorf("light player pays %v, want 2", c)
	}
	if c := st.PlayerCost(1, nil); !numeric.AlmostEqual(c, 4) {
		t.Errorf("heavy player pays %v, want 4", c)
	}
	if tot := st.TotalPlayerCost(nil); !numeric.AlmostEqual(tot, 6) {
		t.Errorf("total %v", tot)
	}
	if w := st.EstablishedWeight(); w != 6 {
		t.Errorf("established weight %v", w)
	}
}

// TestReducesToUnweighted: with equal demands the weighted engine must
// agree with the unweighted game engine on costs and equilibrium verdicts.
func TestReducesToUnweighted(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.5, 0.3, 2)
		np := 2 + rng.Intn(3)
		var wps []Player
		var gts []game.Terminal
		for i := 0; i < np; i++ {
			s, tt := rng.Intn(n), rng.Intn(n)
			for tt == s {
				tt = rng.Intn(n)
			}
			wps = append(wps, Player{S: s, T: tt, Demand: 2.5})
			gts = append(gts, game.Terminal{S: s, T: tt})
		}
		wg, err := New(g, wps)
		if err != nil {
			t.Fatal(err)
		}
		gm, err := game.New(g, gts)
		if err != nil {
			t.Fatal(err)
		}
		paths := make([][]int, np)
		for i := range paths {
			sp := graph.Dijkstra(g, wps[i].S, func(id int) float64 { return g.Weight(id) * (1 + rng.Float64()) })
			paths[i] = sp.PathTo(wps[i].T)
		}
		wst, err := NewState(wg, paths)
		if err != nil {
			t.Fatal(err)
		}
		gst, err := game.NewState(gm, paths)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < np; i++ {
			if !numeric.AlmostEqual(wst.PlayerCost(i, nil), gst.PlayerCost(i, nil)) {
				t.Fatalf("trial %d: cost mismatch for player %d", trial, i)
			}
		}
		if wst.IsEquilibrium(nil) != gst.IsEquilibrium(nil) {
			t.Fatalf("trial %d: equilibrium verdicts differ", trial)
		}
	}
}

func TestBestResponseMatchesReplace(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.6, 0.5, 2)
		wg, err := New(g, []Player{
			{S: 0, T: n - 1, Demand: 1 + rng.Float64()*3},
			{S: 1, T: n - 1, Demand: 1 + rng.Float64()*3},
		})
		if err != nil {
			t.Fatal(err)
		}
		paths := [][]int{
			graph.Dijkstra(g, 0, nil).PathTo(n - 1),
			graph.Dijkstra(g, 1, nil).PathTo(n - 1),
		}
		st, err := NewState(wg, paths)
		if err != nil {
			t.Fatal(err)
		}
		path, cost := st.BestResponse(0, nil)
		if path == nil {
			t.Fatal("no best response")
		}
		next, err := st.Replace(0, path)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqual(cost, next.PlayerCost(0, nil)) {
			t.Fatalf("trial %d: BR cost %v vs realized %v", trial, cost, next.PlayerCost(0, nil))
		}
	}
}

// TestNoPureEquilibriumButSubsidizable demonstrates the headline of the
// weighted extension: subsidies restore stability even when the game has
// no pure equilibrium at all — and always can, since full subsidies
// enforce anything.
func TestSubsidiesCreateStability(t *testing.T) {
	// A two-edge game where the heavy player and light player chase each
	// other when weights are tuned adversarially. With demands 1 and 2
	// over parallel edges of weights 3 and 4 a PNE exists; the point of
	// this test is the mechanism, so take any state and enforce it.
	g := graph.New(2)
	e0 := g.AddEdge(0, 1, 3)
	e1 := g.AddEdge(0, 1, 4)
	wg, err := New(g, []Player{{S: 0, T: 1, Demand: 1}, {S: 0, T: 1, Demand: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// Target: split state (light on heavy edge, heavy on light edge) —
	// not an equilibrium unsubsidized.
	st, err := NewState(wg, [][]int{{e1}, {e0}})
	if err != nil {
		t.Fatal(err)
	}
	if st.IsEquilibrium(nil) {
		t.Skip("unexpectedly stable; adjust instance")
	}
	b, cost, iters, err := SolveSNE(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(*b) {
		t.Fatal("SNE result does not enforce")
	}
	if cost <= 0 || iters < 1 {
		t.Errorf("cost %v iters %d", cost, iters)
	}
	// The subsidy is minimal: reducing it breaks enforcement.
	for id := range *b {
		if (*b)[id] > 0.01 {
			reduced := b.Clone()
			reduced[id] -= 0.01
			if st.IsEquilibrium(reduced) {
				t.Errorf("subsidy on edge %d not tight", id)
			}
		}
	}
}

func TestHasPureEquilibrium(t *testing.T) {
	// Parallel-edge weighted game: both players on the cheap edge is an
	// equilibrium for any demands.
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 5)
	wg, err := New(g, []Player{{S: 0, T: 1, Demand: 1}, {S: 0, T: 1, Demand: 7}})
	if err != nil {
		t.Fatal(err)
	}
	has, st, err := wg.HasPureEquilibrium(100)
	if err != nil || !has || st == nil {
		t.Fatalf("expected PNE: %v %v %v", has, st, err)
	}
	if _, _, err := wg.HasPureEquilibriumNaive(1); err != game.ErrTooManyStates {
		t.Errorf("state limit not enforced on the naive sweep: %v", err)
	}
	// The prune collapses both pools to the cheap edge (the heavy path
	// can never beat ub = 1), so even limit 1 resolves the pruned search.
	if has, _, err := wg.HasPureEquilibrium(1); err != nil || !has {
		t.Errorf("pruned search under limit 1: %v %v", has, err)
	}
}

func TestDynamicsConvergesOnSimpleInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	converged := 0
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.5, 2)
		wg, err := New(g, []Player{
			{S: 0, T: n - 1, Demand: 1},
			{S: 1, T: n - 1, Demand: 1.5},
		})
		if err != nil {
			t.Fatal(err)
		}
		paths := [][]int{
			graph.Dijkstra(g, 0, nil).PathTo(n - 1),
			graph.Dijkstra(g, 1, nil).PathTo(n - 1),
		}
		st, err := NewState(wg, paths)
		if err != nil {
			t.Fatal(err)
		}
		final, _, err := BestResponseDynamics(st, nil, 1000)
		if err == ErrMayCycle {
			continue // legitimate for weighted games
		}
		if err != nil {
			t.Fatal(err)
		}
		if !final.IsEquilibrium(nil) {
			t.Fatal("dynamics ended non-equilibrium without error")
		}
		converged++
	}
	if converged == 0 {
		t.Error("dynamics never converged on simple instances")
	}
}

func TestWalkValidation(t *testing.T) {
	g := graph.Path(3, 1)
	wg, _ := New(g, []Player{{S: 0, T: 2, Demand: 1}})
	bad := [][][]int{
		{{}},     // empty
		{{0}},    // stops early
		{{1}},    // wrong start
		{{0, 9}}, // unknown edge
	}
	for i, paths := range bad {
		if _, err := NewState(wg, paths); err == nil {
			t.Errorf("bad state %d accepted", i)
		}
	}
	if _, err := NewState(wg, [][]int{{0, 1}, {0, 1}}); err == nil {
		t.Error("wrong path count accepted")
	}
}
