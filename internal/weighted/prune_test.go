package weighted

import (
	"math/rand"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/graph"
)

func randomWeightedGame(t *testing.T, rng *rand.Rand, n, np int) *Game {
	t.Helper()
	g := graph.RandomConnected(rng, n, 0.6, 0.5, 3)
	var players []Player
	for i := 0; i < np; i++ {
		s, tt := rng.Intn(n), rng.Intn(n)
		for tt == s {
			tt = rng.Intn(n)
		}
		players = append(players, Player{S: s, T: tt, Demand: 0.5 + rng.Float64()*4})
	}
	wg, err := New(g, players)
	if err != nil {
		t.Fatal(err)
	}
	return wg
}

// TestHasPureEquilibriumDifferential holds the constraint-propagation
// prune to the exhaustive oracle on instances small enough for both:
// existence verdicts must agree exactly, and any witness must be a
// verified equilibrium.
func TestHasPureEquilibriumDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	agree, exists := 0, 0
	for trial := 0; trial < 60; trial++ {
		wg := randomWeightedGame(t, rng, 3+rng.Intn(3), 2+rng.Intn(2))
		wantHas, wantSt, wantErr := wg.HasPureEquilibriumNaive(100000)
		gotHas, gotSt, gotErr := wg.HasPureEquilibrium(100000)
		if wantErr == game.ErrTooManyStates {
			// The prune may legitimately resolve what the naive sweep
			// cannot; only verify what it claims.
			if gotErr == nil && gotHas && !gotSt.IsEquilibrium(nil) {
				t.Fatalf("trial %d: pruned witness is not an equilibrium", trial)
			}
			continue
		}
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		if gotErr != nil {
			t.Fatalf("trial %d: pruned search errored where oracle succeeded: %v", trial, gotErr)
		}
		if gotHas != wantHas {
			t.Fatalf("trial %d: pruned=%v oracle=%v", trial, gotHas, wantHas)
		}
		agree++
		if wantHas {
			exists++
			if !wantSt.IsEquilibrium(nil) || !gotSt.IsEquilibrium(nil) {
				t.Fatalf("trial %d: returned witness is not an equilibrium", trial)
			}
		}
	}
	if agree < 30 || exists == 0 {
		t.Fatalf("differential test too weak: %d comparisons, %d with equilibria", agree, exists)
	}
}

// TestHasPureEquilibriumOpensLargerInstances demonstrates the point of
// the prune: an instance whose raw product space blows the naive limit
// resolves after constraint propagation under the same limit.
func TestHasPureEquilibriumOpensLargerInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	opened := 0
	for trial := 0; trial < 20 && opened == 0; trial++ {
		wg := randomWeightedGame(t, rng, 7+rng.Intn(2), 3)
		const limit = 3000
		_, _, naiveErr := wg.HasPureEquilibriumNaive(limit)
		if naiveErr != game.ErrTooManyStates {
			continue // raw space small enough; not the regime under test
		}
		has, st, err := wg.HasPureEquilibrium(limit)
		if err == game.ErrTooManyStates {
			continue // prune didn't shrink this one far enough
		}
		if err != nil {
			t.Fatal(err)
		}
		opened++
		if has && !st.IsEquilibrium(nil) {
			t.Fatal("witness on opened instance is not an equilibrium")
		}
		// The unlimited oracle must agree on the verdict.
		wantHas, _, wantErr := wg.HasPureEquilibriumNaive(0)
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		if has != wantHas {
			t.Fatalf("opened instance: pruned=%v oracle=%v", has, wantHas)
		}
	}
	if opened == 0 {
		t.Skip("no instance in this seed range exceeded the naive limit while fitting the pruned one")
	}
}

func TestHasPureEquilibriumStateLimit(t *testing.T) {
	// Two equal parallel edges, two players: the prune can eliminate
	// nothing (both paths meet the lightest-path bound), so the pruned
	// product is exactly 4 and a limit of 1 must overflow.
	g := graph.New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 1)
	wg, err := New(g, []Player{{S: 0, T: 1, Demand: 1}, {S: 0, T: 1, Demand: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := wg.HasPureEquilibrium(1); err != game.ErrTooManyStates {
		t.Fatalf("limit=1 on an unprunable 4-profile game: got %v, want ErrTooManyStates", err)
	}
	if has, _, err := wg.HasPureEquilibrium(4); err != nil || !has {
		t.Fatalf("limit=4: %v %v, want an equilibrium", has, err)
	}
}
