package weighted

import (
	"errors"
	"math"
	"sort"

	"netdesign/internal/game"
	"netdesign/internal/graph"
)

// This file replaces the full product-space sweep of
// HasPureEquilibriumNaive with a constraint-propagation search. Two sound
// bounds drive all pruning; both follow from proportional sharing:
//
//   - upper bound: at equilibrium, player i's cost never exceeds her
//     lightest path's total weight ub_i = min_p Σ_{a∈p} w_a, because
//     deviating there costs at most Σ w_a·d_i/(load+d_i) ≤ Σ w_a;
//   - lower bound: on any profile drawn from the current pools, i's cost
//     on path p is at least lb_i(p) = Σ_{a∈p} w_a·d_i/maxLoad_a, where
//     maxLoad_a sums the demands of every player some remaining path of
//     whom crosses a.
//
// A path with lb_i(p) > ub_i can appear in no equilibrium, so it leaves
// the pool; shrinking pools shrink maxLoad, which raises other players'
// lower bounds — the filter iterates to a fixpoint (arc consistency).
// The surviving product space is walked depth-first with the same bound
// re-evaluated against partial loads plus the unassigned players'
// maximum possible contribution, and exact Lemma-style equilibrium
// checks run only at surviving leaves.

// pruneSlack keeps the bounds sound under floating-point noise: the
// exact checker (IsEquilibrium/numeric.Less) tolerates ~1e-9 slack, so
// pruning demands a strictly larger margin.
const pruneSlack = 1e-7

// HasPureEquilibrium decides whether the game admits any pure Nash
// equilibrium without subsidies. Same contract as the exhaustive
// HasPureEquilibriumNaive — stateLimit caps the searched product space
// and ErrTooManyStates signals overflow — but the cap applies after
// constraint propagation, so instances far beyond the naive sweep
// resolve. The returned witness (if any) is a verified equilibrium.
func (wg *Game) HasPureEquilibrium(stateLimit int) (bool, *State, error) {
	g := wg.G
	n := wg.N()
	pools := make([][][]int, n)
	for i, pl := range wg.Players {
		var paths [][]int
		graph.SimplePaths(g, pl.S, pl.T, 0, func(p []int) bool {
			paths = append(paths, p)
			return true
		})
		if len(paths) == 0 {
			return false, nil, errors.New("weighted: player has no path")
		}
		pools[i] = paths
	}

	ub := make([]float64, n)
	for i := range pools {
		ub[i] = math.Inf(1)
		for _, p := range pools[i] {
			if w := g.WeightOf(p); w < ub[i] {
				ub[i] = w
			}
		}
	}
	margin := func(i int) float64 { return ub[i] + pruneSlack*(1+math.Abs(ub[i])) }

	// Fixpoint filter.
	usable := make([][]bool, n)
	for i := range usable {
		usable[i] = make([]bool, g.M())
	}
	maxLoad := make([]float64, g.M())
	recompute := func() {
		for a := range maxLoad {
			maxLoad[a] = 0
		}
		for i := range pools {
			u := usable[i]
			for a := range u {
				u[a] = false
			}
			for _, p := range pools[i] {
				for _, a := range p {
					u[a] = true
				}
			}
			d := wg.Players[i].Demand
			for a, ok := range u {
				if ok {
					maxLoad[a] += d
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		recompute()
		for i := range pools {
			d := wg.Players[i].Demand
			kept := pools[i][:0]
			for _, p := range pools[i] {
				lb := 0.0
				for _, a := range p {
					lb += g.Weight(a) * d / maxLoad[a]
				}
				if lb <= margin(i) {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				// Every path of player i is too expensive under even the
				// friendliest sharing: no equilibrium exists at all.
				return false, nil, nil
			}
			if len(kept) != len(pools[i]) {
				changed = true
			}
			pools[i] = kept
		}
	}

	total := 1
	for i := range pools {
		total *= len(pools[i])
		if stateLimit > 0 && total > stateLimit {
			return false, nil, game.ErrTooManyStates
		}
	}

	// DFS over the pruned product, tightest pools first.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if la, lb := len(pools[order[a]]), len(pools[order[b]]); la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})

	// remAfter[k][a]: total demand the players at order positions ≥ k
	// could still place on edge a — the optimistic extra sharing a
	// partially assigned profile may yet receive.
	remAfter := make([][]float64, n+1)
	remAfter[n] = make([]float64, g.M())
	for k := n - 1; k >= 0; k-- {
		remAfter[k] = append([]float64(nil), remAfter[k+1]...)
		i := order[k]
		d := wg.Players[i].Demand
		for a, ok := range usable[i] {
			if ok {
				remAfter[k][a] += d
			}
		}
	}

	chosen := make([][]int, n)
	for i := range chosen {
		chosen[i] = pools[i][0]
	}
	scratch, err := NewState(wg, chosen)
	if err != nil {
		return false, nil, err
	}
	loads := make([]float64, g.M())

	// feasible reports whether assigned player j could still reach
	// equilibrium cost given current partial loads plus at most the
	// unassigned demand remAfter[k].
	feasible := func(j, k int) bool {
		d := wg.Players[j].Demand
		lb := 0.0
		for _, a := range chosen[j] {
			lb += g.Weight(a) * d / (loads[a] + remAfter[k][a])
		}
		return lb <= margin(j)
	}

	var dfs func(k int) (*State, error)
	dfs = func(k int) (*State, error) {
		if k == n {
			scratch.resetPaths(chosen)
			if scratch.IsEquilibrium(nil) {
				witness := make([][]int, n)
				for i, p := range chosen {
					witness[i] = append([]int(nil), p...)
				}
				return NewState(wg, witness)
			}
			return nil, nil
		}
		i := order[k]
		d := wg.Players[i].Demand
		for _, p := range pools[i] {
			chosen[i] = p
			for _, a := range p {
				loads[a] += d
			}
			ok := true
			for t := 0; t <= k; t++ {
				if !feasible(order[t], k+1) {
					ok = false
					break
				}
			}
			if ok {
				st, err := dfs(k + 1)
				if st != nil || err != nil {
					return st, err
				}
			}
			for _, a := range p {
				loads[a] -= d
			}
		}
		return nil, nil
	}
	st, err := dfs(0)
	if err != nil {
		return false, nil, err
	}
	if st != nil {
		return true, st, nil
	}
	return false, nil, nil
}
