// Package weighted implements network design games with player demands —
// the variation the paper's Section 6 lists as future work ("players with
// different demands [1, 14]", citing Albers and Chen–Roughgarden). Each
// player i carries a demand d_i > 0 and pays a proportional share of
// every edge she uses:
//
//	cost_i(T) = Σ_{a∈T_i} (w_a − b_a) · d_i / load_a(T),
//
// where load_a is the total demand on the edge. Unlike the unweighted
// game, this is not a potential game: pure Nash equilibria can fail to
// exist and best-response dynamics can cycle (Chen & Roughgarden). The
// enforcement question, however, remains perfectly well-posed — the
// equilibrium constraints for a *fixed* target state are still linear in
// the subsidies, so SNE is solvable by the same row-generation scheme,
// and full subsidies always enforce. Subsidies can therefore create
// stability in games that have none.
package weighted

import (
	"errors"
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// Player is a demand-weighted terminal pair.
type Player struct {
	S, T   int
	Demand float64
}

// Game is a weighted network design game.
type Game struct {
	G       *graph.Graph
	Players []Player
}

// New validates and returns a weighted game.
func New(g *graph.Graph, players []Player) (*Game, error) {
	for i, p := range players {
		if p.S < 0 || p.S >= g.N() || p.T < 0 || p.T >= g.N() {
			return nil, fmt.Errorf("weighted: player %d terminals out of range", i)
		}
		if p.S == p.T {
			return nil, fmt.Errorf("weighted: player %d has equal terminals", i)
		}
		if !(p.Demand > 0) {
			return nil, fmt.Errorf("weighted: player %d demand %v must be positive", i, p.Demand)
		}
	}
	if len(players) == 0 {
		return nil, errors.New("weighted: no players")
	}
	return &Game{G: g, Players: players}, nil
}

// N returns the number of players.
func (wg *Game) N() int { return len(wg.Players) }

// State is a strategy profile with cached edge loads. Best responses run
// on the graph's frozen CSR view with a per-state Scratch workspace, so
// repeated equilibrium checks — the row-generation inner loop of SolveSNE
// and every dynamics step — allocate only the returned path copy. A
// State is not safe for concurrent use; give each goroutine its own.
type State struct {
	game  *Game
	Paths [][]int
	load  []float64 // total demand per edge
	uses  [][]bool

	scratch graph.Scratch
	pathBuf []int
}

// NewState validates paths (simple S→T walks) and caches loads.
func NewState(wg *Game, paths [][]int) (*State, error) {
	if len(paths) != wg.N() {
		return nil, fmt.Errorf("weighted: %d paths for %d players", len(paths), wg.N())
	}
	st := &State{game: wg, Paths: paths, load: make([]float64, wg.G.M()), uses: make([][]bool, wg.N())}
	for i, p := range paths {
		if err := validateWalk(wg.G, wg.Players[i], p); err != nil {
			return nil, fmt.Errorf("weighted: player %d: %w", i, err)
		}
		st.uses[i] = make([]bool, wg.G.M())
		for _, id := range p {
			st.uses[i][id] = true
			st.load[id] += wg.Players[i].Demand
		}
	}
	return st, nil
}

func validateWalk(g *graph.Graph, pl Player, p []int) error {
	if len(p) == 0 {
		return errors.New("empty path")
	}
	cur := pl.S
	visited := map[int]bool{cur: true}
	for _, id := range p {
		if id < 0 || id >= g.M() {
			return fmt.Errorf("edge %d out of range", id)
		}
		e := g.Edge(id)
		switch cur {
		case e.U:
			cur = e.V
		case e.V:
			cur = e.U
		default:
			return fmt.Errorf("edge %d does not continue the path", id)
		}
		if visited[cur] {
			return fmt.Errorf("path revisits node %d", cur)
		}
		visited[cur] = true
	}
	if cur != pl.T {
		return fmt.Errorf("path ends at %d, want %d", cur, pl.T)
	}
	return nil
}

// Load returns the total demand on an edge.
func (st *State) Load(edgeID int) float64 { return st.load[edgeID] }

// EstablishedWeight is the social cost: total weight of used edges.
func (st *State) EstablishedWeight() float64 {
	sum := 0.0
	for id, l := range st.load {
		if l > 0 {
			sum += st.game.G.Weight(id)
		}
	}
	return sum
}

// PlayerCost returns player i's proportional cost under subsidies b.
func (st *State) PlayerCost(i int, b game.Subsidy) float64 {
	g := st.game.G
	d := st.game.Players[i].Demand
	sum := 0.0
	for _, id := range st.Paths[i] {
		sum += (g.Weight(id) - b.At(id)) * d / st.load[id]
	}
	return sum
}

// TotalPlayerCost is Σ_i cost_i = Σ_established (w − b): proportional
// shares still sum to the full residual edge cost.
func (st *State) TotalPlayerCost(b game.Subsidy) float64 {
	sum := 0.0
	for id, l := range st.load {
		if l > 0 {
			sum += st.game.G.Weight(id) - b.At(id)
		}
	}
	return sum
}

// BestResponse returns player i's cheapest deviation path and its cost:
// joining edge a costs (w_a − b_a)·d_i/(load_a + d_i·[i not on a]).
// It runs on the frozen CSR view with the state's reused workspace; the
// returned path is a fresh copy the caller owns (nil if unreachable).
func (st *State) BestResponse(i int, b game.Subsidy) ([]int, float64) {
	p, cost := st.bestResponseScratch(i, b)
	if p == nil {
		return nil, cost
	}
	return append([]int(nil), p...), cost
}

// BestResponseNaive is the original per-call graph.Dijkstra
// implementation, retained as the differential-test oracle for the
// scratch-backed fast path.
func (st *State) BestResponseNaive(i int, b game.Subsidy) ([]int, float64) {
	g := st.game.G
	d := st.game.Players[i].Demand
	wf := func(id int) float64 {
		l := st.load[id]
		if !st.uses[i][id] {
			l += d
		}
		return (g.Weight(id) - b.At(id)) * d / l
	}
	sp := graph.Dijkstra(g, st.game.Players[i].S, wf)
	t := st.game.Players[i].T
	return sp.PathTo(t), sp.Dist[t]
}

// bestResponseScratch is BestResponse without the defensive path copy:
// the returned slice aliases the state's buffer and is valid only until
// the next best-response call. The dynamics loop consumes it immediately.
func (st *State) bestResponseScratch(i int, b game.Subsidy) ([]int, float64) {
	g := st.game.G
	d := st.game.Players[i].Demand
	wf := func(id int) float64 {
		l := st.load[id]
		if !st.uses[i][id] {
			l += d
		}
		return (g.Weight(id) - b.At(id)) * d / l
	}
	st.scratch.Dijkstra(g.Freeze(), st.game.Players[i].S, wf)
	t := st.game.Players[i].T
	st.pathBuf = st.scratch.PathTo(t, st.pathBuf[:0])
	return st.pathBuf, st.scratch.Dist[t]
}

// Violation is a profitable unilateral deviation.
type Violation struct {
	Player  int
	Path    []int
	Current float64
	Better  float64
}

// FindViolation returns a profitable deviation or nil at equilibrium.
func (st *State) FindViolation(b game.Subsidy) *Violation {
	for i := range st.Paths {
		cur := st.PlayerCost(i, b)
		path, cost := st.BestResponse(i, b)
		if path != nil && numeric.Less(cost, cur) {
			return &Violation{Player: i, Path: path, Current: cur, Better: cost}
		}
	}
	return nil
}

// IsEquilibrium reports whether no player can profitably deviate.
func (st *State) IsEquilibrium(b game.Subsidy) bool { return st.FindViolation(b) == nil }

// Replace returns a copy with player i on path p.
func (st *State) Replace(i int, p []int) (*State, error) {
	paths := make([][]int, len(st.Paths))
	copy(paths, st.Paths)
	paths[i] = p
	return NewState(st.game, paths)
}

// Clone returns a deep copy owning all path storage (the workspace is
// not shared — each copy warms its own).
func (st *State) Clone() *State {
	cp := &State{
		game:  st.game,
		Paths: make([][]int, len(st.Paths)),
		load:  append([]float64(nil), st.load...),
		uses:  make([][]bool, len(st.uses)),
	}
	for i, p := range st.Paths {
		cp.Paths[i] = append([]int(nil), p...)
	}
	for i, u := range st.uses {
		cp.uses[i] = append([]bool(nil), u...)
	}
	return cp
}

// applyMove switches player i onto path p in place, patching loads along
// the old and new paths only. p is copied into state-owned storage. The
// caller guarantees p is a valid simple S→T walk (best responses are)
// and that the state owns its path storage (see Clone).
func (st *State) applyMove(i int, p []int) {
	d := st.game.Players[i].Demand
	old := st.Paths[i]
	for _, id := range old {
		st.uses[i][id] = false
		st.load[id] -= d
	}
	st.Paths[i] = append(old[:0], p...)
	for _, id := range st.Paths[i] {
		st.uses[i][id] = true
		st.load[id] += d
	}
}

// resetPaths repoints the state at a new strategy profile, recomputing
// loads in place without validation or allocation. The paths must be
// valid simple walks for their players (exhaustive enumerators produce
// them); the slices are referenced, not copied.
func (st *State) resetPaths(paths [][]int) {
	for id := range st.load {
		st.load[id] = 0
	}
	for i, p := range paths {
		u := st.uses[i]
		for id := range u {
			u[id] = false
		}
		d := st.game.Players[i].Demand
		for _, id := range p {
			u[id] = true
			st.load[id] += d
		}
	}
	st.Paths = paths
}

// ErrMayCycle is returned when weighted best-response dynamics exhaust
// their step budget: without a potential function this is a real
// possibility, not a numerical failure.
var ErrMayCycle = errors.New("weighted: best-response dynamics did not converge (weighted games may cycle)")

// BestResponseDynamics runs round-robin improving moves for at most
// maxSteps (≤ 0: 10·players·edges). Unlike the unweighted engine there is
// no convergence guarantee. The walk is incremental: the start state is
// cloned once and each accepted move patches loads in place — no
// per-step state rebuild. The input state is never modified.
func BestResponseDynamics(st *State, b game.Subsidy, maxSteps int) (*State, int, error) {
	if maxSteps <= 0 {
		maxSteps = 10 * len(st.Paths) * st.game.G.M()
	}
	cur := st.Clone()
	steps := 0
	for steps < maxSteps {
		move := -1
		for i := range cur.Paths {
			curCost := cur.PlayerCost(i, b)
			path, cost := cur.bestResponseScratch(i, b)
			if path != nil && numeric.Less(cost, curCost) {
				move = i
				break
			}
		}
		if move == -1 {
			return cur, steps, nil
		}
		cur.applyMove(move, cur.pathBuf)
		steps++
	}
	return cur, steps, ErrMayCycle
}

// BestResponseDynamicsNaive is the original rebuild-per-step
// implementation, retained as the differential-test oracle.
func BestResponseDynamicsNaive(st *State, b game.Subsidy, maxSteps int) (*State, int, error) {
	if maxSteps <= 0 {
		maxSteps = 10 * len(st.Paths) * st.game.G.M()
	}
	steps := 0
	for steps < maxSteps {
		v := st.FindViolation(b)
		if v == nil {
			return st, steps, nil
		}
		next, err := st.Replace(v.Player, v.Path)
		if err != nil {
			return nil, steps, err
		}
		st = next
		steps++
	}
	return st, steps, ErrMayCycle
}

// HasPureEquilibriumNaive exhaustively decides whether the game admits
// any pure Nash equilibrium without subsidies by sweeping the full
// product of players' simple-path sets, capped at stateLimit. Retained
// as the differential-test oracle for the constraint-propagation prune
// in HasPureEquilibrium, which decides the same question on a far
// smaller search space.
func (wg *Game) HasPureEquilibriumNaive(stateLimit int) (bool, *State, error) {
	pools := make([][][]int, wg.N())
	total := 1
	for i, pl := range wg.Players {
		var paths [][]int
		graph.SimplePaths(wg.G, pl.S, pl.T, 0, func(p []int) bool {
			paths = append(paths, p)
			return true
		})
		if len(paths) == 0 {
			return false, nil, errors.New("weighted: player has no path")
		}
		pools[i] = paths
		total *= len(paths)
		if stateLimit > 0 && total > stateLimit {
			return false, nil, game.ErrTooManyStates
		}
	}
	choice := make([]int, wg.N())
	// One reusable state sweeps the whole product space: loads are reset
	// in place per profile instead of rebuilding (and re-validating) a
	// State per combination.
	paths := make([][]int, wg.N())
	for i := range paths {
		paths[i] = pools[i][0]
	}
	st, err := NewState(wg, paths)
	if err != nil {
		return false, nil, err
	}
	for {
		for i, c := range choice {
			paths[i] = pools[i][c]
		}
		st.resetPaths(paths)
		if st.IsEquilibrium(nil) {
			return true, st, nil
		}
		i := 0
		for ; i < wg.N(); i++ {
			choice[i]++
			if choice[i] < len(pools[i]) {
				break
			}
			choice[i] = 0
		}
		if i == wg.N() {
			return false, nil, nil
		}
	}
}
