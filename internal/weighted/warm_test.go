package weighted

import (
	"math"
	"testing"

	"netdesign/internal/graph"
)

// TestSolveSNEFromChainsAcrossInstances drives the cross-instance
// homotopy entry point: a family of same-structure games with drifting
// weights, each solve warm-started from the previous instance's final
// basis. Every chained result must enforce its own state and match the
// cold solve's cost.
func TestSolveSNEFromChainsAcrossInstances(t *testing.T) {
	build := func(w0, w1 float64) *State {
		g := graph.New(2)
		e0 := g.AddEdge(0, 1, w0)
		e1 := g.AddEdge(0, 1, w1)
		wg, err := New(g, []Player{{S: 0, T: 1, Demand: 1}, {S: 0, T: 1, Demand: 2}})
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewState(wg, [][]int{{e1}, {e0}})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	first := build(3, 4)
	_, _, _, chain, err := SolveSNEFrom(first, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		st := build(3+0.1*float64(k), 4+0.07*float64(k))
		bw, cw, _, next, err := SolveSNEFrom(st, 0, chain)
		if err != nil {
			t.Fatalf("inst %d: warm: %v", k, err)
		}
		bc, cc, _, err2 := SolveSNE(st, 0)
		if err2 != nil {
			t.Fatalf("inst %d: cold: %v", k, err2)
		}
		if !st.IsEquilibrium(*bw) || !st.IsEquilibrium(*bc) {
			t.Fatalf("inst %d: result does not enforce", k)
		}
		if math.Abs(cw-cc) > 1e-6*(1+math.Abs(cc)) {
			t.Fatalf("inst %d: warm cost %v vs cold %v", k, cw, cc)
		}
		chain = next
	}
}
