package weighted

import (
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// randomWeightedState builds a random weighted game with players on
// shortest paths.
func randomWeightedState(t *testing.T, rng *rand.Rand, n, players int) *State {
	t.Helper()
	g := graph.RandomConnected(rng, n, 0.4, 0.5, 2)
	pls := make([]Player, players)
	paths := make([][]int, players)
	for i := range pls {
		s := rng.Intn(n)
		d := rng.Intn(n)
		for d == s {
			d = rng.Intn(n)
		}
		pls[i] = Player{S: s, T: d, Demand: 0.5 + rng.Float64()*2}
		paths[i] = graph.Dijkstra(g, s, nil).PathTo(d)
	}
	wg, err := New(g, pls)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(wg, paths)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestBestResponseScratchVsNaive: the CSR fast path must return the same
// deviation cost as the per-call Dijkstra oracle (paths may differ on
// exact ties, so the deviation costs are compared).
func TestBestResponseScratchVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		st := randomWeightedState(t, rng, 5+rng.Intn(8), 1+rng.Intn(4))
		for i := range st.Paths {
			fastPath, fastCost := st.BestResponse(i, nil)
			slowPath, slowCost := st.BestResponseNaive(i, nil)
			if (fastPath == nil) != (slowPath == nil) {
				t.Fatalf("trial %d player %d: reachability mismatch", trial, i)
			}
			if !numeric.AlmostEqualTol(fastCost, slowCost, 1e-9) {
				t.Fatalf("trial %d player %d: cost %v vs naive %v", trial, i, fastCost, slowCost)
			}
			if fastPath != nil {
				if got := st.deviationCostOf(i, fastPath, nil); !numeric.AlmostEqualTol(got, fastCost, 1e-9) {
					t.Fatalf("trial %d player %d: path cost %v disagrees with reported %v", trial, i, got, fastCost)
				}
			}
		}
	}
}

// deviationCostOf prices path p for player i against the current loads.
func (st *State) deviationCostOf(i int, p []int, b interface{ At(int) float64 }) float64 {
	g := st.game.G
	d := st.game.Players[i].Demand
	sum := 0.0
	for _, id := range p {
		l := st.load[id]
		if !st.uses[i][id] {
			l += d
		}
		w := g.Weight(id)
		if b != nil {
			w -= b.At(id)
		}
		sum += w * d / l
	}
	return sum
}

// TestWeightedDynamicsIncrementalVsNaive: both walks must reach Nash
// equilibria, and the incremental walk's patched loads must match a
// from-scratch rebuild of its own final profile. (Weighted games have no
// potential, so near-tie float accumulation differences between in-place
// patching and per-step rebuilds may legitimately steer the two walks to
// different equilibria — trajectories are not compared.)
func TestWeightedDynamicsIncrementalVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		st := randomWeightedState(t, rng, 5+rng.Intn(6), 2+rng.Intn(3))
		fast, _, fastErr := BestResponseDynamics(st, nil, 500)
		slow, _, slowErr := BestResponseDynamicsNaive(st, nil, 500)
		if fastErr != nil && fastErr != ErrMayCycle {
			t.Fatalf("trial %d: incremental: %v", trial, fastErr)
		}
		if slowErr != nil && slowErr != ErrMayCycle {
			t.Fatalf("trial %d: naive: %v", trial, slowErr)
		}
		if fastErr == nil && !fast.IsEquilibrium(nil) {
			t.Fatalf("trial %d: incremental final is not an equilibrium", trial)
		}
		if slowErr == nil && !slow.IsEquilibrium(nil) {
			t.Fatalf("trial %d: naive final is not an equilibrium", trial)
		}
		// The incremental state must be internally consistent: patched
		// loads equal a fresh rebuild of the same profile.
		rebuilt, err := NewState(fast.game, fast.Paths)
		if err != nil {
			t.Fatalf("trial %d: final profile invalid: %v", trial, err)
		}
		for id := range rebuilt.load {
			if !numeric.AlmostEqualTol(fast.load[id], rebuilt.load[id], 1e-9) {
				t.Fatalf("trial %d: load[%d] = %v, rebuild %v", trial, id, fast.load[id], rebuilt.load[id])
			}
		}
	}
}

// TestWeightedDynamicsDoesNotMutateInput guards the clone semantics.
func TestWeightedDynamicsDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := randomWeightedState(t, rng, 8, 3)
	before := make([][]int, len(st.Paths))
	for i, p := range st.Paths {
		before[i] = append([]int(nil), p...)
	}
	if _, _, err := BestResponseDynamics(st, nil, 500); err != nil && err != ErrMayCycle {
		t.Fatal(err)
	}
	for i, p := range st.Paths {
		if len(p) != len(before[i]) {
			t.Fatalf("player %d path mutated", i)
		}
		for j := range p {
			if p[j] != before[i][j] {
				t.Fatalf("player %d path mutated", i)
			}
		}
	}
}

// TestWeightedBestResponseAllocs: a warmed-up scratch best response must
// stay within a handful of allocations (the returned copy, the closure
// and nothing proportional to n).
func TestWeightedBestResponseAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	st := randomWeightedState(t, rng, 120, 4)
	st.BestResponse(0, nil) // warm scratch + freeze
	allocs := testing.AllocsPerRun(50, func() {
		st.bestResponseScratch(0, nil)
	})
	if allocs > 2 {
		t.Fatalf("scratch best response allocated %.1f times per run, want ≤ 2", allocs)
	}
}
