package weighted

import (
	"errors"
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/lp"
	"netdesign/internal/numeric"
)

// SolveSNE computes minimum-cost subsidies enforcing the weighted state
// st, by row generation over the weighted equilibrium constraints. For a
// player i with demand d and deviation path p, the constraint
//
//	Σ_{a∈T_i} (w_a−b_a)·d/load_a ≤ Σ_{a∈p} (w_a−b_a)·d/load'_a
//
// (load'_a = load_a + d when i is not already on a) is linear in b, so
// Theorem 1's LP approach carries over verbatim; the demands only change
// the coefficients. Full subsidies always enforce, so the LP is feasible
// even for games with no unsubsidized equilibrium — subsidies can create
// stability where none exists. Each round emits one sparse row and
// re-solves warm from the previous optimal basis (lp.ResolveFrom).
func SolveSNE(st *State, maxIters int) (*game.Subsidy, float64, int, error) {
	b, cost, iters, _, err := SolveSNEFrom(st, maxIters, nil)
	return b, cost, iters, err
}

// SolveSNEFrom is SolveSNE seeded with a basis from a structurally nearby
// instance (cross-instance homotopy) and additionally returning the final
// optimal basis so a sweep over a family can chain warm starts. A nil or
// incompatible warm basis degrades to the cold first solve.
func SolveSNEFrom(st *State, maxIters int, warm *lp.Basis) (*game.Subsidy, float64, int, *lp.Basis, error) {
	if maxIters <= 0 {
		maxIters = 10000
	}
	g := st.game.G
	// Variables on established edges only.
	varOf := make([]int, g.M())
	model := lp.NewModel()
	for id := range varOf {
		if st.load[id] > 0 {
			varOf[id] = model.AddVar(1, g.Weight(id))
		} else {
			varOf[id] = -1
		}
	}
	b := game.ZeroSubsidy(g)
	onPath := make([]bool, g.M())
	cols := make([]int, 0, 16)
	vals := make([]float64, 0, 16)
	basis := warm
	iters := 0
	for iters < maxIters {
		iters++
		viol := st.FindViolation(b)
		if viol == nil {
			for id := range b {
				b[id] = numeric.Clamp(b[id], 0, g.Weight(id))
			}
			if !st.IsEquilibrium(b) {
				return nil, 0, iters, nil, errors.New("weighted: SNE result failed verification")
			}
			return &b, b.Cost(), iters, basis, nil
		}
		i, p := viol.Player, viol.Path
		d := st.game.Players[i].Demand
		for _, id := range p {
			onPath[id] = true
		}
		cols, vals = cols[:0], vals[:0]
		rhs := 0.0
		for _, id := range st.Paths[i] {
			if onPath[id] {
				continue // identical share on both sides — cancels
			}
			share := d / st.load[id]
			cols = append(cols, varOf[id])
			vals = append(vals, share)
			rhs += g.Weight(id) * share
		}
		for _, id := range p {
			if st.uses[i][id] {
				continue
			}
			share := d / (st.load[id] + d)
			if j := varOf[id]; j >= 0 {
				cols = append(cols, j)
				vals = append(vals, -share)
			}
			rhs -= g.Weight(id) * share
		}
		for _, id := range p {
			onPath[id] = false
		}
		model.AddRow(cols, vals, lp.GE, rhs)
		sol, err := model.ResolveFrom(basis)
		if err != nil {
			return nil, 0, iters, nil, err
		}
		if sol.Status != lp.Optimal {
			return nil, 0, iters, nil, fmt.Errorf("weighted: SNE LP status %v", sol.Status)
		}
		basis = sol.Basis
		for id, j := range varOf {
			if j >= 0 {
				b[id] = numeric.Clamp(sol.X[j], 0, g.Weight(id))
			}
		}
	}
	return nil, 0, iters, nil, errors.New("weighted: SNE row generation exceeded budget")
}
