package graph

import "math"

// Scratch is a reusable workspace for the CSR-based shortest-path and
// spanning-tree routines. A zero Scratch is ready to use; its buffers
// grow to the largest graph seen and are then reused, so steady-state
// calls allocate nothing. A Scratch is not safe for concurrent use —
// give each goroutine its own.
//
// After a call to (*Scratch).Dijkstra the public result slices Dist,
// ParEdge and ParNode are valid for the nodes of that graph and remain
// valid until the next call on the same Scratch.
type Scratch struct {
	Dist    []float64 // Dist[v] = shortest distance, +Inf if unreachable
	ParEdge []int32   // ParEdge[v] = edge ID into v, -1 at source/unreachable
	ParNode []int32   // ParNode[v] = predecessor node, -1 at source/unreachable

	// Indexed 4-ary min-heap with decrease-key: heap holds node IDs
	// ordered by key[node]; pos[v] is v's index in heap, posUnseen
	// before discovery, posDone after settlement.
	heap []int32
	pos  []int32
	key  []float64 // Prim keys (Dijkstra keys live in Dist)
}

const (
	posUnseen int32 = -1
	posDone   int32 = -2
)

// grow resizes the workspace for a graph with n nodes.
func (s *Scratch) grow(n int) {
	if cap(s.Dist) < n {
		s.Dist = make([]float64, n)
		s.ParEdge = make([]int32, n)
		s.ParNode = make([]int32, n)
		s.pos = make([]int32, n)
		s.key = make([]float64, n)
		s.heap = make([]int32, 0, n)
	}
	s.Dist = s.Dist[:n]
	s.ParEdge = s.ParEdge[:n]
	s.ParNode = s.ParNode[:n]
	s.pos = s.pos[:n]
	s.key = s.key[:n]
}

// heapUp restores heap order after key[h[i]] decreased.
func heapUp(h, pos []int32, key []float64, i int) {
	v := h[i]
	kv := key[v]
	for i > 0 {
		p := (i - 1) >> 2
		if key[h[p]] <= kv {
			break
		}
		h[i] = h[p]
		pos[h[i]] = int32(i)
		i = p
	}
	h[i] = v
	pos[v] = int32(i)
}

// heapDown restores heap order after the root was replaced.
func heapDown(h, pos []int32, key []float64, i int) {
	n := len(h)
	v := h[i]
	kv := key[v]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		best, bk := c, key[h[c]]
		for j := c + 1; j < end; j++ {
			if k := key[h[j]]; k < bk {
				best, bk = j, k
			}
		}
		if kv <= bk {
			break
		}
		h[i] = h[best]
		pos[h[i]] = int32(i)
		i = best
	}
	h[i] = v
	pos[v] = int32(i)
}

// heapPop removes and returns the minimum-key node.
func heapPop(h []int32, pos []int32, key []float64) ([]int32, int32) {
	v := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	if last > 0 {
		heapDown(h, pos, key, 0)
	}
	pos[v] = posDone
	return h, v
}

// Dijkstra runs single-source shortest paths from src over the frozen
// view c, filling s.Dist/s.ParEdge/s.ParNode. A nil WeightFunc means the
// frozen edge weights. The indexed heap performs decrease-key in place,
// so — unlike the container/heap formulation — no duplicate entries and
// no interface boxing occur, and a warmed-up Scratch allocates nothing.
func (s *Scratch) Dijkstra(c *CSR, src int, w WeightFunc) {
	s.dijkstra(c, src, -1, w)
}

// DijkstraTo is Dijkstra with target early exit: the search stops the
// moment dst is settled, which by the Dijkstra invariant makes
// s.Dist[dst] and the PathTo(dst) parent chain identical to a full run —
// only entries for *other* nodes may be left tentative. The separation
// oracles run one of these per player per round, so on large graphs the
// saved half-a-graph of heap traffic is the dominant win.
func (s *Scratch) DijkstraTo(c *CSR, src, dst int, w WeightFunc) {
	s.dijkstra(c, src, dst, w)
}

func (s *Scratch) dijkstra(c *CSR, src, dst int, w WeightFunc) {
	n := c.n
	s.grow(n)
	dist, pe, pn, pos := s.Dist, s.ParEdge, s.ParNode, s.pos
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		dist[i] = inf
		pe[i] = -1
		pn[i] = -1
		pos[i] = posUnseen
	}
	h := s.heap[:0]
	dist[src] = 0
	h = append(h, int32(src))
	pos[src] = 0
	for len(h) > 0 {
		var u int32
		h, u = heapPop(h, pos, dist)
		if int(u) == dst {
			break
		}
		du := dist[u]
		for k := c.off[u]; k < c.off[u+1]; k++ {
			v := c.to[k]
			if pos[v] == posDone {
				continue
			}
			id := c.eid[k]
			var wc float64
			if w == nil {
				wc = c.w[id]
			} else {
				wc = w(int(id))
			}
			if wc < 0 {
				panic("graph: Dijkstra requires non-negative weights")
			}
			if nd := du + wc; nd < dist[v] {
				dist[v] = nd
				pe[v] = id
				pn[v] = u
				if pos[v] == posUnseen {
					h = append(h, v)
					pos[v] = int32(len(h) - 1)
				}
				heapUp(h, pos, dist, int(pos[v]))
			}
		}
	}
	s.heap = h[:0]
}

// PathTo reconstructs the edge-ID path from the last Dijkstra source to
// node v into dst (reused if capacity allows), or nil if v is
// unreachable. The path is ordered source→v.
func (s *Scratch) PathTo(v int, dst []int) []int {
	if math.IsInf(s.Dist[v], 1) {
		return nil
	}
	dst = dst[:0]
	for s.ParEdge[v] >= 0 {
		dst = append(dst, int(s.ParEdge[v]))
		v = int(s.ParNode[v])
	}
	for i, j := 0, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// mstPrim is the indexed-heap Prim core shared by MSTPrim. It appends
// the tree edge IDs (unsorted) to tree and reports whether the graph is
// connected.
func (s *Scratch) mstPrim(c *CSR, tree []int) ([]int, bool) {
	n := c.n
	if n == 0 {
		return tree, true
	}
	s.grow(n)
	key, pe, pos := s.key, s.ParEdge, s.pos
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		key[i] = inf
		pe[i] = -1
		pos[i] = posUnseen
	}
	h := s.heap[:0]
	key[0] = 0
	h = append(h, 0)
	pos[0] = 0
	for len(h) > 0 {
		var u int32
		h, u = heapPop(h, pos, key)
		if pe[u] >= 0 {
			tree = append(tree, int(pe[u]))
		}
		for k := c.off[u]; k < c.off[u+1]; k++ {
			v := c.to[k]
			if pos[v] == posDone {
				continue
			}
			id := c.eid[k]
			if wt := c.w[id]; wt < key[v] {
				key[v] = wt
				pe[v] = id
				if pos[v] == posUnseen {
					h = append(h, v)
					pos[v] = int32(len(h) - 1)
				}
				heapUp(h, pos, key, int(pos[v]))
			}
		}
	}
	s.heap = h[:0]
	return tree, len(tree) == n-1
}
