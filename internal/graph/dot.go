package graph

import (
	"bufio"
	"fmt"
	"io"
)

// DOTOptions controls Graphviz export.
type DOTOptions struct {
	Name      string              // graph name (default "G")
	Highlight map[int]bool        // edge IDs drawn bold (e.g. a spanning tree)
	EdgeLabel func(id int) string // extra per-edge label (e.g. subsidies); nil for weight only
	NodeLabel func(v int) string  // per-node label; nil for the index
}

// WriteDOT renders g in Graphviz DOT format, so gadget constructions and
// subsidized designs can be inspected visually (dot -Tsvg). Highlighted
// edges — typically the enforced tree — are bold; the rest dashed.
func WriteDOT(w io.Writer, g *Graph, opts DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	fmt.Fprintf(bw, "graph %s {\n", name)
	fmt.Fprintf(bw, "  node [shape=circle fontsize=10];\n")
	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("%d", v)
		if opts.NodeLabel != nil {
			label = opts.NodeLabel(v)
		}
		fmt.Fprintf(bw, "  n%d [label=%q];\n", v, label)
	}
	for _, e := range g.Edges() {
		label := fmt.Sprintf("%.4g", e.W)
		if opts.EdgeLabel != nil {
			label = opts.EdgeLabel(e.ID)
		}
		style := "dashed"
		if opts.Highlight[e.ID] {
			style = "bold"
		}
		fmt.Fprintf(bw, "  n%d -- n%d [label=%q style=%s];\n", e.U, e.V, label, style)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
