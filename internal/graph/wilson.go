package graph

import "math/rand"

// WilsonUST samples a uniformly random spanning tree of g by Wilson's
// algorithm: loop-erased random walks from each uncovered node to the
// growing tree. Unlike RandomSpanningTree (shuffled Kruskal, biased
// toward short trees on weighted graphs), the output is exactly uniform
// over all spanning trees — on multigraphs, parallel edges count as
// distinct trees, which the uniform-neighbor walk handles for free.
// Deterministic for a given rng; g must be connected.
//
// Expected running time is O(mean hitting time), comfortably small on
// the random graphs the sweeps feed it; it exists to diversify the
// starts of multi-start local search (broadcast.EstimatePoS and the
// pos-swap scenario), where the Kruskal bias systematically under-covers
// the heavy side of the tree landscape.
func WilsonUST(g *Graph, rng *rand.Rand) ([]int, error) {
	if !g.Connected() {
		return nil, ErrDisconnected
	}
	n := g.N()
	if n <= 1 {
		return []int{}, nil // trivially spanned, no edges to choose
	}
	inTree := make([]bool, n)
	// next[u] is the adjacency slot the current walk last left u through;
	// loop erasure is implicit — revisiting u overwrites the slot, so the
	// retraced path is the walk with its loops cut out.
	next := make([]int, n)
	inTree[0] = true
	tree := make([]int, 0, n-1)
	for start := 1; start < n; start++ {
		if inTree[start] {
			continue
		}
		u := start
		for !inTree[u] {
			k := rng.Intn(g.Degree(u))
			next[u] = k
			u = g.Adj(u)[k].To
		}
		for u = start; !inTree[u]; {
			inTree[u] = true
			h := g.Adj(u)[next[u]]
			tree = append(tree, h.Edge)
			u = h.To
		}
	}
	return tree, nil
}
