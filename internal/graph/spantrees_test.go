package graph

import (
	"math/rand"
	"testing"
)

func TestEnumerateCycle(t *testing.T) {
	// A cycle on n+1 nodes has exactly n+1 spanning trees.
	for n := 1; n <= 8; n++ {
		g := Cycle(n, 1)
		count, err := CountSpanningTrees(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if count != n+1 {
			t.Errorf("cycle with %d edges: %d trees, want %d", n+1, count, n+1)
		}
	}
}

func TestEnumerateComplete(t *testing.T) {
	// Cayley: K_n has n^(n-2) spanning trees.
	want := map[int]int{2: 1, 3: 3, 4: 16, 5: 125, 6: 1296}
	for n, w := range want {
		g := Complete(n, func(i, j int) float64 { return 1 })
		count, err := CountSpanningTrees(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if count != w {
			t.Errorf("K%d: %d trees, want %d", n, count, w)
		}
	}
}

func TestEnumerateTreeIsUniqueAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(5)
		g := RandomConnected(rng, n, 0.6, 1, 2)
		seen := map[string]bool{}
		_, err := EnumerateSpanningTrees(g, 0, func(tree []int) bool {
			if !g.IsSpanningTree(tree) {
				t.Fatalf("enumerated non-tree %v", tree)
			}
			key := ""
			for _, id := range tree {
				key += string(rune('A' + id))
			}
			if seen[key] {
				t.Fatalf("duplicate tree %v", tree)
			}
			seen[key] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnumerateLimit(t *testing.T) {
	g := Complete(6, func(i, j int) float64 { return 1 })
	_, err := CountSpanningTrees(g, 10)
	if err != ErrTooManyTrees {
		t.Errorf("limit: err = %v, want ErrTooManyTrees", err)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := Complete(5, func(i, j int) float64 { return 1 })
	calls := 0
	_, err := EnumerateSpanningTrees(g, 0, func([]int) bool {
		calls++
		return calls < 4
	})
	if err != nil || calls != 4 {
		t.Errorf("early stop: calls=%d err=%v", calls, err)
	}
}

func TestEnumerateDisconnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, err := CountSpanningTrees(g, 0); err != ErrDisconnected {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestEnumerateMultigraph(t *testing.T) {
	// Two nodes with 3 parallel edges: 3 spanning trees.
	g := New(2)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3)
	count, err := CountSpanningTrees(g, 0)
	if err != nil || count != 3 {
		t.Errorf("parallel edges: count=%d err=%v", count, err)
	}
}

func TestEnumerateSingleNode(t *testing.T) {
	count, err := CountSpanningTrees(New(1), 0)
	if err != nil || count != 1 {
		t.Errorf("single node: count=%d err=%v", count, err)
	}
}
