package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText ensures the graph parser never panics and accepted graphs
// round-trip.
func FuzzReadText(f *testing.F) {
	f.Add("nodes 3\nedge 0 1 1\nedge 1 2 0.5\n")
	f.Add("nodes 0\n")
	f.Add("nodes 2\nedge 0 1 1\nedge 0 1 2\n")
	f.Add("garbage\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		back, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("serialized graph failed to re-parse: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatal("round trip changed the graph")
		}
	})
}
