package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestNewBulkMatchesAddEdge: the bulk constructor must produce a graph
// indistinguishable from the incremental build — same edge IDs, same
// adjacency order (insertion order per node), same weights.
func TestNewBulkMatchesAddEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		m := rng.Intn(80)
		var es []Edge
		inc := New(n)
		for k := 0; k < m; k++ {
			u := rng.Intn(n)
			v := rng.Intn(n)
			if u == v {
				continue
			}
			w := rng.Float64() * 10
			es = append(es, Edge{U: u, V: v, W: w})
			inc.AddEdge(u, v, w)
		}
		bulk := NewBulk(n, es)
		if bulk.N() != inc.N() || bulk.M() != inc.M() {
			t.Fatalf("trial %d: shape (%d,%d) != (%d,%d)", trial, bulk.N(), bulk.M(), inc.N(), inc.M())
		}
		if !reflect.DeepEqual(bulk.Edges(), inc.Edges()) {
			t.Fatalf("trial %d: edge lists differ", trial)
		}
		for u := 0; u < n; u++ {
			bu, iu := bulk.Adj(u), inc.Adj(u)
			if len(bu) != len(iu) {
				t.Fatalf("trial %d: node %d degree %d != %d", trial, u, len(bu), len(iu))
			}
			for j := range bu {
				if bu[j] != iu[j] {
					t.Fatalf("trial %d: node %d adjacency[%d] %+v != %+v", trial, u, j, bu[j], iu[j])
				}
			}
		}
	}
}

// TestNewBulkCopiesInput: mutating the caller's edge scratch after the
// build must not leak into the graph.
func TestNewBulkCopiesInput(t *testing.T) {
	es := []Edge{{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}}
	g := NewBulk(3, es)
	es[0].W = 99
	es[1].U = 0
	if g.Weight(0) != 2 || g.Edge(1).U != 1 {
		t.Fatalf("NewBulk aliased the caller's slice: %v", g.Edges())
	}
}

func TestNewBulkPanicsLikeAddEdge(t *testing.T) {
	cases := []struct {
		name string
		n    int
		es   []Edge
	}{
		{"out of range", 2, []Edge{{U: 0, V: 5, W: 1}}},
		{"self loop", 2, []Edge{{U: 1, V: 1, W: 1}}},
		{"negative weight", 2, []Edge{{U: 0, V: 1, W: -1}}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: NewBulk did not panic", c.name)
				}
			}()
			NewBulk(c.n, c.es)
		}()
	}
}
