package graph

import (
	"container/heap"
	"errors"
	"sort"
)

// ErrDisconnected is returned by spanning-tree constructions on graphs
// that do not connect all nodes.
var ErrDisconnected = errors.New("graph: graph is not connected")

// MST returns the edge IDs of a minimum spanning tree using Kruskal's
// algorithm (deterministic: ties broken by edge ID). Broadcast games use
// the MST as the socially optimal state, as observed in the paper.
//
// The (weight, ID)-ascending edge order is cached on the graph's frozen
// CSR view, so repeated MST calls on an unchanged graph — the common
// shape in sweeps — skip the O(m log m) sort and reduce to two near-linear
// union-find passes.
func MST(g *Graph) ([]int, error) {
	c := g.Freeze()
	dsu := NewUnionFind(c.n)
	want := c.n - 1
	if want < 0 {
		want = 0
	}
	tree := make([]int, 0, want)
	for _, id := range c.sorted {
		if dsu.Union(int(c.us[id]), int(c.vs[id])) {
			tree = append(tree, int(id))
			if len(tree) == want {
				return tree, nil
			}
		}
	}
	if c.n <= 1 {
		return tree, nil
	}
	return nil, ErrDisconnected
}

// MSTNaive is the original Kruskal implementation, re-sorting the edge
// list on every call. Retained as the differential-test oracle for MST.
func MSTNaive(g *Graph) ([]int, error) {
	ids := g.SortedEdgeIDs()
	dsu := NewUnionFind(g.N())
	tree := make([]int, 0, g.N()-1)
	for _, id := range ids {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			tree = append(tree, id)
			if len(tree) == g.N()-1 {
				return tree, nil
			}
		}
	}
	if g.N() <= 1 {
		return tree, nil
	}
	return nil, ErrDisconnected
}

// MSTPrim returns an MST edge set via Prim's algorithm on an indexed
// 4-ary heap with decrease-key (one heap slot per node, no duplicate
// entries). It exists both as a cross-check for Kruskal in tests and as
// the faster choice on dense graphs.
func MSTPrim(g *Graph) ([]int, error) {
	c := g.Freeze()
	n := c.n
	if n == 0 {
		return nil, nil
	}
	var s Scratch
	tree, ok := s.mstPrim(c, make([]int, 0, n-1))
	if !ok {
		return nil, ErrDisconnected
	}
	sort.Ints(tree)
	return tree, nil
}

// primItem is a heap entry for the naive Prim oracle.
type primItem struct {
	node int
	edge int // edge used to reach node, -1 for the start
	key  float64
}

type primHeap []primItem

func (h primHeap) Len() int            { return len(h) }
func (h primHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h primHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *primHeap) Push(x interface{}) { *h = append(*h, x.(primItem)) }
func (h *primHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// MSTPrimNaive is the original container/heap Prim implementation,
// retained as the differential-test oracle for MSTPrim.
func MSTPrimNaive(g *Graph) ([]int, error) {
	n := g.N()
	if n == 0 {
		return nil, nil
	}
	inTree := make([]bool, n)
	h := &primHeap{{node: 0, edge: -1, key: 0}}
	tree := make([]int, 0, n-1)
	for h.Len() > 0 {
		it := heap.Pop(h).(primItem)
		if inTree[it.node] {
			continue
		}
		inTree[it.node] = true
		if it.edge >= 0 {
			tree = append(tree, it.edge)
		}
		for _, half := range g.Adj(it.node) {
			if !inTree[half.To] {
				heap.Push(h, primItem{node: half.To, edge: half.Edge, key: g.Weight(half.Edge)})
			}
		}
	}
	if len(tree) != n-1 {
		return nil, ErrDisconnected
	}
	sort.Ints(tree)
	return tree, nil
}

// MSTBoruvka returns an MST edge set via Borůvka's algorithm. Ties are
// broken by edge ID so the result is deterministic and — on graphs with
// distinct weights — identical to Kruskal's.
func MSTBoruvka(g *Graph) ([]int, error) {
	n := g.N()
	if n <= 1 {
		return nil, nil
	}
	dsu := NewUnionFind(n)
	tree := make([]int, 0, n-1)
	for dsu.Count() > 1 {
		// cheapest[r] = best outgoing edge ID for component with root r.
		cheapest := make(map[int]int)
		for _, e := range g.Edges() {
			ru, rv := dsu.Find(e.U), dsu.Find(e.V)
			if ru == rv {
				continue
			}
			for _, r := range [2]int{ru, rv} {
				if cur, ok := cheapest[r]; !ok || better(g, e.ID, cur) {
					cheapest[r] = e.ID
				}
			}
		}
		if len(cheapest) == 0 {
			return nil, ErrDisconnected
		}
		progressed := false
		for _, id := range cheapest {
			e := g.Edge(id)
			if dsu.Union(e.U, e.V) {
				tree = append(tree, id)
				progressed = true
			}
		}
		if !progressed {
			return nil, ErrDisconnected
		}
	}
	sort.Ints(tree)
	return tree, nil
}

// better reports whether edge a strictly precedes edge b in (weight, ID)
// order.
func better(g *Graph, a, b int) bool {
	ea, eb := g.Edge(a), g.Edge(b)
	if ea.W != eb.W {
		return ea.W < eb.W
	}
	return ea.ID < eb.ID
}

// IsMinimumSpanningTree reports whether the given spanning tree has the
// same total weight as an MST of g (there may be many MSTs; the paper's
// hardness construction for SND exploits exactly this).
func IsMinimumSpanningTree(g *Graph, treeIDs []int) bool {
	if !g.IsSpanningTree(treeIDs) {
		return false
	}
	opt, err := MST(g)
	if err != nil {
		return false
	}
	const tol = 1e-9
	diff := g.WeightOf(treeIDs) - g.WeightOf(opt)
	return diff <= tol*(1+g.WeightOf(opt))
}
