// Package graph implements the undirected, edge-weighted multigraphs that
// underlie every network design game in this library, together with the
// classic algorithms the paper's constructions rely on: minimum spanning
// trees, shortest paths, rooted-tree queries (LCA, subtree statistics) and
// exhaustive spanning-tree enumeration.
//
// Nodes are dense integers 0..N-1. Edges carry stable integer IDs equal to
// their insertion order, so subsidy assignments and tree states can be
// represented as slices indexed by edge ID. Parallel edges are allowed
// (the Theorem 11 cycle with n = 1 degenerates to one); self-loops are
// rejected because no simple path ever uses one.
package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge {U,V} with non-negative weight W and a stable
// identifier ID (its index in the graph's edge list).
type Edge struct {
	ID int
	U  int
	V  int
	W  float64
}

// Other returns the endpoint of e opposite to node u.
// It panics if u is not an endpoint of e.
func (e Edge) Other(u int) int {
	switch u {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d", u, e.ID))
}

// Half is an adjacency record: the far endpoint and the connecting edge ID.
type Half struct {
	To   int
	Edge int
}

// Graph is an undirected weighted multigraph with a fixed node count.
type Graph struct {
	n      int
	edges  []Edge
	adj    [][]Half
	frozen frozenCache // cached CSR view; dropped on mutation
}

// New creates a graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	return &Graph{n: n, adj: make([][]Half, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// AddNode appends a new node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	g.invalidate()
	return g.n - 1
}

// AddEdge inserts an undirected edge {u,v} of weight w and returns its ID.
// Weights must be non-negative and finite; self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: AddEdge(%d,%d) out of range [0,%d)", u, v, g.n))
	}
	if u == v {
		panic("graph: self-loops are not allowed")
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: id})
	g.invalidate()
	return id
}

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge {
	return g.edges[id]
}

// Edges returns the edge list. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Adj returns the adjacency list of node u. Must not be modified.
func (g *Graph) Adj(u int) []Half { return g.adj[u] }

// Degree returns the number of edge endpoints at node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Weight returns the weight of the edge with the given ID.
func (g *Graph) Weight(id int) float64 { return g.edges[id].W }

// SetWeight updates the weight of an edge in place. It is used by
// instance perturbation helpers in tests; weights must stay non-negative.
func (g *Graph) SetWeight(id int, w float64) {
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: invalid edge weight %v", w))
	}
	g.edges[id].W = w
	g.invalidate()
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	sum := 0.0
	for _, e := range g.edges {
		sum += e.W
	}
	return sum
}

// WeightOf returns the total weight of the edge set given by IDs.
func (g *Graph) WeightOf(ids []int) float64 {
	sum := 0.0
	for _, id := range ids {
		sum += g.edges[id].W
	}
	return sum
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	h := &Graph{n: g.n, edges: append([]Edge(nil), g.edges...), adj: make([][]Half, g.n)}
	for u := range g.adj {
		h.adj[u] = append([]Half(nil), g.adj[u]...)
	}
	return h
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.Component(0)) == g.n
}

// Component returns the nodes reachable from start (including start),
// in BFS order.
func (g *Graph) Component(start int) []int {
	seen := make([]bool, g.n)
	seen[start] = true
	order := []int{start}
	for i := 0; i < len(order); i++ {
		for _, h := range g.adj[order[i]] {
			if !seen[h.To] {
				seen[h.To] = true
				order = append(order, h.To)
			}
		}
	}
	return order
}

// ConnectedOn reports whether the subgraph induced by the given edge IDs
// connects all n nodes.
func (g *Graph) ConnectedOn(edgeIDs []int) bool {
	if g.n <= 1 {
		return true
	}
	dsu := NewUnionFind(g.n)
	comps := g.n
	for _, id := range edgeIDs {
		e := g.edges[id]
		if dsu.Union(e.U, e.V) {
			comps--
		}
	}
	return comps == 1
}

// IsSpanningTree reports whether the edge ID set forms a spanning tree of g.
func (g *Graph) IsSpanningTree(edgeIDs []int) bool {
	if len(edgeIDs) != g.n-1 {
		return false
	}
	return g.ConnectedOn(edgeIDs)
}

// FindEdge returns the ID of a minimum-weight edge between u and v, or
// -1 if none exists.
func (g *Graph) FindEdge(u, v int) int {
	best := -1
	for _, h := range g.adj[u] {
		if h.To == v && (best == -1 || g.edges[h.Edge].W < g.edges[best].W) {
			best = h.Edge
		}
	}
	return best
}

// SortedEdgeIDs returns all edge IDs ordered by ascending weight
// (ties by ID, so the order is deterministic).
func (g *Graph) SortedEdgeIDs() []int {
	ids := make([]int, len(g.edges))
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ea, eb := g.edges[ids[a]], g.edges[ids[b]]
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return ea.ID < eb.ID
	})
	return ids
}

// String renders a compact human-readable description.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d w=%.4g}", g.n, len(g.edges), g.TotalWeight())
}
