package graph

import (
	"sort"
	"sync/atomic"
)

// CSR is a frozen compressed-sparse-row view of a Graph: flat int32
// adjacency arrays plus a weight table and a cached weight-sorted edge
// order. Building it once and querying it many times is the backbone of
// every hot path in this library — Dijkstra, Prim and Kruskal all walk
// the CSR arrays instead of the pointer-heavy [][]Half adjacency, and a
// reusable Scratch workspace makes repeated runs allocation-free.
//
// A CSR is immutable. It is obtained from Graph.Freeze, which caches the
// view on the graph and invalidates it automatically when the graph
// mutates (AddNode, AddEdge, SetWeight), so callers can freeze eagerly
// and never worry about staleness.
type CSR struct {
	n int
	m int

	// Half-edge arrays: the adjacency of node u is the index range
	// [off[u], off[u+1]) into to/eid. Insertion order is preserved.
	off []int32
	to  []int32
	eid []int32

	// Per-edge tables indexed by edge ID.
	w  []float64
	us []int32
	vs []int32

	// sorted lists edge IDs in ascending (weight, ID) order — the
	// Kruskal scan order, computed once at freeze time so repeated MST
	// calls skip the O(m log m) sort.
	sorted []int32
}

// N returns the number of nodes.
func (c *CSR) N() int { return c.n }

// M returns the number of edges.
func (c *CSR) M() int { return c.m }

// Weight returns the weight of the edge with the given ID, as of the
// freeze.
func (c *CSR) Weight(id int) float64 { return c.w[id] }

// Endpoints returns the two endpoints of the edge with the given ID.
func (c *CSR) Endpoints(id int) (u, v int) { return int(c.us[id]), int(c.vs[id]) }

// Degree returns the number of half-edges at node u.
func (c *CSR) Degree(u int) int { return int(c.off[u+1] - c.off[u]) }

// SortedEdgeIDs returns the frozen (weight, ID)-ascending edge order.
// The returned slice must not be modified.
func (c *CSR) SortedEdgeIDs() []int32 { return c.sorted }

// Freeze returns the CSR view of g, building it on first use and caching
// it until the next mutation. Concurrent callers may race to build the
// view; every built view is equivalent, so the race is benign. Freeze
// itself is safe for concurrent use, but must not race with mutations
// (the Graph has never been safe for concurrent mutation).
func (g *Graph) Freeze() *CSR {
	if c := g.frozen.Load(); c != nil {
		return c
	}
	c := buildCSR(g)
	g.frozen.Store(c)
	return c
}

// invalidate drops the cached CSR view after a mutation.
func (g *Graph) invalidate() { g.frozen.Store(nil) }

func buildCSR(g *Graph) *CSR {
	n, m := g.n, len(g.edges)
	c := &CSR{
		n:   n,
		m:   m,
		off: make([]int32, n+1),
		to:  make([]int32, 2*m),
		eid: make([]int32, 2*m),
		w:   make([]float64, m),
		us:  make([]int32, m),
		vs:  make([]int32, m),
	}
	for i := range g.edges {
		e := &g.edges[i]
		c.off[e.U+1]++
		c.off[e.V+1]++
		c.w[i] = e.W
		c.us[i] = int32(e.U)
		c.vs[i] = int32(e.V)
	}
	for u := 0; u < n; u++ {
		c.off[u+1] += c.off[u]
	}
	// Fill half-edges in insertion order per node (stable counting sort).
	next := make([]int32, n)
	copy(next, c.off[:n])
	for i := range g.edges {
		e := &g.edges[i]
		k := next[e.U]
		c.to[k], c.eid[k] = int32(e.V), int32(i)
		next[e.U]++
		k = next[e.V]
		c.to[k], c.eid[k] = int32(e.U), int32(i)
		next[e.V]++
	}
	c.sorted = make([]int32, m)
	for i := range c.sorted {
		c.sorted[i] = int32(i)
	}
	sort.Slice(c.sorted, func(a, b int) bool {
		ia, ib := c.sorted[a], c.sorted[b]
		if c.w[ia] != c.w[ib] {
			return c.w[ia] < c.w[ib]
		}
		return ia < ib
	})
	return c
}

// frozenCache wraps the atomic CSR pointer so Graph stays copyable by
// composite literal (the atomic value itself is never copied: Graph is
// only ever used through a pointer).
type frozenCache struct {
	p atomic.Pointer[CSR]
}

func (f *frozenCache) Load() *CSR   { return f.p.Load() }
func (f *frozenCache) Store(c *CSR) { f.p.Store(c) }
