package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestMSTSmallKnown(t *testing.T) {
	// Classic 4-node example.
	g := New(4)
	g.AddEdge(0, 1, 1) // in MST
	g.AddEdge(1, 2, 2) // in MST
	g.AddEdge(2, 3, 1) // in MST
	g.AddEdge(0, 3, 5)
	g.AddEdge(0, 2, 4)
	tree, err := MST(g)
	if err != nil {
		t.Fatal(err)
	}
	if w := g.WeightOf(tree); w != 4 {
		t.Errorf("MST weight = %v, want 4", w)
	}
}

func TestMSTDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, err := MST(g); err != ErrDisconnected {
		t.Errorf("MST on disconnected graph: err = %v", err)
	}
	if _, err := MSTPrim(g); err != ErrDisconnected {
		t.Errorf("MSTPrim on disconnected graph: err = %v", err)
	}
	if _, err := MSTBoruvka(g); err != ErrDisconnected {
		t.Errorf("MSTBoruvka on disconnected graph: err = %v", err)
	}
}

func TestMSTTrivial(t *testing.T) {
	g := New(1)
	for _, f := range []func(*Graph) ([]int, error){MST, MSTPrim, MSTBoruvka} {
		tree, err := f(g)
		if err != nil || len(tree) != 0 {
			t.Errorf("single node MST: %v %v", tree, err)
		}
	}
}

// TestMSTAlgorithmsAgree cross-checks the three MST implementations on
// random graphs: total weights must always agree, and with distinct
// weights the edge sets must be identical.
func TestMSTAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		g := RandomConnected(rng, n, 0.4, 0.1, 10)
		k, err1 := MST(g)
		p, err2 := MSTPrim(g)
		b, err3 := MSTBoruvka(g)
		if err1 != nil || err2 != nil || err3 != nil {
			t.Fatalf("trial %d: errors %v %v %v", trial, err1, err2, err3)
		}
		wk, wp, wb := g.WeightOf(k), g.WeightOf(p), g.WeightOf(b)
		if math.Abs(wk-wp) > 1e-9 || math.Abs(wk-wb) > 1e-9 {
			t.Fatalf("trial %d: MST weights differ: %v %v %v", trial, wk, wp, wb)
		}
		if !g.IsSpanningTree(k) || !g.IsSpanningTree(p) || !g.IsSpanningTree(b) {
			t.Fatalf("trial %d: result is not a spanning tree", trial)
		}
	}
}

// TestMSTAgainstBruteForce verifies Kruskal against exhaustive spanning
// tree enumeration on small graphs.
func TestMSTAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(5)
		g := RandomConnected(rng, n, 0.5, 0.1, 5)
		tree, err := MST(g)
		if err != nil {
			t.Fatal(err)
		}
		best := math.Inf(1)
		if _, err := EnumerateSpanningTrees(g, 0, func(tr []int) bool {
			if w := g.WeightOf(tr); w < best {
				best = w
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if math.Abs(g.WeightOf(tree)-best) > 1e-9 {
			t.Fatalf("trial %d: Kruskal %v vs brute force %v", trial, g.WeightOf(tree), best)
		}
	}
}

func TestIsMinimumSpanningTree(t *testing.T) {
	// Square with equal weights has multiple MSTs.
	g := Cycle(3, 1) // 4 nodes 0..3 in a cycle, all weight 1
	tree1 := []int{0, 1, 2}
	tree2 := []int{1, 2, 3}
	if !IsMinimumSpanningTree(g, tree1) || !IsMinimumSpanningTree(g, tree2) {
		t.Error("both cycle paths are MSTs")
	}
	if IsMinimumSpanningTree(g, []int{0, 1}) {
		t.Error("forest accepted as MST")
	}
	g2 := New(3)
	g2.AddEdge(0, 1, 1)
	g2.AddEdge(1, 2, 1)
	g2.AddEdge(0, 2, 5)
	if IsMinimumSpanningTree(g2, []int{0, 2}) {
		t.Error("suboptimal tree accepted as MST")
	}
}

// TestMSTCutProperty: for every tree edge of the MST, removing it splits
// the nodes in two sides, and the edge must be a minimum-weight crossing
// edge (the cut property).
func TestMSTCutProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		g := RandomConnected(rng, n, 0.5, 0.1, 9)
		tree, err := MST(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range tree {
			// Mark one side of the cut.
			dsu := NewUnionFind(g.N())
			for _, id := range tree {
				if id == cut {
					continue
				}
				e := g.Edge(id)
				dsu.Union(e.U, e.V)
			}
			ce := g.Edge(cut)
			for _, e := range g.Edges() {
				if dsu.Same(e.U, ce.U) != dsu.Same(e.V, ce.U) { // e crosses the cut
					if e.W < ce.W-1e-12 {
						t.Fatalf("trial %d: cut property violated: tree edge w=%v but crossing edge w=%v", trial, ce.W, e.W)
					}
				}
			}
		}
	}
}
