package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
// It backs Kruskal's algorithm, connectivity tests and the spanning-tree
// enumerator.
type UnionFind struct {
	parent []int
	rank   []uint8
	count  int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]uint8, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y. It returns true if they were
// previously distinct.
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Clone returns an independent copy (used by the spanning-tree enumerator's
// recursion).
func (uf *UnionFind) Clone() *UnionFind {
	return &UnionFind{
		parent: append([]int(nil), uf.parent...),
		rank:   append([]uint8(nil), uf.rank...),
		count:  uf.count,
	}
}
