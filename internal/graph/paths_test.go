package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestDijkstraSimple(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 5)
	g.AddEdge(2, 3, 1)
	// node 4 isolated
	sp := Dijkstra(g, 0, nil)
	want := []float64{0, 1, 3, 4, math.Inf(1)}
	for v, d := range want {
		if sp.Dist[v] != d {
			t.Errorf("Dist[%d] = %v, want %v", v, sp.Dist[v], d)
		}
	}
	path := sp.PathTo(3)
	if len(path) != 3 || g.WeightOf(path) != 4 {
		t.Errorf("PathTo(3) = %v", path)
	}
	if sp.PathTo(4) != nil {
		t.Error("PathTo(4) should be nil for unreachable node")
	}
	if p := sp.PathTo(0); len(p) != 0 {
		t.Errorf("PathTo(source) = %v", p)
	}
}

func TestDijkstraWeightFunc(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 10)
	b := g.AddEdge(1, 2, 10)
	c := g.AddEdge(0, 2, 10)
	// Override: make the two-hop route cheap.
	wf := func(id int) float64 {
		if id == a || id == b {
			return 1
		}
		_ = c
		return 10
	}
	sp := Dijkstra(g, 0, wf)
	if sp.Dist[2] != 2 {
		t.Errorf("Dist[2] = %v, want 2 under override", sp.Dist[2])
	}
}

func TestDijkstraVsFloydWarshall(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		g := RandomConnected(rng, n, 0.3, 0, 10)
		all := AllPairsFloydWarshall(g, nil)
		for s := 0; s < n; s++ {
			sp := Dijkstra(g, s, nil)
			for v := 0; v < n; v++ {
				if math.Abs(sp.Dist[v]-all[s][v]) > 1e-9 {
					t.Fatalf("trial %d: dist(%d,%d): dijkstra %v vs fw %v", trial, s, v, sp.Dist[v], all[s][v])
				}
				// Path weight must equal distance.
				if p := sp.PathTo(v); p != nil {
					if math.Abs(g.WeightOf(p)-sp.Dist[v]) > 1e-9 {
						t.Fatalf("path weight mismatch at %d", v)
					}
				}
			}
		}
	}
}

func TestSimplePathsTriangle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	var paths [][]int
	n := SimplePaths(g, 0, 2, 0, func(p []int) bool {
		paths = append(paths, p)
		return true
	})
	if n != 2 || len(paths) != 2 {
		t.Fatalf("triangle 0→2 simple paths = %d, want 2", n)
	}
}

func TestSimplePathsLimitAndStop(t *testing.T) {
	g := Complete(6, func(i, j int) float64 { return 1 })
	n := SimplePaths(g, 0, 5, 3, func(p []int) bool { return true })
	if n != 3 {
		t.Errorf("limit=3 produced %d paths", n)
	}
	count := 0
	SimplePaths(g, 0, 5, 0, func(p []int) bool {
		count++
		return count < 2 // stop after 2
	})
	if count != 2 {
		t.Errorf("early stop produced %d paths", count)
	}
}

func TestSimplePathsCountOnCompleteGraph(t *testing.T) {
	// # simple paths between two fixed nodes of K_n is sum_{k=0}^{n-2} (n-2)!/(n-2-k)!.
	g := Complete(5, func(i, j int) float64 { return 1 })
	want := 1 + 3 + 3*2 + 3*2*1 // direct, one via, two via, three via = 16
	if n := SimplePaths(g, 0, 4, 0, func([]int) bool { return true }); n != want {
		t.Errorf("K5 path count = %d, want %d", n, want)
	}
}
