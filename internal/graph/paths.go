package graph

import (
	"container/heap"
	"math"
)

// WeightFunc maps an edge ID to a non-negative traversal cost. Best-response
// computations in games use it to price edges by their marginal cost share
// (w_a − b_a)/(n_a + 1 − n_a^i) rather than by raw weight.
type WeightFunc func(edgeID int) float64

// DefaultWeights returns the graph's own edge weights as a WeightFunc.
func DefaultWeights(g *Graph) WeightFunc {
	return func(id int) float64 { return g.Weight(id) }
}

// spItem is a heap entry for the naive Dijkstra oracle.
type spItem struct {
	node int
	dist float64
}

type spHeap []spItem

func (h spHeap) Len() int            { return len(h) }
func (h spHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h spHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spHeap) Push(x interface{}) { *h = append(*h, x.(spItem)) }
func (h *spHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ShortestPaths holds the result of a single-source Dijkstra run.
type ShortestPaths struct {
	Source  int
	Dist    []float64 // Dist[v] = shortest distance, +Inf if unreachable
	ParEdge []int     // ParEdge[v] = edge ID into v on a shortest path, -1 at source/unreachable
	ParNode []int     // ParNode[v] = predecessor node, -1 at source/unreachable
}

// Dijkstra computes single-source shortest paths from src under the given
// weight function (nil means raw edge weights). All weights must be
// non-negative; the game layer guarantees this because subsidies never
// exceed edge weights.
//
// It runs on the graph's frozen CSR view with an indexed 4-ary heap; the
// few allocations that remain are the result slices. Callers in tight
// loops (sweeps, best-response dynamics) should freeze the graph once and
// use (*Scratch).Dijkstra directly, which allocates nothing in steady
// state.
func Dijkstra(g *Graph, src int, w WeightFunc) *ShortestPaths {
	c := g.Freeze()
	var s Scratch
	s.Dijkstra(c, src, w)
	n := c.n
	sp := &ShortestPaths{
		Source:  src,
		Dist:    s.Dist, // owned by the throwaway scratch, safe to hand out
		ParEdge: make([]int, n),
		ParNode: make([]int, n),
	}
	for i := 0; i < n; i++ {
		sp.ParEdge[i] = int(s.ParEdge[i])
		sp.ParNode[i] = int(s.ParNode[i])
	}
	return sp
}

// DijkstraNaive is the original container/heap implementation (lazy
// deletion, interface boxing). It is retained as the differential-test
// oracle for the CSR fast path.
func DijkstraNaive(g *Graph, src int, w WeightFunc) *ShortestPaths {
	if w == nil {
		w = DefaultWeights(g)
	}
	n := g.N()
	sp := &ShortestPaths{
		Source:  src,
		Dist:    make([]float64, n),
		ParEdge: make([]int, n),
		ParNode: make([]int, n),
	}
	for i := range sp.Dist {
		sp.Dist[i] = math.Inf(1)
		sp.ParEdge[i] = -1
		sp.ParNode[i] = -1
	}
	sp.Dist[src] = 0
	done := make([]bool, n)
	h := &spHeap{{node: src, dist: 0}}
	for h.Len() > 0 {
		it := heap.Pop(h).(spItem)
		if done[it.node] {
			continue
		}
		done[it.node] = true
		for _, half := range g.Adj(it.node) {
			wc := w(half.Edge)
			if wc < 0 {
				panic("graph: Dijkstra requires non-negative weights")
			}
			nd := it.dist + wc
			if nd < sp.Dist[half.To] {
				sp.Dist[half.To] = nd
				sp.ParEdge[half.To] = half.Edge
				sp.ParNode[half.To] = it.node
				heap.Push(h, spItem{node: half.To, dist: nd})
			}
		}
	}
	return sp
}

// PathTo reconstructs the edge-ID path from the source to node v, or nil
// if v is unreachable. The path is ordered from source to v.
func (sp *ShortestPaths) PathTo(v int) []int {
	if math.IsInf(sp.Dist[v], 1) {
		return nil
	}
	var rev []int
	for v != sp.Source {
		rev = append(rev, sp.ParEdge[v])
		v = sp.ParNode[v]
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// AllPairsFloydWarshall computes all-pairs shortest distances under the
// given weight function. O(n³); used as a test oracle against Dijkstra and
// by small-instance analyses.
func AllPairsFloydWarshall(g *Graph, w WeightFunc) [][]float64 {
	if w == nil {
		w = DefaultWeights(g)
	}
	n := g.N()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for _, e := range g.Edges() {
		wc := w(e.ID)
		if wc < d[e.U][e.V] {
			d[e.U][e.V] = wc
			d[e.V][e.U] = wc
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

// SimplePaths enumerates every simple path between s and t as edge-ID
// slices, invoking fn for each. Enumeration stops early if fn returns
// false or after limit paths (limit ≤ 0 means no limit). It is exponential
// by nature and exists for brute-force validation on tiny games, where the
// strategy set of a player is exactly this path set.
func SimplePaths(g *Graph, s, t int, limit int, fn func(path []int) bool) int {
	visited := make([]bool, g.N())
	var path []int
	count := 0
	stopped := false
	var dfs func(u int)
	dfs = func(u int) {
		if stopped {
			return
		}
		if u == t {
			count++
			cp := append([]int(nil), path...)
			if !fn(cp) || (limit > 0 && count >= limit) {
				stopped = true
			}
			return
		}
		visited[u] = true
		for _, half := range g.Adj(u) {
			if !visited[half.To] {
				path = append(path, half.Edge)
				dfs(half.To)
				path = path[:len(path)-1]
				if stopped {
					break
				}
			}
		}
		visited[u] = false
	}
	dfs(s)
	return count
}
