package graph

import (
	"fmt"
	"sort"
)

// This file implements the incremental tree-swap engine. The hot loops of
// the paper's analyses — best-response dynamics, AnalyzeTrees, the H_{n/2}
// price-of-stability sweeps — evaluate thousands of candidate spanning
// trees that differ from the current one by a single edge exchange.
// Rebuilding a RootedTree per candidate costs O(n log n) and a dozen
// allocations; ApplySwap updates the tree in O(affected subtree) and
// allocates nothing in steady state.
//
// Model: removing tree edge (p, c) detaches the subtree D rooted at c;
// adding non-tree edge (u, v) with u ∈ D, v ∉ D re-roots D at u and hangs
// it under v. Parent, ParEdge, Depth, inTree and EdgeIDs are rewritten
// in place (with an undo log for Revert); Children, Order and the Euler
// tour are left describing the base tree, and LCA queries are answered
// for the swapped tree by overlaying the swap on the base structures:
//
//   - both endpoints outside D: the base answer is unchanged;
//   - both inside D: the classic re-rooting identity — the deepest of
//     lca(a,b), lca(a,u), lca(b,u) in the base tree;
//   - mixed: the path from D exits through (u,v), so the answer is
//     lca(v, outside endpoint) in the base tree.
//
// Commit makes the pending swap permanent by rebuilding Children, Order
// and the Euler structures from the live Parent array, reusing every
// buffer. Exactly one swap may be pending at a time; Commit (or Revert)
// re-arms the tree for the next one.

// SwapInfo describes a pending swap in base-tree terms.
type SwapInfo struct {
	RemoveID int // tree edge removed: connects C to P
	AddID    int // non-tree edge added: connects U to V
	C        int // root of the detached subtree in the base tree
	P        int // base parent of C
	U        int // AddID endpoint inside the detached subtree (its new root)
	V        int // AddID endpoint outside (U's new parent)
}

// swapOverlay is the pending-swap bookkeeping on a RootedTree.
type swapOverlay struct {
	active bool
	info   SwapInfo

	// Undo log: every node of the detached subtree in new-tree BFS order
	// (parents precede children), with its pre-swap parent, parent edge
	// and depth.
	nodes    []int32
	oldPar   []int32
	oldEdge  []int32
	oldDepth []int32
	queue    []int32 // BFS scratch
}

// Pending reports whether a swap is currently applied but not committed.
func (t *RootedTree) Pending() bool { return t.swp.active }

// PendingSwap returns the pending swap's description. It panics if no
// swap is pending.
func (t *RootedTree) PendingSwap() SwapInfo {
	if !t.swp.active {
		panic("graph: no pending swap")
	}
	return t.swp.info
}

// PendingNodes returns the nodes of the detached subtree in new-tree BFS
// order (parents precede children). The slice is owned by the tree and
// valid until the next ApplySwap/Revert/Commit. It panics if no swap is
// pending.
func (t *RootedTree) PendingNodes() []int32 {
	if !t.swp.active {
		panic("graph: no pending swap")
	}
	return t.swp.nodes
}

// InPendingSubtree reports whether w belongs to the detached subtree of
// the pending swap (false when none is pending). O(1): one base LCA.
func (t *RootedTree) InPendingSubtree(w int) bool {
	return t.swp.active && t.lcaBase(t.swp.info.C, w) == t.swp.info.C
}

// ApplySwap exchanges tree edge removeID for non-tree edge addID,
// updating Parent/ParEdge/Depth/inTree/EdgeIDs in O(affected subtree)
// with no allocations in steady state. It fails (leaving the tree
// untouched) if removeID is not a tree edge, addID is, or addID does not
// reconnect the two components cut by removeID. At most one swap may be
// pending; call Revert to undo it or Commit to make it permanent.
//
// While the swap is pending the public Children and Order slices still
// describe the base tree; use ForEachTopDown/SubtreeSums for traversals
// that must see the swapped tree.
func (t *RootedTree) ApplySwap(removeID, addID int) error {
	if t.swp.active {
		return fmt.Errorf("graph: swap (−%d,+%d) already pending", t.swp.info.RemoveID, t.swp.info.AddID)
	}
	m := t.G.M()
	if removeID < 0 || removeID >= m || addID < 0 || addID >= m {
		return fmt.Errorf("graph: swap edge out of range [0,%d)", m)
	}
	if removeID == addID || !t.inTree[removeID] || t.inTree[addID] {
		return fmt.Errorf("graph: swap (−%d,+%d) must remove a tree edge and add a non-tree edge", removeID, addID)
	}
	re := t.G.Edge(removeID)
	c := re.U
	if t.ParEdge[re.V] == removeID {
		c = re.V
	}
	ae := t.G.Edge(addID)
	uIn := t.lcaBase(c, ae.U) == c
	vIn := t.lcaBase(c, ae.V) == c
	if uIn == vIn {
		return fmt.Errorf("graph: swap (−%d,+%d) does not reconnect the tree", removeID, addID)
	}
	u, v := ae.U, ae.V
	if vIn {
		u, v = v, u
	}

	s := &t.swp
	s.active = true
	s.info = SwapInfo{RemoveID: removeID, AddID: addID, C: c, P: t.Parent[c], U: u, V: v}
	t.inTree[removeID] = false
	t.inTree[addID] = true

	// Re-hang the detached subtree by BFS from u. Every tree edge at a
	// subtree node either stays inside the subtree or is addID (the new
	// parent edge of u); removeID is already flagged off-tree, so the
	// frontier never escapes and no visited set is needed.
	s.nodes, s.oldPar, s.oldEdge, s.oldDepth = s.nodes[:0], s.oldPar[:0], s.oldEdge[:0], s.oldDepth[:0]
	record := func(w, par, edge int) {
		s.nodes = append(s.nodes, int32(w))
		s.oldPar = append(s.oldPar, int32(t.Parent[w]))
		s.oldEdge = append(s.oldEdge, int32(t.ParEdge[w]))
		s.oldDepth = append(s.oldDepth, int32(t.Depth[w]))
		t.Parent[w] = par
		t.ParEdge[w] = edge
		t.Depth[w] = t.Depth[par] + 1
	}
	record(u, v, addID)
	queue := append(s.queue[:0], int32(u))
	for qi := 0; qi < len(queue); qi++ {
		w := int(queue[qi])
		pe := t.ParEdge[w]
		for _, half := range t.G.Adj(w) {
			if t.inTree[half.Edge] && half.Edge != pe {
				record(half.To, w, half.Edge)
				queue = append(queue, int32(half.To))
			}
		}
	}
	s.queue = queue[:0]

	replaceSorted(t.EdgeIDs, removeID, addID)
	return nil
}

// Revert undoes the pending swap, restoring the base tree exactly. It is
// a no-op when no swap is pending.
func (t *RootedTree) Revert() {
	s := &t.swp
	if !s.active {
		return
	}
	for i, w := range s.nodes {
		t.Parent[w] = int(s.oldPar[i])
		t.ParEdge[w] = int(s.oldEdge[i])
		t.Depth[w] = int(s.oldDepth[i])
	}
	t.inTree[s.info.AddID] = false
	t.inTree[s.info.RemoveID] = true
	replaceSorted(t.EdgeIDs, s.info.AddID, s.info.RemoveID)
	s.active = false
}

// Commit makes the pending swap permanent: Children, Order and the Euler
// structures are rebuilt from the live Parent array, reusing their
// buffers (O(n log n), no allocations in steady state). It is a no-op
// when no swap is pending.
func (t *RootedTree) Commit() {
	if !t.swp.active {
		return
	}
	t.swp.active = false
	t.rebuildDerived()
}

// rebuildDerived recomputes Children, Order and the Euler tour from
// Parent/Depth. Children are ordered by node index (deterministic, though
// not necessarily the original BFS discovery order).
func (t *RootedTree) rebuildDerived() {
	n := t.G.N()
	for i := range t.Children {
		t.Children[i] = t.Children[i][:0]
	}
	for v := 0; v < n; v++ {
		if v != t.Root {
			t.Children[t.Parent[v]] = append(t.Children[t.Parent[v]], v)
		}
	}
	t.Order = t.Order[:0]
	t.Order = append(t.Order, t.Root)
	for i := 0; i < len(t.Order); i++ {
		t.Order = append(t.Order, t.Children[t.Order[i]]...)
	}
	t.buildEuler()
	t.up = nil // lazily rebuilt if LCANaive is used on the committed tree
}

// lcaOverlay answers an LCA query for the swapped tree from the base
// Euler structures (see the file comment for the case analysis).
func (t *RootedTree) lcaOverlay(a, b int) int {
	c, u, v := t.swp.info.C, t.swp.info.U, t.swp.info.V
	aIn := t.lcaBase(c, a) == c
	bIn := t.lcaBase(c, b) == c
	switch {
	case aIn && bIn:
		best := t.lcaBase(a, b)
		if y := t.lcaBase(a, u); t.baseDepth(y) > t.baseDepth(best) {
			best = y
		}
		if z := t.lcaBase(b, u); t.baseDepth(z) > t.baseDepth(best) {
			best = z
		}
		return best
	case aIn:
		return t.lcaBase(v, b)
	case bIn:
		return t.lcaBase(a, v)
	default:
		return t.lcaBase(a, b)
	}
}

// replaceSorted substitutes old for new in the ascending slice ids,
// keeping it sorted. O(n) memmove, no allocations.
func replaceSorted(ids []int, old, new int) {
	i := sort.SearchInts(ids, old)
	copy(ids[i:], ids[i+1:])
	trimmed := ids[:len(ids)-1]
	j := sort.SearchInts(trimmed, new)
	copy(ids[j+1:], ids[j:len(ids)-1])
	ids[j] = new
}
