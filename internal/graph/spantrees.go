package graph

import "errors"

// ErrTooManyTrees is returned by EnumerateSpanningTrees when the number of
// spanning trees exceeds the caller's limit.
var ErrTooManyTrees = errors.New("graph: spanning tree limit exceeded")

// EnumerateSpanningTrees invokes fn with the edge-ID set of every spanning
// tree of g exactly once. Enumeration is the classic contraction/deletion
// recursion: pick an edge incident to a fixed node, enumerate trees using
// it (contract) and trees avoiding it (delete, when the rest stays
// connected). fn may return false to stop early. limit > 0 aborts with
// ErrTooManyTrees once more than limit trees have been produced; limit ≤ 0
// means unlimited.
//
// Exhaustive enumeration is exponential, but the paper's analyses need it
// only on small instances: brute-force price-of-stability computation and
// exhaustive validation of the hardness gadgets.
func EnumerateSpanningTrees(g *Graph, limit int, fn func(tree []int) bool) (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	if !g.Connected() {
		return 0, ErrDisconnected
	}
	count := 0
	stopped := false

	// comp maps each node to its contracted component representative.
	comp := make([]int, n)
	for i := range comp {
		comp[i] = i
	}
	// find with path compression over the comp slice (copied per level to
	// keep the recursion simple and allocation-light for small n).
	var find func(c []int, x int) int
	find = func(c []int, x int) int {
		for c[x] != x {
			c[x] = c[c[x]]
			x = c[x]
		}
		return x
	}

	alive := make([]bool, g.M())
	for i := range alive {
		alive[i] = true
	}

	var chosen []int

	// connectedUnder reports whether the alive edges connect all current
	// components given the contraction c.
	connectedUnder := func(c []int) bool {
		dsu := NewUnionFind(n)
		comps := 0
		seen := make(map[int]bool)
		for v := 0; v < n; v++ {
			r := find(c, v)
			if !seen[r] {
				seen[r] = true
				comps++
			}
		}
		for id, ok := range alive {
			if !ok {
				continue
			}
			e := g.Edge(id)
			ru, rv := find(c, e.U), find(c, e.V)
			if ru != rv && dsu.Union(ru, rv) {
				comps--
			}
		}
		return comps == 1
	}

	var rec func(c []int, remaining int)
	rec = func(c []int, remaining int) {
		if stopped {
			return
		}
		if remaining == 0 {
			count++
			if limit > 0 && count > limit {
				stopped = true
				return
			}
			cp := append([]int(nil), chosen...)
			if !fn(cp) {
				stopped = true
			}
			return
		}
		// Pick the lowest-ID alive non-self-loop edge.
		pick := -1
		for id := 0; id < g.M(); id++ {
			if !alive[id] {
				continue
			}
			e := g.Edge(id)
			if find(c, e.U) != find(c, e.V) {
				pick = id
				break
			}
		}
		if pick == -1 {
			return // no way to connect further
		}
		e := g.Edge(pick)

		// Branch 1: include pick (contract its endpoints).
		c2 := append([]int(nil), c...)
		ru, rv := find(c2, e.U), find(c2, e.V)
		c2[rv] = ru
		chosen = append(chosen, pick)
		alive[pick] = false
		rec(c2, remaining-1)
		chosen = chosen[:len(chosen)-1]

		// Branch 2: exclude pick (it stays dead); only recurse if the
		// remaining alive edges can still connect everything.
		if !stopped && connectedUnder(c) {
			rec(c, remaining)
		}
		alive[pick] = true
	}

	rec(comp, n-1)
	if limit > 0 && count > limit {
		return count, ErrTooManyTrees
	}
	return count, nil
}

// CountSpanningTrees returns the number of spanning trees, stopping with
// ErrTooManyTrees beyond limit (limit ≤ 0 counts exhaustively).
func CountSpanningTrees(g *Graph, limit int) (int, error) {
	return EnumerateSpanningTrees(g, limit, func([]int) bool { return true })
}
