package graph

import (
	"math/rand"
	"testing"
)

func TestGenerators(t *testing.T) {
	if g := Path(5, 2); g.N() != 6 || g.M() != 5 || g.TotalWeight() != 10 {
		t.Error("Path wrong")
	}
	if g := Cycle(4, 1); g.N() != 5 || g.M() != 5 || !g.Connected() {
		t.Error("Cycle wrong")
	}
	if g := Star(7, 3); g.N() != 8 || g.M() != 7 || g.Degree(0) != 7 {
		t.Error("Star wrong")
	}
	if g := Wheel(5, 1, 2); g.N() != 6 || g.M() != 10 || g.Degree(0) != 5 {
		t.Error("Wheel wrong")
	}
	if g := Complete(5, func(i, j int) float64 { return 1 }); g.M() != 10 {
		t.Error("Complete wrong")
	}
	if g := Grid(3, 4, 1); g.N() != 12 || g.M() != 3*3+2*4 || !g.Connected() {
		t.Error("Grid wrong")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(20)
		g := RandomConnected(rng, n, 0.3, 0.5, 2)
		if !g.Connected() {
			t.Fatalf("trial %d: not connected", trial)
		}
		if g.M() < n-1 {
			t.Fatalf("trial %d: too few edges", trial)
		}
		for _, e := range g.Edges() {
			if e.W < 0.5 || e.W >= 2 {
				t.Fatalf("weight %v out of range", e.W)
			}
		}
	}
	// Determinism for a fixed seed.
	a := RandomConnected(rand.New(rand.NewSource(9)), 10, 0.3, 0, 1)
	b := RandomConnected(rand.New(rand.NewSource(9)), 10, 0.3, 0, 1)
	if a.M() != b.M() {
		t.Error("RandomConnected not deterministic for fixed seed")
	}
	for i := range a.Edges() {
		if a.Edge(i) != b.Edge(i) {
			t.Error("RandomConnected edges differ for fixed seed")
			break
		}
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 6, 8, 10, 14} {
		g, err := RandomRegular(rng, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if g.Degree(v) != 3 {
				t.Fatalf("n=%d: node %d has degree %d", n, v, g.Degree(v))
			}
		}
		// Simple graph check: no parallel edges.
		seen := map[[2]int]bool{}
		for _, e := range g.Edges() {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				t.Fatalf("parallel edge %d-%d", u, v)
			}
			seen[[2]int{u, v}] = true
		}
	}
	if _, err := RandomRegular(rng, 5, 3); err == nil {
		t.Error("odd n*d should fail")
	}
	if _, err := RandomRegular(rng, 3, 3); err == nil {
		t.Error("d >= n should fail")
	}
}

func TestRandomSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(10)
		g := RandomConnected(rng, n, 0.4, 0.5, 2)
		tree, err := RandomSpanningTree(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsSpanningTree(tree) {
			t.Fatalf("n=%d: not a spanning tree: %v", n, tree)
		}
	}
	// Disconnected input errors.
	g := New(4)
	g.AddEdge(0, 1, 1)
	if _, err := RandomSpanningTree(g, rng); err == nil {
		t.Error("disconnected graph accepted")
	}
	// Determinism for a fixed rng state.
	g = RandomConnected(rand.New(rand.NewSource(3)), 12, 0.5, 1, 2)
	t1, _ := RandomSpanningTree(g, rand.New(rand.NewSource(9)))
	t2, _ := RandomSpanningTree(g, rand.New(rand.NewSource(9)))
	if len(t1) != len(t2) {
		t.Fatal("nondeterministic tree size")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatal("nondeterministic tree")
		}
	}
}

func TestRandomSpanningTreeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 1; n++ {
		tree, err := RandomSpanningTree(New(n), rng)
		if err != nil || len(tree) != 0 {
			t.Errorf("n=%d: tree %v, err %v; want empty tree", n, tree, err)
		}
	}
}
