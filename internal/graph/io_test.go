package graph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := RandomConnected(rng, 12, 0.4, 0.25, 7)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatalf("round trip changed shape: %v vs %v", h, g)
	}
	for i := range g.Edges() {
		if g.Edge(i) != h.Edge(i) {
			t.Fatalf("edge %d differs: %v vs %v", i, g.Edge(i), h.Edge(i))
		}
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# a graph\nnodes 3\n\nedge 0 1 1.5\nedge 1 2 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.Weight(0) != 1.5 {
		t.Errorf("parsed wrong: %v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	bad := []string{
		"edge 0 1 1\n",            // edge before nodes
		"nodes x\n",               // bad count
		"nodes 2\nedge 0 5 1\n",   // out of range
		"nodes 2\nedge 0 0 1\n",   // self loop
		"nodes 2\nedge 0 1 -1\n",  // negative weight
		"nodes 2\nedge 0 1\n",     // missing weight
		"nodes 2\nfrobnicate 1\n", // unknown directive
		"",                        // empty
		"nodes\n",                 // missing arg
	}
	for _, in := range bad {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := RandomConnected(rng, 9, 0.5, 0, 3)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var h Graph
	if err := json.Unmarshal(data, &h); err != nil {
		t.Fatal(err)
	}
	if h.N() != g.N() || h.M() != g.M() {
		t.Fatal("JSON round trip changed shape")
	}
	for i := range g.Edges() {
		if g.Edge(i) != h.Edge(i) {
			t.Fatalf("edge %d differs after JSON round trip", i)
		}
	}
}

func TestJSONUnmarshalErrors(t *testing.T) {
	var g Graph
	if err := json.Unmarshal([]byte(`{"nodes":2,"edges":[["a","1","1"]]}`), &g); err == nil {
		t.Error("malformed edge accepted")
	}
	if err := json.Unmarshal([]byte(`{`), &g); err == nil {
		t.Error("malformed JSON accepted")
	}
}
