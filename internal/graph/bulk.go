package graph

import (
	"fmt"
	"math"
)

// NewBulk constructs a graph with n nodes and the given edges in one
// pass. It is the allocation-lean sibling of New + a loop of AddEdge:
// instead of growing every adjacency list independently (O(n log deg)
// slice reallocations for a request-sized instance), it counts degrees
// once and carves all adjacency records out of a single backing array,
// so the whole build costs a fixed handful of allocations regardless of
// edge count. The serving wire decoder sits on this path for every
// binary request.
//
// The edges' ID fields are ignored on input and assigned by index; the
// slice itself is copied, so callers may reuse their scratch. Validation
// matches AddEdge exactly (panics on out-of-range endpoints, self-loops
// and non-finite or negative weights) — callers decoding untrusted bytes
// must validate first.
func NewBulk(n int, edges []Edge) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	var es []Edge
	if len(edges) > 0 {
		es = make([]Edge, len(edges))
	}
	deg := make([]int, n)
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			panic(fmt.Sprintf("graph: NewBulk edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n))
		}
		if e.U == e.V {
			panic("graph: self-loops are not allowed")
		}
		if e.W < 0 || math.IsNaN(e.W) || math.IsInf(e.W, 0) {
			panic(fmt.Sprintf("graph: invalid edge weight %v", e.W))
		}
		es[i] = Edge{ID: i, U: e.U, V: e.V, W: e.W}
		deg[e.U]++
		deg[e.V]++
	}
	adj := make([][]Half, n)
	backing := make([]Half, 2*len(edges))
	off := 0
	for u := 0; u < n; u++ {
		adj[u] = backing[off : off : off+deg[u]]
		off += deg[u]
	}
	for _, e := range es {
		adj[e.U] = append(adj[e.U], Half{To: e.V, Edge: e.ID})
		adj[e.V] = append(adj[e.V], Half{To: e.U, Edge: e.ID})
	}
	return &Graph{n: n, edges: es, adj: adj}
}
