package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// genGraph derives a deterministic random connected graph from quick's
// fuzzed inputs.
func genGraph(seed int64, n uint8, p uint8) *Graph {
	rng := rand.New(rand.NewSource(seed))
	nodes := 2 + int(n%10)
	prob := 0.2 + float64(p%60)/100
	return RandomConnected(rng, nodes, prob, 0.1, 5)
}

// TestPropertyMSTWeightPermutationInvariant: the MST weight of a graph
// must not depend on edge insertion order.
func TestPropertyMSTWeightPermutationInvariant(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		g := genGraph(seed, n, p)
		w1, err := MST(g)
		if err != nil {
			return false
		}
		// Rebuild with edges inserted in reverse order.
		h := New(g.N())
		for i := g.M() - 1; i >= 0; i-- {
			e := g.Edge(i)
			h.AddEdge(e.U, e.V, e.W)
		}
		w2, err := MST(h)
		if err != nil {
			return false
		}
		return math.Abs(g.WeightOf(w1)-h.WeightOf(w2)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTreePathEndpoints: TreePath(u,v) is a valid walk between
// u and v whose length equals Depth(u)+Depth(v)−2·Depth(lca).
func TestPropertyTreePathEndpoints(t *testing.T) {
	f := func(seed int64, n, p uint8, a, b uint8) bool {
		g := genGraph(seed, n, p)
		ids, err := MST(g)
		if err != nil {
			return false
		}
		tr, err := NewRootedTree(g, 0, ids)
		if err != nil {
			return false
		}
		u, v := int(a)%g.N(), int(b)%g.N()
		path := tr.TreePath(u, v)
		x := tr.LCA(u, v)
		if len(path) != tr.Depth[u]+tr.Depth[v]-2*tr.Depth[x] {
			return false
		}
		// Walk the path from u; it must end at v.
		cur := u
		for _, id := range path {
			cur = g.Edge(id).Other(cur)
		}
		return cur == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertySubtreeSumsLinear: SubtreeSums is linear in its input and
// the root's entry is the global sum.
func TestPropertySubtreeSumsLinear(t *testing.T) {
	f := func(seed int64, n, p uint8, valSeed int64) bool {
		g := genGraph(seed, n, p)
		ids, err := MST(g)
		if err != nil {
			return false
		}
		tr, err := NewRootedTree(g, 0, ids)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(valSeed))
		x := make([]int64, g.N())
		y := make([]int64, g.N())
		z := make([]int64, g.N())
		var total int64
		for i := range x {
			x[i] = int64(rng.Intn(100))
			y[i] = int64(rng.Intn(100))
			z[i] = x[i] + y[i]
			total += z[i]
		}
		sx := tr.SubtreeSums(x)
		sy := tr.SubtreeSums(y)
		sz := tr.SubtreeSums(z)
		if sz[0] != total {
			return false
		}
		for v := range sz {
			if sz[v] != sx[v]+sy[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDijkstraMatchesNaive: the CSR indexed-heap Dijkstra must
// agree with the retained container/heap oracle — equal distances and a
// consistent shortest-path tree — on random graphs.
func TestPropertyDijkstraMatchesNaive(t *testing.T) {
	f := func(seed int64, n, p uint8, s uint8) bool {
		g := genGraph(seed, n, p)
		src := int(s) % g.N()
		fast := Dijkstra(g, src, nil)
		naive := DijkstraNaive(g, src, nil)
		for v := 0; v < g.N(); v++ {
			if math.Abs(fast.Dist[v]-naive.Dist[v]) > 1e-9 {
				return false
			}
			if v == src {
				continue
			}
			// The parent pointers may pick a different (equally short)
			// tree; each must be internally consistent.
			pe, pn := fast.ParEdge[v], fast.ParNode[v]
			if pe < 0 || pn < 0 {
				return false
			}
			if math.Abs(fast.Dist[pn]+g.Weight(pe)-fast.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMSTMatchesNaive: the frozen-order Kruskal must return the
// exact same edge set as the re-sorting oracle (both deterministic with
// (weight, ID) tie-breaks), and Prim's indexed-heap MST the same weight.
func TestPropertyMSTMatchesNaive(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		g := genGraph(seed, n, p)
		fast, err1 := MST(g)
		naive, err2 := MSTNaive(g)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(fast) != len(naive) {
			return false
		}
		for i := range fast {
			if fast[i] != naive[i] {
				return false
			}
		}
		prim, err := MSTPrim(g)
		if err != nil {
			return false
		}
		primNaive, err := MSTPrimNaive(g)
		if err != nil {
			return false
		}
		return math.Abs(g.WeightOf(prim)-g.WeightOf(naive)) < 1e-9 &&
			math.Abs(g.WeightOf(primNaive)-g.WeightOf(naive)) < 1e-9 &&
			g.IsSpanningTree(prim)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLCAMatchesNaive: the Euler-tour O(1) LCA must agree with
// binary lifting on every pair of nodes of random spanning trees.
func TestPropertyLCAMatchesNaive(t *testing.T) {
	f := func(seed int64, n, p uint8, r uint8) bool {
		g := genGraph(seed, n, p)
		ids, err := MST(g)
		if err != nil {
			return false
		}
		tr, err := NewRootedTree(g, int(r)%g.N(), ids)
		if err != nil {
			return false
		}
		for u := 0; u < g.N(); u++ {
			for v := 0; v < g.N(); v++ {
				if tr.LCA(u, v) != tr.LCANaive(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDijkstraWeightFunc: the fast path must honor a custom
// WeightFunc (the game layer's marginal-cost pricing) identically to the
// oracle.
func TestPropertyDijkstraWeightFunc(t *testing.T) {
	f := func(seed int64, n, p uint8, s uint8) bool {
		g := genGraph(seed, n, p)
		src := int(s) % g.N()
		wf := func(id int) float64 { return g.Weight(id) / float64(1+id%3) }
		fast := Dijkstra(g, src, wf)
		naive := DijkstraNaive(g, src, wf)
		for v := 0; v < g.N(); v++ {
			if math.Abs(fast.Dist[v]-naive.Dist[v]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDijkstraTriangle: shortest distances satisfy the triangle
// inequality over every edge.
func TestPropertyDijkstraTriangle(t *testing.T) {
	f := func(seed int64, n, p uint8, s uint8) bool {
		g := genGraph(seed, n, p)
		src := int(s) % g.N()
		sp := Dijkstra(g, src, nil)
		for _, e := range g.Edges() {
			if sp.Dist[e.V] > sp.Dist[e.U]+e.W+1e-9 {
				return false
			}
			if sp.Dist[e.U] > sp.Dist[e.V]+e.W+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertySpanningTreeCountMatrixTheorem: the contraction/deletion
// enumerator must agree with Kirchhoff's matrix-tree theorem (computed
// here via fraction-free Gaussian elimination on the reduced Laplacian).
func TestPropertySpanningTreeCountMatrixTheorem(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		g := genGraph(seed, n%4, p) // keep counts small (≤ 5 nodes)
		count, err := CountSpanningTrees(g, 2_000_000)
		if err != nil {
			return false
		}
		return count == kirchhoff(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// kirchhoff returns the spanning-tree count via the matrix-tree theorem.
func kirchhoff(g *Graph) int {
	n := g.N()
	if n <= 1 {
		return 1
	}
	// Laplacian with multiplicities.
	lap := make([][]float64, n)
	for i := range lap {
		lap[i] = make([]float64, n)
	}
	for _, e := range g.Edges() {
		lap[e.U][e.U]++
		lap[e.V][e.V]++
		lap[e.U][e.V]--
		lap[e.V][e.U]--
	}
	// Determinant of the reduced Laplacian (drop row/col 0).
	m := n - 1
	a := make([][]float64, m)
	for i := range a {
		a[i] = append([]float64(nil), lap[i+1][1:]...)
	}
	det := 1.0
	for col := 0; col < m; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return 0
		}
		if piv != col {
			a[piv], a[col] = a[col], a[piv]
			det = -det
		}
		det *= a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < m; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	return int(math.Round(det))
}
