package graph

import (
	"fmt"
	"math/bits"
)

// RootedTree is a spanning tree of a graph rooted at a designated node,
// with precomputed parents, depths, children, a bottom-up ordering and an
// Euler-tour sparse table for O(1) lowest-common-ancestor queries.
//
// In broadcast games a state *is* a rooted spanning tree: player u's
// strategy is the tree path from u to the root, so almost every quantity
// in the paper (usage counts n_a, costs, LP rows) is a query on this type.
type RootedTree struct {
	G        *Graph
	Root     int
	Parent   []int   // Parent[v] = parent node, -1 at root
	ParEdge  []int   // ParEdge[v] = edge ID to parent, -1 at root
	Depth    []int   // Depth[v] = #edges to root
	Children [][]int // Children[v] = child nodes
	Order    []int   // BFS order from the root (parents precede children)
	EdgeIDs  []int   // the n-1 tree edge IDs, ascending
	inTree   []bool  // indexed by edge ID

	// Euler-tour RMQ structure for O(1) LCA: eulerNode/eulerDepth record
	// the DFS tour (length 2n−1), eulerFirst[v] the first occurrence of
	// v, and sparse[k][i] the tour index of the minimum depth in
	// [i, i+2^k).
	eulerFirst []int32
	eulerNode  []int32
	eulerDepth []int32
	sparse     [][]int32

	up [][]int // binary lifting for LCANaive; built lazily

	// swp holds the state of a pending single-edge swap (see swap.go).
	// While a swap is pending, Parent/ParEdge/Depth/inTree/EdgeIDs
	// describe the swapped tree, whereas Children, Order and the Euler
	// structures still describe the base tree; LCA answers queries for
	// the swapped tree by overlaying the swap on the base structures.
	swp swapOverlay

	eulerStack []eulerFrame // DFS scratch reused across rebuilds
}

// eulerFrame is a DFS stack record for buildEuler.
type eulerFrame struct {
	node int
	next int // index of the next child to descend into
}

// NewRootedTree builds a rooted tree from a spanning edge set. It returns
// an error if the edges do not form a spanning tree of g.
func NewRootedTree(g *Graph, root int, treeEdges []int) (*RootedTree, error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: root %d out of range", root)
	}
	if len(treeEdges) != n-1 {
		return nil, fmt.Errorf("graph: %d edges cannot span %d nodes", len(treeEdges), n)
	}
	inTree := make([]bool, g.M())
	for _, id := range treeEdges {
		if inTree[id] {
			return nil, fmt.Errorf("graph: duplicate tree edge %d", id)
		}
		inTree[id] = true
	}
	t := &RootedTree{
		G:        g,
		Root:     root,
		Parent:   make([]int, n),
		ParEdge:  make([]int, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
		inTree:   inTree,
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.ParEdge[i] = -1
	}
	seen := make([]bool, n)
	seen[root] = true
	t.Order = append(t.Order, root)
	for i := 0; i < len(t.Order); i++ {
		u := t.Order[i]
		for _, half := range g.Adj(u) {
			if inTree[half.Edge] && !seen[half.To] {
				seen[half.To] = true
				t.Parent[half.To] = u
				t.ParEdge[half.To] = half.Edge
				t.Depth[half.To] = t.Depth[u] + 1
				t.Children[u] = append(t.Children[u], half.To)
				t.Order = append(t.Order, half.To)
			}
		}
	}
	if len(t.Order) != n {
		return nil, ErrDisconnected
	}
	t.EdgeIDs = make([]int, 0, n-1)
	for id, in := range inTree {
		if in {
			t.EdgeIDs = append(t.EdgeIDs, id)
		}
	}
	t.buildEuler()
	return t, nil
}

// buildEuler records the DFS Euler tour and its sparse min-depth table.
// All buffers are reused across rebuilds (Commit re-bases the tour after
// a swap), so steady-state rebuilds allocate nothing.
func (t *RootedTree) buildEuler() {
	n := t.G.N()
	tourLen := 2*n - 1
	if cap(t.eulerFirst) < n {
		t.eulerFirst = make([]int32, n)
		t.eulerNode = make([]int32, 0, tourLen)
		t.eulerDepth = make([]int32, 0, tourLen)
		t.eulerStack = make([]eulerFrame, 0, n)
	}
	t.eulerFirst = t.eulerFirst[:n]
	t.eulerNode = t.eulerNode[:0]
	t.eulerDepth = t.eulerDepth[:0]
	stack := append(t.eulerStack[:0], eulerFrame{node: t.Root})
	t.eulerFirst[t.Root] = 0
	t.eulerNode = append(t.eulerNode, int32(t.Root))
	t.eulerDepth = append(t.eulerDepth, 0)
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(t.Children[f.node]) {
			c := t.Children[f.node][f.next]
			f.next++
			t.eulerFirst[c] = int32(len(t.eulerNode))
			t.eulerNode = append(t.eulerNode, int32(c))
			t.eulerDepth = append(t.eulerDepth, int32(t.Depth[c]))
			stack = append(stack, eulerFrame{node: c})
		} else {
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].node
				t.eulerNode = append(t.eulerNode, int32(p))
				t.eulerDepth = append(t.eulerDepth, int32(t.Depth[p]))
			}
		}
	}
	t.eulerStack = stack[:0]
	L := len(t.eulerNode)
	levels := bits.Len(uint(L))
	for len(t.sparse) < levels {
		t.sparse = append(t.sparse, nil)
	}
	t.sparse = t.sparse[:levels]
	row0 := growRow(t.sparse[0], L)
	for i := range row0 {
		row0[i] = int32(i)
	}
	t.sparse[0] = row0
	for k := 1; 1<<k <= L; k++ {
		half := 1 << (k - 1)
		prev := t.sparse[k-1]
		row := growRow(t.sparse[k], L-1<<k+1)
		for i := range row {
			a, b := prev[i], prev[i+half]
			if t.eulerDepth[b] < t.eulerDepth[a] {
				a = b
			}
			row[i] = a
		}
		t.sparse[k] = row
	}
}

// growRow returns row resliced to length l, reallocating only when the
// capacity is insufficient.
func growRow(row []int32, l int) []int32 {
	if cap(row) < l {
		return make([]int32, l)
	}
	return row[:l]
}

// buildLifting fills the binary-lifting ancestor table (LCANaive only).
func (t *RootedTree) buildLifting() {
	n := t.G.N()
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n - 1))
	}
	t.up = make([][]int, levels)
	t.up[0] = append([]int(nil), t.Parent...)
	for k := 1; k < levels; k++ {
		t.up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			mid := t.up[k-1][v]
			if mid == -1 {
				t.up[k][v] = -1
			} else {
				t.up[k][v] = t.up[k-1][mid]
			}
		}
	}
}

// Contains reports whether edge id belongs to the tree.
func (t *RootedTree) Contains(id int) bool { return t.inTree[id] }

// LCA returns the lowest common ancestor of u and v in O(1) via the
// Euler-tour sparse table. It performs no allocations, which keeps the
// Lemma-2 violation scan allocation-free. With a pending swap it answers
// for the swapped tree by overlaying the swap on the base structures
// (a constant number of base queries, still O(1) and allocation-free).
func (t *RootedTree) LCA(u, v int) int {
	if !t.swp.active {
		return t.lcaBase(u, v)
	}
	return t.lcaOverlay(u, v)
}

// lcaBase answers the query on the base tree (the tree as of the last
// Commit or construction), ignoring any pending swap.
func (t *RootedTree) lcaBase(u, v int) int {
	l, r := t.eulerFirst[u], t.eulerFirst[v]
	if l > r {
		l, r = r, l
	}
	k := bits.Len(uint(r-l+1)) - 1
	a := t.sparse[k][l]
	b := t.sparse[k][int(r)-1<<k+1]
	if t.eulerDepth[b] < t.eulerDepth[a] {
		a = b
	}
	return int(t.eulerNode[a])
}

// baseDepth returns a node's depth in the base tree (Depth itself is
// rewritten for detached-subtree nodes while a swap is pending).
func (t *RootedTree) baseDepth(w int) int32 { return t.eulerDepth[t.eulerFirst[w]] }

// LCANaive answers the same query by binary lifting in O(log n). It is
// retained as the differential-test oracle for LCA; the lifting table is
// built lazily on first use (and is not safe to race on first use).
// With a pending swap it falls back to an O(depth) two-pointer walk over
// the live Parent/Depth arrays — exactly the oracle the overlay fast
// path is tested against.
func (t *RootedTree) LCANaive(u, v int) int {
	if t.swp.active {
		for t.Depth[u] > t.Depth[v] {
			u = t.Parent[u]
		}
		for t.Depth[v] > t.Depth[u] {
			v = t.Parent[v]
		}
		for u != v {
			u, v = t.Parent[u], t.Parent[v]
		}
		return u
	}
	if t.up == nil {
		t.buildLifting()
	}
	if t.Depth[u] < t.Depth[v] {
		u, v = v, u
	}
	diff := t.Depth[u] - t.Depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.Parent[u]
}

// PathToRoot returns the edge IDs on the tree path from u up to the root,
// ordered from u upward. This is player u's strategy T_u in a broadcast
// game.
func (t *RootedTree) PathToRoot(u int) []int {
	var path []int
	for u != t.Root {
		path = append(path, t.ParEdge[u])
		u = t.Parent[u]
	}
	return path
}

// PathUpTo returns the edge IDs on the path from u up to ancestor anc
// (exclusive of anc), ordered from u upward. anc must be an ancestor of u.
func (t *RootedTree) PathUpTo(u, anc int) []int {
	var path []int
	for u != anc {
		if u == t.Root {
			panic("graph: PathUpTo target is not an ancestor")
		}
		path = append(path, t.ParEdge[u])
		u = t.Parent[u]
	}
	return path
}

// TreePath returns the edge IDs of the unique tree path between u and v
// (through their LCA), ordered u→LCA then LCA→v.
func (t *RootedTree) TreePath(u, v int) []int {
	x := t.LCA(u, v)
	up := t.PathUpTo(u, x)
	down := t.PathUpTo(v, x)
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return append(up, down...)
}

// SubtreeSizes returns, for every node v, the number of nodes in the
// subtree rooted at v (including v).
func (t *RootedTree) SubtreeSizes() []int {
	sizes := make([]int, t.G.N())
	for i := range sizes {
		sizes[i] = 1
	}
	t.forEachBottomUp(func(v int) { sizes[t.Parent[v]] += sizes[v] })
	return sizes
}

// SubtreeSums aggregates an arbitrary per-node value bottom-up: the result
// at v is the sum of vals over the subtree rooted at v. Usage counts n_a
// of a broadcast state are SubtreeSums over player multiplicities.
func (t *RootedTree) SubtreeSums(vals []int64) []int64 {
	return t.SubtreeSumsInto(vals, nil)
}

// SubtreeSumsInto is SubtreeSums writing into dst (grown as needed), so
// repeated aggregations — the Theorem-6 per-level packing — reuse one
// buffer and allocate nothing in steady state.
func (t *RootedTree) SubtreeSumsInto(vals []int64, dst []int64) []int64 {
	n := t.G.N()
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	copy(dst, vals)
	t.forEachBottomUp(func(v int) { dst[t.Parent[v]] += dst[v] })
	return dst
}

// Leaves returns the nodes with no children.
func (t *RootedTree) Leaves() []int {
	hasChild := make([]bool, t.G.N())
	for v := 0; v < t.G.N(); v++ {
		if v != t.Root {
			hasChild[t.Parent[v]] = true
		}
	}
	var leaves []int
	for v := 0; v < t.G.N(); v++ {
		if !hasChild[v] && v != t.Root {
			leaves = append(leaves, v)
		}
	}
	// A root with no children (n == 1) has no leaves below it.
	return leaves
}

// ForEachTopDown invokes fn for every non-root node in an order where
// parents precede children. Unlike iterating the public Order slice, it
// stays correct while a swap is pending: base-tree nodes keep their BFS
// order and the detached subtree is visited last, in its re-rooted BFS
// order.
func (t *RootedTree) ForEachTopDown(fn func(v int)) {
	if !t.swp.active {
		for _, v := range t.Order {
			if v != t.Root {
				fn(v)
			}
		}
		return
	}
	for _, v := range t.Order {
		if v == t.Root || t.InPendingSubtree(v) {
			continue
		}
		fn(v)
	}
	for _, w := range t.swp.nodes {
		fn(int(w))
	}
}

// forEachBottomUp is the children-before-parents mirror of ForEachTopDown.
func (t *RootedTree) forEachBottomUp(fn func(v int)) {
	if !t.swp.active {
		for i := len(t.Order) - 1; i >= 0; i-- {
			if v := t.Order[i]; v != t.Root {
				fn(v)
			}
		}
		return
	}
	for i := len(t.swp.nodes) - 1; i >= 0; i-- {
		fn(int(t.swp.nodes[i]))
	}
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		if v == t.Root || t.InPendingSubtree(v) {
			continue
		}
		fn(v)
	}
}

// Weight returns the total weight of the tree's edges.
func (t *RootedTree) Weight() float64 { return t.G.WeightOf(t.EdgeIDs) }
