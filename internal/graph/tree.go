package graph

import (
	"fmt"
	"math/bits"
)

// RootedTree is a spanning tree of a graph rooted at a designated node,
// with precomputed parents, depths, children, a bottom-up ordering and a
// binary-lifting table for O(log n) lowest-common-ancestor queries.
//
// In broadcast games a state *is* a rooted spanning tree: player u's
// strategy is the tree path from u to the root, so almost every quantity
// in the paper (usage counts n_a, costs, LP rows) is a query on this type.
type RootedTree struct {
	G        *Graph
	Root     int
	Parent   []int   // Parent[v] = parent node, -1 at root
	ParEdge  []int   // ParEdge[v] = edge ID to parent, -1 at root
	Depth    []int   // Depth[v] = #edges to root
	Children [][]int // Children[v] = child nodes
	Order    []int   // BFS order from the root (parents precede children)
	EdgeIDs  []int   // the n-1 tree edge IDs, ascending
	inTree   []bool  // indexed by edge ID
	up       [][]int // binary lifting: up[k][v] = 2^k-th ancestor (-1 past root)
}

// NewRootedTree builds a rooted tree from a spanning edge set. It returns
// an error if the edges do not form a spanning tree of g.
func NewRootedTree(g *Graph, root int, treeEdges []int) (*RootedTree, error) {
	n := g.N()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("graph: root %d out of range", root)
	}
	if len(treeEdges) != n-1 {
		return nil, fmt.Errorf("graph: %d edges cannot span %d nodes", len(treeEdges), n)
	}
	inTree := make([]bool, g.M())
	for _, id := range treeEdges {
		if inTree[id] {
			return nil, fmt.Errorf("graph: duplicate tree edge %d", id)
		}
		inTree[id] = true
	}
	t := &RootedTree{
		G:        g,
		Root:     root,
		Parent:   make([]int, n),
		ParEdge:  make([]int, n),
		Depth:    make([]int, n),
		Children: make([][]int, n),
		inTree:   inTree,
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.ParEdge[i] = -1
	}
	seen := make([]bool, n)
	seen[root] = true
	t.Order = append(t.Order, root)
	for i := 0; i < len(t.Order); i++ {
		u := t.Order[i]
		for _, half := range g.Adj(u) {
			if inTree[half.Edge] && !seen[half.To] {
				seen[half.To] = true
				t.Parent[half.To] = u
				t.ParEdge[half.To] = half.Edge
				t.Depth[half.To] = t.Depth[u] + 1
				t.Children[u] = append(t.Children[u], half.To)
				t.Order = append(t.Order, half.To)
			}
		}
	}
	if len(t.Order) != n {
		return nil, ErrDisconnected
	}
	t.EdgeIDs = make([]int, 0, n-1)
	for id, in := range inTree {
		if in {
			t.EdgeIDs = append(t.EdgeIDs, id)
		}
	}
	t.buildLifting()
	return t, nil
}

// buildLifting fills the binary-lifting ancestor table.
func (t *RootedTree) buildLifting() {
	n := t.G.N()
	levels := 1
	if n > 1 {
		levels = bits.Len(uint(n - 1))
	}
	t.up = make([][]int, levels)
	t.up[0] = append([]int(nil), t.Parent...)
	for k := 1; k < levels; k++ {
		t.up[k] = make([]int, n)
		for v := 0; v < n; v++ {
			mid := t.up[k-1][v]
			if mid == -1 {
				t.up[k][v] = -1
			} else {
				t.up[k][v] = t.up[k-1][mid]
			}
		}
	}
}

// Contains reports whether edge id belongs to the tree.
func (t *RootedTree) Contains(id int) bool { return t.inTree[id] }

// LCA returns the lowest common ancestor of u and v.
func (t *RootedTree) LCA(u, v int) int {
	if t.Depth[u] < t.Depth[v] {
		u, v = v, u
	}
	diff := t.Depth[u] - t.Depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 == 1 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.Parent[u]
}

// PathToRoot returns the edge IDs on the tree path from u up to the root,
// ordered from u upward. This is player u's strategy T_u in a broadcast
// game.
func (t *RootedTree) PathToRoot(u int) []int {
	var path []int
	for u != t.Root {
		path = append(path, t.ParEdge[u])
		u = t.Parent[u]
	}
	return path
}

// PathUpTo returns the edge IDs on the path from u up to ancestor anc
// (exclusive of anc), ordered from u upward. anc must be an ancestor of u.
func (t *RootedTree) PathUpTo(u, anc int) []int {
	var path []int
	for u != anc {
		if u == t.Root {
			panic("graph: PathUpTo target is not an ancestor")
		}
		path = append(path, t.ParEdge[u])
		u = t.Parent[u]
	}
	return path
}

// TreePath returns the edge IDs of the unique tree path between u and v
// (through their LCA), ordered u→LCA then LCA→v.
func (t *RootedTree) TreePath(u, v int) []int {
	x := t.LCA(u, v)
	up := t.PathUpTo(u, x)
	down := t.PathUpTo(v, x)
	for i, j := 0, len(down)-1; i < j; i, j = i+1, j-1 {
		down[i], down[j] = down[j], down[i]
	}
	return append(up, down...)
}

// SubtreeSizes returns, for every node v, the number of nodes in the
// subtree rooted at v (including v).
func (t *RootedTree) SubtreeSizes() []int {
	sizes := make([]int, t.G.N())
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		sizes[v] = 1
		for _, c := range t.Children[v] {
			sizes[v] += sizes[c]
		}
	}
	return sizes
}

// SubtreeSums aggregates an arbitrary per-node value bottom-up: the result
// at v is the sum of vals over the subtree rooted at v. Usage counts n_a
// of a broadcast state are SubtreeSums over player multiplicities.
func (t *RootedTree) SubtreeSums(vals []int64) []int64 {
	sums := make([]int64, t.G.N())
	for i := len(t.Order) - 1; i >= 0; i-- {
		v := t.Order[i]
		sums[v] = vals[v]
		for _, c := range t.Children[v] {
			sums[v] += sums[c]
		}
	}
	return sums
}

// Leaves returns the nodes with no children.
func (t *RootedTree) Leaves() []int {
	var leaves []int
	for v := 0; v < t.G.N(); v++ {
		if len(t.Children[v]) == 0 && v != t.Root {
			leaves = append(leaves, v)
		}
	}
	// A root with no children (n == 1) has no leaves below it.
	return leaves
}

// Weight returns the total weight of the tree's edges.
func (t *RootedTree) Weight() float64 { return t.G.WeightOf(t.EdgeIDs) }
