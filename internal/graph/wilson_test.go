package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestWilsonUSTIsSpanningTree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(12)
		g := RandomConnected(rng, n, 0.4, 0.5, 2)
		tree, err := WilsonUST(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsSpanningTree(tree) {
			t.Fatalf("trial %d: %v is not a spanning tree of n=%d", trial, tree, n)
		}
	}
}

func TestWilsonUSTDeterministicPerSeed(t *testing.T) {
	g := RandomConnected(rand.New(rand.NewSource(3)), 10, 0.5, 0.5, 2)
	t1, err := WilsonUST(g, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := WilsonUST(g, rand.New(rand.NewSource(7)))
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatalf("same seed diverged: %v vs %v", t1, t2)
	}
}

func TestWilsonUSTDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 1; n++ {
		tree, err := WilsonUST(New(n), rng)
		if err != nil || len(tree) != 0 {
			t.Fatalf("n=%d: %v %v", n, tree, err)
		}
	}
	g := New(3)
	g.AddEdge(0, 1, 1)
	if _, err := WilsonUST(g, rng); err != ErrDisconnected {
		t.Fatalf("disconnected graph: err = %v", err)
	}
}

// TestWilsonUSTUniform checks the defining property on K4, which has 16
// spanning trees: every tree must appear with frequency close to 1/16.
// (The shuffled-Kruskal sampler fails this test on weighted graphs —
// that bias is why Wilson exists here.)
func TestWilsonUSTUniform(t *testing.T) {
	g := Complete(4, func(i, j int) float64 { return 1 })
	rng := rand.New(rand.NewSource(99))
	const samples = 16000
	counts := map[string]int{}
	for s := 0; s < samples; s++ {
		tree, err := WilsonUST(g, rng)
		if err != nil {
			t.Fatal(err)
		}
		sort.Ints(tree)
		counts[fmt.Sprint(tree)]++
	}
	if len(counts) != 16 {
		t.Fatalf("K4 has 16 spanning trees; sampled %d distinct", len(counts))
	}
	want := float64(samples) / 16
	for tr, c := range counts {
		if f := float64(c); f < 0.8*want || f > 1.2*want {
			t.Errorf("tree %s sampled %d times, want ≈ %.0f (±20%%)", tr, c, want)
		}
	}
}

// TestWilsonUSTParallelEdges: on a two-node multigraph with k parallel
// edges each edge is its own spanning tree and must be sampled uniformly.
func TestWilsonUSTParallelEdges(t *testing.T) {
	g := New(2)
	for k := 0; k < 4; k++ {
		g.AddEdge(0, 1, float64(k+1))
	}
	rng := rand.New(rand.NewSource(23))
	counts := make([]int, 4)
	const samples = 8000
	for s := 0; s < samples; s++ {
		tree, err := WilsonUST(g, rng)
		if err != nil || len(tree) != 1 {
			t.Fatal(tree, err)
		}
		counts[tree[0]]++
	}
	for id, c := range counts {
		if f := float64(c); f < 0.8*samples/4 || f > 1.2*samples/4 {
			t.Errorf("parallel edge %d sampled %d/%d times, want ≈ 1/4", id, c, samples)
		}
	}
}
