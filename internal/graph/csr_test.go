package graph

import (
	"math"
	"math/rand"
	"testing"
)

// TestCSRStructure checks the frozen view against the adjacency lists.
func TestCSRStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := RandomConnected(rng, 40, 0.2, 0.1, 5)
	c := g.Freeze()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatalf("CSR dims (%d,%d) ≠ graph dims (%d,%d)", c.N(), c.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		adj := g.Adj(u)
		if c.Degree(u) != len(adj) {
			t.Fatalf("node %d: CSR degree %d ≠ %d", u, c.Degree(u), len(adj))
		}
		for k, half := range adj {
			i := int(c.off[u]) + k
			if int(c.to[i]) != half.To || int(c.eid[i]) != half.Edge {
				t.Fatalf("node %d half %d: CSR (%d,%d) ≠ (%d,%d)",
					u, k, c.to[i], c.eid[i], half.To, half.Edge)
			}
		}
	}
	for id := 0; id < g.M(); id++ {
		e := g.Edge(id)
		u, v := c.Endpoints(id)
		if u != e.U || v != e.V || c.Weight(id) != e.W {
			t.Fatalf("edge %d mismatch", id)
		}
	}
	sorted := c.SortedEdgeIDs()
	if len(sorted) != g.M() {
		t.Fatalf("sorted length %d ≠ %d", len(sorted), g.M())
	}
	for i := 1; i < len(sorted); i++ {
		wa, wb := c.w[sorted[i-1]], c.w[sorted[i]]
		if wa > wb || (wa == wb && sorted[i-1] > sorted[i]) {
			t.Fatalf("sorted order broken at %d", i)
		}
	}
}

// TestFreezeInvalidation: mutations must drop the cached view.
func TestFreezeInvalidation(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	c1 := g.Freeze()
	if c2 := g.Freeze(); c2 != c1 {
		t.Fatal("Freeze did not cache")
	}
	g.SetWeight(0, 5)
	c3 := g.Freeze()
	if c3 == c1 {
		t.Fatal("SetWeight did not invalidate the frozen view")
	}
	if c3.Weight(0) != 5 {
		t.Fatalf("stale weight %v after SetWeight", c3.Weight(0))
	}
	g.AddEdge(0, 2, 3)
	if c4 := g.Freeze(); c4 == c3 || c4.M() != 3 {
		t.Fatal("AddEdge did not invalidate the frozen view")
	}
	id := g.AddNode()
	g.AddEdge(id, 0, 1)
	if c5 := g.Freeze(); c5.N() != 4 {
		t.Fatal("AddNode did not invalidate the frozen view")
	}
}

// TestScratchDijkstraReuse: one Scratch across graphs of different sizes.
func TestScratchDijkstraReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var s Scratch
	for _, n := range []int{5, 60, 12, 33} {
		g := RandomConnected(rng, n, 0.3, 0.1, 4)
		c := g.Freeze()
		s.Dijkstra(c, 0, nil)
		want := DijkstraNaive(g, 0, nil)
		for v := 0; v < n; v++ {
			if math.Abs(s.Dist[v]-want.Dist[v]) > 1e-12 {
				t.Fatalf("n=%d node %d: dist %v ≠ %v", n, v, s.Dist[v], want.Dist[v])
			}
		}
	}
}

// TestDijkstraZeroAllocs: a warmed-up Scratch on a frozen graph must not
// allocate — the acceptance criterion for the hot-path rewrite.
func TestDijkstraZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(rng, 150, 0.1, 0.5, 3)
	c := g.Freeze()
	var s Scratch
	s.Dijkstra(c, 0, nil) // warm up the workspace
	allocs := testing.AllocsPerRun(50, func() {
		s.Dijkstra(c, 0, nil)
	})
	if allocs != 0 {
		t.Fatalf("Dijkstra allocated %v times per run, want 0", allocs)
	}
}

// TestLCAZeroAllocs: the O(1) Euler-tour LCA must not allocate.
func TestLCAZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(rng, 150, 0.1, 0.5, 3)
	ids, err := MST(g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewRootedTree(g, 0, ids)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		for u := 0; u < g.N(); u += 7 {
			for v := 0; v < g.N(); v += 11 {
				tr.LCA(u, v)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("LCA allocated %v times per run, want 0", allocs)
	}
}

// TestScratchPathTo: reconstruction matches the naive result.
func TestScratchPathTo(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := RandomConnected(rng, 30, 0.2, 0.1, 5)
	c := g.Freeze()
	var s Scratch
	s.Dijkstra(c, 3, nil)
	want := DijkstraNaive(g, 3, nil)
	var buf []int
	for v := 0; v < g.N(); v++ {
		buf = s.PathTo(v, buf)
		// Paths may differ when shortest paths tie; lengths of weights
		// must agree.
		sum := 0.0
		for _, id := range buf {
			sum += g.Weight(id)
		}
		if math.Abs(sum-want.Dist[v]) > 1e-9 {
			t.Fatalf("node %d: path weight %v ≠ dist %v", v, sum, want.Dist[v])
		}
	}
}
