package graph

import (
	"math/rand"
	"testing"
)

// buildSampleTree returns a small rooted tree:
//
//	      0 (root)
//	     / \
//	    1   2
//	   / \   \
//	  3   4   5
//	 /
//	6
func buildSampleTree(t *testing.T) (*Graph, *RootedTree) {
	t.Helper()
	g := New(7)
	ids := []int{
		g.AddEdge(0, 1, 1),
		g.AddEdge(0, 2, 1),
		g.AddEdge(1, 3, 1),
		g.AddEdge(1, 4, 1),
		g.AddEdge(2, 5, 1),
		g.AddEdge(3, 6, 1),
	}
	tr, err := NewRootedTree(g, 0, ids)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr
}

func TestRootedTreeBasics(t *testing.T) {
	_, tr := buildSampleTree(t)
	if tr.Parent[6] != 3 || tr.Parent[3] != 1 || tr.Parent[1] != 0 || tr.Parent[0] != -1 {
		t.Error("parents wrong")
	}
	if tr.Depth[6] != 3 || tr.Depth[5] != 2 || tr.Depth[0] != 0 {
		t.Error("depths wrong")
	}
	if len(tr.PathToRoot(6)) != 3 {
		t.Error("PathToRoot(6) length wrong")
	}
	sizes := tr.SubtreeSizes()
	if sizes[0] != 7 || sizes[1] != 4 || sizes[3] != 2 || sizes[6] != 1 {
		t.Errorf("subtree sizes wrong: %v", sizes)
	}
	leaves := tr.Leaves()
	if len(leaves) != 3 { // 4, 5, 6
		t.Errorf("leaves = %v", leaves)
	}
	if tr.Weight() != 6 {
		t.Errorf("tree weight = %v", tr.Weight())
	}
}

func TestLCA(t *testing.T) {
	_, tr := buildSampleTree(t)
	cases := []struct{ u, v, want int }{
		{6, 4, 1},
		{6, 5, 0},
		{3, 4, 1},
		{6, 6, 6},
		{6, 3, 3},
		{0, 6, 0},
		{4, 5, 0},
	}
	for _, c := range cases {
		if got := tr.LCA(c.u, c.v); got != c.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
		if got := tr.LCA(c.v, c.u); got != c.want {
			t.Errorf("LCA(%d,%d) = %d, want %d", c.v, c.u, got, c.want)
		}
	}
}

func TestLCARandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		g := RandomConnected(rng, n, 0.2, 1, 2)
		treeIDs, err := MST(g)
		if err != nil {
			t.Fatal(err)
		}
		root := rng.Intn(n)
		tr, err := NewRootedTree(g, root, treeIDs)
		if err != nil {
			t.Fatal(err)
		}
		naive := func(u, v int) int {
			seen := map[int]bool{}
			for x := u; ; x = tr.Parent[x] {
				seen[x] = true
				if x == root {
					break
				}
			}
			for x := v; ; x = tr.Parent[x] {
				if seen[x] {
					return x
				}
			}
		}
		for q := 0; q < 50; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if got, want := tr.LCA(u, v), naive(u, v); got != want {
				t.Fatalf("LCA(%d,%d) = %d, naive %d", u, v, got, want)
			}
		}
	}
}

func TestPathUpToAndTreePath(t *testing.T) {
	g, tr := buildSampleTree(t)
	p := tr.PathUpTo(6, 1)
	if len(p) != 2 || g.WeightOf(p) != 2 {
		t.Errorf("PathUpTo(6,1) = %v", p)
	}
	tp := tr.TreePath(6, 4)
	if len(tp) != 3 {
		t.Errorf("TreePath(6,4) = %v", tp)
	}
	tp2 := tr.TreePath(6, 5)
	if len(tp2) != 5 {
		t.Errorf("TreePath(6,5) = %v", tp2)
	}
	if len(tr.TreePath(3, 3)) != 0 {
		t.Error("TreePath(v,v) should be empty")
	}
}

func TestSubtreeSums(t *testing.T) {
	_, tr := buildSampleTree(t)
	vals := []int64{0, 1, 1, 1, 1, 1, 1} // root multiplicity 0
	sums := tr.SubtreeSums(vals)
	if sums[0] != 6 || sums[1] != 4 || sums[3] != 2 || sums[5] != 1 {
		t.Errorf("SubtreeSums = %v", sums)
	}
}

func TestNewRootedTreeErrors(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 1)
	c := g.AddEdge(0, 2, 1)
	if _, err := NewRootedTree(g, 0, []int{a}); err == nil {
		t.Error("wrong edge count accepted")
	}
	if _, err := NewRootedTree(g, 0, []int{a, a}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewRootedTree(g, 5, []int{a, b}); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := NewRootedTree(g, 0, []int{a, b}); err != nil {
		t.Errorf("valid tree rejected: %v", err)
	}
	_ = c
	// Disconnected "tree": two nodes but a cycle edge set.
	g2 := New(4)
	x := g2.AddEdge(0, 1, 1)
	y := g2.AddEdge(0, 1, 1) // parallel: covers duplicate-span case
	z := g2.AddEdge(2, 3, 1)
	if _, err := NewRootedTree(g2, 0, []int{x, y, z}); err == nil {
		t.Error("non-spanning edge set accepted")
	}
	if tr, err := NewRootedTree(New(1), 0, nil); err != nil || tr.Root != 0 {
		t.Errorf("singleton tree: %v %v", tr, err)
	}
}

func TestContains(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1)
	b := g.AddEdge(1, 2, 1)
	c := g.AddEdge(0, 2, 1)
	tr, err := NewRootedTree(g, 0, []int{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Contains(a) || !tr.Contains(b) || tr.Contains(c) {
		t.Error("Contains wrong")
	}
}
