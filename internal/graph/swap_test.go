package graph

import (
	"math/rand"
	"testing"
)

// randomSpanningTree returns a uniformly-ish random spanning tree of g:
// Kruskal over a shuffled edge order.
func randomSpanningTree(t *testing.T, g *Graph, rng *rand.Rand) []int {
	t.Helper()
	ids := rng.Perm(g.M())
	dsu := NewUnionFind(g.N())
	var tree []int
	for _, id := range ids {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			tree = append(tree, id)
		}
	}
	if len(tree) != g.N()-1 {
		t.Fatal("random spanning tree construction failed")
	}
	return tree
}

// randomSwap picks a random valid (removeID, addID) pair for tr: a random
// non-tree edge plus a random tree edge on the cycle it closes.
func randomSwap(t *testing.T, tr *RootedTree, rng *rand.Rand) (removeID, addID int, ok bool) {
	t.Helper()
	g := tr.G
	var nonTree []int
	for id := 0; id < g.M(); id++ {
		if !tr.Contains(id) {
			nonTree = append(nonTree, id)
		}
	}
	if len(nonTree) == 0 {
		return 0, 0, false
	}
	addID = nonTree[rng.Intn(len(nonTree))]
	e := g.Edge(addID)
	cycle := tr.TreePath(e.U, e.V)
	if len(cycle) == 0 {
		// Parallel edge to a tree edge of zero-length path cannot happen;
		// parallel edges still yield the one tree edge between endpoints.
		return 0, 0, false
	}
	return cycle[rng.Intn(len(cycle))], addID, true
}

// snapshotTree captures the mutable fields ApplySwap touches.
type treeSnapshot struct {
	parent, parEdge, depth, edgeIDs []int
}

func snapshot(tr *RootedTree) treeSnapshot {
	return treeSnapshot{
		parent:  append([]int(nil), tr.Parent...),
		parEdge: append([]int(nil), tr.ParEdge...),
		depth:   append([]int(nil), tr.Depth...),
		edgeIDs: append([]int(nil), tr.EdgeIDs...),
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertMatchesFresh checks every query of tr against a freshly-built
// tree over tr's current edge set.
func assertMatchesFresh(t *testing.T, tr *RootedTree, ctx string) {
	t.Helper()
	g := tr.G
	fresh, err := NewRootedTree(g, tr.Root, tr.EdgeIDs)
	if err != nil {
		t.Fatalf("%s: fresh rebuild failed: %v", ctx, err)
	}
	n := g.N()
	if !equalInts(tr.Parent, fresh.Parent) {
		t.Fatalf("%s: Parent mismatch\n got %v\nwant %v", ctx, tr.Parent, fresh.Parent)
	}
	if !equalInts(tr.ParEdge, fresh.ParEdge) {
		t.Fatalf("%s: ParEdge mismatch", ctx)
	}
	if !equalInts(tr.Depth, fresh.Depth) {
		t.Fatalf("%s: Depth mismatch\n got %v\nwant %v", ctx, tr.Depth, fresh.Depth)
	}
	if !equalInts(tr.EdgeIDs, fresh.EdgeIDs) {
		t.Fatalf("%s: EdgeIDs mismatch\n got %v\nwant %v", ctx, tr.EdgeIDs, fresh.EdgeIDs)
	}
	for id := 0; id < g.M(); id++ {
		if tr.Contains(id) != fresh.Contains(id) {
			t.Fatalf("%s: Contains(%d) mismatch", ctx, id)
		}
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if got, want := tr.LCA(u, v), fresh.LCA(u, v); got != want {
				t.Fatalf("%s: LCA(%d,%d) = %d, want %d", ctx, u, v, got, want)
			}
			if got, want := tr.LCANaive(u, v), fresh.LCA(u, v); got != want {
				t.Fatalf("%s: LCANaive(%d,%d) = %d, want %d", ctx, u, v, got, want)
			}
		}
	}
	// Subtree aggregation must agree with the fresh tree.
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(i%5 + 1)
	}
	got, want := tr.SubtreeSums(vals), fresh.SubtreeSums(vals)
	for v := 0; v < n; v++ {
		if got[v] != want[v] {
			t.Fatalf("%s: SubtreeSums[%d] = %d, want %d", ctx, v, got[v], want[v])
		}
	}
	// ForEachTopDown must put parents before children and cover all nodes.
	seen := make([]bool, n)
	seen[tr.Root] = true
	count := 1
	tr.ForEachTopDown(func(v int) {
		if !seen[tr.Parent[v]] {
			t.Fatalf("%s: ForEachTopDown visited %d before its parent %d", ctx, v, tr.Parent[v])
		}
		if seen[v] {
			t.Fatalf("%s: ForEachTopDown visited %d twice", ctx, v)
		}
		seen[v] = true
		count++
	})
	if count != n {
		t.Fatalf("%s: ForEachTopDown covered %d of %d nodes", ctx, count, n)
	}
}

func assertMatchesSnapshot(t *testing.T, tr *RootedTree, snap treeSnapshot, ctx string) {
	t.Helper()
	if !equalInts(tr.Parent, snap.parent) || !equalInts(tr.ParEdge, snap.parEdge) ||
		!equalInts(tr.Depth, snap.depth) || !equalInts(tr.EdgeIDs, snap.edgeIDs) {
		t.Fatalf("%s: revert did not restore the base tree", ctx)
	}
}

// TestSwapDifferential drives ApplySwap/Revert/Commit on 120 random
// instances, asserting every query matches a from-scratch rebuild at
// every stage.
func TestSwapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 120; trial++ {
		n := 4 + rng.Intn(12)
		g := RandomConnected(rng, n, 0.25+rng.Float64()*0.5, 0.5, 3)
		tree := randomSpanningTree(t, g, rng)
		tr, err := NewRootedTree(g, rng.Intn(n), tree)
		if err != nil {
			t.Fatal(err)
		}
		// A few committed swaps in sequence exercise buffer reuse.
		for step := 0; step < 3; step++ {
			removeID, addID, ok := randomSwap(t, tr, rng)
			if !ok {
				break
			}
			snap := snapshot(tr)
			if err := tr.ApplySwap(removeID, addID); err != nil {
				t.Fatalf("trial %d step %d: ApplySwap(−%d,+%d): %v", trial, step, removeID, addID, err)
			}
			assertMatchesFresh(t, tr, "pending")
			tr.Revert()
			assertMatchesSnapshot(t, tr, snap, "revert")
			assertMatchesFresh(t, tr, "reverted")
			if err := tr.ApplySwap(removeID, addID); err != nil {
				t.Fatalf("trial %d step %d: re-ApplySwap: %v", trial, step, err)
			}
			tr.Commit()
			assertMatchesFresh(t, tr, "committed")
		}
	}
}

// TestSwapRejectsInvalid verifies the validation paths leave the tree
// untouched.
func TestSwapRejectsInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomConnected(rng, 8, 0.6, 0.5, 2)
	tree, err := MST(g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewRootedTree(g, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshot(tr)
	var nonTree []int
	for id := 0; id < g.M(); id++ {
		if !tr.Contains(id) {
			nonTree = append(nonTree, id)
		}
	}
	if len(nonTree) == 0 {
		t.Skip("instance has no non-tree edge")
	}
	f := nonTree[0]
	if err := tr.ApplySwap(nonTree[0], f); err == nil {
		t.Fatal("removing a non-tree edge must fail")
	}
	if err := tr.ApplySwap(tree[0], tree[1]); err == nil {
		t.Fatal("adding a tree edge must fail")
	}
	if err := tr.ApplySwap(-1, f); err == nil {
		t.Fatal("out-of-range edge must fail")
	}
	// A tree edge off the cycle closed by f cannot be replaced by f.
	e := g.Edge(f)
	onCycle := make(map[int]bool)
	for _, id := range tr.TreePath(e.U, e.V) {
		onCycle[id] = true
	}
	for _, id := range tree {
		if !onCycle[id] {
			if err := tr.ApplySwap(id, f); err == nil {
				t.Fatalf("swap (−%d,+%d) must fail: %d is not on the cycle of %d", id, f, id, f)
			}
			break
		}
	}
	assertMatchesSnapshot(t, tr, snap, "after rejected swaps")
	// Double-apply must fail until Revert.
	removeID, addID, ok := randomSwap(t, tr, rng)
	if !ok {
		t.Skip("no valid swap")
	}
	if err := tr.ApplySwap(removeID, addID); err != nil {
		t.Fatal(err)
	}
	if err := tr.ApplySwap(removeID, addID); err == nil {
		t.Fatal("second ApplySwap with one pending must fail")
	}
	tr.Revert()
	assertMatchesSnapshot(t, tr, snap, "after revert")
}

// TestSwapApplyRevertAllocFree asserts the steady-state apply/revert
// cycle performs zero allocations.
func TestSwapApplyRevertAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomConnected(rng, 200, 0.05, 0.5, 3)
	tree, err := MST(g)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewRootedTree(g, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	removeID, addID, ok := randomSwap(t, tr, rng)
	if !ok {
		t.Skip("no valid swap")
	}
	// Warm the undo buffers.
	if err := tr.ApplySwap(removeID, addID); err != nil {
		t.Fatal(err)
	}
	tr.Revert()
	allocs := testing.AllocsPerRun(100, func() {
		if err := tr.ApplySwap(removeID, addID); err != nil {
			t.Fatal(err)
		}
		tr.Revert()
	})
	if allocs != 0 {
		t.Fatalf("ApplySwap+Revert allocated %.1f times per run, want 0", allocs)
	}
}
