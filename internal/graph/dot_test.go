package graph

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g := New(3)
	a := g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2)
	var buf bytes.Buffer
	err := WriteDOT(&buf, g, DOTOptions{
		Name:      "demo",
		Highlight: map[int]bool{a: true},
		EdgeLabel: func(id int) string { return fmt.Sprintf("e%d", id) },
		NodeLabel: func(v int) string {
			if v == 0 {
				return "root"
			}
			return fmt.Sprintf("v%d", v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"graph demo {",
		`n0 [label="root"]`,
		`n0 -- n1 [label="e0" style=bold]`,
		`n1 -- n2 [label="e1" style=dashed]`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	g := Path(2, 3)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph G {") || !strings.Contains(out, `label="3"`) {
		t.Errorf("default DOT wrong:\n%s", out)
	}
}
