package graph

import (
	"math/rand"
	"testing"
)

func TestBasicConstruction(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph: n=%d m=%d", g.N(), g.M())
	}
	e0 := g.AddEdge(0, 1, 2.5)
	e1 := g.AddEdge(1, 2, 1.0)
	e2 := g.AddEdge(0, 1, 3.0) // parallel edge allowed
	if e0 != 0 || e1 != 1 || e2 != 2 {
		t.Fatalf("edge IDs not sequential: %d %d %d", e0, e1, e2)
	}
	if g.Degree(1) != 3 {
		t.Errorf("Degree(1) = %d, want 3", g.Degree(1))
	}
	if g.Edge(0).Other(0) != 1 || g.Edge(0).Other(1) != 0 {
		t.Error("Other failed")
	}
	if g.TotalWeight() != 6.5 {
		t.Errorf("TotalWeight = %v", g.TotalWeight())
	}
	if g.WeightOf([]int{0, 1}) != 3.5 {
		t.Errorf("WeightOf = %v", g.WeightOf([]int{0, 1}))
	}
	if id := g.FindEdge(0, 1); id != 0 {
		t.Errorf("FindEdge(0,1) = %d, want the lighter parallel edge 0", id)
	}
	if id := g.FindEdge(0, 3); id != -1 {
		t.Errorf("FindEdge(0,3) = %d, want -1", id)
	}
}

func TestAddNodeAndClone(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	v := g.AddNode()
	if v != 2 || g.N() != 3 {
		t.Fatalf("AddNode -> %d, n=%d", v, g.N())
	}
	g.AddEdge(1, 2, 4)
	h := g.Clone()
	h.SetWeight(0, 99)
	if g.Weight(0) == 99 {
		t.Error("Clone is not independent")
	}
}

func TestInvalidOperationsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"self-loop":       func() { New(2).AddEdge(0, 0, 1) },
		"negative weight": func() { New(2).AddEdge(0, 1, -1) },
		"out of range":    func() { New(2).AddEdge(0, 5, 1) },
		"negative nodes":  func() { New(-1) },
		"other mismatch":  func() { e := Edge{ID: 0, U: 1, V: 2}; e.Other(7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestConnectivity(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if got := len(g.Component(0)); got != 4 {
		t.Errorf("Component(0) size %d", got)
	}
	if !g.ConnectedOn([]int{0, 1, 2}) {
		t.Error("ConnectedOn full edge set failed")
	}
	if g.ConnectedOn([]int{0, 1}) {
		t.Error("ConnectedOn partial edge set should fail")
	}
	if !g.IsSpanningTree([]int{0, 1, 2}) {
		t.Error("IsSpanningTree failed on a valid tree")
	}
	if g.IsSpanningTree([]int{0, 1}) {
		t.Error("IsSpanningTree accepted a forest")
	}
}

func TestSortedEdgeIDs(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 5)
	ids := g.SortedEdgeIDs()
	if ids[0] != 1 || ids[1] != 0 || ids[2] != 2 {
		t.Errorf("SortedEdgeIDs = %v", ids)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("Count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || uf.Union(0, 1) {
		t.Error("Union return values wrong")
	}
	uf.Union(2, 3)
	if uf.Same(0, 2) {
		t.Error("Same(0,2) should be false")
	}
	uf.Union(1, 3)
	if !uf.Same(0, 2) || uf.Count() != 2 {
		t.Error("merged sets inconsistent")
	}
	cl := uf.Clone()
	cl.Union(0, 4)
	if uf.Same(0, 4) {
		t.Error("Clone not independent")
	}
}

func TestUnionFindRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 50
	uf := NewUnionFind(n)
	label := make([]int, n) // naive labeling
	for i := range label {
		label[i] = i
	}
	for step := 0; step < 500; step++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		got := uf.Union(a, b)
		want := label[a] != label[b]
		if got != want {
			t.Fatalf("step %d: Union(%d,%d) = %v, naive %v", step, a, b, got, want)
		}
		if want {
			old, nw := label[a], label[b]
			for i := range label {
				if label[i] == old {
					label[i] = nw
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if uf.Same(i, j) != (label[i] == label[j]) {
				t.Fatalf("Same(%d,%d) disagrees with naive", i, j)
			}
		}
	}
}
