package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text instance format is line-oriented:
//
//	# comment
//	nodes <n>
//	edge <u> <v> <weight>
//
// It is deliberately minimal so instances stay hand-editable; cmd/gadgetgen
// emits it and cmd/sne, cmd/snd consume it.

// WriteText serializes g in the text instance format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "nodes %d\n", g.N()); err != nil {
		return err
	}
	for _, e := range g.Edges() {
		if _, err := fmt.Fprintf(bw, "edge %d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a graph from the text instance format.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var g *Graph
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "nodes":
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'nodes <n>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			g = New(n)
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: 'edge' before 'nodes'", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want 'edge <u> <v> <w>'", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge", lineNo)
			}
			if u < 0 || u >= g.N() || v < 0 || v >= g.N() || u == v || w < 0 {
				return nil, fmt.Errorf("graph: line %d: invalid edge %d-%d w=%g", lineNo, u, v, w)
			}
			g.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: missing 'nodes' directive")
	}
	return g, nil
}

// jsonGraph is the JSON wire representation.
type jsonGraph struct {
	Nodes int         `json:"nodes"`
	Edges [][3]string `json:"edges"` // [u, v, w] as strings to keep precision explicit
}

// MarshalJSON implements json.Marshaler.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Nodes: g.n}
	for _, e := range g.edges {
		jg.Edges = append(jg.Edges, [3]string{
			strconv.Itoa(e.U), strconv.Itoa(e.V), strconv.FormatFloat(e.W, 'g', -1, 64),
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	ng := New(jg.Nodes)
	for i, triple := range jg.Edges {
		u, err1 := strconv.Atoi(triple[0])
		v, err2 := strconv.Atoi(triple[1])
		w, err3 := strconv.ParseFloat(triple[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("graph: malformed JSON edge %d", i)
		}
		ng.AddEdge(u, v, w)
	}
	// Field-wise so the frozen-CSR cache (which contains an atomic and
	// must not be copied) is simply invalidated on the receiver.
	g.n = ng.n
	g.edges = ng.edges
	g.adj = ng.adj
	g.invalidate()
	return nil
}
