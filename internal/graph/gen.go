package graph

import (
	"fmt"
	"math/rand"
)

// Path returns a path graph r=0 — 1 — ... — n with the given uniform edge
// weight. It has n+1 nodes and n edges.
func Path(n int, w float64) *Graph {
	g := New(n + 1)
	for i := 0; i < n; i++ {
		g.AddEdge(i, i+1, w)
	}
	return g
}

// Cycle returns a cycle on n+1 nodes (0..n) with unit-weight edges — the
// Theorem 11 lower-bound topology when weights are 1.
func Cycle(n int, w float64) *Graph {
	if n < 1 {
		panic("graph: Cycle needs at least 2 nodes")
	}
	g := Path(n, w)
	g.AddEdge(n, 0, w)
	return g
}

// Star returns a star with center 0 and n leaves, each spoke of weight w.
func Star(n int, w float64) *Graph {
	g := New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, i, w)
	}
	return g
}

// Wheel returns a wheel: center 0, rim 1..n joined in a cycle with rim
// weight rimW, spokes of weight spokeW.
func Wheel(n int, spokeW, rimW float64) *Graph {
	if n < 3 {
		panic("graph: Wheel needs a rim of at least 3 nodes")
	}
	g := New(n + 1)
	for i := 1; i <= n; i++ {
		g.AddEdge(0, i, spokeW)
	}
	for i := 1; i <= n; i++ {
		j := i%n + 1
		g.AddEdge(i, j, rimW)
	}
	return g
}

// Complete returns the complete graph K_n with weights drawn from wf(i,j).
func Complete(n int, wf func(i, j int) float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, wf(i, j))
		}
	}
	return g
}

// Grid returns an r×c grid graph with uniform weight w. Node (i,j) has
// index i*c+j.
func Grid(r, c int, w float64) *Graph {
	g := New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddEdge(i*c+j, i*c+j+1, w)
			}
			if i+1 < r {
				g.AddEdge(i*c+j, (i+1)*c+j, w)
			}
		}
	}
	return g
}

// RandomConnected returns a connected random graph on n nodes: a random
// spanning tree plus each remaining pair independently with probability p,
// weights uniform in [minW, maxW). Deterministic for a given rng.
func RandomConnected(rng *rand.Rand, n int, p, minW, maxW float64) *Graph {
	if n < 1 {
		panic("graph: RandomConnected needs at least one node")
	}
	if minW < 0 || maxW < minW {
		panic(fmt.Sprintf("graph: bad weight range [%v,%v)", minW, maxW))
	}
	w := func() float64 {
		if maxW == minW {
			return minW
		}
		return minW + rng.Float64()*(maxW-minW)
	}
	g := New(n)
	perm := rng.Perm(n)
	// Random tree: attach each node (in random order) to a random earlier one.
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g.AddEdge(perm[i], perm[j], w())
	}
	has := make(map[[2]int]bool)
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		has[[2]int{u, v}] = true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !has[[2]int{u, v}] && rng.Float64() < p {
				g.AddEdge(u, v, w())
			}
		}
	}
	return g
}

// RandomSpanningTree returns a uniformly-shuffled Kruskal spanning tree
// of g: edge IDs are permuted by rng and greedily accepted while they
// join distinct components. Not uniform over all spanning trees, but
// cheap, deterministic for a given rng, and diverse enough to seed
// multi-start local search (broadcast.EstimatePoS). g must be connected.
func RandomSpanningTree(g *Graph, rng *rand.Rand) ([]int, error) {
	if !g.Connected() {
		return nil, ErrDisconnected
	}
	if g.N() <= 1 {
		return []int{}, nil // trivially spanned, no edges to choose
	}
	uf := NewUnionFind(g.N())
	tree := make([]int, 0, g.N()-1)
	for _, id := range rng.Perm(g.M()) {
		e := g.Edge(id)
		if uf.Union(e.U, e.V) {
			tree = append(tree, id)
			if len(tree) == g.N()-1 {
				break
			}
		}
	}
	return tree, nil
}

// RandomRegular returns a random d-regular simple graph on n nodes via the
// pairing model with restarts (requires n·d even and d < n). Used to feed
// the Theorem 5 reduction, which consumes 3-regular graphs.
func RandomRegular(rng *rand.Rand, n, d int) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even (n=%d d=%d)", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: degree %d too large for %d nodes", d, n)
	}
	for attempt := 0; attempt < 1000; attempt++ {
		stubs := make([]int, 0, n*d)
		for v := 0; v < n; v++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, v)
			}
		}
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		ok := true
		seen := make(map[[2]int]bool)
		type pair struct{ u, v int }
		var pairs []pair
		for i := 0; i < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				ok = false
				break
			}
			if u > v {
				u, v = v, u
			}
			if seen[[2]int{u, v}] {
				ok = false
				break
			}
			seen[[2]int{u, v}] = true
			pairs = append(pairs, pair{u, v})
		}
		if !ok {
			continue
		}
		g := New(n)
		for _, p := range pairs {
			g.AddEdge(p.u, p.v, 1)
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: failed to sample a %d-regular graph on %d nodes", d, n)
}
