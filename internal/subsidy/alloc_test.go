package subsidy

import (
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// enforceState builds the n-node random MST state the Theorem-6
// benchmark uses (generic weights, so one level per edge).
func enforceState(t testing.TB, n int) *broadcast.State {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomConnected(rng, n, 0.1, 0.5, 3)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEnforceWithMatchesEnforce: the workspace variant must reproduce the
// workspace-free construction exactly.
func TestEnforceWithMatchesEnforce(t *testing.T) {
	st := enforceState(t, 60)
	b1, c1, err := Enforce(st)
	if err != nil {
		t.Fatal(err)
	}
	var w Workspace
	b2, c2, err := EnforceWith(st, &w)
	if err != nil {
		t.Fatal(err)
	}
	// Run twice: the second pass exercises warmed buffers.
	b3, c3, err := EnforceWith(st, &w)
	if err != nil {
		t.Fatal(err)
	}
	for id := range b1 {
		if b1[id] != b2[id] || b1[id] != b3[id] {
			t.Fatalf("subsidy[%d] differs: %v / %v / %v", id, b1[id], b2[id], b3[id])
		}
	}
	if c1.Total != c2.Total || c1.Total != c3.Total {
		t.Fatalf("certificate totals differ: %v / %v / %v", c1.Total, c2.Total, c3.Total)
	}
	if len(c1.Levels) != len(c2.Levels) {
		t.Fatalf("level counts differ: %d vs %d", len(c1.Levels), len(c2.Levels))
	}
}

// TestEnforceAllocsRegression pins the allocation count of the warmed
// Theorem-6 pass. Before the workspace, the n=200 run allocated ~13k
// times per call (one heavy-player vector + subtree-sum pass + DFS stack
// per weight level); with it, the per-level loop allocates nothing and
// the remaining allocations are the returned subsidy/certificate, the
// MST check and the final verification — independent of the level count.
func TestEnforceAllocsRegression(t *testing.T) {
	st := enforceState(t, 200)
	var w Workspace
	if _, _, err := EnforceWith(st, &w); err != nil {
		t.Fatal(err)
	}
	levels := len(Decompose(st.BG.G))
	if levels < 100 {
		t.Fatalf("instance has only %d levels; the regression needs many", levels)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := EnforceWith(st, &w); err != nil {
			t.Fatal(err)
		}
	})
	// Generous ceiling: must stay far below one allocation per level.
	if allocs > 60 {
		t.Fatalf("EnforceWith allocated %.0f times per run on a %d-level instance, want ≤ 60", allocs, levels)
	}
}

// TestEnforceStillEnforces is a sanity guard after the refactor: the
// assignment closes every Lemma-2 row and spends wgt(T)/e.
func TestEnforceStillEnforces(t *testing.T) {
	st := enforceState(t, 80)
	b, cert, err := Enforce(st)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(b) {
		t.Fatal("Theorem-6 assignment does not enforce")
	}
	if !numeric.AlmostEqualTol(cert.Total, st.Weight()/2.718281828459045, 1e-6) {
		t.Fatalf("total %v, want wgt(T)/e = %v", cert.Total, st.Weight()/2.718281828459045)
	}
}
