package subsidy

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
)

func TestDecompose(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 3)
	g.AddEdge(0, 3, 5)
	g.AddEdge(0, 2, 0) // zero-weight edge: never a level
	levels := Decompose(g)
	if len(levels) != 3 {
		t.Fatalf("levels = %v", levels)
	}
	wantD := []float64{1, 3, 5}
	wantC := []float64{1, 2, 2}
	for j, lv := range levels {
		if lv.Threshold != wantD[j] || lv.C != wantC[j] {
			t.Errorf("level %d = %+v", j, lv)
		}
	}
	// Reconstruction: each edge weight equals the sum of c_j over levels
	// where it is heavy.
	for _, e := range g.Edges() {
		sum := 0.0
		for _, lv := range levels {
			if e.W >= lv.Threshold {
				sum += lv.C
			}
		}
		if !numeric.AlmostEqual(sum, e.W) {
			t.Errorf("edge %d: level sum %v ≠ weight %v", e.ID, sum, e.W)
		}
	}
}

func TestDecomposeUniform(t *testing.T) {
	g := graph.Cycle(5, 2)
	levels := Decompose(g)
	if len(levels) != 1 || levels[0].C != 2 || levels[0].Threshold != 2 {
		t.Errorf("uniform decomposition = %v", levels)
	}
}

func TestVirtualCost(t *testing.T) {
	// m = 1, y = 0: infinite.
	if !math.IsInf(VirtualCost(1, 0, 1), 1) {
		t.Error("vc(1,0,1) should be +Inf")
	}
	// Fully subsidized: ln(m/m) = 0.
	if VirtualCost(5, 2, 2) != 0 {
		t.Error("vc at full subsidy should be 0")
	}
	// Claim 8: vc(a,y) ≥ (c−y)/m ≥ (c−y)/n_a.
	for m := int64(1); m <= 30; m++ {
		for _, frac := range []float64{0, 0.25, 0.5, 0.9} {
			c := 2.0
			y := frac * c
			if vc := VirtualCost(m, y, c); vc < (c-y)/float64(m)-1e-12 {
				t.Errorf("Claim 8 violated at m=%d y=%v: vc=%v", m, y, vc)
			}
		}
	}
	// Telescoping (Claim 10 with zero subsidies): Σ_{i=k+1..t} vc(i,0,c)
	// = c·ln(t/k).
	c := 1.5
	sum := 0.0
	for i := int64(4); i <= 9; i++ {
		sum += VirtualCost(i, 0, c)
	}
	if want := c * math.Log(9.0/3.0); !numeric.AlmostEqual(sum, want) {
		t.Errorf("telescoped vc = %v, want %v", sum, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("vc with m=0 should panic")
		}
	}()
	VirtualCost(0, 0, 1)
}

func TestCutSubsidyRange(t *testing.T) {
	// Whenever the S-condition m ≤ 1/(1−e^{λ−1}) holds, the cut subsidy
	// is in [0, c], and the residual virtual cost closes the path to
	// exactly c: vc(T_p)+vc(a,b) = c.
	c := 3.0
	for _, lambda := range []float64{0, 0.1, 0.4, 0.8, 0.99} {
		maxM := int64(1 / (1 - math.Exp(lambda-1)))
		for m := int64(1); m <= maxM; m++ {
			b := CutSubsidy(m, lambda, c)
			if b < -1e-9 || b > c+1e-9 {
				t.Errorf("λ=%v m=%d: b=%v outside [0,c]", lambda, m, b)
			}
			got := lambda*c + VirtualCost(m, b, c)
			if !numeric.AlmostEqual(got, c) {
				t.Errorf("λ=%v m=%d: closed path vc = %v, want %v", lambda, m, got, c)
			}
		}
	}
}

func mstState(t testing.TB, g *graph.Graph, root int) *broadcast.State {
	t.Helper()
	bg, err := broadcast.NewGame(g, root)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEnforceCycle(t *testing.T) {
	// Theorem 11's own instance: the unit cycle. The construction must
	// enforce the path tree at exactly n/e.
	for _, n := range []int{2, 5, 10, 40} {
		g := graph.Cycle(n, 1)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		tree := make([]int, n)
		for i := range tree {
			tree[i] = i
		}
		st, err := broadcast.NewState(bg, tree)
		if err != nil {
			t.Fatal(err)
		}
		b, cert, err := Enforce(st)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if want := float64(n) / math.E; !numeric.AlmostEqualTol(cert.Total, want, 1e-9) {
			t.Errorf("n=%d: total %v, want %v", n, cert.Total, want)
		}
		if !st.IsEquilibrium(b) {
			t.Errorf("n=%d: not enforced", n)
		}
	}
}

func TestEnforceRandomMSTs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 4)
		// Mix of duplicated weights to exercise multi-edge levels.
		if trial%2 == 0 {
			for id := 0; id < g.M(); id++ {
				g.SetWeight(id, float64(1+rng.Intn(4)))
			}
		}
		st := mstState(t, g, rng.Intn(n))
		b, cert, err := Enforce(st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sne.VerifyBroadcast(st, b); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if want := st.Weight() / math.E; !numeric.AlmostEqualTol(cert.Total, want, 1e-7) {
			t.Fatalf("trial %d: certificate total %v ≠ wgt/e %v", trial, cert.Total, want)
		}
		if !numeric.AlmostEqualTol(b.Cost(), cert.Total, 1e-7) {
			t.Fatalf("trial %d: subsidy cost %v ≠ certificate %v", trial, b.Cost(), cert.Total)
		}
	}
}

func TestEnforceWithMultiplicities(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		g := graph.RandomConnected(rng, n, 0.5, 1, 3)
		root := rng.Intn(n)
		mult := make([]int64, n)
		for v := range mult {
			if v != root {
				mult[v] = 1 + int64(rng.Intn(5))
			}
		}
		bg, err := broadcast.NewGameMult(g, root, mult)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := Enforce(st)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !st.IsEquilibrium(b) {
			t.Fatalf("trial %d: not enforced with multiplicities", trial)
		}
	}
}

func TestEnforceDominatesLP(t *testing.T) {
	// The LP optimum can never exceed the Theorem-6 spend (the LP is
	// optimal; the construction is the universal bound).
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(8)
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 2)
		st := mstState(t, g, 0)
		b, cert, err := Enforce(st)
		if err != nil {
			t.Fatal(err)
		}
		lpRes, err := sne.SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		if lpRes.Cost > cert.Total+1e-7 {
			t.Fatalf("trial %d: LP optimum %v exceeds Theorem-6 cost %v", trial, lpRes.Cost, cert.Total)
		}
		_ = b
	}
}

func TestEnforceRejectsNonMST(t *testing.T) {
	// Triangle with a clearly suboptimal spanning tree.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 10)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, []int{0, 2}) // uses the weight-10 edge
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Enforce(st); err != ErrNotMST {
		t.Errorf("err = %v, want ErrNotMST", err)
	}
}

func TestEnforceZeroWeightEdges(t *testing.T) {
	// Zero-weight tree edges are light in every copy and need no subsidy.
	g := graph.New(4)
	g.AddEdge(0, 1, 0)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 2)
	g.AddEdge(0, 3, 2)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	st, err := broadcast.NewState(bg, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, cert, err := Enforce(st)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Error("zero-weight edge subsidized")
	}
	if want := st.Weight() / math.E; !numeric.AlmostEqualTol(cert.Total, want, 1e-9) {
		t.Errorf("total %v, want %v", cert.Total, want)
	}
}

func BenchmarkEnforce(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(rng, 300, 0.05, 0.5, 5)
	st := mstState(b, g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Enforce(st); err != nil {
			b.Fatal(err)
		}
	}
}
