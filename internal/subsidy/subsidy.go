// Package subsidy implements the paper's Theorem 6: a constructive
// algorithm that enforces any minimum spanning tree of a broadcast game
// as an equilibrium using subsidies of total cost exactly wgt(T)/e.
//
// The construction has two stages, mirroring the proof:
//
//  1. Decompose the weighted graph G into copies G¹,…,G^k whose edge
//     weights lie in {0, c_j}: the thresholds d_1 < … < d_k are the
//     distinct positive weights of G and c_j = d_j − d_{j−1}; an edge is
//     "heavy" in copy j iff its weight is at least d_j. Edge weights sum
//     across copies back to the original.
//  2. In each copy, pack subsidies on the least crowded heavy edges using
//     the virtual cost vc(a,y) = c_j·ln(m_a/(m_a−1+y/c_j)), where m_a is
//     the number of heavy players below a: walking down from the root,
//     the first heavy edge where the accumulated zero-subsidy virtual
//     cost crosses c_j joins the cut S and receives the partial subsidy
//     b_a = c_j·(1 − m_a·(1 − e^{λ−1})), λ = vc(T_{p(v)},0)/c_j; every
//     heavy edge below the cut is fully subsidized.
//
// Claim 8 (vc upper-bounds the real cost share) then caps every player's
// cost at c_j per copy, and the paper's path-merging argument shows the
// per-copy spend is exactly wgt(T^j)/e — which this implementation
// asserts numerically and surfaces in its certificate.
package subsidy

import (
	"math"
	"sort"

	"netdesign/internal/graph"
)

// Level is one copy G^j of the decomposition.
type Level struct {
	Threshold float64 // d_j: edges of weight ≥ d_j are heavy in this copy
	C         float64 // c_j = d_j − d_{j−1}: the uniform heavy weight
}

// Decompose returns the weight levels of g, in increasing threshold order.
// The number of levels is the number of distinct positive edge weights.
func Decompose(g *graph.Graph) []Level {
	var w Workspace
	return w.decompose(g)
}

// decompose is Decompose writing into the workspace's reusable buffers.
// Sort-and-dedupe replaces the map of the original, so a warmed
// workspace allocates nothing. The returned slice is owned by the
// workspace and valid until its next use.
func (w *Workspace) decompose(g *graph.Graph) []Level {
	w.weights = w.weights[:0]
	for _, e := range g.Edges() {
		if e.W > 0 {
			w.weights = append(w.weights, e.W)
		}
	}
	sort.Float64s(w.weights)
	w.levels = w.levels[:0]
	prev := 0.0
	for _, d := range w.weights {
		if d != prev {
			w.levels = append(w.levels, Level{Threshold: d, C: d - prev})
			prev = d
		}
	}
	return w.levels
}

// VirtualCost returns vc for a heavy edge used by m heavy players carrying
// subsidy y in a copy with heavy weight c:  c·ln(m/(m−1+y/c)).
// It is +Inf when the denominator vanishes (m = 1, y = 0) and 0 when the
// edge is fully subsidized (y = c).
func VirtualCost(m int64, y, c float64) float64 {
	if m < 1 {
		panic("subsidy: virtual cost needs m ≥ 1")
	}
	den := float64(m) - 1 + y/c
	if den <= 0 {
		return math.Inf(1)
	}
	return c * math.Log(float64(m)/den)
}

// CutSubsidy returns the partial subsidy placed on a cut edge S:
// b = c·(1 − m·(1 − e^{λ−1})) with λ = vc(T_{p(v)},0)/c ∈ [0,1).
// The S-membership condition guarantees b ∈ [0, c], and by construction
// vc(T_{p(v)},0) + vc(a,b) = c exactly.
func CutSubsidy(m int64, lambda, c float64) float64 {
	return c * (1 - float64(m)*(1-math.Exp(lambda-1)))
}
