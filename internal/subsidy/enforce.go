package subsidy

import (
	"errors"
	"fmt"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// ErrNotMST is returned when the target tree is not a minimum spanning
// tree: Theorem 6 (via Lemma 7) requires minimality — each copy T^j must
// be an MST of G^j, which fails exactly when T is not an MST of G.
var ErrNotMST = errors.New("subsidy: target tree is not a minimum spanning tree")

// LevelReport records the per-copy accounting of the construction.
type LevelReport struct {
	Level      Level
	HeavyEdges int     // heavy tree edges in this copy
	CutEdges   int     // edges in the cut S
	Spend      float64 // Σ b^j_a, provably HeavyEdges·c_j/e
}

// Certificate is the audit trail of a Theorem-6 run.
type Certificate struct {
	Levels []LevelReport
	Total  float64 // Σ over levels = wgt(T)/e
}

// Workspace holds the reusable buffers of the Theorem-6 construction:
// the weight decomposition, the per-level heavy-player vector and its
// subtree sums, and the DFS stack. The per-level loop runs once per
// distinct edge weight — thousands of times on instances with generic
// weights — so reusing these buffers takes the pass from O(levels)
// allocations to a constant handful. A zero Workspace is ready to use;
// it is not safe for concurrent use.
type Workspace struct {
	weights []float64
	levels  []Level
	heavy   []int64
	sums    []int64
	stack   []levelFrame
}

// levelFrame is a DFS record of the Lemma-7 packing.
type levelFrame struct {
	node     int
	cum      float64
	belowCut bool
}

// Enforce computes the Theorem-6 subsidy assignment for the minimum
// spanning tree state st and returns it with its certificate. With unit
// multiplicities the assignment costs exactly wgt(T)/e — the theorem's
// upper bound — which may exceed the LP optimum (the construction trades
// optimality for the universal 1/e guarantee; compare with
// sne.SolveBroadcastLP to measure the gap). With multiplicities above one
// it costs at most wgt(T)/e.
func Enforce(st *broadcast.State) (game.Subsidy, *Certificate, error) {
	return EnforceWith(st, nil)
}

// EnforceWith is Enforce with an explicit workspace, for sweeps that
// run the construction many times (nil allocates a fresh one).
func EnforceWith(st *broadcast.State, w *Workspace) (game.Subsidy, *Certificate, error) {
	if w == nil {
		w = &Workspace{}
	}
	g := st.BG.G
	if !graph.IsMinimumSpanningTree(g, st.Tree.EdgeIDs) {
		return nil, nil, ErrNotMST
	}
	b := game.ZeroSubsidy(g)
	levels := w.decompose(g)
	cert := &Certificate{Levels: make([]LevelReport, 0, len(levels))}
	for _, lv := range levels {
		rep := enforceLevel(st, lv, b, w)
		cert.Levels = append(cert.Levels, rep)
		cert.Total += rep.Spend
	}
	b.Clamp(g)
	if err := verifyAgainstBound(st, cert); err != nil {
		return nil, nil, err
	}
	if v := st.FindViolation(b); v != nil {
		return nil, nil, fmt.Errorf("subsidy: construction failed to enforce: %v", v)
	}
	return b, cert, nil
}

// enforceLevel runs the Lemma-7 packing for one copy and accumulates the
// per-edge subsidies into b.
func enforceLevel(st *broadcast.State, lv Level, b game.Subsidy, w *Workspace) LevelReport {
	g := st.BG.G
	tr := st.Tree
	heavyEdge := func(id int) bool { return g.Weight(id) >= lv.Threshold }

	// m[v] = heavy players (with multiplicity) in the subtree of v. A
	// player is heavy iff her node's parent edge is heavy in this copy.
	if cap(w.heavy) < g.N() {
		w.heavy = make([]int64, g.N())
	}
	heavyPlayers := w.heavy[:g.N()]
	for v := 0; v < g.N(); v++ {
		if v != st.BG.Root && heavyEdge(tr.ParEdge[v]) {
			heavyPlayers[v] = st.BG.Mult[v]
		} else {
			heavyPlayers[v] = 0
		}
	}
	w.sums = tr.SubtreeSumsInto(heavyPlayers, w.sums)
	m := w.sums

	rep := LevelReport{Level: lv}

	// Root-down DFS carrying the accumulated zero-subsidy virtual cost;
	// belowCut flags full subsidies once the path has crossed c_j.
	stack := append(w.stack[:0], levelFrame{node: st.BG.Root})
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, child := range tr.Children[f.node] {
			id := tr.ParEdge[child]
			nf := levelFrame{node: child, cum: f.cum, belowCut: f.belowCut}
			if heavyEdge(id) {
				rep.HeavyEdges++
				switch {
				case f.belowCut:
					b[id] += lv.C
					rep.Spend += lv.C
				default:
					vc := VirtualCost(m[child], 0, lv.C)
					if f.cum+vc >= lv.C {
						// First crossing: this edge joins the cut S.
						amt := CutSubsidy(m[child], f.cum/lv.C, lv.C)
						b[id] += amt
						rep.Spend += amt
						rep.CutEdges++
						nf.belowCut = true
					} else {
						nf.cum = f.cum + vc
					}
				}
			}
			stack = append(stack, nf)
		}
	}
	w.stack = stack[:0]
	return rep
}

// verifyAgainstBound asserts the paper's accounting. With unit
// multiplicities (the paper's setting) the spend is exact: each level
// spends HeavyEdges·c_j/e and the grand total is wgt(T)/e. With larger
// multiplicities the virtual costs ln(m/(m−1)) shrink, the cut moves
// deeper and the construction spends strictly less, so only the ≤ bound
// is asserted.
func verifyAgainstBound(st *broadcast.State, cert *Certificate) error {
	unit := true
	for v, m := range st.BG.Mult {
		if v != st.BG.Root && m != 1 {
			unit = false
			break
		}
	}
	for _, rep := range cert.Levels {
		want := float64(rep.HeavyEdges) * rep.Level.C / math.E
		if unit && !numeric.AlmostEqualTol(rep.Spend, want, 1e-7) {
			return fmt.Errorf("subsidy: level c=%g spent %v, expected exactly %v (= heavy·c/e)",
				rep.Level.C, rep.Spend, want)
		}
		if rep.Spend > want+1e-7*(1+want) {
			return fmt.Errorf("subsidy: level c=%g spent %v above the %v bound",
				rep.Level.C, rep.Spend, want)
		}
	}
	want := st.Weight() / math.E
	if unit && !numeric.AlmostEqualTol(cert.Total, want, 1e-7) {
		return fmt.Errorf("subsidy: total %v, expected wgt(T)/e = %v", cert.Total, want)
	}
	if cert.Total > want+1e-7*(1+want) {
		return fmt.Errorf("subsidy: total %v above the wgt(T)/e bound %v", cert.Total, want)
	}
	return nil
}
