package broadcast

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

func mustGame(t *testing.T, g *graph.Graph, root int) *Game {
	t.Helper()
	bg, err := NewGame(g, root)
	if err != nil {
		t.Fatal(err)
	}
	return bg
}

func mustState(t *testing.T, bg *Game, tree []int) *State {
	t.Helper()
	st, err := NewState(bg, tree)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestNewGameValidation(t *testing.T) {
	g := graph.Cycle(3, 1)
	if _, err := NewGame(g, 99); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := NewGameMult(g, 0, []int64{0, 1}); err == nil {
		t.Error("short multiplicity accepted")
	}
	if _, err := NewGameMult(g, 0, []int64{1, 1, 1, 1}); err == nil {
		t.Error("nonzero root multiplicity accepted")
	}
	if _, err := NewGameMult(g, 0, []int64{0, 1, 0, 1}); err == nil {
		t.Error("zero player multiplicity accepted")
	}
	disc := graph.New(3)
	disc.AddEdge(0, 1, 1)
	if _, err := NewGame(disc, 0); err == nil {
		t.Error("disconnected graph accepted")
	}
	bg := mustGame(t, g, 0)
	if bg.NumPlayers() != 3 {
		t.Errorf("NumPlayers = %d", bg.NumPlayers())
	}
}

// pathCycleGame builds the Theorem-11 topology: a unit cycle on n+1 nodes
// rooted at 0, with the target tree being the full path 0-1-…-n (missing
// the closing edge (n,0)).
func pathCycleGame(t *testing.T, n int) (*Game, *State, int) {
	t.Helper()
	g := graph.Cycle(n, 1) // edges: (0,1),(1,2),...,(n-1,n),(n,0)
	bg := mustGame(t, g, 0)
	var tree []int
	for id := 0; id < n; id++ {
		tree = append(tree, id)
	}
	closing := n // edge (n,0)
	return bg, mustState(t, bg, tree), closing
}

func TestPathCosts(t *testing.T) {
	// On the path tree, edge (i-1,i) is used by players i..n, so player n
	// pays H_n and player 1 pays 1/n.
	n := 5
	_, st, _ := pathCycleGame(t, n)
	for i := 1; i <= n; i++ {
		want := numeric.HarmonicDiff(n-i, n)
		if got := st.PlayerCost(i, nil); !numeric.AlmostEqual(got, want) {
			t.Errorf("player %d cost = %v, want %v", i, got, want)
		}
	}
	if w := st.Weight(); w != float64(n) {
		t.Errorf("tree weight = %v", w)
	}
	if tc := st.TotalPlayerCost(nil); tc != float64(n) {
		t.Errorf("total player cost = %v", tc)
	}
	if u := st.Usage(0); u != int64(n) {
		t.Errorf("usage of first edge = %d", u)
	}
	// Potential = Σ H_{n_a} = Σ_{k=1..n} H_k.
	wantPot := 0.0
	for k := 1; k <= n; k++ {
		wantPot += numeric.Harmonic(k)
	}
	if got := st.Potential(nil); !numeric.AlmostEqual(got, wantPot) {
		t.Errorf("potential = %v, want %v", got, wantPot)
	}
}

func TestPathEquilibriumViolation(t *testing.T) {
	// Player n pays H_n > 1 for n ≥ 2 and can deviate to the closing unit
	// edge at cost 1.
	for n := 2; n <= 6; n++ {
		_, st, closing := pathCycleGame(t, n)
		v := st.FindViolation(nil)
		if v == nil {
			t.Fatalf("n=%d: path tree should not be an equilibrium", n)
		}
		if v.Node != n || v.ViaEdge != closing {
			t.Errorf("n=%d: violation %v, want player %d via edge %d", n, v, n, closing)
		}
		if !numeric.AlmostEqual(v.Current, numeric.Harmonic(n)) || !numeric.AlmostEqual(v.Better, 1) {
			t.Errorf("n=%d: violation costs %v → %v", n, v.Current, v.Better)
		}
	}
	// n = 1: two parallel unit edges; player pays 1 either way: equilibrium.
	_, st, _ := pathCycleGame(t, 1)
	if !st.IsEquilibrium(nil) {
		t.Error("n=1 cycle should be an equilibrium")
	}
}

func TestFullySubsidizedIsEquilibrium(t *testing.T) {
	// The paper's triviality remark: subsidize everything and any design
	// becomes an equilibrium.
	_, st, _ := pathCycleGame(t, 6)
	b := game.ZeroSubsidy(st.BG.G)
	for id := range b {
		b[id] = st.BG.G.Weight(id)
	}
	if !st.IsEquilibrium(b) {
		t.Error("fully subsidized tree must be an equilibrium")
	}
	if len(st.Violations(b)) != 0 {
		t.Error("violations reported under full subsidies")
	}
}

func TestPackedSubsidiesStabilizePath(t *testing.T) {
	// Subsidize the k least-crowded edges (those nearest player n) fully;
	// player n then pays H_n − H_k on the rest. The tree is an equilibrium
	// once H_n − H_k ≤ 1 (and intermediate players only get cheaper).
	n := 10
	bg, st, _ := pathCycleGame(t, n)
	k := 0
	for numeric.Harmonic(n)-numeric.Harmonic(k) > 1 {
		k++
	}
	b := game.ZeroSubsidy(bg.G)
	// Edge (i-1,i) has ID i-1 and usage n-i+1; least crowded = highest i.
	for i := n; i > n-k; i-- {
		b[i-1] = 1
	}
	if !st.IsEquilibrium(b) {
		t.Errorf("packed subsidies on %d edges should enforce the path", k)
	}
	// One fewer edge must fail.
	b[n-k] = 0
	b2 := b.Clone()
	b2[n-1-(k-1)] = 0
	if st.IsEquilibrium(b2) && k > 0 {
		t.Log("note: fewer packed edges may still stabilize due to ties")
	}
}

func TestStarTreeOnCycleIsEquilibrium(t *testing.T) {
	// 3-cycle: the star {(0,1),(0,2)} rooted at 0 is an equilibrium.
	g := graph.Cycle(2, 1) // nodes 0,1,2; edges (0,1),(1,2),(2,0)
	bg := mustGame(t, g, 0)
	star := mustState(t, bg, []int{0, 2})
	if !star.IsEquilibrium(nil) {
		t.Error("star should be an equilibrium")
	}
	path := mustState(t, bg, []int{0, 1})
	if path.IsEquilibrium(nil) {
		t.Error("full path should not be an equilibrium")
	}
}

func TestAnalyzeTreesCycle(t *testing.T) {
	g := graph.Cycle(2, 1)
	bg := mustGame(t, g, 0)
	a, err := AnalyzeTrees(bg, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Trees != 3 || a.Equilibria != 1 {
		t.Errorf("trees=%d equilibria=%d", a.Trees, a.Equilibria)
	}
	if a.OptWeight != 2 || a.BestEq != 2 || a.PoS() != 1 {
		t.Errorf("analysis %+v", a)
	}
	if !g.IsSpanningTree(a.BestTree) {
		t.Error("BestTree invalid")
	}
}

func TestAnalyzeTreesLimit(t *testing.T) {
	g := graph.Complete(6, func(i, j int) float64 { return 1 })
	bg := mustGame(t, g, 0)
	if _, err := AnalyzeTrees(bg, nil, 5); err != graph.ErrTooManyTrees {
		t.Errorf("err = %v", err)
	}
}

// TestLemma2AgainstGeneralOracle is the core validation of the paper's
// Lemma 2: on random broadcast games, random spanning trees and random
// subsidies, the fast non-tree-edge check must agree exactly with the
// general engine's full best-response equilibrium check.
func TestLemma2AgainstGeneralOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	agree, eqSeen, neqSeen := 0, 0, 0
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(5)
		g := graph.RandomConnected(rng, n, 0.45, 0.2, 3)
		bg := mustGame(t, g, rng.Intn(n))
		var trees [][]int
		if _, err := graph.EnumerateSpanningTrees(g, 500, func(tr []int) bool {
			trees = append(trees, tr)
			return true
		}); err != nil {
			continue
		}
		tree := trees[rng.Intn(len(trees))]
		st := mustState(t, bg, tree)
		var b game.Subsidy
		switch rng.Intn(3) {
		case 0:
			// nil
		case 1:
			b = game.ZeroSubsidy(g)
			for id := range b {
				b[id] = rng.Float64() * g.Weight(id)
			}
		case 2:
			b = game.ZeroSubsidy(g)
			for _, id := range tree {
				if rng.Intn(2) == 0 {
					b[id] = g.Weight(id)
				}
			}
		}
		fast := st.IsEquilibrium(b)
		_, gst, err := st.ToGeneral(100)
		if err != nil {
			t.Fatal(err)
		}
		slow := gst.IsEquilibrium(b)
		if fast != slow {
			t.Fatalf("trial %d: Lemma-2 check %v but oracle %v (n=%d tree=%v)", trial, fast, slow, n, tree)
		}
		agree++
		if fast {
			eqSeen++
		} else {
			neqSeen++
		}
	}
	if eqSeen == 0 || neqSeen == 0 {
		t.Errorf("test coverage weak: %d agreements, %d equilibria, %d non-equilibria", agree, eqSeen, neqSeen)
	}
}

// TestMultiplicityMatchesExpansion: a game with multiplicities must agree
// with its fully expanded general-engine form, for both costs and
// equilibrium verdicts.
func TestMultiplicityMatchesExpansion(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.5, 0.3, 2)
		root := rng.Intn(n)
		mult := make([]int64, n)
		for v := range mult {
			if v != root {
				mult[v] = 1 + int64(rng.Intn(4))
			}
		}
		bg, err := NewGameMult(g, root, mult)
		if err != nil {
			t.Fatal(err)
		}
		treeIDs, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		st := mustState(t, bg, treeIDs)
		gm, gst, err := st.ToGeneral(200)
		if err != nil {
			t.Fatal(err)
		}
		// Costs agree per node.
		pi := 0
		for v := 0; v < n; v++ {
			if v == root {
				continue
			}
			for k := int64(0); k < mult[v]; k++ {
				if !numeric.AlmostEqual(st.PlayerCost(v, nil), gst.PlayerCost(pi, nil)) {
					t.Fatalf("trial %d: node %d cost mismatch", trial, v)
				}
				pi++
			}
		}
		_ = gm
		if st.IsEquilibrium(nil) != gst.IsEquilibrium(nil) {
			t.Fatalf("trial %d: equilibrium verdicts differ with multiplicities", trial)
		}
	}
}

func TestToGeneralLimit(t *testing.T) {
	g := graph.Cycle(3, 1)
	bg := mustGame(t, g, 0)
	st := mustState(t, bg, []int{0, 1, 2})
	if _, _, err := st.ToGeneral(2); err == nil {
		t.Error("expansion limit not enforced")
	}
}

func TestMSTEquilibrium(t *testing.T) {
	// 3-cycle with distinct weights: unique MST {(0,1) w1, (0,2) w1.2};
	// it is an equilibrium (deviating via the heavy edge is worse).
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1.2)
	g.AddEdge(1, 2, 2)
	bg := mustGame(t, g, 0)
	ok, tree, err := MSTEquilibrium(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || !graph.IsMinimumSpanningTree(g, tree) {
		t.Errorf("MST should be an equilibrium: ok=%v tree=%v", ok, tree)
	}
	// Path-cycle n=4: every MST (all trees weight 4) — some tree is an
	// equilibrium (balanced split), so detection must succeed.
	g2 := graph.Cycle(4, 1)
	bg2 := mustGame(t, g2, 0)
	ok2, _, err := MSTEquilibrium(bg2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Error("balanced split of the 5-cycle should be an equilibrium MST")
	}
}

func TestCostsToRootAndDeviationSums(t *testing.T) {
	n := 4
	_, st, _ := pathCycleGame(t, n)
	up := st.CostsToRoot(nil)
	dev := st.deviationSums(nil)
	for i := 1; i <= n; i++ {
		if !numeric.AlmostEqual(up[i], st.PlayerCost(i, nil)) {
			t.Errorf("up[%d] = %v vs PlayerCost %v", i, up[i], st.PlayerCost(i, nil))
		}
		// dev adds 1/(n_a+1) along the path: for node i the path edges
		// have usages n, n-1, ..., n-i+1 → dev = Σ 1/(k+1).
		want := 0.0
		for k := n - i + 1; k <= n; k++ {
			want += 1 / float64(k+1)
		}
		if !numeric.AlmostEqual(dev[i], want) {
			t.Errorf("dev[%d] = %v, want %v", i, dev[i], want)
		}
	}
	if up[0] != 0 || dev[0] != 0 {
		t.Error("root sums must be zero")
	}
}

func TestViolationsCollectsAll(t *testing.T) {
	// Long path: several tail players prefer the closing edge.
	_, st, _ := pathCycleGame(t, 8)
	vs := st.Violations(nil)
	if len(vs) == 0 {
		t.Fatal("expected violations")
	}
	// All violations must be genuine.
	for _, v := range vs {
		if v.Gain() <= 0 {
			t.Errorf("non-positive gain violation %v", v)
		}
	}
}

func BenchmarkLemma2Check(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(rng, 200, 0.05, 0.5, 2)
	bg, err := NewGame(g, 0)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := graph.MST(g)
	if err != nil {
		b.Fatal(err)
	}
	st, err := NewState(bg, tree)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.IsEquilibrium(nil)
	}
}

var _ = math.Inf

func TestProveHnBound(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(6)
		g := graph.RandomConnected(rng, n, 0.5, 0.3, 2)
		bg := mustGame(t, g, rng.Intn(n))
		cert, err := ProveHnBound(bg, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := cert.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The reached equilibrium bounds the price of stability: the
		// best equilibrium can only be lighter.
		if cert.EqWeight/cert.OptWeight > numeric.Harmonic(int(bg.NumPlayers()))+1e-9 {
			t.Fatalf("trial %d: PoS witness %v above H_n", trial, cert.EqWeight/cert.OptWeight)
		}
	}
}

func TestHnCertificateVerifyCatchesLies(t *testing.T) {
	g := graph.Cycle(4, 1)
	bg := mustGame(t, g, 0)
	cert, err := ProveHnBound(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := *cert
	bad.HnBound = cert.EqWeight / 2
	if err := bad.Verify(); err == nil {
		t.Error("understated bound passed verification")
	}
	bad2 := *cert
	bad2.EqPotential = cert.OptPotential - 10
	bad2.EqWeight = bad2.EqPotential + 5
	if err := bad2.Verify(); err == nil {
		t.Error("cost>potential lie passed verification")
	}
}
