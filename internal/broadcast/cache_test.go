package broadcast

import (
	"math/rand"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/graph"
)

func randomCachedState(t *testing.T, seed int64, n int) *State {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.RandomConnected(rng, n, 0.15, 0.5, 3)
	bg, err := NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	mst, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewState(bg, mst)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestIsEquilibriumZeroAllocs: repeated equilibrium checks with an
// unchanged subsidy must allocate nothing — the acceptance criterion for
// the prefix-sum cache. Checked both on a non-equilibrium state (early
// exit) and under full subsidies (complete scan of every non-tree edge).
func TestIsEquilibriumZeroAllocs(t *testing.T) {
	st := randomCachedState(t, 9, 120)

	st.IsEquilibrium(nil) // warm the cache
	if allocs := testing.AllocsPerRun(50, func() { st.IsEquilibrium(nil) }); allocs != 0 {
		t.Errorf("IsEquilibrium(nil) allocated %v times per run, want 0", allocs)
	}

	// Full subsidies make every state an equilibrium, so the scan visits
	// every non-tree edge — the worst case must be allocation-free too.
	full := game.ZeroSubsidy(st.BG.G)
	for id := range full {
		full[id] = st.BG.G.Weight(id)
	}
	if !st.IsEquilibrium(full) {
		t.Fatal("fully subsidized state must be an equilibrium")
	}
	if allocs := testing.AllocsPerRun(50, func() { st.IsEquilibrium(full) }); allocs != 0 {
		t.Errorf("IsEquilibrium(full) allocated %v times per run, want 0", allocs)
	}
}

// TestCacheInvalidationOnSubsidyChange: mutating the subsidy vector
// between checks must invalidate the memoized prefix sums — results must
// match a fresh, cache-cold State every time.
func TestCacheInvalidationOnSubsidyChange(t *testing.T) {
	st := randomCachedState(t, 21, 60)
	rng := rand.New(rand.NewSource(4))
	b := game.ZeroSubsidy(st.BG.G)
	for round := 0; round < 40; round++ {
		// Mutate a random entry in place — the hardest case for the
		// cache, since the slice header the State saw last time is
		// unchanged.
		id := rng.Intn(len(b))
		b[id] = rng.Float64() * st.BG.G.Weight(id)
		fresh, err := NewState(st.BG, st.Tree.EdgeIDs)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := st.IsEquilibrium(b), fresh.IsEquilibrium(b); got != want {
			t.Fatalf("round %d: cached verdict %v ≠ fresh verdict %v", round, got, want)
		}
		if got, want := len(st.Violations(b)), len(fresh.Violations(b)); got != want {
			t.Fatalf("round %d: cached found %d violations, fresh %d", round, got, want)
		}
	}
}

// TestCacheNilVsZeroSubsidy: nil and an all-zero vector are the same
// subsidy and must share cache validity in both directions.
func TestCacheNilVsZeroSubsidy(t *testing.T) {
	st := randomCachedState(t, 33, 40)
	zero := game.ZeroSubsidy(st.BG.G)
	a := st.IsEquilibrium(nil)
	bv := st.IsEquilibrium(zero)
	c := st.IsEquilibrium(nil)
	if a != bv || bv != c {
		t.Fatalf("nil/zero subsidy verdicts diverge: %v %v %v", a, bv, c)
	}
	fresh, err := NewState(st.BG, st.Tree.EdgeIDs)
	if err != nil {
		t.Fatal(err)
	}
	if a != fresh.IsEquilibrium(nil) {
		t.Fatal("cached verdict diverges from fresh state")
	}
}

// TestCostsToRootReturnsCopy: callers own the returned slice; mutating
// it must not corrupt the cache.
func TestCostsToRootReturnsCopy(t *testing.T) {
	st := randomCachedState(t, 5, 30)
	up1 := st.CostsToRoot(nil)
	for i := range up1 {
		up1[i] = -1
	}
	up2 := st.CostsToRoot(nil)
	for i, v := range up2 {
		if v == -1 && i != st.BG.Root {
			t.Fatal("CostsToRoot returned the cache's backing array")
		}
	}
}
