package broadcast

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// randomSwapState builds a random broadcast state (random multiplicities
// exercise the weighted NA arithmetic) plus a random valid swap pair.
func randomSwapState(t *testing.T, rng *rand.Rand, n int) (*State, int, int, bool) {
	t.Helper()
	g := graph.RandomConnected(rng, n, 0.25+rng.Float64()*0.5, 0.5, 3)
	root := rng.Intn(n)
	mult := make([]int64, n)
	for v := range mult {
		if v != root {
			mult[v] = 1 + int64(rng.Intn(3))
		}
	}
	bg, err := NewGameMult(g, root, mult)
	if err != nil {
		t.Fatal(err)
	}
	// Random spanning tree: Kruskal over a shuffled edge order.
	dsu := graph.NewUnionFind(n)
	var tree []int
	for _, id := range rng.Perm(g.M()) {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			tree = append(tree, id)
		}
	}
	st, err := NewState(bg, tree)
	if err != nil {
		t.Fatal(err)
	}
	var nonTree []int
	for id := 0; id < g.M(); id++ {
		if !st.Tree.Contains(id) {
			nonTree = append(nonTree, id)
		}
	}
	if len(nonTree) == 0 {
		return st, 0, 0, false
	}
	addID := nonTree[rng.Intn(len(nonTree))]
	e := g.Edge(addID)
	cycle := st.Tree.TreePath(e.U, e.V)
	removeID := cycle[rng.Intn(len(cycle))]
	return st, removeID, addID, true
}

// randomSubsidy places a partial subsidy on a random subset of edges.
func randomSubsidy(rng *rand.Rand, g *graph.Graph) game.Subsidy {
	b := game.ZeroSubsidy(g)
	for id := 0; id < g.M(); id++ {
		if rng.Intn(2) == 0 {
			b[id] = g.Weight(id) * rng.Float64()
		}
	}
	return b
}

// assertStateMatches compares every observable of st against a fresh
// NewState over the same edge set, under subsidy b.
func assertStateMatches(t *testing.T, st *State, b game.Subsidy, ctx string) {
	t.Helper()
	fresh, err := NewState(st.BG, st.Tree.EdgeIDs)
	if err != nil {
		t.Fatalf("%s: fresh rebuild failed: %v", ctx, err)
	}
	g := st.BG.G
	for id := 0; id < g.M(); id++ {
		if st.NA[id] != fresh.NA[id] {
			t.Fatalf("%s: NA[%d] = %d, want %d", ctx, id, st.NA[id], fresh.NA[id])
		}
	}
	up, dev := st.prefixSums(b)
	upF, devF := fresh.prefixSums(b)
	for v := 0; v < g.N(); v++ {
		if !numeric.AlmostEqualTol(up[v], upF[v], 1e-12) {
			t.Fatalf("%s: up[%d] = %v, want %v", ctx, v, up[v], upF[v])
		}
		if !numeric.AlmostEqualTol(dev[v], devF[v], 1e-12) {
			t.Fatalf("%s: dev[%d] = %v, want %v", ctx, v, dev[v], devF[v])
		}
	}
	if got, want := st.IsEquilibrium(b), fresh.IsEquilibrium(b); got != want {
		t.Fatalf("%s: IsEquilibrium = %v, want %v", ctx, got, want)
	}
	if !numeric.AlmostEqual(st.Weight(), fresh.Weight()) {
		t.Fatalf("%s: Weight = %v, want %v", ctx, st.Weight(), fresh.Weight())
	}
	if !numeric.AlmostEqualTol(st.Potential(b), fresh.Potential(b), 1e-9) {
		t.Fatalf("%s: Potential = %v, want %v", ctx, st.Potential(b), fresh.Potential(b))
	}
}

// TestStateSwapDifferential: on 120 random instances, the incrementally
// swapped State must match a from-scratch rebuild — NA, both prefix sums
// under a warm partial subsidy, equilibrium verdicts, weight, potential —
// at the pending, reverted and committed stages.
func TestStateSwapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 120; trial++ {
		st, removeID, addID, ok := randomSwapState(t, rng, 4+rng.Intn(12))
		if !ok {
			continue
		}
		var b game.Subsidy
		if trial%3 != 0 {
			b = randomSubsidy(rng, st.BG.G)
		}
		// Warm the cache so ApplySwap takes the patch path.
		st.IsEquilibrium(b)
		baseNA := append([]int64(nil), st.NA...)
		delta, derr := st.SwapPotentialDelta(removeID, addID, b)
		potBefore := st.Potential(b)

		if err := st.ApplySwap(removeID, addID); err != nil {
			t.Fatalf("trial %d: ApplySwap(−%d,+%d): %v", trial, removeID, addID, err)
		}
		assertStateMatches(t, st, b, "pending")
		if derr != nil {
			t.Fatalf("trial %d: SwapPotentialDelta: %v", trial, derr)
		}
		if got := st.Potential(b) - potBefore; !numeric.AlmostEqualTol(got, delta, 1e-9) {
			t.Fatalf("trial %d: potential delta %v, predicted %v", trial, got, delta)
		}

		st.Revert()
		for id, na := range st.NA {
			if na != baseNA[id] {
				t.Fatalf("trial %d: revert left NA[%d] = %d, want %d", trial, id, na, baseNA[id])
			}
		}
		assertStateMatches(t, st, b, "reverted")

		if err := st.ApplySwap(removeID, addID); err != nil {
			t.Fatalf("trial %d: re-ApplySwap: %v", trial, err)
		}
		st.Commit()
		assertStateMatches(t, st, b, "committed")
	}
}

// TestStateSwapColdCache: applying a swap before the prefix-sum cache was
// ever filled must still produce a consistent state (the full pass runs
// under the pending swap).
func TestStateSwapColdCache(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		st, removeID, addID, ok := randomSwapState(t, rng, 4+rng.Intn(10))
		if !ok {
			continue
		}
		if err := st.ApplySwap(removeID, addID); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertStateMatches(t, st, nil, "cold pending")
	}
}

// TestMorphToDifferential: morphing between two random spanning trees
// must land exactly on a fresh state of the target.
func TestMorphToDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		g := graph.RandomConnected(rng, n, 0.4+rng.Float64()*0.4, 0.5, 2)
		bg, err := NewGame(g, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		randomTree := func() []int {
			dsu := graph.NewUnionFind(n)
			var tree []int
			for _, id := range rng.Perm(g.M()) {
				e := g.Edge(id)
				if dsu.Union(e.U, e.V) {
					tree = append(tree, id)
				}
			}
			return tree
		}
		st, err := NewState(bg, randomTree())
		if err != nil {
			t.Fatal(err)
		}
		st.IsEquilibrium(nil) // warm cache so morph patches it throughout
		target := randomTree()
		if err := st.MorphTo(target); err != nil {
			t.Fatalf("trial %d: MorphTo: %v", trial, err)
		}
		inTarget := make(map[int]bool, len(target))
		for _, id := range target {
			inTarget[id] = true
		}
		for _, id := range st.Tree.EdgeIDs {
			if !inTarget[id] {
				t.Fatalf("trial %d: morph landed on edge %d not in target", trial, id)
			}
		}
		assertStateMatches(t, st, nil, "morphed")
		// Morphing to the current tree is a no-op.
		if err := st.MorphTo(st.Tree.EdgeIDs); err != nil {
			t.Fatalf("trial %d: identity morph: %v", trial, err)
		}
	}
}

// TestAnalyzeTreesSwapWalkVsNaive: the swap-walking enumeration analysis
// must agree with the rebuild-per-tree oracle on counts, extremes and the
// best equilibrium tree, with and without subsidies.
func TestAnalyzeTreesSwapWalkVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.5+rng.Float64()*0.3, 0.5, 2)
		bg, err := NewGame(g, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		var b game.Subsidy
		if trial%2 == 0 {
			b = randomSubsidy(rng, g)
		}
		fast, err := AnalyzeTrees(bg, b, 5000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		slow, err := AnalyzeTreesNaive(bg, b, 5000)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if fast.Trees != slow.Trees || fast.Equilibria != slow.Equilibria {
			t.Fatalf("trial %d: trees/equilibria %d/%d, want %d/%d",
				trial, fast.Trees, fast.Equilibria, slow.Trees, slow.Equilibria)
		}
		if !numeric.AlmostEqual(fast.OptWeight, slow.OptWeight) {
			t.Fatalf("trial %d: OptWeight %v vs %v", trial, fast.OptWeight, slow.OptWeight)
		}
		if fast.Equilibria > 0 {
			if !numeric.AlmostEqual(fast.BestEq, slow.BestEq) || !numeric.AlmostEqual(fast.WorstEq, slow.WorstEq) {
				t.Fatalf("trial %d: eq extremes (%v,%v) vs (%v,%v)",
					trial, fast.BestEq, fast.WorstEq, slow.BestEq, slow.WorstEq)
			}
		}
	}
}

// TestSwapDynamicsDescends: swap dynamics terminate, strictly descend in
// potential, and either reach a Lemma-2 equilibrium or stop at a
// swap-graph local minimum (in which case the guard must have found no
// descending violation).
func TestSwapDynamicsDescends(t *testing.T) {
	rng := rand.New(rand.NewSource(424))
	converged := 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(10)
		g := graph.RandomConnected(rng, n, 0.3+rng.Float64()*0.4, 0.5, 2)
		bg, err := NewGame(g, rng.Intn(n))
		if err != nil {
			t.Fatal(err)
		}
		mst, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		st, err := NewState(bg, mst)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SwapDynamics(st, nil, 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 1; i < len(res.Potentials); i++ {
			if res.Potentials[i] >= res.Potentials[i-1]+numeric.Eps {
				t.Fatalf("trial %d: potential rose at step %d: %v → %v",
					trial, i, res.Potentials[i-1], res.Potentials[i])
			}
		}
		if res.Converged {
			converged++
			if !st.IsEquilibrium(nil) {
				t.Fatalf("trial %d: converged but not an equilibrium", trial)
			}
			assertStateMatches(t, st, nil, "post-dynamics")
		}
	}
	if converged == 0 {
		t.Fatal("swap dynamics never converged on 60 random instances")
	}
}

// TestSwapUpdateAllocFree: the steady-state candidate-evaluation loop —
// apply, check, revert — performs zero allocations with a warm cache.
func TestSwapUpdateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	st, removeID, addID, ok := randomSwapState(t, rng, 150)
	if !ok {
		t.Skip("no non-tree edge")
	}
	st.IsEquilibrium(nil)
	if err := st.ApplySwap(removeID, addID); err != nil {
		t.Fatal(err)
	}
	st.Revert()
	allocs := testing.AllocsPerRun(100, func() {
		if err := st.ApplySwap(removeID, addID); err != nil {
			t.Fatal(err)
		}
		st.IsEquilibrium(nil)
		st.Revert()
	})
	if allocs != 0 {
		t.Fatalf("swap evaluation allocated %.1f times per run, want 0", allocs)
	}
}

// TestSwapPotentialDeltaRejects mirrors the tree-level validation.
func TestSwapPotentialDeltaRejects(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	st, removeID, addID, ok := randomSwapState(t, rng, 10)
	if !ok {
		t.Skip("no non-tree edge")
	}
	if _, err := st.SwapPotentialDelta(addID, addID, nil); err == nil {
		t.Fatal("equal edges must fail")
	}
	if _, err := st.SwapPotentialDelta(addID, removeID, nil); err == nil {
		t.Fatal("reversed roles must fail")
	}
	if _, err := st.SwapPotentialDelta(removeID, addID, nil); err != nil {
		t.Fatalf("valid swap rejected: %v", err)
	}
	if math.IsNaN(func() float64 { d, _ := st.SwapPotentialDelta(removeID, addID, nil); return d }()) {
		t.Fatal("delta is NaN")
	}
}
