package broadcast

import (
	"math"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/parallel"
)

// TreeAnalysis summarizes the spanning-tree equilibrium landscape of a
// broadcast game under a fixed subsidy assignment.
type TreeAnalysis struct {
	Trees      int     // number of spanning trees examined
	Equilibria int     // how many are equilibria
	OptWeight  float64 // minimum spanning tree weight
	BestEq     float64 // min weight among equilibria (+Inf if none)
	WorstEq    float64 // max weight among equilibria (−Inf if none)
	BestTree   []int   // a best equilibrium tree (nil if none)
}

// PoS returns the price of stability over spanning-tree states. The paper
// (Section 2) notes every equilibrium containing a cycle has an equal-
// weight spanning-tree equilibrium, so restricting to trees is lossless
// for the best equilibrium.
func (a *TreeAnalysis) PoS() float64 { return a.BestEq / a.OptWeight }

// AnalyzeTrees enumerates all spanning trees (erroring beyond limit; ≤ 0
// means unlimited) and checks each for equilibrium under subsidies b.
// Enumeration first collects the trees, then the Lemma-2 checks — the
// expensive part — fan out over a worker pool. Each worker owns a single
// State and walks its contiguous chunk of the enumeration through the
// swap graph: consecutive trees of the contraction/deletion recursion
// share most edges, so MorphTo applies a handful of incremental swaps
// per tree instead of a full NewRootedTree/NewState rebuild.
func AnalyzeTrees(bg *Game, b game.Subsidy, limit int) (*TreeAnalysis, error) {
	var trees [][]int
	if _, err := graph.EnumerateSpanningTrees(bg.G, limit, func(tr []int) bool {
		trees = append(trees, tr)
		return true
	}); err != nil {
		return nil, err
	}
	verdicts := make([]treeVerdict, len(trees))
	workers := parallel.Workers(0)
	chunk := (len(trees) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	numChunks := (len(trees) + chunk - 1) / chunk
	parallel.ForEach(numChunks, 0, func(ci int) {
		lo := ci * chunk
		hi := lo + chunk
		if hi > len(trees) {
			hi = len(trees)
		}
		var st *State
		for i := lo; i < hi; i++ {
			var err error
			if st == nil {
				st, err = NewState(bg, trees[i])
			} else if err = st.MorphTo(trees[i]); err != nil {
				// A failed morph leaves the walker mid-swap; restart it.
				st, err = NewState(bg, trees[i])
			}
			if err != nil {
				verdicts[i] = treeVerdict{err: err}
				st = nil
				continue
			}
			verdicts[i] = treeVerdict{weight: st.Weight(), eq: st.IsEquilibrium(b)}
		}
	})
	return summarizeTrees(trees, verdicts)
}

// AnalyzeTreesNaive is the rebuild-per-tree implementation, retained as
// the differential-test oracle for the swap-walking fast path.
func AnalyzeTreesNaive(bg *Game, b game.Subsidy, limit int) (*TreeAnalysis, error) {
	var trees [][]int
	if _, err := graph.EnumerateSpanningTrees(bg.G, limit, func(tr []int) bool {
		trees = append(trees, tr)
		return true
	}); err != nil {
		return nil, err
	}
	verdicts := parallel.Map(trees, 0, func(tr []int) treeVerdict {
		st, err := NewState(bg, tr)
		if err != nil {
			return treeVerdict{err: err}
		}
		return treeVerdict{weight: st.Weight(), eq: st.IsEquilibrium(b)}
	})
	return summarizeTrees(trees, verdicts)
}

type treeVerdict struct {
	weight float64
	eq     bool
	err    error
}

func summarizeTrees(trees [][]int, verdicts []treeVerdict) (*TreeAnalysis, error) {
	a := &TreeAnalysis{
		Trees:   len(trees),
		BestEq:  math.Inf(1),
		WorstEq: math.Inf(-1),
	}
	a.OptWeight = math.Inf(1)
	for i, v := range verdicts {
		if v.err != nil {
			return nil, v.err
		}
		if v.weight < a.OptWeight {
			a.OptWeight = v.weight
		}
		if v.eq {
			a.Equilibria++
			if v.weight < a.BestEq {
				a.BestEq = v.weight
				a.BestTree = trees[i]
			}
			if v.weight > a.WorstEq {
				a.WorstEq = v.weight
			}
		}
	}
	return a, nil
}

// MSTEquilibrium reports whether some minimum spanning tree of the game is
// an equilibrium without subsidies — exactly the question Theorem 3 proves
// NP-hard in general. This brute-force version enumerates spanning trees
// of minimum weight; it is the oracle for validating the bin-packing
// reduction on small instances.
func MSTEquilibrium(bg *Game, limit int) (bool, []int, error) {
	mst, err := bg.MST()
	if err != nil {
		return false, nil, err
	}
	optW := bg.G.WeightOf(mst)
	var found []int
	var st *State // swap-walks across candidate minimum trees
	_, err = graph.EnumerateSpanningTrees(bg.G, limit, func(tr []int) bool {
		if bg.G.WeightOf(tr) > optW+1e-9*(1+optW) {
			return true
		}
		var serr error
		if st == nil {
			st, serr = NewState(bg, tr)
		} else if serr = st.MorphTo(tr); serr != nil {
			st, serr = NewState(bg, tr)
		}
		if serr != nil {
			st = nil
			return true
		}
		if st.IsEquilibrium(nil) {
			found = tr
			return false
		}
		return true
	})
	if err != nil {
		return false, nil, err
	}
	return found != nil, found, nil
}
