package broadcast

import (
	"math/rand"
	"testing"
	"testing/quick"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// quickState derives a deterministic broadcast state from fuzzed inputs.
func quickState(seed int64, n, p uint8) (*State, bool) {
	rng := rand.New(rand.NewSource(seed))
	nodes := 3 + int(n%7)
	g := graph.RandomConnected(rng, nodes, 0.3+float64(p%50)/100, 0.2, 3)
	bg, err := NewGame(g, rng.Intn(nodes))
	if err != nil {
		return nil, false
	}
	mst, err := graph.MST(g)
	if err != nil {
		return nil, false
	}
	st, err := NewState(bg, mst)
	if err != nil {
		return nil, false
	}
	return st, true
}

// TestPropertyFullSubsidyAlwaysEquilibrium: Theorem-trivial but vital —
// fully subsidizing the tree closes every Lemma-2 constraint.
func TestPropertyFullSubsidyAlwaysEquilibrium(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		st, ok := quickState(seed, n, p)
		if !ok {
			return true
		}
		b := game.ZeroSubsidy(st.BG.G)
		for _, id := range st.Tree.EdgeIDs {
			b[id] = st.BG.G.Weight(id)
		}
		return st.IsEquilibrium(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNonTreeSubsidiesNeverHelp: subsidizing a non-tree edge only
// cheapens deviations — if the state is an equilibrium with such a
// subsidy, it is one without it too.
func TestPropertyNonTreeSubsidiesNeverHelp(t *testing.T) {
	f := func(seed int64, n, p uint8, frac uint8) bool {
		st, ok := quickState(seed, n, p)
		if !ok {
			return true
		}
		g := st.BG.G
		rng := rand.New(rand.NewSource(seed ^ 0x5f5f))
		withNonTree := game.ZeroSubsidy(g)
		treeOnly := game.ZeroSubsidy(g)
		for id := 0; id < g.M(); id++ {
			amt := g.Weight(id) * float64(frac%100) / 100 * rng.Float64()
			if st.Tree.Contains(id) {
				withNonTree[id] = amt
				treeOnly[id] = amt
			} else {
				withNonTree[id] = amt
			}
		}
		if st.IsEquilibrium(withNonTree) && !st.IsEquilibrium(treeOnly) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCostDecomposition: player costs are consistent with the
// totals: Σ_v μ_v·cost(v) = Σ_{a∈T}(w_a − b_a).
func TestPropertyCostDecomposition(t *testing.T) {
	f := func(seed int64, n, p uint8, frac uint8) bool {
		st, ok := quickState(seed, n, p)
		if !ok {
			return true
		}
		g := st.BG.G
		b := game.ZeroSubsidy(g)
		for _, id := range st.Tree.EdgeIDs {
			b[id] = g.Weight(id) * float64(frac%100) / 100
		}
		sum := 0.0
		for v := 0; v < g.N(); v++ {
			if v == st.BG.Root {
				continue
			}
			sum += float64(st.BG.Mult[v]) * st.PlayerCost(v, b)
		}
		return numeric.AlmostEqualTol(sum, st.TotalPlayerCost(b), 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyUsageConservation: Σ_a n_a equals Σ_v μ_v·depth(v): every
// player contributes one usage unit per edge of her path.
func TestPropertyUsageConservation(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		st, ok := quickState(seed, n, p)
		if !ok {
			return true
		}
		var lhs int64
		for _, id := range st.Tree.EdgeIDs {
			lhs += st.NA[id]
		}
		var rhs int64
		for v := 0; v < st.BG.G.N(); v++ {
			if v != st.BG.Root {
				rhs += st.BG.Mult[v] * int64(st.Tree.Depth[v])
			}
		}
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMoreSubsidyOnViolatedPathHelps: raising the subsidy on the
// deviating player's own path edges weakly reduces her incentive (her
// Lemma-2 LHS), keeping other rows' LHS unchanged only when the edge is
// exclusive — a targeted regression for the packing logic.
func TestPropertyMoreSubsidyOnViolatedPathHelps(t *testing.T) {
	f := func(seed int64, n, p uint8) bool {
		st, ok := quickState(seed, n, p)
		if !ok {
			return true
		}
		v := st.FindViolation(nil)
		if v == nil {
			return true
		}
		g := st.BG.G
		b := game.ZeroSubsidy(g)
		// Fully subsidize the violating player's path-to-root.
		for _, id := range st.Tree.PathToRoot(v.Node) {
			b[id] = g.Weight(id)
		}
		// Her cost is now zero, so her own constraint via that edge holds.
		return st.PlayerCost(v.Node, b) <= numeric.Eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
