// Package broadcast implements the paper's central special case: broadcast
// games, where one player sits at every non-root node and must connect to
// the root. States are rooted spanning trees; the socially optimal state
// is a minimum spanning tree; and equilibrium can be decided by examining
// only single non-tree-edge deviations (Lemma 2 of the paper), which this
// package implements in near-linear time via prefix sums and LCA queries.
//
// Nodes may carry a player multiplicity μ ≥ 1 (colocated identical
// players). Multiplicities let gadget constructions pad edge usage counts
// without materializing millions of physical nodes; they are exact because
// colocated players are symmetric.
package broadcast

import (
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// Game is a broadcast game: every non-root node hosts Mult[v] ≥ 1 players
// who must connect to Root. Mult[Root] is 0.
type Game struct {
	G    *graph.Graph
	Root int
	Mult []int64
}

// NewGame returns a broadcast game with one player per non-root node.
func NewGame(g *graph.Graph, root int) (*Game, error) {
	mult := make([]int64, g.N())
	for v := range mult {
		if v != root {
			mult[v] = 1
		}
	}
	return NewGameMult(g, root, mult)
}

// NewGameMult returns a broadcast game with explicit player multiplicities.
func NewGameMult(g *graph.Graph, root int, mult []int64) (*Game, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("broadcast: root %d out of range", root)
	}
	if len(mult) != g.N() {
		return nil, fmt.Errorf("broadcast: %d multiplicities for %d nodes", len(mult), g.N())
	}
	for v, m := range mult {
		if v == root {
			if m != 0 {
				return nil, fmt.Errorf("broadcast: root must have multiplicity 0, got %d", m)
			}
			continue
		}
		if m < 1 {
			return nil, fmt.Errorf("broadcast: node %d has multiplicity %d < 1", v, m)
		}
	}
	if !g.Connected() {
		return nil, graph.ErrDisconnected
	}
	return &Game{G: g, Root: root, Mult: mult}, nil
}

// NumPlayers returns the total player count Σ μ_v.
func (bg *Game) NumPlayers() int64 {
	var sum int64
	for _, m := range bg.Mult {
		sum += m
	}
	return sum
}

// MST returns a minimum spanning tree edge set — a socially optimal state.
func (bg *Game) MST() ([]int, error) { return graph.MST(bg.G) }

// State is a spanning-tree strategy profile of a broadcast game.
//
// A State memoizes the Lemma-2 prefix sums (costs-to-root and deviation
// sums) keyed on the subsidy vector they were computed under, so repeated
// equilibrium checks with an unchanged subsidy — the inner loop of
// subsidy.Enforce, sne.SolveAON and every gadget verification — recompute
// nothing and allocate nothing. The cache makes a State unsafe for
// concurrent use; give each goroutine its own (NewState is cheap).
type State struct {
	BG   *Game
	Tree *graph.RootedTree
	NA   []int64 // NA[edgeID] = players using the edge (0 off tree)

	// Prefix-sum cache: upC/devC are valid iff cacheOK and the subsidy
	// b satisfies b.At(id) == bSeen[id] for every edge. bSeenNil
	// fast-paths the ubiquitous nil-subsidy case.
	upC, devC []float64
	bSeen     []float64
	bSeenNil  bool
	cacheOK   bool

	// Pending-swap bookkeeping (see swap.go): the detached subtree's
	// player mass and the patch anchors needed to undo NA and refresh
	// the cache on Revert.
	swpS                 int64
	swpX                 int
	swpPChild, swpVChild int
	dfsStack             []int32 // cache-patch DFS scratch

	// MorphTo scratch (reused across calls).
	morphMark             []bool
	morphRemove, morphAdd []int
}

// NewState roots the given spanning-tree edge set and caches usage counts.
func NewState(bg *Game, treeEdges []int) (*State, error) {
	tr, err := graph.NewRootedTree(bg.G, bg.Root, treeEdges)
	if err != nil {
		return nil, err
	}
	sub := tr.SubtreeSums(bg.Mult)
	na := make([]int64, bg.G.M())
	for v := 0; v < bg.G.N(); v++ {
		if v != bg.Root {
			na[tr.ParEdge[v]] = sub[v]
		}
	}
	return &State{BG: bg, Tree: tr, NA: na}, nil
}

// Usage returns n_a(T) for the given edge (0 if not in the tree).
func (st *State) Usage(edgeID int) int64 { return st.NA[edgeID] }

// Weight returns the social cost of the state, wgt(T).
func (st *State) Weight() float64 { return st.Tree.Weight() }

// CostsToRoot returns, for every node u, the cost a player at u pays on
// her tree path under subsidies b: Σ_{a∈T_u} (w_a − b_a)/n_a.
// The returned slice is a copy the caller owns.
func (st *State) CostsToRoot(b game.Subsidy) []float64 {
	up, _ := st.prefixSums(b)
	return append([]float64(nil), up...)
}

// deviationSums returns, for every node v, Σ_{a∈T_v} (w_a − b_a)/(n_a+1):
// what a newcomer would pay joining v's path to the root.
func (st *State) deviationSums(b game.Subsidy) []float64 {
	_, dev := st.prefixSums(b)
	return append([]float64(nil), dev...)
}

// PrefixSums exposes the memoized Lemma-2 prefix sums under b: up[u] is
// the cost the player at u pays on her tree path, dev[v] what a newcomer
// would pay joining v's path to the root. The slices belong to the
// State's cache — they are read-only and valid until the next call with
// a different subsidy. On a warm cache this allocates nothing; it is the
// batch substrate the SNE LP row generators emit rows from.
func (st *State) PrefixSums(b game.Subsidy) (up, dev []float64) {
	return st.prefixSums(b)
}

// prefixSums returns the memoized Lemma-2 prefix sums under b. The
// returned slices belong to the cache: they are valid until the next
// call with a different subsidy and must not be modified.
func (st *State) prefixSums(b game.Subsidy) (up, dev []float64) {
	if st.cacheOK && st.subsidyUnchanged(b) {
		return st.upC, st.devC
	}
	g := st.BG.G
	if st.upC == nil {
		st.upC = make([]float64, g.N())
		st.devC = make([]float64, g.N())
		st.bSeen = make([]float64, g.M())
	}
	up, dev = st.upC, st.devC
	if !st.Tree.Pending() {
		// Inline the common committed-tree pass (no closure, no
		// allocation).
		for _, v := range st.Tree.Order {
			if v == st.BG.Root {
				continue
			}
			id := st.Tree.ParEdge[v]
			p := st.Tree.Parent[v]
			wb := g.Weight(id) - b.At(id)
			na := st.NA[id]
			up[v] = up[p] + wb/float64(na)
			dev[v] = dev[p] + wb/float64(na+1)
		}
	} else {
		// ForEachTopDown keeps the pass correct under a pending swap.
		st.Tree.ForEachTopDown(func(v int) {
			id := st.Tree.ParEdge[v]
			p := st.Tree.Parent[v]
			wb := g.Weight(id) - b.At(id)
			na := st.NA[id]
			up[v] = up[p] + wb/float64(na)
			dev[v] = dev[p] + wb/float64(na+1)
		})
	}
	st.bSeenNil = b == nil
	if !st.bSeenNil {
		for id := range st.bSeen {
			st.bSeen[id] = b.At(id)
		}
	}
	st.cacheOK = true
	return up, dev
}

// subsidyUnchanged reports whether b agrees entry-wise with the subsidy
// the cache was filled under (nil counts as all-zero).
func (st *State) subsidyUnchanged(b game.Subsidy) bool {
	if b == nil {
		return st.bSeenNil
	}
	if st.bSeenNil {
		for _, v := range b {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if len(b) != len(st.bSeen) {
		return false
	}
	for id, v := range b {
		if v != st.bSeen[id] {
			return false
		}
	}
	return true
}

// PlayerCost returns the cost of a player at node u under subsidies b.
func (st *State) PlayerCost(u int, b game.Subsidy) float64 {
	g := st.BG.G
	sum := 0.0
	for v := u; v != st.BG.Root; v = st.Tree.Parent[v] {
		id := st.Tree.ParEdge[v]
		sum += (g.Weight(id) - b.At(id)) / float64(st.NA[id])
	}
	return sum
}

// TotalPlayerCost is Σ_u μ_u·cost_u = Σ_{a∈T} (w_a − b_a).
func (st *State) TotalPlayerCost(b game.Subsidy) float64 {
	g := st.BG.G
	sum := 0.0
	for _, id := range st.Tree.EdgeIDs {
		sum += g.Weight(id) - b.At(id)
	}
	return sum
}

// Potential returns Rosenthal's potential of the tree state.
func (st *State) Potential(b game.Subsidy) float64 {
	g := st.BG.G
	sum := 0.0
	for _, id := range st.Tree.EdgeIDs {
		sum += (g.Weight(id) - b.At(id)) * numeric.Harmonic(int(st.NA[id]))
	}
	return sum
}
