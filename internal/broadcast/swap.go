package broadcast

import (
	"errors"
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

// This file carries the broadcast side of the incremental tree-swap
// engine (graph.RootedTree.ApplySwap). A swap reroutes every player of
// the detached subtree D through the added edge, so exactly three groups
// of edges change usage:
//
//   - the base path P→x loses the subtree's S players (x = lca(P, V));
//   - the base path V→x gains them;
//   - the reversed path U→C inside D flips orientation: an edge formerly
//     carrying n_a players now carries S − n_a.
//
// The Lemma-2 prefix sums are patched in the same sweep: only nodes whose
// root path crosses a changed edge — the two branches below x plus D —
// are recomputed, keyed to the subsidy the cache was filled under. The
// patch uses the identical per-node recurrence as the full pass, so
// patched values are bit-for-bit equal to a from-scratch rebuild.

// ApplySwap applies the single-edge swap to the state: the tree is
// re-hung incrementally, usage counts NA are patched along the three
// affected paths, and — when warm — the prefix-sum cache is refreshed
// only on the touched subtrees. O(affected subtree), allocation-free in
// steady state. Revert undoes it; Commit makes it permanent.
func (st *State) ApplySwap(removeID, addID int) error {
	t := st.Tree
	if t.Pending() {
		return errors.New("broadcast: a swap is already pending")
	}
	if err := t.ApplySwap(removeID, addID); err != nil {
		return err
	}
	info := t.PendingSwap()
	S := st.NA[removeID]
	st.swpS = S
	// Both P and V lie outside the detached subtree, so the overlay LCA
	// answers with the base-tree x even while the swap is pending.
	x := t.LCA(info.P, info.V)
	pChild, vChild := -1, -1
	for w := info.P; w != x; w = t.Parent[w] {
		st.NA[t.ParEdge[w]] -= S
		pChild = w
	}
	for w := info.V; w != x; w = t.Parent[w] {
		st.NA[t.ParEdge[w]] += S
		vChild = w
	}
	// Reversed path inside D: the new parent chain C→…→U. An edge that
	// carried the n_a players below it now carries the S − n_a on the
	// other side. (Self-inverse, which Revert exploits.)
	for w := info.C; w != info.U; w = t.Parent[w] {
		id := t.ParEdge[w]
		st.NA[id] = S - st.NA[id]
	}
	st.NA[removeID] = 0
	st.NA[addID] = S
	st.swpX, st.swpPChild, st.swpVChild = x, pChild, vChild
	if st.cacheOK {
		st.refreshSubtreeBase(pChild, info.C)
		st.refreshSubtreeBase(vChild, -1)
		for _, w := range t.PendingNodes() {
			st.refreshNode(int(w))
		}
	}
	return nil
}

// Revert undoes the pending swap, restoring NA and the prefix-sum cache
// to the base tree exactly. No-op when nothing is pending.
func (st *State) Revert() {
	t := st.Tree
	if !t.Pending() {
		return
	}
	info := t.PendingSwap()
	S := st.swpS
	// Undo in reverse: the D-path flip is self-inverse but needs the
	// swapped parent chain, so it runs before the tree reverts.
	for w := info.C; w != info.U; w = t.Parent[w] {
		id := t.ParEdge[w]
		st.NA[id] = S - st.NA[id]
	}
	for w := info.P; w != st.swpX; w = t.Parent[w] {
		st.NA[t.ParEdge[w]] += S
	}
	for w := info.V; w != st.swpX; w = t.Parent[w] {
		st.NA[t.ParEdge[w]] -= S
	}
	st.NA[info.RemoveID] = S
	st.NA[info.AddID] = 0
	t.Revert()
	if st.cacheOK {
		if st.swpPChild >= 0 {
			// The restored subtree D hangs below pChild again, so one
			// DFS refreshes both the branch and D.
			st.refreshSubtreeBase(st.swpPChild, -1)
		} else {
			st.refreshSubtreeBase(info.C, -1)
		}
		st.refreshSubtreeBase(st.swpVChild, -1)
	}
}

// Commit makes the pending swap permanent. NA and the cache were already
// patched by ApplySwap; only the tree's derived structures rebuild.
func (st *State) Commit() { st.Tree.Commit() }

// refreshNode recomputes the cached prefix sums of one non-root node from
// its parent's, under the subsidy the cache was filled with.
func (st *State) refreshNode(v int) {
	t := st.Tree
	id := t.ParEdge[v]
	p := t.Parent[v]
	wb := st.BG.G.Weight(id)
	if !st.bSeenNil {
		wb -= st.bSeen[id]
	}
	na := st.NA[id]
	st.upC[v] = st.upC[p] + wb/float64(na)
	st.devC[v] = st.devC[p] + wb/float64(na+1)
}

// refreshSubtreeBase refreshes the cached sums over the base subtree
// rooted at top (−1: none), descending via the base Children arrays and
// never entering the subtree of skip (−1: none). Parents are refreshed
// before children, as the recurrence requires.
func (st *State) refreshSubtreeBase(top, skip int) {
	if top < 0 {
		return
	}
	t := st.Tree
	stack := append(st.dfsStack[:0], int32(top))
	for len(stack) > 0 {
		w := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		st.refreshNode(w)
		for _, ch := range t.Children[w] {
			if ch != skip {
				stack = append(stack, int32(ch))
			}
		}
	}
	st.dfsStack = stack[:0]
}

// SwapPotentialDelta returns Φ(T′) − Φ(T) under subsidies b for the tree
// T′ = T − removeID + addID, without applying the swap. O(path length),
// allocation-free.
func (st *State) SwapPotentialDelta(removeID, addID int, b game.Subsidy) (float64, error) {
	t := st.Tree
	if t.Pending() {
		return 0, errors.New("broadcast: potential delta needs a committed tree")
	}
	g := st.BG.G
	if removeID < 0 || removeID >= g.M() || addID < 0 || addID >= g.M() ||
		removeID == addID || !t.Contains(removeID) || t.Contains(addID) {
		return 0, fmt.Errorf("broadcast: invalid swap (−%d,+%d)", removeID, addID)
	}
	re := g.Edge(removeID)
	c := re.U
	if t.ParEdge[re.V] == removeID {
		c = re.V
	}
	ae := g.Edge(addID)
	uIn := t.LCA(c, ae.U) == c
	vIn := t.LCA(c, ae.V) == c
	if uIn == vIn {
		return 0, fmt.Errorf("broadcast: swap (−%d,+%d) does not reconnect the tree", removeID, addID)
	}
	u, v := ae.U, ae.V
	if vIn {
		u, v = v, u
	}
	S := int(st.NA[removeID])
	h := numeric.Harmonic
	delta := (g.Weight(addID) - b.At(addID) - g.Weight(removeID) + b.At(removeID)) * h(S)
	p := t.Parent[c]
	x := t.LCA(p, v)
	for w := p; w != x; w = t.Parent[w] {
		id := t.ParEdge[w]
		na := int(st.NA[id])
		delta += (g.Weight(id) - b.At(id)) * (h(na-S) - h(na))
	}
	for w := v; w != x; w = t.Parent[w] {
		id := t.ParEdge[w]
		na := int(st.NA[id])
		delta += (g.Weight(id) - b.At(id)) * (h(na+S) - h(na))
	}
	for w := u; w != c; w = t.Parent[w] {
		id := t.ParEdge[w]
		na := int(st.NA[id])
		delta += (g.Weight(id) - b.At(id)) * (h(S-na) - h(na))
	}
	return delta, nil
}

// MorphTo walks the state from its current tree to the target spanning
// tree through a sequence of committed single-edge swaps, pairing each
// surplus edge with a target edge that reconnects the cut (the matroid
// exchange property guarantees one exists). Each step patches NA and the
// cached sums incrementally — no NewRootedTree/NewState rebuild. On
// error the state may be left mid-morph; callers should rebuild.
func (st *State) MorphTo(target []int) error {
	t := st.Tree
	if t.Pending() {
		return errors.New("broadcast: cannot morph with a pending swap")
	}
	g := st.BG.G
	if len(target) != g.N()-1 {
		return fmt.Errorf("broadcast: %d edges cannot span %d nodes", len(target), g.N())
	}
	if cap(st.morphMark) < g.M() {
		st.morphMark = make([]bool, g.M())
	}
	mark := st.morphMark[:g.M()]
	for _, id := range target {
		if id < 0 || id >= g.M() || mark[id] {
			for _, j := range target {
				if j >= 0 && j < g.M() {
					mark[j] = false
				}
			}
			return fmt.Errorf("broadcast: invalid target edge %d", id)
		}
		mark[id] = true
	}
	st.morphRemove = st.morphRemove[:0]
	st.morphAdd = st.morphAdd[:0]
	for _, id := range t.EdgeIDs {
		if !mark[id] {
			st.morphRemove = append(st.morphRemove, id)
		}
	}
	for _, id := range target {
		mark[id] = false // reset for the next call
		if !t.Contains(id) {
			st.morphAdd = append(st.morphAdd, id)
		}
	}
	for _, e := range st.morphRemove {
		swapped := false
		for j, f := range st.morphAdd {
			if f < 0 {
				continue // already used
			}
			if err := st.ApplySwap(e, f); err == nil {
				st.Commit()
				st.morphAdd[j] = -1
				swapped = true
				break
			}
		}
		if !swapped {
			return fmt.Errorf("broadcast: no target edge reconnects after removing %d (target is not a spanning tree)", e)
		}
	}
	return nil
}

// ErrSwapBudget is returned when SwapDynamics exceeds its step budget.
var ErrSwapBudget = errors.New("broadcast: swap dynamics exceeded step budget")

// SwapDynamicsResult records a tree-swap descent run.
type SwapDynamicsResult struct {
	Steps      int
	Potentials []float64 // potential after each step (including start)
	Converged  bool      // true iff the final tree is a Lemma-2 equilibrium
}

// SwapDynamics runs best-response descent directly on the spanning-tree
// swap graph: while the state has a Lemma-2 violation whose swap strictly
// decreases the Rosenthal potential, apply and commit it. Unlike the
// player-level dynamics in package game, a swap moves the deviator's
// whole subtree, so a violating swap is not guaranteed to lower Φ; the
// potential guard keeps the walk strictly descending (hence terminating),
// and Converged reports whether a true equilibrium was reached rather
// than a swap-graph local minimum. The state is modified in place.
func SwapDynamics(st *State, b game.Subsidy, maxSteps int) (*SwapDynamicsResult, error) {
	if maxSteps <= 0 {
		maxSteps = 100000
	}
	res := &SwapDynamicsResult{Potentials: []float64{st.Potential(b)}}
	var viols []Violation
	for res.Steps < maxSteps {
		viols = viols[:0]
		st.scanViolations(b, &viols)
		if len(viols) == 0 {
			res.Converged = true
			return res, nil
		}
		applied := false
		for i := range viols {
			v := &viols[i]
			removeID := st.Tree.ParEdge[v.Node]
			delta, err := st.SwapPotentialDelta(removeID, v.ViaEdge, b)
			if err != nil || delta >= -numeric.Eps {
				continue
			}
			if err := st.ApplySwap(removeID, v.ViaEdge); err != nil {
				return res, err
			}
			st.Commit()
			applied = true
			break
		}
		if !applied {
			return res, nil // swap-graph local minimum; Converged stays false
		}
		res.Steps++
		res.Potentials = append(res.Potentials, st.Potential(b))
	}
	return res, ErrSwapBudget
}
