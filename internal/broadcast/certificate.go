package broadcast

import (
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// HnCertificate materializes the Anshelevich et al. price-of-stability
// argument the paper's introduction recalls: starting from an optimal
// design (an MST) and letting players make selfish improving moves, the
// Rosenthal potential strictly decreases, so the dynamics reach an
// equilibrium whose potential — and hence whose cost — is at most
// Φ(OPT) ≤ H_n·wgt(OPT). The returned certificate carries every quantity
// of the proof so callers can audit the chain of inequalities.
type HnCertificate struct {
	OptWeight    float64     // wgt(MST)
	OptPotential float64     // Φ(OPT)
	EqWeight     float64     // cost of the reached equilibrium
	EqPotential  float64     // Φ(equilibrium) < Φ(OPT)
	HnBound      float64     // H_n·wgt(OPT)
	Steps        int         // best-response moves taken
	Final        *game.State // the equilibrium state (general engine)
}

// Verify re-checks the proof chain: the final state is an equilibrium,
// potentials descended, and cost ≤ potential ≤ H_n·OPT.
func (c *HnCertificate) Verify() error {
	if !c.Final.IsEquilibrium(nil) {
		return fmt.Errorf("broadcast: certificate state is not an equilibrium")
	}
	if c.EqPotential > c.OptPotential+numeric.Eps {
		return fmt.Errorf("broadcast: potential rose (%v > %v)", c.EqPotential, c.OptPotential)
	}
	if c.EqWeight > c.EqPotential+numeric.Eps*(1+c.EqPotential) {
		return fmt.Errorf("broadcast: cost %v exceeds potential %v", c.EqWeight, c.EqPotential)
	}
	if c.EqWeight > c.HnBound+numeric.Eps*(1+c.HnBound) {
		return fmt.Errorf("broadcast: cost %v exceeds the H_n bound %v", c.EqWeight, c.HnBound)
	}
	return nil
}

// ProveHnBound runs best-response descent from the MST of bg and returns
// the certificate — a constructive witness that the game's price of
// stability is at most H_n. maxPlayers bounds the multiplicity expansion
// into the general engine (≤ 0: 1000).
func ProveHnBound(bg *Game, maxPlayers int64) (*HnCertificate, error) {
	if maxPlayers <= 0 {
		maxPlayers = 1000
	}
	mst, err := graph.MST(bg.G)
	if err != nil {
		return nil, err
	}
	st, err := NewState(bg, mst)
	if err != nil {
		return nil, err
	}
	_, gst, err := st.ToGeneral(maxPlayers)
	if err != nil {
		return nil, err
	}
	res, err := game.BestResponseDynamics(gst, nil, game.RoundRobin, nil, 0)
	if err != nil {
		return nil, err
	}
	n := int(bg.NumPlayers())
	cert := &HnCertificate{
		OptWeight:    st.Weight(),
		OptPotential: gst.Potential(nil),
		EqWeight:     res.Final.EstablishedWeight(),
		EqPotential:  res.Final.Potential(nil),
		HnBound:      numeric.Harmonic(n) * st.Weight(),
		Steps:        res.Steps,
		Final:        res.Final,
	}
	if err := cert.Verify(); err != nil {
		return nil, err
	}
	return cert, nil
}
