package broadcast

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/graph"
)

// TestEstimatePoSAgainstExhaustive cross-checks the local-search
// estimator on instances small enough for exhaustive tree enumeration:
// every converged run is a real equilibrium, so the estimate must sit at
// or above the exact best equilibrium and never below 1.
func TestEstimatePoSAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	found := 0
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.45, 0.3, 2)
		bg, err := NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := AnalyzeTrees(bg, nil, 20000)
		if err == graph.ErrTooManyTrees {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		est, err := EstimatePoS(bg, nil, 5, 0, rng)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(est.OptWeight-exact.OptWeight) > 1e-9 {
			t.Fatalf("OptWeight %v ≠ exhaustive %v", est.OptWeight, exact.OptWeight)
		}
		if est.Converged == 0 {
			if exact.Equilibria > 0 && math.IsInf(est.BestEq, 1) {
				continue // descent may dead-end in a swap-graph local minimum
			}
			continue
		}
		found++
		if exact.Equilibria == 0 {
			t.Fatalf("estimator converged but exhaustive search found no equilibrium")
		}
		if est.BestEq < exact.BestEq-1e-9 {
			t.Fatalf("estimate %v below exact best equilibrium %v", est.BestEq, exact.BestEq)
		}
		if est.PoS() < 1-1e-9 {
			t.Fatalf("PoS estimate %v < 1", est.PoS())
		}
	}
	if found == 0 {
		t.Fatal("estimator never converged on any instance — descent is broken")
	}
}

// TestEstimatePoSLargeInstance exercises the regime the estimator exists
// for: n far beyond exhaustive enumeration.
func TestEstimatePoSLargeInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(rng, 60, 0.1, 0.5, 3)
	bg, err := NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimatePoS(bg, nil, 4, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if est.Starts != 4 {
		t.Fatalf("Starts = %d", est.Starts)
	}
	if est.Converged > 0 && (est.PoS() < 1-1e-9 || math.IsInf(est.PoS(), 1)) {
		t.Fatalf("implausible PoS estimate %v", est.PoS())
	}
}

// TestEstimatePoSDeterministic: same seed, same estimate.
func TestEstimatePoSDeterministic(t *testing.T) {
	g := graph.RandomConnected(rand.New(rand.NewSource(2)), 20, 0.2, 0.5, 3)
	bg, err := NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := EstimatePoS(bg, nil, 6, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimatePoS(bg, nil, 6, 0, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("nondeterministic estimate: %+v vs %+v", a, b)
	}
}
