package broadcast

import (
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/numeric"
)

// Violation is a profitable single-edge deviation found by the Lemma-2
// check: the player at Node improves by leaving her tree path and entering
// through non-tree edge ViaEdge.
type Violation struct {
	Node    int
	ViaEdge int
	Current float64 // cost on the tree path below the LCA
	Better  float64 // cost of the replacement segment
}

// Gain returns the deviation's saving.
func (v *Violation) Gain() float64 { return v.Current - v.Better }

func (v *Violation) String() string {
	return fmt.Sprintf("player %d deviates via edge %d (%.6g → %.6g)", v.Node, v.ViaEdge, v.Current, v.Better)
}

// FindViolation checks every constraint of the paper's LP (3): for each
// node u and neighbor v with (u,v) ∉ T, the player at u must not prefer
// the path ⟨u, v⟩ + T_v. By Lemma 2 these constraints are satisfied iff T
// is an equilibrium of the extension with subsidies b. Shared edges above
// lca(u,v) cancel from both sides (the deviator already uses them), so
// each constraint is an O(1) comparison of prefix sums:
//
//	up[u] − up[x]  ≤  (w_e − b_e) + dev[v] − dev[x],   x = lca(u,v).
//
// Returns nil if T is an equilibrium.
func (st *State) FindViolation(b game.Subsidy) *Violation {
	if viol, found := st.scanViolations(b, nil); found {
		v := viol
		return &v
	}
	return nil
}

// Violations returns every violated LP (3) constraint (useful for
// diagnosing gadget constructions). Empty means equilibrium.
func (st *State) Violations(b game.Subsidy) []Violation {
	var all []Violation
	st.scanViolations(b, &all)
	return all
}

// scanViolations walks every non-tree edge once. The prefix sums come
// from the State's memoized cache (one fused pass when the subsidy
// changed, free otherwise) and each constraint costs O(1): two
// Euler-tour LCA lookups and a handful of float compares. With collect
// == nil it stops at — and returns by value — the first violation, so
// the equilibrium fast path performs zero allocations. With collect !=
// nil every violation is appended and the return value is meaningless.
func (st *State) scanViolations(b game.Subsidy, collect *[]Violation) (Violation, bool) {
	g := st.BG.G
	up, dev := st.prefixSums(b)
	root := st.BG.Root
	edges := g.Edges()
	for i := range edges {
		e := &edges[i]
		if st.Tree.Contains(e.ID) {
			continue
		}
		we := e.W - b.At(e.ID)
		for dir := 0; dir < 2; dir++ {
			u, v := e.U, e.V
			if dir == 1 {
				u, v = v, u
			}
			if u == root {
				continue // the root hosts no player
			}
			x := st.Tree.LCA(u, v)
			lhs := up[u] - up[x]
			rhs := we + dev[v] - dev[x]
			if numeric.Less(rhs, lhs) {
				viol := Violation{Node: u, ViaEdge: e.ID, Current: lhs, Better: rhs}
				if collect == nil {
					return viol, true
				}
				*collect = append(*collect, viol)
			}
		}
	}
	return Violation{}, false
}

// IsEquilibrium reports whether T is a Nash equilibrium of the broadcast
// game extended with subsidies b. On a warmed-up State (same subsidy as
// the previous check) it allocates nothing.
func (st *State) IsEquilibrium(b game.Subsidy) bool {
	_, found := st.scanViolations(b, nil)
	return !found
}

// ToGeneral expands the broadcast state into the general game engine:
// one explicit player per unit of multiplicity, each with her tree path.
// It refuses to expand more than maxPlayers players. The expansion serves
// as the brute-force oracle validating the Lemma-2 fast path.
func (st *State) ToGeneral(maxPlayers int64) (*game.Game, *game.State, error) {
	total := st.BG.NumPlayers()
	if total > maxPlayers {
		return nil, nil, fmt.Errorf("broadcast: %d players exceed expansion limit %d", total, maxPlayers)
	}
	var terms []game.Terminal
	var paths [][]int
	for v := 0; v < st.BG.G.N(); v++ {
		if v == st.BG.Root {
			continue
		}
		p := st.Tree.PathToRoot(v)
		for k := int64(0); k < st.BG.Mult[v]; k++ {
			terms = append(terms, game.Terminal{S: v, T: st.BG.Root})
			paths = append(paths, p)
		}
	}
	gm, err := game.New(st.BG.G, terms)
	if err != nil {
		return nil, nil, err
	}
	gst, err := game.NewState(gm, paths)
	if err != nil {
		return nil, nil, err
	}
	return gm, gst, nil
}
