package broadcast

import (
	"math"
	"math/rand"

	"netdesign/internal/game"
	"netdesign/internal/graph"
)

// PoSEstimate summarizes a multi-start swap-descent search for good
// equilibria — the large-n stand-in for exhaustive AnalyzeTrees, whose
// spanning-tree enumeration is hopeless beyond a few dozen trees.
type PoSEstimate struct {
	Starts    int     // descent runs launched
	Converged int     // runs that ended at a true Lemma-2 equilibrium
	Steps     int     // committed swaps across all runs
	OptWeight float64 // MST weight (the social optimum)
	BestEq    float64 // lightest converged equilibrium (+Inf if none)
}

// PoS returns the price-of-stability estimate BestEq/OptWeight. It is an
// upper bound on the true PoS whenever Converged > 0 (some equilibrium
// of that weight exists) and +Inf otherwise.
func (e *PoSEstimate) PoS() float64 { return e.BestEq / e.OptWeight }

// EstimatePoS estimates the price of stability of bg under subsidies b by
// multi-start local search on the spanning-tree swap graph: the MST plus
// starts−1 random spanning trees each descend via SwapDynamics (the
// potential guard guarantees termination), and every run that converges
// to a genuine equilibrium contributes an upper-bound candidate. Random
// starts alternate between shuffled-Kruskal trees (cheap, weight-biased
// toward light trees) and Wilson uniform spanning trees (exactly uniform
// over the whole tree landscape), so the search covers both the
// near-optimal basin and the heavy tail the Kruskal bias under-samples.
// One State walks all starts through MorphTo, so the search stays on the
// incremental swap engine with no per-start rebuild. Deterministic for a
// given rng.
func EstimatePoS(bg *Game, b game.Subsidy, starts, maxSteps int, rng *rand.Rand) (*PoSEstimate, error) {
	if starts < 1 {
		starts = 1
	}
	mst, err := bg.MST()
	if err != nil {
		return nil, err
	}
	est := &PoSEstimate{Starts: starts, OptWeight: bg.G.WeightOf(mst), BestEq: math.Inf(1)}
	st, err := NewState(bg, mst)
	if err != nil {
		return nil, err
	}
	for s := 0; s < starts; s++ {
		if s > 0 {
			var start []int
			var err error
			if s%2 == 0 {
				start, err = graph.WilsonUST(bg.G, rng)
			} else {
				start, err = graph.RandomSpanningTree(bg.G, rng)
			}
			if err != nil {
				return nil, err
			}
			if err := st.MorphTo(start); err != nil {
				// A failed morph leaves the walker mid-swap; rebuild.
				if st, err = NewState(bg, start); err != nil {
					return nil, err
				}
			}
		}
		res, err := SwapDynamics(st, b, maxSteps)
		if err != nil && err != ErrSwapBudget {
			return nil, err
		}
		est.Steps += res.Steps
		if res.Converged {
			est.Converged++
			if w := st.Weight(); w < est.BestEq {
				est.BestEq = w
			}
		}
	}
	return est, nil
}
