// Package multicast implements multicast network design games — the
// generalization the paper repeatedly contrasts with broadcast games
// (price of stability O(log n/log log n), NP-hard potential minimization,
// and "more general instances of SND (e.g., involving multicast games)
// are challenging" in Section 6). Only a subset of nodes host players;
// the socially optimal design is a STEINER TREE, computed here exactly
// with the Dreyfus–Wagner dynamic program, and enforcement questions are
// answered through the general game engine and the LP (1) row-generation
// solver, which are terminal-set agnostic.
package multicast

import (
	"errors"
	"fmt"
	"math"

	"netdesign/internal/graph"
)

// MaxSteinerTerminals bounds the Dreyfus–Wagner subset dimension
// (3^k subset-split work).
const MaxSteinerTerminals = 14

// ErrTooManyTerminals is returned when the terminal set exceeds the
// exact solver's range.
var ErrTooManyTerminals = errors.New("multicast: too many terminals for exact Steiner solving")

// SteinerTree computes a minimum-weight tree connecting the given
// terminals using the Dreyfus–Wagner dynamic program:
//
//	dp[S][v] = cost of an optimal tree spanning S ∪ {v}
//	dp[S][v] = min(  min_{∅⊂T⊂S} dp[T][v] + dp[S\T][v],
//	                 min_u dp[S][u] + dist(u,v) )
//
// It returns the edge IDs of an optimal tree and its weight. Terminals
// may repeat; the graph must connect them.
func SteinerTree(g *graph.Graph, terminals []int) ([]int, float64, error) {
	// Deduplicate terminals.
	seen := map[int]bool{}
	var terms []int
	for _, t := range terminals {
		if t < 0 || t >= g.N() {
			return nil, 0, fmt.Errorf("multicast: terminal %d out of range", t)
		}
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	switch len(terms) {
	case 0:
		return nil, 0, nil
	case 1:
		return []int{}, 0, nil
	}
	if len(terms) > MaxSteinerTerminals {
		return nil, 0, ErrTooManyTerminals
	}

	n := g.N()
	k := len(terms)
	// All-pairs shortest paths with parent edges: one scratch Dijkstra
	// per source over the frozen CSR view, copied into flat row-major
	// matrices (three backing arrays instead of ~6 slices per source).
	c := g.Freeze()
	var s graph.Scratch
	dist := make([]float64, n*n)
	parEdge := make([]int32, n*n)
	parNode := make([]int32, n*n)
	for v := 0; v < n; v++ {
		s.Dijkstra(c, v, nil)
		copy(dist[v*n:(v+1)*n], s.Dist)
		copy(parEdge[v*n:(v+1)*n], s.ParEdge)
		copy(parNode[v*n:(v+1)*n], s.ParNode)
	}
	for _, t := range terms[1:] {
		if math.IsInf(dist[terms[0]*n+t], 1) {
			return nil, 0, graph.ErrDisconnected
		}
	}

	full := 1 << (k - 1) // subsets over terms[1:]; terms[0] is the anchor
	const inf = math.MaxFloat64
	dp := make([][]float64, full)
	// choice[S][v] encodes reconstruction: ≥ 0 → "via node u" (merge with
	// dist(u,v)); < 0 → "split into subset −choice−1 at v".
	choice := make([][]int, full)
	for S := range dp {
		dp[S] = make([]float64, n)
		choice[S] = make([]int, n)
		for v := range dp[S] {
			dp[S][v] = inf
			choice[S][v] = v // self: leaf base case
		}
	}
	// Base: singleton subsets {t_i}.
	for i := 1; i < k; i++ {
		S := 1 << (i - 1)
		copy(dp[S], dist[terms[i]*n:(terms[i]+1)*n])
		for v := 0; v < n; v++ {
			choice[S][v] = terms[i] // path from terminal to v
		}
	}
	for S := 1; S < full; S++ {
		// Combine strictly smaller subset pairs at every node (the loop
		// is empty for singletons, which the base case covers).
		for T := (S - 1) & S; T > 0; T = (T - 1) & S {
			if T < S-T {
				break // each unordered pair once
			}
			for v := 0; v < n; v++ {
				if dp[T][v] < inf && dp[S^T][v] < inf {
					if c := dp[T][v] + dp[S^T][v]; c < dp[S][v] {
						dp[S][v] = c
						choice[S][v] = -T - 1
					}
				}
			}
		}
		// Distance relaxation: dp[S][v] = min_u dp[S][u] + dist(u,v).
		// A single multi-source Dijkstra pass over precomputed dists is
		// O(n²) here, fine for the instance sizes this library targets.
		for u := 0; u < n; u++ {
			du := dp[S][u]
			if du >= inf {
				continue
			}
			row := dist[u*n : (u+1)*n]
			for v := 0; v < n; v++ {
				if !math.IsInf(row[v], 1) {
					if c := du + row[v]; c < dp[S][v]-1e-15 {
						dp[S][v] = c
						choice[S][v] = u
					}
				}
			}
		}
	}

	root := terms[0]
	best := dp[full-1][root]
	if best >= inf {
		return nil, 0, graph.ErrDisconnected
	}

	// Reconstruct the edge set: splits recurse into both halves; extends
	// walk the connecting shortest path and continue at its far end.
	// Chains terminate because every extend strictly decreased dp and
	// every split strictly shrinks S.
	inSet := make([]bool, g.M())
	var ids []int
	var emit func(S, v int)
	emit = func(S, v int) {
		ch := choice[S][v]
		switch {
		case ch == v:
			// Base: v is the subset's own terminal.
		case ch < 0:
			T := -ch - 1
			emit(T, v)
			emit(S^T, v)
		default:
			// Walk the parent chain of the shortest path ch→…→v.
			row := ch * n
			for w := v; parEdge[row+w] >= 0; w = int(parNode[row+w]) {
				id := int(parEdge[row+w])
				if !inSet[id] {
					inSet[id] = true
					ids = append(ids, id)
				}
			}
			emit(S, ch)
		}
	}
	emit(full-1, root)

	// The union of reconstruction paths connects all terminals at cost
	// ≤ best; prune it to a tree and drop non-terminal leaves.
	tree, w, err := pruneToSteiner(g, ids, terms)
	if err != nil {
		return nil, 0, err
	}
	if w > best+1e-6*(1+best) {
		return nil, 0, fmt.Errorf("multicast: reconstruction cost %v exceeds DP value %v", w, best)
	}
	return tree, w, nil
}

// pruneToSteiner reduces an edge union to a tree spanning the terminals:
// build an MST of the union subgraph, then repeatedly remove non-terminal
// leaves.
func pruneToSteiner(g *graph.Graph, ids []int, terms []int) ([]int, float64, error) {
	if len(ids) == 0 {
		return nil, 0, errors.New("multicast: empty reconstruction")
	}
	// Forest of the union via Kruskal on the restricted edge set.
	dsu := graph.NewUnionFind(g.N())
	var forest []int
	for _, id := range ids {
		e := g.Edge(id)
		if dsu.Union(e.U, e.V) {
			forest = append(forest, id)
		}
	}
	for _, t := range terms[1:] {
		if !dsu.Same(terms[0], t) {
			return nil, 0, errors.New("multicast: reconstruction does not connect terminals")
		}
	}
	isTerm := make([]bool, g.N())
	for _, t := range terms {
		isTerm[t] = true
	}
	// Iteratively strip non-terminal leaves, reusing one degree buffer.
	deg := make([]int, g.N())
	for {
		for i := range deg {
			deg[i] = 0
		}
		for _, id := range forest {
			e := g.Edge(id)
			deg[e.U]++
			deg[e.V]++
		}
		removed := false
		kept := forest[:0]
		for _, id := range forest {
			e := g.Edge(id)
			if (deg[e.U] == 1 && !isTerm[e.U]) || (deg[e.V] == 1 && !isTerm[e.V]) {
				removed = true
				continue
			}
			kept = append(kept, id)
		}
		forest = kept
		if !removed {
			break
		}
	}
	return forest, g.WeightOf(forest), nil
}

// SteinerBruteForce returns the optimal Steiner tree weight by minimizing
// MST(G[terminals ∪ X]) over all Steiner-node subsets X — the test oracle
// for Dreyfus–Wagner (exponential in non-terminals).
func SteinerBruteForce(g *graph.Graph, terminals []int) (float64, error) {
	isTerm := make([]bool, g.N())
	for _, t := range terminals {
		isTerm[t] = true
	}
	var steiner []int
	for v := 0; v < g.N(); v++ {
		if !isTerm[v] {
			steiner = append(steiner, v)
		}
	}
	if len(steiner) > 20 {
		return 0, errors.New("multicast: brute force limited to 20 Steiner nodes")
	}
	best := math.Inf(1)
	for mask := 0; mask < 1<<len(steiner); mask++ {
		keep := make([]bool, g.N())
		for _, t := range terminals {
			keep[t] = true
		}
		for i, v := range steiner {
			if mask&(1<<i) != 0 {
				keep[v] = true
			}
		}
		// Induced-subgraph MST via Kruskal over permitted edges.
		dsu := graph.NewUnionFind(g.N())
		w := 0.0
		comps := 0
		for v := 0; v < g.N(); v++ {
			if keep[v] {
				comps++
			}
		}
		for _, id := range g.SortedEdgeIDs() {
			e := g.Edge(id)
			if keep[e.U] && keep[e.V] && dsu.Union(e.U, e.V) {
				w += e.W
				comps--
			}
		}
		if comps == 1 && w < best {
			best = w
		}
	}
	if math.IsInf(best, 1) {
		return 0, graph.ErrDisconnected
	}
	return best, nil
}
