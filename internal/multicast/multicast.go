package multicast

import (
	"fmt"

	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/sne"
)

// Game is a multicast game: players sit at Terminals and must connect to
// Root; other nodes are Steiner nodes free for routing.
type Game struct {
	G         *graph.Graph
	Root      int
	Terminals []int
}

// NewGame validates and returns a multicast game. Terminals must be
// distinct non-root nodes.
func NewGame(g *graph.Graph, root int, terminals []int) (*Game, error) {
	if root < 0 || root >= g.N() {
		return nil, fmt.Errorf("multicast: root %d out of range", root)
	}
	seen := map[int]bool{root: true}
	for _, t := range terminals {
		if t < 0 || t >= g.N() {
			return nil, fmt.Errorf("multicast: terminal %d out of range", t)
		}
		if seen[t] {
			return nil, fmt.Errorf("multicast: terminal %d repeated (or equals the root)", t)
		}
		seen[t] = true
	}
	if len(terminals) == 0 {
		return nil, fmt.Errorf("multicast: no terminals")
	}
	return &Game{G: g, Root: root, Terminals: terminals}, nil
}

// ToGeneral expresses the multicast game in the general engine: one
// player per terminal with destination Root.
func (mg *Game) ToGeneral() (*game.Game, error) {
	terms := make([]game.Terminal, len(mg.Terminals))
	for i, t := range mg.Terminals {
		terms[i] = game.Terminal{S: t, T: mg.Root}
	}
	return game.New(mg.G, terms)
}

// OptimalDesign returns a minimum-weight network serving all terminals —
// a Steiner tree over Terminals ∪ {Root}, computed exactly by
// Dreyfus–Wagner.
func (mg *Game) OptimalDesign() ([]int, float64, error) {
	all := append([]int{mg.Root}, mg.Terminals...)
	return SteinerTree(mg.G, all)
}

// TreeState adopts a Steiner tree (an edge set connecting all terminals
// to the root) as the strategy profile: each player's path is her unique
// route to the root within the tree.
func (mg *Game) TreeState(treeEdges []int) (*game.State, error) {
	gm, err := mg.ToGeneral()
	if err != nil {
		return nil, err
	}
	// Root the forest at mg.Root and read off terminal paths. The edge
	// set need not span all of G, so BFS over the graph's own adjacency
	// restricted to an in-tree bitset — no per-call adjacency rebuild.
	n := mg.G.N()
	parent := make([]int, n)
	parEdge := make([]int, n)
	for i := range parent {
		parent[i] = -1
		parEdge[i] = -1
	}
	inTree := make([]bool, mg.G.M())
	for _, id := range treeEdges {
		inTree[id] = true
	}
	visited := make([]bool, n)
	visited[mg.Root] = true
	queue := make([]int, 1, n)
	queue[0] = mg.Root
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, h := range mg.G.Adj(u) {
			if inTree[h.Edge] && !visited[h.To] {
				visited[h.To] = true
				parent[h.To] = u
				parEdge[h.To] = h.Edge
				queue = append(queue, h.To)
			}
		}
	}
	paths := make([][]int, len(mg.Terminals))
	for i, t := range mg.Terminals {
		if !visited[t] {
			return nil, fmt.Errorf("multicast: tree does not connect terminal %d to the root", t)
		}
		var p []int
		for v := t; v != mg.Root; v = parent[v] {
			p = append(p, parEdge[v])
		}
		paths[i] = p
	}
	return game.NewState(gm, paths)
}

// MinSubsidies computes minimum-cost subsidies enforcing the Steiner-tree
// state, via LP (1) row generation (Theorem 1 applies verbatim to
// multicast games).
func (mg *Game) MinSubsidies(treeEdges []int) (*sne.Result, *game.State, error) {
	st, err := mg.TreeState(treeEdges)
	if err != nil {
		return nil, nil, err
	}
	res, err := sne.SolveRowGeneration(st, 0)
	if err != nil {
		return nil, nil, err
	}
	return res, st, nil
}
