package multicast

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
)

func TestSteinerTreeTrivial(t *testing.T) {
	g := graph.Path(4, 1)
	// Single terminal: empty tree.
	tree, w, err := SteinerTree(g, []int{2})
	if err != nil || len(tree) != 0 || w != 0 {
		t.Errorf("singleton: %v %v %v", tree, w, err)
	}
	// No terminals.
	if _, w, err := SteinerTree(g, nil); err != nil || w != 0 {
		t.Errorf("empty: %v %v", w, err)
	}
	// Two terminals: shortest path.
	tree, w, err = SteinerTree(g, []int{0, 3})
	if err != nil || w != 3 || len(tree) != 3 {
		t.Errorf("pair: %v %v %v", tree, w, err)
	}
	// Duplicates collapse.
	if _, w, err := SteinerTree(g, []int{0, 0, 3, 3}); err != nil || w != 3 {
		t.Errorf("dupes: %v %v", w, err)
	}
}

func TestSteinerTreeClassicStar(t *testing.T) {
	// Three terminals at the tips of a star: the Steiner point wins over
	// pairwise shortest paths.
	g := graph.New(4)
	g.AddEdge(0, 3, 1) // center 3
	g.AddEdge(1, 3, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 1, 1.9)
	g.AddEdge(1, 2, 1.9)
	tree, w, err := SteinerTree(g, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(w, 3) || len(tree) != 3 {
		t.Errorf("star Steiner: w=%v tree=%v (want 3 via the hub)", w, tree)
	}
}

func TestSteinerDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	if _, _, err := SteinerTree(g, []int{0, 3}); err == nil {
		t.Error("disconnected terminals accepted")
	}
}

func TestSteinerTooManyTerminals(t *testing.T) {
	g := graph.Complete(16, func(i, j int) float64 { return 1 })
	terms := make([]int, 15)
	for i := range terms {
		terms[i] = i
	}
	if _, _, err := SteinerTree(g, terms); err != ErrTooManyTerminals {
		t.Errorf("err = %v", err)
	}
}

// TestSteinerAgainstBruteForce is the core validation: Dreyfus–Wagner vs
// minimization of induced-subgraph MSTs over all Steiner-node subsets.
func TestSteinerAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(6)
		g := graph.RandomConnected(rng, n, 0.4, 0.3, 3)
		k := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		terms := perm[:k]
		tree, w, err := SteinerTree(g, terms)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := SteinerBruteForce(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqualTol(w, want, 1e-9) {
			t.Fatalf("trial %d: DW %v vs brute force %v (n=%d terms=%v)", trial, w, want, n, terms)
		}
		// The returned edge set must connect the terminals at weight w.
		if !numeric.AlmostEqual(g.WeightOf(tree), w) {
			t.Fatalf("trial %d: edge set weight %v ≠ reported %v", trial, g.WeightOf(tree), w)
		}
		dsu := graph.NewUnionFind(g.N())
		for _, id := range tree {
			e := g.Edge(id)
			dsu.Union(e.U, e.V)
		}
		for _, tm := range terms[1:] {
			if !dsu.Same(terms[0], tm) {
				t.Fatalf("trial %d: terminals not connected", trial)
			}
		}
	}
}

func TestSteinerSpanningCaseMatchesMST(t *testing.T) {
	// When every node is a terminal, the Steiner tree is the MST.
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(6)
		g := graph.RandomConnected(rng, n, 0.5, 0.3, 3)
		terms := make([]int, n)
		for i := range terms {
			terms[i] = i
		}
		_, w, err := SteinerTree(g, terms)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := graph.MST(g)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.AlmostEqualTol(w, g.WeightOf(mst), 1e-9) {
			t.Fatalf("trial %d: Steiner %v vs MST %v", trial, w, g.WeightOf(mst))
		}
	}
}

func TestNewGameValidation(t *testing.T) {
	g := graph.Path(3, 1)
	if _, err := NewGame(g, 9, []int{1}); err == nil {
		t.Error("bad root accepted")
	}
	if _, err := NewGame(g, 0, []int{0}); err == nil {
		t.Error("root terminal accepted")
	}
	if _, err := NewGame(g, 0, []int{1, 1}); err == nil {
		t.Error("repeated terminal accepted")
	}
	if _, err := NewGame(g, 0, nil); err == nil {
		t.Error("empty terminals accepted")
	}
	if _, err := NewGame(g, 0, []int{5}); err == nil {
		t.Error("out-of-range terminal accepted")
	}
}

func TestMulticastEnforcement(t *testing.T) {
	// A multicast game where the Steiner-optimal design is unstable:
	// two far terminals share a trunk but have private shortcuts.
	g := graph.New(5)
	g.AddEdge(0, 1, 2)   // trunk to hub
	g.AddEdge(1, 2, 1)   // hub to terminal A
	g.AddEdge(1, 3, 1)   // hub to terminal B
	g.AddEdge(0, 2, 2.4) // A's shortcut
	g.AddEdge(0, 3, 2.4) // B's shortcut
	// Node 4 is an isolated-ish Steiner node to keep things honest.
	g.AddEdge(4, 0, 10)

	mg, err := NewGame(g, 0, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	design, w, err := mg.OptimalDesign()
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(w, 4) {
		t.Fatalf("optimal design weight %v, want 4 (trunk + two spokes)", w)
	}
	res, st, err := mg.MinSubsidies(design)
	if err != nil {
		t.Fatal(err)
	}
	if err := sne.VerifyGeneral(st, res.Subsidy); err != nil {
		t.Fatal(err)
	}
	// Unsubsidized: each terminal pays 1 + 2/2 = 2 < 2.4 — actually
	// stable; verify zero cost.
	if res.Cost > 1e-9 {
		t.Errorf("expected free enforcement, got %v", res.Cost)
	}
	// Tighten the shortcuts to 1.8: trunk share 1+1 = 2 > 1.8, so
	// subsidies become necessary.
	g.SetWeight(3, 1.8)
	g.SetWeight(4, 1.8)
	res2, st2, err := mg.MinSubsidies(design)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Cost <= 0 {
		t.Error("expected positive subsidies after tightening shortcuts")
	}
	if err := sne.VerifyGeneral(st2, res2.Subsidy); err != nil {
		t.Fatal(err)
	}
}

func TestTreeStateErrors(t *testing.T) {
	g := graph.Path(3, 1)
	mg, err := NewGame(g, 0, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mg.TreeState([]int{0}); err == nil {
		t.Error("tree missing the terminal accepted")
	}
	st, err := mg.TreeState([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Paths[0]) != 2 {
		t.Errorf("terminal path %v", st.Paths[0])
	}
}

// TestMulticastRandomEnforcement: on random instances, the row-generation
// optimum enforces the Steiner design and never exceeds full subsidy.
func TestMulticastRandomEnforcement(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(5)
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 3)
		k := 2 + rng.Intn(3)
		perm := rng.Perm(n)
		root := perm[0]
		terms := perm[1 : 1+k]
		mg, err := NewGame(g, root, terms)
		if err != nil {
			t.Fatal(err)
		}
		design, w, err := mg.OptimalDesign()
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := mg.MinSubsidies(design)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := sne.VerifyGeneral(st, res.Subsidy); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Cost > w+1e-9 {
			t.Fatalf("trial %d: subsidies %v exceed design weight %v", trial, res.Cost, w)
		}
		if math.IsNaN(res.Cost) {
			t.Fatal("NaN cost")
		}
	}
}
