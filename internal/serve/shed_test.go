package serve

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"netdesign/internal/serve/wire"
)

// TestOverloadShed holds one solve in flight on a MaxInflight=1 server
// and checks both protocols shed the surplus: /v1 with 503 +
// Retry-After, /v2 with an HTTP 503 carrying a StatusUnavailable frame.
// The admitted request must still answer 200 once released.
func TestOverloadShed(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInflight: 1})
	release := make(chan struct{})
	var released bool
	defer func() { // unblock the held solve even when an assertion bails out
		if !released {
			close(release)
		}
	}()
	s.preSolve = func() { <-release }

	type result struct {
		code int
		body []byte
	}
	first := make(chan result, 1)
	go func() {
		resp, body := post(t, ts, "/v1/check", instanceRequest{Instance: cycle5})
		first <- result{resp.StatusCode, body}
	}()
	// The shed decision is the inflight gauge; wait for the blocked
	// solve to be counted before probing.
	for i := 0; s.met.inflight.Load() == 0; i++ {
		if i > 1000 {
			t.Fatal("first request never went in flight")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := post(t, ts, "/v1/check", instanceRequest{Instance: cycle5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v1 overload answered %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("/v1 shed response missing Retry-After")
	}

	// Body content is irrelevant: shed precedes frame parsing.
	binResp, err := http.Post(ts.URL+"/v2/check", "application/octet-stream", bytes.NewReader([]byte{0, 0, 0, 0}))
	if err != nil {
		t.Fatal(err)
	}
	var binBody bytes.Buffer
	binBody.ReadFrom(binResp.Body)
	binResp.Body.Close()
	if binResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/v2 overload answered %d, want 503", binResp.StatusCode)
	}
	if raw := binBody.Bytes(); len(raw) < 5 || raw[4] != wire.StatusUnavailable {
		t.Fatalf("/v2 shed frame %v, want status byte %d", raw, wire.StatusUnavailable)
	}

	close(release)
	released = true
	got := <-first
	if got.code != http.StatusOK {
		t.Fatalf("admitted request answered %d: %s", got.code, got.body)
	}

	metResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met bytes.Buffer
	met.ReadFrom(metResp.Body)
	metResp.Body.Close()
	if !strings.Contains(met.String(), "sned_shed_requests_total 2\n") {
		t.Errorf("metrics missing shed counter:\n%s", met.String())
	}
}

// TestReadyzTracksLifecycle pins the liveness/readiness split: a server
// that has not Started answers 503 on /readyz (while /healthz is 200),
// Start flips it ready, Shutdown flips it back before draining.
func TestReadyzTracksLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before warm: %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before warm: %d, want 503", code)
	}

	s2 := New(Config{})
	addr, err := s2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after Start: %d, want 200", resp.StatusCode)
	}
	if err := s2.Shutdown(t.Context()); err != nil {
		t.Fatal(err)
	}
	if s2.ready.Load() {
		t.Fatal("Shutdown left the server ready")
	}
}
