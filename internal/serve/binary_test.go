package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"netdesign/internal/serve/wire"
)

// postBin sends one binary frame and returns the HTTP code plus the
// decoded response frame: status byte, OK body, error message.
func postBin(t testing.TB, ts *httptest.Server, path string, payload []byte) (int, byte, []byte, string) {
	t.Helper()
	frame := wire.AppendFrame(nil, payload)
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if len(raw) < 4 {
		t.Fatalf("%s: response %d bytes, no frame header", path, len(raw))
	}
	n := binary.LittleEndian.Uint32(raw)
	if int(n) != len(raw)-4 {
		t.Fatalf("%s: frame length %d, body %d", path, n, len(raw)-4)
	}
	status, body, msg, err := wire.DecodeStatus(raw[4:])
	if err != nil {
		t.Fatalf("%s: response status decode: %v", path, err)
	}
	return resp.StatusCode, status, body, msg
}

// jsonBytes marshals v the way writeJSON renders a /v1 response body, so
// a /v2-decoded struct can be held byte-for-byte against the /v1 wire
// bytes — the strongest form of the bit-identity contract (float bits
// included, since Go's JSON float encoding is deterministic in the
// bits).
func jsonBytes(t testing.TB, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestBinaryDifferentialMatrix holds every /v2 endpoint bit-identical to
// its /v1 twin across the full method matrix, with caching disabled so
// one shared server serves both protocols from identical (cold) state.
func TestBinaryDifferentialMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCap: -1})
	rng := rand.New(rand.NewSource(31))
	texts := []string{cycle5}
	for trial := 0; trial < 3; trial++ {
		texts = append(texts, jitterFamily(t, 10+rng.Intn(8), 1, rng.Int63(), 0.2)[0])
	}

	for k, text := range texts {
		inst := parse(t, text)

		// check
		_, rawV1 := post(t, ts, "/v1/check", map[string]any{"instance": text})
		code, status, body, msg := postBin(t, ts, "/v2/check", wire.AppendCheckRequest(nil, inst))
		if code != 200 || status != wire.StatusOK {
			t.Fatalf("instance %d check: %d/%d %q", k, code, status, msg)
		}
		var cr checkResponse
		if err := wire.DecodeCheckResponse(body, &cr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, cr), bytes.TrimSpace(rawV1)) {
			t.Fatalf("instance %d check drifted:\n v1 %s\n v2 %s", k, bytes.TrimSpace(rawV1), jsonBytes(t, cr))
		}

		// sne, all five methods
		for method := byte(0); method < 5; method++ {
			name, _ := wire.MethodName(method)
			_, rawV1 := post(t, ts, "/v1/sne", map[string]any{"instance": text, "method": name})
			code, status, body, msg := postBin(t, ts, "/v2/sne", wire.AppendSNERequest(nil, inst, method))
			if code != 200 || status != wire.StatusOK {
				t.Fatalf("instance %d sne %s: %d/%d %q", k, name, code, status, msg)
			}
			var sr sneResponse
			if err := wire.DecodeSNEResponse(body, &sr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsonBytes(t, sr), bytes.TrimSpace(rawV1)) {
				t.Fatalf("instance %d sne %s drifted:\n v1 %s\n v2 %s", k, name, bytes.TrimSpace(rawV1), jsonBytes(t, sr))
			}
		}

		// pos, seeded
		_, rawV1 = post(t, ts, "/v1/pos", map[string]any{"instance": text, "starts": 3, "seed": 17})
		code, status, body, msg = postBin(t, ts, "/v2/pos", wire.AppendPoSRequest(nil, inst, 3, 0, 17))
		if code != 200 || status != wire.StatusOK {
			t.Fatalf("instance %d pos: %d/%d %q", k, code, status, msg)
		}
		var pr posResponse
		if err := wire.DecodePoSResponse(body, &pr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, pr), bytes.TrimSpace(rawV1)) {
			t.Fatalf("instance %d pos drifted:\n v1 %s\n v2 %s", k, bytes.TrimSpace(rawV1), jsonBytes(t, pr))
		}
	}

	// snd: heuristic, exact, and the infeasible-budget error text.
	inst := parse(t, cycle5)
	for _, c := range []struct {
		name   string
		budget float64
		exact  bool
		limit  int
	}{
		{"heuristic", 2.0, false, 0},
		{"exact", 2.0, true, 100000},
	} {
		_, rawV1 := post(t, ts, "/v1/snd", map[string]any{"instance": cycle5, "budget": c.budget, "exact": c.exact, "treelimit": c.limit})
		code, status, body, msg := postBin(t, ts, "/v2/snd", wire.AppendSNDRequest(nil, inst, c.budget, c.exact, c.limit))
		if code != 200 || status != wire.StatusOK {
			t.Fatalf("snd %s: %d/%d %q", c.name, code, status, msg)
		}
		var nr sndResponse
		if err := wire.DecodeSNDResponse(body, &nr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(jsonBytes(t, nr), bytes.TrimSpace(rawV1)) {
			t.Fatalf("snd %s drifted:\n v1 %s\n v2 %s", c.name, bytes.TrimSpace(rawV1), jsonBytes(t, nr))
		}
	}
	_, rawV1 := post(t, ts, "/v1/snd", map[string]any{"instance": cycle5, "budget": 1.0})
	code, status, _, msg := postBin(t, ts, "/v2/snd", wire.AppendSNDRequest(nil, inst, 1.0, false, 0))
	if code != http.StatusUnprocessableEntity || status != wire.StatusUnprocessable {
		t.Fatalf("snd infeasible: %d/%d", code, status)
	}
	e := decode[map[string]string](t, rawV1)
	if msg != e["error"] {
		t.Fatalf("snd infeasible error drifted: v1 %q, v2 %q", e["error"], msg)
	}
}

// TestBinaryDifferentialWarm replays the same jitter stream against two
// identically configured servers — one per protocol — so the cache
// evolves identically, and holds response k of the binary server
// byte-identical (as JSON) to response k of the JSON server, warm flags
// and pivot counts included.
func TestBinaryDifferentialWarm(t *testing.T) {
	family := jitterFamily(t, 18, 6, 23, 0.2)
	_, tsJSON := newTestServer(t, Config{})
	_, tsBin := newTestServer(t, Config{})
	for k, text := range family {
		inst := parse(t, text)
		_, rawV1 := post(t, tsJSON, "/v1/sne", map[string]any{"instance": text})
		code, status, body, msg := postBin(t, tsBin, "/v2/sne", wire.AppendSNERequest(nil, inst, wire.MethodLP))
		if code != 200 || status != wire.StatusOK {
			t.Fatalf("instance %d: %d/%d %q", k, code, status, msg)
		}
		var sr sneResponse
		if err := wire.DecodeSNEResponse(body, &sr); err != nil {
			t.Fatal(err)
		}
		if wantWarm := k > 0; sr.Warm != wantWarm {
			t.Fatalf("instance %d: warm=%v, want %v", k, sr.Warm, wantWarm)
		}
		if !bytes.Equal(jsonBytes(t, sr), bytes.TrimSpace(rawV1)) {
			t.Fatalf("instance %d drifted:\n v1 %s\n v2 %s", k, bytes.TrimSpace(rawV1), jsonBytes(t, sr))
		}
	}
}

// TestBinaryRejections exercises the /v2 failure paths: each must answer
// a well-formed error frame with the right HTTP and wire status.
func TestBinaryRejections(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	inst := parse(t, cycle5)
	good := wire.AppendSNERequest(nil, inst, wire.MethodLP)

	cases := []struct {
		name       string
		payload    []byte
		wantHTTP   int
		wantStatus byte
	}{
		{"bad version", append([]byte{42}, good[1:]...), http.StatusBadRequest, wire.StatusBadRequest},
		{"unknown method code", append([]byte{wire.Version, 99}, good[2:]...), http.StatusBadRequest, wire.StatusBadRequest},
		{"truncated", good[:len(good)/2], http.StatusBadRequest, wire.StatusBadRequest},
		{"trailing bytes", append(append([]byte{}, good...), 0xFF), http.StatusBadRequest, wire.StatusBadRequest},
		{"empty payload", nil, http.StatusBadRequest, wire.StatusBadRequest},
		{"oversized frame", make([]byte, 4096), http.StatusRequestEntityTooLarge, wire.StatusTooLarge},
	}
	for _, c := range cases {
		code, status, _, msg := postBin(t, ts, "/v2/sne", c.payload)
		if code != c.wantHTTP || status != c.wantStatus {
			t.Errorf("%s: %d/%d %q, want %d/%d", c.name, code, status, msg, c.wantHTTP, c.wantStatus)
		}
	}

	// GET is rejected with a frame too.
	resp, err := http.Get(ts.URL + "/v2/sne")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}

	// A length prefix past the cap is refused without reading the body.
	hdr := binary.LittleEndian.AppendUint32(nil, 1<<30)
	resp2, err := http.Post(ts.URL+"/v2/sne", "application/octet-stream", bytes.NewReader(hdr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("lying prefix: status %d, want 413", resp2.StatusCode)
	}
}

// TestBinaryTimeout: the /v2 solve budget is a context deadline — a
// solve running past it answers a 503 frame, and the server stays
// healthy.
func TestBinaryTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 20 * time.Millisecond})
	var slow atomic.Bool
	slow.Store(true)
	s.preSolve = func() {
		if slow.Load() {
			time.Sleep(200 * time.Millisecond)
		}
	}
	inst := parse(t, cycle5)
	payload := wire.AppendSNERequest(nil, inst, wire.MethodLP)
	code, status, _, msg := postBin(t, ts, "/v2/sne", payload)
	if code != http.StatusServiceUnavailable || status != wire.StatusUnavailable {
		t.Fatalf("timeout: %d/%d %q", code, status, msg)
	}
	if !strings.Contains(msg, "timed out") {
		t.Fatalf("timeout message %q", msg)
	}
	slow.Store(false)
	code, status, _, msg = postBin(t, ts, "/v2/sne", payload)
	if code != 200 || status != wire.StatusOK {
		t.Fatalf("post-timeout: %d/%d %q", code, status, msg)
	}
	if s.met.errs[epSNEV2].Load() == 0 {
		t.Error("timeout not counted as a v2 endpoint error")
	}
}

// TestMetricsV2AndRuntime: /v2 traffic lands on its own endpoint labels,
// endpoints with traffic export full cumulative histograms, and the
// runtime gauges are present.
func TestMetricsV2AndRuntime(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := parse(t, cycle5)
	for i := 0; i < 3; i++ {
		if code, status, _, msg := postBin(t, ts, "/v2/sne", wire.AppendSNERequest(nil, inst, wire.MethodLP)); code != 200 {
			t.Fatalf("request %d: %d/%d %q", i, code, status, msg)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	text := b.String()
	for _, want := range []string{
		`sned_requests_total{endpoint="sne_v2"} 3`,
		`sned_errors_total{endpoint="sne_v2"} 0`,
		`sned_latency_seconds_bucket{endpoint="sne_v2",le="+Inf"} 3`,
		`sned_latency_seconds_count{endpoint="sne_v2"} 3`,
		"sned_goroutines ",
		"sned_gc_runs_total ",
		"sned_gc_pause_seconds_total ",
		"sned_heap_alloc_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Idle endpoints export no bucket rows — the scrape stays compact.
	if strings.Contains(text, `sned_latency_seconds_bucket{endpoint="pos"`) {
		t.Error("idle endpoint exported histogram buckets")
	}
}

// TestMetricsZeroTraffic: a freshly started server must scrape cleanly —
// in particular the cache hit rate is 0, not NaN, with zero lookups.
func TestMetricsZeroTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	text := b.String()
	if !strings.Contains(text, "sned_basis_cache_hit_rate 0\n") {
		t.Errorf("zero-traffic hit rate not 0:\n%s", text)
	}
	if strings.Contains(text, "NaN") {
		t.Errorf("zero-traffic scrape contains NaN:\n%s", text)
	}
}

// TestBinaryCycleAllocs pins the allocation budget of the warm binary
// request cycle — decode, cached solve, encode — the unit the /v2
// protocol exists to shrink. The /v1 path costs thousands of allocations
// per request (text parse + encoding/json); the pin holds the binary
// cycle two orders of magnitude below that.
func TestBinaryCycleAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
	s := New(Config{})
	family := jitterFamily(t, 16, 1, 13, 0.15)
	inst := parse(t, family[0])
	payload := wire.AppendSNERequest(nil, inst, wire.MethodLP)
	ws := s.binws.Get().(*binWS)
	ctx := context.Background()
	for i := 0; i < 3; i++ { // warm the cache and every scratch buffer
		ws.out = ws.out[:0]
		if code := s.binCycle(ctx, epSNEV2, payload, ws); code != 200 {
			t.Fatalf("warmup cycle: %d", code)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		ws.out = ws.out[:0]
		if code := s.binCycle(ctx, epSNEV2, payload, ws); code != 200 {
			t.Fatalf("cycle: %d", code)
		}
	})
	const budget = 400
	if allocs > budget {
		t.Errorf("warm binary cycle: %.0f allocs/run, budget %d", allocs, budget)
	}
	t.Logf("warm binary cycle: %.0f allocs/run", allocs)
}

// postBinRaw posts a pre-framed body and returns the HTTP code plus the
// raw response body (which may hold several frames when pipelined).
func postBinRaw(t testing.TB, ts *httptest.Server, path string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// splitFrames cuts a response body into complete frames (length prefix
// included), failing on any torn framing.
func splitFrames(t testing.TB, raw []byte) [][]byte {
	t.Helper()
	var frames [][]byte
	for off := 0; off < len(raw); {
		if len(raw)-off < 4 {
			t.Fatalf("torn frame header at offset %d of %d", off, len(raw))
		}
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		if off+4+n > len(raw) {
			t.Fatalf("frame at %d promises %d bytes, body has %d left", off, n, len(raw)-off-4)
		}
		frames = append(frames, raw[off:off+4+n])
		off += 4 + n
	}
	return frames
}

// TestBinaryPipelined pins the pipelining contract: a body carrying
// several frames is answered frame for frame, byte-identical to sending
// the same stream as separate requests (twin servers, so cache state
// evolves identically), and a malformed frame mid-stream answers its
// own error frame without derailing the frames after it.
func TestBinaryPipelined(t *testing.T) {
	_, one := newTestServer(t, Config{})
	_, batch := newTestServer(t, Config{})
	family := jitterFamily(t, 14, 3, 7, 0.2)
	var order [][]byte
	for _, text := range family {
		order = append(order, wire.AppendSNERequest(nil, parse(t, text), wire.MethodLP))
	}
	// Splice a wrong-version frame between the warm-family requests.
	order = []([]byte){order[0], order[1], {42}, order[2]}

	var want [][]byte
	var body []byte
	for _, payload := range order {
		_, raw := postBinRaw(t, one, "/v2/sne", wire.AppendFrame(nil, payload))
		want = append(want, raw)
		body = wire.AppendFrame(body, payload)
	}
	code, raw := postBinRaw(t, batch, "/v2/sne", body)
	if code != http.StatusOK {
		t.Fatalf("pipelined POST: HTTP %d (first frame is valid, want 200)", code)
	}
	got := splitFrames(t, raw)
	if len(got) != len(order) {
		t.Fatalf("%d response frames for %d request frames", len(got), len(order))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("frame %d drifted from its single-request twin:\n one   %x\n batch %x", i, want[i], got[i])
		}
	}
}

// TestBinaryPipelinedTruncatedTail: a torn frame after a complete one
// answers the complete frame plus one terminal error frame.
func TestBinaryPipelinedTruncatedTail(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := parse(t, cycle5)
	body := wire.AppendFrame(nil, wire.AppendSNERequest(nil, inst, wire.MethodLP))
	body = append(body, 9, 0, 0, 0, 1, 2) // header promises 9 payload bytes, delivers 2
	code, raw := postBinRaw(t, ts, "/v2/sne", body)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200 (first frame valid)", code)
	}
	frames := splitFrames(t, raw)
	if len(frames) != 2 {
		t.Fatalf("%d response frames, want 2 (answer + terminal error)", len(frames))
	}
	st, _, _, err := wire.DecodeStatus(frames[0][4:])
	if err != nil || st != wire.StatusOK {
		t.Fatalf("first frame status %d err %v, want OK", st, err)
	}
	st, _, msg, err := wire.DecodeStatus(frames[1][4:])
	if err != nil || st != wire.StatusBadRequest {
		t.Fatalf("terminal frame status %d %q err %v, want BadRequest", st, msg, err)
	}
}

// TestBinaryPipelineFrameCap: a body over the frame cap is answered up
// to the cap plus one terminal too-large frame.
func TestBinaryPipelineFrameCap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	payload := wire.AppendCheckRequest(nil, parse(t, cycle5))
	var body []byte
	for i := 0; i < maxPipelineFrames+2; i++ {
		body = wire.AppendFrame(body, payload)
	}
	code, raw := postBinRaw(t, ts, "/v2/check", body)
	if code != http.StatusOK {
		t.Fatalf("HTTP %d, want 200", code)
	}
	frames := splitFrames(t, raw)
	if len(frames) != maxPipelineFrames+1 {
		t.Fatalf("%d response frames, want %d answered + 1 terminal", len(frames), maxPipelineFrames)
	}
	st, _, msg, err := wire.DecodeStatus(frames[len(frames)-1][4:])
	if err != nil || st != wire.StatusTooLarge {
		t.Fatalf("terminal frame status %d %q err %v, want TooLarge", st, msg, err)
	}
}
