package serve

import (
	"fmt"
	"math/bits"
	"runtime"
	"strings"
	"sync/atomic"
	"time"
)

// Endpoint indices for the per-endpoint counters. The _v2 rows are the
// binary-protocol twins of the /v1 endpoints.
const (
	epCheck = iota
	epSNE
	epSND
	epPoS
	epCheckV2
	epSNEV2
	epSNDV2
	epPoSV2
	nEndpoints
)

var endpointNames = [nEndpoints]string{"check", "sne", "snd", "pos", "check_v2", "sne_v2", "snd_v2", "pos_v2"}

// latBuckets is the number of power-of-two latency buckets: bucket i
// counts requests with latency in [2^i, 2^(i+1)) microseconds, so the
// histogram spans 1 µs .. ~17 min with zero allocation per observation.
const latBuckets = 30

// metrics is the server's operational ledger: atomic counters only, so
// the hot path never takes a lock, and /metrics renders a consistent-
// enough snapshot by reading them in one pass.
type metrics struct {
	reqs [nEndpoints]atomic.Int64
	errs [nEndpoints]atomic.Int64
	lat  [nEndpoints][latBuckets]atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	warmSolves  atomic.Int64
	coldSolves  atomic.Int64

	inflight atomic.Int64
	shed     atomic.Int64
	started  time.Time
}

func newMetrics() *metrics { return &metrics{started: time.Now()} }

// observe records one finished request on endpoint ep.
func (m *metrics) observe(ep int, d time.Duration, failed bool) {
	m.reqs[ep].Add(1)
	if failed {
		m.errs[ep].Add(1)
	}
	us := d.Microseconds()
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= latBuckets {
		b = latBuckets - 1
	}
	m.lat[ep][b].Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) of an endpoint's latency
// histogram in seconds, by walking the buckets and reporting the upper
// bound of the one holding the q-th observation. Zero when unobserved.
func (m *metrics) quantile(ep int, q float64) float64 {
	var counts [latBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = m.lat[ep][i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total)) + 1
	if rank > total {
		rank = total
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if seen >= rank {
			return float64(uint64(1)<<(i+1)) / 1e6 // bucket upper bound, µs → s
		}
	}
	return float64(uint64(1)<<latBuckets) / 1e6
}

// render emits the ledger in the flat `name{labels} value` text form
// scrapers expect. cacheLen is sampled by the caller (the cache knows its
// own size; the ledger only counts hits and misses). Besides the
// summary quantiles, each endpoint with traffic exports its full
// cumulative latency histogram (le = bucket upper bound in seconds), so
// scrapers can compute any quantile across scrapes instead of trusting
// the in-process estimate.
func (m *metrics) render(cacheLen int) string {
	var b strings.Builder
	for ep := 0; ep < nEndpoints; ep++ {
		name := endpointNames[ep]
		fmt.Fprintf(&b, "sned_requests_total{endpoint=%q} %d\n", name, m.reqs[ep].Load())
		fmt.Fprintf(&b, "sned_errors_total{endpoint=%q} %d\n", name, m.errs[ep].Load())
		fmt.Fprintf(&b, "sned_latency_seconds{endpoint=%q,quantile=\"0.5\"} %g\n", name, m.quantile(ep, 0.5))
		fmt.Fprintf(&b, "sned_latency_seconds{endpoint=%q,quantile=\"0.99\"} %g\n", name, m.quantile(ep, 0.99))
		cum := int64(0)
		for i := 0; i < latBuckets; i++ {
			cum += m.lat[ep][i].Load()
		}
		if cum == 0 {
			continue // no traffic: skip the 30 all-zero bucket rows
		}
		cum = 0
		for i := 0; i < latBuckets; i++ {
			cum += m.lat[ep][i].Load()
			fmt.Fprintf(&b, "sned_latency_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, fmt.Sprintf("%g", float64(uint64(1)<<(i+1))/1e6), cum)
		}
		fmt.Fprintf(&b, "sned_latency_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(&b, "sned_latency_seconds_count{endpoint=%q} %d\n", name, cum)
	}
	hits, misses := m.cacheHits.Load(), m.cacheMisses.Load()
	fmt.Fprintf(&b, "sned_basis_cache_hits_total %d\n", hits)
	fmt.Fprintf(&b, "sned_basis_cache_misses_total %d\n", misses)
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	fmt.Fprintf(&b, "sned_basis_cache_hit_rate %g\n", hitRate)
	fmt.Fprintf(&b, "sned_basis_cache_entries %d\n", cacheLen)
	fmt.Fprintf(&b, "sned_solves_total{mode=\"warm\"} %d\n", m.warmSolves.Load())
	fmt.Fprintf(&b, "sned_solves_total{mode=\"cold\"} %d\n", m.coldSolves.Load())
	fmt.Fprintf(&b, "sned_inflight_requests %d\n", m.inflight.Load())
	fmt.Fprintf(&b, "sned_shed_requests_total %d\n", m.shed.Load())
	fmt.Fprintf(&b, "sned_uptime_seconds %g\n", time.Since(m.started).Seconds())

	// Go runtime health: goroutine count and the GC ledger. ReadMemStats
	// stops the world for microseconds — fine at scrape rates, nowhere
	// near the request path.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(&b, "sned_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintf(&b, "sned_gc_runs_total %d\n", ms.NumGC)
	fmt.Fprintf(&b, "sned_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)/1e9)
	fmt.Fprintf(&b, "sned_heap_alloc_bytes %d\n", ms.HeapAlloc)
	return b.String()
}
