package wire

import (
	"encoding/binary"
	"fmt"
)

// The response structs below are the single source of truth for both
// protocols: internal/serve fills one struct per request and marshals
// it through encoding/json on /v1 or the appenders here on /v2, so the
// two renderings cannot drift — they are projections of the same value.
// Every float64 crosses the binary wire as its exact IEEE bits.

// Violation mirrors broadcast.Violation for the check endpoint.
type Violation struct {
	Node    int     `json:"node"`
	ViaEdge int     `json:"viaEdge"`
	Current float64 `json:"current"`
	Better  float64 `json:"better"`
	Gain    float64 `json:"gain"`
}

// CheckResponse answers /v1/check and /v2/check.
type CheckResponse struct {
	Equilibrium bool       `json:"equilibrium"`
	Weight      float64    `json:"weight"`
	Players     int64      `json:"players"`
	Violation   *Violation `json:"violation,omitempty"`
}

// EdgeSubsidy is one subsidized tree edge in an SNE answer.
type EdgeSubsidy struct {
	Edge    int     `json:"edge"`
	U       int     `json:"u"`
	V       int     `json:"v"`
	Weight  float64 `json:"weight"`
	Subsidy float64 `json:"subsidy"`
}

// SNEResponse answers /v1/sne and /v2/sne.
type SNEResponse struct {
	Method     string        `json:"method"`
	Cost       float64       `json:"cost"`
	Fraction   float64       `json:"fraction"` // of wgt(T); Theorem 6 caps the optimum at 1/e
	TreeWeight float64       `json:"treeWeight"`
	Pivots     int           `json:"pivots,omitempty"`
	Warm       bool          `json:"warm"` // solved by basis homotopy off the cache
	Subsidies  []EdgeSubsidy `json:"subsidies"`
}

// SNDResponse answers /v1/snd and /v2/snd.
type SNDResponse struct {
	Method      string  `json:"method"`
	FellBack    bool    `json:"fellBack"` // MST+LP infeasible, Theorem-6 fallback served
	Weight      float64 `json:"weight"`
	SubsidyCost float64 `json:"subsidyCost"`
	Budget      float64 `json:"budget"`
	Tree        []int   `json:"tree"`
}

// PoSResponse answers /v1/pos and /v2/pos.
type PoSResponse struct {
	OptWeight float64 `json:"optWeight"`
	BestEq    float64 `json:"bestEq"`    // zero until a descent converges
	PoS       float64 `json:"pos"`       // upper bound when converged > 0
	Converged int     `json:"converged"` // descents that reached an equilibrium
	Starts    int     `json:"starts"`
	Steps     int     `json:"steps"`
}

// ---- response encoders (the server side; all append-only) ----

// AppendError encodes a non-OK response payload: status byte plus the
// message.
func AppendError(dst []byte, status byte, msg string) []byte {
	dst = append(dst, status)
	dst = binary.AppendUvarint(dst, uint64(len(msg)))
	return append(dst, msg...)
}

// AppendCheckResponse encodes an OK check payload.
func AppendCheckResponse(dst []byte, resp *CheckResponse) []byte {
	dst = append(dst, StatusOK)
	dst = appendBool(dst, resp.Equilibrium)
	dst = appendFloat64(dst, resp.Weight)
	dst = binary.AppendVarint(dst, resp.Players)
	if resp.Violation == nil {
		return append(dst, 0)
	}
	v := resp.Violation
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(v.Node))
	dst = binary.AppendUvarint(dst, uint64(v.ViaEdge))
	dst = appendFloat64(dst, v.Current)
	dst = appendFloat64(dst, v.Better)
	return appendFloat64(dst, v.Gain)
}

// AppendSNEResponse encodes an OK sne payload. The method string must
// be one of the five /v1 names (it travels as one byte).
func AppendSNEResponse(dst []byte, resp *SNEResponse) []byte {
	code, ok := MethodCode(resp.Method)
	if !ok {
		panic(fmt.Sprintf("wire: unencodable sne method %q", resp.Method))
	}
	dst = append(dst, StatusOK, code)
	dst = appendFloat64(dst, resp.Cost)
	dst = appendFloat64(dst, resp.Fraction)
	dst = appendFloat64(dst, resp.TreeWeight)
	dst = binary.AppendUvarint(dst, uint64(resp.Pivots))
	dst = appendBool(dst, resp.Warm)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Subsidies)))
	for _, s := range resp.Subsidies {
		dst = binary.AppendUvarint(dst, uint64(s.Edge))
		dst = binary.AppendUvarint(dst, uint64(s.U))
		dst = binary.AppendUvarint(dst, uint64(s.V))
		dst = appendFloat64(dst, s.Weight)
		dst = appendFloat64(dst, s.Subsidy)
	}
	return dst
}

// AppendSNDResponse encodes an OK snd payload.
func AppendSNDResponse(dst []byte, resp *SNDResponse) []byte {
	code, ok := SNDMethodCode(resp.Method)
	if !ok {
		panic(fmt.Sprintf("wire: unencodable snd method %q", resp.Method))
	}
	dst = append(dst, StatusOK, code)
	dst = appendBool(dst, resp.FellBack)
	dst = appendFloat64(dst, resp.Weight)
	dst = appendFloat64(dst, resp.SubsidyCost)
	dst = appendFloat64(dst, resp.Budget)
	dst = binary.AppendUvarint(dst, uint64(len(resp.Tree)))
	for _, id := range resp.Tree {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

// AppendPoSResponse encodes an OK pos payload.
func AppendPoSResponse(dst []byte, resp *PoSResponse) []byte {
	dst = append(dst, StatusOK)
	dst = appendFloat64(dst, resp.OptWeight)
	dst = appendFloat64(dst, resp.BestEq)
	dst = appendFloat64(dst, resp.PoS)
	dst = binary.AppendUvarint(dst, uint64(resp.Converged))
	dst = binary.AppendUvarint(dst, uint64(resp.Starts))
	return binary.AppendUvarint(dst, uint64(resp.Steps))
}

// ---- response decoders (the client side: loadgen, tests) ----

// DecodeStatus splits a response payload into its status, the OK body
// (when status is StatusOK) and the error message (otherwise).
func DecodeStatus(payload []byte) (status byte, body []byte, msg string, err error) {
	r := &reader{b: payload}
	status = r.byte()
	if r.bad {
		return 0, nil, "", errTruncated
	}
	if status == StatusOK {
		return status, payload[1:], "", nil
	}
	n := r.uint()
	if r.bad || n > r.remaining() {
		return 0, nil, "", errTruncated
	}
	msg = string(r.b[r.off : r.off+n])
	r.off += n
	if err := r.done(); err != nil {
		return 0, nil, "", err
	}
	return status, nil, msg, nil
}

// DecodeCheckResponse decodes an OK check body (as returned by
// DecodeStatus) into resp, reusing its Violation slot when present.
func DecodeCheckResponse(body []byte, resp *CheckResponse) error {
	r := &reader{b: body}
	var ok bool
	resp.Equilibrium, _ = r.bool()
	resp.Weight = r.float64()
	resp.Players = r.varint()
	hasViol, ok := r.bool()
	if !ok {
		return errTruncated
	}
	if !hasViol {
		resp.Violation = nil
		return r.done()
	}
	if resp.Violation == nil {
		resp.Violation = &Violation{}
	}
	v := resp.Violation
	v.Node = r.uint()
	v.ViaEdge = r.uint()
	v.Current = r.float64()
	v.Better = r.float64()
	v.Gain = r.float64()
	return r.done()
}

// DecodeSNEResponse decodes an OK sne body into resp, reusing the
// Subsidies scratch.
func DecodeSNEResponse(body []byte, resp *SNEResponse) error {
	r := &reader{b: body}
	method, ok := MethodName(r.byte())
	if r.bad || !ok {
		return fmt.Errorf("wire: bad sne method byte")
	}
	resp.Method = method
	resp.Cost = r.float64()
	resp.Fraction = r.float64()
	resp.TreeWeight = r.float64()
	resp.Pivots = r.uint()
	resp.Warm, _ = r.bool()
	n := r.uint()
	if r.bad {
		return errTruncated
	}
	// Each subsidy costs ≥ 19 body bytes (three 1-byte uvarints + two
	// 8-byte floats).
	if n > r.remaining()/19 {
		return fmt.Errorf("wire: subsidy count %d exceeds payload", n)
	}
	if resp.Subsidies == nil {
		resp.Subsidies = []EdgeSubsidy{} // non-nil, so JSON renders [] like the server struct
	}
	resp.Subsidies = resp.Subsidies[:0]
	for i := 0; i < n; i++ {
		var s EdgeSubsidy
		s.Edge = r.uint()
		s.U = r.uint()
		s.V = r.uint()
		s.Weight = r.float64()
		s.Subsidy = r.float64()
		if r.bad {
			return errTruncated
		}
		resp.Subsidies = append(resp.Subsidies, s)
	}
	return r.done()
}

// DecodeSNDResponse decodes an OK snd body into resp, reusing the Tree
// scratch.
func DecodeSNDResponse(body []byte, resp *SNDResponse) error {
	r := &reader{b: body}
	method, ok := SNDMethodName(r.byte())
	if r.bad || !ok {
		return fmt.Errorf("wire: bad snd method byte")
	}
	resp.Method = method
	resp.FellBack, _ = r.bool()
	resp.Weight = r.float64()
	resp.SubsidyCost = r.float64()
	resp.Budget = r.float64()
	n := r.uint()
	if r.bad {
		return errTruncated
	}
	if n > r.remaining() {
		return fmt.Errorf("wire: tree count %d exceeds payload", n)
	}
	if resp.Tree == nil {
		resp.Tree = []int{}
	}
	resp.Tree = resp.Tree[:0]
	for i := 0; i < n; i++ {
		resp.Tree = append(resp.Tree, r.uint())
	}
	return r.done()
}

// DecodePoSResponse decodes an OK pos body into resp.
func DecodePoSResponse(body []byte, resp *PoSResponse) error {
	r := &reader{b: body}
	resp.OptWeight = r.float64()
	resp.BestEq = r.float64()
	resp.PoS = r.float64()
	resp.Converged = r.uint()
	resp.Starts = r.uint()
	resp.Steps = r.uint()
	return r.done()
}
