package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// FuzzWireRoundTrip throws arbitrary bytes at every request decoder
// (truncated frames, lying length fields and hostile counts must fail
// cleanly, never panic, never over-allocate) and checks two round-trip
// laws: an accepted request re-encodes and re-decodes to the same
// instance, and response structs built from the fuzzer's float bits —
// NaN and ±Inf included — survive the codec bit for bit.
func FuzzWireRoundTrip(f *testing.F) {
	in := randomInstance(f, rand.New(rand.NewSource(11)), 6)
	f.Add(AppendSNERequest(nil, in, MethodLP))
	f.Add(AppendCheckRequest(nil, in))
	f.Add(AppendSNDRequest(nil, in, 2.5, true, 1000))
	f.Add(AppendPoSRequest(nil, in, 4, 0, 9))
	f.Add(AppendSNERequest(nil, in, MethodFull)[:10])
	f.Add([]byte{Version, MethodLP, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F})
	f.Add(append(AppendError(nil, StatusUnavailable, "timed out"), 1, 2, 3))
	f.Add(binary.LittleEndian.AppendUint32(nil, 0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d ReqDecoder

		// Frame reader: arbitrary bytes, small cap — must not panic and
		// must respect the cap.
		if payload, err := ReadFrame(bytes.NewReader(data), nil, 1<<16); err == nil && len(payload) > 1<<16 {
			t.Fatalf("ReadFrame returned %d bytes past the cap", len(payload))
		}

		// Every request decoder must survive the raw input.
		if inst, err := d.Check(data); err == nil {
			enc := AppendCheckRequest(nil, inst)
			if _, err := d.Check(enc); err != nil {
				t.Fatalf("accepted check request failed to re-decode: %v", err)
			}
		}
		if inst, method, err := d.SNE(data); err == nil {
			code, ok := MethodCode(method)
			if !ok {
				t.Fatalf("decoder produced unknown method %q", method)
			}
			enc := AppendSNERequest(nil, inst, code)
			inst2, method2, err := d.SNE(enc)
			if err != nil || method2 != method {
				t.Fatalf("accepted sne request failed to re-decode: %v (method %q)", err, method2)
			}
			if inst2.Game.G.N() != inst.Game.G.N() || inst2.Game.G.M() != inst.Game.G.M() {
				t.Fatal("sne round trip changed the graph shape")
			}
			for id := 0; id < inst.Game.G.M(); id++ {
				if math.Float64bits(inst2.Game.G.Weight(id)) != math.Float64bits(inst.Game.G.Weight(id)) {
					t.Fatalf("sne round trip changed weight bits of edge %d", id)
				}
			}
		}
		if _, _, _, _, err := d.SND(data); err == nil { //nolint:dogsled // probing for panics
			_ = err
		}
		if _, _, _, _, err := d.PoS(data); err == nil {
			_ = err
		}

		// Response statuses decode or fail cleanly on anything.
		if status, body, _, err := DecodeStatus(data); err == nil && status == StatusOK {
			var c CheckResponse
			var s SNEResponse
			var n SNDResponse
			var p PoSResponse
			_ = DecodeCheckResponse(body, &c)
			_ = DecodeSNEResponse(body, &s)
			_ = DecodeSNDResponse(body, &n)
			_ = DecodePoSResponse(body, &p)
		}

		// Response round trip with the fuzzer's float bits: carve the
		// input into float64s (NaN/Inf arise naturally) and require exact
		// bit preservation through encode → decode.
		floats := make([]float64, 0, len(data)/8)
		for off := 0; off+8 <= len(data) && len(floats) < 16; off += 8 {
			floats = append(floats, math.Float64frombits(binary.LittleEndian.Uint64(data[off:])))
		}
		if len(floats) >= 3 {
			sne := SNEResponse{Method: "lp", Cost: floats[0], Fraction: floats[1], TreeWeight: floats[2], Pivots: len(data), Warm: len(data)%2 == 0}
			for j := 3; j < len(floats); j++ {
				sne.Subsidies = append(sne.Subsidies, EdgeSubsidy{Edge: j, U: j, V: j + 1, Weight: floats[j], Subsidy: floats[j]})
			}
			var got SNEResponse
			_, body, _, err := DecodeStatus(AppendSNEResponse(nil, &sne))
			if err != nil {
				t.Fatalf("encoded sne response failed status decode: %v", err)
			}
			if err := DecodeSNEResponse(body, &got); err != nil {
				t.Fatalf("encoded sne response failed decode: %v", err)
			}
			if math.Float64bits(got.Cost) != math.Float64bits(sne.Cost) ||
				math.Float64bits(got.Fraction) != math.Float64bits(sne.Fraction) ||
				math.Float64bits(got.TreeWeight) != math.Float64bits(sne.TreeWeight) ||
				len(got.Subsidies) != len(sne.Subsidies) {
				t.Fatalf("sne response drifted: %+v != %+v", got, sne)
			}
			for j := range sne.Subsidies {
				if math.Float64bits(got.Subsidies[j].Subsidy) != math.Float64bits(sne.Subsidies[j].Subsidy) {
					t.Fatalf("subsidy %d bits drifted", j)
				}
			}

			pos := PoSResponse{OptWeight: floats[0], BestEq: floats[1], PoS: floats[2], Converged: len(data) % 7, Starts: 1, Steps: len(data)}
			var gotPoS PoSResponse
			_, body, _, err = DecodeStatus(AppendPoSResponse(nil, &pos))
			if err != nil {
				t.Fatalf("encoded pos response failed status decode: %v", err)
			}
			if err := DecodePoSResponse(body, &gotPoS); err != nil {
				t.Fatalf("encoded pos response failed decode: %v", err)
			}
			if math.Float64bits(gotPoS.OptWeight) != math.Float64bits(pos.OptWeight) ||
				math.Float64bits(gotPoS.BestEq) != math.Float64bits(pos.BestEq) {
				t.Fatalf("pos response drifted: %+v != %+v", gotPoS, pos)
			}
		}
	})
}
