package wire

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
)

// randomInstance builds a parsed instance with overridden
// multiplicities and an explicit tree.
func randomInstance(t testing.TB, rng *rand.Rand, n int) *instancefile.Instance {
	t.Helper()
	g := graph.RandomConnected(rng, n, 0.4, 0.5, 4)
	mult := make([]int64, n)
	for v := range mult {
		mult[v] = int64(1 + rng.Intn(3))
	}
	mult[0] = 0
	bg, err := broadcast.NewGameMult(g, 0, mult)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := graph.MST(g)
	if err != nil {
		t.Fatal(err)
	}
	return &instancefile.Instance{Game: bg, Tree: tree}
}

// sameInstance asserts two instances carry identical graphs, roots,
// multiplicities and trees, weight bits included.
func sameInstance(t *testing.T, a, b *instancefile.Instance) {
	t.Helper()
	ga, gb := a.Game.G, b.Game.G
	if ga.N() != gb.N() || ga.M() != gb.M() || a.Game.Root != b.Game.Root {
		t.Fatalf("shape (%d,%d,root %d) != (%d,%d,root %d)", ga.N(), ga.M(), a.Game.Root, gb.N(), gb.M(), b.Game.Root)
	}
	for id := 0; id < ga.M(); id++ {
		ea, eb := ga.Edge(id), gb.Edge(id)
		if ea.U != eb.U || ea.V != eb.V || math.Float64bits(ea.W) != math.Float64bits(eb.W) {
			t.Fatalf("edge %d: %+v != %+v", id, ea, eb)
		}
	}
	for v := range a.Game.Mult {
		if a.Game.Mult[v] != b.Game.Mult[v] {
			t.Fatalf("mult[%d]: %d != %d", v, a.Game.Mult[v], b.Game.Mult[v])
		}
	}
	if len(a.Tree) != len(b.Tree) {
		t.Fatalf("tree %v != %v", a.Tree, b.Tree)
	}
	for i := range a.Tree {
		if a.Tree[i] != b.Tree[i] {
			t.Fatalf("tree %v != %v", a.Tree, b.Tree)
		}
	}
}

// TestRequestRoundTrips: every request encoder must decode back to the
// same instance and parameters, and the binary instance must equal the
// text-format parse of the same instance.
func TestRequestRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var d ReqDecoder
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(t, rng, 2+rng.Intn(12))

		// Cross-format: binary decode ≡ text parse.
		var buf bytes.Buffer
		if err := instancefile.Write(&buf, in); err != nil {
			t.Fatal(err)
		}
		ref, err := instancefile.Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}

		got, err := d.Check(AppendCheckRequest(nil, in))
		if err != nil {
			t.Fatalf("trial %d check: %v", trial, err)
		}
		sameInstance(t, got, ref)

		methodCode := byte(trial % int(nMethods))
		got, method, err := d.SNE(AppendSNERequest(nil, in, methodCode))
		if err != nil {
			t.Fatalf("trial %d sne: %v", trial, err)
		}
		wantMethod, _ := MethodName(methodCode)
		if method != wantMethod {
			t.Fatalf("trial %d: method %q != %q", trial, method, wantMethod)
		}
		sameInstance(t, got, ref)

		budget := rng.Float64() * 10
		got, b2, exact, limit, err := d.SND(AppendSNDRequest(nil, in, budget, trial%2 == 0, 1000+trial))
		if err != nil {
			t.Fatalf("trial %d snd: %v", trial, err)
		}
		if math.Float64bits(b2) != math.Float64bits(budget) || exact != (trial%2 == 0) || limit != 1000+trial {
			t.Fatalf("trial %d: snd params (%v,%v,%d)", trial, b2, exact, limit)
		}
		sameInstance(t, got, ref)

		got, starts, steps, seed, err := d.PoS(AppendPoSRequest(nil, in, 4, 100, int64(-5*trial)))
		if err != nil {
			t.Fatalf("trial %d pos: %v", trial, err)
		}
		if starts != 4 || steps != 100 || seed != int64(-5*trial) {
			t.Fatalf("trial %d: pos params (%d,%d,%d)", trial, starts, steps, seed)
		}
		sameInstance(t, got, ref)
	}
}

// TestRequestRejections: malformed payloads must fail cleanly, never
// panic, and never allocate proportional to a lying count.
func TestRequestRejections(t *testing.T) {
	in := randomInstance(t, rand.New(rand.NewSource(1)), 5)
	valid := AppendSNERequest(nil, in, MethodLP)
	var d ReqDecoder
	cases := map[string][]byte{
		"empty":            {},
		"bad version":      {9, 0},
		"truncated header": valid[:2],
		"truncated edges":  valid[:len(valid)/2],
		"trailing bytes":   append(append([]byte{}, valid...), 0xFF),
		"method code":      {Version, 99, 1, 0, 0, 0, 0},
		// A frame declaring 2^30 edges with no bytes to back them.
		"lying edge count": {Version, 0, 4, 0, 0x80, 0x80, 0x80, 0x80, 0x04, 0},
		// n > m+1 can never span.
		"unspannable":  AppendSNERequest(nil, in, MethodLP)[:0],
		"self loop":    {Version, 0, 2, 0, 10, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"zero nodes":   {Version, 0, 0, 0, 0, 0, 0},
		"galaxy nodes": {Version, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0},
	}
	cases["unspannable"] = func() []byte {
		b := []byte{Version, MethodLP}
		b = append(b, 5, 0, 0) // n=5, root 0, m=0
		return b
	}()
	for name, payload := range cases {
		if _, _, err := d.SNE(payload); err == nil {
			t.Errorf("%s: decoder accepted %v", name, payload)
		}
	}
}

// TestResponseRoundTrips: every response struct must survive the binary
// codec bit for bit, including NaN and ±Inf floats.
func TestResponseRoundTrips(t *testing.T) {
	weird := []float64{0, 1.5, -0.0, math.NaN(), math.Inf(1), math.Inf(-1), math.MaxFloat64, 5e-324}
	feq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

	for i, w := range weird {
		check := CheckResponse{Equilibrium: i%2 == 0, Weight: w, Players: int64(i) - 3}
		if i%3 == 0 {
			check.Violation = &Violation{Node: i, ViaEdge: 2 * i, Current: w, Better: -w, Gain: w * 2}
		}
		var got CheckResponse
		status, body, _, err := DecodeStatus(AppendCheckResponse(nil, &check))
		if err != nil || status != StatusOK {
			t.Fatalf("check %d: status %d err %v", i, status, err)
		}
		if err := DecodeCheckResponse(body, &got); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
		if got.Equilibrium != check.Equilibrium || !feq(got.Weight, check.Weight) || got.Players != check.Players ||
			(got.Violation == nil) != (check.Violation == nil) {
			t.Fatalf("check %d: %+v != %+v", i, got, check)
		}
		if check.Violation != nil && (got.Violation.Node != check.Violation.Node || !feq(got.Violation.Gain, check.Violation.Gain)) {
			t.Fatalf("check %d violation: %+v != %+v", i, got.Violation, check.Violation)
		}

		sne := SNEResponse{Method: methodNames[i%int(nMethods)], Cost: w, Fraction: -w, TreeWeight: w * 3, Pivots: i * 7, Warm: i%2 == 1}
		for j := 0; j < i; j++ {
			sne.Subsidies = append(sne.Subsidies, EdgeSubsidy{Edge: j, U: j + 1, V: j + 2, Weight: w, Subsidy: float64(j) * w})
		}
		var gotSNE SNEResponse
		_, body, _, err = DecodeStatus(AppendSNEResponse(nil, &sne))
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeSNEResponse(body, &gotSNE); err != nil {
			t.Fatalf("sne %d: %v", i, err)
		}
		if gotSNE.Method != sne.Method || !feq(gotSNE.Cost, sne.Cost) || !feq(gotSNE.Fraction, sne.Fraction) ||
			!feq(gotSNE.TreeWeight, sne.TreeWeight) || gotSNE.Pivots != sne.Pivots || gotSNE.Warm != sne.Warm ||
			len(gotSNE.Subsidies) != len(sne.Subsidies) {
			t.Fatalf("sne %d: %+v != %+v", i, gotSNE, sne)
		}
		for j := range sne.Subsidies {
			if gotSNE.Subsidies[j].Edge != sne.Subsidies[j].Edge || !feq(gotSNE.Subsidies[j].Subsidy, sne.Subsidies[j].Subsidy) {
				t.Fatalf("sne %d subsidy %d: %+v != %+v", i, j, gotSNE.Subsidies[j], sne.Subsidies[j])
			}
		}

		snd := SNDResponse{Method: sndMethodNames[i%int(nSNDMethods)], FellBack: i%2 == 0, Weight: w, SubsidyCost: w / 2, Budget: w * 4, Tree: []int{1, 5, i}}
		var gotSND SNDResponse
		_, body, _, err = DecodeStatus(AppendSNDResponse(nil, &snd))
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeSNDResponse(body, &gotSND); err != nil {
			t.Fatalf("snd %d: %v", i, err)
		}
		if gotSND.Method != snd.Method || gotSND.FellBack != snd.FellBack || !feq(gotSND.Weight, snd.Weight) ||
			!feq(gotSND.SubsidyCost, snd.SubsidyCost) || !feq(gotSND.Budget, snd.Budget) || len(gotSND.Tree) != 3 ||
			gotSND.Tree[2] != i {
			t.Fatalf("snd %d: %+v != %+v", i, gotSND, snd)
		}

		pos := PoSResponse{OptWeight: w, BestEq: -w, PoS: w * w, Converged: i, Starts: i + 1, Steps: i * 10}
		var gotPoS PoSResponse
		_, body, _, err = DecodeStatus(AppendPoSResponse(nil, &pos))
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodePoSResponse(body, &gotPoS); err != nil {
			t.Fatalf("pos %d: %v", i, err)
		}
		if !feq(gotPoS.OptWeight, pos.OptWeight) || !feq(gotPoS.BestEq, pos.BestEq) || !feq(gotPoS.PoS, pos.PoS) ||
			gotPoS.Converged != pos.Converged || gotPoS.Starts != pos.Starts || gotPoS.Steps != pos.Steps {
			t.Fatalf("pos %d: %+v != %+v", i, gotPoS, pos)
		}
	}
}

// TestErrorResponses: non-OK statuses carry their message through.
func TestErrorResponses(t *testing.T) {
	for _, status := range []byte{StatusBadRequest, StatusUnprocessable, StatusUnavailable, StatusInternal, StatusTooLarge} {
		payload := AppendError(nil, status, "why it failed")
		got, body, msg, err := DecodeStatus(payload)
		if err != nil || got != status || body != nil || msg != "why it failed" {
			t.Fatalf("status %d: got %d body %v msg %q err %v", status, got, body, msg, err)
		}
	}
}

// TestFrameRoundTrip and size-cap enforcement.
func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("some payload bytes")
	frame := AppendFrame(nil, payload)
	got, err := ReadFrame(bytes.NewReader(frame), nil, 1024)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q err %v", got, err)
	}
	// Oversized length prefix: rejected before reading the payload.
	if _, err := ReadFrame(bytes.NewReader(frame), nil, 4); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated payload.
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), nil, 1024); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Buffer reuse: a big enough scratch is used in place.
	buf := make([]byte, 0, 64)
	got, err = ReadFrame(bytes.NewReader(frame), buf, 1024)
	if err != nil || &got[0] != &buf[:1][0] {
		t.Fatalf("scratch not reused (err %v)", err)
	}
}

// TestMethodTables: the wire enums and the /v1 strings must stay in
// lockstep in both directions.
func TestMethodTables(t *testing.T) {
	for c := byte(0); c < nMethods; c++ {
		name, ok := MethodName(c)
		if !ok {
			t.Fatalf("method %d unnamed", c)
		}
		back, ok := MethodCode(name)
		if !ok || back != c {
			t.Fatalf("method %q: code %d != %d", name, back, c)
		}
	}
	if _, ok := MethodName(nMethods); ok {
		t.Fatal("out-of-range method named")
	}
	if _, ok := MethodCode("sorcery"); ok {
		t.Fatal("unknown method encoded")
	}
	for c := byte(0); c < nSNDMethods; c++ {
		name, ok := SNDMethodName(c)
		if !ok {
			t.Fatalf("snd method %d unnamed", c)
		}
		back, ok := SNDMethodCode(name)
		if !ok || back != c {
			t.Fatalf("snd method %q: code %d != %d", name, back, c)
		}
	}
}
