// Package wire is the compact binary protocol of the sned /v2 endpoints:
// length-prefixed frames carrying varint/fixed64-coded instances,
// solutions and subsidy vectors. It exists because the /v1 JSON path
// dominates the served hot loop — text parse plus encoding/json costs
// thousands of allocations per request — while a binary request decodes
// through reusable scratch into the same instancefile.Assemble funnel
// the text parser uses, and a response encodes by appending to a pooled
// byte slice.
//
// Framing: every message is one frame — a 4-byte little-endian uint32
// payload length followed by the payload. Request payloads open with a
// version byte (Version); response payloads open with a status byte
// (StatusOK or an error status followed by a uvarint-length message).
//
// Scalars: unsigned fields are uvarints, signed fields are zigzag
// varints (encoding/binary), and every float64 travels as its exact
// IEEE bits in 8 little-endian bytes — NaN and ±Inf round-trip bit for
// bit, and a decoded response is bit-identical to the JSON rendering of
// the same struct (Go's JSON float encoding round-trips too, so the
// /v1-vs-/v2 differential suite can hold both to math.Float64bits
// equality).
//
// The response structs in this package are shared with the JSON layer:
// internal/serve marshals the very same values through encoding/json on
// /v1 and through the appenders here on /v2, which is what pins the two
// protocols to each other by construction.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
)

// Version is the request payload format version. A request opening with
// any other byte is rejected, so the format can evolve.
const Version = 1

// Response status bytes. Every non-OK status is followed by a
// uvarint-length error message; the serve layer maps them onto the same
// HTTP codes the JSON endpoints use.
const (
	StatusOK            byte = 0
	StatusBadRequest    byte = 1 // malformed frame or request (HTTP 400)
	StatusUnprocessable byte = 2 // well-formed but unsolvable (HTTP 422)
	StatusUnavailable   byte = 3 // solve budget exceeded (HTTP 503)
	StatusInternal      byte = 4 // verification failure (HTTP 500)
	StatusTooLarge      byte = 5 // frame exceeds the body cap (HTTP 413)
)

// SNE method codes, mirroring the /v1 "method" strings.
const (
	MethodLP byte = iota
	MethodTheorem6
	MethodAON
	MethodGreedy
	MethodFull
	nMethods
)

var methodNames = [nMethods]string{"lp", "theorem6", "aon", "greedy", "full"}

// MethodName maps an SNE method code to its /v1 string.
func MethodName(code byte) (string, bool) {
	if code >= nMethods {
		return "", false
	}
	return methodNames[code], true
}

// MethodCode maps a /v1 SNE method string to its wire code.
func MethodCode(name string) (byte, bool) {
	for c, n := range methodNames {
		if n == name {
			return byte(c), true
		}
	}
	return 0, false
}

// SND method codes, mirroring snd.MethodExact/MethodMSTLP/MethodTheorem6.
const (
	SNDExact byte = iota
	SNDMSTLP
	SNDTheorem6
	nSNDMethods
)

var sndMethodNames = [nSNDMethods]string{"exact", "mst+lp", "theorem6"}

// SNDMethodName maps an SND method code to its /v1 string.
func SNDMethodName(code byte) (string, bool) {
	if code >= nSNDMethods {
		return "", false
	}
	return sndMethodNames[code], true
}

// SNDMethodCode maps a /v1 SND method string to its wire code.
func SNDMethodCode(name string) (byte, bool) {
	for c, n := range sndMethodNames {
		if n == name {
			return byte(c), true
		}
	}
	return 0, false
}

// maxNodes caps the node count a request may declare, bounding the
// allocation a single frame can demand before spanning-connectivity
// (which itself forces n ≤ edges+1) is verified.
const maxNodes = 1 << 21

// ErrFrameTooLarge is returned by ReadFrame when the length prefix
// exceeds the caller's cap; servers map it to StatusTooLarge / HTTP 413.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size cap")

// ---- framing ----

// AppendFrame appends the 4-byte little-endian length prefix and the
// payload to dst.
func AppendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadFrame reads one frame from r into buf (grown as needed) and
// returns the payload. Lengths above max fail with ErrFrameTooLarge
// before any payload is read, so oversized frames cost no allocation.
func ReadFrame(r io.Reader, buf []byte, max int) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: reading frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("wire: reading frame payload: %w", err)
	}
	return buf, nil
}

// ---- scalar primitives ----

func appendFloat64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

var errTruncated = errors.New("wire: truncated payload")

// reader walks a payload with a sticky error, so decode paths read
// field after field and check once.
type reader struct {
	b   []byte
	off int
	bad bool
}

func (r *reader) fail() { r.bad = true }

func (r *reader) byte() byte {
	if r.bad || r.off >= len(r.b) {
		r.fail()
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) bool() (bool, bool) {
	switch r.byte() {
	case 0:
		return false, true
	case 1:
		return true, true
	default:
		r.fail()
		return false, false
	}
}

func (r *reader) uvarint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) varint() int64 {
	if r.bad {
		return 0
	}
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

// uint reads a uvarint that must fit a non-negative int.
func (r *reader) uint() int {
	v := r.uvarint()
	if uint64(int(v)) != v || int(v) < 0 {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *reader) float64() float64 {
	if r.bad || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

// remaining reports the unread byte count — the basis for the
// count-vs-bytes sanity caps that keep a malicious uvarint from forcing
// a huge allocation.
func (r *reader) remaining() int { return len(r.b) - r.off }

// done requires full, exact consumption of the payload.
func (r *reader) done() error {
	if r.bad {
		return errTruncated
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

// ---- instance codec ----

// AppendInstance encodes a parsed instance: node count, root, the edge
// list (endpoints + exact weight bits), the non-default multiplicities,
// and the target tree. It is the binary twin of instancefile.Write.
func AppendInstance(dst []byte, in *instancefile.Instance) []byte {
	g := in.Game.G
	dst = binary.AppendUvarint(dst, uint64(g.N()))
	dst = binary.AppendUvarint(dst, uint64(in.Game.Root))
	dst = binary.AppendUvarint(dst, uint64(g.M()))
	for _, e := range g.Edges() {
		dst = binary.AppendUvarint(dst, uint64(e.U))
		dst = binary.AppendUvarint(dst, uint64(e.V))
		dst = appendFloat64(dst, e.W)
	}
	nOverride := 0
	for v, m := range in.Game.Mult {
		if v != in.Game.Root && m != 1 {
			nOverride++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(nOverride))
	for v, m := range in.Game.Mult {
		if v != in.Game.Root && m != 1 {
			dst = binary.AppendUvarint(dst, uint64(v))
			dst = binary.AppendVarint(dst, m)
		}
	}
	if in.Tree == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	dst = binary.AppendUvarint(dst, uint64(len(in.Tree)))
	for _, id := range in.Tree {
		dst = binary.AppendUvarint(dst, uint64(id))
	}
	return dst
}

// ReqDecoder decodes request payloads through reusable scratch: the
// edge, multiplicity and tree tables persist between calls, so a pooled
// decoder on the serving hot path allocates only what the assembled
// instance itself owns. Not safe for concurrent use — pool instances.
type ReqDecoder struct {
	edges    []graph.Edge
	multNode []int
	multVal  []int64
	tree     []int
}

// instance decodes the shared instance section and funnels it through
// instancefile.Assemble — the same defaulting and validation gate the
// text parser uses, so both formats accept exactly the same instances.
func (d *ReqDecoder) instance(r *reader) (*instancefile.Instance, error) {
	n := r.uint()
	root := r.uint()
	m := r.uint()
	if r.bad {
		return nil, errTruncated
	}
	if n < 1 || n > maxNodes {
		return nil, fmt.Errorf("wire: node count %d out of range [1,%d]", n, maxNodes)
	}
	if n > m+1 {
		return nil, fmt.Errorf("wire: %d nodes cannot be spanned by %d edges", n, m)
	}
	// Each edge costs ≥ 10 payload bytes (two 1-byte uvarints + 8 weight
	// bytes), so a declared count beyond remaining/10 is a lie.
	if m > r.remaining()/10 {
		return nil, fmt.Errorf("wire: edge count %d exceeds payload", m)
	}
	d.edges = d.edges[:0]
	for i := 0; i < m; i++ {
		u := r.uint()
		v := r.uint()
		w := r.float64()
		if r.bad {
			return nil, errTruncated
		}
		if u >= n || v >= n || u == v || w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("wire: malformed edge %d (%d,%d,%v)", i, u, v, w)
		}
		d.edges = append(d.edges, graph.Edge{U: u, V: v, W: w})
	}
	k := r.uint()
	if r.bad {
		return nil, errTruncated
	}
	if k > r.remaining()/2 {
		return nil, fmt.Errorf("wire: mult count %d exceeds payload", k)
	}
	d.multNode = d.multNode[:0]
	d.multVal = d.multVal[:0]
	for i := 0; i < k; i++ {
		v := r.uint()
		mu := r.varint()
		if r.bad {
			return nil, errTruncated
		}
		if v >= n {
			return nil, fmt.Errorf("wire: mult node %d out of range", v)
		}
		d.multNode = append(d.multNode, v)
		d.multVal = append(d.multVal, mu)
	}
	var tree []int
	hasTree, ok := r.bool()
	if !ok {
		return nil, errTruncated
	}
	if hasTree {
		t := r.uint()
		if r.bad {
			return nil, errTruncated
		}
		if t > r.remaining() {
			return nil, fmt.Errorf("wire: tree count %d exceeds payload", t)
		}
		d.tree = d.tree[:0]
		for i := 0; i < t; i++ {
			id := r.uint()
			if r.bad {
				return nil, errTruncated
			}
			if id >= m {
				return nil, fmt.Errorf("wire: tree edge %d out of range", id)
			}
			d.tree = append(d.tree, id)
		}
		tree = d.tree
		if tree == nil {
			tree = []int{} // present-but-empty must not select the MST default
		}
	}
	return instancefile.Assemble(graph.NewBulk(n, d.edges), root, d.multNode, d.multVal, tree)
}

func (d *ReqDecoder) version(r *reader) error {
	if v := r.byte(); r.bad || v != Version {
		return fmt.Errorf("wire: unsupported request version %d", v)
	}
	return nil
}

// Check decodes a /v2/check request: version, instance.
func (d *ReqDecoder) Check(payload []byte) (*instancefile.Instance, error) {
	r := &reader{b: payload}
	if err := d.version(r); err != nil {
		return nil, err
	}
	inst, err := d.instance(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return inst, nil
}

// SNE decodes a /v2/sne request: version, method code, instance. The
// method comes back as its /v1 string (a static — the decode allocates
// nothing for it).
func (d *ReqDecoder) SNE(payload []byte) (*instancefile.Instance, string, error) {
	r := &reader{b: payload}
	if err := d.version(r); err != nil {
		return nil, "", err
	}
	code := r.byte()
	if r.bad {
		return nil, "", errTruncated
	}
	method, ok := MethodName(code)
	if !ok {
		return nil, "", fmt.Errorf("wire: unknown sne method code %d", code)
	}
	inst, err := d.instance(r)
	if err != nil {
		return nil, "", err
	}
	if err := r.done(); err != nil {
		return nil, "", err
	}
	return inst, method, nil
}

// SND decodes a /v2/snd request: version, exact flag, budget, tree
// limit, instance.
func (d *ReqDecoder) SND(payload []byte) (inst *instancefile.Instance, budget float64, exact bool, treeLimit int, err error) {
	r := &reader{b: payload}
	if err = d.version(r); err != nil {
		return nil, 0, false, 0, err
	}
	exact, _ = r.bool()
	budget = r.float64()
	limit := r.varint()
	if r.bad {
		return nil, 0, false, 0, errTruncated
	}
	if int64(int(limit)) != limit {
		return nil, 0, false, 0, fmt.Errorf("wire: tree limit %d out of range", limit)
	}
	inst, err = d.instance(r)
	if err != nil {
		return nil, 0, false, 0, err
	}
	if err = r.done(); err != nil {
		return nil, 0, false, 0, err
	}
	return inst, budget, exact, int(limit), nil
}

// PoS decodes a /v2/pos request: version, starts, max steps, seed,
// instance.
func (d *ReqDecoder) PoS(payload []byte) (inst *instancefile.Instance, starts, maxSteps int, seed int64, err error) {
	r := &reader{b: payload}
	if err = d.version(r); err != nil {
		return nil, 0, 0, 0, err
	}
	starts = r.uint()
	maxSteps = r.uint()
	seed = r.varint()
	if r.bad {
		return nil, 0, 0, 0, errTruncated
	}
	inst, err = d.instance(r)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	if err = r.done(); err != nil {
		return nil, 0, 0, 0, err
	}
	return inst, starts, maxSteps, seed, nil
}

// ---- request encoders (the client side: loadgen, tests) ----

// AppendCheckRequest encodes a /v2/check request payload.
func AppendCheckRequest(dst []byte, in *instancefile.Instance) []byte {
	dst = append(dst, Version)
	return AppendInstance(dst, in)
}

// AppendSNERequest encodes a /v2/sne request payload.
func AppendSNERequest(dst []byte, in *instancefile.Instance, method byte) []byte {
	dst = append(dst, Version, method)
	return AppendInstance(dst, in)
}

// AppendSNDRequest encodes a /v2/snd request payload.
func AppendSNDRequest(dst []byte, in *instancefile.Instance, budget float64, exact bool, treeLimit int) []byte {
	dst = append(dst, Version)
	dst = appendBool(dst, exact)
	dst = appendFloat64(dst, budget)
	dst = binary.AppendVarint(dst, int64(treeLimit))
	return AppendInstance(dst, in)
}

// AppendPoSRequest encodes a /v2/pos request payload.
func AppendPoSRequest(dst []byte, in *instancefile.Instance, starts, maxSteps int, seed int64) []byte {
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(starts))
	dst = binary.AppendUvarint(dst, uint64(maxSteps))
	dst = binary.AppendVarint(dst, seed)
	return AppendInstance(dst, in)
}
