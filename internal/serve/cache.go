package serve

import (
	"container/list"
	"sync"
	"time"

	"netdesign/internal/lp"
)

// basisCache is the server's warm-start store: a bounded, sharded LRU
// from lp.Model structure fingerprints to the most recent optimal basis
// seen for that structure. Requests over "nearby" instances — identical
// network, drifting weights, the E22 jitter family — share a fingerprint,
// so a hit turns a cold simplex solve into a few dual pivots of
// ResolveFrom homotopy. Sharding keeps the lock a per-shard affair under
// concurrent request load; eviction is per shard, so the bound is
// capacity ± one entry per shard during concurrent inserts.
type basisCache struct {
	shards []cacheShard
	mask   uint64
	ttl    time.Duration // <= 0: entries never expire
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]*list.Element
	ll  *list.List // front = most recently used

	// door is the admission doorkeeper: fingerprints seen exactly once
	// while the shard was full. A new fingerprint only displaces a
	// resident basis on its second sighting, so a stream of one-shot
	// structures (an adversarial cold mix) cannot evict the hot
	// jitter-family bases that actually re-occur. While the shard has
	// room, everything is admitted immediately — the doorkeeper only
	// gates eviction.
	door map[uint64]struct{}
}

type cacheEntry struct {
	fp uint64
	b  *lp.Basis
	at time.Time // Put time, for TTL expiry
}

// newBasisCache builds a cache holding up to capacity bases across
// shardCount shards (rounded up to a power of two). capacity <= 0
// disables caching entirely: every lookup misses and nothing is stored —
// the cold-path reference mode the load benchmarks compare against.
// Entries older than ttl are dropped lazily on lookup; ttl <= 0 means
// no expiry.
func newBasisCache(capacity, shardCount int, ttl time.Duration) *basisCache {
	if capacity <= 0 {
		return nil
	}
	if shardCount < 1 {
		shardCount = 1
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &basisCache{shards: make([]cacheShard, n), mask: uint64(n - 1), ttl: ttl}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, m: make(map[uint64]*list.Element, perShard), ll: list.New()}
	}
	return c
}

// shard picks the home shard of a fingerprint. Fingerprints are FNV
// hashes — well mixed already — but one more multiply decorrelates the
// low bits the mask keeps from any structure FNV leaves behind.
func (c *basisCache) shard(fp uint64) *cacheShard {
	return &c.shards[(fp*0x9e3779b97f4a7c15)>>32&c.mask]
}

// Get returns the cached basis for fp, or nil. A nil receiver (caching
// disabled) always misses. An entry past the TTL is dropped and counts
// as a miss — expiry is lazy, so a structure that stopped arriving
// lingers only until its next (failed) lookup or its LRU eviction.
func (c *basisCache) Get(fp uint64) *lp.Basis {
	if c == nil {
		return nil
	}
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[fp]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if c.ttl > 0 && time.Since(e.at) > c.ttl {
		sh.ll.Remove(el)
		delete(sh.m, fp)
		return nil
	}
	sh.ll.MoveToFront(el)
	return e.b
}

// Put stores b as the freshest basis for fp. A resident fingerprint is
// always refreshed in place. A new fingerprint is admitted immediately
// while the shard has room; once full it must pass the doorkeeper — the
// second sighting admits it and evicts the LRU entry, the first only
// registers it. A nil receiver or nil basis is a no-op (the dense
// oracle and non-LP solvers produce no basis).
func (c *basisCache) Put(fp uint64, b *lp.Basis) {
	if c == nil || b == nil {
		return
	}
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[fp]; ok {
		e := el.Value.(*cacheEntry)
		e.b = b
		e.at = time.Now()
		sh.ll.MoveToFront(el)
		return
	}
	if sh.ll.Len() >= sh.cap {
		if _, seen := sh.door[fp]; !seen {
			// First sighting under pressure: register, don't evict for it.
			if sh.door == nil || len(sh.door) >= doorCap(sh.cap) {
				sh.door = make(map[uint64]struct{}, 8)
			}
			sh.door[fp] = struct{}{}
			return
		}
		delete(sh.door, fp)
		if back := sh.ll.Back(); back != nil {
			sh.ll.Remove(back)
			delete(sh.m, back.Value.(*cacheEntry).fp)
		}
	}
	sh.m[fp] = sh.ll.PushFront(&cacheEntry{fp: fp, b: b, at: time.Now()})
}

// doorCap bounds the doorkeeper set; past it the set is reset wholesale,
// which loses pending first-sightings but keeps memory O(capacity) no
// matter how many distinct structures an adversary streams.
func doorCap(shardCap int) int {
	if n := 8 * shardCap; n > 64 {
		return n
	}
	return 64
}

// Len reports the number of cached bases across all shards.
func (c *basisCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
