package serve

import (
	"container/list"
	"sync"

	"netdesign/internal/lp"
)

// basisCache is the server's warm-start store: a bounded, sharded LRU
// from lp.Model structure fingerprints to the most recent optimal basis
// seen for that structure. Requests over "nearby" instances — identical
// network, drifting weights, the E22 jitter family — share a fingerprint,
// so a hit turns a cold simplex solve into a few dual pivots of
// ResolveFrom homotopy. Sharding keeps the lock a per-shard affair under
// concurrent request load; eviction is per shard, so the bound is
// capacity ± one entry per shard during concurrent inserts.
type basisCache struct {
	shards []cacheShard
	mask   uint64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]*list.Element
	ll  *list.List // front = most recently used
}

type cacheEntry struct {
	fp uint64
	b  *lp.Basis
}

// newBasisCache builds a cache holding up to capacity bases across
// shardCount shards (rounded up to a power of two). capacity <= 0
// disables caching entirely: every lookup misses and nothing is stored —
// the cold-path reference mode the load benchmarks compare against.
func newBasisCache(capacity, shardCount int) *basisCache {
	if capacity <= 0 {
		return nil
	}
	if shardCount < 1 {
		shardCount = 1
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	c := &basisCache{shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{cap: perShard, m: make(map[uint64]*list.Element, perShard), ll: list.New()}
	}
	return c
}

// shard picks the home shard of a fingerprint. Fingerprints are FNV
// hashes — well mixed already — but one more multiply decorrelates the
// low bits the mask keeps from any structure FNV leaves behind.
func (c *basisCache) shard(fp uint64) *cacheShard {
	return &c.shards[(fp*0x9e3779b97f4a7c15)>>32&c.mask]
}

// Get returns the cached basis for fp, or nil. A nil receiver (caching
// disabled) always misses.
func (c *basisCache) Get(fp uint64) *lp.Basis {
	if c == nil {
		return nil
	}
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.m[fp]
	if !ok {
		return nil
	}
	sh.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).b
}

// Put stores b as the freshest basis for fp, evicting the least recently
// used entry of the shard when full. A nil receiver or nil basis is a
// no-op (the dense oracle and non-LP solvers produce no basis).
func (c *basisCache) Put(fp uint64, b *lp.Basis) {
	if c == nil || b == nil {
		return
	}
	sh := c.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[fp]; ok {
		el.Value.(*cacheEntry).b = b
		sh.ll.MoveToFront(el)
		return
	}
	if sh.ll.Len() >= sh.cap {
		if back := sh.ll.Back(); back != nil {
			sh.ll.Remove(back)
			delete(sh.m, back.Value.(*cacheEntry).fp)
		}
	}
	sh.m[fp] = sh.ll.PushFront(&cacheEntry{fp: fp, b: b})
}

// Len reports the number of cached bases across all shards.
func (c *basisCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.ll.Len()
		sh.mu.Unlock()
	}
	return n
}
