//go:build race

package serve

// raceEnabled mirrors the race detector's build tag: allocation pins are
// meaningless under its instrumentation and are skipped.
const raceEnabled = true
