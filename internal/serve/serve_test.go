package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
	"netdesign/internal/snd"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// ---- helpers ----

// instanceText serializes a game + target tree in the CLI text format.
func instanceText(t testing.TB, bg *broadcast.Game, tree []int) string {
	t.Helper()
	var buf bytes.Buffer
	if err := instancefile.Write(&buf, &instancefile.Instance{Game: bg, Tree: tree}); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// jitterFamily builds an E22-style nearby-instance stream: one base
// graph, each instance scaling every non-MST edge upward — the MST (and
// therefore the LP structure fingerprint) provably never changes, so a
// warm server resolves the whole stream by basis homotopy.
func jitterFamily(t testing.TB, n, count int, seed int64, jitter float64) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := graph.RandomConnected(rng, n, 0.3, 0.5, 3)
	mst, err := graph.MST(base)
	if err != nil {
		t.Fatal(err)
	}
	onTree := make([]bool, base.M())
	for _, id := range mst {
		onTree[id] = true
	}
	baseW := make([]float64, base.M())
	for id := 0; id < base.M(); id++ {
		baseW[id] = base.Weight(id)
	}
	out := make([]string, count)
	for k := 0; k < count; k++ {
		for id := 0; id < base.M(); id++ {
			if !onTree[id] {
				base.SetWeight(id, baseW[id]*(1+jitter*rng.Float64()))
			}
		}
		bg, err := broadcast.NewGame(base, 0)
		if err != nil {
			t.Fatal(err)
		}
		out[k] = instanceText(t, bg, mst)
	}
	return out
}

// parse round-trips an instance text the way the server does.
func parse(t testing.TB, text string) *instancefile.Instance {
	t.Helper()
	inst, err := instancefile.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t testing.TB, ts *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decode[T any](t testing.TB, raw []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("decoding %s: %v", raw, err)
	}
	return v
}

const cycle5 = "nodes 5\nedge 0 1 1\nedge 1 2 1\nedge 2 3 1\nedge 3 4 1\nedge 4 0 1\nroot 0\n"

// ---- handler suite ----

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	if resp.StatusCode != 200 || strings.TrimSpace(b.String()) != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, b.String())
	}
}

func TestCheckEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// The 5-cycle MST (a path) is NOT an equilibrium without subsidies:
	// the leaf prefers the closed cycle edge.
	resp, raw := post(t, ts, "/v1/check", map[string]any{"instance": cycle5})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[checkResponse](t, raw)
	inst := parse(t, cycle5)
	st, err := inst.State()
	if err != nil {
		t.Fatal(err)
	}
	wantEq := st.FindViolation(nil) == nil
	if got.Equilibrium != wantEq || got.Weight != st.Weight() {
		t.Fatalf("check response %+v; direct equilibrium=%v weight=%v", got, wantEq, st.Weight())
	}
	if !got.Equilibrium {
		v := st.FindViolation(nil)
		if got.Violation == nil || got.Violation.Node != v.Node || got.Violation.ViaEdge != v.ViaEdge {
			t.Fatalf("violation %+v, want %+v", got.Violation, v)
		}
	}
}

// ---- differential suite: server ≡ batch CLI solver paths, bit for bit ----

// sneDirect computes the reference result exactly the way cmd/sne does.
func sneDirect(t *testing.T, st *broadcast.State, method string) *sne.Result {
	t.Helper()
	var res *sne.Result
	var err error
	switch method {
	case "lp":
		res, err = sne.SolveBroadcastLP(st)
	case "theorem6":
		b, cert, serr := subsidy.Enforce(st)
		err = serr
		if serr == nil {
			res = &sne.Result{Subsidy: b, Cost: cert.Total}
		}
	case "aon":
		res, err = sne.SolveAON(st, sne.AONOptions{})
	case "greedy":
		res, err = sne.GreedyAON(st)
	case "full":
		res = sne.FullSubsidy(st)
	}
	if err != nil {
		t.Fatalf("direct %s: %v", method, err)
	}
	return res
}

// assertSNEBitIdentical holds a server response to the exact float64 bits
// of the direct solver result.
func assertSNEBitIdentical(t *testing.T, got sneResponse, st *broadcast.State, ref *sne.Result, label string) {
	t.Helper()
	if math.Float64bits(got.Cost) != math.Float64bits(ref.Cost) {
		t.Fatalf("%s: cost %x (%v) != direct %x (%v)", label,
			math.Float64bits(got.Cost), got.Cost, math.Float64bits(ref.Cost), ref.Cost)
	}
	want := map[int]float64{}
	for _, id := range st.Tree.EdgeIDs {
		if v := ref.Subsidy.At(id); v > 0 {
			want[id] = v
		}
	}
	if len(got.Subsidies) != len(want) {
		t.Fatalf("%s: %d subsidized edges, direct has %d", label, len(got.Subsidies), len(want))
	}
	for _, es := range got.Subsidies {
		if math.Float64bits(es.Subsidy) != math.Float64bits(want[es.Edge]) {
			t.Fatalf("%s: edge %d subsidy %v != direct %v", label, es.Edge, es.Subsidy, want[es.Edge])
		}
	}
}

// TestSNEDifferentialColdMatchesCLI: with caching disabled (every solve
// cold, like the batch CLI) the server must reproduce the cmd/sne solver
// paths bit for bit, across methods and instances.
func TestSNEDifferentialColdMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCap: -1})
	rng := rand.New(rand.NewSource(42))
	methods := []string{"lp", "theorem6", "aon", "greedy", "full"}
	for trial := 0; trial < 6; trial++ {
		n := 8 + rng.Intn(8)
		g := graph.RandomConnected(rng, n, 0.35, 0.5, 3)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		mst, err := bg.MST()
		if err != nil {
			t.Fatal(err)
		}
		text := instanceText(t, bg, mst)
		inst := parse(t, text)
		for _, method := range methods {
			st, err := inst.State()
			if err != nil {
				t.Fatal(err)
			}
			resp, raw := post(t, ts, "/v1/sne", map[string]any{"instance": text, "method": method})
			if resp.StatusCode != 200 {
				t.Fatalf("trial %d %s: status %d: %s", trial, method, resp.StatusCode, raw)
			}
			got := decode[sneResponse](t, raw)
			if got.Warm {
				t.Fatalf("trial %d %s: cache-disabled server reported a warm solve", trial, method)
			}
			ref := sneDirect(t, st, method)
			assertSNEBitIdentical(t, got, st, ref, fmt.Sprintf("trial %d %s", trial, method))
		}
	}
}

// TestSNEDifferentialWarmMatchesChain: on a nearby-instance stream the
// cached server path must be bit-identical to driving a
// sne.BroadcastLPChain by hand — the server adds routing, caching and
// pooling around the chain, never numerics. And the warm cost must agree
// with the cold optimum to LP tolerance (the homotopy changes the pivot
// path, not the optimum).
func TestSNEDifferentialWarmMatchesChain(t *testing.T) {
	family := jitterFamily(t, 20, 8, 7, 0.2)
	_, ts := newTestServer(t, Config{})
	chain := sne.NewBroadcastLPChain()
	for k, text := range family {
		inst := parse(t, text)
		st, err := inst.State()
		if err != nil {
			t.Fatal(err)
		}
		ref, err := chain.Solve(st) // the hand-driven warm reference
		if err != nil {
			t.Fatal(err)
		}
		resp, raw := post(t, ts, "/v1/sne", map[string]any{"instance": text})
		if resp.StatusCode != 200 {
			t.Fatalf("instance %d: status %d: %s", k, resp.StatusCode, raw)
		}
		got := decode[sneResponse](t, raw)
		if wantWarm := k > 0; got.Warm != wantWarm {
			t.Fatalf("instance %d: warm=%v, want %v", k, got.Warm, wantWarm)
		}
		st2, err := inst.State()
		if err != nil {
			t.Fatal(err)
		}
		assertSNEBitIdentical(t, got, st2, ref, fmt.Sprintf("warm instance %d", k))

		cold, err := sne.SolveBroadcastLP(st2)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Cost-cold.Cost) > 1e-9*(1+math.Abs(cold.Cost)) {
			t.Fatalf("instance %d: warm cost %v drifted from cold optimum %v", k, got.Cost, cold.Cost)
		}
	}
}

// TestSNDDifferentialMatchesCLI: the design endpoint must reproduce the
// cmd/snd decision procedure — heuristic with Theorem-6 fallback, exact
// enumeration on request, and the CLI's exact error text on infeasible
// budgets.
func TestSNDDifferentialMatchesCLI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	inst := parse(t, cycle5)

	// Heuristic, feasible: matches snd.HeuristicAuto.
	ref, method, fellBack, err := snd.HeuristicAuto(inst.Game, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := post(t, ts, "/v1/snd", map[string]any{"instance": cycle5, "budget": 2.0})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[sndResponse](t, raw)
	if got.Method != method || got.FellBack != fellBack ||
		math.Float64bits(got.Weight) != math.Float64bits(ref.Weight) ||
		math.Float64bits(got.SubsidyCost) != math.Float64bits(ref.SubsidyCost) {
		t.Fatalf("snd heuristic: %+v != direct {%s %v %v %v}", got, method, fellBack, ref.Weight, ref.SubsidyCost)
	}

	// Exact: matches snd.SolveExact, tree included.
	refX, err := snd.SolveExact(inst.Game, 2.0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw = post(t, ts, "/v1/snd", map[string]any{"instance": cycle5, "budget": 2.0, "exact": true, "treelimit": 100000})
	if resp.StatusCode != 200 {
		t.Fatalf("exact status %d: %s", resp.StatusCode, raw)
	}
	gotX := decode[sndResponse](t, raw)
	if gotX.Method != snd.MethodExact ||
		math.Float64bits(gotX.Weight) != math.Float64bits(refX.Weight) ||
		math.Float64bits(gotX.SubsidyCost) != math.Float64bits(refX.SubsidyCost) ||
		len(gotX.Tree) != len(refX.Tree) {
		t.Fatalf("snd exact: %+v != direct %+v", gotX, refX)
	}

	// Infeasible: the CLI surfaces the sentinel's text; so must we.
	resp, raw = post(t, ts, "/v1/snd", map[string]any{"instance": cycle5, "budget": 1.0})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible status %d: %s", resp.StatusCode, raw)
	}
	e := decode[map[string]string](t, raw)
	if e["error"] != snd.ErrBudgetInfeasible.Error() {
		t.Fatalf("infeasible error %q, want %q", e["error"], snd.ErrBudgetInfeasible)
	}
}

// TestPoSDifferentialMatchesEstimator: same seed, same estimate, bit for
// bit.
func TestPoSDifferentialMatchesEstimator(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	family := jitterFamily(t, 16, 1, 3, 0.1)
	inst := parse(t, family[0])
	ref, err := broadcast.EstimatePoS(inst.Game, nil, 4, 0, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := post(t, ts, "/v1/pos", map[string]any{"instance": family[0], "starts": 4, "seed": 9})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	got := decode[posResponse](t, raw)
	if got.Converged != ref.Converged || got.Starts != ref.Starts || got.Steps != ref.Steps ||
		math.Float64bits(got.OptWeight) != math.Float64bits(ref.OptWeight) {
		t.Fatalf("pos %+v != direct %+v", got, ref)
	}
	if ref.Converged > 0 && math.Float64bits(got.BestEq) != math.Float64bits(ref.BestEq) {
		t.Fatalf("pos bestEq %v != %v", got.BestEq, ref.BestEq)
	}
}

// ---- rejection cases ----

func TestRejectionCases(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 2048})
	cases := []struct {
		name string
		do   func() (*http.Response, []byte)
		want int
	}{
		{"GET on API", func() (*http.Response, []byte) {
			resp, err := http.Get(ts.URL + "/v1/sne")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, nil
		}, http.StatusMethodNotAllowed},
		{"bad JSON", func() (*http.Response, []byte) {
			resp, err := http.Post(ts.URL+"/v1/sne", "application/json", strings.NewReader("{nope"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, nil
		}, http.StatusBadRequest},
		{"unknown field", func() (*http.Response, []byte) {
			r, b := post(t, ts, "/v1/sne", map[string]any{"instance": cycle5, "bogus": 1})
			return r, b
		}, http.StatusBadRequest},
		{"missing instance", func() (*http.Response, []byte) {
			r, b := post(t, ts, "/v1/sne", map[string]any{"method": "lp"})
			return r, b
		}, http.StatusBadRequest},
		{"malformed instance", func() (*http.Response, []byte) {
			r, b := post(t, ts, "/v1/sne", map[string]any{"instance": "nodes 3\nedge 0 9 1\nroot 0\n"})
			return r, b
		}, http.StatusUnprocessableEntity},
		{"unknown method", func() (*http.Response, []byte) {
			r, b := post(t, ts, "/v1/sne", map[string]any{"instance": cycle5, "method": "sorcery"})
			return r, b
		}, http.StatusBadRequest},
		{"oversized body", func() (*http.Response, []byte) {
			big := cycle5 + "# " + strings.Repeat("x", 4096) + "\n"
			r, b := post(t, ts, "/v1/sne", map[string]any{"instance": big})
			return r, b
		}, http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := c.do()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, resp.StatusCode, c.want, body)
		}
	}
}

// TestTimeoutRejection: a solve running past the request budget must be
// answered 503 and counted as an error, while the server stays healthy.
func TestTimeoutRejection(t *testing.T) {
	s, ts := newTestServer(t, Config{Timeout: 20 * time.Millisecond})
	// The timed-out handler goroutine keeps running after the 503 is sent,
	// so the hook stays installed and is switched off via an atomic flag.
	var slow atomic.Bool
	slow.Store(true)
	s.preSolve = func() {
		if slow.Load() {
			time.Sleep(200 * time.Millisecond)
		}
	}
	resp, raw := post(t, ts, "/v1/sne", map[string]any{"instance": cycle5})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (body %s)", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "timed out") {
		t.Fatalf("timeout body %s", raw)
	}
	slow.Store(false)
	// The daemon must still answer after a timeout.
	resp, raw = post(t, ts, "/v1/sne", map[string]any{"instance": cycle5})
	if resp.StatusCode != 200 {
		t.Fatalf("post-timeout status %d: %s", resp.StatusCode, raw)
	}
	if s.met.errs[epSNE].Load() == 0 {
		t.Error("timeout not counted as an endpoint error")
	}
}

// ---- metrics ----

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	family := jitterFamily(t, 16, 4, 5, 0.15)
	for _, text := range family {
		if resp, raw := post(t, ts, "/v1/sne", map[string]any{"instance": text}); resp.StatusCode != 200 {
			t.Fatalf("status %d: %s", resp.StatusCode, raw)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	b.ReadFrom(resp.Body)
	text := b.String()
	for _, want := range []string{
		`sned_requests_total{endpoint="sne"} 4`,
		"sned_basis_cache_hits_total 3",
		"sned_basis_cache_misses_total 1",
		"sned_basis_cache_hit_rate 0.75",
		"sned_basis_cache_entries 1",
		`sned_solves_total{mode="warm"} 3`,
		`sned_solves_total{mode="cold"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, `sned_latency_seconds{endpoint="sne",quantile="0.99"}`) {
		t.Errorf("metrics missing p99 line:\n%s", text)
	}
}

// ---- concurrency ----

// TestConcurrentCacheStress hammers one server with parallel clients over
// a jitter family (all sharing a fingerprint) mixed with singleton
// structures (cache churn), asserting every answer equals the cold
// optimum of its instance. Run under -race this is the data-race gate for
// the cache, the metrics ledger and the pooled chains.
func TestConcurrentCacheStress(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheCap: 8, CacheShards: 2})
	family := jitterFamily(t, 14, 6, 11, 0.25)
	singles := jitterFamily(t, 10, 3, 13, 0.25)
	texts := append(append([]string{}, family...), singles...)

	// Cold reference optimum per instance.
	refCost := make([]float64, len(texts))
	for i, text := range texts {
		st, err := parse(t, text).State()
		if err != nil {
			t.Fatal(err)
		}
		res, err := sne.SolveBroadcastLP(st)
		if err != nil {
			t.Fatal(err)
		}
		refCost[i] = res.Cost
	}

	const clients = 8
	const perClient = 12
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + c)))
			for i := 0; i < perClient; i++ {
				k := rng.Intn(len(texts))
				resp, raw := post(t, ts, "/v1/sne", map[string]any{"instance": texts[k]})
				if resp.StatusCode != 200 {
					errCh <- fmt.Errorf("client %d: status %d: %s", c, resp.StatusCode, raw)
					return
				}
				got := decode[sneResponse](t, raw)
				if math.Abs(got.Cost-refCost[k]) > 1e-9*(1+math.Abs(refCost[k])) {
					errCh <- fmt.Errorf("client %d instance %d: cost %v != cold %v", c, k, got.Cost, refCost[k])
					return
				}
			}
			errCh <- nil
		}(c)
	}
	wg.Wait()
	for c := 0; c < clients; c++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

// ---- cache unit tests ----

func TestBasisCacheLRUEviction(t *testing.T) {
	// One shard of capacity 2: inserting a third distinct fingerprint
	// evicts the least recently used. The fingerprint is the key; the
	// cache never inspects the basis, so one real basis serves all slots.
	st, err := parse(t, cycle5).State()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sne.SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Basis
	if b == nil {
		t.Fatal("LP solve returned no basis")
	}

	c := newBasisCache(2, 1, 0)
	c.Put(1, b)
	c.Put(2, b)
	if c.Get(1) == nil { // touch 1 → 2 becomes LRU
		t.Fatal("fp 1 missing before eviction")
	}
	// Admission under pressure: a new fingerprint's first sighting only
	// registers at the doorkeeper — nothing is evicted for it.
	c.Put(3, b)
	if c.Len() != 2 {
		t.Fatalf("cache len %d after first sighting, want 2", c.Len())
	}
	if c.Get(3) != nil {
		t.Error("fp 3 admitted on first sighting under pressure")
	}
	if c.Get(1) == nil || c.Get(2) == nil {
		t.Error("resident entry evicted by a first sighting")
	}
	c.Get(1) // touch 1 again → 2 is LRU
	// Second sighting admits and evicts the LRU entry.
	c.Put(3, b)
	if c.Len() != 2 {
		t.Fatalf("cache len %d, want 2", c.Len())
	}
	if c.Get(2) != nil {
		t.Error("LRU entry 2 survived second-sighting eviction")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Error("recently used entries evicted")
	}
	// Update-in-place must not grow the cache.
	c.Put(3, b)
	if c.Len() != 2 {
		t.Fatalf("update-in-place changed len to %d", c.Len())
	}
}

func TestBasisCacheTTL(t *testing.T) {
	st, err := parse(t, cycle5).State()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sne.SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Basis

	c := newBasisCache(4, 1, 5*time.Millisecond)
	c.Put(1, b)
	if c.Get(1) == nil {
		t.Fatal("fresh entry missing")
	}
	time.Sleep(10 * time.Millisecond)
	if c.Get(1) != nil {
		t.Error("expired entry served")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry still resident: len %d", c.Len())
	}
	// Re-putting after expiry restores service.
	c.Put(1, b)
	if c.Get(1) == nil {
		t.Error("re-put after expiry missing")
	}
}

func TestBasisCacheAdmissionAdversarialMix(t *testing.T) {
	// The scenario the doorkeeper exists for: a hot jitter family (one
	// fingerprint, recurring) interleaved with a stream of one-shot
	// structures, against a cache too small to hold them all. Plain LRU
	// would evict the hot basis on every burst of singles — hit rate
	// collapses to ~0. With admission, singles are never seen twice, so
	// they never displace the resident basis: every jitter revisit after
	// the first must hit.
	st, err := parse(t, cycle5).State()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sne.SolveBroadcastLP(st)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Basis

	c := newBasisCache(2, 1, 0)
	const hotFP = uint64(7)
	hits, lookups := 0, 0
	oneShot := uint64(1000)
	for round := 0; round < 50; round++ {
		if c.Get(hotFP) != nil {
			hits++
		}
		lookups++
		c.Put(hotFP, b)
		// Burst of never-repeating structures between hot touches.
		for j := 0; j < 3; j++ {
			oneShot++
			if c.Get(oneShot) != nil {
				t.Fatalf("one-shot fingerprint %d hit", oneShot)
			}
			c.Put(oneShot, b)
		}
	}
	if hits < lookups-1 {
		t.Fatalf("hot fingerprint hit %d/%d lookups; admission failed to protect it", hits, lookups)
	}
}

func TestBasisCacheDisabled(t *testing.T) {
	var c *basisCache // capacity <= 0 → nil cache
	if c.Get(42) != nil {
		t.Error("nil cache returned a basis")
	}
	c.Put(42, nil)
	if c.Len() != 0 {
		t.Error("nil cache has entries")
	}
	if newBasisCache(0, 4, 0) != nil || newBasisCache(-1, 4, 0) != nil {
		t.Error("capacity <= 0 should disable the cache")
	}
}
