package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"time"

	"netdesign/internal/serve/wire"
)

// maxPipelineFrames caps how many request frames one /v2 body may carry.
// Pipelining exists to amortize the per-HTTP-request overhead (header
// parse, context setup, syscalls) across solves; the cap bounds the
// response buffer a single pooled workspace can be made to hold.
const maxPipelineFrames = 256

// binWS is one /v2 request's worth of reusable state: the wire decoder's
// parse tables, the frame read buffer, the response build buffer, and the
// response structs themselves. Pooled on the Server, a steady-state
// binary request allocates only what the solver's answer owns.
type binWS struct {
	dec   wire.ReqDecoder
	frame []byte // request frame payload buffer (grown once, then reused)
	out   []byte // response frame build buffer

	check checkResponse
	viol  violationJSON
	sne   sneResponse
	snd   sndResponse
	pos   posResponse
}

// binAPI wraps one binary endpoint with the same operational envelope
// api gives the JSON endpoints — inflight gauge, per-endpoint count,
// latency and error metrics — but without http.TimeoutHandler: the
// response is built in a pooled buffer and written once, and the solve
// budget is a context deadline checked after the solve, so nothing
// buffers a second copy of the response.
func (s *Server) binAPI(ep int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		if s.overloaded(n) {
			s.met.shed.Add(1)
			s.met.observe(ep, 0, true)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Retry-After", "1")
			ws := s.binws.Get().(*binWS)
			binFail(w, ws, http.StatusServiceUnavailable, wire.StatusUnavailable, "server overloaded, retry later")
			s.binws.Put(ws)
			return
		}
		t0 := time.Now()
		code := s.serveBinary(ep, w, r)
		s.met.observe(ep, time.Since(t0), code >= 400)
	})
}

// serveBinary runs one binary request end to end and returns the HTTP
// status it wrote. A body may pipeline several frames: each is answered
// with its own response frame, in order, in one HTTP round trip.
func (s *Server) serveBinary(ep int, w http.ResponseWriter, r *http.Request) int {
	ws := s.binws.Get().(*binWS)
	defer s.binws.Put(ws)
	w.Header().Set("Content-Type", "application/octet-stream")
	if r.Method != http.MethodPost {
		return binFail(w, ws, http.StatusMethodNotAllowed, wire.StatusBadRequest, "POST only")
	}
	// The frame length prefix enforces the per-frame cap before any
	// payload is read; the MaxBytesReader (pipelined worst case) only
	// backstops clients whose prefixes lie short.
	body := http.MaxBytesReader(w, r.Body, (s.cfg.MaxBodyBytes+4)*maxPipelineFrames)
	payload, err := wire.ReadFrame(body, ws.frame, int(s.cfg.MaxBodyBytes))
	if err != nil {
		if errors.Is(err, wire.ErrFrameTooLarge) {
			return binFail(w, ws, http.StatusRequestEntityTooLarge, wire.StatusTooLarge, err.Error())
		}
		return binFail(w, ws, http.StatusBadRequest, wire.StatusBadRequest, err.Error())
	}
	ws.frame = payload

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	ws.out = ws.out[:0]
	code := s.binCycle(ctx, ep, payload, ws)
	// Pipelining: further frames in the same body are answered with
	// further response frames. The HTTP status belongs to the first
	// frame (single-frame semantics are unchanged); later frames report
	// through their own status bytes, and a framing error mid-stream
	// answers one terminal error frame in place of everything after it.
	for n := 1; ; n++ {
		payload, err = wire.ReadFrame(body, ws.frame, int(s.cfg.MaxBodyBytes))
		if err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end of body
			}
			st := wire.StatusBadRequest
			if errors.Is(err, wire.ErrFrameTooLarge) {
				st = wire.StatusTooLarge
			}
			appendErrorFrame(ws, st, err.Error())
			break
		}
		if n >= maxPipelineFrames {
			appendErrorFrame(ws, wire.StatusTooLarge, "too many pipelined frames")
			break
		}
		ws.frame = payload
		s.binCycle(ctx, ep, payload, ws)
	}
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	w.Write(ws.out)
	return code
}

// appendErrorFrame appends one complete error frame to ws.out.
func appendErrorFrame(ws *binWS, status byte, msg string) {
	base := len(ws.out)
	ws.out = append(ws.out, 0, 0, 0, 0)
	ws.out = wire.AppendError(ws.out, status, msg)
	binary.LittleEndian.PutUint32(ws.out[base:], uint32(len(ws.out)-base-4))
}

// binFail writes a complete error frame and returns its HTTP code.
func binFail(w http.ResponseWriter, ws *binWS, httpCode int, status byte, msg string) int {
	ws.out = wire.AppendFrame(ws.out[:0], nil)
	ws.out = wire.AppendError(ws.out, status, msg)
	binary.LittleEndian.PutUint32(ws.out[:4], uint32(len(ws.out)-4))
	w.WriteHeader(httpCode)
	w.Write(ws.out)
	return httpCode
}

// binCycle is the core binary request cycle — decode, solve, encode —
// appending one complete response frame to ws.out and returning the
// HTTP status (the caller truncates ws.out between requests; appending
// is what lets pipelined frames share the buffer). It is the unit the
// alloc budget is pinned on: no HTTP, no pool round-trip, just the work
// one request costs.
func (s *Server) binCycle(ctx context.Context, ep int, payload []byte, ws *binWS) int {
	base := len(ws.out)
	ws.out = append(ws.out, 0, 0, 0, 0) // reserve the length prefix
	code := s.binSolve(ctx, ep, payload, ws, base+4)
	binary.LittleEndian.PutUint32(ws.out[base:], uint32(len(ws.out)-base-4))
	return code
}

// binSolve appends the response payload for one decoded request; start
// is where this frame's payload begins in ws.out. The deadline is
// checked once, after the solve: a request past its budget answers 503
// no matter what the solver produced (the solve has still warmed the
// cache — same contract as the /v1 timeout path).
func (s *Server) binSolve(ctx context.Context, ep int, payload []byte, ws *binWS, start int) int {
	var aerr *apiError
	ok := false
	switch ep {
	case epCheckV2:
		inst, err := ws.dec.Check(payload)
		if err != nil {
			return binDecodeErr(ws, err)
		}
		if aerr = s.coreCheck(inst, &ws.check, &ws.viol); aerr == nil {
			ok = true
		}
	case epSNEV2:
		inst, method, err := ws.dec.SNE(payload)
		if err != nil {
			return binDecodeErr(ws, err)
		}
		if aerr = s.coreSNE(inst, method, &ws.sne); aerr == nil {
			ok = true
		}
	case epSNDV2:
		inst, budget, exact, treeLimit, err := ws.dec.SND(payload)
		if err != nil {
			return binDecodeErr(ws, err)
		}
		if aerr = s.coreSND(inst, budget, exact, treeLimit, &ws.snd); aerr == nil {
			ok = true
		}
	case epPoSV2:
		inst, starts, maxSteps, seed, err := ws.dec.PoS(payload)
		if err != nil {
			return binDecodeErr(ws, err)
		}
		if aerr = s.corePoS(inst, starts, maxSteps, seed, &ws.pos); aerr == nil {
			ok = true
		}
	default:
		panic("serve: binSolve on a non-binary endpoint")
	}
	if ctx.Err() != nil {
		ws.out = wire.AppendError(ws.out[:start], wire.StatusUnavailable, "request timed out")
		return http.StatusServiceUnavailable
	}
	if !ok {
		ws.out = wire.AppendError(ws.out, binStatus(aerr.code), aerr.msg)
		return aerr.code
	}
	switch ep {
	case epCheckV2:
		ws.out = wire.AppendCheckResponse(ws.out, &ws.check)
	case epSNEV2:
		ws.out = wire.AppendSNEResponse(ws.out, &ws.sne)
	case epSNDV2:
		ws.out = wire.AppendSNDResponse(ws.out, &ws.snd)
	case epPoSV2:
		ws.out = wire.AppendPoSResponse(ws.out, &ws.pos)
	}
	return http.StatusOK
}

// binDecodeErr appends the 400 frame body for a request that failed wire
// decoding.
func binDecodeErr(ws *binWS, err error) int {
	ws.out = wire.AppendError(ws.out, wire.StatusBadRequest, err.Error())
	return http.StatusBadRequest
}

// binStatus maps an apiError's HTTP code onto its wire status byte.
func binStatus(code int) byte {
	switch code {
	case http.StatusBadRequest:
		return wire.StatusBadRequest
	case http.StatusUnprocessableEntity:
		return wire.StatusUnprocessable
	case http.StatusServiceUnavailable:
		return wire.StatusUnavailable
	case http.StatusRequestEntityTooLarge:
		return wire.StatusTooLarge
	default:
		return wire.StatusInternal
	}
}
