// Package serve is the subsidy-as-a-service layer: a concurrent HTTP/JSON
// daemon (cmd/sned) answering equilibrium-check, PoS-estimate and
// subsidy/enforcement queries over submitted broadcast instances, at
// request rates the batch CLIs cannot touch.
//
// The speed comes from reusing the sweep stack's warm-start machinery as
// a serving cache: every LP (3) build is fingerprinted by shape
// (lp.Model.StructureFingerprint), a bounded sharded LRU maps
// fingerprints to the freshest optimal basis for that shape, and a hit
// turns the solve into lp.ResolveFrom basis homotopy — a few dual pivots
// instead of a cold two-phase simplex. Solver build workspaces
// (sne.BroadcastLPChain) are pooled per worker, so the steady-state
// request path allocates only what the answer itself needs.
//
// Operationally the server is a long-lived process: per-request solve
// timeouts, a request-body size cap, /healthz for liveness, /metrics for
// request counts, p50/p99 latency, cache hit rate and warm-vs-cold solve
// counts, and graceful shutdown that drains in-flight solves.
//
// Endpoints (all bodies JSON; instances travel in the instancefile text
// format shared with the CLIs):
//
//	POST /v1/check  {"instance": ...}                      → equilibrium verdict + violation
//	POST /v1/sne    {"instance": ..., "method": "lp"}      → minimum enforcing subsidies
//	POST /v1/snd    {"instance": ..., "budget": B, ...}    → budgeted stable design
//	POST /v1/pos    {"instance": ..., "starts": k, ...}    → PoS estimate (swap descent)
//	GET  /healthz                                          → "ok"
//	GET  /metrics                                          → operational counters
//
// Responses are bit-identical to the corresponding batch solvers — the
// differential suite in serve_test.go holds every endpoint to the exact
// float64 bits the sne/snd CLI paths produce on the same instances.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netdesign/internal/broadcast"
	"netdesign/internal/instancefile"
	"netdesign/internal/serve/wire"
	"netdesign/internal/snd"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// Config tunes the daemon. The zero value serves with sane defaults.
type Config struct {
	// MaxBodyBytes caps a request body; larger bodies are rejected with
	// 413 before any parsing. Default 1 MiB.
	MaxBodyBytes int64

	// Timeout bounds one request end to end; past it the client gets 503
	// (the solve finishes in the background and still warms the cache).
	// Default 30s.
	Timeout time.Duration

	// CacheCap bounds the basis cache (total bases across shards).
	// Default 512; negative disables caching — every solve runs cold,
	// which is the reference mode the load benchmarks compare against.
	CacheCap int

	// CacheShards is the lock-sharding factor of the basis cache, rounded
	// up to a power of two. Default 16.
	CacheShards int

	// CacheTTL bounds the age of a cached basis: entries older than it
	// miss (and are dropped) on lookup, so a structure that stopped
	// arriving cannot pin a stale basis forever. Default 10m; negative
	// disables expiry.
	CacheTTL time.Duration

	// MaxInflight caps concurrently served solve requests; past it the
	// server sheds load instead of queueing: /v1 answers 503 with a
	// Retry-After hint, /v2 answers a StatusUnavailable frame. Solves are
	// CPU-bound, so admitting more than the machine can run concurrently
	// only grows every request's latency until all of them time out;
	// shedding keeps the admitted ones fast. 0 means unlimited.
	MaxInflight int
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.CacheCap == 0 {
		c.CacheCap = 512
	}
	if c.CacheShards == 0 {
		c.CacheShards = 16
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 10 * time.Minute
	}
	return c
}

// Server answers subsidy queries over HTTP. Create with New, mount
// Handler (or Start a listener), stop with Shutdown.
type Server struct {
	cfg      Config
	cache    *basisCache
	met      *metrics
	chains   sync.Pool // *sne.BroadcastLPChain — pooled solver build state
	decoders sync.Pool // *instancefile.Decoder — pooled text-parse scratch
	binws    sync.Pool // *binWS — pooled binary request workspaces

	// preSolve, when non-nil, runs before every solve; tests inject
	// latency here to exercise the timeout path deterministically.
	preSolve func()

	// ready gates /readyz: false until Start has a listener bound, false
	// again the instant Shutdown begins draining — so a load balancer
	// stops routing to a daemon that is about to close its listener,
	// while /healthz keeps answering (the process is alive throughout).
	ready atomic.Bool

	mu   sync.Mutex
	http *http.Server
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		cache:    newBasisCache(cfg.CacheCap, cfg.CacheShards, cfg.CacheTTL),
		met:      newMetrics(),
		chains:   sync.Pool{New: func() any { return sne.NewBroadcastLPChain() }},
		decoders: sync.Pool{New: func() any { return new(instancefile.Decoder) }},
		binws:    sync.Pool{New: func() any { return new(binWS) }},
	}
}

// Handler returns the server's full route table with the operational
// middleware (metrics, body cap, per-request timeout) applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !s.ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, s.met.render(s.cache.Len()))
	})
	mux.Handle("/v1/check", s.api(epCheck, s.handleCheck))
	mux.Handle("/v1/sne", s.api(epSNE, s.handleSNE))
	mux.Handle("/v1/snd", s.api(epSND, s.handleSND))
	mux.Handle("/v1/pos", s.api(epPoS, s.handlePoS))
	mux.Handle("/v2/check", s.binAPI(epCheckV2))
	mux.Handle("/v2/sne", s.binAPI(epSNEV2))
	mux.Handle("/v2/snd", s.binAPI(epSNDV2))
	mux.Handle("/v2/pos", s.binAPI(epPoSV2))
	return mux
}

// Start listens on addr (host:port; :0 picks a free port) and serves in
// the background. The bound address is returned so callers — the CLI
// printing it, tests dialing it — need not guess.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.http = hs
	s.mu.Unlock()
	s.ready.Store(true)
	go hs.Serve(ln)
	return ln.Addr(), nil
}

// SetReady overrides the readiness gate; callers mounting Handler on
// their own listener (no Start) use it to flip /readyz themselves.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Shutdown gracefully drains the listener started by Start: no new
// connections, in-flight requests run to completion (or ctx expiry).
// Readiness drops first, so health checkers see not-ready before the
// listener disappears.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.mu.Lock()
	hs := s.http
	s.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Shutdown(ctx)
}

// statusRecorder captures the response code for the error counters.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// api wraps an endpoint handler with the operational middleware:
// POST-only, body size cap, per-request timeout (503 on expiry), and the
// metrics observation (count, latency, error).
func (s *Server) api(ep int, h http.HandlerFunc) http.Handler {
	limited := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "POST only")
			return
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(w, r)
	})
	timed := http.TimeoutHandler(limited, s.cfg.Timeout, `{"error":"request timed out"}`)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		if s.overloaded(n) {
			s.met.shed.Add(1)
			s.met.observe(ep, 0, true)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server overloaded, retry later")
			return
		}
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		timed.ServeHTTP(rec, r)
		s.met.observe(ep, time.Since(t0), rec.code >= 400)
	})
}

// overloaded decides admission for the request that just raised the
// inflight gauge to n.
func (s *Server) overloaded(n int64) bool {
	return s.cfg.MaxInflight > 0 && n > int64(s.cfg.MaxInflight)
}

// decodeRequest parses the JSON body into req and the embedded instance
// text into a parsed instance (through a pooled byte decoder — the
// scanner-free twin of instancefile.Read), writing the proper 4xx on
// failure.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, req interface{ instanceText() string }) (*instancefile.Instance, bool) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, "bad request JSON: "+err.Error())
		}
		return nil, false
	}
	text := req.instanceText()
	if strings.TrimSpace(text) == "" {
		writeError(w, http.StatusBadRequest, "missing instance")
		return nil, false
	}
	td := s.decoders.Get().(*instancefile.Decoder)
	inst, err := td.DecodeString(text)
	s.decoders.Put(td)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err.Error())
		return nil, false
	}
	return inst, true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// instanceRequest is the common body prefix: the instance in the CLI
// text format. Endpoint-specific requests embed it.
type instanceRequest struct {
	Instance string `json:"instance"`
}

func (r *instanceRequest) instanceText() string { return r.Instance }

// The response types are the wire package's structs: /v1 marshals them
// through encoding/json, /v2 through the binary appenders, so the two
// protocols render the same value and cannot drift.
type (
	violationJSON = wire.Violation
	checkResponse = wire.CheckResponse
	edgeSubsidy   = wire.EdgeSubsidy
	sneResponse   = wire.SNEResponse
	sndResponse   = wire.SNDResponse
	posResponse   = wire.PoSResponse
)

// apiError is a protocol-independent request failure: an HTTP status
// (the /v1 rendering) that binStatus maps onto a /v2 frame status.
type apiError struct {
	code int
	msg  string
}

// coreCheck answers: is the submitted target tree an equilibrium of the
// instance without subsidies, and if not, who defects? violScratch,
// when non-nil, is used as the violation slot so a pooled caller
// allocates nothing.
func (s *Server) coreCheck(inst *instancefile.Instance, resp *checkResponse, violScratch *violationJSON) *apiError {
	st, err := inst.State()
	if err != nil {
		return &apiError{http.StatusUnprocessableEntity, err.Error()}
	}
	if s.preSolve != nil {
		s.preSolve()
	}
	resp.Equilibrium = false
	resp.Weight = st.Weight()
	resp.Players = inst.Game.NumPlayers()
	resp.Violation = nil
	if v := st.FindViolation(nil); v != nil {
		if violScratch == nil {
			violScratch = &violationJSON{}
		}
		*violScratch = violationJSON{Node: v.Node, ViaEdge: v.ViaEdge, Current: v.Current, Better: v.Better, Gain: v.Gain()}
		resp.Violation = violScratch
	} else {
		resp.Equilibrium = true
	}
	return nil
}

// handleCheck is the /v1 rendering of coreCheck.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	var req instanceRequest
	inst, ok := s.decodeRequest(w, r, &req)
	if !ok {
		return
	}
	var resp checkResponse
	if aerr := s.coreCheck(inst, &resp, nil); aerr != nil {
		writeError(w, aerr.code, aerr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type sneRequest struct {
	instanceRequest
	Method string `json:"method,omitempty"` // lp (default) | theorem6 | aon | greedy | full
}

// coreSNE computes minimum enforcing subsidies for the submitted
// instance, mirroring the cmd/sne method switch exactly. The lp method
// is the served hot path: it runs through a pooled build chain and the
// fingerprint-keyed basis cache, so streams of structurally identical
// instances resolve warm. resp.Subsidies is reused as scratch when
// already allocated (and left non-nil either way, so /v1 renders []).
func (s *Server) coreSNE(inst *instancefile.Instance, method string, resp *sneResponse) *apiError {
	st, err := inst.State()
	if err != nil {
		return &apiError{http.StatusUnprocessableEntity, err.Error()}
	}
	if s.preSolve != nil {
		s.preSolve()
	}
	if method == "" {
		method = "lp"
	}
	var res *sne.Result
	warm := false
	switch method {
	case "lp":
		res, warm, err = s.solveLP(st)
	case "theorem6":
		bs, cert, serr := subsidy.Enforce(st)
		if err = serr; serr == nil {
			res = &sne.Result{Subsidy: bs, Cost: cert.Total}
		}
	case "aon":
		res, err = sne.SolveAON(st, sne.AONOptions{})
	case "greedy":
		res, err = sne.GreedyAON(st)
	case "full":
		res = sne.FullSubsidy(st)
	default:
		return &apiError{http.StatusBadRequest, fmt.Sprintf("unknown method %q", method)}
	}
	if err != nil {
		return &apiError{http.StatusUnprocessableEntity, err.Error()}
	}
	// The same verification gate the CLI applies: never serve an
	// assignment that does not enforce the tree.
	if err := sne.VerifyBroadcast(st, res.Subsidy); err != nil {
		return &apiError{http.StatusInternalServerError, "result failed verification: " + err.Error()}
	}
	resp.Method = method
	resp.Cost = res.Cost
	resp.Fraction = res.Cost / st.Weight()
	resp.TreeWeight = st.Weight()
	resp.Pivots = res.Pivots
	resp.Warm = warm
	if resp.Subsidies == nil {
		resp.Subsidies = []edgeSubsidy{}
	} else {
		resp.Subsidies = resp.Subsidies[:0]
	}
	g := inst.Game.G
	for _, id := range st.Tree.EdgeIDs {
		if v := res.Subsidy.At(id); v > 0 {
			e := g.Edge(id)
			resp.Subsidies = append(resp.Subsidies, edgeSubsidy{Edge: id, U: e.U, V: e.V, Weight: e.W, Subsidy: v})
		}
	}
	return nil
}

// handleSNE is the /v1 rendering of coreSNE.
func (s *Server) handleSNE(w http.ResponseWriter, r *http.Request) {
	var req sneRequest
	inst, ok := s.decodeRequest(w, r, &req)
	if !ok {
		return
	}
	var resp sneResponse
	if aerr := s.coreSNE(inst, req.Method, &resp); aerr != nil {
		writeError(w, aerr.code, aerr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// solveLP is the warm-start hot path: prepare the LP on a pooled chain,
// key the basis cache by the model's structure fingerprint, solve warm on
// a hit, and put the fresh optimal basis back for the next nearby
// request.
func (s *Server) solveLP(st *broadcast.State) (*sne.Result, bool, error) {
	chain := s.chains.Get().(*sne.BroadcastLPChain)
	defer s.chains.Put(chain)
	fp := chain.Prepare(st)
	warmBasis := s.cache.Get(fp)
	if warmBasis != nil {
		s.met.cacheHits.Add(1)
	} else {
		s.met.cacheMisses.Add(1)
	}
	res, usedWarm, err := chain.SolvePrepared(st, warmBasis)
	if err != nil {
		return nil, usedWarm, err
	}
	if usedWarm {
		s.met.warmSolves.Add(1)
	} else {
		s.met.coldSolves.Add(1)
	}
	s.cache.Put(fp, res.Basis)
	return res, usedWarm, nil
}

type sndRequest struct {
	instanceRequest
	Budget    float64 `json:"budget"`
	Exact     bool    `json:"exact,omitempty"`
	TreeLimit int     `json:"treelimit,omitempty"`
}

// coreSND answers budgeted STABLE NETWORK DESIGN, mirroring cmd/snd:
// exact enumeration on request, otherwise the MST+LP heuristic with the
// Theorem-6 fallback (snd.HeuristicAuto — errors.Is on the wrapped
// sentinel). A zero treeLimit means the cmd/snd default of 200000.
func (s *Server) coreSND(inst *instancefile.Instance, budget float64, exact bool, treeLimit int, resp *sndResponse) *apiError {
	if s.preSolve != nil {
		s.preSolve()
	}
	bg := inst.Game
	var res *snd.Result
	var err error
	method := snd.MethodExact
	fellBack := false
	if exact {
		limit := treeLimit
		if limit == 0 {
			limit = 200000
		}
		res, err = snd.SolveExact(bg, budget, limit)
	} else {
		res, method, fellBack, err = snd.HeuristicAuto(bg, budget)
	}
	if err != nil {
		return &apiError{http.StatusUnprocessableEntity, err.Error()}
	}
	if err := snd.Verify(bg, res, budget); err != nil {
		return &apiError{http.StatusInternalServerError, "result failed verification: " + err.Error()}
	}
	resp.Method = method
	resp.FellBack = fellBack
	resp.Weight = res.Weight
	resp.SubsidyCost = res.SubsidyCost
	resp.Budget = budget
	resp.Tree = res.Tree
	return nil
}

// handleSND is the /v1 rendering of coreSND.
func (s *Server) handleSND(w http.ResponseWriter, r *http.Request) {
	var req sndRequest
	inst, ok := s.decodeRequest(w, r, &req)
	if !ok {
		return
	}
	var resp sndResponse
	if aerr := s.coreSND(inst, req.Budget, req.Exact, req.TreeLimit, &resp); aerr != nil {
		writeError(w, aerr.code, aerr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type posRequest struct {
	instanceRequest
	Starts   int   `json:"starts,omitempty"`   // default 4
	MaxSteps int   `json:"maxsteps,omitempty"` // default engine-chosen
	Seed     int64 `json:"seed,omitempty"`     // default 1; same seed, same estimate
}

// corePoS estimates the price of stability of the submitted game by
// multi-start swap descent (broadcast.EstimatePoS) — deterministic for a
// given seed, so the answer is reproducible and differential-testable.
// Zero starts/seed take the served defaults (4 starts, seed 1).
func (s *Server) corePoS(inst *instancefile.Instance, starts, maxSteps int, seed int64, resp *posResponse) *apiError {
	if s.preSolve != nil {
		s.preSolve()
	}
	if starts == 0 {
		starts = 4
	}
	if seed == 0 {
		seed = 1
	}
	est, err := broadcast.EstimatePoS(inst.Game, nil, starts, maxSteps, rand.New(rand.NewSource(seed)))
	if err != nil {
		return &apiError{http.StatusUnprocessableEntity, err.Error()}
	}
	*resp = posResponse{OptWeight: est.OptWeight, Converged: est.Converged, Starts: est.Starts, Steps: est.Steps}
	if est.Converged > 0 {
		resp.BestEq = est.BestEq
		resp.PoS = est.PoS()
	}
	return nil
}

// handlePoS is the /v1 rendering of corePoS.
func (s *Server) handlePoS(w http.ResponseWriter, r *http.Request) {
	var req posRequest
	inst, ok := s.decodeRequest(w, r, &req)
	if !ok {
		return
	}
	var resp posResponse
	if aerr := s.corePoS(inst, req.Starts, req.MaxSteps, req.Seed, &resp); aerr != nil {
		writeError(w, aerr.code, aerr.msg)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
