package gadgets

import (
	"math/big"
	"testing"

	"netdesign/internal/exact"
	"netdesign/internal/reductions"
)

func TestSATConstants(t *testing.T) {
	n := SATConstants()
	if n[9].Int64() != 7 || n[8].Int64() != 196 || n[7].Int64() != 153664 {
		t.Errorf("n9=%v n8=%v n7=%v", n[9], n[8], n[7])
	}
	for j := 1; j <= 8; j++ {
		want := new(big.Int).Mul(n[j+1], n[j+1])
		want.Mul(want, big.NewInt(4))
		if n[j].Cmp(want) != 0 {
			t.Errorf("recurrence broken at j=%d", j)
		}
	}
	// n_1 is astronomically large — the reason the exact engine exists.
	if n[1].BitLen() < 1000 {
		t.Errorf("n1 has only %d bits", n[1].BitLen())
	}
}

// oneClause builds the gadget for the single clause (x0 ∨ ¬x1 ∨ x2).
func oneClause(t *testing.T) *SATGadget {
	t.Helper()
	f := &reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
	}}
	sg, err := BuildSAT(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sg
}

func TestSATGadgetShape(t *testing.T) {
	sg := oneClause(t)
	if !sg.G.IsSpanningTree(sg.Tree) {
		t.Fatal("target T is not a spanning tree")
	}
	if len(sg.Apps) != 1 || len(sg.Clauses) != 1 || len(sg.Cons) != 0 {
		t.Fatalf("shape: %d apps %d clauses %d cons", len(sg.Apps), len(sg.Clauses), len(sg.Cons))
	}
	// Labels of a single clause are distinct and drawn from {7,8,9}.
	labels := map[int]bool{}
	for _, a := range sg.Apps[0] {
		labels[a.Label] = true
		if a.Label < 7 || a.Label > 9 {
			t.Errorf("label %d outside the compact range", a.Label)
		}
	}
	if len(labels) != 3 {
		t.Error("labels not distinct within the clause")
	}
	// Chaining: l(c,ℓ1) = root, l(c,ℓ2) = u(c,ℓ1), l(c,ℓ3) = u(c,ℓ2);
	// labels ascend.
	if sg.Apps[0][0].L != sg.Root ||
		sg.Apps[0][1].L != sg.Apps[0][0].End ||
		sg.Apps[0][2].L != sg.Apps[0][1].End {
		t.Error("gadget chaining broken")
	}
	if !(sg.Apps[0][0].Label < sg.Apps[0][1].Label && sg.Apps[0][1].Label < sg.Apps[0][2].Label) {
		t.Error("labels not ascending along the chain")
	}
	if len(sg.LightEdges()) != 6 {
		t.Errorf("light edges: %d", len(sg.LightEdges()))
	}
}

// TestSATUsageCounts asserts the paper's padding invariant: the first
// light edge of each appearance gadget carries exactly n_j players and
// the second exactly n_j − 3.
func TestSATUsageCounts(t *testing.T) {
	formulas := []*reductions.Formula{
		{NumVars: 3, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
		}},
		// Shared variable in two clauses (consistency gadgets active,
		// both ℓ-ℓ and ℓ-ℓ̄ cases below).
		{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0}, {Var: 3}, {Var: 4}},
		}},
		{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
		}},
		// A variable appearing four times.
		{NumVars: 9, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
			{{Var: 0}, {Var: 5}, {Var: 6}},
			{{Var: 0, Neg: true}, {Var: 7}, {Var: 8}},
		}},
	}
	for fi, f := range formulas {
		sg, err := BuildSAT(f, nil)
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		st, err := sg.State()
		if err != nil {
			t.Fatalf("formula %d: %v", fi, err)
		}
		for ci := range sg.Apps {
			for i, a := range sg.Apps[ci] {
				nj := sg.N[a.Label]
				if st.NA[a.Light1].Cmp(nj) != 0 {
					t.Errorf("formula %d clause %d pos %d: Light1 usage %v ≠ n_%d = %v",
						fi, ci, i, st.NA[a.Light1], a.Label, nj)
				}
				want := new(big.Int).Sub(nj, big.NewInt(3))
				if st.NA[a.Light2].Cmp(want) != 0 {
					t.Errorf("formula %d clause %d pos %d: Light2 usage %v ≠ n_%d−3",
						fi, ci, i, st.NA[a.Light2], a.Label)
				}
			}
		}
	}
}

// TestCorollary20 is the headline equivalence: a consistent balanced
// light assignment enforces T iff its truth assignment satisfies φ —
// checked exhaustively over all 2^vars assignments.
func TestCorollary20(t *testing.T) {
	formulas := []*reductions.Formula{
		{NumVars: 3, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
		}},
		{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
		}},
		{NumVars: 4, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 3}},
		}},
	}
	for fi, f := range formulas {
		sg, err := BuildSAT(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sg.State()
		if err != nil {
			t.Fatal(err)
		}
		assign := make([]bool, f.NumVars)
		for mask := 0; mask < 1<<f.NumVars; mask++ {
			for v := range assign {
				assign[v] = mask&(1<<v) != 0
			}
			b := sg.SubsidyForAssignment(assign)
			enforced := st.IsEquilibrium(b)
			satisfied := f.Eval(assign)
			if enforced != satisfied {
				t.Errorf("formula %d assign %b: enforced=%v satisfied=%v",
					fi, mask, enforced, satisfied)
			}
			// Light assignment costs exactly 3|C|.
			if want := int64(3 * len(f.Clauses)); b.Cost().Cmp(exact.RI(want)) != 0 {
				t.Errorf("formula %d: light cost %v ≠ %d", fi, b.Cost(), want)
			}
		}
	}
}

// TestLemma14Unbalanced: subsidizing both or neither light edge of some
// gadget always breaks equilibrium (regardless of clause truth).
func TestLemma14Unbalanced(t *testing.T) {
	sg := oneClause(t)
	st, err := sg.State()
	if err != nil {
		t.Fatal(err)
	}
	// Start from a satisfying, consistent assignment.
	base := sg.SubsidyForAssignment([]bool{true, false, true})
	if !st.IsEquilibrium(base) {
		t.Fatal("baseline should enforce")
	}
	for i := range sg.Apps[0] {
		a := sg.Apps[0][i]
		// Neither edge subsidized: the v3 player prefers (l, v3).
		none := make(exact.Subsidy, sg.G.M())
		copy(none, base)
		none[a.Light1] = nil
		none[a.Light2] = nil
		if v := st.FindViolation(none); v == nil {
			t.Errorf("gadget %d: zero-light assignment should not enforce", i)
		} else if v.Node != a.V3 && v.Node != a.V2 {
			// The first reported violation may vary; it must at least be
			// a critical player of this or a downstream gadget.
			t.Logf("gadget %d: violation at node %d via edge %d", i, v.Node, v.ViaEdge)
		}
		// Both edges subsidized: the v2 player prefers (v2, u).
		both := make(exact.Subsidy, sg.G.M())
		copy(both, base)
		both[a.Light1] = exact.RI(1)
		both[a.Light2] = exact.RI(1)
		if st.IsEquilibrium(both) {
			t.Errorf("gadget %d: double-light assignment should not enforce", i)
		}
	}
}

// TestLemma16and17Inconsistent: balanced but variable-inconsistent
// choices wake a consistency player, for both gadget types.
func TestLemma16and17Inconsistent(t *testing.T) {
	for _, neg := range []bool{false, true} {
		f := &reductions.Formula{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: neg}, {Var: 3}, {Var: 4}},
		}}
		sg, err := BuildSAT(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(sg.Cons) != 1 || sg.Cons[0].SameLiteral == neg {
			t.Fatalf("neg=%v: consistency gadgets %v", neg, sg.Cons)
		}
		st, err := sg.State()
		if err != nil {
			t.Fatal(err)
		}
		// A satisfying assignment enforces (sanity).
		sat := []bool{true, true, true, true, true}
		if !f.Eval(sat) {
			t.Fatal("assignment should satisfy")
		}
		if !st.IsEquilibrium(sg.SubsidyForAssignment(sat)) {
			t.Fatalf("neg=%v: satisfying assignment should enforce", neg)
		}
		// Flip x0's choice in clause 2 only: balanced but inconsistent.
		choice := sg.ChoiceForAssignment(sat)
		for i := range sg.Apps[1] {
			if sg.Apps[1][i].Lit.Var == 0 {
				choice[1][i] = !choice[1][i]
			}
		}
		if _, ok := sg.IsConsistent(choice); ok {
			t.Fatalf("neg=%v: flipped choice should be inconsistent", neg)
		}
		b := sg.BalancedSubsidy(choice)
		v := st.FindViolation(b)
		if v == nil {
			t.Fatalf("neg=%v: inconsistent assignment should not enforce", neg)
		}
		cg := sg.Cons[0]
		if v.Node != cg.U1 && v.Node != cg.U2 {
			t.Errorf("neg=%v: violation at node %d, expected a consistency player (%d or %d)",
				neg, v.Node, cg.U1, cg.U2)
		}
	}
}

// TestLemma19ClauseEdge: with a consistent balanced assignment whose
// truth assignment falsifies a clause, the violated player is that
// clause's v(c).
func TestLemma19ClauseEdge(t *testing.T) {
	sg := oneClause(t)
	st, err := sg.State()
	if err != nil {
		t.Fatal(err)
	}
	// (x0 ∨ ¬x1 ∨ x2) falsified by x0=false, x1=true, x2=false.
	b := sg.SubsidyForAssignment([]bool{false, true, false})
	v := st.FindViolation(b)
	if v == nil {
		t.Fatal("falsifying assignment should not enforce")
	}
	if v.Node != sg.Clauses[0].VC || v.ViaEdge != sg.Clauses[0].NonTreeEdge {
		t.Errorf("violation %v, want clause player %d via edge %d",
			v, sg.Clauses[0].VC, sg.Clauses[0].NonTreeEdge)
	}
}

// TestTheorem12BruteForce enumerates every balanced light choice of a
// one-clause gadget (2^3 of them) and confirms that exactly the
// clause-satisfying ones enforce T. Combined with TestLemma14Unbalanced
// this walks the whole Lemma 13–19 chain mechanically.
func TestTheorem12BruteForce(t *testing.T) {
	sg := oneClause(t)
	st, err := sg.State()
	if err != nil {
		t.Fatal(err)
	}
	for mask := 0; mask < 8; mask++ {
		choice := make(LightChoice, 1)
		for i := 0; i < 3; i++ {
			choice[0][i] = mask&(1<<i) != 0
		}
		assign, consistent := sg.IsConsistent(choice)
		if !consistent {
			t.Fatal("one-clause choices are always consistent")
		}
		b := sg.BalancedSubsidy(choice)
		enforced := st.IsEquilibrium(b)
		if enforced != sg.F.Eval(assign) {
			t.Errorf("mask %b: enforced=%v eval=%v", mask, enforced, sg.F.Eval(assign))
		}
	}
}

func TestBuildSATRejectsBadFormula(t *testing.T) {
	bad := &reductions.Formula{NumVars: 2, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 0, Neg: true}, {Var: 1}},
	}}
	if _, err := BuildSAT(bad, nil); err == nil {
		t.Error("invalid formula accepted")
	}
}

func TestSATCustomK(t *testing.T) {
	f := &reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
	}}
	sg, err := BuildSAT(f, exact.RI(5000))
	if err != nil {
		t.Fatal(err)
	}
	if sg.K.Cmp(exact.RI(5000)) != 0 {
		t.Error("custom K ignored")
	}
	st, err := sg.State()
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(sg.SubsidyForAssignment([]bool{true, true, true})) {
		t.Error("custom-K gadget broken")
	}
}

// TestSATFourLabelFormula stresses the gadget with a formula whose
// conflict graph needs four labels, pushing the constants down to
// n_6 ≈ 9.4·10^10 and the auxiliary multiplicities beyond int32 range.
func TestSATFourLabelFormula(t *testing.T) {
	// Variable 0 appears in all four clauses, pairing with six others in
	// overlapping patterns that force a 4-coloring.
	f := &reductions.Formula{NumVars: 7, Clauses: []reductions.Clause{
		{{Var: 0}, {Var: 1}, {Var: 2}},
		{{Var: 0, Neg: true}, {Var: 1}, {Var: 3}},
		{{Var: 0}, {Var: 2, Neg: true}, {Var: 3}},
		{{Var: 0, Neg: true}, {Var: 4}, {Var: 5}},
	}}
	sg, err := BuildSAT(f, nil)
	if err != nil {
		t.Fatal(err)
	}
	minLabel := 10
	for ci := range sg.Apps {
		for _, a := range sg.Apps[ci] {
			if a.Label < minLabel {
				minLabel = a.Label
			}
		}
	}
	if minLabel > 6 {
		t.Logf("formula only needed labels ≥ %d; still a valid stress case", minLabel)
	}
	st, err := sg.State()
	if err != nil {
		t.Fatal(err)
	}
	// Padding invariant holds at every label depth.
	for ci := range sg.Apps {
		for _, a := range sg.Apps[ci] {
			if st.NA[a.Light1].Cmp(sg.N[a.Label]) != 0 {
				t.Fatalf("clause %d label %d: Light1 usage %v ≠ n_j", ci, a.Label, st.NA[a.Light1])
			}
		}
	}
	// Corollary 20 on the full assignment space (2^7 = 128 checks).
	assign := make([]bool, f.NumVars)
	for mask := 0; mask < 1<<f.NumVars; mask++ {
		for v := range assign {
			assign[v] = mask&(1<<v) != 0
		}
		if st.IsEquilibrium(sg.SubsidyForAssignment(assign)) != f.Eval(assign) {
			t.Fatalf("mask %b: equivalence broken", mask)
		}
	}
}
