// Package gadgets constructs every instance family the paper uses in its
// proofs: the Bypass gadget (Figure 1), the BIN PACKING reduction graph
// (Theorem 3, Figure 2), the INDEPENDENT SET reduction (Theorem 5,
// Figure 3), the Theorem 11 cycle and Theorem 21 path lower bounds, and
// the 3SAT-4 all-or-nothing reduction (Theorem 12, Figures 5–7).
// Each builder returns enough structure for tests and experiments to
// verify the corresponding theorem's claims mechanically.
package gadgets

import (
	"fmt"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// Bypass is the Figure-1 gadget with capacity κ: a basic path of ℓ
// unit-weight edges from the root to the connector node, plus a bypass
// edge (connector, root) of weight H_{κ+ℓ} − H_κ, where ℓ is minimal with
// H_{κ+ℓ} − H_κ > 1. Lemma 4: if fewer than κ players enter through the
// connector, the connector player prefers the bypass edge; with κ or more,
// nobody on the basic path deviates.
type Bypass struct {
	G          *graph.Graph
	Root       int
	Connector  int
	Kappa      int
	Ell        int
	BasicPath  []int // edge IDs from the root outward
	BypassEdge int
	BypassW    float64
}

// NewBypass builds a standalone Bypass gadget of the given capacity.
// Node 0 is the root; nodes 1..ℓ form the basic path with node ℓ the
// connector.
func NewBypass(kappa int) *Bypass {
	if kappa < 0 {
		panic("gadgets: negative bypass capacity")
	}
	ell := numeric.BypassLength(kappa)
	g := graph.New(ell + 1)
	bp := &Bypass{G: g, Root: 0, Connector: ell, Kappa: kappa, Ell: ell}
	for i := 0; i < ell; i++ {
		bp.BasicPath = append(bp.BasicPath, g.AddEdge(i, i+1, 1))
	}
	bp.BypassW = numeric.HarmonicDiff(kappa, kappa+ell)
	bp.BypassEdge = g.AddEdge(bp.Connector, bp.Root, bp.BypassW)
	return bp
}

// Lemma4Instance attaches β extra player nodes to the connector through
// zero-weight edges (standing in for the subgraph S of Figure 1) and
// returns the broadcast state whose tree is the basic path plus the
// attachment edges — a minimum spanning tree of the gadget.
func Lemma4Instance(kappa, beta int) (*broadcast.State, *Bypass, error) {
	bp := NewBypass(kappa)
	g := bp.G
	var tree []int
	tree = append(tree, bp.BasicPath...)
	for k := 0; k < beta; k++ {
		v := g.AddNode()
		tree = append(tree, g.AddEdge(bp.Connector, v, 0))
	}
	bg, err := broadcast.NewGame(g, bp.Root)
	if err != nil {
		return nil, nil, err
	}
	st, err := broadcast.NewState(bg, tree)
	if err != nil {
		return nil, nil, err
	}
	if !graph.IsMinimumSpanningTree(g, tree) {
		return nil, nil, fmt.Errorf("gadgets: bypass tree is unexpectedly not an MST")
	}
	return st, bp, nil
}
