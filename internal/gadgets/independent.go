package gadgets

import (
	"fmt"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/reductions"
)

// ISGadget is the Theorem-5 reduction graph from a 3-regular graph H:
// a root r, a U-node per node of H, a V-node per edge of H; unit-weight
// edges from every non-root node to r; and edges of weight (2+δ)/3
// between each V-node and the U-nodes of its endpoints. Its equilibria
// are exactly the forests of type-A branches (a lone node wired to r) and
// type-B branches (a U-node wired to r carrying its three V-neighbors),
// with the B-centers forming an independent set I of H; the equilibrium
// weight is 5n/2 − (1−δ)·|I|.
type ISGadget struct {
	H      *graph.Graph
	Delta  float64
	G      *graph.Graph
	BG     *broadcast.Game
	Root   int
	UNode  []int          // UNode[h-node] = G node
	VNode  []int          // VNode[h-edge] = G node
	Direct []int          // Direct[g-node] = unit edge to root (root: -1)
	Cross  map[[2]int]int // {h-node, h-edge} → cross edge ID
}

// BuildIS constructs the gadget. H must be 3-regular and δ ∈ (0, 1/12]
// (the proof's admissible range).
func BuildIS(h *graph.Graph, delta float64) (*ISGadget, error) {
	if delta <= 0 || delta > 1.0/12 {
		return nil, fmt.Errorf("gadgets: delta %v outside (0, 1/12]", delta)
	}
	for v := 0; v < h.N(); v++ {
		if h.Degree(v) != 3 {
			return nil, fmt.Errorf("gadgets: input graph is not 3-regular at node %d", v)
		}
	}
	g := graph.New(1)
	ig := &ISGadget{H: h, Delta: delta, G: g, Root: 0, Cross: map[[2]int]int{}}
	ig.Direct = []int{-1}
	for v := 0; v < h.N(); v++ {
		node := g.AddNode()
		ig.UNode = append(ig.UNode, node)
		ig.Direct = append(ig.Direct, g.AddEdge(node, ig.Root, 1))
	}
	w := (2 + delta) / 3
	for _, e := range h.Edges() {
		node := g.AddNode()
		ig.VNode = append(ig.VNode, node)
		ig.Direct = append(ig.Direct, g.AddEdge(node, ig.Root, 1))
		ig.Cross[[2]int{e.U, e.ID}] = g.AddEdge(node, ig.UNode[e.U], w)
		ig.Cross[[2]int{e.V, e.ID}] = g.AddEdge(node, ig.UNode[e.V], w)
	}
	bg, err := broadcast.NewGame(g, ig.Root)
	if err != nil {
		return nil, err
	}
	ig.BG = bg
	return ig, nil
}

// EquilibriumWeight returns 5n/2 − (1−δ)m, the weight of the equilibrium
// induced by an independent set of size m.
func (ig *ISGadget) EquilibriumWeight(m int) float64 {
	return 2.5*float64(ig.H.N()) - (1-ig.Delta)*float64(m)
}

// TreeForIS returns the A/B-branch spanning tree induced by an
// independent set of H: each set node becomes a type-B branch carrying
// its three V-neighbors; every other node takes its direct edge.
func (ig *ISGadget) TreeForIS(indep []int) ([]int, error) {
	if !reductions.IsIndependentSet(ig.H, indep) {
		return nil, fmt.Errorf("gadgets: node set is not independent in H")
	}
	inSet := map[int]bool{}
	for _, v := range indep {
		inSet[v] = true
	}
	var tree []int
	covered := map[int]bool{} // V-nodes hanging off a B-branch
	for _, hv := range indep {
		tree = append(tree, ig.Direct[ig.UNode[hv]])
		for _, half := range ig.H.Adj(hv) {
			tree = append(tree, ig.Cross[[2]int{hv, half.Edge}])
			covered[ig.VNode[half.Edge]] = true
		}
	}
	for hv := 0; hv < ig.H.N(); hv++ {
		if !inSet[hv] {
			tree = append(tree, ig.Direct[ig.UNode[hv]])
		}
	}
	for _, vnode := range ig.VNode {
		if !covered[vnode] {
			tree = append(tree, ig.Direct[vnode])
		}
	}
	return tree, nil
}

// StateForIS builds the broadcast state of the A/B forest of an
// independent set.
func (ig *ISGadget) StateForIS(indep []int) (*broadcast.State, error) {
	tree, err := ig.TreeForIS(indep)
	if err != nil {
		return nil, err
	}
	return broadcast.NewState(ig.BG, tree)
}

// BestEquilibrium computes a maximum independent set of H exactly and
// returns the corresponding best equilibrium state and its weight,
// realizing the Theorem-5 correspondence min-eq-weight = 5n/2 − (1−δ)·α(H).
func (ig *ISGadget) BestEquilibrium() (*broadcast.State, float64, []int, error) {
	mis := reductions.MaxIndependentSet(ig.H)
	st, err := ig.StateForIS(mis)
	if err != nil {
		return nil, 0, nil, err
	}
	return st, ig.EquilibriumWeight(len(mis)), mis, nil
}

// TreeWithTypeC builds a tree containing a type-C branch (Figure 3c): the
// U-node of hNode is wired to the root and carries exactly one of its
// V-neighbors as a leaf; everything else is type A. The proof shows the
// leaf player must deviate.
func (ig *ISGadget) TreeWithTypeC(hNode int) ([]int, error) {
	if hNode < 0 || hNode >= ig.H.N() {
		return nil, fmt.Errorf("gadgets: node %d outside H", hNode)
	}
	half := ig.H.Adj(hNode)[0]
	hang := ig.VNode[half.Edge]
	var tree []int
	tree = append(tree, ig.Cross[[2]int{hNode, half.Edge}])
	for node := 1; node < ig.G.N(); node++ {
		if node != hang {
			tree = append(tree, ig.Direct[node])
		}
	}
	return tree, nil
}

// TreeWithTypeD builds a tree with a depth-3 branch (Figure 3e): V-node
// of edge e wired to r, endpoint U-node under it, and a second V-node
// under that U-node; everything else type A.
func (ig *ISGadget) TreeWithTypeD() ([]int, error) {
	e := ig.H.Edge(0)
	u := e.U
	var e2 graph.Edge
	found := false
	for _, half := range ig.H.Adj(u) {
		if half.Edge != e.ID {
			e2 = ig.H.Edge(half.Edge)
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("gadgets: no second edge at node %d", u)
	}
	v1, v2 := ig.VNode[e.ID], ig.VNode[e2.ID]
	var tree []int
	tree = append(tree, ig.Direct[v1])
	tree = append(tree, ig.Cross[[2]int{u, e.ID}])
	tree = append(tree, ig.Cross[[2]int{u, e2.ID}])
	for node := 1; node < ig.G.N(); node++ {
		if node != ig.UNode[u] && node != v1 && node != v2 {
			tree = append(tree, ig.Direct[node])
		}
	}
	return tree, nil
}

// TreeWithTypeE builds a tree with a depth-4 branch (Figure 3f/g):
// r — v_e — u — v_e' — u', everything else type A.
func (ig *ISGadget) TreeWithTypeE() ([]int, error) {
	e := ig.H.Edge(0)
	u := e.U
	var e2 graph.Edge
	found := false
	for _, half := range ig.H.Adj(u) {
		if half.Edge != e.ID {
			e2 = ig.H.Edge(half.Edge)
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("gadgets: no second edge at node %d", u)
	}
	u2 := e2.Other(u)
	v1, v2 := ig.VNode[e.ID], ig.VNode[e2.ID]
	var tree []int
	tree = append(tree, ig.Direct[v1])
	tree = append(tree, ig.Cross[[2]int{u, e.ID}])
	tree = append(tree, ig.Cross[[2]int{u, e2.ID}])
	tree = append(tree, ig.Cross[[2]int{u2, e2.ID}])
	for node := 1; node < ig.G.N(); node++ {
		if node != ig.UNode[u] && node != v1 && node != v2 && node != ig.UNode[u2] {
			tree = append(tree, ig.Direct[node])
		}
	}
	return tree, nil
}
