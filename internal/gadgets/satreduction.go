package gadgets

import (
	"fmt"
	"math/big"

	"netdesign/internal/exact"
	"netdesign/internal/graph"
	"netdesign/internal/reductions"
)

// SATGadget is the Theorem-12 reduction: a broadcast game built from a
// 3SAT-4 formula φ such that a *light* all-or-nothing subsidy assignment
// (subsidizing only unit-weight edges) enforcing the canonical MST T
// exists iff φ is satisfiable; otherwise any enforcing assignment must
// subsidize a heavy edge of weight ≥ K. Since K can be made arbitrarily
// large relative to the 3|C| cost of a light assignment, all-or-nothing
// SNE is inapproximable within any factor.
//
// The construction follows Figures 5–7 literally: a literal gadget per
// appearance of a literal in a clause (chained so that l(c,ℓ1)=r,
// l(c,ℓ2)=u(c,ℓ1), l(c,ℓ3)=u(c,ℓ2), labels j1<j2<j3), a clause node
// v(c), and ℓ-ℓ / ℓ-ℓ̄ consistency gadgets between consecutive
// appearances of each variable. Auxiliary players pad the two light
// edges of each appearance gadget to exactly n_j and n_j−3 users, where
// n_9 = 7 and n_j = 4·n_{j+1}² — values up to ~10^369, which is why this
// gadget runs on the exact rational engine with big-integer
// multiplicities (one auxiliary node of multiplicity m replaces m
// colocated leaf players).
type SATGadget struct {
	F      *reductions.Formula
	Labels []int      // per variable: label j ∈ {1..9}
	N      []*big.Int // N[j] = n_j for j = 1..9 (index 0 unused)
	K      *big.Rat

	G    *graph.Graph
	EG   *exact.Game
	Root int
	Tree []int // the target MST T

	Apps    [][3]Appearance // per clause: the three gadgets in label order
	Clauses []ClauseNode
	Cons    []ConsGadget

	weights []*big.Rat // by edge ID
	mult    []*big.Int // by node
	tCount  []int      // consistency tree-attachments per node (build-time)
}

// Appearance is one literal gadget (Figure 5). In the paper's naming, for
// the appearance of literal λ in clause c: L = l(c,λ), Mid = u(c,λ̄),
// End = u(c,λ). Light1 = (L, Mid) belongs to E(λ̄); Light2 = (Mid, End)
// belongs to E(λ).
type Appearance struct {
	Lit          reductions.Literal
	Label        int
	L            int
	Mid          int
	End          int
	V1           int
	V2           int
	V3           int
	Light1       int // tree, weight 1
	Light2       int // tree, weight 1
	HeavyLV1     int // tree, K
	HeavyV1V2    int // tree, K
	HeavyV3End   int // tree, K
	NonTreeLV3   int // K + 1/(n_j − 3)
	NonTreeV2End int // 3K/2 − 1/(n_j + 1)
	AuxMid       int // aux node at Mid (-1 when multiplicity would be 0)
	AuxEnd       int // aux node at End (-1 when none)
}

// ClauseNode is the v(c) part of Figure 6.
type ClauseNode struct {
	VC          int
	TreeEdge    int // (u(c,ℓ3), v(c)) weight K
	NonTreeEdge int // (v(c), r) weight K + 1/n_{j1} + 1/(n_{j2}−3) + 1/(n_{j3}−3)
}

// ConsGadget is a consistency gadget (Figure 7) between consecutive
// appearances A (earlier clause) and B of the same variable.
type ConsGadget struct {
	Var         int
	SameLiteral bool // ℓ-ℓ gadget vs ℓ-ℓ̄ gadget
	U1, U2      int
	Tree1       int // u1's tree edge (weight K)
	Tree2       int // u2's tree edge (weight K)
	Non1        int // u1's non-tree edge
	Non2        int // u2's non-tree edge
}

// SATConstants returns n_1..n_9 per the paper: n_9 = 7, n_j = 4·n_{j+1}².
func SATConstants() []*big.Int {
	n := make([]*big.Int, 10)
	n[9] = big.NewInt(7)
	for j := 8; j >= 1; j-- {
		sq := new(big.Int).Mul(n[j+1], n[j+1])
		n[j] = sq.Mul(sq, big.NewInt(4))
	}
	return n
}

// BuildSAT constructs the reduction for formula f. K may be nil, in which
// case it defaults to 100·(3|C|+1) — "significantly larger than 3|C|".
func BuildSAT(f *reductions.Formula, K *big.Rat) (*SATGadget, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	labels, err := f.LabelVariables()
	if err != nil {
		return nil, err
	}
	if K == nil {
		K = new(big.Rat).SetInt64(int64(100 * (3*len(f.Clauses) + 1)))
	}
	sg := &SATGadget{
		F:      f,
		Labels: labels,
		N:      SATConstants(),
		K:      K,
		G:      graph.New(1),
		Root:   0,
	}
	sg.mult = []*big.Int{big.NewInt(0)} // root
	sg.tCount = []int{0}

	for ci, c := range f.Clauses {
		sg.buildClause(ci, c)
	}
	sg.buildConsistency()
	sg.buildAux()

	eg, err := exact.NewGame(sg.G, sg.Root, sg.weights, sg.mult)
	if err != nil {
		return nil, err
	}
	sg.EG = eg
	return sg, nil
}

// node adds a graph node with unit multiplicity and returns its index.
func (sg *SATGadget) node() int {
	v := sg.G.AddNode()
	sg.mult = append(sg.mult, big.NewInt(1))
	sg.tCount = append(sg.tCount, 0)
	return v
}

// edge adds an edge with exact weight w (float approximation for display)
// and returns its ID; inTree appends it to the target tree T.
func (sg *SATGadget) edge(u, v int, w *big.Rat, inTree bool) int {
	approx, _ := w.Float64()
	id := sg.G.AddEdge(u, v, approx)
	sg.weights = append(sg.weights, w)
	if inTree {
		sg.Tree = append(sg.Tree, id)
	}
	return id
}

// invN returns 1/(n_j + d) as an exact rational.
func (sg *SATGadget) invN(j int, d int64) *big.Rat {
	return exact.Inv(exact.AddI(sg.N[j], exact.I(d)))
}

// buildClause lays down the three chained literal gadgets of clause c and
// the clause node v(c).
func (sg *SATGadget) buildClause(ci int, c reductions.Clause) {
	// Sort the three literals by ascending label (j1 < j2 < j3).
	lits := []reductions.Literal{c[0], c[1], c[2]}
	for i := 0; i < 3; i++ {
		for k := i + 1; k < 3; k++ {
			if sg.Labels[lits[k].Var] < sg.Labels[lits[i].Var] {
				lits[i], lits[k] = lits[k], lits[i]
			}
		}
	}
	one := exact.RI(1)
	half := exact.R(3, 2)
	var apps [3]Appearance
	l := sg.Root
	for i, lit := range lits {
		j := sg.Labels[lit.Var]
		a := Appearance{Lit: lit, Label: j, L: l, AuxMid: -1, AuxEnd: -1}
		a.Mid = sg.node()
		a.End = sg.node()
		a.V1 = sg.node()
		a.V2 = sg.node()
		a.V3 = sg.node()
		a.Light1 = sg.edge(a.L, a.Mid, one, true)
		a.Light2 = sg.edge(a.Mid, a.End, one, true)
		a.HeavyLV1 = sg.edge(a.L, a.V1, sg.K, true)
		a.HeavyV1V2 = sg.edge(a.V1, a.V2, sg.K, true)
		a.HeavyV3End = sg.edge(a.V3, a.End, sg.K, true)
		// (l, v3): K + 1/(n_j − 3)
		a.NonTreeLV3 = sg.edge(a.L, a.V3, exact.Add(sg.K, sg.invN(j, -3)), false)
		// (v2, u): 3K/2 − 1/(n_j + 1)
		w := exact.Sub(exact.Mul(half, sg.K), sg.invN(j, 1))
		a.NonTreeV2End = sg.edge(a.V2, a.End, w, false)
		apps[i] = a
		l = a.End
	}
	vc := sg.node()
	treeEdge := sg.edge(apps[2].End, vc, sg.K, true)
	// (v(c), r): K + 1/n_{j1} + 1/(n_{j2}−3) + 1/(n_{j3}−3)
	w := exact.Sum(sg.K,
		sg.invN(apps[0].Label, 0),
		sg.invN(apps[1].Label, -3),
		sg.invN(apps[2].Label, -3))
	nonTree := sg.edge(vc, sg.Root, w, false)
	sg.Apps = append(sg.Apps, apps)
	sg.Clauses = append(sg.Clauses, ClauseNode{VC: vc, TreeEdge: treeEdge, NonTreeEdge: nonTree})
}

// appearanceOf locates the gadget of variable v's k-th appearance.
func (sg *SATGadget) appearanceOf(occ reductions.Occurrence, v int) *Appearance {
	for i := range sg.Apps[occ.Clause] {
		a := &sg.Apps[occ.Clause][i]
		if a.Lit.Var == v {
			return a
		}
	}
	panic("gadgets: appearance not found")
}

// buildConsistency connects consecutive appearances of each variable.
func (sg *SATGadget) buildConsistency() {
	occ := sg.F.Occurrences()
	for v, apps := range occ {
		j := sg.Labels[v]
		for i := 0; i+1 < len(apps); i++ {
			a := sg.appearanceOf(apps[i], v)
			b := sg.appearanceOf(apps[i+1], v)
			cg := ConsGadget{Var: v, SameLiteral: apps[i].Neg == apps[i+1].Neg}
			cg.U1 = sg.node()
			cg.U2 = sg.node()
			if cg.SameLiteral {
				// ℓ-ℓ gadget: both ends attach to the Mid nodes
				// u(c,ℓ̄); non-tree weight K + 1/(2n_j).
				w := exact.Add(sg.K, exact.Inv(exact.MulI(exact.I(2), sg.N[j])))
				cg.Tree1 = sg.edge(cg.U1, a.Mid, sg.K, true)
				cg.Non1 = sg.edge(cg.U1, b.Mid, w, false)
				cg.Tree2 = sg.edge(cg.U2, b.Mid, sg.K, true)
				cg.Non2 = sg.edge(cg.U2, a.Mid, w, false)
				sg.tCount[a.Mid]++
				sg.tCount[b.Mid]++
			} else {
				// ℓ-ℓ̄ gadget: u1 attaches to the earlier appearance's
				// End node u(c1,ℓ) and deviates to the later gadget's Mid
				// node u(c2,ℓ) at weight K + 1/n_j + 1/(2n_j²); u2
				// attaches to u(c2,ℓ) and deviates to u(c1,ℓ) at K.
				twoN2 := exact.MulI(exact.I(2), exact.MulI(sg.N[j], sg.N[j]))
				w := exact.Sum(sg.K, sg.invN(j, 0), exact.Inv(twoN2))
				cg.Tree1 = sg.edge(cg.U1, a.End, sg.K, true)
				cg.Non1 = sg.edge(cg.U1, b.Mid, w, false)
				cg.Tree2 = sg.edge(cg.U2, b.Mid, sg.K, true)
				cg.Non2 = sg.edge(cg.U2, a.End, sg.K, false)
				sg.tCount[a.End]++
				sg.tCount[b.Mid]++
			}
			sg.Cons = append(sg.Cons, cg)
		}
	}
}

// buildAux pads usage counts with auxiliary players: the first light edge
// of an appearance with label j must carry exactly n_j players and the
// second n_j − 3.
func (sg *SATGadget) buildAux() {
	zero := new(big.Rat)
	attach := func(to int, count *big.Int) int {
		if count.Sign() < 0 {
			panic(fmt.Sprintf("gadgets: negative auxiliary multiplicity %s at node %d", count, to))
		}
		if count.Sign() == 0 {
			return -1
		}
		v := sg.G.AddNode()
		sg.mult = append(sg.mult, count)
		sg.tCount = append(sg.tCount, 0)
		sg.edge(to, v, zero, true)
		return v
	}
	for ci := range sg.Apps {
		for i := range sg.Apps[ci] {
			a := &sg.Apps[ci][i]
			// Mid: 2 − t auxiliary players.
			a.AuxMid = attach(a.Mid, exact.I(int64(2-sg.tCount[a.Mid])))
			// End: n_{j3} − 6 − t for the last gadget,
			// n_{ji} − n_{j(i+1)} − 7 − t otherwise.
			var count *big.Int
			if i == 2 {
				count = exact.SubI(sg.N[a.Label], exact.I(int64(6+sg.tCount[a.End])))
			} else {
				next := sg.Apps[ci][i+1].Label
				count = exact.SubI(sg.N[a.Label], exact.AddI(sg.N[next], exact.I(int64(7+sg.tCount[a.End]))))
			}
			a.AuxEnd = attach(a.End, count)
		}
	}
}

// State returns the exact broadcast state of the target tree T.
func (sg *SATGadget) State() (*exact.State, error) {
	return exact.NewState(sg.EG, sg.Tree)
}

// LightChoice selects which light edge of each appearance gadget is
// subsidized: true means Light2 = (u(c,ℓ̄),u(c,ℓ)) ∈ E(ℓ), false means
// Light1 = (l(c,ℓ),u(c,ℓ̄)) ∈ E(ℓ̄). One choice per appearance, indexed
// [clause][position].
type LightChoice [][3]bool

// BalancedSubsidy realizes a balanced light assignment: exactly one light
// edge subsidized per appearance gadget, per the given choices.
func (sg *SATGadget) BalancedSubsidy(choice LightChoice) exact.Subsidy {
	b := make(exact.Subsidy, sg.G.M())
	for ci := range sg.Apps {
		for i := range sg.Apps[ci] {
			a := &sg.Apps[ci][i]
			if choice[ci][i] {
				b[a.Light2] = exact.RI(1)
			} else {
				b[a.Light1] = exact.RI(1)
			}
		}
	}
	return b
}

// SubsidyForAssignment maps a truth assignment to its consistent balanced
// light assignment: variable x true subsidizes the edges of E(x), false
// those of E(x̄). Its cost is exactly 3|C| (one unit edge per appearance).
func (sg *SATGadget) SubsidyForAssignment(assign []bool) exact.Subsidy {
	choice := sg.ChoiceForAssignment(assign)
	return sg.BalancedSubsidy(choice)
}

// ChoiceForAssignment expresses a truth assignment as per-gadget choices:
// the appearance of literal λ subsidizes Light2 ∈ E(λ) iff λ is true.
func (sg *SATGadget) ChoiceForAssignment(assign []bool) LightChoice {
	choice := make(LightChoice, len(sg.Apps))
	for ci := range sg.Apps {
		for i := range sg.Apps[ci] {
			a := &sg.Apps[ci][i]
			litTrue := assign[a.Lit.Var] != a.Lit.Neg
			choice[ci][i] = litTrue
		}
	}
	return choice
}

// IsConsistent reports whether a per-gadget choice corresponds to a truth
// assignment (all appearances of each variable agree on which side of
// E(x)/E(x̄) is subsidized). It returns the induced assignment when so.
func (sg *SATGadget) IsConsistent(choice LightChoice) ([]bool, bool) {
	assign := make([]bool, sg.F.NumVars)
	seen := make([]bool, sg.F.NumVars)
	for ci := range sg.Apps {
		for i := range sg.Apps[ci] {
			a := &sg.Apps[ci][i]
			// choice true ⟺ E(λ) side ⟺ λ true.
			val := choice[ci][i] != a.Lit.Neg
			if seen[a.Lit.Var] && assign[a.Lit.Var] != val {
				return nil, false
			}
			seen[a.Lit.Var] = true
			assign[a.Lit.Var] = val
		}
	}
	return assign, true
}

// LightEdges returns all 6|C| light edge IDs.
func (sg *SATGadget) LightEdges() []int {
	var ids []int
	for ci := range sg.Apps {
		for i := range sg.Apps[ci] {
			ids = append(ids, sg.Apps[ci][i].Light1, sg.Apps[ci][i].Light2)
		}
	}
	return ids
}
