package gadgets

import (
	"testing"

	"netdesign/internal/numeric"
)

func TestBypassShape(t *testing.T) {
	for kappa := 1; kappa <= 10; kappa++ {
		bp := NewBypass(kappa)
		if bp.Ell != numeric.BypassLength(kappa) {
			t.Errorf("kappa=%d: ell=%d", kappa, bp.Ell)
		}
		if len(bp.BasicPath) != bp.Ell {
			t.Errorf("kappa=%d: path length %d", kappa, len(bp.BasicPath))
		}
		if bp.BypassW <= 1 {
			t.Errorf("kappa=%d: bypass weight %v must exceed 1", kappa, bp.BypassW)
		}
		if bp.G.N() != bp.Ell+1 || bp.G.M() != bp.Ell+1 {
			t.Errorf("kappa=%d: graph shape %v", kappa, bp.G)
		}
	}
}

// TestLemma4 verifies the Bypass gadget's defining dichotomy: with β < κ
// players attached behind the connector the connector player deviates to
// the bypass edge; with β ≥ κ no basic-path player deviates.
func TestLemma4(t *testing.T) {
	for kappa := 2; kappa <= 9; kappa++ {
		for beta := kappa - 2; beta <= kappa+2; beta++ {
			if beta < 0 {
				continue
			}
			st, bp, err := Lemma4Instance(kappa, beta)
			if err != nil {
				t.Fatalf("kappa=%d beta=%d: %v", kappa, beta, err)
			}
			v := st.FindViolation(nil)
			if beta < kappa {
				if v == nil {
					t.Errorf("kappa=%d beta=%d: expected a deviation", kappa, beta)
					continue
				}
				if v.Node != bp.Connector || v.ViaEdge != bp.BypassEdge {
					t.Errorf("kappa=%d beta=%d: wrong violation %v (connector=%d bypass=%d)",
						kappa, beta, v, bp.Connector, bp.BypassEdge)
				}
				// The connector player's tree cost is H_{β+ℓ} − H_β.
				want := numeric.HarmonicDiff(beta, beta+bp.Ell)
				if !numeric.AlmostEqual(v.Current, want) {
					t.Errorf("kappa=%d beta=%d: cost %v, want %v", kappa, beta, v.Current, want)
				}
			} else {
				if v != nil {
					t.Errorf("kappa=%d beta=%d: unexpected deviation %v", kappa, beta, v)
				}
			}
		}
	}
}

func TestLemma4BoundaryExact(t *testing.T) {
	// At β = κ exactly, H_{κ+ℓ} − H_κ is the bypass weight itself: the
	// connector player is indifferent-or-better and must not deviate.
	st, _, err := Lemma4Instance(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(nil) {
		t.Error("β = κ must be stable")
	}
}

func TestBypassNegativeKappaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBypass(-1)
}
