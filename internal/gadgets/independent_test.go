package gadgets

import (
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/reductions"
)

// k4 returns the complete graph on 4 nodes — the smallest 3-regular graph.
func k4() *graph.Graph {
	return graph.Complete(4, func(i, j int) float64 { return 1 })
}

// k33 returns the 3-regular complete bipartite graph K_{3,3}.
func k33() *graph.Graph {
	g := graph.New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestBuildISValidation(t *testing.T) {
	if _, err := BuildIS(k4(), 0); err == nil {
		t.Error("delta 0 accepted")
	}
	if _, err := BuildIS(k4(), 0.2); err == nil {
		t.Error("delta beyond 1/12 accepted")
	}
	if _, err := BuildIS(graph.Path(3, 1), 0.05); err == nil {
		t.Error("non-3-regular graph accepted")
	}
	ig, err := BuildIS(k4(), 1.0/12)
	if err != nil {
		t.Fatal(err)
	}
	// n U-nodes + 3n/2 V-nodes + root.
	if ig.G.N() != 1+4+6 {
		t.Errorf("node count %d", ig.G.N())
	}
	// 5n/2 direct edges + 2 cross edges per H-edge.
	if ig.G.M() != 10+12 {
		t.Errorf("edge count %d", ig.G.M())
	}
}

func TestISEquilibriaAndWeights(t *testing.T) {
	for name, h := range map[string]*graph.Graph{"K4": k4(), "K33": k33()} {
		ig, err := BuildIS(h, 1.0/12)
		if err != nil {
			t.Fatal(err)
		}
		// Empty set: all type-A branches — an equilibrium of weight 5n/2.
		st, err := ig.StateForIS(nil)
		if err != nil {
			t.Fatal(err)
		}
		if !st.IsEquilibrium(nil) {
			t.Errorf("%s: all-A forest should be an equilibrium", name)
		}
		if !numeric.AlmostEqual(st.Weight(), 2.5*float64(h.N())) {
			t.Errorf("%s: all-A weight %v", name, st.Weight())
		}
		// Best equilibrium via exact max IS.
		best, wgt, mis, err := ig.BestEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		if !best.IsEquilibrium(nil) {
			t.Errorf("%s: best A/B forest not an equilibrium: %v", name, best.FindViolation(nil))
		}
		if !numeric.AlmostEqual(best.Weight(), wgt) {
			t.Errorf("%s: weight %v ≠ formula %v", name, best.Weight(), wgt)
		}
		if !numeric.AlmostEqual(wgt, ig.EquilibriumWeight(len(mis))) {
			t.Errorf("%s: formula inconsistency", name)
		}
		// Every single-node IS also yields an equilibrium.
		for v := 0; v < h.N(); v++ {
			st, err := ig.StateForIS([]int{v})
			if err != nil {
				t.Fatal(err)
			}
			if !st.IsEquilibrium(nil) {
				t.Errorf("%s: single-B forest at %d unstable: %v", name, v, st.FindViolation(nil))
			}
		}
	}
}

func TestISBranchCaseAnalysis(t *testing.T) {
	// The Figure-3 case analysis: trees containing a type C, D or E
	// branch are never equilibria.
	for name, h := range map[string]*graph.Graph{"K4": k4(), "K33": k33()} {
		ig, err := BuildIS(h, 1.0/12)
		if err != nil {
			t.Fatal(err)
		}
		builders := map[string]func() ([]int, error){
			"C": func() ([]int, error) { return ig.TreeWithTypeC(0) },
			"D": ig.TreeWithTypeD,
			"E": ig.TreeWithTypeE,
		}
		for btype, build := range builders {
			tree, err := build()
			if err != nil {
				t.Fatalf("%s type %s: %v", name, btype, err)
			}
			if !ig.G.IsSpanningTree(tree) {
				t.Fatalf("%s type %s: not a spanning tree", name, btype)
			}
			st, err := broadcast.NewState(ig.BG, tree)
			if err != nil {
				t.Fatal(err)
			}
			if st.IsEquilibrium(nil) {
				t.Errorf("%s: tree with type-%s branch must not be an equilibrium", name, btype)
			}
		}
	}
}

func TestISRejectsNonIndependent(t *testing.T) {
	ig, err := BuildIS(k4(), 1.0/12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ig.TreeForIS([]int{0, 1}); err == nil {
		t.Error("adjacent nodes accepted as IS")
	}
	if _, err := ig.TreeWithTypeC(99); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestISRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{6, 8, 10} {
		h, err := graph.RandomRegular(rng, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		ig, err := BuildIS(h, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		best, wgt, mis, err := ig.BestEquilibrium()
		if err != nil {
			t.Fatal(err)
		}
		if !reductions.IsIndependentSet(h, mis) {
			t.Fatal("max IS not independent")
		}
		if !best.IsEquilibrium(nil) {
			t.Fatalf("n=%d: best forest unstable: %v", n, best.FindViolation(nil))
		}
		if want := 2.5*float64(n) - (1-0.05)*float64(len(mis)); !numeric.AlmostEqual(wgt, want) {
			t.Errorf("n=%d: weight %v want %v", n, wgt, want)
		}
		// Weight decreases as the IS grows: the bigger the independent
		// set, the better the equilibrium — the Theorem 5 gap mechanism.
		if len(mis) > 0 {
			st0, _ := ig.StateForIS(nil)
			if st0.Weight() <= best.Weight() {
				t.Errorf("n=%d: B-branches should strictly improve weight", n)
			}
		}
	}
}
