package gadgets

import (
	"fmt"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
)

// CycleInstance builds the Theorem-11 lower-bound instance: a cycle of
// n+1 unit-weight edges spanning the root and n players, with the target
// tree being the full path (every edge except one incident to the root).
// Enforcing it needs at least (n+1)/e − 2 subsidies while wgt(T) = n, so
// the required fraction approaches 1/e.
func CycleInstance(n int) (*broadcast.State, error) {
	if n < 1 {
		return nil, fmt.Errorf("gadgets: cycle instance needs n ≥ 1")
	}
	g := graph.Cycle(n, 1)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		return nil, err
	}
	tree := make([]int, n)
	for i := range tree {
		tree[i] = i
	}
	return broadcast.NewState(bg, tree)
}

// CycleLowerBound returns the paper's analytic lower bound for the cycle
// instance: (n+1)/e − 2.
func CycleLowerBound(n int) float64 { return float64(n+1)/math.E - 2 }

// AONPathInstance builds the Theorem-21 instance showing all-or-nothing
// subsidies may need an e/(2e−1) fraction of wgt(T). The graph is a path
// ⟨r, v_1, …, v_n⟩ in which the first n−1 edges have weight
// x = 1/(n − n/e + 1) and the last edge (v_{n−1}, v_n) has weight 1, plus
// two shortcut edges: (r, v_{n−1}) of weight x and (r, v_n) of weight 1.
// The target tree is the path.
//
// Either the heavy unit edge stays unsubsidized — then every one of the
// n−1 light path edges must be subsidized to appease the player at v_n —
// or it is subsidized, and the player at v_{n−1} still needs ~(n/e)·x of
// packed subsidies against her own shortcut.
func AONPathInstance(n int) (*broadcast.State, error) {
	if n < 3 {
		return nil, fmt.Errorf("gadgets: AON path instance needs n ≥ 3")
	}
	x := 1 / (float64(n) - float64(n)/math.E + 1)
	g := graph.New(n + 1) // node 0 = root, players 1..n
	tree := make([]int, 0, n)
	tree = append(tree, g.AddEdge(0, 1, x))
	for i := 1; i <= n-2; i++ {
		tree = append(tree, g.AddEdge(i, i+1, x))
	}
	tree = append(tree, g.AddEdge(n-1, n, 1))
	g.AddEdge(0, n-1, x) // shortcut to v_{n−1}
	g.AddEdge(0, n, 1)   // shortcut to v_n
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		return nil, err
	}
	st, err := broadcast.NewState(bg, tree)
	if err != nil {
		return nil, err
	}
	if !graph.IsMinimumSpanningTree(g, tree) {
		return nil, fmt.Errorf("gadgets: AON path tree is not an MST")
	}
	return st, nil
}

// AONBoundFraction is the asymptotic all-or-nothing fraction e/(2e−1).
func AONBoundFraction() float64 { return math.E / (2*math.E - 1) }
