package gadgets

import (
	"fmt"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/reductions"
)

// BinPackGadget is the Theorem-3 reduction graph (Figure 2) from a strict
// BIN PACKING instance: one Bypass gadget of capacity C per bin, one star
// of s_i players per item (a center plus s_i − 1 colocated satellites),
// and a complete bipartite layer of weight 2(H_{C+ℓ} − H_C) between item
// centers and bin connectors. A minimum spanning tree picks one bipartite
// edge per item, i.e. an item→bin assignment; it is an equilibrium iff
// the assignment fills every bin exactly — iff the packing instance is
// solvable.
type BinPackGadget struct {
	In         reductions.BinPacking
	G          *graph.Graph
	BG         *broadcast.Game
	Root       int
	Ell        int     // basic-path length per bin
	CrossW     float64 // 2(H_{C+ℓ} − H_C): weight of each bipartite edge
	K          float64 // MST weight: k·ℓ + n·CrossW
	Connectors []int   // per bin: connector node
	PathEdges  [][]int // per bin: basic-path edge IDs (root outward)
	Bypass     []int   // per bin: bypass edge ID
	Centers    []int   // per item: star center x_i
	Satellite  []int   // per item: satellite node (-1 when s_i = 1)
	SatEdge    []int   // per item: zero-weight satellite edge (-1 when none)
	CrossEdges [][]int // CrossEdges[item][bin] = bipartite edge ID
}

// BuildBinPack constructs the reduction graph for a strict instance.
// Item stars use a single satellite node of multiplicity s_i − 1 instead
// of s_i − 1 physical leaves; colocated players are symmetric, so
// equilibrium verdicts are unchanged while the graph stays small.
func BuildBinPack(in reductions.BinPacking) (*BinPackGadget, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	C := in.Capacity
	k := in.Bins
	n := len(in.Sizes)
	ell := numeric.BypassLength(C)
	bypassW := numeric.HarmonicDiff(C, C+ell)
	crossW := 2 * bypassW

	g := graph.New(1)
	root := 0
	bp := &BinPackGadget{
		In: in, G: g, Root: root, Ell: ell, CrossW: crossW,
		K: float64(k*ell) + float64(n)*crossW,
	}
	var mult []int64
	mult = append(mult, 0) // root

	for j := 0; j < k; j++ {
		prev := root
		var path []int
		for step := 0; step < ell; step++ {
			v := g.AddNode()
			mult = append(mult, 1)
			path = append(path, g.AddEdge(prev, v, 1))
			prev = v
		}
		bp.Connectors = append(bp.Connectors, prev)
		bp.PathEdges = append(bp.PathEdges, path)
		bp.Bypass = append(bp.Bypass, g.AddEdge(prev, root, bypassW))
	}
	for i, s := range in.Sizes {
		x := g.AddNode()
		mult = append(mult, 1)
		bp.Centers = append(bp.Centers, x)
		if s > 1 {
			sat := g.AddNode()
			mult = append(mult, int64(s-1))
			bp.Satellite = append(bp.Satellite, sat)
			bp.SatEdge = append(bp.SatEdge, g.AddEdge(x, sat, 0))
		} else {
			bp.Satellite = append(bp.Satellite, -1)
			bp.SatEdge = append(bp.SatEdge, -1)
		}
		row := make([]int, k)
		for j := 0; j < k; j++ {
			row[j] = g.AddEdge(x, bp.Connectors[j], crossW)
		}
		bp.CrossEdges = append(bp.CrossEdges, row)
		_ = i
	}
	bg, err := broadcast.NewGameMult(g, root, mult)
	if err != nil {
		return nil, err
	}
	bp.BG = bg
	return bp, nil
}

// TreeForAssignment returns the minimum spanning tree induced by an
// item→bin assignment: all basic paths, all satellite edges, and the
// chosen bipartite edge per item.
func (bp *BinPackGadget) TreeForAssignment(assign []int) ([]int, error) {
	if len(assign) != len(bp.In.Sizes) {
		return nil, fmt.Errorf("gadgets: assignment has %d entries for %d items", len(assign), len(bp.In.Sizes))
	}
	var tree []int
	for _, path := range bp.PathEdges {
		tree = append(tree, path...)
	}
	for i, j := range assign {
		if j < 0 || j >= bp.In.Bins {
			return nil, fmt.Errorf("gadgets: item %d assigned to invalid bin %d", i, j)
		}
		tree = append(tree, bp.CrossEdges[i][j])
		if bp.SatEdge[i] >= 0 {
			tree = append(tree, bp.SatEdge[i])
		}
	}
	return tree, nil
}

// StateForAssignment builds the broadcast state of an assignment tree.
func (bp *BinPackGadget) StateForAssignment(assign []int) (*broadcast.State, error) {
	tree, err := bp.TreeForAssignment(assign)
	if err != nil {
		return nil, err
	}
	return broadcast.NewState(bp.BG, tree)
}

// ForEachAssignment enumerates every item→bin assignment (bins^items of
// them) and calls fn; fn may return false to stop. Every MST of the
// gadget is an assignment tree, so this enumerates exactly the candidate
// equilibrium MSTs of Theorem 3.
func (bp *BinPackGadget) ForEachAssignment(fn func(assign []int) bool) {
	n := len(bp.In.Sizes)
	assign := make([]int, n)
	for {
		cp := append([]int(nil), assign...)
		if !fn(cp) {
			return
		}
		i := 0
		for ; i < n; i++ {
			assign[i]++
			if assign[i] < bp.In.Bins {
				break
			}
			assign[i] = 0
		}
		if i == n {
			return
		}
	}
}

// HasEquilibriumMST reports whether some assignment tree is an
// equilibrium without subsidies, returning a witness assignment. By
// Theorem 3 this holds iff the packing instance is solvable.
func (bp *BinPackGadget) HasEquilibriumMST() ([]int, bool) {
	var witness []int
	bp.ForEachAssignment(func(assign []int) bool {
		st, err := bp.StateForAssignment(assign)
		if err != nil {
			return true
		}
		if st.IsEquilibrium(nil) {
			witness = assign
			return false
		}
		return true
	})
	return witness, witness != nil
}

// BinLoads returns the total item size entering each bin under assign —
// the β_j of the paper's proof (bin j's subtree holds β_j + ℓ players,
// with β_j = Σ_{i→j} s_i).
func (bp *BinPackGadget) BinLoads(assign []int) []int {
	loads := make([]int, bp.In.Bins)
	for i, j := range assign {
		loads[j] += bp.In.Sizes[i]
	}
	return loads
}
