package gadgets

import (
	"math/rand"
	"testing"

	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/reductions"
)

func TestBuildBinPackShape(t *testing.T) {
	in := reductions.BinPacking{Sizes: []int{4, 2, 2}, Bins: 1, Capacity: 8}
	bp, err := BuildBinPack(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.Connectors) != 1 || len(bp.Centers) != 3 {
		t.Fatalf("shape wrong: %d connectors %d centers", len(bp.Connectors), len(bp.Centers))
	}
	// K = k·ℓ + n·2(H_{C+ℓ}−H_C).
	wantK := float64(bp.Ell) + 3*bp.CrossW
	if !numeric.AlmostEqual(bp.K, wantK) {
		t.Errorf("K = %v, want %v", bp.K, wantK)
	}
	// Item of size 1 would have no satellite; size 2 gets multiplicity 1.
	if bp.Satellite[1] == -1 {
		t.Error("size-2 item should carry a satellite node")
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildBinPack(reductions.BinPacking{Sizes: []int{3}, Bins: 1, Capacity: 3}); err == nil {
		t.Error("invalid instance accepted")
	}
}

func TestAssignmentTreeIsMST(t *testing.T) {
	in := reductions.BinPacking{Sizes: []int{4, 4, 2, 2}, Bins: 2, Capacity: 6}
	bp, err := BuildBinPack(in)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := bp.TreeForAssignment([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !bp.G.IsSpanningTree(tree) {
		t.Fatal("assignment tree is not a spanning tree")
	}
	if !graph.IsMinimumSpanningTree(bp.G, tree) {
		t.Fatal("assignment tree is not an MST")
	}
	if !numeric.AlmostEqual(bp.G.WeightOf(tree), bp.K) {
		t.Errorf("MST weight %v ≠ K %v", bp.G.WeightOf(tree), bp.K)
	}
	if _, err := bp.TreeForAssignment([]int{0, 1}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := bp.TreeForAssignment([]int{0, 1, 0, 9}); err == nil {
		t.Error("out-of-range bin accepted")
	}
}

// TestTheorem3BothDirections: a perfect packing's tree is an equilibrium;
// an unbalanced assignment's tree is not.
func TestTheorem3BothDirections(t *testing.T) {
	in := reductions.BinPacking{Sizes: []int{4, 4, 2, 2}, Bins: 2, Capacity: 6}
	bp, err := BuildBinPack(in)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect: {4,2} and {4,2}.
	st, err := bp.StateForAssignment([]int{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IsEquilibrium(nil) {
		t.Errorf("perfect packing not an equilibrium: %v", st.FindViolation(nil))
	}
	// Unbalanced: {4,4} and {2,2} → bin 1 underfull (β=4 < C=6): the
	// connector player of bin 1 must deviate to her bypass edge.
	bad, err := bp.StateForAssignment([]int{0, 0, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	v := bad.FindViolation(nil)
	if v == nil {
		t.Fatal("unbalanced assignment should not be an equilibrium")
	}
	if v.Node != bp.Connectors[1] || v.ViaEdge != bp.Bypass[1] {
		t.Errorf("violation %v, want connector %d via bypass %d", v, bp.Connectors[1], bp.Bypass[1])
	}
	loads := bp.BinLoads([]int{0, 0, 1, 1})
	if loads[0] != 8 || loads[1] != 4 {
		t.Errorf("loads = %v", loads)
	}
}

// TestTheorem3Equivalence validates the reduction against the exact bin
// packing solver on a family of strict instances, solvable and not.
func TestTheorem3Equivalence(t *testing.T) {
	instances := []reductions.BinPacking{
		{Sizes: []int{4, 2, 2, 4, 4}, Bins: 2, Capacity: 8},  // solvable: {4,4},{4,2,2}
		{Sizes: []int{8, 8, 8}, Bins: 2, Capacity: 12},       // unsolvable
		{Sizes: []int{6, 6, 6, 6}, Bins: 2, Capacity: 12},    // solvable
		{Sizes: []int{10, 6, 6, 2}, Bins: 2, Capacity: 12},   // solvable: {10,2},{6,6}
		{Sizes: []int{6, 6}, Bins: 1, Capacity: 12},          // trivially solvable
		{Sizes: []int{10, 10, 2, 2}, Bins: 2, Capacity: 12},  // solvable: {10,2}×2
		{Sizes: []int{8, 6, 6, 2, 2}, Bins: 2, Capacity: 12}, // solvable: {8,2,2},{6,6}
		{Sizes: []int{10, 10, 10, 6}, Bins: 3, Capacity: 12}, // unsolvable (10 needs a 2)
	}
	for k, in := range instances {
		if err := in.Validate(); err != nil {
			t.Fatalf("instance %d invalid: %v", k, err)
		}
		_, solvable := in.SolveExact()
		bp, err := BuildBinPack(in)
		if err != nil {
			t.Fatal(err)
		}
		witness, hasEq := bp.HasEquilibriumMST()
		if hasEq != solvable {
			t.Errorf("instance %d: equilibrium MST %v but packing solvable %v", k, hasEq, solvable)
		}
		if hasEq && !in.CheckAssignment(witness) {
			t.Errorf("instance %d: equilibrium witness %v is not a perfect packing", k, witness)
		}
	}
}

func TestTheorem3RandomizedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized reduction check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 6; trial++ {
		k := 1 + rng.Intn(2)
		C := 2 * (3 + rng.Intn(3))
		// Half the trials are built solvable; the rest arbitrary strict.
		var sizes []int
		for j := 0; j < k; j++ {
			rem := C
			for rem > 0 {
				s := 2 * (1 + rng.Intn(rem/2+1))
				if s > rem {
					s = rem
				}
				sizes = append(sizes, s)
				rem -= s
			}
		}
		in := reductions.BinPacking{Sizes: sizes, Bins: k, Capacity: C}
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		if len(sizes) > 6 {
			continue // keep bins^items enumeration small
		}
		_, solvable := in.SolveExact()
		bp, err := BuildBinPack(in)
		if err != nil {
			t.Fatal(err)
		}
		_, hasEq := bp.HasEquilibriumMST()
		if hasEq != solvable {
			t.Fatalf("trial %d: mismatch (sizes=%v k=%d C=%d)", trial, sizes, k, C)
		}
	}
}
