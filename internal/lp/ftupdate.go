package lp

import "math"

// Forrest–Tomlin basis updates: after a simplex pivot replaces basis
// column `slot`, the LU factors are repaired in place instead of
// appending a product-form eta. The factored form maintained here is
//
//	B = L · R₁⁻¹ · R₂⁻¹ ⋯ R_k⁻¹ · U
//
// where L is the (fixed) lower factor of the last refactorization, each
// R_u is an elementary row transformation recorded by one update, and U
// is upper triangular under the position permutation uorder/upos. A
// pivot replaces one column of U with the spike s = R_k ⋯ R₁ L⁻¹ a_q
// (the entering column after the forward half of FTRAN — stashed by
// ftranFT on every solve, so the last FTRAN before update is always the
// entering column). The replaced row/column pair is rotated to the last
// position and the detached old row is eliminated against the rows it
// overlaps, which — the Forrest–Tomlin observation — fills in no other
// row: the elimination only produces the multipliers R_{k+1} and the new
// bottom-corner diagonal. FTRAN/BTRAN therefore keep costing factor
// nonzeros plus the accumulated eta multipliers, but unlike the
// product-form file the U factor itself stays current, so the eta lists
// here are the short elimination rows, not full tableau columns.
//
// The update can fail numerically: a small new diagonal relative to the
// spike means the rotated elimination is unstable. update reports false
// and leaves the factor unusable; the caller must refactorize from the
// (already updated) basis before the next solve.

// ftStabTol rejects an update whose new diagonal is smaller than this
// fraction of the spike's magnitude: |d| < ftStabTol·‖s‖∞ signals
// cancellation the rotated elimination cannot see, so the caller
// refactorizes instead of trusting the updated factor.
const ftStabTol = 1e-9

// initUpdatable transcribes the flat post-elimination factors into the
// dynamic row-wise form the Forrest–Tomlin updates rewrite. O(nnz(U) + m);
// steady state reuses all slices.
func (f *luFactor) initUpdatable() {
	m := f.m
	if cap(f.urows) < m {
		f.urows = append(f.urows[:cap(f.urows)], make([][]luEnt, m-cap(f.urows))...)
		f.ucolRows = append(f.ucolRows[:cap(f.ucolRows)], make([][]int32, m-cap(f.ucolRows))...)
	}
	f.urows = f.urows[:m]
	f.ucolRows = f.ucolRows[:m]
	f.uorder = grown(f.uorder, m)
	f.upos = grown(f.upos, m)
	f.spike = grown(f.spike, m)
	for k := 0; k < m; k++ {
		f.urows[k] = f.urows[k][:0]
		f.ucolRows[k] = f.ucolRows[k][:0]
		f.uorder[k] = int32(k)
		f.upos[k] = int32(k)
	}
	for k := 0; k < m; k++ {
		for e := f.uStart[k]; e < f.uStart[k+1]; e++ {
			c := f.uCol[e]
			f.urows[k] = append(f.urows[k], luEnt{col: c, val: f.uVal[e]})
			f.ucolRows[c] = append(f.ucolRows[c], int32(k))
		}
	}
	f.nupd = 0
	f.retaR = f.retaR[:0]
	f.retaStart = append(f.retaStart[:0], 0)
	f.retaIdx = f.retaIdx[:0]
	f.retaVal = f.retaVal[:0]
	f.updatable = true
}

// update repairs the factors after basis column `slot` was replaced by
// the column whose FTRAN ran last (its forward intermediate is in
// spike). It reports false when the update is numerically unsafe; the
// factor must then be rebuilt with a fresh factorization.
func (f *luFactor) update(slot int) bool {
	m := f.m
	t := f.colPos[slot] // step owning the replaced column
	pt := f.upos[t]
	// Remove the old column t from every row holding it. ucolRows may
	// list rows whose entry is already gone (detached by an earlier
	// update) or list a row more than once; the scan tolerates both.
	for _, k := range f.ucolRows[t] {
		row := f.urows[k]
		for e := range row {
			if row[e].col == t {
				row[e] = row[len(row)-1]
				f.urows[k] = row[:len(row)-1]
				break
			}
		}
	}
	f.ucolRows[t] = f.ucolRows[t][:0]
	// Detach the old row t into the scatter workspace; its entries all
	// sit at positions past pt (upper triangularity), which after the
	// rotation below is exactly the elimination range.
	f.stamp++
	for _, e := range f.urows[t] {
		f.wval[e.col] = e.val
		f.wmark[e.col] = f.stamp
	}
	f.urows[t] = f.urows[t][:0]
	// The spike becomes the new column t. Rows at any position keep
	// their entry above the diagonal once column t rotates to the back;
	// s_t itself seeds the new bottom-corner diagonal.
	dacc := f.spike[t]
	refmag := math.Abs(dacc)
	for k := 0; k < m; k++ {
		v := f.spike[k]
		if v == 0 || k == int(t) {
			continue
		}
		if a := math.Abs(v); a > refmag {
			refmag = a
		}
		f.urows[k] = append(f.urows[k], luEnt{col: t, val: v})
		f.ucolRows[t] = append(f.ucolRows[t], int32(k))
	}
	// Rotate step t from position pt to the last position.
	for pos := pt; pos < int32(m)-1; pos++ {
		f.uorder[pos] = f.uorder[pos+1]
		f.upos[f.uorder[pos]] = pos
	}
	f.uorder[m-1] = t
	f.upos[t] = int32(m) - 1
	// Eliminate the detached row against the rows now at positions
	// pt..m−2, in order. Each multiplier becomes one row-eta entry; the
	// eliminating rows' column-t entries (their spike values) fold into
	// the bottom-corner diagonal; everything else is scatter-only fill in
	// the detached row itself — no other row changes.
	for pos := pt; pos < int32(m)-1; pos++ {
		j := f.uorder[pos]
		if f.wmark[j] != f.stamp {
			continue
		}
		z := f.wval[j]
		if z == 0 {
			continue
		}
		mult := z / f.diag[j]
		f.retaIdx = append(f.retaIdx, j)
		f.retaVal = append(f.retaVal, mult)
		for _, e := range f.urows[j] {
			if e.col == t {
				dacc -= mult * e.val
				continue
			}
			if f.wmark[e.col] == f.stamp {
				f.wval[e.col] -= mult * e.val
			} else {
				f.wmark[e.col] = f.stamp
				f.wval[e.col] = -mult * e.val
			}
		}
	}
	if a := math.Abs(dacc); a < luAbsTol || a < ftStabTol*refmag {
		f.updatable = false // factor is torn; caller must refactorize
		return false
	}
	f.diag[t] = dacc
	f.retaR = append(f.retaR, t)
	f.retaStart = append(f.retaStart, int32(len(f.retaIdx)))
	f.nupd++
	return true
}

// ftranFT solves B·x = v through the updated factors. With no updates
// applied it performs the exact operation sequence of the flat ftran —
// bit-identical results — plus the spike stash.
func (f *luFactor) ftranFT(v []float64) {
	m := f.m
	w := f.work
	for k := 0; k < m; k++ {
		w[k] = v[f.pivRow[k]]
	}
	for k := 0; k < m; k++ {
		t := w[k]
		if t == 0 {
			continue
		}
		for e := f.lStart[k]; e < f.lStart[k+1]; e++ {
			w[f.lRow[e]] -= f.lVal[e] * t
		}
	}
	for u := 0; u < f.nupd; u++ {
		t := f.retaR[u]
		acc := w[t]
		for e := f.retaStart[u]; e < f.retaStart[u+1]; e++ {
			acc -= f.retaVal[e] * w[f.retaIdx[e]]
		}
		w[t] = acc
	}
	copy(f.spike[:m], w[:m])
	for pos := m - 1; pos >= 0; pos-- {
		t := f.uorder[pos]
		acc := w[t]
		for _, e := range f.urows[t] {
			acc -= e.val * w[e.col]
		}
		w[t] = acc / f.diag[t]
	}
	for k := 0; k < m; k++ {
		v[f.pivCol[k]] = w[k]
	}
}

// btranFT solves Bᵀ·y = v through the updated factors (the transposed
// mirror of ftranFT: Uᵀ first, then the row etas in reverse, then Lᵀ).
func (f *luFactor) btranFT(v []float64) {
	m := f.m
	w := f.work
	for k := 0; k < m; k++ {
		w[k] = v[f.pivCol[k]]
	}
	for pos := 0; pos < m; pos++ {
		t := f.uorder[pos]
		z := w[t] / f.diag[t]
		w[t] = z
		if z == 0 {
			continue
		}
		for _, e := range f.urows[t] {
			w[e.col] -= e.val * z
		}
	}
	for u := f.nupd - 1; u >= 0; u-- {
		t := f.retaR[u]
		if z := w[t]; z != 0 {
			for e := f.retaStart[u]; e < f.retaStart[u+1]; e++ {
				w[f.retaIdx[e]] -= f.retaVal[e] * z
			}
		}
	}
	for k := m - 1; k >= 0; k-- {
		t := w[k]
		for e := f.lStart[k]; e < f.lStart[k+1]; e++ {
			t -= f.lVal[e] * w[f.lRow[e]]
		}
		w[k] = t
	}
	for k := 0; k < m; k++ {
		v[f.pivRow[k]] = w[k]
	}
}
