package lp

import (
	"math"
	"math/rand"
	"testing"
)

// ftLoadDense streams a dense matrix into the factor workspace.
func ftLoadDense(f *luFactor, a [][]float64) {
	m := len(a)
	f.begin(m)
	for c := 0; c < m; c++ {
		for r := 0; r < m; r++ {
			if a[r][c] != 0 {
				f.load(int32(r), int32(c), a[r][c])
			}
		}
		f.endCol()
	}
}

// ftRandomDominant builds a strictly diagonally dominant sparse matrix —
// well-conditioned under any column replacement drawn the same way, so
// the update-vs-refactor differential below never hinges on a
// near-singular basis.
func ftRandomDominant(rng *rand.Rand, m int) [][]float64 {
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		a[i][i] = 1 + rng.Float64()
	}
	for k := 0; k < 3*m; k++ {
		i, j := rng.Intn(m), rng.Intn(m)
		if i != j {
			a[i][j] = (rng.Float64() - 0.5) / float64(4)
		}
	}
	return a
}

// TestForrestTomlinZeroUpdateBitIdentical pins the FT representation's
// contract with the golden tables: before any update is applied, the
// transcribed solves replay the flat solves' exact operation sequence,
// so results agree bit for bit.
func TestForrestTomlinZeroUpdateBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		m := 2 + rng.Intn(30)
		a := ftRandomDominant(rng, m)
		var flat, ft luFactor
		ftLoadDense(&flat, a)
		if err := flat.eliminate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ftLoadDense(&ft, a)
		if err := ft.eliminate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ft.initUpdatable()
		v1 := make([]float64, m)
		v2 := make([]float64, m)
		for probe := 0; probe < 4; probe++ {
			for i := range v1 {
				v1[i] = rng.NormFloat64()
				v2[i] = v1[i]
			}
			flat.ftran(v1)
			ft.ftran(v2)
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("trial %d: ftran bit mismatch at %d: %v vs %v", trial, i, v1[i], v2[i])
				}
			}
			for i := range v1 {
				v1[i] = rng.NormFloat64()
				v2[i] = v1[i]
			}
			flat.btran(v1)
			ft.btran(v2)
			for i := range v1 {
				if v1[i] != v2[i] {
					t.Fatalf("trial %d: btran bit mismatch at %d: %v vs %v", trial, i, v1[i], v2[i])
				}
			}
		}
	}
}

// TestForrestTomlinUpdateMatchesRefactor drives chains of FT updates and
// holds the updated factors to a fresh factorization of the same matrix:
// FTRAN and BTRAN must agree to numerical tolerance after every update.
func TestForrestTomlinUpdateMatchesRefactor(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		m := 3 + rng.Intn(40)
		a := ftRandomDominant(rng, m)
		var f luFactor
		ftLoadDense(&f, a)
		if err := f.eliminate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		f.initUpdatable()
		col := make([]float64, m)
		v1 := make([]float64, m)
		v2 := make([]float64, m)
		for upd := 0; upd < 30; upd++ {
			slot := rng.Intn(m)
			// Replacement column: dominant diagonal plus sparse noise, so
			// the basis stays comfortably nonsingular.
			for i := range col {
				col[i] = 0
			}
			col[slot] = 1 + rng.Float64()
			for k := 0; k < 3; k++ {
				if i := rng.Intn(m); i != slot {
					col[i] = (rng.Float64() - 0.5) / 4
				}
			}
			// FTRAN the entering column (stashes the spike), then update.
			copy(v1, col)
			f.ftran(v1)
			if !f.update(slot) {
				t.Fatalf("trial %d update %d: stable update rejected", trial, upd)
			}
			for i := range col {
				a[i][slot] = col[i]
			}
			var fresh luFactor
			ftLoadDense(&fresh, a)
			if err := fresh.eliminate(); err != nil {
				t.Fatalf("trial %d update %d: fresh: %v", trial, upd, err)
			}
			for probe := 0; probe < 3; probe++ {
				for i := range v1 {
					v1[i] = rng.NormFloat64()
					v2[i] = v1[i]
				}
				f.ftran(v1)
				fresh.ftran(v2)
				for i := range v1 {
					if d := math.Abs(v1[i] - v2[i]); d > 1e-7*(1+math.Abs(v2[i])) {
						t.Fatalf("trial %d update %d: ftran drift at %d: %v vs %v", trial, upd, i, v1[i], v2[i])
					}
				}
				for i := range v1 {
					v1[i] = rng.NormFloat64()
					v2[i] = v1[i]
				}
				f.btran(v1)
				fresh.btran(v2)
				for i := range v1 {
					if d := math.Abs(v1[i] - v2[i]); d > 1e-7*(1+math.Abs(v2[i])) {
						t.Fatalf("trial %d update %d: btran drift at %d: %v vs %v", trial, upd, i, v1[i], v2[i])
					}
				}
			}
		}
	}
}

// TestSolverWithForrestTomlinForced reruns the solver differentials with
// the FT path forced on for every basis size, so the production gate
// (ftMinRows) never hides the update machinery from the correctness net.
func TestSolverWithForrestTomlinForced(t *testing.T) {
	defer func(v int) { ftMinRows = v }(ftMinRows)
	ftMinRows = 0
	t.Run("SparseMatchesDense", TestSparseMatchesDense)
	t.Run("WarmStartRowGeneration", TestWarmStartRowGeneration)
	t.Run("Fuzz", func(t *testing.T) {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			m := randomModel(rng)
			sp, err := m.Solve()
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if sp.Status == Optimal && !m.Feasible(sp.X, 1e-6) {
				t.Fatalf("trial %d: infeasible optimum", trial)
			}
		}
	})
}

// TestSolverWithSteepestEdgeForced reruns the solver differentials with
// exact dual steepest-edge pricing forced on for every basis size —
// and, in the second leg, combined with forced Forrest–Tomlin updates,
// the pairing production uses above both gates.
func TestSolverWithSteepestEdgeForced(t *testing.T) {
	defer func(v int) { dseMinRows = v }(dseMinRows)
	dseMinRows = 0
	t.Run("SparseMatchesDense", TestSparseMatchesDense)
	t.Run("WarmStartRowGeneration", TestWarmStartRowGeneration)
	t.Run("WithForrestTomlin", func(t *testing.T) {
		defer func(v int) { ftMinRows = v }(ftMinRows)
		ftMinRows = 0
		t.Run("SparseMatchesDense", TestSparseMatchesDense)
	})
}
