package lp

import (
	"errors"
	"math"
)

// Numerical tolerances shared by both solvers. pivotTol guards divisions;
// optTol decides optimality of reduced costs; feasTol decides primal
// feasibility (phase-1 success in the dense solver, bound violation in
// the sparse one).
const (
	pivotTol = 1e-9
	optTol   = 1e-9
	feasTol  = 1e-7
)

// ErrIterationLimit is returned when a simplex exceeds its pivot budget,
// which for these problem sizes indicates a numerical pathology rather
// than a legitimate long run.
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// tableau is a dense simplex tableau in equational form: rows are
// constraints with non-negative right-hand sides, cols are structural,
// slack and artificial variables, plus the RHS in the last column.
type tableau struct {
	rows  [][]float64 // m rows, each of length ncols+1 (last = RHS)
	obj   []float64   // reduced-cost row, length ncols+1 (last = -objective)
	basis []int       // basis[i] = column basic in row i
	ncols int
	nArt  int // number of artificial columns (they occupy the last nArt column indices)
}

// SolveDense runs the original dense two-phase primal simplex (Dantzig
// pricing, Bland fallback) and returns the solution. Finite upper bounds
// are expanded into explicit LE rows, so the tableau is Θ((m+n)·(n+m))
// even for sparse models — it is retained as the differential-test oracle
// for the sparse revised simplex, not as a production path.
func (m *Model) SolveDense() (*Solution, error) {
	n := len(m.obj)
	// Expand finite upper bounds into explicit LE rows.
	type row struct {
		lo, hi int // CSR span in m.cols/m.vals, or lo == -1 for a bound row
		bv     int // bounded variable when lo == -1
		op     Op
		rhs    float64
	}
	var rows []row
	for i := range m.ops {
		rows = append(rows, row{lo: m.rowStart[i], hi: m.rowStart[i+1], op: m.ops[i], rhs: m.rhs[i]})
	}
	for j, ub := range m.ub {
		if !math.IsInf(ub, 1) {
			rows = append(rows, row{lo: -1, bv: j, op: LE, rhs: ub})
		}
	}

	nRows := len(rows)
	// Column layout: [0,n) structural, then one slack/surplus per LE/GE
	// row, then artificials.
	nSlack := 0
	for _, r := range rows {
		if r.op != EQ {
			nSlack++
		}
	}
	// Artificials are added for GE/EQ rows and for LE rows whose RHS had
	// to be negated. Allocate lazily below; first compute layout.
	t := &tableau{basis: make([]int, nRows)}
	slackCol := n
	artBase := n + nSlack
	nArt := 0

	// Per-row bookkeeping for dual extraction: the column whose reduced
	// cost encodes the row's multiplier, the sign convention, whether the
	// row was negated, and the post-negation RHS.
	type dualInfo struct {
		col     int     // slack/surplus column, or artificial (set below)
		sign    float64 // y_i = sign · objRow[col]
		negated bool
		rhs0    float64
	}
	duals := make([]dualInfo, nRows)

	dense := make([][]float64, nRows)
	needsArt := make([]bool, nRows)
	for i, r := range rows {
		d := make([]float64, artBase) // artificials appended later
		if r.lo == -1 {
			d[r.bv] = 1
		} else {
			for k := r.lo; k < r.hi; k++ {
				d[m.cols[k]] += m.vals[k]
			}
		}
		op, rhs := r.op, r.rhs
		if rhs < 0 {
			for j := range d {
				d[j] = -d[j]
			}
			rhs = -rhs
			duals[i].negated = true
			switch op {
			case LE:
				op = GE
			case GE:
				op = LE
			}
		}
		switch op {
		case LE:
			d[slackCol] = 1
			t.basis[i] = slackCol
			// Slack column is +e_i with zero cost: objRow = −y_i.
			duals[i].col, duals[i].sign = slackCol, -1
			slackCol++
		case GE:
			d[slackCol] = -1
			// Surplus column is −e_i: objRow = +y_i.
			duals[i].col, duals[i].sign = slackCol, 1
			slackCol++
			needsArt[i] = true
		case EQ:
			needsArt[i] = true
			duals[i].col = -1 // artificial assigned below
		}
		duals[i].rhs0 = rhs
		dense[i] = append(d, rhs)
		if needsArt[i] {
			nArt++
		}
	}
	t.ncols = artBase + nArt
	t.nArt = nArt
	t.rows = make([][]float64, nRows)
	art := artBase
	for i := range dense {
		full := make([]float64, t.ncols+1)
		copy(full, dense[i][:artBase])
		full[t.ncols] = dense[i][artBase] // RHS
		if needsArt[i] {
			full[art] = 1
			t.basis[i] = art
			if duals[i].col == -1 {
				// Equality rows read their dual off the artificial
				// column (+e_i, zero phase-2 cost): objRow = −y_i.
				duals[i].col, duals[i].sign = art, -1
			}
			art++
		}
		t.rows[i] = full
	}

	sol := &Solution{}

	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		phase1 := make([]float64, t.ncols+1)
		for a := artBase; a < t.ncols; a++ {
			phase1[a] = 1
		}
		t.obj = phase1
		t.priceOut()
		pivots, err := t.iterate(t.ncols, nil)
		sol.Pivots += pivots
		if err != nil {
			return nil, err
		}
		if -t.obj[t.ncols] > feasTol {
			sol.Status = Infeasible
			return sol, nil
		}
		// Drive artificials out of the basis so they can be frozen.
		for i, b := range t.basis {
			if b < artBase {
				continue
			}
			pivoted := false
			for j := 0; j < artBase; j++ {
				if math.Abs(t.rows[i][j]) > pivotTol {
					t.pivot(i, j)
					sol.Pivots++
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it can never constrain again.
				for j := range t.rows[i] {
					t.rows[i][j] = 0
				}
				t.rows[i][b] = 1 // keep the artificial formally basic at 0
			}
		}
	}

	// Phase 2: minimize the real objective; artificial columns are frozen.
	phase2 := make([]float64, t.ncols+1)
	copy(phase2, m.obj)
	t.obj = phase2
	t.priceOut()
	limit := artBase // entering columns restricted to non-artificials
	pivots, err := t.iterate(limit, &sol.Status)
	sol.Pivots += pivots
	if err != nil {
		return nil, err
	}
	if sol.Status == Unbounded {
		return sol, nil
	}

	sol.Status = Optimal
	sol.X = make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			sol.X[b] = t.rows[i][t.ncols]
		}
	}
	// Snap tiny negatives from round-off.
	for j := range sol.X {
		if sol.X[j] < 0 && sol.X[j] > -feasTol {
			sol.X[j] = 0
		}
	}
	sol.Objective = m.Value(sol.X)

	// Dual extraction and the strong-duality self-check. The multiplier
	// of each internal row is read off the final reduced-cost row; by
	// strong duality Σ y_i·rhs_i must equal the optimal objective, which
	// certifies both optimality and the extraction algebra.
	dualObj := 0.0
	yInt := make([]float64, nRows)
	for i := range duals {
		yInt[i] = duals[i].sign * t.obj[duals[i].col]
		dualObj += yInt[i] * duals[i].rhs0
	}
	sol.DualityGap = math.Abs(dualObj - sol.Objective)
	// Report shadow prices for the user's constraints (upper-bound rows
	// are internal), in the orientation the user wrote them.
	sol.Duals = make([]float64, m.NumConstraints())
	for i := range sol.Duals {
		y := yInt[i]
		if duals[i].negated {
			y = -y
		}
		sol.Duals[i] = y
	}
	return sol, nil
}

// priceOut rewrites the objective row as reduced costs with respect to the
// current basis: obj ← obj − Σ_i obj[basis[i]]·row_i.
func (t *tableau) priceOut() {
	for i, b := range t.basis {
		cb := t.obj[b]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.ncols; j++ {
			t.obj[j] -= cb * t.rows[i][j]
		}
	}
}

// iterate pivots until optimality (reduced costs ≥ −optTol). Entering
// columns are restricted to indices < colLimit. If statusOut is non-nil,
// an unbounded ray sets *statusOut = Unbounded and returns. Dantzig pricing
// is used normally; after a stretch of degenerate pivots it falls back to
// Bland's rule, which provably terminates.
func (t *tableau) iterate(colLimit int, statusOut *Status) (int, error) {
	pivots := 0
	degenerate := 0
	maxPivots := 5000 + 200*(len(t.rows)+t.ncols)
	for {
		bland := degenerate > 2*len(t.rows)+20
		enter := -1
		if bland {
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < -optTol {
					enter = j
					break
				}
			}
		} else {
			best := -optTol
			for j := 0; j < colLimit; j++ {
				if t.obj[j] < best {
					best = t.obj[j]
					enter = j
				}
			}
		}
		if enter == -1 {
			return pivots, nil // optimal
		}
		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for i, r := range t.rows {
			a := r[enter]
			if a <= pivotTol {
				continue
			}
			ratio := r[t.ncols] / a
			if ratio < bestRatio-pivotTol ||
				(ratio < bestRatio+pivotTol && (leave == -1 || t.basis[i] < t.basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave == -1 {
			if statusOut != nil {
				*statusOut = Unbounded
				return pivots, nil
			}
			// Phase 1 is never unbounded (objective bounded below by 0);
			// reaching here means numerical trouble.
			return pivots, errors.New("lp: phase-1 ray detected (numerical failure)")
		}
		if bestRatio < pivotTol {
			degenerate++
		} else {
			degenerate = 0
		}
		t.pivot(leave, enter)
		pivots++
		if pivots > maxPivots {
			return pivots, ErrIterationLimit
		}
	}
}

// pivot makes column enter basic in row leave by Gaussian elimination.
func (t *tableau) pivot(leave, enter int) {
	pr := t.rows[leave]
	p := pr[enter]
	inv := 1 / p
	for j := range pr {
		pr[j] *= inv
	}
	pr[enter] = 1 // exact
	for i, r := range t.rows {
		if i == leave {
			continue
		}
		f := r[enter]
		if f == 0 {
			continue
		}
		for j := range r {
			r[j] -= f * pr[j]
		}
		r[enter] = 0
	}
	f := t.obj[enter]
	if f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * pr[j]
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}
