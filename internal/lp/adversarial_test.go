package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Adversarial instances for the sparse kernel: families engineered to
// break simplex implementations — exponential pivot paths (Klee–Minty),
// cycling under naive pricing (Beale), heavy degeneracy and rank
// deficiency. Every solve is held to the dense tableau oracle; the point
// is that devex + the Bland fallback terminate and agree, not that they
// take any particular path.

// kleeMinty builds the n-dimensional Klee–Minty cube in its standard
// form: max Σ 2^{n−j}·x_j subject to 2·Σ_{k<j} 2^{j−k}·x_k + x_j ≤ 5^j.
// The optimum is 5^n at (0, …, 0, 5^n); Dantzig's rule visits all 2^n
// vertices.
func kleeMinty(n int) (*Model, float64) {
	m := NewModel()
	for j := 0; j < n; j++ {
		m.AddVar(-math.Pow(2, float64(n-1-j)), math.Inf(1))
	}
	for j := 0; j < n; j++ {
		coefs := map[int]float64{j: 1}
		for k := 0; k < j; k++ {
			coefs[k] = 2 * math.Pow(2, float64(j-k))
		}
		m.AddConstraint(coefs, LE, math.Pow(5, float64(j+1)))
	}
	return m, -math.Pow(5, float64(n))
}

func TestKleeMintyCubes(t *testing.T) {
	for n := 2; n <= 8; n++ {
		m, want := kleeMinty(n)
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if sp.Status != Optimal {
			t.Fatalf("n=%d: status %v", n, sp.Status)
		}
		if math.Abs(sp.Objective-want) > 1e-6*(1+math.Abs(want)) {
			t.Fatalf("n=%d: objective %v, want %v", n, sp.Objective, want)
		}
		dn, err := m.SolveDense()
		if err != nil || dn.Status != Optimal {
			t.Fatalf("n=%d: dense %v %v", n, dn, err)
		}
		if math.Abs(sp.Objective-dn.Objective) > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("n=%d: sparse %v vs dense %v", n, sp.Objective, dn.Objective)
		}
		if !m.Feasible(sp.X, 1e-6) {
			t.Fatalf("n=%d: optimum infeasible", n)
		}
	}
}

// TestHighlyDegenerate stresses ties: duplicated rows, scaled copies,
// zero right-hand sides and rank-deficient equality blocks, where most
// pivots are degenerate and cycling is the classic failure mode.
func TestHighlyDegenerate(t *testing.T) {
	builders := map[string]func() *Model{
		"beale-dup": func() *Model {
			m := NewModel()
			x1 := m.AddVar(-0.75, math.Inf(1))
			x2 := m.AddVar(150, math.Inf(1))
			x3 := m.AddVar(-0.02, math.Inf(1))
			x4 := m.AddVar(6, math.Inf(1))
			for rep := 0; rep < 3; rep++ { // duplicated cycling block
				m.AddConstraint(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
				m.AddConstraint(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
			}
			m.AddConstraint(map[int]float64{x3: 1}, LE, 1)
			return m
		},
		"zero-rhs-cone": func() *Model {
			// Everything tied at the origin; optimum 0 with massive
			// degeneracy.
			m := NewModel()
			x := m.AddVar(1, math.Inf(1))
			y := m.AddVar(2, math.Inf(1))
			z := m.AddVar(0.5, math.Inf(1))
			for k := 0; k < 6; k++ {
				m.AddConstraint(map[int]float64{x: 1, y: float64(k), z: -1}, GE, 0)
			}
			m.AddConstraint(map[int]float64{x: 1, y: 1, z: 1}, GE, 0)
			return m
		},
		"rank-deficient-eq": func() *Model {
			// Three dependent equalities plus scaled copies.
			m := NewModel()
			x := m.AddVar(1, math.Inf(1))
			y := m.AddVar(2, math.Inf(1))
			z := m.AddVar(3, math.Inf(1))
			m.AddConstraint(map[int]float64{x: 1, y: 1, z: 1}, EQ, 6)
			m.AddConstraint(map[int]float64{x: 2, y: 2, z: 2}, EQ, 12)
			m.AddConstraint(map[int]float64{x: -1, y: -1, z: -1}, EQ, -6)
			m.AddConstraint(map[int]float64{x: 1, y: -1}, EQ, 0)
			m.AddConstraint(map[int]float64{x: 3, y: -3}, EQ, 0)
			return m
		},
		"degenerate-transport": func() *Model {
			// A 3×3 transportation polytope with all supplies equal: the
			// classic degenerate-basis family.
			m := NewModel()
			var v [9]int
			costs := []float64{4, 1, 3, 2, 5, 1, 3, 2, 2}
			for i := range v {
				v[i] = m.AddVar(costs[i], math.Inf(1))
			}
			for r := 0; r < 3; r++ {
				m.AddConstraint(map[int]float64{v[3*r]: 1, v[3*r+1]: 1, v[3*r+2]: 1}, EQ, 1)
			}
			for c := 0; c < 3; c++ {
				m.AddConstraint(map[int]float64{v[c]: 1, v[c+3]: 1, v[c+6]: 1}, EQ, 1)
			}
			return m
		},
	}
	for name, build := range builders {
		m := build()
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("%s: sparse: %v", name, err)
		}
		dn, err := m.SolveDense()
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		if sp.Status != dn.Status {
			t.Fatalf("%s: sparse %v vs dense %v", name, sp.Status, dn.Status)
		}
		if sp.Status == Optimal {
			if math.Abs(sp.Objective-dn.Objective) > 1e-6*(1+math.Abs(dn.Objective)) {
				t.Fatalf("%s: sparse %v vs dense %v", name, sp.Objective, dn.Objective)
			}
			if !m.Feasible(sp.X, 1e-6) {
				t.Fatalf("%s: optimum infeasible", name)
			}
		}
	}
}

// perturbRHS returns a clone with every inequality loosened by eps —
// same structure fingerprint, shifted geometry: the canonical "nearby
// instance".
func perturbRHS(m *Model, eps float64) *Model {
	c := m.Clone()
	for i := range c.ops {
		switch c.ops[i] {
		case LE:
			c.rhs[i] += eps
		case GE:
			c.rhs[i] -= eps
		}
	}
	return c
}

// TestResolveFromForeignModel drives cross-instance homotopy directly: a
// basis captured on one model warm starts a *different* model with the
// same structure, and must land on that model's own optimum (held to the
// dense oracle).
func TestResolveFromForeignModel(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	chained, optimal := 0, 0
	for trial := 0; trial < 600; trial++ {
		a := randomModel(rng)
		solA, err := a.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if solA.Status != Optimal {
			continue
		}
		if solA.Basis.Fingerprint() != a.StructureFingerprint() {
			t.Fatalf("trial %d: basis fingerprint not stamped from its model", trial)
		}
		b := perturbRHS(a, 0.25+rng.Float64())
		if a.StructureFingerprint() != b.StructureFingerprint() {
			t.Fatalf("trial %d: perturbed clone changed the structure fingerprint", trial)
		}
		if !solA.Basis.CompatibleWith(b) {
			t.Fatalf("trial %d: same-structure basis reported incompatible", trial)
		}
		warm, err := b.ResolveFrom(solA.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		dense, err := b.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		chained++
		if warm.Status != dense.Status {
			t.Fatalf("trial %d: warm %v vs dense %v", trial, warm.Status, dense.Status)
		}
		if warm.Status != Optimal {
			continue
		}
		optimal++
		if math.Abs(warm.Objective-dense.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("trial %d: warm %v vs dense %v", trial, warm.Objective, dense.Objective)
		}
		if !b.Feasible(warm.X, 1e-6) {
			t.Fatalf("trial %d: warm optimum infeasible", trial)
		}
	}
	if chained < 60 || optimal < 60 {
		t.Fatalf("only %d chained / %d optimal foreign resolves exercised", chained, optimal)
	}
}

// TestResolveFromTruncatedRows exercises the projection in the shrinking
// direction: the basis comes from a model with MORE rows than the target
// (a homotopy source later in its row-generation run). The projection
// must still produce the target's optimum.
func TestResolveFromTruncatedRows(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	exercised := 0
	for trial := 0; trial < 1200; trial++ {
		big := randomModel(rng)
		if big.NumConstraints() < 2 {
			continue
		}
		solBig, err := big.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if solBig.Status != Optimal {
			continue
		}
		// Rebuild the model with only a prefix of its rows.
		small := NewModel()
		for j := 0; j < big.NumVars(); j++ {
			small.AddVar(big.obj[j], big.ub[j])
		}
		keep := 1 + rng.Intn(big.NumConstraints()-1)
		for i := 0; i < keep; i++ {
			cols, vals, op, rhs := big.Row(i)
			small.AddRow(cols, vals, op, rhs)
		}
		warm, err := small.ResolveFrom(solBig.Basis)
		if err != nil {
			t.Fatalf("trial %d: warm: %v", trial, err)
		}
		dense, err := small.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		exercised++
		if warm.Status != dense.Status {
			t.Fatalf("trial %d: warm %v vs dense %v", trial, warm.Status, dense.Status)
		}
		if warm.Status == Optimal {
			if math.Abs(warm.Objective-dense.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
				t.Fatalf("trial %d: warm %v vs dense %v", trial, warm.Objective, dense.Objective)
			}
		}
	}
	if exercised < 50 {
		t.Fatalf("only %d truncated resolves exercised", exercised)
	}
}

// TestFingerprintSeparates: structure edits models of different shape
// must not share fingerprints (probabilistically: these specific edits).
func TestFingerprintSeparates(t *testing.T) {
	m := NewModel()
	m.AddVar(1, 2)
	m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 1)
	fp := m.StructureFingerprint()

	plusVar := m.Clone()
	plusVar.AddVar(1, 1)
	if plusVar.StructureFingerprint() == fp {
		t.Error("adding a variable kept the fingerprint")
	}
	plusRow := m.Clone()
	plusRow.AddConstraint(map[int]float64{0: 2}, LE, 5)
	if plusRow.StructureFingerprint() == fp {
		t.Error("adding a row kept the fingerprint")
	}
	opFlip := NewModel()
	opFlip.AddVar(1, 2)
	opFlip.AddVar(1, math.Inf(1))
	opFlip.AddConstraint(map[int]float64{0: 1, 1: 1}, LE, 1)
	if opFlip.StructureFingerprint() == fp {
		t.Error("changing a row op kept the fingerprint")
	}
	boundFlip := NewModel()
	boundFlip.AddVar(1, 2)
	boundFlip.AddVar(1, 3) // finite where m had +Inf
	boundFlip.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 1)
	if boundFlip.StructureFingerprint() == fp {
		t.Error("changing bound finiteness kept the fingerprint")
	}
	// Value-only changes keep it: that is the homotopy class.
	valueOnly := m.Clone()
	valueOnly.rhs[0] = 17
	valueOnly.obj[0] = -3
	if valueOnly.StructureFingerprint() != fp {
		t.Error("value-only perturbation changed the fingerprint")
	}
}

// TestChainedHomotopySweep mimics the sweep chain end to end at the lp
// level: a family of jittered models solved in sequence, each warm
// started from the previous optimum, every result held to the dense
// oracle and to a cold solve's pivot count (the warm chain must not be
// wildly worse; it usually is strictly better).
func TestChainedHomotopySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	base := NewModel()
	nv := 12
	for j := 0; j < nv; j++ {
		base.AddVar(1, 1+rng.Float64())
	}
	for k := 0; k < 30; k++ {
		coefs := map[int]float64{}
		for j := 0; j < nv; j++ {
			if rng.Intn(3) == 0 {
				coefs[j] = 0.2 + rng.Float64()
			}
		}
		base.AddConstraint(coefs, GE, rng.Float64())
	}
	var basis *Basis
	warmPivots, coldPivots := 0, 0
	for inst := 0; inst < 25; inst++ {
		m := base.Clone()
		for i := range m.rhs {
			m.rhs[i] *= 1 + 0.1*(2*rng.Float64()-1)
		}
		warm, err := m.ResolveFrom(basis)
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}
		cold, err := m.Solve()
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}
		dense, err := m.SolveDense()
		if err != nil {
			t.Fatalf("inst %d: %v", inst, err)
		}
		if warm.Status != dense.Status || cold.Status != dense.Status {
			t.Fatalf("inst %d: statuses warm %v cold %v dense %v", inst, warm.Status, cold.Status, dense.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-dense.Objective) > 1e-6*(1+math.Abs(dense.Objective)) {
			t.Fatalf("inst %d: warm %v vs dense %v", inst, warm.Objective, dense.Objective)
		}
		warmPivots += warm.Pivots
		coldPivots += cold.Pivots
		basis = warm.Basis
	}
	t.Logf("chained homotopy pivots: warm %d vs cold %d", warmPivots, coldPivots)
	if warmPivots > 2*coldPivots+nv {
		t.Fatalf("warm chain pivoted %d times vs cold %d — homotopy is hurting", warmPivots, coldPivots)
	}
}
