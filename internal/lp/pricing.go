package lp

import "math"

// Pricing for the revised simplex: devex reference-framework weights
// (Forrest–Goldfarb) with rotating-window partial pricing for both loops,
// and the rank-one reduced-cost update that keeps the duals incremental
// between refactorizations.
//
// Devex approximates steepest-edge at a fraction of the cost: each
// candidate's violation is scaled by a running estimate of its edge norm
// relative to a reference framework — the basis at the last weight reset.
// The weights only steer *which* admissible pivot is taken, never whether
// one is admissible, so every selection below stays exact about
// optimality/feasibility; a drifted weight can only cost iterations.
// Reference-framework reset rules (see DESIGN.md §7): weights reset to 1
// when a phase starts and whenever the largest weight passes
// devexWeightCap — past that, the reference basis is too far away for the
// estimates to mean anything.
//
// Partial pricing scans a rotating window (an eighth of the candidates,
// at least partialWindowMin) and settles for the best devex score in the
// first non-empty window; only a full empty wrap declares the loop done.
// Bland mode bypasses both devex and the windows: lowest eligible index,
// full scan — the anti-cycling fallback must stay deterministic and
// complete.

const (
	// devexWeightCap triggers a reference-framework reset.
	devexWeightCap = 1e8

	// partialWindowMin is the smallest partial-pricing window; tiny
	// models always price fully.
	partialWindowMin = 64
)

func (s *sparse) resetPrimalDevex() {
	for j := range s.pw {
		s.pw[j] = 1
	}
}

func (s *sparse) resetDualDevex() {
	for i := range s.dw {
		s.dw[i] = 1
	}
}

// primalViol returns the primal reduced-cost violation of a nonbasic
// column (positive means entering improves the objective).
func (s *sparse) primalViol(j int) float64 {
	if s.status[j] == nbLower {
		return -s.d[j]
	}
	return s.d[j]
}

// choosePrimalEntering picks the entering column for the primal simplex,
// or -1 at optimality.
func (s *sparse) choosePrimalEntering(bland bool) int {
	if s.nc == 0 {
		return -1
	}
	if bland {
		for j := 0; j < s.nc; j++ {
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			if s.primalViol(j) > optTol {
				return j
			}
		}
		return -1
	}
	window := s.nc / 8
	if window < partialWindowMin {
		window = partialWindowMin
	}
	start := s.pstart % s.nc
	scanned := 0
	for scanned < s.nc {
		best, bestScore := -1, 0.0
		for w := 0; w < window && scanned < s.nc; w++ {
			j := start
			start++
			if start == s.nc {
				start = 0
			}
			scanned++
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			viol := s.primalViol(j)
			if viol <= optTol {
				continue
			}
			if score := viol * viol / s.pw[j]; score > bestScore {
				best, bestScore = j, score
			}
		}
		if best != -1 {
			s.pstart = start
			return best
		}
	}
	return -1
}

// dualViol returns row i's bound violation and whether the basic value
// sits above its upper bound (0 when feasible within tolerance).
func (s *sparse) dualViol(i int) (float64, bool) {
	b := s.basic[i]
	if v := s.lo[b] - s.xB[i]; v > feasTol*(1+math.Abs(s.lo[b])) {
		return v, false
	}
	if v := s.xB[i] - s.up[b]; v > feasTol*(1+math.Abs(s.up[b])) {
		return v, true
	}
	return 0, false
}

// chooseDualLeaving picks the leaving row for the dual simplex, or -1
// when the basis is primal feasible.
func (s *sparse) chooseDualLeaving(bland bool) (int, bool) {
	if s.mr == 0 {
		return -1, false
	}
	if bland {
		// Worst violation, full scan: the deterministic fallback rule.
		r, above, worst := -1, false, 0.0
		for i := 0; i < s.mr; i++ {
			if v, ab := s.dualViol(i); v > worst {
				r, above, worst = i, ab, v
			}
		}
		return r, above
	}
	window := s.mr / 8
	if window < partialWindowMin {
		window = partialWindowMin
	}
	start := s.dstart % s.mr
	scanned := 0
	for scanned < s.mr {
		best, bestAbove, bestScore := -1, false, 0.0
		for w := 0; w < window && scanned < s.mr; w++ {
			i := start
			start++
			if start == s.mr {
				start = 0
			}
			scanned++
			v, ab := s.dualViol(i)
			if v == 0 {
				continue
			}
			if score := v * v / s.dw[i]; score > bestScore {
				best, bestAbove, bestScore = i, ab, score
			}
		}
		if best != -1 {
			s.dstart = start
			return best, bestAbove
		}
	}
	return -1, false
}

// pivotRowAlphas fills s.alpha[j] = ρ·A_j for every column not in the
// basis, where ρ (s.rrow) is the BTRANed pivot row e_r.
func (s *sparse) pivotRowAlphas() {
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		var a float64
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			a += s.rrow[s.colRow[k]] * s.colVal[k]
		}
		s.alpha[j] = a
	}
	for i := 0; i < s.mr; i++ {
		s.alpha[s.n+i] = s.rrow[i]
	}
}

// updateDualsAfterPivot applies the rank-one update d′ = d − (d_q/α_q)·α
// for a pivot entering column q and leaving variable lv, using the
// pivot-row alphas in s.alpha. Must run before replaceBasis (it reads the
// pre-pivot statuses). The leaving variable's new reduced cost is exactly
// −d_q/α_q because its tableau-row coefficient is 1.
func (s *sparse) updateDualsAfterPivot(q, lv int) {
	delta := s.d[q] / s.alpha[q]
	for j := 0; j < s.nc; j++ {
		if j == q || s.status[j] == inBasis {
			continue
		}
		if a := s.alpha[j]; a != 0 {
			s.d[j] -= delta * a
		}
	}
	s.d[q] = 0
	s.d[lv] = -delta
}

// updatePrimalDevex folds a primal pivot (entering q, leaving variable
// lv, pivot-row alphas in s.alpha with α_q = alphaQ) into the column
// weights. Must run before replaceBasis.
func (s *sparse) updatePrimalDevex(q, lv int, alphaQ float64) {
	wref := s.pw[q]
	aq2 := alphaQ * alphaQ
	mx := 1.0
	for j := 0; j < s.nc; j++ {
		if j == q || s.status[j] == inBasis {
			continue
		}
		a := s.alpha[j]
		if a == 0 {
			continue
		}
		if cand := a * a / aq2 * wref; cand > s.pw[j] {
			s.pw[j] = cand
		}
		if s.pw[j] > mx {
			mx = s.pw[j]
		}
	}
	if w := math.Max(wref/aq2, 1); w > s.pw[lv] {
		s.pw[lv] = w
	}
	if mx > devexWeightCap {
		s.resetPrimalDevex()
	}
}

// dseFloor keeps the steepest-edge recurrence's weights positive: exact
// arithmetic guarantees γ_i ≥ 1/‖B‖² > 0, but the rank-one update can
// round a tiny weight negative, which would corrupt every later score.
const dseFloor = 1e-10

// updateDualSteepestEdge folds a dual pivot on row r into exact
// steepest-edge row weights γ_i = ‖B⁻ᵀe_i‖² via the Forrest–Goldfarb
// recurrence. Inputs: the FTRANed entering column in s.wcol, τ = B⁻¹ρ_r
// in s.tau (one extra FTRAN per pivot — the price of exactness over
// devex), and the exactly recomputed γ_r = ‖ρ_r‖² — so the recurrence
// re-anchors every weight it touches against fresh data and drift never
// compounds along a row's own history.
//
//	γ_i ← γ_i − κ·(2τ_i − κ·γ_r),  κ = w_i/w_r   (i ≠ r)
//	γ_r ← γ_r / w_r²
//
// Unlike devex there is no reference framework and nothing to reset;
// the weights remain exact for the evolving basis (up to round-off, the
// floor, and the one stale-τ retry path after a mid-pivot
// refactorization).
func (s *sparse) updateDualSteepestEdge(r int, gammaR float64) {
	wr := s.wcol[r]
	for i := 0; i < s.mr; i++ {
		if i == r {
			continue
		}
		w := s.wcol[i]
		if w == 0 {
			continue
		}
		kappa := w / wr
		g := s.dw[i] - kappa*(2*s.tau[i]-kappa*gammaR)
		if g < dseFloor {
			g = dseFloor
		}
		s.dw[i] = g
	}
	g := gammaR / (wr * wr)
	if g < dseFloor {
		g = dseFloor
	}
	s.dw[r] = g
}

// updateDualDevex folds a dual pivot on row r (FTRANed entering column
// in s.wcol) into the row weights.
func (s *sparse) updateDualDevex(r int) {
	wr := s.wcol[r]
	wref := s.dw[r]
	wr2 := wr * wr
	mx := 1.0
	for i := 0; i < s.mr; i++ {
		if i == r {
			continue
		}
		w := s.wcol[i]
		if w == 0 {
			continue
		}
		if cand := w * w / wr2 * wref; cand > s.dw[i] {
			s.dw[i] = cand
		}
		if s.dw[i] > mx {
			mx = s.dw[i]
		}
	}
	s.dw[r] = math.Max(wref/wr2, 1)
	if mx > devexWeightCap {
		s.resetDualDevex()
	}
}
