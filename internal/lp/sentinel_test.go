package lp

import (
	"fmt"
	"testing"
)

// TestWarmRetryableWrappedSentinels pins the ResolveFrom cold-retry
// trigger to errors.Is semantics: a sentinel wrapped with context — the
// way any future caller annotates errors — must still send the solver
// back to a cold start instead of surfacing the pathology.
func TestWarmRetryableWrappedSentinels(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{ErrIterationLimit, true},
		{errSingularBasis, true},
		{fmt.Errorf("lp: dual phase: %w", ErrIterationLimit), true},
		{fmt.Errorf("lp: projecting basis: %w", errSingularBasis), true},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrIterationLimit)), true},
		{nil, false},
		{fmt.Errorf("lp: unrelated failure"), false},
	}
	for _, c := range cases {
		if got := warmRetryable(c.err); got != c.want {
			t.Errorf("warmRetryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
