package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkPresolveRoundTrip solves m both ways and holds the presolved
// result to the direct one: status, objective, independent feasibility,
// duality gap, and a warm start of the ORIGINAL model from the
// reconstructed basis.
func checkPresolveRoundTrip(t *testing.T, m *Model, tag string) {
	t.Helper()
	direct, err := m.Solve()
	if err != nil {
		t.Fatalf("%s: direct: %v", tag, err)
	}
	pre, err := m.SolvePresolved()
	if err != nil {
		t.Fatalf("%s: presolved: %v", tag, err)
	}
	if direct.Status != pre.Status {
		t.Fatalf("%s: status diverges: direct %v presolved %v", tag, direct.Status, pre.Status)
	}
	if pre.Status != Optimal {
		return
	}
	if diff := math.Abs(direct.Objective - pre.Objective); diff > 1e-6*(1+math.Abs(direct.Objective)) {
		t.Fatalf("%s: objectives diverge: direct %v presolved %v", tag, direct.Objective, pre.Objective)
	}
	if !m.Feasible(pre.X, 1e-6) {
		t.Fatalf("%s: presolved optimum infeasible: %v", tag, pre.X)
	}
	if len(pre.Duals) != m.NumConstraints() {
		t.Fatalf("%s: %d duals for %d rows", tag, len(pre.Duals), m.NumConstraints())
	}
	if pre.DualityGap > 1e-6*(1+math.Abs(pre.Objective)) {
		t.Fatalf("%s: duality gap %v after postsolve", tag, pre.DualityGap)
	}
	if pre.Basis == nil {
		t.Fatalf("%s: no basis reconstructed", tag)
	}
	warm, err := m.ResolveFrom(pre.Basis)
	if err != nil {
		t.Fatalf("%s: warm from reconstructed basis: %v", tag, err)
	}
	if warm.Status != Optimal {
		t.Fatalf("%s: warm start from reconstructed basis: %v", tag, warm.Status)
	}
	if diff := math.Abs(warm.Objective - direct.Objective); diff > 1e-6*(1+math.Abs(direct.Objective)) {
		t.Fatalf("%s: warm objective diverges: %v vs %v", tag, warm.Objective, direct.Objective)
	}
}

// TestPresolveMatchesSolve is the presolve differential: random models
// (the same generator the sparse-vs-dense differential uses) must come
// back from presolve+postsolve with the direct answer.
func TestPresolveMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 1500; trial++ {
		m := randomModel(rng)
		checkPresolveRoundTrip(t, m, "trial")
	}
}

// TestPresolveSingletonChain exercises the LIFO dual reconstruction on a
// chain the reductions fully collapse: EQ singletons fix variables one
// after another (each fix turning the next row into a singleton), so the
// reduced model is empty and every dual comes from postsolve.
func TestPresolveSingletonChain(t *testing.T) {
	m := NewModel()
	x := m.AddVar(3, math.Inf(1))
	y := m.AddVar(2, math.Inf(1))
	z := m.AddVar(1, math.Inf(1))
	m.AddRow([]int{x}, []float64{2}, EQ, 4)        // x = 2
	m.AddRow([]int{x, y}, []float64{1, 1}, EQ, 5)  // y = 3 once x is fixed
	m.AddRow([]int{y, z}, []float64{1, -1}, EQ, 1) // z = 2 once y is fixed
	p := m.Presolve()
	if p.Status != Optimal {
		t.Fatalf("presolve status %v", p.Status)
	}
	if p.Reduced.NumVars() != 0 || p.Reduced.NumConstraints() != 0 {
		t.Fatalf("chain not fully collapsed: %d vars %d rows",
			p.Reduced.NumVars(), p.Reduced.NumConstraints())
	}
	checkPresolveRoundTrip(t, m, "chain")
	sol, err := m.SolvePresolved()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 2}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Fatalf("x[%d] = %v, want %v", j, sol.X[j], w)
		}
	}
}

// TestPresolveDetectsInfeasible covers the three infeasibility proofs:
// crossed induced bounds, an unsatisfiable empty row, and an activity
// interval that cannot reach the RHS.
func TestPresolveDetectsInfeasible(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Model
	}{
		{"crossed bounds", func() *Model {
			m := NewModel()
			x := m.AddVar(1, math.Inf(1))
			m.AddRow([]int{x}, []float64{1}, LE, -1) // x ≤ −1 vs x ≥ 0
			return m
		}},
		{"empty row", func() *Model {
			m := NewModel()
			x := m.AddVar(1, 1)
			m.AddRow([]int{x}, []float64{0}, GE, 5) // zero coef dropped: 0 ≥ 5
			return m
		}},
		{"activity", func() *Model {
			m := NewModel()
			x := m.AddVar(1, 1)
			y := m.AddVar(1, 1)
			m.AddRow([]int{x, y}, []float64{1, 1}, GE, 3) // max activity 2
			return m
		}},
	}
	for _, tc := range cases {
		m := tc.build()
		p := m.Presolve()
		if p.Status != Infeasible {
			t.Errorf("%s: presolve status %v, want infeasible", tc.name, p.Status)
		}
		sol, err := m.SolvePresolved()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if sol.Status != Infeasible {
			t.Errorf("%s: solve status %v, want infeasible", tc.name, sol.Status)
		}
		direct, err := m.Solve()
		if err != nil {
			t.Fatalf("%s: direct: %v", tc.name, err)
		}
		if direct.Status != Infeasible {
			t.Errorf("%s: direct disagrees: %v", tc.name, direct.Status)
		}
	}
}

// TestPresolveReductions pins what each rule actually removes on a model
// built to trip all of them at once.
func TestPresolveReductions(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, 10)                           // survives
	y := m.AddVar(2, 10)                           // fixed by an EQ singleton
	z := m.AddVar(1, 4)                            // dominated: cost ≥ 0, only ≤-rows with a > 0
	w := m.AddVar(-1, 2)                           // dominated at its upper bound
	m.AddRow([]int{y}, []float64{1}, EQ, 3)        // singleton: y = 3
	m.AddRow([]int{x, y}, []float64{1, 1}, GE, 5)  // x ≥ 2 after substitution
	m.AddRow([]int{x, z}, []float64{1, 1}, LE, 20) // redundant: 10 + 4 ≤ 20
	m.AddRow([]int{z}, []float64{1}, LE, 9)        // redundant after z fixes at 0
	m.AddRow([]int{w}, []float64{-1}, GE, -5)      // w ≤ 5, loose: w dominated at ub 2
	p := m.Presolve()
	if p.Status != Optimal {
		t.Fatalf("status %v", p.Status)
	}
	if got := p.Reduced.NumVars(); got != 0 {
		// Even x collapses: x + y ≥ 5 becomes the bound x ≥ 2 after y
		// substitutes, and x is then dominated at that induced lower bound.
		t.Errorf("reduced vars = %d, want 0", got)
	}
	if got := p.Reduced.NumConstraints(); got != 0 {
		t.Errorf("reduced rows = %d, want 0", got)
	}
	sol, err := m.SolvePresolved()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	want := []float64{2, 3, 0, 2}
	for j, v := range want {
		if math.Abs(sol.X[j]-v) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", j, sol.X[j], v)
		}
	}
	// obj = 1·2 + 2·3 + 1·0 + (−1)·2 = 6
	if math.Abs(sol.Objective-6) > 1e-9 {
		t.Errorf("objective = %v, want 6", sol.Objective)
	}
	checkPresolveRoundTrip(t, m, "reductions")
	_, _, _, _ = x, y, z, w
}

// TestPresolveDegenerate runs transportation polytopes with tied
// supplies — the classic degenerate-basis family — through the presolve
// round trip: EQ blocks with massive ties are where sloppy dual
// reconstruction would show.
func TestPresolveDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(3)
		m := NewModel()
		v := make([]int, k*k)
		for i := range v {
			v[i] = m.AddVar(float64(1+rng.Intn(6)), math.Inf(1))
		}
		for r := 0; r < k; r++ {
			cols := make([]int, k)
			vals := make([]float64, k)
			for c := 0; c < k; c++ {
				cols[c] = v[k*r+c]
				vals[c] = 1
			}
			m.AddRow(cols, vals, EQ, 1)
		}
		for c := 0; c < k; c++ {
			cols := make([]int, k)
			vals := make([]float64, k)
			for r := 0; r < k; r++ {
				cols[r] = v[k*r+c]
				vals[r] = 1
			}
			m.AddRow(cols, vals, EQ, 1)
		}
		checkPresolveRoundTrip(t, m, "transport")
	}
}

// TestPresolveRankDeficient feeds presolve rows that are exact copies
// and scalings of each other plus free rows a fresh model never binds —
// the rank-deficient shapes row generation produces.
func TestPresolveRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		nv := 2 + rng.Intn(4)
		m := NewModel()
		for j := 0; j < nv; j++ {
			m.AddVar(rng.Float64(), 1+rng.Float64()*3)
		}
		cols := make([]int, 0, nv)
		vals := make([]float64, 0, nv)
		for r := 0; r < 2+rng.Intn(3); r++ {
			cols = cols[:0]
			vals = vals[:0]
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					cols = append(cols, j)
					vals = append(vals, float64(rng.Intn(5)-2))
				}
			}
			rhs := rng.Float64() * 2
			m.AddRow(cols, vals, GE, rhs)
			if rng.Intn(2) == 0 { // exact duplicate
				m.AddRow(cols, vals, GE, rhs)
			}
			if rng.Intn(2) == 0 { // exact scaling
				sc := 1 + float64(rng.Intn(3))
				sv := append([]float64(nil), vals...)
				for k := range sv {
					sv[k] *= sc
				}
				m.AddRow(cols, sv, GE, rhs*sc)
			}
		}
		checkPresolveRoundTrip(t, m, "rankdef")
	}
}

// TestPresolveShrinksSparseLP pins that the GE benchmark family actually
// shrinks: all-positive rows against finite bounds leave dominated
// columns and (after fixing) satisfied rows behind.
func TestPresolveShrinksSparseLP(t *testing.T) {
	m := buildSparseLP(200)
	p := m.Presolve()
	if p.Status != Optimal {
		t.Fatalf("status %v", p.Status)
	}
	if p.Reduced.NumVars() >= m.NumVars() && p.Reduced.NumConstraints() >= m.NumConstraints() {
		t.Skipf("family no longer reducible: %d→%d vars, %d→%d rows",
			m.NumVars(), p.Reduced.NumVars(), m.NumConstraints(), p.Reduced.NumConstraints())
	}
	checkPresolveRoundTrip(t, m, "sparseLP")
}
