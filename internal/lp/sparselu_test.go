package lp

import (
	"math"
	"math/rand"
	"testing"
)

// buildBandedSparse returns a solver state over an m×m sparse model (a
// dominant diagonal plus two off-diagonal bands, ~3 nonzeros per row)
// with an all-structural basis seated — the factorization workload.
func buildBandedSparse(m int) *sparse {
	mdl := NewModel()
	for j := 0; j < m; j++ {
		mdl.AddVar(1, math.Inf(1))
	}
	cols := make([]int, 0, 3)
	vals := make([]float64, 0, 3)
	for i := 0; i < m; i++ {
		cols = append(cols[:0], i, (i+1)%m, (i*17+5)%m)
		vals = append(vals[:0], 4, 1, 0.5)
		mdl.AddRow(cols, vals, GE, 1)
	}
	s := newSparse(mdl)
	for i := 0; i < m; i++ {
		s.basic[i] = i
		s.status[i] = inBasis
	}
	return s
}

// denseFactorize is the PR 4 dense-LU kernel (row-major, partial
// pivoting), retained here verbatim as the benchmark baseline the sparse
// Markowitz kernel replaced.
func denseFactorize(s *sparse, lu []float64, piv []int) error {
	mr := s.mr
	for i := range lu {
		lu[i] = 0
	}
	for i, b := range s.basic {
		if b < s.n {
			for k := s.colStart[b]; k < s.colStart[b+1]; k++ {
				lu[s.colRow[k]*mr+i] += s.colVal[k]
			}
		} else {
			lu[(b-s.n)*mr+i] += 1
		}
	}
	for k := 0; k < mr; k++ {
		p, best := k, math.Abs(lu[k*mr+k])
		for i := k + 1; i < mr; i++ {
			if a := math.Abs(lu[i*mr+k]); a > best {
				p, best = i, a
			}
		}
		if best < 1e-12 {
			return errSingularBasis
		}
		piv[k] = p
		if p != k {
			rk, rp := lu[k*mr:(k+1)*mr], lu[p*mr:(p+1)*mr]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivInv := 1 / lu[k*mr+k]
		for i := k + 1; i < mr; i++ {
			f := lu[i*mr+k] * pivInv
			if f == 0 {
				continue
			}
			lu[i*mr+k] = f
			ri, rk := lu[i*mr:(i+1)*mr], lu[k*mr:(k+1)*mr]
			for j := k + 1; j < mr; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return nil
}

// TestSparseLUSolvesAgainstDense cross-checks the Markowitz kernel's
// FTRAN/BTRAN on random bases against dense Gaussian elimination
// (solving B·x = v and Bᵀ·y = v for random v).
func TestSparseLUSolvesAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(219))
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(12)
		mdl := NewModel()
		for j := 0; j < m; j++ {
			mdl.AddVar(1, math.Inf(1))
		}
		for i := 0; i < m; i++ {
			coefs := map[int]float64{i: 2 + rng.Float64()}
			for j := 0; j < m; j++ {
				if j != i && rng.Intn(3) == 0 {
					coefs[j] = rng.Float64() - 0.5
				}
			}
			mdl.AddConstraint(coefs, GE, 1)
		}
		s := newSparse(mdl)
		// Mixed basis: mostly structural, some logicals.
		for i := 0; i < m; i++ {
			if rng.Intn(4) == 0 {
				s.basic[i] = s.n + i
				s.status[s.n+i] = inBasis
			} else {
				s.basic[i] = i
				s.status[i] = inBasis
			}
		}
		if err := s.factorize(); err != nil {
			continue // a random basis may legitimately be singular
		}
		// Dense reference LU of the same basis.
		lu := make([]float64, m*m)
		piv := make([]int, m)
		if err := denseFactorize(s, lu, piv); err != nil {
			continue
		}
		v := make([]float64, m)
		for i := range v {
			v[i] = rng.Float64()*4 - 2
		}
		// Sparse FTRAN result.
		x := append([]float64(nil), v...)
		s.ftran(x)
		// Dense forward/back substitution.
		y := append([]float64(nil), v...)
		for k := 0; k < m; k++ {
			if p := piv[k]; p != k {
				y[k], y[p] = y[p], y[k]
			}
		}
		for k := 0; k < m; k++ {
			for i := k + 1; i < m; i++ {
				y[i] -= lu[i*m+k] * y[k]
			}
		}
		for k := m - 1; k >= 0; k-- {
			y[k] /= lu[k*m+k]
			for i := 0; i < k; i++ {
				y[i] -= lu[i*m+k] * y[k]
			}
		}
		for i := 0; i < m; i++ {
			if math.Abs(x[i]-y[i]) > 1e-7*(1+math.Abs(y[i])) {
				t.Fatalf("trial %d: ftran[%d] = %v, dense %v", trial, i, x[i], y[i])
			}
		}
		// BTRAN against the residual definition: Bᵀ·y = v.
		yb := append([]float64(nil), v...)
		s.btran(yb)
		for i := 0; i < m; i++ {
			// Compute (Bᵀ·yb)[i] = column i of B dotted with yb.
			b := s.basic[i]
			var dot float64
			if b < s.n {
				for k := s.colStart[b]; k < s.colStart[b+1]; k++ {
					dot += s.colVal[k] * yb[s.colRow[k]]
				}
			} else {
				dot = yb[b-s.n]
			}
			if math.Abs(dot-v[i]) > 1e-7*(1+math.Abs(v[i])) {
				t.Fatalf("trial %d: btran residual row %d: %v vs %v", trial, i, dot, v[i])
			}
		}
	}
}

// optimalBasisState solves the m-row sparse LP and re-seats its optimal
// basis in a fresh solver state: exactly the basis the production loops
// refactorize every refactorEvery pivots.
func optimalBasisState(b *testing.B, m int) *sparse {
	b.Helper()
	mdl := buildSparseLP(m)
	sol, err := mdl.Solve()
	if err != nil || sol.Status != Optimal {
		b.Fatalf("benchmark model unsolvable: %v %v", sol, err)
	}
	s := newSparse(mdl)
	s.initFromBasis(sol.Basis)
	return s
}

func benchSparseFactor(b *testing.B, s *sparse) {
	if err := s.factorize(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.factorize(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDenseFactor(b *testing.B, s *sparse) {
	lu := make([]float64, s.mr*s.mr)
	piv := make([]int, s.mr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := denseFactorize(s, lu, piv); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSparseFactor* refactorize the *optimal* basis of the m-row
// sparse LP with the Markowitz kernel; BenchmarkLPDenseFactor* run the
// retained PR 4 dense LU on the identical basis — the ≥3× acceptance
// comparison at m=1000.
func BenchmarkLPSparseFactor200(b *testing.B)  { benchSparseFactor(b, optimalBasisState(b, 200)) }
func BenchmarkLPSparseFactor1000(b *testing.B) { benchSparseFactor(b, optimalBasisState(b, 1000)) }
func BenchmarkLPDenseFactor200(b *testing.B)   { benchDenseFactor(b, optimalBasisState(b, 200)) }
func BenchmarkLPDenseFactor1000(b *testing.B)  { benchDenseFactor(b, optimalBasisState(b, 1000)) }

// The banded all-structural basis has no singletons at all: every pivot
// goes through the general Markowitz search. Kept as the nucleus
// stress variant.
func BenchmarkLPSparseFactorBanded1000(b *testing.B) { benchSparseFactor(b, buildBandedSparse(1000)) }
func BenchmarkLPDenseFactorBanded1000(b *testing.B)  { benchDenseFactor(b, buildBandedSparse(1000)) }

// buildSparseLP builds an m-row sparse LP (5 random nonzeros per row,
// non-negative costs, finite bounds) — the Solve-level sweep-scale
// workload.
func buildSparseLP(m int) *Model {
	rng := rand.New(rand.NewSource(int64(m)))
	mdl := NewModel()
	nv := m
	for j := 0; j < nv; j++ {
		mdl.AddVar(0.5+rng.Float64(), 1+rng.Float64()*3)
	}
	cols := make([]int, 0, 5)
	vals := make([]float64, 0, 5)
	for i := 0; i < m; i++ {
		cols, vals = cols[:0], vals[:0]
		for k := 0; k < 5; k++ {
			cols = append(cols, rng.Intn(nv))
			vals = append(vals, 0.2+rng.Float64())
		}
		mdl.AddRow(cols, vals, GE, 0.5+rng.Float64())
	}
	return mdl
}

func benchSparseSolve(b *testing.B, m int) {
	mdl := buildSparseLP(m)
	if sol, err := mdl.Solve(); err != nil || sol.Status != Optimal {
		b.Fatalf("unsolvable benchmark model: %v %v", sol, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mdl.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPSparseSolve* run the full revised simplex on m-row sparse
// models — the regime the ROADMAP's "thousands of rows" line points at.
func BenchmarkLPSparseSolve200(b *testing.B)  { benchSparseSolve(b, 200) }
func BenchmarkLPSparseSolve1000(b *testing.B) { benchSparseSolve(b, 1000) }

// BenchmarkLPSparseSolve2000 sits above both the Forrest–Tomlin gate
// (ftMinRows) and the steepest-edge gate (dseMinRows): the regime the
// PR 7 kernel work targets, where exact pricing's pivot savings beat its
// extra FTRAN.
func BenchmarkLPSparseSolve2000(b *testing.B) { benchSparseSolve(b, 2000) }

// BenchmarkLPSparsePresolve1000 measures the opt-in presolve round trip
// (Presolve + reduced Solve + Postsolve) against BenchmarkLPSparseSolve1000.
func BenchmarkLPSparsePresolve1000(b *testing.B) {
	mdl := buildSparseLP(1000)
	if sol, err := mdl.SolvePresolved(); err != nil || sol.Status != Optimal {
		b.Fatalf("status %v err %v", sol.Status, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mdl.SolvePresolved(); err != nil {
			b.Fatal(err)
		}
	}
}
