package lp

import (
	"math"
	"math/rand"
	"testing"
)

// randomModel builds a random LP mixing ops, finite/infinite bounds and
// signed costs — the differential workload holding the sparse revised
// simplex to the dense tableau oracle.
func randomModel(rng *rand.Rand) *Model {
	m := NewModel()
	nv := 1 + rng.Intn(7)
	for j := 0; j < nv; j++ {
		ub := math.Inf(1)
		if rng.Intn(2) == 0 {
			ub = 0.5 + rng.Float64()*5
		}
		m.AddVar(rng.Float64()*6-3, ub)
	}
	nc := rng.Intn(8)
	for k := 0; k < nc; k++ {
		coefs := map[int]float64{}
		for j := 0; j < nv; j++ {
			if rng.Intn(2) == 0 {
				coefs[j] = rng.Float64()*4 - 2
			}
		}
		m.AddConstraint(coefs, Op(rng.Intn(3)), rng.Float64()*6-2)
	}
	return m
}

// TestSparseMatchesDense holds Solve (sparse revised simplex) to
// SolveDense (two-phase tableau oracle) across random models: statuses
// agree, optimal objectives agree to tolerance, and the sparse point is
// feasible by the model's independent check.
func TestSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	optimal := 0
	for trial := 0; trial < 1200; trial++ {
		m := randomModel(rng)
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		dn, err := m.SolveDense()
		if err != nil {
			t.Fatalf("trial %d: dense: %v", trial, err)
		}
		if sp.Status != dn.Status {
			t.Fatalf("trial %d: sparse %v vs dense %v", trial, sp.Status, dn.Status)
		}
		if sp.Status != Optimal {
			continue
		}
		optimal++
		if !m.Feasible(sp.X, 1e-6) {
			t.Fatalf("trial %d: sparse optimum infeasible: %v", trial, sp.X)
		}
		if diff := math.Abs(sp.Objective - dn.Objective); diff > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("trial %d: sparse %v vs dense %v", trial, sp.Objective, dn.Objective)
		}
		if sp.DualityGap > 1e-6*(1+math.Abs(sp.Objective)) {
			t.Fatalf("trial %d: sparse duality gap %v", trial, sp.DualityGap)
		}
		if sp.Basis == nil {
			t.Fatalf("trial %d: sparse solve returned no basis", trial)
		}
	}
	if optimal < 150 {
		t.Fatalf("only %d optimal instances differentialed", optimal)
	}
}

// TestWarmStartRowGeneration drives the AddRow + ResolveFrom loop the SNE
// row generators use: each round appends a violated cut and re-solves
// warm; every incumbent must match a cold sparse solve and the dense
// oracle on the same rows.
func TestWarmStartRowGeneration(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 40; trial++ {
		nv := 2 + rng.Intn(5)
		m := NewModel()
		for j := 0; j < nv; j++ {
			m.AddVar(0.5+rng.Float64(), 1+rng.Float64()*4)
		}
		var basis *Basis
		cols := make([]int, 0, nv)
		vals := make([]float64, 0, nv)
		for round := 0; round < 12; round++ {
			cols, vals = cols[:0], vals[:0]
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					cols = append(cols, j)
					vals = append(vals, 0.2+rng.Float64())
				}
			}
			if len(cols) == 0 {
				cols = append(cols, rng.Intn(nv))
				vals = append(vals, 1)
			}
			m.AddRow(cols, vals, GE, 0.2+rng.Float64())
			warm, err := m.ResolveFrom(basis)
			if err != nil {
				t.Fatalf("trial %d round %d: warm: %v", trial, round, err)
			}
			cold, err := m.Solve()
			if err != nil {
				t.Fatalf("trial %d round %d: cold: %v", trial, round, err)
			}
			dense, err := m.SolveDense()
			if err != nil {
				t.Fatalf("trial %d round %d: dense: %v", trial, round, err)
			}
			if warm.Status != cold.Status || warm.Status != dense.Status {
				t.Fatalf("trial %d round %d: statuses warm %v cold %v dense %v",
					trial, round, warm.Status, cold.Status, dense.Status)
			}
			if warm.Status == Infeasible {
				break // full-subsidy-style rows keep these feasible; just in case
			}
			if math.Abs(warm.Objective-dense.Objective) > 1e-7*(1+math.Abs(dense.Objective)) {
				t.Fatalf("trial %d round %d: warm %v vs dense %v", trial, round, warm.Objective, dense.Objective)
			}
			if !m.Feasible(warm.X, 1e-6) {
				t.Fatalf("trial %d round %d: warm point infeasible", trial, round)
			}
			basis = warm.Basis
		}
	}
}

// TestResolveFromUnchangedModel: warm re-solve with no new rows must
// terminate immediately at the same optimum.
func TestResolveFromUnchangedModel(t *testing.T) {
	m := NewModel()
	x := m.AddVar(2, math.Inf(1))
	y := m.AddVar(3, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 10)
	m.AddConstraint(map[int]float64{x: 1}, GE, 2)
	sol, err := m.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatal(err)
	}
	re, err := m.ResolveFrom(sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != Optimal || math.Abs(re.Objective-sol.Objective) > 1e-9 {
		t.Fatalf("re-solve drifted: %v vs %v", re.Objective, sol.Objective)
	}
	if re.Pivots != 0 {
		t.Errorf("re-solve of an unchanged model pivoted %d times", re.Pivots)
	}
}

// TestResolveFromStaleBasis: a basis captured before AddVar must fall
// back to a cold solve, not corrupt the answer.
func TestResolveFromStaleBasis(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1}, GE, 4)
	sol, err := m.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatal(err)
	}
	y := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 7)
	re, err := m.ResolveFrom(sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != Optimal || math.Abs(re.Objective-7) > 1e-8 {
		t.Fatalf("stale-basis resolve: %v obj %v, want 7", re.Status, re.Objective)
	}
	if re, err = m.ResolveFrom(nil); err != nil || math.Abs(re.Objective-7) > 1e-8 {
		t.Fatalf("nil-basis resolve: %v %v", re, err)
	}
}

// TestWarmStartInfeasibleRows: rows that contradict each other must be
// detected as Infeasible from a warm basis too.
func TestWarmStartInfeasibleRows(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1}, LE, 3)
	sol, err := m.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatal(err)
	}
	m.AddConstraint(map[int]float64{x: 1}, GE, 5)
	re, err := m.ResolveFrom(sol.Basis)
	if err != nil {
		t.Fatal(err)
	}
	if re.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", re.Status)
	}
}

// TestDenseMatchesSparseOnSuite replays every named unit model through
// both solvers, pinning the pair together beyond the random sweep.
func TestDenseMatchesSparseOnSuite(t *testing.T) {
	builders := map[string]func() *Model{
		"beale": func() *Model {
			m := NewModel()
			x1 := m.AddVar(-0.75, math.Inf(1))
			x2 := m.AddVar(150, math.Inf(1))
			x3 := m.AddVar(-0.02, math.Inf(1))
			x4 := m.AddVar(6, math.Inf(1))
			m.AddConstraint(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
			m.AddConstraint(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
			m.AddConstraint(map[int]float64{x3: 1}, LE, 1)
			return m
		},
		"bounded-negative": func() *Model {
			m := NewModel()
			m.AddVar(-1, 1.5)
			m.AddVar(-1, 2.5)
			return m
		},
		"negated-row": func() *Model {
			m := NewModel()
			x := m.AddVar(1, math.Inf(1))
			m.AddConstraint(map[int]float64{x: -1}, LE, -5)
			return m
		},
		"redundant-eq": func() *Model {
			m := NewModel()
			x := m.AddVar(1, math.Inf(1))
			y := m.AddVar(2, math.Inf(1))
			m.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 3)
			m.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 3)
			m.AddConstraint(map[int]float64{x: 2, y: 2}, EQ, 6)
			return m
		},
	}
	for name, build := range builders {
		m := build()
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("%s: sparse: %v", name, err)
		}
		dn, err := m.SolveDense()
		if err != nil {
			t.Fatalf("%s: dense: %v", name, err)
		}
		if sp.Status != dn.Status {
			t.Fatalf("%s: sparse %v vs dense %v", name, sp.Status, dn.Status)
		}
		if sp.Status == Optimal && math.Abs(sp.Objective-dn.Objective) > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("%s: sparse %v vs dense %v", name, sp.Objective, dn.Objective)
		}
	}
}

// buildMedium is the shared 40-var/80-row benchmark model.
func buildMedium() *Model {
	rng := rand.New(rand.NewSource(123))
	m := NewModel()
	nv := 40
	for j := 0; j < nv; j++ {
		m.AddVar(1, 1+rng.Float64())
	}
	for k := 0; k < 80; k++ {
		coefs := map[int]float64{}
		for j := 0; j < nv; j++ {
			if rng.Intn(3) == 0 {
				coefs[j] = rng.Float64()
			}
		}
		m.AddConstraint(coefs, GE, rng.Float64()*2)
	}
	return m
}

func BenchmarkSimplexSparseMedium(b *testing.B) {
	m := buildMedium()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexDenseMedium(b *testing.B) {
	m := buildMedium()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.SolveDense(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPResolveAppendRow measures the warm-start path: clone the
// solved base model, append one violated row, ResolveFrom the incumbent
// basis — the inner step of every row-generation round.
func BenchmarkLPResolveAppendRow(b *testing.B) {
	base := buildMedium()
	sol, err := base.Solve()
	if err != nil || sol.Status != Optimal {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	cols := make([]int, 0, 8)
	vals := make([]float64, 0, 8)
	for j := 0; j < 8; j++ {
		cols = append(cols, rng.Intn(base.NumVars()))
		vals = append(vals, 0.5+rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := base.Clone()
		b.StartTimer()
		m.AddRow(cols, vals, GE, 3)
		if _, err := m.ResolveFrom(sol.Basis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLPColdAppendRow is the same step without the warm start: the
// baseline ResolveFrom replaces.
func BenchmarkLPColdAppendRow(b *testing.B) {
	base := buildMedium()
	if _, err := base.Solve(); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	cols := make([]int, 0, 8)
	vals := make([]float64, 0, 8)
	for j := 0; j < 8; j++ {
		cols = append(cols, rng.Intn(base.NumVars()))
		vals = append(vals, 0.5+rng.Float64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := base.Clone()
		b.StartTimer()
		m.AddRow(cols, vals, GE, 3)
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
