package lp

import "math"

// Presolve shrinks a model before solving and maps the solution — primal
// values, duals, duality gap and the warm-startable basis — back to the
// original model exactly. The SNE broadcast LPs are full of structure a
// simplex pays for but never uses: singleton deviation rows that are just
// bounds in disguise, columns fixed by their bounds, columns no optimal
// solution moves off a bound, and rows the bounds already satisfy.
//
// The reductions applied, in a fixed-point loop (each either removes a
// row or fixes a column, so the loop terminates in ≤ rows+cols passes):
//
//	empty row        0 op rhs holds → drop (dual 0); else Infeasible.
//	singleton row    a·x_j op rhs → an induced bound on x_j; the row is
//	                 dropped and its dual is reconstructed in postsolve.
//	                 Crossed induced bounds prove infeasibility; bounds
//	                 meeting within round-off fix the column.
//	fixed column     substituted into every row's RHS and removed.
//	dominated column c_j ≥ 0 and every live coefficient relaxes its row
//	                 as x_j decreases (a > 0 in ≤, a < 0 in ≥, none in =)
//	                 → fix at the lower bound; the mirror image with a
//	                 finite upper bound fixes there. Exact sign tests
//	                 keep the fixed value optimal, not just feasible.
//	redundant row    the bound-implied activity interval already
//	                 satisfies the row (closed comparison, no tolerance,
//	                 so the zero dual is exactly admissible) → drop.
//
// General implied-bound tightening from multi-entry rows is deliberately
// NOT emitted: those bounds are only as tight as the other columns'
// bounds, and their duals cascade — the exact dual reconstruction below
// relies on every dropped row being either redundant (y = 0) or a
// singleton (y recovered by complementary slackness in LIFO order).
//
// Induced lower bounds are emitted by shifting: the reduced model's
// variable j' stands for x_j − lo_j, so the reduced model stays in this
// package's native [0, ub] bound form.
//
// Presolve is OPT-IN (SolvePresolved, or Presolve + Postsolve around any
// solve of Reduced): the reduced model pivots differently, so the default
// Solve path — whose pivot counts are pinned by golden tables — is
// untouched.

// presTol is the presolve's own zero threshold: bounds meeting within
// presTol·scale fix the column, and reconstructed duals below it are
// left at zero. It sits well under feasTol so presolve never fabricates
// feasibility the solver would reject.
const presTol = 1e-9

// presSingleton is one dropped singleton row, recorded for LIFO dual
// reconstruction: row `row` read a·x_col op rhs at the moment it was
// dropped (rhs already net of previously fixed columns, whose values
// never change afterwards — so the binding test in postsolve is exact).
type presSingleton struct {
	row, col int
	a, rhs   float64
	op       Op
}

// Presolved is the outcome of Presolve: the reduced model plus the
// bookkeeping Postsolve needs to map a solution of Reduced back onto the
// original model.
type Presolved struct {
	// Status is Optimal when Reduced is ready to solve, or Infeasible
	// when the reductions proved the original model infeasible (Reduced
	// is nil in that case).
	Status Status
	// Reduced is the shrunken model. It may have zero variables or zero
	// rows; Solve handles both.
	Reduced *Model

	orig *Model

	fixed  []bool    // column j was eliminated
	val    []float64 // its value in original coordinates
	lo     []float64 // induced lower bound (shift) of surviving columns
	ubW    []float64 // working upper bound in original coordinates
	colMap []int     // original j → reduced j′ (−1 when fixed)
	invCol []int     // reduced j′ → original j
	alive  []bool    // row i survived
	rowMap []int     // original i → reduced i′ (−1 when dropped)
	invRow []int     // reduced i′ → original i
	sing   []presSingleton
}

// presolver is the working state of one Presolve call.
type presolver struct {
	m     *Model
	n, mr int

	rowCols [][]int // deduplicated live row entries (fixed cols skipped on read)
	rowVals [][]float64
	colRows [][]int // per-column incidence (rows may be dead; skipped on read)
	colVals [][]float64

	liveCount []int // per-row entries whose column is not yet fixed
	rhsW      []float64
	alive     []bool

	lo, ubW []float64
	fixed   []bool
	val     []float64

	sing []presSingleton
}

// Presolve applies the reductions and returns the reduced model with the
// postsolve mapping. The receiver is never modified.
func (m *Model) Presolve() *Presolved {
	ps := &presolver{m: m, n: m.NumVars(), mr: m.NumConstraints()}
	ps.build()
	if !ps.reduce() {
		return &Presolved{Status: Infeasible, orig: m}
	}
	return ps.emit()
}

// build assembles deduplicated row lists and the column incidence. The
// CSR arena may hold duplicate (row, col) entries that sum (the AddRow
// contract); everything downstream needs one coefficient per pair.
func (ps *presolver) build() {
	n, mr := ps.n, ps.mr
	ps.rowCols = make([][]int, mr)
	ps.rowVals = make([][]float64, mr)
	ps.colRows = make([][]int, n)
	ps.colVals = make([][]float64, n)
	ps.liveCount = make([]int, mr)
	ps.rhsW = append([]float64(nil), ps.m.rhs...)
	ps.alive = make([]bool, mr)
	ps.lo = make([]float64, n)
	ps.ubW = append([]float64(nil), ps.m.ub...)
	ps.fixed = make([]bool, n)
	ps.val = make([]float64, n)

	acc := make([]float64, n)
	seen := make([]int, n)
	stamp := 0
	for i := 0; i < mr; i++ {
		ps.alive[i] = true
		stamp++
		cols, vals, _, _ := ps.m.Row(i)
		for k, j := range cols {
			if seen[j] != stamp {
				seen[j] = stamp
				acc[j] = 0
			}
			acc[j] += vals[k]
		}
		for _, j := range cols {
			if seen[j] != stamp {
				continue // duplicate already harvested
			}
			seen[j] = stamp - 1
			if acc[j] == 0 {
				continue // duplicates cancelled exactly
			}
			ps.rowCols[i] = append(ps.rowCols[i], j)
			ps.rowVals[i] = append(ps.rowVals[i], acc[j])
			ps.colRows[j] = append(ps.colRows[j], i)
			ps.colVals[j] = append(ps.colVals[j], acc[j])
		}
		ps.liveCount[i] = len(ps.rowCols[i])
	}
}

// fixColumn eliminates column j at value v: the value folds into every
// live row's RHS and the column stops counting toward row live sizes.
func (ps *presolver) fixColumn(j int, v float64) {
	if v < 0 && v > -presTol {
		v = 0
	}
	ps.fixed[j] = true
	ps.val[j] = v
	for k, i := range ps.colRows[j] {
		if !ps.alive[i] {
			continue
		}
		ps.rhsW[i] -= ps.colVals[j][k] * v
		ps.liveCount[i]--
	}
}

// applyBounds tightens column j to [lo, ub] candidates and reports false
// on a proven-crossed pair. Bounds that meet within round-off fix the
// column at their midpoint.
func (ps *presolver) applyBounds(j int) bool {
	lo, ub := ps.lo[j], ps.ubW[j]
	scale := 1 + math.Abs(lo)
	if !math.IsInf(ub, 1) {
		scale += math.Abs(ub)
	}
	if lo > ub+feasTol*scale {
		return false
	}
	if !math.IsInf(ub, 1) && ub-lo <= presTol*scale {
		ps.fixColumn(j, (lo+ub)/2)
	}
	return true
}

// dropSingleton removes singleton row i whose single live entry is
// (j, a), recording it for dual reconstruction and converting it into an
// induced bound on x_j. Reports false on proven infeasibility.
func (ps *presolver) dropSingleton(i, j int, a float64) bool {
	rhs := ps.rhsW[i]
	op := ps.m.ops[i]
	ps.alive[i] = false
	ps.sing = append(ps.sing, presSingleton{row: i, col: j, a: a, rhs: rhs, op: op})
	v := rhs / a
	tightLo := op == EQ || (op == GE) == (a > 0)
	tightUb := op == EQ || (op == LE) == (a > 0)
	if tightLo && v > ps.lo[j] {
		ps.lo[j] = v
	}
	if tightUb && v < ps.ubW[j] {
		ps.ubW[j] = v
	}
	return ps.applyBounds(j)
}

// reduce runs the fixed-point loop; false means Infeasible.
func (ps *presolver) reduce() bool {
	for changed := true; changed; {
		changed = false
		// Rows: empty and singleton.
		for i := 0; i < ps.mr; i++ {
			if !ps.alive[i] {
				continue
			}
			switch ps.liveCount[i] {
			case 0:
				rhs := ps.rhsW[i]
				scale := feasTol * (1 + math.Abs(rhs))
				switch ps.m.ops[i] {
				case LE:
					if rhs < -scale {
						return false
					}
				case GE:
					if rhs > scale {
						return false
					}
				case EQ:
					if math.Abs(rhs) > scale {
						return false
					}
				}
				ps.alive[i] = false
				changed = true
			case 1:
				j, a := -1, 0.0
				for k, c := range ps.rowCols[i] {
					if !ps.fixed[c] {
						j, a = c, ps.rowVals[i][k]
						break
					}
				}
				if !ps.dropSingleton(i, j, a) {
					return false
				}
				changed = true
			}
		}
		// Columns: fixed columns are eliminated inline by fixColumn; here
		// the dominance tests fix what remains.
		for j := 0; j < ps.n; j++ {
			if ps.fixed[j] {
				continue
			}
			c := ps.m.obj[j]
			atLo := c >= 0
			atUb := c <= 0 && !math.IsInf(ps.ubW[j], 1)
			for k, i := range ps.colRows[j] {
				if !ps.alive[i] {
					continue
				}
				if !atLo && !atUb {
					break
				}
				a := ps.colVals[j][k]
				down := (ps.m.ops[i] == LE) == (a > 0) && ps.m.ops[i] != EQ
				if !down {
					atLo = false
				}
				if down || ps.m.ops[i] == EQ {
					atUb = false
				}
			}
			if atLo {
				ps.fixColumn(j, ps.lo[j])
				changed = true
			} else if atUb {
				ps.fixColumn(j, ps.ubW[j])
				changed = true
			}
		}
		// Rows again: redundancy against the tightened bounds. Closed
		// comparisons only — a row dropped here must admit the exact zero
		// dual, so no tolerance is spent making it droppable.
		for i := 0; i < ps.mr; i++ {
			if !ps.alive[i] || ps.liveCount[i] < 2 {
				continue
			}
			minact, maxact := 0.0, 0.0
			for k, j := range ps.rowCols[i] {
				if ps.fixed[j] {
					continue
				}
				a := ps.rowVals[i][k]
				if a > 0 {
					minact += a * ps.lo[j]
					maxact += a * ps.ubW[j]
				} else {
					minact += a * ps.ubW[j]
					maxact += a * ps.lo[j]
				}
			}
			rhs := ps.rhsW[i]
			scale := feasTol * (1 + math.Abs(rhs))
			switch ps.m.ops[i] {
			case LE:
				if minact > rhs+scale && !math.IsInf(minact, 1) {
					return false
				}
				if maxact <= rhs {
					ps.alive[i] = false
					changed = true
				}
			case GE:
				if maxact < rhs-scale && !math.IsInf(maxact, -1) {
					return false
				}
				if minact >= rhs {
					ps.alive[i] = false
					changed = true
				}
			case EQ:
				if (minact > rhs+scale && !math.IsInf(minact, 1)) ||
					(maxact < rhs-scale && !math.IsInf(maxact, -1)) {
					return false
				}
			}
		}
	}
	return true
}

// emit builds the reduced model (shifted to [0, ub−lo] bounds) and the
// postsolve mapping.
func (ps *presolver) emit() *Presolved {
	p := &Presolved{
		Status: Optimal,
		orig:   ps.m,
		fixed:  ps.fixed,
		val:    ps.val,
		lo:     ps.lo,
		ubW:    ps.ubW,
		alive:  ps.alive,
		sing:   ps.sing,
	}
	red := NewModel()
	p.colMap = make([]int, ps.n)
	for j := 0; j < ps.n; j++ {
		if ps.fixed[j] {
			p.colMap[j] = -1
			continue
		}
		ub := ps.ubW[j] - ps.lo[j]
		if ub < 0 {
			ub = 0 // round-off from a near-tie that stayed unfixed
		}
		p.colMap[j] = red.AddVar(ps.m.obj[j], ub)
		p.invCol = append(p.invCol, j)
	}
	p.rowMap = make([]int, ps.mr)
	var cols []int
	var vals []float64
	for i := 0; i < ps.mr; i++ {
		if !ps.alive[i] {
			p.rowMap[i] = -1
			continue
		}
		cols = cols[:0]
		vals = vals[:0]
		rhs := ps.rhsW[i]
		for k, j := range ps.rowCols[i] {
			if ps.fixed[j] {
				continue
			}
			cols = append(cols, p.colMap[j])
			vals = append(vals, ps.rowVals[i][k])
			rhs -= ps.rowVals[i][k] * ps.lo[j]
		}
		p.rowMap[i] = red.NumConstraints()
		p.invRow = append(p.invRow, i)
		red.AddRow(cols, vals, ps.m.ops[i], rhs)
	}
	p.Reduced = red
	return p
}

// Postsolve maps a solution of Reduced back onto the original model:
// primal values are unshifted and fixed columns reinstated; duals of
// dropped rows are reconstructed — zero for redundant/empty rows (they
// were dropped under closed comparisons exactly so that is admissible),
// and by complementary slackness for singleton rows, replayed in LIFO
// order against incrementally maintained original reduced costs; the
// duality gap is recomputed over the original model; and the basis is
// rebuilt in original coordinates (dropped rows seat their own logical),
// so ResolveFrom warm starts work exactly as from a direct Solve.
func (p *Presolved) Postsolve(sol *Solution) *Solution {
	if sol.Status != Optimal {
		return &Solution{Status: sol.Status, Pivots: sol.Pivots}
	}
	m := p.orig
	n, mr := m.NumVars(), m.NumConstraints()
	out := &Solution{Status: Optimal, Pivots: sol.Pivots}

	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if p.fixed[j] {
			x[j] = p.val[j]
		} else {
			x[j] = sol.X[p.colMap[j]] + p.lo[j]
		}
		if x[j] < 0 && x[j] > -feasTol {
			x[j] = 0
		}
	}
	out.X = x
	out.Objective = m.Value(x)

	// Duals: start from the reduced solve's y (dropped rows at zero),
	// form the original reduced costs d = c − Aᵀy, then assign each
	// dropped singleton row's dual in LIFO order. Complementary
	// slackness picks d_j/a exactly when the row is binding and the sign
	// is admissible for its operator; the assignment zeroes d_j, so an
	// outer singleton on the same column then correctly reads zero.
	y := make([]float64, mr)
	for i := 0; i < mr; i++ {
		if p.rowMap[i] >= 0 {
			y[i] = sol.Duals[p.rowMap[i]]
		}
	}
	d := append([]float64(nil), m.obj...)
	for i := 0; i < mr; i++ {
		if y[i] == 0 {
			continue
		}
		cols, vals, _, _ := m.Row(i)
		for k, j := range cols {
			d[j] -= vals[k] * y[i]
		}
	}
	for k := len(p.sing) - 1; k >= 0; k-- {
		sg := p.sing[k]
		dj := d[sg.col]
		if math.Abs(dj) <= presTol*(1+math.Abs(m.obj[sg.col])) {
			continue
		}
		cand := dj / sg.a
		if (sg.op == LE && cand > presTol) || (sg.op == GE && cand < -presTol) {
			continue
		}
		act := sg.a * x[sg.col]
		if math.Abs(act-sg.rhs) > feasTol*(1+math.Abs(act)+math.Abs(sg.rhs)) {
			continue
		}
		y[sg.row] = cand
		// The new dual hits every column of the ORIGINAL row, not just
		// the one that was live at drop time: the fixed columns' reduced
		// costs feed outer singletons and the gap below. d[sg.col] lands
		// exactly at zero.
		cols, vals, _, _ := m.Row(sg.row)
		for kk, j := range cols {
			d[j] -= vals[kk] * cand
		}
	}
	out.Duals = y

	dualObj := 0.0
	for i := 0; i < mr; i++ {
		dualObj += y[i] * m.rhs[i]
	}
	for j := 0; j < n; j++ {
		if d[j] < 0 && !math.IsInf(m.ub[j], 1) {
			dualObj += d[j] * m.ub[j]
		}
	}
	out.DualityGap = math.Abs(dualObj - out.Objective)

	// Basis in original coordinates. Fixed columns rest at the original
	// bound nearest their value (a column fixed strictly inside by an
	// equality sits formally at lower; the warm start recovers it in a
	// pivot). Dropped rows seat their own logical — exactly the block
	// ResolveFrom's projection would add, so the basis factorizes.
	if rb := sol.Basis; rb != nil {
		bas := &Basis{
			nVars:  n,
			nRows:  mr,
			fp:     m.StructureFingerprint(),
			status: make([]int8, n+mr),
			basic:  make([]int, mr),
		}
		for j := 0; j < n; j++ {
			if !p.fixed[j] {
				bas.status[j] = rb.status[p.colMap[j]]
			} else if !math.IsInf(m.ub[j], 1) &&
				math.Abs(p.val[j]-m.ub[j]) <= feasTol*(1+math.Abs(m.ub[j])) {
				bas.status[j] = nbUpper
			} else {
				bas.status[j] = nbLower
			}
		}
		for i := 0; i < mr; i++ {
			bas.status[n+i] = logicalRest(m.ops[i])
		}
		for i := 0; i < mr; i++ {
			if p.rowMap[i] < 0 {
				bas.basic[i] = n + i
			} else if b := rb.basic[p.rowMap[i]]; b < rb.nVars {
				bas.basic[i] = p.invCol[b]
			} else {
				bas.basic[i] = n + p.invRow[b-rb.nVars]
			}
			bas.status[bas.basic[i]] = inBasis
		}
		out.Basis = bas
	}
	return out
}

// SolvePresolved is Presolve + Solve + Postsolve: the opt-in entry point
// for callers that want the reductions without managing the mapping.
func (m *Model) SolvePresolved() (*Solution, error) {
	p := m.Presolve()
	if p.Status != Optimal {
		return &Solution{Status: p.Status}, nil
	}
	sol, err := p.Reduced.Solve()
	if err != nil {
		return nil, err
	}
	return p.Postsolve(sol), nil
}
