package lp

import (
	"math"
	"testing"
)

// FuzzLPSolve fuzzes the sparse revised simplex against the dense
// tableau oracle on feasible-by-construction models: a witness point x*
// is decoded from the fuzz bytes first, and every row's RHS is then
// offset from a·x* so that x* satisfies it. Both solvers must agree the
// model is Optimal (it cannot be infeasible, and costs are non-negative
// so it cannot be unbounded), match objectives, and return points the
// model's independent Feasible check accepts.
func FuzzLPSolve(f *testing.F) {
	f.Add([]byte{3, 200, 10, 30, 50, 2, 0, 7, 120, 1, 1, 3, 200, 90})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{5, 9, 9, 9, 9, 9, 4, 2, 33, 44, 55, 66, 77, 88, 99, 11, 22})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		nv := 1 + int(next())%6
		m := NewModel()
		xs := make([]float64, nv)
		for j := 0; j < nv; j++ {
			cost := float64(next()%8) / 2 // ≥ 0: minimization stays bounded
			ub := math.Inf(1)
			hi := 8.0
			if next()%2 == 0 {
				ub = 0.5 + float64(next()%16)/2
				hi = ub
			}
			m.AddVar(cost, ub)
			xs[j] = math.Min(hi, float64(next()%16)/2) // witness inside [0, ub]
		}
		rows := int(next()) % 10
		for k := 0; k < rows; k++ {
			coefs := map[int]float64{}
			lhs := 0.0
			for j := 0; j < nv; j++ {
				if next()%2 == 0 {
					c := float64(int(next())%9-4) / 2
					coefs[j] = c
					lhs += c * xs[j]
				}
			}
			// Margined offsets keep the witness interior, so tolerance
			// differences between the solvers cannot flip the status.
			off := 0.25 + float64(next()%8)/4
			switch next() % 3 {
			case 0:
				m.AddConstraint(coefs, LE, lhs+off)
			case 1:
				m.AddConstraint(coefs, GE, lhs-off)
			default:
				m.AddConstraint(coefs, EQ, lhs)
			}
		}
		if !m.Feasible(xs, 1e-9) {
			t.Fatalf("witness construction broken: %v", xs)
		}
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("sparse: %v", err)
		}
		dn, err := m.SolveDense()
		if err != nil {
			t.Fatalf("dense: %v", err)
		}
		if sp.Status != Optimal || dn.Status != Optimal {
			t.Fatalf("feasible bounded model: sparse %v dense %v", sp.Status, dn.Status)
		}
		if !m.Feasible(sp.X, 1e-6) {
			t.Fatalf("sparse optimum infeasible: %v", sp.X)
		}
		if !m.Feasible(dn.X, 1e-6) {
			t.Fatalf("dense optimum infeasible: %v", dn.X)
		}
		if diff := math.Abs(sp.Objective - dn.Objective); diff > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("objectives diverge: sparse %v dense %v", sp.Objective, dn.Objective)
		}
		if sp.Objective > m.Value(xs)+1e-6*(1+math.Abs(m.Value(xs))) {
			t.Fatalf("witness beats 'optimum': %v < %v", m.Value(xs), sp.Objective)
		}
	})
}
