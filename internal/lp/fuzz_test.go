package lp

import (
	"math"
	"testing"
)

// FuzzLPSolve fuzzes the sparse revised simplex against the dense
// tableau oracle on feasible-by-construction models: a witness point x*
// is decoded from the fuzz bytes first, and every row's RHS is then
// offset from a·x* so that x* satisfies it. Both solvers must agree the
// model is Optimal (it cannot be infeasible, and costs are non-negative
// so it cannot be unbounded), match objectives, and return points the
// model's independent Feasible check accepts.
func FuzzLPSolve(f *testing.F) {
	f.Add([]byte{3, 200, 10, 30, 50, 2, 0, 7, 120, 1, 1, 3, 200, 90})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{5, 9, 9, 9, 9, 9, 4, 2, 33, 44, 55, 66, 77, 88, 99, 11, 22})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		nv := 1 + int(next())%6
		m := NewModel()
		xs := make([]float64, nv)
		for j := 0; j < nv; j++ {
			cost := float64(next()%8) / 2 // ≥ 0: minimization stays bounded
			ub := math.Inf(1)
			hi := 8.0
			if next()%2 == 0 {
				ub = 0.5 + float64(next()%16)/2
				hi = ub
			}
			m.AddVar(cost, ub)
			xs[j] = math.Min(hi, float64(next()%16)/2) // witness inside [0, ub]
		}
		rows := int(next()) % 10
		for k := 0; k < rows; k++ {
			coefs := map[int]float64{}
			lhs := 0.0
			for j := 0; j < nv; j++ {
				if next()%2 == 0 {
					c := float64(int(next())%9-4) / 2
					coefs[j] = c
					lhs += c * xs[j]
				}
			}
			// Margined offsets keep the witness interior, so tolerance
			// differences between the solvers cannot flip the status.
			off := 0.25 + float64(next()%8)/4
			switch next() % 3 {
			case 0:
				m.AddConstraint(coefs, LE, lhs+off)
			case 1:
				m.AddConstraint(coefs, GE, lhs-off)
			default:
				m.AddConstraint(coefs, EQ, lhs)
			}
		}
		if !m.Feasible(xs, 1e-9) {
			t.Fatalf("witness construction broken: %v", xs)
		}
		sp, err := m.Solve()
		if err != nil {
			t.Fatalf("sparse: %v", err)
		}
		dn, err := m.SolveDense()
		if err != nil {
			t.Fatalf("dense: %v", err)
		}
		if sp.Status != Optimal || dn.Status != Optimal {
			t.Fatalf("feasible bounded model: sparse %v dense %v", sp.Status, dn.Status)
		}
		if !m.Feasible(sp.X, 1e-6) {
			t.Fatalf("sparse optimum infeasible: %v", sp.X)
		}
		if !m.Feasible(dn.X, 1e-6) {
			t.Fatalf("dense optimum infeasible: %v", dn.X)
		}
		if diff := math.Abs(sp.Objective - dn.Objective); diff > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("objectives diverge: sparse %v dense %v", sp.Objective, dn.Objective)
		}
		if sp.Objective > m.Value(xs)+1e-6*(1+math.Abs(m.Value(xs))) {
			t.Fatalf("witness beats 'optimum': %v < %v", m.Value(xs), sp.Objective)
		}

		// Presolve round trip: the reductions must agree with the direct
		// solve bit for status, match the objective, return a point the
		// independent check accepts, and reconstruct duals that certify
		// optimality on the ORIGINAL model.
		pre, err := m.SolvePresolved()
		if err != nil {
			t.Fatalf("presolved: %v", err)
		}
		if pre.Status != Optimal {
			t.Fatalf("presolved status %v on a feasible bounded model", pre.Status)
		}
		if !m.Feasible(pre.X, 1e-6) {
			t.Fatalf("presolved optimum infeasible: %v", pre.X)
		}
		if diff := math.Abs(pre.Objective - dn.Objective); diff > 1e-6*(1+math.Abs(dn.Objective)) {
			t.Fatalf("presolved objective diverges: %v vs dense %v", pre.Objective, dn.Objective)
		}
		if pre.DualityGap > 1e-6*(1+math.Abs(pre.Objective)) {
			t.Fatalf("presolved duality gap %v", pre.DualityGap)
		}

		// Cross-instance homotopy: the optimal basis must warm start a
		// structurally identical neighbour (all inequalities loosened, so
		// the witness stays feasible) and a row-truncated one, matching
		// the dense oracle on each.
		loose := 0.25 + float64(next()%8)/8
		nb := m.Clone()
		for i := 0; i < nb.NumConstraints(); i++ {
			switch nb.ops[i] {
			case LE:
				nb.rhs[i] += loose
			case GE:
				nb.rhs[i] -= loose
			}
		}
		warm, err := nb.ResolveFrom(sp.Basis)
		if err != nil {
			t.Fatalf("foreign warm: %v", err)
		}
		wdn, err := nb.SolveDense()
		if err != nil {
			t.Fatalf("foreign dense: %v", err)
		}
		if warm.Status != wdn.Status {
			t.Fatalf("foreign: warm %v vs dense %v", warm.Status, wdn.Status)
		}
		if warm.Status == Optimal {
			if diff := math.Abs(warm.Objective - wdn.Objective); diff > 1e-6*(1+math.Abs(wdn.Objective)) {
				t.Fatalf("foreign objectives diverge: warm %v dense %v", warm.Objective, wdn.Objective)
			}
			if !nb.Feasible(warm.X, 1e-6) {
				t.Fatalf("foreign warm optimum infeasible: %v", warm.X)
			}
		}
		if rows > 0 {
			// Truncation direction: basis has more rows than the model.
			tr := NewModel()
			for j := 0; j < m.NumVars(); j++ {
				tr.AddVar(m.obj[j], m.ub[j])
			}
			for i := 0; i < m.NumConstraints()-1; i++ {
				cols, vals, op, rhs := m.Row(i)
				tr.AddRow(cols, vals, op, rhs)
			}
			tw, err := tr.ResolveFrom(sp.Basis)
			if err != nil {
				t.Fatalf("truncated warm: %v", err)
			}
			tdn, err := tr.SolveDense()
			if err != nil {
				t.Fatalf("truncated dense: %v", err)
			}
			if tw.Status != tdn.Status {
				t.Fatalf("truncated: warm %v vs dense %v", tw.Status, tdn.Status)
			}
			if tw.Status == Optimal {
				if diff := math.Abs(tw.Objective - tdn.Objective); diff > 1e-6*(1+math.Abs(tdn.Objective)) {
					t.Fatalf("truncated objectives diverge: warm %v dense %v", tw.Objective, tdn.Objective)
				}
			}
		}
	})
}
