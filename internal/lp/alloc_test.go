package lp

import "testing"

// Allocation regression pins. The sparse solver's steady state (pooled
// workspace, warmed arenas) spends exactly the Solution-export
// allocations per solve — 6 today; the Forrest–Tomlin path must not add
// any, since its whole point is absorbing pivots into reused factor
// storage. Presolve allocates its working lists per call (it is an
// opt-in, once-per-model pass), so its pin is per row+column and guards
// against superlinear blowups, not against the linear setup itself.

func TestSolveAllocsForrestTomlin(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	defer func(v int) { ftMinRows = v }(ftMinRows)
	ftMinRows = 0
	m := buildSparseLP(200)
	for i := 0; i < 3; i++ { // warm the pool and the factor arenas
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := m.Solve(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 8 {
		t.Errorf("FT-path solve allocates %.1f/op, want ≤ 8 (Solution export only)", allocs)
	}
}

func TestPresolveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	m := buildSparseLP(200)
	perUnit := 20.0 * float64(m.NumVars()+m.NumConstraints())
	allocs := testing.AllocsPerRun(10, func() { m.Presolve() })
	if allocs > perUnit+200 {
		t.Errorf("Presolve allocates %.1f/op on a %d×%d model, want ≤ %.0f (linear in size)",
			allocs, m.NumConstraints(), m.NumVars(), perUnit+200)
	}
	p := m.Presolve()
	sol, err := p.Reduced.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("reduced solve: %v %v", sol.Status, err)
	}
	post := testing.AllocsPerRun(10, func() { p.Postsolve(sol) })
	if post > 12 {
		t.Errorf("Postsolve allocates %.1f/op, want ≤ 12", post)
	}
}
