package lp

import (
	"math"
	"math/rand"
	"testing"
)

func solveOK(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := m.Solve()
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestSimpleMaximizationAsMin(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  →  (2,6), obj 36.
	m := NewModel()
	x := m.AddVar(-3, math.Inf(1))
	y := m.AddVar(-5, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1}, LE, 4)
	m.AddConstraint(map[int]float64{y: 2}, LE, 12)
	m.AddConstraint(map[int]float64{x: 3, y: 2}, LE, 18)
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.X[x]-2) > 1e-8 || math.Abs(sol.X[y]-6) > 1e-8 {
		t.Errorf("X = %v, want (2,6)", sol.X)
	}
	if math.Abs(sol.Objective-(-36)) > 1e-8 {
		t.Errorf("objective = %v, want -36", sol.Objective)
	}
	if !m.Feasible(sol.X, 1e-9) {
		t.Error("solution not feasible by independent check")
	}
}

func TestMinimizationWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≥ 2, y ≥ 3  →  x=7, y=3, obj 23.
	m := NewModel()
	x := m.AddVar(2, math.Inf(1))
	y := m.AddVar(3, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: 1}, GE, 10)
	m.AddConstraint(map[int]float64{x: 1}, GE, 2)
	m.AddConstraint(map[int]float64{y: 1}, GE, 3)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.Objective-23) > 1e-8 {
		t.Fatalf("got %v obj %v", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[x]-7) > 1e-8 || math.Abs(sol.X[y]-3) > 1e-8 {
		t.Errorf("X = %v", sol.X)
	}
}

func TestEqualityConstraints(t *testing.T) {
	// min x + y s.t. x + 2y = 4, x − y = 1  →  x=2, y=1, obj 3.
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	y := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: 2}, EQ, 4)
	m.AddConstraint(map[int]float64{x: 1, y: -1}, EQ, 1)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("status %v obj %v X %v", sol.Status, sol.Objective, sol.X)
	}
}

func TestUpperBounds(t *testing.T) {
	// min −x − y with x ≤ 1.5, y ≤ 2.5 (via variable bounds).
	m := NewModel()
	x := m.AddVar(-1, 1.5)
	y := m.AddVar(-1, 2.5)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.Objective+4) > 1e-8 {
		t.Fatalf("status %v obj %v", sol.Status, sol.Objective)
	}
	if math.Abs(sol.X[x]-1.5) > 1e-8 || math.Abs(sol.X[y]-2.5) > 1e-8 {
		t.Errorf("X = %v", sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1}, GE, 5)
	m.AddConstraint(map[int]float64{x: 1}, LE, 3)
	sol := solveOK(t, m)
	if sol.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
	// Infeasible via bounds.
	m2 := NewModel()
	y := m2.AddVar(1, 2)
	m2.AddConstraint(map[int]float64{y: 1}, GE, 3)
	if s := solveOK(t, m2); s.Status != Infeasible {
		t.Fatalf("bounded infeasible: status %v", s.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVar(-1, math.Inf(1))
	y := m.AddVar(0, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: -1}, LE, 1)
	sol := solveOK(t, m)
	if sol.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. −x ≤ −5  (i.e. x ≥ 5).
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: -1}, LE, -5)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.X[x]-5) > 1e-8 {
		t.Fatalf("status %v X %v", sol.Status, sol.X)
	}
}

func TestRedundantAndZeroRows(t *testing.T) {
	// Duplicate equalities exercise artificial-variable cleanup of
	// redundant rows.
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	y := m.AddVar(2, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 3)
	m.AddConstraint(map[int]float64{x: 1, y: 1}, EQ, 3)
	m.AddConstraint(map[int]float64{x: 2, y: 2}, EQ, 6)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.Objective-3) > 1e-8 {
		t.Fatalf("status %v obj %v", sol.Status, sol.Objective)
	}
}

func TestDegenerateBeale(t *testing.T) {
	// Beale's cycling example (classic). Dantzig rule can cycle on it;
	// the Bland fallback must terminate with the optimum −0.05.
	m := NewModel()
	x1 := m.AddVar(-0.75, math.Inf(1))
	x2 := m.AddVar(150, math.Inf(1))
	x3 := m.AddVar(-0.02, math.Inf(1))
	x4 := m.AddVar(6, math.Inf(1))
	m.AddConstraint(map[int]float64{x1: 0.25, x2: -60, x3: -0.04, x4: 9}, LE, 0)
	m.AddConstraint(map[int]float64{x1: 0.5, x2: -90, x3: -0.02, x4: 3}, LE, 0)
	m.AddConstraint(map[int]float64{x3: 1}, LE, 1)
	sol := solveOK(t, m)
	if sol.Status != Optimal || math.Abs(sol.Objective-(-0.05)) > 1e-6 {
		t.Fatalf("Beale: status %v obj %v", sol.Status, sol.Objective)
	}
}

func TestEmptyModel(t *testing.T) {
	m := NewModel()
	sol := solveOK(t, m)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty model: %v %v", sol.Status, sol.Objective)
	}
	// Variables but no constraints: min at lower bounds.
	m2 := NewModel()
	m2.AddVar(3, math.Inf(1))
	sol2 := solveOK(t, m2)
	if sol2.Status != Optimal || sol2.X[0] != 0 {
		t.Fatalf("no-constraint model: %v", sol2.X)
	}
}

func TestPanicsOnInvalidInput(t *testing.T) {
	for name, fn := range map[string]func(){
		"nan obj":     func() { NewModel().AddVar(math.NaN(), 1) },
		"neg ub":      func() { NewModel().AddVar(0, -1) },
		"unknown var": func() { m := NewModel(); m.AddConstraint(map[int]float64{3: 1}, LE, 0) },
		"inf rhs":     func() { m := NewModel(); m.AddVar(0, 1); m.AddConstraint(nil, LE, math.Inf(1)) },
		"nan coef": func() {
			m := NewModel()
			v := m.AddVar(0, 1)
			m.AddConstraint(map[int]float64{v: math.NaN()}, LE, 0)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestRandom2DAgainstBruteForce solves random 2-variable LPs and checks
// the simplex optimum against enumeration of all constraint-intersection
// vertices (the classic exact method in 2D).
func TestRandom2DAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 400; trial++ {
		m := NewModel()
		cx := float64(rng.Intn(11) - 5)
		cy := float64(rng.Intn(11) - 5)
		x := m.AddVar(cx, math.Inf(1))
		y := m.AddVar(cy, math.Inf(1))
		type ln struct{ a, b, c float64 } // a·x + b·y ≤ c
		// Always include a box so the LP is bounded.
		lines := []ln{{1, 0, float64(1 + rng.Intn(9))}, {0, 1, float64(1 + rng.Intn(9))}}
		nc := rng.Intn(5)
		for k := 0; k < nc; k++ {
			lines = append(lines, ln{
				float64(rng.Intn(9) - 4),
				float64(rng.Intn(9) - 4),
				float64(rng.Intn(13) - 2),
			})
		}
		for _, l := range lines {
			m.AddConstraint(map[int]float64{x: l.a, y: l.b}, LE, l.c)
		}
		// Brute force: candidate vertices are intersections of all pairs
		// of constraint lines plus the axes x=0, y=0.
		all := append([]ln{}, lines...)
		all = append(all, ln{1, 0, 0}, ln{0, 1, 0}) // treat as equalities below
		feas := func(px, py float64) bool {
			if px < -1e-9 || py < -1e-9 {
				return false
			}
			for _, l := range lines {
				if l.a*px+l.b*py > l.c+1e-9 {
					return false
				}
			}
			return true
		}
		best := math.Inf(1)
		found := false
		for i := 0; i < len(all); i++ {
			for j := i + 1; j < len(all); j++ {
				det := all[i].a*all[j].b - all[j].a*all[i].b
				if math.Abs(det) < 1e-12 {
					continue
				}
				px := (all[i].c*all[j].b - all[j].c*all[i].b) / det
				py := (all[i].a*all[j].c - all[j].a*all[i].c) / det
				if feas(px, py) {
					found = true
					if v := cx*px + cy*py; v < best {
						best = v
					}
				}
			}
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !found {
			if sol.Status == Optimal {
				// Brute force missed a vertex only if the feasible region
				// is lower-dimensional; accept but verify feasibility.
				if !m.Feasible(sol.X, 1e-7) {
					t.Fatalf("trial %d: claimed optimal point infeasible", trial)
				}
			}
			continue
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: simplex says %v but brute force found optimum %v", trial, sol.Status, best)
		}
		if math.Abs(sol.Objective-best) > 1e-6*(1+math.Abs(best)) {
			t.Fatalf("trial %d: simplex %v vs brute force %v", trial, sol.Objective, best)
		}
		if !m.Feasible(sol.X, 1e-7) {
			t.Fatalf("trial %d: solution infeasible", trial)
		}
	}
}

// TestRandomFeasibilityConsistency: on random larger LPs, whatever the
// solver returns must be internally consistent — optimal solutions are
// feasible and no sampled feasible point beats them.
func TestRandomFeasibilityConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 120; trial++ {
		nv := 2 + rng.Intn(6)
		m := NewModel()
		for j := 0; j < nv; j++ {
			ub := math.Inf(1)
			if rng.Intn(2) == 0 {
				ub = 1 + rng.Float64()*5
			}
			m.AddVar(rng.Float64()*4-2, ub)
		}
		nc := 1 + rng.Intn(6)
		for k := 0; k < nc; k++ {
			coefs := map[int]float64{}
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					coefs[j] = rng.Float64()*4 - 2
				}
			}
			op := Op(rng.Intn(3))
			m.AddConstraint(coefs, op, rng.Float64()*6-1)
		}
		sol, err := m.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.Status != Optimal {
			continue
		}
		if !m.Feasible(sol.X, 1e-6) {
			t.Fatalf("trial %d: optimal point infeasible", trial)
		}
		// Sample random feasible points; none may beat the optimum.
		for s := 0; s < 300; s++ {
			pt := make([]float64, nv)
			for j := range pt {
				hi := 6.0
				if !math.IsInf(m.ub[j], 1) {
					hi = m.ub[j]
				}
				pt[j] = rng.Float64() * hi
			}
			if m.Feasible(pt, 0) && m.Value(pt) < sol.Objective-1e-6 {
				t.Fatalf("trial %d: sampled point beats 'optimal' (%v < %v)", trial, m.Value(pt), sol.Objective)
			}
		}
	}
}

func BenchmarkSimplexMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(123))
	build := func() *Model {
		m := NewModel()
		nv := 40
		for j := 0; j < nv; j++ {
			m.AddVar(1, 1+rng.Float64())
		}
		for k := 0; k < 80; k++ {
			coefs := map[int]float64{}
			for j := 0; j < nv; j++ {
				if rng.Intn(3) == 0 {
					coefs[j] = rng.Float64()
				}
			}
			m.AddConstraint(coefs, GE, rng.Float64()*2)
		}
		return m
	}
	m := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDualityCertificate: on random solvable LPs the extracted duals must
// close the duality gap and satisfy complementary slackness.
func TestDualityCertificate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	checked := 0
	for trial := 0; trial < 300; trial++ {
		nv := 2 + rng.Intn(5)
		m := NewModel()
		for j := 0; j < nv; j++ {
			ub := math.Inf(1)
			if rng.Intn(2) == 0 {
				ub = 1 + rng.Float64()*4
			}
			// Non-negative costs keep minimization bounded, yielding many
			// optimal instances to certify.
			m.AddVar(rng.Float64()*3, ub)
		}
		nc := 1 + rng.Intn(5)
		for k := 0; k < nc; k++ {
			coefs := map[int]float64{}
			for j := 0; j < nv; j++ {
				if rng.Intn(2) == 0 {
					coefs[j] = rng.Float64()*4 - 2
				}
			}
			m.AddConstraint(coefs, Op(rng.Intn(3)), rng.Float64()*5-1)
		}
		sol, err := m.Solve()
		if err != nil || sol.Status != Optimal {
			continue
		}
		checked++
		if sol.DualityGap > 1e-6*(1+math.Abs(sol.Objective)) {
			t.Fatalf("trial %d: duality gap %v at objective %v", trial, sol.DualityGap, sol.Objective)
		}
		if len(sol.Duals) != m.NumConstraints() {
			t.Fatalf("trial %d: %d duals for %d constraints", trial, len(sol.Duals), m.NumConstraints())
		}
		// Complementary slackness: a constraint with strict slack has a
		// zero multiplier.
		for i := 0; i < m.NumConstraints(); i++ {
			cols, vals, op, rhs := m.Row(i)
			lhs := 0.0
			for k, j := range cols {
				lhs += vals[k] * sol.X[j]
			}
			slack := math.Abs(rhs - lhs)
			if op != EQ && slack > 1e-5 && math.Abs(sol.Duals[i]) > 1e-6 {
				t.Fatalf("trial %d: constraint %d slack %v but dual %v", trial, i, slack, sol.Duals[i])
			}
		}
	}
	if checked < 50 {
		t.Fatalf("only %d optimal instances checked", checked)
	}
}

// TestDualSigns: a canonical LP with known shadow prices.
func TestDualSigns(t *testing.T) {
	// min x subject to x ≥ 5: the constraint is binding with shadow
	// price 1 (raising the RHS by δ raises the optimum by δ).
	m := NewModel()
	x := m.AddVar(1, math.Inf(1))
	m.AddConstraint(map[int]float64{x: 1}, GE, 5)
	sol, err := m.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatal(err)
	}
	if math.Abs(sol.Duals[0]-1) > 1e-8 {
		t.Errorf("dual = %v, want 1", sol.Duals[0])
	}
	if sol.DualityGap > 1e-9 {
		t.Errorf("gap = %v", sol.DualityGap)
	}
	// Negated-row path: −x ≤ −5 is the same constraint written with a
	// negative RHS; the reported dual keeps the user's orientation
	// (raising the user RHS −5 by δ relaxes the constraint, lowering the
	// optimum: dual −1).
	m2 := NewModel()
	y := m2.AddVar(1, math.Inf(1))
	m2.AddConstraint(map[int]float64{y: -1}, LE, -5)
	sol2, err := m2.Solve()
	if err != nil || sol2.Status != Optimal {
		t.Fatal(err)
	}
	if math.Abs(sol2.Duals[0]+1) > 1e-8 {
		t.Errorf("negated dual = %v, want -1", sol2.Duals[0])
	}
}
