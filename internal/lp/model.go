// Package lp implements linear programming from scratch: a model builder
// and a dense two-phase primal simplex solver with Dantzig pricing and a
// Bland's-rule fallback for anti-cycling.
//
// The paper's Theorem 1 shows STABLE NETWORK ENFORCEMENT is in P via
// linear programming; the Go standard library has no LP solver, so this
// package is the substrate standing in for the paper's LP machinery.
// Problem sizes here are modest (hundreds of variables/rows), so a dense
// tableau is the right trade-off: simple, auditable and fast enough.
package lp

import (
	"fmt"
	"math"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // Σ coef·x ≤ rhs
	GE           // Σ coef·x ≥ rhs
	EQ           // Σ coef·x = rhs
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is a sparse linear constraint over model variables.
type Constraint struct {
	Coefs map[int]float64
	Op    Op
	RHS   float64
}

// Model is a linear program: minimize obj·x subject to constraints, with
// every variable bounded below by 0 and above by an optional finite upper
// bound. (Lower bounds other than zero are not needed anywhere in this
// library — subsidies live in [0, w_a].)
type Model struct {
	obj  []float64
	ub   []float64 // +Inf when unbounded above
	cons []Constraint
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{} }

// AddVar appends a variable with the given objective coefficient and upper
// bound (use math.Inf(1) for none) and returns its index.
func (m *Model) AddVar(objCoef, ub float64) int {
	if math.IsNaN(objCoef) || math.IsNaN(ub) || ub < 0 {
		panic(fmt.Sprintf("lp: invalid variable (obj=%v ub=%v)", objCoef, ub))
	}
	m.obj = append(m.obj, objCoef)
	m.ub = append(m.ub, ub)
	return len(m.obj) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of explicit constraints (upper bounds
// are not counted; they are expanded internally at solve time).
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddConstraint appends Σ coefs[i]·x_i  op  rhs. Variables absent from
// coefs have coefficient zero. Zero coefficients are dropped.
func (m *Model) AddConstraint(coefs map[int]float64, op Op, rhs float64) {
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic("lp: invalid RHS")
	}
	clean := make(map[int]float64, len(coefs))
	for j, c := range coefs {
		if j < 0 || j >= len(m.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", j))
		}
		if math.IsNaN(c) || math.IsInf(c, 0) {
			panic("lp: invalid coefficient")
		}
		if c != 0 {
			clean[j] = c
		}
	}
	m.cons = append(m.cons, Constraint{Coefs: clean, Op: op, RHS: rhs})
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // objective value (valid when Status == Optimal)
	Pivots    int       // simplex pivot count, for benchmarking

	// Duals holds the shadow price of each user constraint (in the
	// orientation it was written), valid when Status == Optimal. In the
	// SNE LPs these measure how binding each deviation constraint is:
	// the marginal subsidy saved per unit of slack added to the row.
	Duals []float64
	// DualityGap is |dual objective − primal objective| over the internal
	// standard form — a post-solve certificate that should sit at
	// round-off level for a correct optimal basis.
	DualityGap float64
}

// Feasible reports whether x satisfies all constraints and bounds of m
// within tol. It is the model's independent verification hook: tests and
// callers can confirm any claimed solution without trusting the solver.
func (m *Model) Feasible(x []float64, tol float64) bool {
	if len(x) != len(m.obj) {
		return false
	}
	for j, v := range x {
		if v < -tol || v > m.ub[j]+tol*(1+math.Abs(m.ub[j])) {
			return false
		}
	}
	for _, c := range m.cons {
		lhs := 0.0
		scale := 1.0
		for j, coef := range c.Coefs {
			lhs += coef * x[j]
			scale += math.Abs(coef * x[j])
		}
		switch c.Op {
		case LE:
			if lhs > c.RHS+tol*scale {
				return false
			}
		case GE:
			if lhs < c.RHS-tol*scale {
				return false
			}
		case EQ:
			if math.Abs(lhs-c.RHS) > tol*scale {
				return false
			}
		}
	}
	return true
}

// Value returns obj·x.
func (m *Model) Value(x []float64) float64 {
	v := 0.0
	for j, c := range m.obj {
		v += c * x[j]
	}
	return v
}
