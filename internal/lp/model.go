// Package lp implements linear programming from scratch, twice over:
//
//   - a sparse revised-simplex core (Solve / ResolveFrom) with a CSR
//     constraint store, an LU + eta-file basis factorization, native
//     variable bounds and first-class warm starts — Solve returns a
//     reusable Basis, and AddRow followed by ResolveFrom re-solves from
//     the dual-feasible incumbent, which is exactly the shape of the SNE
//     row-generation loop (Theorem 1);
//   - the original dense two-phase tableau, retained as SolveDense: the
//     differential-test oracle every sparse result is held to.
//
// The paper's Theorem 1 shows STABLE NETWORK ENFORCEMENT is in P via
// linear programming; the Go standard library has no LP solver, so this
// package is the substrate standing in for the paper's LP machinery.
package lp

import (
	"fmt"
	"math"
	"sort"
)

// Op is a constraint relation.
type Op int

// Constraint relations.
const (
	LE Op = iota // Σ coef·x ≤ rhs
	GE           // Σ coef·x ≥ rhs
	EQ           // Σ coef·x = rhs
)

func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Model is a linear program: minimize obj·x subject to constraints, with
// every variable bounded below by 0 and above by an optional finite upper
// bound. (Lower bounds other than zero are not needed anywhere in this
// library — subsidies live in [0, w_a].)
//
// Constraints are stored append-only in compressed sparse row form: one
// flat (cols, vals) arena shared by all rows, so emitting a row costs two
// slice appends and no per-constraint map.
type Model struct {
	obj []float64
	ub  []float64 // +Inf when unbounded above

	rowStart []int // len NumConstraints()+1; row i spans [rowStart[i], rowStart[i+1])
	cols     []int
	vals     []float64
	ops      []Op
	rhs      []float64
}

// NewModel returns an empty model.
func NewModel() *Model { return &Model{rowStart: []int{0}} }

// Grow preallocates capacity for nVars variables, nRows constraints and
// nnz nonzero coefficients, so batch emitters (the SNE row builders)
// append without reallocation. Purely an optimization hint.
func (m *Model) Grow(nVars, nRows, nnz int) {
	if cap(m.obj)-len(m.obj) < nVars {
		m.obj = append(make([]float64, 0, len(m.obj)+nVars), m.obj...)
		m.ub = append(make([]float64, 0, len(m.ub)+nVars), m.ub...)
	}
	if cap(m.ops)-len(m.ops) < nRows {
		m.ops = append(make([]Op, 0, len(m.ops)+nRows), m.ops...)
		m.rhs = append(make([]float64, 0, len(m.rhs)+nRows), m.rhs...)
		m.rowStart = append(make([]int, 0, len(m.rowStart)+nRows), m.rowStart...)
	}
	if cap(m.cols)-len(m.cols) < nnz {
		m.cols = append(make([]int, 0, len(m.cols)+nnz), m.cols...)
		m.vals = append(make([]float64, 0, len(m.vals)+nnz), m.vals...)
	}
}

// AddVar appends a variable with the given objective coefficient and upper
// bound (use math.Inf(1) for none) and returns its index. Finite bounds
// above 1e100 are normalized to +∞ at entry — they are pseudo-infinities
// numerically (a bound step of that size overflows downstream
// arithmetic), and normalizing here guarantees the sparse solver and the
// dense oracle see the identical model.
func (m *Model) AddVar(objCoef, ub float64) int {
	if math.IsNaN(objCoef) || math.IsNaN(ub) || ub < 0 {
		panic(fmt.Sprintf("lp: invalid variable (obj=%v ub=%v)", objCoef, ub))
	}
	if ub > hugeBound {
		ub = math.Inf(1)
	}
	m.obj = append(m.obj, objCoef)
	m.ub = append(m.ub, ub)
	return len(m.obj) - 1
}

// NumVars returns the number of variables.
func (m *Model) NumVars() int { return len(m.obj) }

// NumConstraints returns the number of explicit constraints (upper bounds
// are not counted; the solvers handle them natively or expand them).
func (m *Model) NumConstraints() int { return len(m.ops) }

// AddRow appends the sparse constraint Σ vals[k]·x_cols[k]  op  rhs.
// Zero coefficients are dropped. Duplicate column indices are legal and
// mean summed coefficients (every consumer accumulates row entries);
// Row exposes the raw entries, so anything reading rows back must
// accumulate too, never index-assign. This is the allocation-light
// emission path row generators should use: the caller's slices are
// copied into the model's CSR arena and may be reused immediately.
func (m *Model) AddRow(cols []int, vals []float64, op Op, rhs float64) {
	if len(cols) != len(vals) {
		panic(fmt.Sprintf("lp: AddRow with %d columns but %d values", len(cols), len(vals)))
	}
	if math.IsNaN(rhs) || math.IsInf(rhs, 0) {
		panic("lp: invalid RHS")
	}
	for k, j := range cols {
		if j < 0 || j >= len(m.obj) {
			panic(fmt.Sprintf("lp: constraint references unknown variable %d", j))
		}
		v := vals[k]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			panic("lp: invalid coefficient")
		}
		if v != 0 {
			m.cols = append(m.cols, j)
			m.vals = append(m.vals, v)
		}
	}
	m.rowStart = append(m.rowStart, len(m.cols))
	m.ops = append(m.ops, op)
	m.rhs = append(m.rhs, rhs)
}

// AddConstraint appends Σ coefs[i]·x_i  op  rhs. Variables absent from
// coefs have coefficient zero. Zero coefficients are dropped. It is the
// map-based convenience wrapper over AddRow (columns are emitted in
// sorted order, so models built either way are identical).
func (m *Model) AddConstraint(coefs map[int]float64, op Op, rhs float64) {
	cols := make([]int, 0, len(coefs))
	for j := range coefs {
		cols = append(cols, j)
	}
	sort.Ints(cols)
	vals := make([]float64, len(cols))
	for k, j := range cols {
		vals[k] = coefs[j]
	}
	m.AddRow(cols, vals, op, rhs)
}

// Row returns constraint i as (cols, vals, op, rhs). The slices alias the
// model's arena and must not be modified.
func (m *Model) Row(i int) ([]int, []float64, Op, float64) {
	lo, hi := m.rowStart[i], m.rowStart[i+1]
	return m.cols[lo:hi], m.vals[lo:hi], m.ops[i], m.rhs[i]
}

// Reset empties the model in place, keeping every arena's capacity. It is
// the workspace path for callers that rebuild a same-shaped model per
// instance — the water-fill heuristic and sweep scenario chains emit
// thousands of models of nearly identical size, and Reset makes each
// rebuild allocation-free once the arenas have grown.
func (m *Model) Reset() {
	m.obj = m.obj[:0]
	m.ub = m.ub[:0]
	if m.rowStart == nil {
		m.rowStart = []int{0}
	} else {
		m.rowStart = append(m.rowStart[:0], 0)
	}
	m.cols = m.cols[:0]
	m.vals = m.vals[:0]
	m.ops = m.ops[:0]
	m.rhs = m.rhs[:0]
}

// Clone returns a deep copy of the model. Useful for benchmarking warm
// starts (clone the base model, append rows, ResolveFrom) and for
// differential tests that solve the same model twice.
func (m *Model) Clone() *Model {
	return &Model{
		obj:      append([]float64(nil), m.obj...),
		ub:       append([]float64(nil), m.ub...),
		rowStart: append([]int(nil), m.rowStart...),
		cols:     append([]int(nil), m.cols...),
		vals:     append([]float64(nil), m.vals...),
		ops:      append([]Op(nil), m.ops...),
		rhs:      append([]float64(nil), m.rhs...),
	}
}

// StructureFingerprint hashes the model's *shape* — variable count, which
// upper bounds are finite, row count and row operators — into a 64-bit
// FNV-1a digest. Coefficient and RHS values are deliberately excluded:
// two instances of one sweep family (same graph skeleton, perturbed
// weights) share a fingerprint, which is exactly the compatibility class
// across which a Basis moves losslessly (cross-instance homotopy). Models
// with equal fingerprints accept each other's bases without projection;
// ResolveFrom additionally tolerates differing row blocks by projecting.
func (m *Model) StructureFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		h ^= x
		h *= prime64
	}
	mix(uint64(len(m.obj)))
	for _, u := range m.ub {
		if math.IsInf(u, 1) {
			mix(1)
		} else {
			mix(2)
		}
	}
	mix(uint64(len(m.ops)))
	for _, op := range m.ops {
		mix(uint64(op) + 3)
	}
	return h
}

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of solving a model.
type Solution struct {
	Status    Status
	X         []float64 // variable values (valid when Status == Optimal)
	Objective float64   // objective value (valid when Status == Optimal)
	Pivots    int       // simplex pivot count, for benchmarking

	// Basis is the optimal basis of a sparse Solve/ResolveFrom (nil from
	// SolveDense). Feed it back to ResolveFrom after AddRow to re-solve
	// from the dual-feasible incumbent instead of from scratch.
	Basis *Basis

	// Duals holds the shadow price of each user constraint (in the
	// orientation it was written), valid when Status == Optimal. In the
	// SNE LPs these measure how binding each deviation constraint is:
	// the marginal subsidy saved per unit of slack added to the row.
	Duals []float64
	// DualityGap is |dual objective − primal objective| over the internal
	// standard form — a post-solve certificate that should sit at
	// round-off level for a correct optimal basis.
	DualityGap float64
}

// Feasible reports whether x satisfies all constraints and bounds of m
// within tol. It is the model's independent verification hook: tests and
// callers can confirm any claimed solution without trusting the solver.
func (m *Model) Feasible(x []float64, tol float64) bool {
	if len(x) != len(m.obj) {
		return false
	}
	for j, v := range x {
		if v < -tol || v > m.ub[j]+tol*(1+math.Abs(m.ub[j])) {
			return false
		}
	}
	for i := range m.ops {
		lhs := 0.0
		scale := 1.0
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			t := m.vals[k] * x[m.cols[k]]
			lhs += t
			scale += math.Abs(t)
		}
		switch m.ops[i] {
		case LE:
			if lhs > m.rhs[i]+tol*scale {
				return false
			}
		case GE:
			if lhs < m.rhs[i]-tol*scale {
				return false
			}
		case EQ:
			if math.Abs(lhs-m.rhs[i]) > tol*scale {
				return false
			}
		}
	}
	return true
}

// Value returns obj·x.
func (m *Model) Value(x []float64) float64 {
	v := 0.0
	for j, c := range m.obj {
		v += c * x[j]
	}
	return v
}
