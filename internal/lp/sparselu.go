package lp

import "math"

// This file is the sparse LU kernel behind the revised simplex: a
// right-looking Gaussian elimination with Markowitz pivoting under a
// relative stability threshold, producing sparse triangular factors whose
// FTRAN/BTRAN cost is proportional to the factor nonzeros, not m². The
// dense LU it replaces paid O(m²) storage and O(m²) per solve even when
// the basis was almost entirely logical — which it is for the SNE LPs,
// where a few structural columns ride on an identity.
//
// Pivot selection at each step minimizes the Markowitz count
// (r_i − 1)·(c_j − 1) — the fill bound of eliminating entry (i, j) — over
// the candidate columns with the fewest active nonzeros, restricted to
// entries within markowitzTau of their column's magnitude (threshold
// partial pivoting, Suhl-style). Factors are stored by elimination step
// and remapped to step indices after elimination, so the triangular
// solves run as flat array sweeps with no permutation lookups in the
// inner loops.

const (
	// luCandidates caps how many lowest-count columns each pivot search
	// inspects before settling; the full scan only runs when none of them
	// offers a numerically admissible entry.
	luCandidates = 4

	// markowitzTau is the threshold-pivoting stability factor: an entry
	// qualifies as a pivot only if it is at least this fraction of the
	// largest entry in its column.
	markowitzTau = 0.1

	// luAbsTol is the magnitude below which a column counts as
	// numerically empty; a basis with no admissible pivot left is
	// reported singular (matching the dense kernel's 1e-12 floor).
	luAbsTol = 1e-12
)

// luEnt is one entry of an active row during elimination.
type luEnt struct {
	col int32
	val float64
}

// luFactor holds the sparse LU factors of one basis plus the elimination
// workspace, all reusable across refactorizations: steady-state
// refactorization allocates only when the basis outgrows every previous
// one.
type luFactor struct {
	m int

	// Factors by elimination step k. L is unit lower triangular, stored
	// as the multiplier entries of each step; U is upper triangular,
	// stored as each pivot row without its diagonal. After elimination,
	// lRow/uCol are remapped from original row/slot indices to step
	// indices, so ftran/btran index the work vector directly.
	lStart []int32
	lRow   []int32
	lVal   []float64
	uStart []int32
	uCol   []int32
	uVal   []float64
	diag   []float64
	pivRow []int32 // step -> original row
	pivCol []int32 // step -> original basis slot
	rowPos []int32 // original row -> step (-1 while active)
	colPos []int32 // original slot -> step (-1 while active)

	// Elimination workspace.
	rows    [][]luEnt // active matrix, row-wise
	colRows [][]int32 // rows that may hold each column (lazily compacted)
	colLen  []int32   // exact active nonzero count per column
	wval    []float64 // scatter values
	wmark   []int32   // scatter stamps
	wlist   []int32   // scattered column list
	stamp   int32
	work    []float64 // permuted triangular-solve scratch

	// Singleton stacks: lazily verified candidates for the O(nnz)
	// pre-elimination passes. Simplex bases are dominated by logical
	// (identity) columns and near-triangular blocks, so most pivots
	// never reach the Markowitz search at all.
	csing []int32
	rsing []int32

	// Forrest–Tomlin update state (ftupdate.go). When updatable, U lives
	// in the dynamic row-wise form urows/ucolRows under the position
	// permutation uorder/upos instead of the flat arrays, update(slot)
	// rewrites the factors in place after a basis change, and ftran
	// stashes its post-L, post-eta intermediate into spike — the update's
	// input — on every call.
	updatable bool
	urows     [][]luEnt // U row per step, off-diagonal, col = step index
	ucolRows  [][]int32 // rows that may hold each U column (lazily pruned)
	uorder    []int32   // position -> step: current triangular order
	upos      []int32   // step -> position
	spike     []float64 // post-L/post-eta FTRAN intermediate, step coords
	nupd      int       // updates since initUpdatable
	retaR     []int32   // row eta target step per update
	retaStart []int32   // row eta group offsets (len nupd+1)
	retaIdx   []int32   // row eta source steps
	retaVal   []float64 // row eta multipliers
}

// begin resizes the workspace for an m×m basis and clears per-column and
// per-row state. Columns are then streamed in with load/endCol.
func (f *luFactor) begin(m int) {
	f.m = m
	if cap(f.rows) < m {
		f.rows = append(f.rows[:cap(f.rows)], make([][]luEnt, m-cap(f.rows))...)
		f.colRows = append(f.colRows[:cap(f.colRows)], make([][]int32, m-cap(f.colRows))...)
	}
	f.rows = f.rows[:m]
	f.colRows = f.colRows[:m]
	f.colLen = grown(f.colLen, m)
	f.wval = grown(f.wval, m)
	f.wmark = grown(f.wmark, m)
	f.work = grown(f.work, m)
	f.rowPos = grown(f.rowPos, m)
	f.colPos = grown(f.colPos, m)
	f.pivRow = grown(f.pivRow, m)
	f.pivCol = grown(f.pivCol, m)
	f.diag = grown(f.diag, m)
	for i := 0; i < m; i++ {
		f.rows[i] = f.rows[i][:0]
		f.colRows[i] = f.colRows[i][:0]
		f.colLen[i] = 0
		f.wmark[i] = 0
		f.rowPos[i] = -1
		f.colPos[i] = -1
	}
	f.stamp = 1
	f.lStart = append(f.lStart[:0], 0)
	f.lRow = f.lRow[:0]
	f.lVal = f.lVal[:0]
	f.uStart = append(f.uStart[:0], 0)
	f.uCol = f.uCol[:0]
	f.uVal = f.uVal[:0]
}

// load streams one nonzero of basis column c (duplicate rows within a
// column accumulate, matching the CSR arena contract). endCol must be
// called after each column's entries.
func (f *luFactor) load(r, c int32, v float64) {
	if f.wmark[r] == f.stamp {
		row := f.rows[r]
		row[len(row)-1].val += v
		return
	}
	f.wmark[r] = f.stamp
	f.rows[r] = append(f.rows[r], luEnt{col: c, val: v})
	f.colRows[c] = append(f.colRows[c], r)
	f.colLen[c]++
}

// endCol closes the current column's duplicate-accumulation scope.
func (f *luFactor) endCol() { f.stamp++ }

// rowVal returns row r's coefficient in column c (0 when absent).
func (f *luFactor) rowVal(r, c int32) float64 {
	for _, e := range f.rows[r] {
		if e.col == c {
			return e.val
		}
	}
	return 0
}

// scanColumn compacts colRows[c] to the active rows still holding column
// c and returns the largest entry magnitude.
func (f *luFactor) scanColumn(c int32) float64 {
	list := f.colRows[c][:0]
	colmax := 0.0
	for _, r := range f.colRows[c] {
		if f.rowPos[r] >= 0 {
			continue
		}
		v := f.rowVal(r, c)
		if v == 0 {
			continue
		}
		list = append(list, r)
		if a := math.Abs(v); a > colmax {
			colmax = a
		}
	}
	f.colRows[c] = list
	return colmax
}

// bestInColumn returns the admissible entry of column c minimizing the
// Markowitz count, or row -1 when the column has no entry within
// markowitzTau of colmax (or is numerically empty).
func (f *luFactor) bestInColumn(c int32) (int32, float64, int64) {
	colmax := f.scanColumn(c)
	if colmax < luAbsTol {
		return -1, 0, 0
	}
	// colLen may exceed len(colRows[c]) when a loaded duplicate summed to
	// exactly zero (counted, but skipped by the scan); that only inflates
	// the Markowitz cost estimate, never correctness.
	cl := int64(f.colLen[c])
	bestRow, bestVal := int32(-1), 0.0
	bestCost := int64(math.MaxInt64)
	for _, r := range f.colRows[c] {
		v := f.rowVal(r, c)
		a := math.Abs(v)
		if a < markowitzTau*colmax {
			continue
		}
		cost := int64(len(f.rows[r])-1) * (cl - 1)
		if cost < bestCost || (cost == bestCost && a > math.Abs(bestVal)) {
			bestRow, bestVal, bestCost = r, v, cost
		}
	}
	return bestRow, bestVal, bestCost
}

// findPivot picks the next pivot by Markowitz count over the
// lowest-count candidate columns, falling back to a full column scan
// before declaring the basis singular.
func (f *luFactor) findPivot() (int32, int32, float64) {
	var cand [luCandidates]int32
	nc := 0
	for j := int32(0); j < int32(f.m); j++ {
		if f.colPos[j] >= 0 {
			continue
		}
		if f.colLen[j] == 0 {
			return -1, -1, 0 // structurally singular
		}
		pos := nc
		if nc < luCandidates {
			nc++
		} else if f.colLen[j] >= f.colLen[cand[nc-1]] {
			continue
		} else {
			pos = nc - 1
		}
		for pos > 0 && f.colLen[cand[pos-1]] > f.colLen[j] {
			cand[pos] = cand[pos-1]
			pos--
		}
		cand[pos] = j
	}
	bestR, bestC, bestV := int32(-1), int32(-1), 0.0
	bestCost := int64(math.MaxInt64)
	for k := 0; k < nc; k++ {
		c := cand[k]
		r, v, cost := f.bestInColumn(c)
		if r < 0 {
			continue
		}
		if cost < bestCost || (cost == bestCost && math.Abs(v) > math.Abs(bestV)) {
			bestR, bestC, bestV, bestCost = r, c, v, cost
		}
		if bestCost == 0 {
			break
		}
	}
	if bestR >= 0 {
		return bestR, bestC, bestV
	}
	// Every candidate was numerically empty: full sweep before giving up.
	for j := int32(0); j < int32(f.m); j++ {
		if f.colPos[j] >= 0 {
			continue
		}
		r, v, cost := f.bestInColumn(j)
		if r < 0 {
			continue
		}
		if cost < bestCost || (cost == bestCost && math.Abs(v) > math.Abs(bestV)) {
			bestR, bestC, bestV, bestCost = r, j, v, cost
		}
	}
	return bestR, bestC, bestV
}

// dropColCount decrements a column's active count, queueing it as a
// singleton candidate when it reaches one.
func (f *luFactor) dropColCount(c int32) {
	f.colLen[c]--
	if f.colLen[c] == 1 {
		f.csing = append(f.csing, c)
	}
}

// pivotColumnSingleton eliminates a column whose single active entry sits
// in row p: no multipliers, no fill, O(len(row p)) — and unconditionally
// stable, since L gains nothing. Every logical basis column starts out in
// this class.
func (f *luFactor) pivotColumnSingleton(k int, p, q int32, apq float64) {
	f.pivRow[k], f.pivCol[k] = p, q
	f.rowPos[p], f.colPos[q] = int32(k), int32(k)
	f.diag[k] = apq
	for _, e := range f.rows[p] {
		if e.col != q {
			f.uCol = append(f.uCol, e.col)
			f.uVal = append(f.uVal, e.val)
		}
		f.dropColCount(e.col)
	}
	f.uStart = append(f.uStart, int32(len(f.uCol)))
	f.lStart = append(f.lStart, int32(len(f.lRow)))
	f.colRows[q] = f.colRows[q][:0]
	f.colLen[q] = 0
}

// pivotRowSingleton eliminates a row whose single active entry is column
// q: the other rows holding q just drop that entry into L — no fill.
// Only taken when the pivot passes the relative stability threshold.
func (f *luFactor) pivotRowSingleton(k int, p, q int32, apq float64) {
	f.pivRow[k], f.pivCol[k] = p, q
	f.rowPos[p], f.colPos[q] = int32(k), int32(k)
	f.diag[k] = apq
	f.uStart = append(f.uStart, int32(len(f.uCol)))
	for _, r := range f.colRows[q] {
		if f.rowPos[r] >= 0 {
			continue
		}
		row := f.rows[r]
		for e := range row {
			if row[e].col != q {
				continue
			}
			if arq := row[e].val; arq != 0 {
				f.lRow = append(f.lRow, r)
				f.lVal = append(f.lVal, arq/apq)
			}
			row[e] = row[len(row)-1]
			f.rows[r] = row[:len(row)-1]
			if len(row)-1 == 1 {
				f.rsing = append(f.rsing, r)
			}
			break
		}
	}
	f.lStart = append(f.lStart, int32(len(f.lRow)))
	f.colRows[q] = f.colRows[q][:0]
	f.colLen[q] = 0
}

// popSingleton pops a still-valid singleton pivot off the stacks, or
// returns false when only the general Markowitz search remains. Lazy
// verification: stack entries may have been invalidated (or upgraded) by
// later eliminations.
func (f *luFactor) popSingleton() (p, q int32, apq float64, isCol, ok bool) {
	for len(f.csing) > 0 {
		c := f.csing[len(f.csing)-1]
		f.csing = f.csing[:len(f.csing)-1]
		if f.colPos[c] >= 0 || f.colLen[c] != 1 {
			continue
		}
		if colmax := f.scanColumn(c); colmax >= luAbsTol && len(f.colRows[c]) == 1 {
			r := f.colRows[c][0]
			return r, c, f.rowVal(r, c), true, true
		}
	}
	for len(f.rsing) > 0 {
		r := f.rsing[len(f.rsing)-1]
		f.rsing = f.rsing[:len(f.rsing)-1]
		if f.rowPos[r] >= 0 || len(f.rows[r]) != 1 {
			continue
		}
		c := f.rows[r][0].col
		arq := f.rows[r][0].val
		// Stability: the row singleton forms multipliers a_ic/a_rq, so it
		// must pass the same relative threshold as a Markowitz pivot.
		if colmax := f.scanColumn(c); math.Abs(arq) >= markowitzTau*colmax && math.Abs(arq) >= luAbsTol {
			return r, c, arq, false, true
		}
	}
	return 0, 0, 0, false, false
}

// eliminate runs the elimination over the loaded matrix — singleton
// pivots first (O(nnz), no fill), general Markowitz pivots for whatever
// nucleus remains — and leaves the factors in step-indexed form.
func (f *luFactor) eliminate() error {
	f.csing = f.csing[:0]
	f.rsing = f.rsing[:0]
	for c := int32(0); c < int32(f.m); c++ {
		if f.colLen[c] == 1 {
			f.csing = append(f.csing, c)
		}
		if len(f.rows[c]) == 1 {
			f.rsing = append(f.rsing, c)
		}
	}
	for k := 0; k < f.m; k++ {
		if p, q, apq, isCol, ok := f.popSingleton(); ok {
			if isCol {
				f.pivotColumnSingleton(k, p, q, apq)
			} else {
				f.pivotRowSingleton(k, p, q, apq)
			}
			continue
		}
		p, q, apq := f.findPivot()
		if p < 0 {
			return errSingularBasis
		}
		f.pivRow[k], f.pivCol[k] = p, q
		f.rowPos[p], f.colPos[q] = int32(k), int32(k)
		f.diag[k] = apq
		// U row k: the pivot row minus its diagonal. Row p leaves the
		// active set, so every column it touches loses one active entry.
		for _, e := range f.rows[p] {
			if e.col != q {
				f.uCol = append(f.uCol, e.col)
				f.uVal = append(f.uVal, e.val)
			}
			f.dropColCount(e.col)
		}
		f.uStart = append(f.uStart, int32(len(f.uCol)))
		// Eliminate column q from the remaining active rows.
		for _, r := range f.colRows[q] {
			if f.rowPos[r] >= 0 || r == p {
				continue
			}
			arq := f.rowVal(r, q)
			if arq == 0 {
				continue
			}
			mult := arq / apq
			f.lRow = append(f.lRow, r)
			f.lVal = append(f.lVal, mult)
			f.updateRow(r, p, q, mult)
		}
		f.lStart = append(f.lStart, int32(len(f.lRow)))
		f.colRows[q] = f.colRows[q][:0]
		f.colLen[q] = 0
	}
	// Remap factor indices to elimination steps so the triangular solves
	// are direct array sweeps.
	for e := range f.lRow {
		f.lRow[e] = f.rowPos[f.lRow[e]]
	}
	for e := range f.uCol {
		f.uCol[e] = f.colPos[f.uCol[e]]
	}
	return nil
}

// updateRow applies row_r ← row_r − mult·row_p, dropping column q and any
// exactly cancelled entry, and books new fill into the column lists.
func (f *luFactor) updateRow(r, p, q int32, mult float64) {
	f.stamp++
	f.wlist = f.wlist[:0]
	for _, e := range f.rows[r] {
		if e.col == q {
			f.colLen[q]-- // eliminated by construction
			continue
		}
		f.wval[e.col] = e.val
		f.wmark[e.col] = f.stamp
		f.wlist = append(f.wlist, e.col)
	}
	for _, e := range f.rows[p] {
		c := e.col
		if c == q {
			continue
		}
		if f.wmark[c] == f.stamp {
			f.wval[c] -= mult * e.val
			continue
		}
		f.wmark[c] = f.stamp
		f.wval[c] = -mult * e.val
		f.wlist = append(f.wlist, c)
		f.colLen[c]++
		f.colRows[c] = append(f.colRows[c], r)
	}
	row := f.rows[r][:0]
	for _, c := range f.wlist {
		if v := f.wval[c]; v != 0 {
			row = append(row, luEnt{col: c, val: v})
		} else {
			f.dropColCount(c) // exact cancellation
		}
	}
	f.rows[r] = row
	if len(row) == 1 {
		f.rsing = append(f.rsing, r)
	}
}

// ftran solves B·x = v in place. Cost is proportional to the factor
// nonzeros plus O(m) for the permutation sweeps.
func (f *luFactor) ftran(v []float64) {
	if f.updatable {
		f.ftranFT(v)
		return
	}
	m := f.m
	w := f.work
	for k := 0; k < m; k++ {
		w[k] = v[f.pivRow[k]]
	}
	for k := 0; k < m; k++ {
		t := w[k]
		if t == 0 {
			continue
		}
		for e := f.lStart[k]; e < f.lStart[k+1]; e++ {
			w[f.lRow[e]] -= f.lVal[e] * t
		}
	}
	for k := m - 1; k >= 0; k-- {
		t := w[k]
		for e := f.uStart[k]; e < f.uStart[k+1]; e++ {
			t -= f.uVal[e] * w[f.uCol[e]]
		}
		w[k] = t / f.diag[k]
	}
	for k := 0; k < m; k++ {
		v[f.pivCol[k]] = w[k]
	}
}

// btran solves Bᵀ·y = v in place.
func (f *luFactor) btran(v []float64) {
	if f.updatable {
		f.btranFT(v)
		return
	}
	m := f.m
	w := f.work
	for k := 0; k < m; k++ {
		w[k] = v[f.pivCol[k]]
	}
	for k := 0; k < m; k++ {
		t := w[k] / f.diag[k]
		w[k] = t
		if t == 0 {
			continue
		}
		for e := f.uStart[k]; e < f.uStart[k+1]; e++ {
			w[f.uCol[e]] -= f.uVal[e] * t
		}
	}
	for k := m - 1; k >= 0; k-- {
		t := w[k]
		for e := f.lStart[k]; e < f.lStart[k+1]; e++ {
			t -= f.lVal[e] * w[f.lRow[e]]
		}
		w[k] = t
	}
	for k := 0; k < m; k++ {
		v[f.pivRow[k]] = w[k]
	}
}
