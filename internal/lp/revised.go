package lp

import (
	"errors"
	"math"
	"sync"
)

// This file is the sparse revised simplex: the production solver behind
// Solve and ResolveFrom.
//
// The model is brought to the equality form  A·x + s = b  with one
// logical variable s_i per row (LE: s ∈ [0,∞), GE: s ∈ (−∞,0],
// EQ: s ∈ [0,0]) and the structural bounds 0 ≤ x ≤ u handled natively by
// the bounded-variable pivot rules — no bound rows, no artificials. The
// basis inverse is never formed: a sparse Markowitz LU of the m×m basis
// (m = user rows only; see sparselu.go) answers FTRAN/BTRAN at a cost
// proportional to the factor nonzeros, with an eta file of product-form
// updates between refactorizations. Pricing is devex with partial
// pricing in both loops and Bland as the anti-cycling fallback
// (pricing.go); reduced costs are maintained by rank-one updates and
// recomputed from scratch at every refactorization.
//
// Solve runs dual simplex from the all-logical basis under the shifted
// cost ĉ = max(c,0) — always dual feasible — then primal simplex under
// the true cost; when c ≥ 0 (every SNE model) the first phase is already
// the whole solve. ResolveFrom restores a previous optimal Basis — from
// this model (row generation) or from a structurally compatible *other*
// model (cross-instance basis homotopy) — projects it onto the current
// row set, repairs what a bound flip can repair, and re-solves with
// whichever simplex the projected basis is feasible for. That is the
// Theorem-1 row-generation loop, and the sweep-family warm-start chain,
// in basis form.

// hugeBound is the threshold beyond which an upper bound is treated as
// +∞ (callers occasionally use 1e308 as a stand-in for "unbounded";
// taken literally, a bound flip of that size would overflow the basic
// values). Documented on AddVar — the dense oracle takes such bounds
// literally, so genuinely finite bounds belong far below this.
const hugeBound = 1e100

// refactorEvery bounds the eta file: after this many product-form
// updates the basis is refactorized from scratch (which also refreshes
// the incrementally maintained reduced costs).
const refactorEvery = 64

// ftRefactorEvery bounds the Forrest–Tomlin update chain. FT updates
// keep U current instead of replaying ever-longer tableau-column etas,
// so the chain can run three times longer than the product-form file
// before a rebuild pays for itself; stability is guarded per update
// (ftStabTol) rather than by the cadence.
const ftRefactorEvery = 192

// ftMinRows gates the Forrest–Tomlin update path (and with it the
// longer refactorization cadence) by basis size. Small bases refactorize
// so cheaply that the product-form eta file is already optimal — and the
// golden experiment tables pin pivot counts on the legacy path, whose
// post-update FTRAN rounding differs in the last bit. The largest
// golden-pinned LP has 759 rows; every gated feature must switch on
// strictly above that. Package-level so tests can force either path.
var ftMinRows = 800

// dseMinRows gates exact dual steepest-edge pricing the same way: it
// changes pivot selection, so golden-pinned LPs stay on devex. Above the
// gate the dual loop pays one extra (dense-input) FTRAN per pivot for
// reference-free exact weights. Measured on the LPSparseSolve family,
// the pivots saved (−42% at 2000 rows) outrun that surcharge somewhere
// between 1000 rows (−29% pivots, +6% wall) and 2000 rows (−32% wall);
// below the crossover devex remains the cheap fallback. Package-level
// so tests can force either mode.
var dseMinRows = 1200

// Nonbasic/basic variable states.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	inBasis             // basic
)

// Basis is a reusable snapshot of a revised-simplex basis: which column
// (structural j < NumVars, logical NumVars+i for row i) is basic in each
// row, and at which bound every nonbasic column rests. Solve attaches the
// optimal basis to its Solution; ResolveFrom(basis) warm starts from it —
// after AddRow on the same model (row generation), or on a different
// model with the same variable block (cross-instance homotopy: nearby
// sweep instances hand their optimal basis down the chain). The
// Fingerprint identifies the structure the snapshot was taken on.
type Basis struct {
	nVars  int
	nRows  int
	fp     uint64
	status []int8
	basic  []int
}

// Fingerprint returns the structure fingerprint of the model this basis
// was captured on (see Model.StructureFingerprint). Two models with equal
// fingerprints have identical variable blocks and row shapes, so a basis
// moves between them without projection loss; ResolveFrom additionally
// accepts any basis whose variable block matches (CompatibleWith) and
// projects away the row differences.
func (b *Basis) Fingerprint() uint64 { return b.fp }

// CompatibleWith reports whether ResolveFrom can warm start m from this
// basis: the variable block must match — rows may differ in both number
// and shape (they are projected).
func (b *Basis) CompatibleWith(m *Model) bool {
	return b != nil && b.nVars == m.NumVars()
}

// eta is one product-form update: after a pivot on row r with entering
// tableau column w, B_new = B_old · E where E is the identity with column
// r replaced by w. Stored sparsely (rows with w_i ≠ 0, i ≠ r).
type eta struct {
	r   int
	pr  float64 // w_r, the pivot element
	idx []int32
	val []float64
}

// sparse is the per-solve state of the revised simplex.
type sparse struct {
	model *Model
	n     int // structural variables
	mr    int // rows
	nc    int // n + mr columns

	lo, up []float64 // per-column bounds
	cost   []float64 // current phase's cost per column
	real   []float64 // true cost per column

	// CSC of the structural columns (logical columns are implicit e_i).
	colStart []int
	colRow   []int
	colVal   []float64

	status []int8
	basic  []int     // basic[i] = column basic in row i
	xB     []float64 // value of the basic variable of each row

	// Sparse LU factorization of the basis plus the eta file of updates
	// since the last refactorization. Above ftMinRows the factorization
	// runs in Forrest–Tomlin mode instead: the eta file stays empty and
	// the factors absorb each pivot in place. needRefactor is raised when
	// an FT update rejects itself on stability grounds — the factors are
	// then unusable until the next refactorization.
	f            luFactor
	etas         []eta
	needRefactor bool

	y     []float64 // duals of the current cost vector
	d     []float64 // reduced costs per column
	alpha []float64 // pivot-row coefficients per column
	wcol  []float64 // FTRAN scratch
	rrow  []float64 // BTRAN scratch

	pw     []float64 // primal devex weights per column
	dw     []float64 // dual devex (or steepest-edge) weights per row
	pstart int       // partial-pricing cursor (columns)
	dstart int       // partial-pricing cursor (rows)

	// dse switches the dual loop from devex to exact steepest-edge
	// weights (dseMinRows gate, decided per solve); tau holds the extra
	// B⁻¹ρ_r FTRAN the Forrest–Goldfarb recurrence needs.
	dse bool
	tau []float64

	ltaken  []bool // initFromBasis scratch
	cscNext []int  // buildCSC scratch

	// warmSeated marks a basis projected from a snapshot (initFromBasis):
	// run() then earns a cost-shifted dual phase-1 rung before giving up
	// on the warm start.
	warmSeated bool

	pivots int
}

var errSingularBasis = errors.New("lp: singular basis")

// warmRetryable reports whether a warm-started run died of a pathology a
// cold restart cures (pivot-budget exhaustion, singular projected basis).
// Matched with errors.Is, not ==, so a sentinel that picks up wrapping
// context on its way out keeps triggering the retry.
func warmRetryable(err error) bool {
	return errors.Is(err, ErrIterationLimit) || errors.Is(err, errSingularBasis)
}

// sparsePool recycles solver states across solves: the slices (including
// the LU workspace) keep their capacity, so the row-generation loop —
// thousands of ResolveFrom calls on similarly sized models — runs the
// whole numerical core without steady-state allocation.
var sparsePool = sync.Pool{New: func() any { return new(sparse) }}

func newSparse(m *Model) *sparse {
	s := sparsePool.Get().(*sparse)
	s.init(m)
	return s
}

// release returns the state to the pool. Solutions never alias solver
// storage (solution() copies everything it exports), so releasing after
// run is safe.
func (s *sparse) release() {
	s.model = nil
	sparsePool.Put(s)
}

// grown returns s resized to length n, reallocating only when the
// capacity is insufficient (contents are unspecified — callers
// overwrite).
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (s *sparse) init(m *Model) {
	n := len(m.obj)
	mr := len(m.ops)
	s.model, s.n, s.mr, s.nc = m, n, mr, n+mr
	s.lo = grown(s.lo, n+mr)
	s.up = grown(s.up, n+mr)
	s.cost = grown(s.cost, n+mr)
	s.real = grown(s.real, n+mr)
	s.status = grown(s.status, n+mr)
	s.basic = grown(s.basic, mr)
	s.xB = grown(s.xB, mr)
	s.y = grown(s.y, mr)
	s.d = grown(s.d, n+mr)
	s.alpha = grown(s.alpha, n+mr)
	s.wcol = grown(s.wcol, mr)
	s.rrow = grown(s.rrow, mr)
	s.pw = grown(s.pw, n+mr)
	s.dw = grown(s.dw, mr)
	s.dse = mr >= dseMinRows
	s.tau = grown(s.tau, mr)
	s.etas = s.etas[:0]
	s.needRefactor = false
	s.pstart, s.dstart, s.pivots = 0, 0, 0
	s.warmSeated = false
	for j := 0; j < n; j++ {
		s.lo[j] = 0
		s.up[j] = m.ub[j]
		if s.up[j] > hugeBound {
			s.up[j] = math.Inf(1)
		}
		s.real[j] = m.obj[j]
	}
	for i := 0; i < mr; i++ {
		c := n + i
		s.real[c] = 0 // logical columns are costless (must not leak a pooled value)
		switch m.ops[i] {
		case LE:
			s.lo[c], s.up[c] = 0, math.Inf(1)
		case GE:
			s.lo[c], s.up[c] = math.Inf(-1), 0
		case EQ:
			s.lo[c], s.up[c] = 0, 0
		}
	}
	s.buildCSC()
}

// buildCSC transposes the model's CSR rows into per-column form, which
// FTRAN (gathering one column) and pricing need.
func (s *sparse) buildCSC() {
	m := s.model
	nnz := len(m.cols)
	s.colStart = grown(s.colStart, s.n+1)
	for j := range s.colStart {
		s.colStart[j] = 0
	}
	for _, j := range m.cols {
		s.colStart[j+1]++
	}
	for j := 0; j < s.n; j++ {
		s.colStart[j+1] += s.colStart[j]
	}
	s.colRow = grown(s.colRow, nnz)
	s.colVal = grown(s.colVal, nnz)
	next := grown(s.cscNext, s.n)
	s.cscNext = next
	copy(next, s.colStart[:s.n])
	for i := 0; i < s.mr; i++ {
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			j := m.cols[k]
			p := next[j]
			s.colRow[p] = i
			s.colVal[p] = m.vals[k]
			next[j]++
		}
	}
}

// initFresh seats the all-logical basis: every row's logical is basic,
// structurals rest at the bound their cost prefers (a variable that wants
// to grow and can — negative cost, finite upper bound — starts there).
func (s *sparse) initFresh() {
	for j := 0; j < s.n; j++ {
		if s.real[j] < 0 && !math.IsInf(s.up[j], 1) {
			s.status[j] = nbUpper
		} else {
			s.status[j] = nbLower
		}
	}
	for i := 0; i < s.mr; i++ {
		s.basic[i] = s.n + i
		s.status[s.n+i] = inBasis
	}
}

// logicalRest is the finite resting bound of a row's logical variable.
func logicalRest(op Op) int8 {
	if op == GE {
		return nbUpper // (−∞, 0]: only the upper bound is finite
	}
	return nbLower // LE: [0, ∞); EQ: [0, 0]
}

// initFromBasis projects a snapshot onto the current model. The variable
// blocks match (checked by CompatibleWith before this is called); rows
// need not:
//
//   - rows beyond the snapshot (row generation added them) seat their own
//     logical, which preserves dual feasibility — the extended basis is
//     block triangular with an identity block;
//   - snapshot rows beyond the model (homotopy from a larger instance)
//     are dropped, and any row left without a basic column — its basic
//     column belonged only to a dropped row — takes a free logical;
//   - a nonbasic column resting at a bound the current model makes
//     infinite is moved to its finite bound.
//
// The projection is total: any structural mismatch degrades into a basis
// the simplex can still start from, and a numerically singular projection
// is caught by factorize (ResolveFrom then falls back to a cold solve).
func (s *sparse) initFromBasis(bs *Basis) {
	n := s.n
	keep := bs.nRows
	if keep > s.mr {
		keep = s.mr
	}
	s.ltaken = grown(s.ltaken, s.mr)
	logicalTaken := s.ltaken
	for i := range logicalTaken {
		logicalTaken[i] = false
	}
	for i := range s.basic {
		s.basic[i] = -1
	}
	for i := 0; i < keep; i++ {
		b := bs.basic[i]
		if b >= bs.nVars {
			t := b - bs.nVars
			if t >= s.mr {
				continue // logical of a dropped row: reseat below
			}
			b = n + t
			logicalTaken[t] = true
		}
		s.basic[i] = b
	}
	for i := keep; i < s.mr; i++ {
		// Fresh rows: own logical. Never taken by a kept row — snapshot
		// logicals are bounded by the snapshot's (smaller) row count.
		s.basic[i] = n + i
		logicalTaken[i] = true
	}
	free := 0
	for i := 0; i < s.mr; i++ {
		if s.basic[i] != -1 {
			continue
		}
		if !logicalTaken[i] {
			s.basic[i] = n + i
			logicalTaken[i] = true
			continue
		}
		for logicalTaken[free] {
			free++ // always terminates: one column per row, mr logicals
		}
		s.basic[i] = n + free
		logicalTaken[free] = true
	}
	// Statuses: structural nonbasic columns keep their snapshot bound
	// where finite; logicals rest at their op's finite bound; everything
	// seated above is basic.
	for j := 0; j < n; j++ {
		st := bs.status[j]
		if st == inBasis || (st == nbUpper && math.IsInf(s.up[j], 1)) {
			st = nbLower
		}
		s.status[j] = st
	}
	for i := 0; i < s.mr; i++ {
		s.status[n+i] = logicalRest(s.model.ops[i])
	}
	for _, b := range s.basic {
		s.status[b] = inBasis
	}
	s.warmSeated = true
}

func (s *sparse) snapshot() *Basis {
	return &Basis{
		nVars:  s.n,
		nRows:  s.mr,
		fp:     s.model.StructureFingerprint(),
		status: append([]int8(nil), s.status...),
		basic:  append([]int(nil), s.basic...),
	}
}

// factorize rebuilds the sparse LU of the current basis and clears the
// eta file.
func (s *sparse) factorize() error {
	f := &s.f
	f.begin(s.mr)
	for i, b := range s.basic {
		if b < s.n {
			for k := s.colStart[b]; k < s.colStart[b+1]; k++ {
				f.load(int32(s.colRow[k]), int32(i), s.colVal[k])
			}
		} else {
			f.load(int32(b-s.n), int32(i), 1)
		}
		f.endCol()
	}
	if err := f.eliminate(); err != nil {
		return err
	}
	if s.mr >= ftMinRows {
		f.initUpdatable()
	} else {
		f.updatable = false
	}
	s.etas = s.etas[:0]
	s.needRefactor = false
	return nil
}

// updates counts basis changes absorbed since the last refactorization,
// in whichever representation is active.
func (s *sparse) updates() int {
	if s.f.updatable {
		return s.f.nupd
	}
	return len(s.etas)
}

// refactorLimit is the update-chain length that triggers a rebuild.
func (s *sparse) refactorLimit() int {
	if s.f.updatable {
		return ftRefactorEvery
	}
	return refactorEvery
}

// ftran solves B·x = v in place (v has length mr).
func (s *sparse) ftran(v []float64) {
	s.f.ftran(v)
	for e := range s.etas {
		et := &s.etas[e]
		t := v[et.r] / et.pr
		if t != 0 {
			for k, i := range et.idx {
				v[i] -= et.val[k] * t
			}
		}
		v[et.r] = t
	}
}

// btran solves Bᵀ·y = v in place (v has length mr).
func (s *sparse) btran(v []float64) {
	for e := len(s.etas) - 1; e >= 0; e-- {
		et := &s.etas[e]
		t := v[et.r]
		for k, i := range et.idx {
			t -= et.val[k] * v[i]
		}
		v[et.r] = t / et.pr
	}
	s.f.btran(v)
}

// boundVal returns the resting value of a nonbasic column.
func (s *sparse) boundVal(j int) float64 {
	if s.status[j] == nbUpper {
		return s.up[j]
	}
	return s.lo[j]
}

// computeXB recomputes the basic values from scratch:
// x_B = B⁻¹(b − N·x_N).
func (s *sparse) computeXB() {
	for i := 0; i < s.mr; i++ {
		s.xB[i] = s.model.rhs[i]
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		v := s.boundVal(j)
		if v == 0 {
			continue
		}
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			s.xB[s.colRow[k]] -= s.colVal[k] * v
		}
	}
	// Nonbasic logicals always rest at 0; nothing to subtract.
	s.ftran(s.xB)
}

// computeDuals refreshes y = B⁻ᵀ c_B and the reduced costs d = c − AᵀB⁻ᵀc_B
// for every column (basic columns read ~0, used only as a consistency
// signal). Between calls, the pivot loops keep d current with rank-one
// updates (updateDualsAfterPivot); this is the from-scratch anchor they
// re-sync to at refactorizations.
func (s *sparse) computeDuals() {
	for i, b := range s.basic {
		s.y[i] = s.cost[b]
	}
	s.btran(s.y)
	for j := 0; j < s.n; j++ {
		dj := s.cost[j]
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			dj -= s.y[s.colRow[k]] * s.colVal[k]
		}
		s.d[j] = dj
	}
	for i := 0; i < s.mr; i++ {
		s.d[s.n+i] = s.cost[s.n+i] - s.y[i]
	}
}

// ftranColumn gathers column q of [A|I] into wcol and FTRANs it.
func (s *sparse) ftranColumn(q int) {
	for i := range s.wcol {
		s.wcol[i] = 0
	}
	if q < s.n {
		for k := s.colStart[q]; k < s.colStart[q+1]; k++ {
			s.wcol[s.colRow[k]] += s.colVal[k]
		}
	} else {
		s.wcol[q-s.n] = 1
	}
	s.ftran(s.wcol)
}

// replaceBasis pivots column q into row r (tableau column w = wcol),
// records the eta, and rests the leaving variable at the bound it hit.
func (s *sparse) replaceBasis(r, q int, enterVal float64, leaveStatus int8) {
	lv := s.basic[r]
	s.status[lv] = leaveStatus
	s.basic[r] = q
	s.status[q] = inBasis
	s.xB[r] = enterVal
	if s.f.updatable {
		// Forrest–Tomlin: fold the pivot into the factors. ftranColumn(q)
		// was the last FTRAN, so the spike stash is the entering column's
		// forward intermediate. A rejected update tears the factor;
		// refresh rebuilds it from the already-updated basic[] before the
		// next solve touches it.
		if !s.f.update(r) {
			s.needRefactor = true
		}
		s.pivots++
		return
	}
	// Reuse the eta slot (and its slices) left from a previous solve.
	if cap(s.etas) > len(s.etas) {
		s.etas = s.etas[:len(s.etas)+1]
	} else {
		s.etas = append(s.etas, eta{})
	}
	et := &s.etas[len(s.etas)-1]
	et.r, et.pr = r, s.wcol[r]
	et.idx, et.val = et.idx[:0], et.val[:0]
	for i, w := range s.wcol {
		if i != r && w != 0 {
			et.idx = append(et.idx, int32(i))
			et.val = append(et.val, w)
		}
	}
	s.pivots++
}

// refresh refactorizes when the update chain is long, torn by a rejected
// FT update, or when forced, and recomputes the basic values; it reports
// whether it refactorized so the pivot loops can re-anchor their
// incremental reduced costs.
func (s *sparse) refresh(force bool) (bool, error) {
	if force || s.needRefactor || s.updates() >= s.refactorLimit() {
		if err := s.factorize(); err != nil {
			return false, err
		}
		s.computeXB()
		return true, nil
	}
	return false, nil
}

func (s *sparse) maxPivots() int { return 5000 + 200*(s.mr+s.nc) }

// confirmSkipMax is the longest update chain whose terminal optimality
// confirmation may be answered by the O(nnz) residual check instead of a
// full refactorization; confirmResTol is that check's per-row relative
// tolerance.
const (
	confirmSkipMax = 8
	confirmResTol  = 1e-9
)

// residualOK verifies the incrementally maintained basic values against
// the model directly: r = b − N·x_N − B·x_B must vanish row-wise
// relative to the magnitudes that formed it. One pass over the nonzeros
// — no factorization, no triangular solves.
func (s *sparse) residualOK() bool {
	res := s.rrow
	mag := s.alpha[:s.mr] // pivot-row scratch, dead between pivots
	for i := 0; i < s.mr; i++ {
		r := s.model.rhs[i]
		res[i] = r
		mag[i] = 1 + math.Abs(r)
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		v := s.boundVal(j)
		if v == 0 {
			continue
		}
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			t := s.colVal[k] * v
			res[s.colRow[k]] -= t
			mag[s.colRow[k]] += math.Abs(t)
		}
	}
	// Nonbasic logicals rest at 0 under every row op; only basic ones
	// carry a value.
	for i, b := range s.basic {
		x := s.xB[i]
		if x == 0 {
			continue
		}
		if b < s.n {
			for k := s.colStart[b]; k < s.colStart[b+1]; k++ {
				t := s.colVal[k] * x
				res[s.colRow[k]] -= t
				mag[s.colRow[k]] += math.Abs(t)
			}
		} else {
			res[b-s.n] -= x
			mag[b-s.n] += math.Abs(x)
		}
	}
	for i := 0; i < s.mr; i++ {
		if !(math.Abs(res[i]) <= confirmResTol*mag[i]) {
			return false // NaN-safe: a poisoned residual must fail
		}
	}
	return true
}

// dualSimplex repairs primal feasibility while keeping dual feasibility,
// under the current cost vector. It returns Optimal when every basic
// value sits within its bounds, Infeasible when a violated row admits no
// entering column (dual unbounded ⇒ primal empty).
func (s *sparse) dualSimplex() (Status, error) {
	degenerate := 0
	s.resetDualDevex()
	s.computeDuals()
	fresh := true
	for {
		refactored, err := s.refresh(false)
		if err != nil {
			return 0, err
		}
		if refactored {
			s.computeDuals()
			fresh = true
		}
		bland := degenerate > 2*s.mr+20
		if bland && !fresh {
			// The anti-cycling rule must act on exact signs, not drifted
			// increments.
			s.computeDuals()
			fresh = true
		}
		r, above := s.chooseDualLeaving(bland)
		if r == -1 {
			if fresh && s.updates() == 0 {
				return Optimal, nil
			}
			// Confirm optimality. The violation scan read incrementally
			// maintained basic values; after a short update chain a direct
			// O(nnz) residual check certifies them without the full
			// refactorization — pure overhead on the small LPs that finish
			// in a handful of pivots.
			if s.updates() <= confirmSkipMax && s.residualOK() {
				return Optimal, nil
			}
			if _, err := s.refresh(true); err != nil {
				return 0, err
			}
			s.computeDuals()
			fresh = true
			if r, above = s.chooseDualLeaving(bland); r == -1 {
				return Optimal, nil
			}
		}
		// Pivotal row: ρ = B⁻ᵀe_r, α_j = ρ·A_j.
		for i := range s.rrow {
			s.rrow[i] = 0
		}
		s.rrow[r] = 1
		s.btran(s.rrow)
		s.pivotRowAlphas()
		sigma := 1.0
		if !above {
			sigma = -1
		}
		enter, bestRatio, bestAbs := -1, math.Inf(1), 0.0
		for j := 0; j < s.nc; j++ {
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			a := sigma * s.alpha[j]
			if s.status[j] == nbLower {
				if a <= pivotTol {
					continue
				}
			} else if a >= -pivotTol {
				continue
			}
			ratio := s.d[j] / a
			if ratio < 0 {
				ratio = 0 // dual round-off; treat as a degenerate step
			}
			// The dual ratio test always applies — entering a column whose
			// ratio exceeds the minimum would push another reduced cost
			// through zero and destroy dual feasibility. Bland mode only
			// changes the tie-break: smallest index (the ascending scan's
			// incumbent) instead of the numerically largest pivot.
			if ratio < bestRatio-optTol || (!bland && ratio < bestRatio+optTol && math.Abs(a) > bestAbs) {
				enter, bestRatio, bestAbs = j, ratio, math.Abs(a)
			}
		}
		if enter == -1 {
			if !fresh {
				// Entering admissibility read incremental numbers; retry
				// once from an exact factorization before declaring the
				// dual unbounded.
				if _, err := s.refresh(true); err != nil {
					return 0, err
				}
				s.computeDuals()
				fresh = true
				continue
			}
			return Infeasible, nil
		}
		gammaR := 0.0
		if s.dse {
			// Steepest-edge inputs: the exact leaving-row norm ‖ρ_r‖² and
			// τ = B⁻¹ρ_r. Solved before the entering column's FTRAN so that
			// the Forrest–Tomlin spike stash belongs to the entering
			// column when replaceBasis folds the pivot into the factors.
			for _, v := range s.rrow[:s.mr] {
				gammaR += v * v
			}
			copy(s.tau[:s.mr], s.rrow[:s.mr])
			s.ftran(s.tau)
		}
		s.ftranColumn(enter)
		wr := s.wcol[r]
		if math.Abs(wr) < pivotTol {
			// The eta-file estimate of the pivot has decayed; refactorize
			// and retry the iteration with fresh numbers.
			if _, err := s.refresh(true); err != nil {
				return 0, err
			}
			s.computeDuals()
			fresh = true
			s.ftranColumn(enter)
			wr = s.wcol[r]
			if math.Abs(wr) < pivotTol {
				return 0, errSingularBasis
			}
		}
		lv := s.basic[r]
		bound := s.lo[lv]
		leaveStatus := nbLower
		if above {
			bound = s.up[lv]
			leaveStatus = nbUpper
		}
		dx := (s.xB[r] - bound) / wr
		for i := range s.xB {
			if w := s.wcol[i]; w != 0 {
				s.xB[i] -= dx * w
			}
		}
		s.updateDualsAfterPivot(enter, lv)
		if s.dse {
			s.updateDualSteepestEdge(r, gammaR)
		} else {
			s.updateDualDevex(r)
		}
		enterVal := s.boundVal(enter) + dx
		s.replaceBasis(r, enter, enterVal, leaveStatus)
		fresh = false
		if bestRatio < optTol {
			degenerate++
		} else {
			degenerate = 0
		}
		if s.pivots > s.maxPivots() {
			return 0, ErrIterationLimit
		}
	}
}

// primalSimplex improves the current cost from a primal-feasible basis.
// It returns Optimal or Unbounded.
func (s *sparse) primalSimplex() (Status, error) {
	degenerate := 0
	s.resetPrimalDevex()
	s.computeDuals()
	fresh := true
	for {
		refactored, err := s.refresh(false)
		if err != nil {
			return 0, err
		}
		if refactored {
			s.computeDuals()
			fresh = true
		}
		bland := degenerate > 2*s.mr+20
		if bland && !fresh {
			s.computeDuals()
			fresh = true
		}
		enter := s.choosePrimalEntering(bland)
		if enter == -1 {
			if fresh && s.updates() == 0 {
				return Optimal, nil
			}
			// Confirm optimality. The entering scan reads incrementally
			// maintained reduced costs: recompute those from the current
			// factors and re-scan, skipping the full refactorization when
			// the update chain is short and the basic values pass a direct
			// residual check.
			if s.updates() <= confirmSkipMax && s.residualOK() {
				s.computeDuals()
				fresh = true
			} else {
				if _, err := s.refresh(true); err != nil {
					return 0, err
				}
				s.computeDuals()
				fresh = true
			}
			if enter = s.choosePrimalEntering(bland); enter == -1 {
				return Optimal, nil
			}
		}
		s.ftranColumn(enter)
		sigma := 1.0
		if s.status[enter] == nbUpper {
			sigma = -1
		}
		// Ratio test: the entering variable moves by t ≥ 0 in direction
		// sigma; each basic value moves by −t·sigma·w_i until one hits a
		// bound, or the entering variable flips to its other bound.
		t := s.up[enter] - s.lo[enter]
		leave, leaveStatus := -1, nbLower
		for i := 0; i < s.mr; i++ {
			a := sigma * s.wcol[i]
			b := s.basic[i]
			var ratio float64
			var hit int8
			if a > pivotTol {
				if math.IsInf(s.lo[b], -1) {
					continue
				}
				ratio, hit = (s.xB[i]-s.lo[b])/a, nbLower
			} else if a < -pivotTol {
				if math.IsInf(s.up[b], 1) {
					continue
				}
				ratio, hit = (s.up[b]-s.xB[i])/(-a), nbUpper
			} else {
				continue
			}
			if ratio < 0 {
				ratio = 0 // feasibility round-off
			}
			better := ratio < t-pivotTol
			if !better && ratio < t+pivotTol && leave != -1 {
				if bland {
					better = s.basic[i] < s.basic[leave]
				} else {
					better = math.Abs(a) > math.Abs(sigma*s.wcol[leave])
				}
			}
			if better {
				t, leave, leaveStatus = ratio, i, hit
			}
		}
		if math.IsInf(t, 1) {
			return Unbounded, nil
		}
		dx := sigma * t
		for i := range s.xB {
			if w := s.wcol[i]; w != 0 {
				s.xB[i] -= dx * w
			}
		}
		if leave == -1 {
			// Bound flip: the entering variable crosses to its other
			// bound without a basis change (reduced costs unchanged).
			if s.status[enter] == nbLower {
				s.status[enter] = nbUpper
			} else {
				s.status[enter] = nbLower
			}
			s.pivots++
		} else {
			lv := s.basic[leave]
			// Pivot row for the incremental dual update and the devex
			// reference weights.
			for i := range s.rrow {
				s.rrow[i] = 0
			}
			s.rrow[leave] = 1
			s.btran(s.rrow)
			s.pivotRowAlphas()
			updated := false
			if alphaQ := s.alpha[enter]; math.Abs(alphaQ) >= pivotTol {
				s.updateDualsAfterPivot(enter, lv)
				s.updatePrimalDevex(enter, lv, alphaQ)
				updated = true
			}
			enterVal := s.boundVal(enter) + dx
			s.replaceBasis(leave, enter, enterVal, leaveStatus)
			if updated {
				fresh = false
			} else {
				// The pivot-row estimate of α_q decayed; re-anchor the
				// duals on the post-pivot basis instead of updating.
				s.computeDuals()
				fresh = true
			}
		}
		if t < pivotTol {
			degenerate++
		} else {
			degenerate = 0
		}
		if s.pivots > s.maxPivots() {
			return 0, ErrIterationLimit
		}
	}
}

// dualFeasible reports whether the current reduced costs satisfy the
// bounded-variable dual feasibility conditions.
func (s *sparse) dualFeasible() bool {
	for j := 0; j < s.nc; j++ {
		switch s.status[j] {
		case nbLower:
			if s.lo[j] != s.up[j] && s.d[j] < -optTol {
				return false
			}
		case nbUpper:
			if s.lo[j] != s.up[j] && s.d[j] > optTol {
				return false
			}
		}
	}
	return true
}

// flipToDualFeasible repairs dual infeasibility without pivoting: a
// nonbasic column whose reduced cost prefers its other bound flips there
// when that bound is finite. The basis (and therefore y and d) is
// unchanged, so the repair is exact; it reports whether anything moved
// (the basic values must then be recomputed). Columns whose preferred
// bound is infinite stay put — those need a phase-1, not a flip.
func (s *sparse) flipToDualFeasible() bool {
	flipped := false
	for j := 0; j < s.nc; j++ {
		if s.lo[j] == s.up[j] {
			continue
		}
		switch s.status[j] {
		case nbLower:
			if s.d[j] < -optTol && !math.IsInf(s.up[j], 1) {
				s.status[j] = nbUpper
				flipped = true
			}
		case nbUpper:
			if s.d[j] > optTol && !math.IsInf(s.lo[j], -1) {
				s.status[j] = nbLower
				flipped = true
			}
		}
	}
	return flipped
}

// primalFeasibleNow reports whether every basic value sits within its
// bounds (same tolerance as the dual simplex's violation scan).
func (s *sparse) primalFeasibleNow() bool {
	for i, b := range s.basic {
		if s.xB[i] < s.lo[b]-feasTol*(1+math.Abs(s.lo[b])) ||
			s.xB[i] > s.up[b]+feasTol*(1+math.Abs(s.up[b])) {
			return false
		}
	}
	return true
}

// solution extracts the Solution from an Optimal terminal state.
func (s *sparse) solution() *Solution {
	sol := &Solution{Status: Optimal, Pivots: s.pivots}
	sol.X = make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] != inBasis {
			sol.X[j] = s.boundVal(j)
		}
	}
	for i, b := range s.basic {
		if b < s.n {
			sol.X[b] = s.xB[i]
		}
	}
	for j := range sol.X {
		if sol.X[j] < 0 && sol.X[j] > -feasTol {
			sol.X[j] = 0
		}
	}
	sol.Objective = s.model.Value(sol.X)
	// Duals in the user's row orientation (the equality form never
	// negates rows, so y is already it), plus the bounded-form strong
	// duality certificate: c·x = y·b + Σ_{j at upper} d_j·u_j (lower
	// bounds are all 0).
	sol.Duals = append([]float64(nil), s.y...)
	dualObj := 0.0
	for i := 0; i < s.mr; i++ {
		dualObj += s.y[i] * s.model.rhs[i]
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == nbUpper {
			dualObj += s.d[j] * s.up[j]
		}
	}
	sol.DualityGap = math.Abs(dualObj - sol.Objective)
	sol.Basis = s.snapshot()
	return sol
}

// run drives the phases from the current (already seated) basis. The
// warm-start ladder: dual simplex when the basis is dual feasible (after
// free bound-flip repairs), primal simplex when it is at least primal
// feasible, and only then the cold two-phase from the all-logical basis.
func (s *sparse) run() (*Solution, error) {
	if _, err := s.refresh(true); err != nil {
		return nil, err
	}
	copy(s.cost, s.real)
	s.computeDuals()
	if !s.dualFeasible() && s.flipToDualFeasible() {
		s.computeXB() // flipped columns rest at new values
	}
	if s.dualFeasible() {
		st, err := s.dualSimplex()
		if err != nil {
			return nil, err
		}
		if st == Infeasible {
			return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
		}
		s.computeDuals()
		return s.solution(), nil
	}
	if s.primalFeasibleNow() {
		// Homotopy middle rung: a projected foreign basis often lands
		// primal feasible but not dual feasible — the primal simplex
		// finishes from it without discarding the warm start.
		st, err := s.primalSimplex()
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			return &Solution{Status: Unbounded, Pivots: s.pivots}, nil
		}
		s.computeDuals()
		return s.solution(), nil
	}
	if s.warmSeated {
		// Homotopy bottom rung: the projected basis is neither dual nor
		// primal feasible — the typical landing spot when a nearby
		// instance perturbs both the geometry and the prices. Shift each
		// offending nonbasic cost by exactly its reduced cost: the basis
		// becomes dual feasible *by construction* under the shifted
		// objective (y depends only on basic costs, which are untouched),
		// the dual simplex then repairs primal feasibility from the warm
		// basis — for a genuinely nearby instance that is a handful of
		// pivots — and the primal simplex finishes under the true costs.
		// An Infeasible verdict here is real: primal feasibility does not
		// depend on the objective.
		for j := 0; j < s.nc; j++ {
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			if s.status[j] == nbLower && s.d[j] < 0 {
				s.cost[j] -= s.d[j]
			} else if s.status[j] == nbUpper && s.d[j] > 0 {
				s.cost[j] -= s.d[j]
			}
		}
		st, err := s.dualSimplex()
		if err != nil {
			return nil, err
		}
		if st == Infeasible {
			return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
		}
		copy(s.cost, s.real)
		st, err = s.primalSimplex()
		if err != nil {
			return nil, err
		}
		if st == Unbounded {
			return &Solution{Status: Unbounded, Pivots: s.pivots}, nil
		}
		s.computeDuals()
		return s.solution(), nil
	}
	// Two-phase from a fresh all-logical basis: dual simplex under the
	// shifted cost ĉ = max(c,0) (dual feasible by construction) reaches a
	// primal-feasible basis or proves infeasibility; then the primal
	// simplex finishes under the true cost.
	s.initFresh()
	if _, err := s.refresh(true); err != nil {
		return nil, err
	}
	for j := 0; j < s.nc; j++ {
		s.cost[j] = s.real[j]
		if s.cost[j] < 0 {
			s.cost[j] = 0
		}
	}
	st, err := s.dualSimplex()
	if err != nil {
		return nil, err
	}
	if st == Infeasible {
		return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
	}
	copy(s.cost, s.real)
	st, err = s.primalSimplex()
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Pivots: s.pivots}, nil
	}
	s.computeDuals()
	return s.solution(), nil
}

// Solve runs the sparse revised simplex from scratch and returns the
// solution, including a reusable Basis for warm-started re-solves.
func (m *Model) Solve() (*Solution, error) {
	s := newSparse(m)
	defer s.release()
	s.initFresh()
	return s.run()
}

// ResolveFrom re-solves the model starting from a Basis captured by an
// earlier Solve/ResolveFrom — on this model before AddRow appended
// violated constraints (row generation), or on a different, structurally
// compatible model (cross-instance basis homotopy: nearby sweep
// instances chain warm starts instead of cold-solving each one). The
// snapshot is projected onto the current row set and the solve starts
// from whichever simplex the projection is feasible for. A nil,
// incompatible or unusable basis falls back to a cold Solve.
func (m *Model) ResolveFrom(bs *Basis) (*Solution, error) {
	if !bs.CompatibleWith(m) {
		return m.Solve()
	}
	s := newSparse(m)
	defer s.release()
	s.initFromBasis(bs)
	sol, err := s.run()
	if warmRetryable(err) {
		// A degenerate or numerically decayed warm basis: retry cold
		// rather than surfacing a pathology the caller cannot act on.
		return m.Solve()
	}
	if err == nil && sol.Status != Optimal {
		// Same reasoning for a warm run that *terminates* wrong: eta-file
		// decay can make a feasible model read as Infeasible (every
		// admissible pivot washed out to ~0). A cold solve re-derives the
		// status from a fresh factorization; if the model truly is
		// infeasible or unbounded, it says so too.
		return m.Solve()
	}
	return sol, err
}
