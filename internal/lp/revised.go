package lp

import (
	"errors"
	"fmt"
	"math"
)

// This file is the sparse revised simplex: the production solver behind
// Solve and ResolveFrom.
//
// The model is brought to the equality form  A·x + s = b  with one
// logical variable s_i per row (LE: s ∈ [0,∞), GE: s ∈ (−∞,0],
// EQ: s ∈ [0,0]) and the structural bounds 0 ≤ x ≤ u handled natively by
// the bounded-variable pivot rules — no bound rows, no artificials. The
// basis inverse is never formed: a dense LU factorization of the m×m
// basis (m = user rows only) answers FTRAN/BTRAN, with an eta file of
// product-form updates between refactorizations.
//
// Solve runs dual simplex from the all-logical basis under the shifted
// cost ĉ = max(c,0) — always dual feasible — then primal simplex under
// the true cost; when c ≥ 0 (every SNE model) the first phase is already
// the whole solve. ResolveFrom restores a previous optimal Basis, seats
// the logicals of freshly added rows, and re-solves with the dual
// simplex alone: the inherited basis stays dual feasible, so only the
// primal infeasibility introduced by the new rows has to be repaired.
// That is the Theorem-1 row-generation loop in basis form.

// hugeBound is the threshold beyond which an upper bound is treated as
// +∞ (callers occasionally use 1e308 as a stand-in for "unbounded";
// taken literally, a bound flip of that size would overflow the basic
// values). Documented on AddVar — the dense oracle takes such bounds
// literally, so genuinely finite bounds belong far below this.
const hugeBound = 1e100

// refactorEvery bounds the eta file: after this many product-form
// updates the basis is refactorized from scratch.
const refactorEvery = 64

// Nonbasic/basic variable states.
const (
	nbLower int8 = iota // nonbasic at lower bound
	nbUpper             // nonbasic at upper bound
	inBasis             // basic
)

// Basis is a reusable snapshot of a revised-simplex basis: which column
// (structural j < NumVars, logical NumVars+i for row i) is basic in each
// row, and at which bound every nonbasic column rests. Solve attaches the
// optimal basis to its Solution; after AddRow, ResolveFrom(basis) warm
// starts from it.
type Basis struct {
	nVars  int
	nRows  int
	status []int8
	basic  []int
}

// eta is one product-form update: after a pivot on row r with entering
// tableau column w, B_new = B_old · E where E is the identity with column
// r replaced by w. Stored sparsely (rows with w_i ≠ 0, i ≠ r).
type eta struct {
	r   int
	pr  float64 // w_r, the pivot element
	idx []int32
	val []float64
}

// sparse is the per-solve state of the revised simplex.
type sparse struct {
	model *Model
	n     int // structural variables
	mr    int // rows
	nc    int // n + mr columns

	lo, up []float64 // per-column bounds
	cost   []float64 // current phase's cost per column
	real   []float64 // true cost per column

	// CSC of the structural columns (logical columns are implicit e_i).
	colStart []int
	colRow   []int
	colVal   []float64

	status []int8
	basic  []int     // basic[i] = column basic in row i
	xB     []float64 // value of the basic variable of each row

	// LU factorization of the basis (row-major, partial pivoting) plus
	// the eta file of updates since the last refactorization.
	lu   []float64
	piv  []int
	etas []eta

	y    []float64 // duals of the current cost vector
	d    []float64 // reduced costs per column
	wcol []float64 // FTRAN scratch
	rrow []float64 // BTRAN scratch

	pivots int
}

var errSingularBasis = errors.New("lp: singular basis")

func newSparse(m *Model) *sparse {
	n := len(m.obj)
	mr := len(m.ops)
	s := &sparse{
		model: m, n: n, mr: mr, nc: n + mr,
		lo: make([]float64, n+mr), up: make([]float64, n+mr),
		cost: make([]float64, n+mr), real: make([]float64, n+mr),
		status: make([]int8, n+mr), basic: make([]int, mr),
		xB: make([]float64, mr),
		lu: make([]float64, mr*mr), piv: make([]int, mr),
		y: make([]float64, mr), d: make([]float64, n+mr),
		wcol: make([]float64, mr), rrow: make([]float64, mr),
	}
	for j := 0; j < n; j++ {
		s.lo[j] = 0
		s.up[j] = m.ub[j]
		if s.up[j] > hugeBound {
			s.up[j] = math.Inf(1)
		}
		s.real[j] = m.obj[j]
	}
	for i := 0; i < mr; i++ {
		c := n + i
		switch m.ops[i] {
		case LE:
			s.lo[c], s.up[c] = 0, math.Inf(1)
		case GE:
			s.lo[c], s.up[c] = math.Inf(-1), 0
		case EQ:
			s.lo[c], s.up[c] = 0, 0
		}
	}
	s.buildCSC()
	return s
}

// buildCSC transposes the model's CSR rows into per-column form, which
// FTRAN (gathering one column) and pricing need.
func (s *sparse) buildCSC() {
	m := s.model
	nnz := len(m.cols)
	s.colStart = make([]int, s.n+1)
	for _, j := range m.cols {
		s.colStart[j+1]++
	}
	for j := 0; j < s.n; j++ {
		s.colStart[j+1] += s.colStart[j]
	}
	s.colRow = make([]int, nnz)
	s.colVal = make([]float64, nnz)
	next := make([]int, s.n)
	copy(next, s.colStart[:s.n])
	for i := 0; i < s.mr; i++ {
		for k := m.rowStart[i]; k < m.rowStart[i+1]; k++ {
			j := m.cols[k]
			p := next[j]
			s.colRow[p] = i
			s.colVal[p] = m.vals[k]
			next[j]++
		}
	}
}

// initFresh seats the all-logical basis: every row's logical is basic,
// structurals rest at the bound their cost prefers (a variable that wants
// to grow and can — negative cost, finite upper bound — starts there).
func (s *sparse) initFresh() {
	for j := 0; j < s.n; j++ {
		if s.real[j] < 0 && !math.IsInf(s.up[j], 1) {
			s.status[j] = nbUpper
		} else {
			s.status[j] = nbLower
		}
	}
	for i := 0; i < s.mr; i++ {
		s.basic[i] = s.n + i
		s.status[s.n+i] = inBasis
	}
}

// initFromBasis restores a snapshot and seats the logicals of any rows
// added since it was captured (they enter basic, preserving dual
// feasibility: the extended basis is block triangular with an identity
// block, so the old duals are unchanged and the new rows' duals are 0).
func (s *sparse) initFromBasis(bs *Basis) error {
	if bs.nVars != s.n {
		return fmt.Errorf("lp: basis has %d variables, model has %d (add rows, not variables, between warm starts)", bs.nVars, s.n)
	}
	if bs.nRows > s.mr {
		return fmt.Errorf("lp: basis has %d rows, model only %d", bs.nRows, s.mr)
	}
	for j := 0; j < s.n; j++ {
		s.status[j] = bs.status[j]
	}
	for i := 0; i < bs.nRows; i++ {
		// Old logical columns keep their index offset by the unchanged n.
		s.status[s.n+i] = bs.status[bs.nVars+i]
		s.basic[i] = bs.basic[i]
		if s.basic[i] >= bs.nVars {
			s.basic[i] = s.n + (s.basic[i] - bs.nVars)
		}
	}
	for i := bs.nRows; i < s.mr; i++ {
		s.basic[i] = s.n + i
		s.status[s.n+i] = inBasis
	}
	// A nonbasic column can only rest at a finite bound.
	for j := 0; j < s.nc; j++ {
		if s.status[j] == nbLower && math.IsInf(s.lo[j], -1) {
			return fmt.Errorf("lp: basis rests column %d at an infinite bound", j)
		}
		if s.status[j] == nbUpper && math.IsInf(s.up[j], 1) {
			return fmt.Errorf("lp: basis rests column %d at an infinite bound", j)
		}
	}
	return nil
}

func (s *sparse) snapshot() *Basis {
	return &Basis{
		nVars:  s.n,
		nRows:  s.mr,
		status: append([]int8(nil), s.status...),
		basic:  append([]int(nil), s.basic...),
	}
}

// factorize rebuilds the dense LU of the current basis and clears the eta
// file.
func (s *sparse) factorize() error {
	mr := s.mr
	for i := range s.lu {
		s.lu[i] = 0
	}
	for i, b := range s.basic {
		if b < s.n {
			for k := s.colStart[b]; k < s.colStart[b+1]; k++ {
				s.lu[s.colRow[k]*mr+i] += s.colVal[k]
			}
		} else {
			s.lu[(b-s.n)*mr+i] += 1
		}
	}
	for k := 0; k < mr; k++ {
		// Partial pivoting.
		p, best := k, math.Abs(s.lu[k*mr+k])
		for i := k + 1; i < mr; i++ {
			if a := math.Abs(s.lu[i*mr+k]); a > best {
				p, best = i, a
			}
		}
		if best < 1e-12 {
			return errSingularBasis
		}
		s.piv[k] = p
		if p != k {
			rk, rp := s.lu[k*mr:(k+1)*mr], s.lu[p*mr:(p+1)*mr]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivInv := 1 / s.lu[k*mr+k]
		for i := k + 1; i < mr; i++ {
			f := s.lu[i*mr+k] * pivInv
			if f == 0 {
				continue
			}
			s.lu[i*mr+k] = f
			ri, rk := s.lu[i*mr:(i+1)*mr], s.lu[k*mr:(k+1)*mr]
			for j := k + 1; j < mr; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	s.etas = s.etas[:0]
	return nil
}

// ftran solves B·x = v in place (v has length mr).
func (s *sparse) ftran(v []float64) {
	mr := s.mr
	for k := 0; k < mr; k++ {
		if p := s.piv[k]; p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
	for k := 0; k < mr; k++ {
		if v[k] == 0 {
			continue
		}
		for i := k + 1; i < mr; i++ {
			v[i] -= s.lu[i*mr+k] * v[k]
		}
	}
	for k := mr - 1; k >= 0; k-- {
		v[k] /= s.lu[k*mr+k]
		if v[k] == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			v[i] -= s.lu[i*mr+k] * v[k]
		}
	}
	for e := range s.etas {
		et := &s.etas[e]
		t := v[et.r] / et.pr
		if t != 0 {
			for k, i := range et.idx {
				v[i] -= et.val[k] * t
			}
		}
		v[et.r] = t
	}
}

// btran solves Bᵀ·y = v in place (v has length mr).
func (s *sparse) btran(v []float64) {
	mr := s.mr
	for e := len(s.etas) - 1; e >= 0; e-- {
		et := &s.etas[e]
		t := v[et.r]
		for k, i := range et.idx {
			t -= et.val[k] * v[i]
		}
		v[et.r] = t / et.pr
	}
	// Uᵀ z = v (forward), then Lᵀ w = z (backward), then undo pivoting.
	for k := 0; k < mr; k++ {
		for i := 0; i < k; i++ {
			v[k] -= s.lu[i*mr+k] * v[i]
		}
		v[k] /= s.lu[k*mr+k]
	}
	for k := mr - 1; k >= 0; k-- {
		for i := k + 1; i < mr; i++ {
			v[k] -= s.lu[i*mr+k] * v[i]
		}
	}
	for k := mr - 1; k >= 0; k-- {
		if p := s.piv[k]; p != k {
			v[k], v[p] = v[p], v[k]
		}
	}
}

// boundVal returns the resting value of a nonbasic column.
func (s *sparse) boundVal(j int) float64 {
	if s.status[j] == nbUpper {
		return s.up[j]
	}
	return s.lo[j]
}

// computeXB recomputes the basic values from scratch:
// x_B = B⁻¹(b − N·x_N).
func (s *sparse) computeXB() {
	for i := 0; i < s.mr; i++ {
		s.xB[i] = s.model.rhs[i]
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == inBasis {
			continue
		}
		v := s.boundVal(j)
		if v == 0 {
			continue
		}
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			s.xB[s.colRow[k]] -= s.colVal[k] * v
		}
	}
	// Nonbasic logicals always rest at 0; nothing to subtract.
	s.ftran(s.xB)
}

// computeDuals refreshes y = B⁻ᵀ c_B and the reduced costs d = c − AᵀB⁻ᵀc_B
// for every column (basic columns read ~0, used only as a consistency
// signal).
func (s *sparse) computeDuals() {
	for i, b := range s.basic {
		s.y[i] = s.cost[b]
	}
	s.btran(s.y)
	for j := 0; j < s.n; j++ {
		dj := s.cost[j]
		for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
			dj -= s.y[s.colRow[k]] * s.colVal[k]
		}
		s.d[j] = dj
	}
	for i := 0; i < s.mr; i++ {
		s.d[s.n+i] = s.cost[s.n+i] - s.y[i]
	}
}

// ftranColumn gathers column q of [A|I] into wcol and FTRANs it.
func (s *sparse) ftranColumn(q int) {
	for i := range s.wcol {
		s.wcol[i] = 0
	}
	if q < s.n {
		for k := s.colStart[q]; k < s.colStart[q+1]; k++ {
			s.wcol[s.colRow[k]] += s.colVal[k]
		}
	} else {
		s.wcol[q-s.n] = 1
	}
	s.ftran(s.wcol)
}

// replaceBasis pivots column q into row r (tableau column w = wcol),
// records the eta, and rests the leaving variable at the bound it hit.
func (s *sparse) replaceBasis(r, q int, enterVal float64, leaveStatus int8) {
	lv := s.basic[r]
	s.status[lv] = leaveStatus
	s.basic[r] = q
	s.status[q] = inBasis
	s.xB[r] = enterVal
	et := eta{r: r, pr: s.wcol[r]}
	for i, w := range s.wcol {
		if i != r && w != 0 {
			et.idx = append(et.idx, int32(i))
			et.val = append(et.val, w)
		}
	}
	s.etas = append(s.etas, et)
	s.pivots++
}

// refresh refactorizes when the eta file is long (or when forced) and
// recomputes the basic values; it returns any factorization error.
func (s *sparse) refresh(force bool) error {
	if force || len(s.etas) >= refactorEvery {
		if err := s.factorize(); err != nil {
			return err
		}
		s.computeXB()
	}
	return nil
}

func (s *sparse) maxPivots() int { return 5000 + 200*(s.mr+s.nc) }

// dualSimplex repairs primal feasibility while keeping dual feasibility,
// under the current cost vector. It returns Optimal when every basic
// value sits within its bounds, Infeasible when a violated row admits no
// entering column (dual unbounded ⇒ primal empty).
func (s *sparse) dualSimplex() (Status, error) {
	degenerate := 0
	for {
		if err := s.refresh(false); err != nil {
			return 0, err
		}
		s.computeDuals()
		// Leaving row: largest bound violation.
		r, above, worst := -1, false, 0.0
		for i := 0; i < s.mr; i++ {
			b := s.basic[i]
			if v := s.lo[b] - s.xB[i]; v > worst && v > feasTol*(1+math.Abs(s.lo[b])) {
				r, above, worst = i, false, v
			}
			if v := s.xB[i] - s.up[b]; v > worst && v > feasTol*(1+math.Abs(s.up[b])) {
				r, above, worst = i, true, v
			}
		}
		if r == -1 {
			return Optimal, nil
		}
		// Pivotal row: ρ = B⁻ᵀe_r, α_j = ρ·A_j.
		for i := range s.rrow {
			s.rrow[i] = 0
		}
		s.rrow[r] = 1
		s.btran(s.rrow)
		sigma := 1.0
		if !above {
			sigma = -1
		}
		bland := degenerate > 2*s.mr+20
		enter, bestRatio, bestAbs := -1, math.Inf(1), 0.0
		for j := 0; j < s.nc; j++ {
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			var alpha float64
			if j < s.n {
				for k := s.colStart[j]; k < s.colStart[j+1]; k++ {
					alpha += s.rrow[s.colRow[k]] * s.colVal[k]
				}
			} else {
				alpha = s.rrow[j-s.n]
			}
			a := sigma * alpha
			if s.status[j] == nbLower {
				if a <= pivotTol {
					continue
				}
			} else if a >= -pivotTol {
				continue
			}
			ratio := s.d[j] / a
			if ratio < 0 {
				ratio = 0 // dual round-off; treat as a degenerate step
			}
			// The dual ratio test always applies — entering a column whose
			// ratio exceeds the minimum would push another reduced cost
			// through zero and destroy dual feasibility. Bland mode only
			// changes the tie-break: smallest index (the ascending scan's
			// incumbent) instead of the numerically largest pivot.
			if ratio < bestRatio-optTol || (!bland && ratio < bestRatio+optTol && math.Abs(a) > bestAbs) {
				enter, bestRatio, bestAbs = j, ratio, math.Abs(a)
			}
		}
		if enter == -1 {
			return Infeasible, nil
		}
		s.ftranColumn(enter)
		wr := s.wcol[r]
		if math.Abs(wr) < pivotTol {
			// The eta-file estimate of the pivot has decayed; refactorize
			// and retry the iteration with fresh numbers.
			if err := s.refresh(true); err != nil {
				return 0, err
			}
			s.ftranColumn(enter)
			wr = s.wcol[r]
			if math.Abs(wr) < pivotTol {
				return 0, errSingularBasis
			}
		}
		bound := s.lo[s.basic[r]]
		leaveStatus := nbLower
		if above {
			bound = s.up[s.basic[r]]
			leaveStatus = nbUpper
		}
		dx := (s.xB[r] - bound) / wr
		for i := range s.xB {
			if w := s.wcol[i]; w != 0 {
				s.xB[i] -= dx * w
			}
		}
		enterVal := s.boundVal(enter) + dx
		s.replaceBasis(r, enter, enterVal, leaveStatus)
		if bestRatio < optTol {
			degenerate++
		} else {
			degenerate = 0
		}
		if s.pivots > s.maxPivots() {
			return 0, ErrIterationLimit
		}
	}
}

// primalSimplex improves the current cost from a primal-feasible basis.
// It returns Optimal or Unbounded.
func (s *sparse) primalSimplex() (Status, error) {
	degenerate := 0
	for {
		if err := s.refresh(false); err != nil {
			return 0, err
		}
		s.computeDuals()
		bland := degenerate > 2*s.mr+20
		enter, best := -1, optTol
		for j := 0; j < s.nc; j++ {
			if s.status[j] == inBasis || s.lo[j] == s.up[j] {
				continue
			}
			var viol float64
			if s.status[j] == nbLower {
				viol = -s.d[j]
			} else {
				viol = s.d[j]
			}
			if viol > best {
				enter = j
				if bland {
					break
				}
				best = viol
			}
		}
		if enter == -1 {
			return Optimal, nil
		}
		s.ftranColumn(enter)
		sigma := 1.0
		if s.status[enter] == nbUpper {
			sigma = -1
		}
		// Ratio test: the entering variable moves by t ≥ 0 in direction
		// sigma; each basic value moves by −t·sigma·w_i until one hits a
		// bound, or the entering variable flips to its other bound.
		t := s.up[enter] - s.lo[enter]
		leave, leaveStatus := -1, nbLower
		for i := 0; i < s.mr; i++ {
			a := sigma * s.wcol[i]
			b := s.basic[i]
			var ratio float64
			var hit int8
			if a > pivotTol {
				if math.IsInf(s.lo[b], -1) {
					continue
				}
				ratio, hit = (s.xB[i]-s.lo[b])/a, nbLower
			} else if a < -pivotTol {
				if math.IsInf(s.up[b], 1) {
					continue
				}
				ratio, hit = (s.up[b]-s.xB[i])/(-a), nbUpper
			} else {
				continue
			}
			if ratio < 0 {
				ratio = 0 // feasibility round-off
			}
			better := ratio < t-pivotTol
			if !better && ratio < t+pivotTol && leave != -1 {
				if bland {
					better = s.basic[i] < s.basic[leave]
				} else {
					better = math.Abs(a) > math.Abs(sigma*s.wcol[leave])
				}
			}
			if better {
				t, leave, leaveStatus = ratio, i, hit
			}
		}
		if math.IsInf(t, 1) {
			return Unbounded, nil
		}
		dx := sigma * t
		for i := range s.xB {
			if w := s.wcol[i]; w != 0 {
				s.xB[i] -= dx * w
			}
		}
		if leave == -1 {
			// Bound flip: the entering variable crosses to its other
			// bound without a basis change.
			if s.status[enter] == nbLower {
				s.status[enter] = nbUpper
			} else {
				s.status[enter] = nbLower
			}
			s.pivots++
		} else {
			enterVal := s.boundVal(enter) + dx
			s.replaceBasis(leave, enter, enterVal, leaveStatus)
		}
		if t < pivotTol {
			degenerate++
		} else {
			degenerate = 0
		}
		if s.pivots > s.maxPivots() {
			return 0, ErrIterationLimit
		}
	}
}

// dualFeasible reports whether the current reduced costs satisfy the
// bounded-variable dual feasibility conditions.
func (s *sparse) dualFeasible() bool {
	for j := 0; j < s.nc; j++ {
		switch s.status[j] {
		case nbLower:
			if s.lo[j] != s.up[j] && s.d[j] < -optTol {
				return false
			}
		case nbUpper:
			if s.lo[j] != s.up[j] && s.d[j] > optTol {
				return false
			}
		}
	}
	return true
}

// solution extracts the Solution from an Optimal terminal state.
func (s *sparse) solution() *Solution {
	sol := &Solution{Status: Optimal, Pivots: s.pivots}
	sol.X = make([]float64, s.n)
	for j := 0; j < s.n; j++ {
		if s.status[j] != inBasis {
			sol.X[j] = s.boundVal(j)
		}
	}
	for i, b := range s.basic {
		if b < s.n {
			sol.X[b] = s.xB[i]
		}
	}
	for j := range sol.X {
		if sol.X[j] < 0 && sol.X[j] > -feasTol {
			sol.X[j] = 0
		}
	}
	sol.Objective = s.model.Value(sol.X)
	// Duals in the user's row orientation (the equality form never
	// negates rows, so y is already it), plus the bounded-form strong
	// duality certificate: c·x = y·b + Σ_{j at upper} d_j·u_j (lower
	// bounds are all 0).
	sol.Duals = append([]float64(nil), s.y...)
	dualObj := 0.0
	for i := 0; i < s.mr; i++ {
		dualObj += s.y[i] * s.model.rhs[i]
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == nbUpper {
			dualObj += s.d[j] * s.up[j]
		}
	}
	sol.DualityGap = math.Abs(dualObj - sol.Objective)
	sol.Basis = s.snapshot()
	return sol
}

// run drives the phases from the current (already seated) basis.
func (s *sparse) run() (*Solution, error) {
	if err := s.refresh(true); err != nil {
		return nil, err
	}
	copy(s.cost, s.real)
	s.computeDuals()
	if s.dualFeasible() {
		st, err := s.dualSimplex()
		if err != nil {
			return nil, err
		}
		if st == Infeasible {
			return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
		}
		s.computeDuals()
		return s.solution(), nil
	}
	// Two-phase from a fresh all-logical basis: dual simplex under the
	// shifted cost ĉ = max(c,0) (dual feasible by construction) reaches a
	// primal-feasible basis or proves infeasibility; then the primal
	// simplex finishes under the true cost.
	s.initFresh()
	if err := s.refresh(true); err != nil {
		return nil, err
	}
	for j := 0; j < s.nc; j++ {
		s.cost[j] = s.real[j]
		if s.cost[j] < 0 {
			s.cost[j] = 0
		}
	}
	st, err := s.dualSimplex()
	if err != nil {
		return nil, err
	}
	if st == Infeasible {
		return &Solution{Status: Infeasible, Pivots: s.pivots}, nil
	}
	copy(s.cost, s.real)
	st, err = s.primalSimplex()
	if err != nil {
		return nil, err
	}
	if st == Unbounded {
		return &Solution{Status: Unbounded, Pivots: s.pivots}, nil
	}
	s.computeDuals()
	return s.solution(), nil
}

// Solve runs the sparse revised simplex from scratch and returns the
// solution, including a reusable Basis for warm-started re-solves.
func (m *Model) Solve() (*Solution, error) {
	s := newSparse(m)
	s.initFresh()
	return s.run()
}

// ResolveFrom re-solves the model starting from a Basis captured by an
// earlier Solve/ResolveFrom on the same variable set — typically after
// AddRow appended violated constraints (row generation). The inherited
// basis is dual feasible for the extended model, so the dual simplex
// only has to repair the primal infeasibility the new rows introduced.
// A nil, stale or unusable basis falls back to a cold Solve.
func (m *Model) ResolveFrom(bs *Basis) (*Solution, error) {
	if bs == nil {
		return m.Solve()
	}
	s := newSparse(m)
	if err := s.initFromBasis(bs); err != nil {
		return m.Solve()
	}
	sol, err := s.run()
	if err == ErrIterationLimit || err == errSingularBasis {
		// A degenerate or numerically decayed warm basis: retry cold
		// rather than surfacing a pathology the caller cannot act on.
		return m.Solve()
	}
	if err == nil && sol.Status != Optimal {
		// Same reasoning for a warm run that *terminates* wrong: eta-file
		// decay can make a feasible model read as Infeasible (every
		// admissible pivot washed out to ~0). A cold solve re-derives the
		// status from a fresh factorization; if the model truly is
		// infeasible or unbounded, it says so too.
		return m.Solve()
	}
	return sol, err
}
