package numeric

import (
	"math"
	"testing"
)

func TestAlmostEqual(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{0, 1e-12, true},
		{1e9, 1e9 + 1, true}, // relative tolerance at large scale: 1/1e9 < Eps
		{1e9, 1e9 * 1.001, false},
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := AlmostEqual(c.a, c.b); got != c.want {
			t.Errorf("AlmostEqual(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestLessEqAndLess(t *testing.T) {
	if !LessEq(1, 1) || !LessEq(1, 2) || LessEq(2, 1) {
		t.Error("LessEq basic cases failed")
	}
	if !LessEq(1+1e-12, 1) {
		t.Error("LessEq must absorb tolerance-level overshoot")
	}
	if Less(1, 1+1e-13) {
		t.Error("Less must not fire within tolerance")
	}
	if !Less(1, 1.1) {
		t.Error("Less(1,1.1) should hold")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp failed")
	}
}

func TestConstants(t *testing.T) {
	if math.Abs(InvE-0.36787944117144233) > 1e-15 {
		t.Errorf("InvE = %v", InvE)
	}
	// e/(2e-1) ≈ 0.612699...; the paper rounds it to 61%.
	if math.Abs(AONBound-math.E/(2*math.E-1)) > 1e-15 || AONBound < 0.61 || AONBound > 0.62 {
		t.Errorf("AONBound = %v", AONBound)
	}
}
