package numeric

import "math"

// Eps is the default comparison tolerance used throughout the float-based
// game engine. Costs are short sums of O(n) terms of moderate magnitude,
// so 1e-9 absolute-relative tolerance is comfortably safe; constructions
// that need more (the 3SAT-4 gadget) use the exact rational engine instead.
const Eps = 1e-9

// AlmostEqual reports whether a and b differ by at most Eps, scaled by
// magnitude for large values.
func AlmostEqual(a, b float64) bool {
	return AlmostEqualTol(a, b, Eps)
}

// AlmostEqualTol reports |a−b| ≤ tol·max(1, |a|, |b|).
func AlmostEqualTol(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= tol*scale
}

// LessEq reports a ≤ b up to tolerance (a may exceed b by at most
// Eps·scale). Equilibrium constraints are always checked with LessEq so
// that exact ties — ubiquitous in the paper's constructions — do not
// register as violations.
func LessEq(a, b float64) bool {
	return a <= b || AlmostEqual(a, b)
}

// Less reports a < b strictly beyond tolerance.
func Less(a, b float64) bool {
	return a < b && !AlmostEqual(a, b)
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// InvE is 1/e, the subsidy fraction of Theorems 6 and 11.
var InvE = 1 / math.E

// AONBound is e/(2e−1), the all-or-nothing lower-bound fraction of
// Theorem 21 (≈ 0.6127).
var AONBound = math.E / (2*math.E - 1)
