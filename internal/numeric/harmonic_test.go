package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHarmonicSmall(t *testing.T) {
	cases := []struct {
		n    int
		want float64
	}{
		{0, 0},
		{1, 1},
		{2, 1.5},
		{3, 1.0 + 0.5 + 1.0/3},
		{4, 1.0 + 0.5 + 1.0/3 + 0.25},
		{10, 2.9289682539682538},
	}
	for _, c := range cases {
		if got := Harmonic(c.n); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Harmonic(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestHarmonicMonotoneAndLogBound(t *testing.T) {
	prev := 0.0
	for n := 1; n <= 2000; n++ {
		h := Harmonic(n)
		if h <= prev {
			t.Fatalf("Harmonic not strictly increasing at n=%d", n)
		}
		// ln(n+1) < H_n ≤ ln(n) + 1
		if h <= math.Log(float64(n+1)) || h > math.Log(float64(n))+1 {
			t.Fatalf("Harmonic(%d)=%v violates log bounds", n, h)
		}
		prev = h
	}
}

func TestHarmonicNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative index")
		}
	}()
	Harmonic(-1)
}

func TestHarmonicDiff(t *testing.T) {
	for a := 0; a <= 50; a += 7 {
		for b := a; b <= a+300; b += 31 {
			want := Harmonic(b) - Harmonic(a)
			got := HarmonicDiff(a, b)
			if math.Abs(got-want) > 1e-10 {
				t.Errorf("HarmonicDiff(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

func TestHarmonicDiffPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for a > b")
		}
	}()
	HarmonicDiff(3, 2)
}

func TestHarmonicDiffProperty(t *testing.T) {
	// H_b − H_a computed by direct summation must match cached prefixes.
	f := func(a uint8, span uint8) bool {
		lo, hi := int(a), int(a)+int(span)
		return math.Abs(HarmonicDiff(lo, hi)-(Harmonic(hi)-Harmonic(lo))) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBypassLength(t *testing.T) {
	for kappa := 0; kappa <= 40; kappa++ {
		l := BypassLength(kappa)
		if HarmonicDiff(kappa, kappa+l) <= 1 {
			t.Errorf("kappa=%d: H diff at l=%d not > 1", kappa, l)
		}
		if l > 1 && HarmonicDiff(kappa, kappa+l-1) > 1 {
			t.Errorf("kappa=%d: l=%d not minimal", kappa, l)
		}
	}
	// The gadget length grows roughly like (e-1)·kappa.
	if l := BypassLength(100); l < 150 || l > 200 {
		t.Errorf("BypassLength(100) = %d, outside plausible (e-1)·kappa range", l)
	}
}

func BenchmarkHarmonic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Harmonic(10000)
	}
}
