// Package numeric provides small numerical utilities shared across the
// library: harmonic numbers (which govern cost shares in fair-cost-sharing
// games) and tolerance-aware float comparisons.
package numeric

import "sync"

// harmonicCache memoizes prefix harmonic numbers H_0..H_k so that repeated
// gadget constructions (which evaluate H at thousands of indices) stay cheap.
var harmonicCache = struct {
	sync.Mutex
	vals []float64 // vals[i] = H_i, vals[0] = 0
}{vals: []float64{0}}

// Harmonic returns the n-th harmonic number H_n = 1 + 1/2 + ... + 1/n.
// H_0 = 0. Negative n panics: callers index player counts, which are
// never negative.
func Harmonic(n int) float64 {
	if n < 0 {
		panic("numeric: Harmonic of negative index")
	}
	harmonicCache.Lock()
	defer harmonicCache.Unlock()
	for len(harmonicCache.vals) <= n {
		k := len(harmonicCache.vals)
		harmonicCache.vals = append(harmonicCache.vals, harmonicCache.vals[k-1]+1/float64(k))
	}
	return harmonicCache.vals[n]
}

// HarmonicDiff returns H_b − H_a = 1/(a+1) + ... + 1/b for 0 ≤ a ≤ b.
// This is the cost a player pays on a path whose edges are shared by
// a+1, a+2, ..., b players (the quantity driving the Bypass gadget).
func HarmonicDiff(a, b int) float64 {
	if a > b {
		panic("numeric: HarmonicDiff with a > b")
	}
	// Summing the small terms directly is more accurate than subtracting
	// two large cached prefixes when b-a is small.
	if b-a <= 64 {
		sum := 0.0
		for k := b; k > a; k-- {
			sum += 1 / float64(k)
		}
		return sum
	}
	return Harmonic(b) - Harmonic(a)
}

// BypassLength returns the minimum positive ℓ with H_{κ+ℓ} − H_κ > 1,
// the basic-path length of the paper's Bypass gadget (Figure 1).
func BypassLength(kappa int) int {
	if kappa < 0 {
		panic("numeric: BypassLength of negative capacity")
	}
	sum := 0.0
	for l := 1; ; l++ {
		sum += 1 / float64(kappa+l)
		if sum > 1 {
			return l
		}
	}
}
