// Package table holds the rendered-result type shared by the experiment
// registry and the sweep engine: an aligned plain-text/markdown table
// with free-form notes. It lives below both so the sweep engine can emit
// the exact tables internal/experiments renders without importing it.
package table

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's quantitative claim being reproduced
	Headers []string
	Rows    [][]string
	Notes   []string
}

// FormatCells renders row cells the way AddRow does: floats as %.4f,
// strings verbatim, everything else with %v. The sweep engine formats
// shard records with it so checkpointed rows are byte-identical to the
// ones a direct AddRow call would have produced.
func FormatCells(cells ...interface{}) []string {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	return row
}

// AddRow appends a row, formatting each cell with FormatCells.
func (t *Table) AddRow(cells ...interface{}) {
	t.Rows = append(t.Rows, FormatCells(cells...))
}

// Note appends a free-form observation under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper claim: %s\n", t.Claim)
	}
	// Column widths and padding count runes, not bytes: headers like
	// "PoS ≤" and placeholder cells like "—" must not shift columns.
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if n := utf8.RuneCountInString(cell); i < len(widths) && n > widths[i] {
				widths[i] = n
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = c + strings.Repeat(" ", widths[i]-utf8.RuneCountInString(c))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "*Paper claim:* %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note:* %s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}
