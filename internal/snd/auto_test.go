package snd

import (
	"errors"
	"fmt"
	"testing"

	"netdesign/internal/broadcast"
)

// TestHeuristicAutoMSTLPFirst: with a budget that covers the LP-optimal
// enforcement of the MST, the auto policy stops at MST+LP.
func TestHeuristicAutoMSTLPFirst(t *testing.T) {
	bg := cycleGame(t, 5)
	res, method, fellBack, err := HeuristicAuto(bg, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if method != MethodMSTLP || fellBack {
		t.Fatalf("method %q fellBack %v, want %q without fallback", method, fellBack, MethodMSTLP)
	}
	if err := Verify(bg, res, 2.0); err != nil {
		t.Error(err)
	}
}

// TestHeuristicAutoWrappedSentinelStillFallsBack is the regression test
// for the `err == ErrBudgetInfeasible` bug: when the MST+LP attempt
// reports infeasibility through a *wrapped* sentinel — exactly what any
// future error annotation produces — the Theorem-6 fallback must still
// fire. Before the errors.Is fix this silently disabled the fallback and
// surfaced the raw error.
func TestHeuristicAutoWrappedSentinelStillFallsBack(t *testing.T) {
	old := heuristicMSTLP
	heuristicMSTLP = func(bg *broadcast.Game, budget float64) (*Result, error) {
		return nil, fmt.Errorf("design service: mst+lp attempt: %w", ErrBudgetInfeasible)
	}
	defer func() { heuristicMSTLP = old }()

	// 5-cycle of unit edges: wgt(MST) = 4, so Theorem 6 costs 4/e ≈ 1.47
	// and a budget of 2 admits the fallback design.
	bg := cycleGame(t, 5)
	res, method, fellBack, err := HeuristicAuto(bg, 2.0)
	if err != nil {
		t.Fatalf("fallback did not rescue a wrapped sentinel: %v", err)
	}
	if method != MethodTheorem6 || !fellBack {
		t.Fatalf("method %q fellBack %v, want %q with fallback", method, fellBack, MethodTheorem6)
	}
	if err := Verify(bg, res, 2.0); err != nil {
		t.Error(err)
	}
}

// TestHeuristicAutoForeignErrorNotSwallowed: a failure that is not the
// budget sentinel must pass through untouched, fallback untried.
func TestHeuristicAutoForeignErrorNotSwallowed(t *testing.T) {
	old := heuristicMSTLP
	boom := errors.New("solver exploded")
	heuristicMSTLP = func(bg *broadcast.Game, budget float64) (*Result, error) {
		return nil, boom
	}
	defer func() { heuristicMSTLP = old }()

	_, _, fellBack, err := HeuristicAuto(cycleGame(t, 5), 2.0)
	if !errors.Is(err, boom) || fellBack {
		t.Fatalf("err %v fellBack %v, want the foreign error without fallback", err, fellBack)
	}
}
