package snd

import (
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

func TestParetoFrontierCycle(t *testing.T) {
	// The 5-cycle: balanced splits are free equilibria of MST weight, so
	// the frontier collapses to one point at budget 0.
	bg := cycleGame(t, 4)
	fr, err := ParetoFrontier(bg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr) != 1 || fr[0].Budget > 1e-9 || fr[0].Weight != 4 {
		t.Errorf("frontier = %+v", fr)
	}
}

func TestParetoFrontierShape(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.3, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		fr, err := ParetoFrontier(bg, 5000)
		if err == graph.ErrTooManyTrees {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(fr) == 0 {
			t.Fatal("empty frontier")
		}
		// Budgets strictly increase, weights strictly decrease.
		for i := 1; i < len(fr); i++ {
			if fr[i].Budget <= fr[i-1].Budget {
				t.Fatalf("trial %d: budgets not increasing: %+v", trial, fr)
			}
			if fr[i].Weight >= fr[i-1].Weight {
				t.Fatalf("trial %d: weights not decreasing: %+v", trial, fr)
			}
		}
		// The last point is the MST.
		mst, _ := graph.MST(g)
		if !numeric.AlmostEqual(fr[len(fr)-1].Weight, g.WeightOf(mst)) {
			t.Fatalf("trial %d: frontier does not end at the MST", trial)
		}
		// Every point agrees with SolveExact at its own budget.
		for _, p := range fr {
			res, err := SolveExact(bg, p.Budget+1e-9, 5000)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.AlmostEqualTol(res.Weight, p.Weight, 1e-7) {
				t.Fatalf("trial %d: frontier point (%v, %v) vs SolveExact %v",
					trial, p.Budget, p.Weight, res.Weight)
			}
		}
	}
}
