package snd

import (
	"math"
	"math/rand"
	"testing"

	"netdesign/internal/broadcast"
	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/reductions"
)

func cycleGame(t testing.TB, n int) *broadcast.Game {
	t.Helper()
	bg, err := broadcast.NewGame(graph.Cycle(n, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	return bg
}

func TestSolveExactZeroBudget(t *testing.T) {
	// The 5-cycle has equilibrium MSTs (balanced splits), so budget 0
	// must return weight 4 with zero subsidies.
	bg := cycleGame(t, 4)
	r, err := SolveExact(bg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Weight != 4 || r.SubsidyCost > 1e-9 {
		t.Errorf("result %+v", r)
	}
	if err := Verify(bg, r, 0); err != nil {
		t.Error(err)
	}
}

func TestSolveExactBudgetMonotone(t *testing.T) {
	// Larger budgets can only improve (weakly) the achievable weight.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		prev := math.Inf(1)
		for _, budget := range []float64{0, 0.25, 1, 4, 100} {
			r, err := SolveExact(bg, budget, 3000)
			if err == ErrBudgetInfeasible {
				continue
			}
			if err == graph.ErrTooManyTrees {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(bg, r, budget); err != nil {
				t.Fatalf("trial %d budget %v: %v", trial, budget, err)
			}
			if r.Weight > prev+1e-9 {
				t.Fatalf("trial %d: weight increased with budget (%v → %v)", trial, prev, r.Weight)
			}
			prev = r.Weight
		}
		// A big budget always reaches the MST weight.
		mst, _ := graph.MST(g)
		r, err := SolveExact(bg, g.TotalWeight(), 3000)
		if err != nil {
			continue
		}
		if !numeric.AlmostEqual(r.Weight, g.WeightOf(mst)) {
			t.Fatalf("trial %d: unlimited budget reached %v, MST is %v", trial, r.Weight, g.WeightOf(mst))
		}
	}
}

func TestHeuristicsAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		mst, _ := graph.MST(g)
		budget := g.WeightOf(mst) / math.E
		exact, exErr := SolveExact(bg, budget, 3000)
		h6, h6Err := HeuristicTheorem6(bg, budget)
		hlp, hlpErr := HeuristicMSTLP(bg, budget)
		// Theorem 6 heuristic is always feasible at budget = wgt(MST)/e.
		if h6Err != nil {
			t.Fatalf("trial %d: Theorem-6 heuristic failed at its own budget: %v", trial, h6Err)
		}
		if err := Verify(bg, h6, budget); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// LP heuristic is feasible too (LP optimum ≤ wgt/e) and no
		// costlier than Theorem 6.
		if hlpErr != nil {
			t.Fatalf("trial %d: MST-LP heuristic failed: %v", trial, hlpErr)
		}
		if hlp.SubsidyCost > h6.SubsidyCost+1e-7 {
			t.Fatalf("trial %d: LP enforcement costlier than Theorem 6", trial)
		}
		// Exact never returns a heavier design than the MST heuristics.
		if exErr == nil && exact.Weight > h6.Weight+1e-9 {
			t.Fatalf("trial %d: exact %v heavier than heuristic %v", trial, exact.Weight, h6.Weight)
		}
	}
}

func TestPoSIsOneMatchesBinPacking(t *testing.T) {
	// SND with B = 0 and K = wgt(MST) is the Theorem-3 question; on the
	// reduction gadget it equals bin-packing solvability. (The gadget's
	// tree space is too large to enumerate; instead test PoSIsOne on the
	// cycle where it is known, and the gadget via its own package.)
	bg := cycleGame(t, 4)
	ok, err := PoSIsOne(bg, 0)
	if err != nil || !ok {
		t.Errorf("5-cycle PoS=1: %v %v", ok, err)
	}
	// Theorem-11 style: the cycle always has PoS 1, so build a game
	// whose MSTs are all non-equilibria: the bin-packing gadget for an
	// unsolvable instance — but verified at the assignment level in
	// package gadgets. Here use a small crafted instance instead:
	// star-vs-path tension where the unique MST is not an equilibrium.
	g := graph.New(4)
	g.AddEdge(0, 1, 1)   // MST
	g.AddEdge(1, 2, 1)   // MST
	g.AddEdge(2, 3, 1)   // MST
	g.AddEdge(0, 3, 1.1) // escape edge: player 3 pays H_3 ≈ 1.83 > 1.1
	bg2, err := broadcast.NewGame(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok2, err := PoSIsOne(bg2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok2 {
		t.Error("unique non-equilibrium MST reported PoS = 1")
	}
}

func TestSolveExactInfeasibleAndErrors(t *testing.T) {
	bg := cycleGame(t, 5)
	if _, err := SolveExact(bg, -1, 0); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := SolveExact(bg, 0.001, 2); err != graph.ErrTooManyTrees {
		t.Errorf("tree limit not enforced: %v", err)
	}
	// The Theorem-11 path needs ≥ (n+1)/e − 2 > 0 subsidies for n = 5…
	// but other trees of the cycle are free equilibria, so exact SND is
	// feasible at 0. Heuristic infeasibility instead:
	st, err := gadgets.AONPathInstance(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := HeuristicMSTLP(st.BG, 1e-6); err != ErrBudgetInfeasible {
		t.Errorf("tiny budget should be infeasible for the AON path MST: %v", err)
	}
	if _, err := HeuristicTheorem6(st.BG, 1e-6); err != ErrBudgetInfeasible {
		t.Errorf("tiny budget should be infeasible for Theorem 6: %v", err)
	}
}

func TestVerifyCatchesLies(t *testing.T) {
	bg := cycleGame(t, 4)
	r, err := SolveExact(bg, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := *r
	bad.Weight += 1
	if err := Verify(bg, &bad, 10); err == nil {
		t.Error("wrong weight passed verification")
	}
	bad2 := *r
	bad2.SubsidyCost += 1
	if err := Verify(bg, &bad2, 10); err == nil {
		t.Error("wrong subsidy cost passed verification")
	}
	if err := Verify(bg, r, -5); err == nil {
		t.Error("budget overrun passed verification")
	}
}

// TestTheorem3GadgetSND runs exact SND on a tiny bin-packing gadget,
// confirming the Theorem-3 equivalence end to end through the SND layer:
// budget 0 reaches weight K iff the instance packs.
func TestTheorem3GadgetSND(t *testing.T) {
	if testing.Short() {
		t.Skip("gadget SND enumeration skipped in -short mode")
	}
	in := reductions.BinPacking{Sizes: []int{4, 2}, Bins: 1, Capacity: 6}
	bp, err := gadgets.BuildBinPack(in)
	if err != nil {
		t.Fatal(err)
	}
	// Assignment-level equivalence (tree enumeration on the full gadget
	// is out of reach: ℓ ≈ 11 path edges × bipartite choices).
	witness, ok := bp.HasEquilibriumMST()
	if !ok {
		t.Fatal("solvable instance has no equilibrium MST")
	}
	st, err := bp.StateForAssignment(witness)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.AlmostEqual(st.Weight(), bp.K) {
		t.Errorf("equilibrium weight %v ≠ K %v", st.Weight(), bp.K)
	}
}
