// Package snd tackles STABLE NETWORK DESIGN, the paper's second
// optimization problem: given a broadcast game and a subsidy budget B,
// find a minimum-weight network that some subsidy assignment of cost ≤ B
// enforces as an equilibrium. Theorem 3 proves the problem NP-hard even
// with B = 0, so this package offers an exact solver for small instances
// (spanning-tree enumeration × the SNE LP, fanned out over a worker pool)
// and two polynomial heuristics the paper's discussion motivates: the
// trivial MST + Theorem-6 construction (always feasible when B ≥
// wgt(MST)/e) and MST + LP (feasible whenever the MST's optimal
// enforcement fits the budget).
package snd

import (
	"errors"
	"fmt"
	"math"

	"netdesign/internal/broadcast"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/parallel"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// Result is a design: a tree, the subsidies enforcing it, and both costs.
type Result struct {
	Tree        []int
	Weight      float64 // wgt(T) — the social cost being minimized
	Subsidy     game.Subsidy
	SubsidyCost float64
}

// ErrBudgetInfeasible is returned when no candidate design fits budget B.
// With fractional subsidies this can only happen for heuristics: the
// exact solver always finds the fully-subsidized MST when B ≥ wgt(MST).
// Callers deciding on a fallback must match it with errors.Is — the
// sentinel may arrive wrapped.
var ErrBudgetInfeasible = errors.New("snd: no design enforceable within budget")

// Method names reported by HeuristicAuto (and the serving layer) for
// which solver produced a design.
const (
	MethodExact    = "exact"
	MethodMSTLP    = "mst+lp"
	MethodTheorem6 = "theorem6"
)

// heuristicMSTLP indirects HeuristicAuto's first attempt so the
// regression suite can hand back a *wrapped* ErrBudgetInfeasible and
// prove the Theorem-6 fallback still fires.
var heuristicMSTLP = HeuristicMSTLP

// HeuristicAuto is the polynomial design policy the snd CLI and the sned
// server share: try MST+LP (optimal enforcement of the MST), and when the
// budget cannot even cover that, fall back to the Theorem-6 construction
// (feasible whenever B ≥ wgt(MST)/e). The infeasibility sentinel is
// matched with errors.Is so wrapped errors keep triggering the fallback.
// fellBack reports that the fallback was attempted — diagnostics belong
// on stderr (or a log), never on machine-readable stdout.
func HeuristicAuto(bg *broadcast.Game, budget float64) (res *Result, method string, fellBack bool, err error) {
	res, err = heuristicMSTLP(bg, budget)
	if err == nil {
		return res, MethodMSTLP, false, nil
	}
	if !errors.Is(err, ErrBudgetInfeasible) {
		return nil, "", false, err
	}
	res, err = HeuristicTheorem6(bg, budget)
	if err != nil {
		return nil, "", true, err
	}
	return res, MethodTheorem6, true, nil
}

// SolveExact enumerates every spanning tree (error beyond treeLimit;
// ≤ 0 means unlimited), solves the SNE LP for each in parallel, and
// returns the minimum-weight tree whose optimal enforcement cost is ≤ B.
// Ties on weight are broken toward cheaper subsidies.
func SolveExact(bg *broadcast.Game, budget float64, treeLimit int) (*Result, error) {
	if budget < 0 {
		return nil, fmt.Errorf("snd: negative budget %v", budget)
	}
	var trees [][]int
	if _, err := graph.EnumerateSpanningTrees(bg.G, treeLimit, func(tr []int) bool {
		trees = append(trees, tr)
		return true
	}); err != nil {
		return nil, err
	}
	type cand struct {
		res *Result
		err error
	}
	cands := parallel.Map(trees, 0, func(tr []int) cand {
		st, err := broadcast.NewState(bg, tr)
		if err != nil {
			return cand{err: err}
		}
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return cand{err: err}
		}
		return cand{res: &Result{
			Tree:        tr,
			Weight:      st.Weight(),
			Subsidy:     lp.Subsidy,
			SubsidyCost: lp.Cost,
		}}
	})
	var best *Result
	for _, c := range cands {
		if c.err != nil {
			return nil, c.err
		}
		if c.res.SubsidyCost > budget+1e-9*(1+budget) {
			continue
		}
		if best == nil || c.res.Weight < best.Weight-1e-12 ||
			(math.Abs(c.res.Weight-best.Weight) <= 1e-12 && c.res.SubsidyCost < best.SubsidyCost) {
			best = c.res
		}
	}
	if best == nil {
		return nil, ErrBudgetInfeasible
	}
	return best, nil
}

// HeuristicMSTLP proposes the MST enforced by its LP-optimal subsidies —
// the natural polynomial-time design. It fails only when even the
// cheapest enforcement of the MST exceeds the budget (in which case a
// heavier tree might still fit: that trade-off is exactly what makes SND
// hard).
func HeuristicMSTLP(bg *broadcast.Game, budget float64) (*Result, error) {
	mst, err := bg.MST()
	if err != nil {
		return nil, err
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		return nil, err
	}
	lp, err := sne.SolveBroadcastLP(st)
	if err != nil {
		return nil, err
	}
	if lp.Cost > budget+1e-9*(1+budget) {
		return nil, ErrBudgetInfeasible
	}
	return &Result{Tree: mst, Weight: st.Weight(), Subsidy: lp.Subsidy, SubsidyCost: lp.Cost}, nil
}

// HeuristicTheorem6 proposes the MST enforced by the Theorem-6
// construction: cost exactly wgt(MST)/e, so it fits any budget of at
// least that — the paper's universal guarantee (its Section 6 notes the
// answer to budgeted SND is "clearly positive if α ≥ 1/e").
func HeuristicTheorem6(bg *broadcast.Game, budget float64) (*Result, error) {
	mst, err := bg.MST()
	if err != nil {
		return nil, err
	}
	st, err := broadcast.NewState(bg, mst)
	if err != nil {
		return nil, err
	}
	b, cert, err := subsidy.Enforce(st)
	if err != nil {
		return nil, err
	}
	if cert.Total > budget+1e-9*(1+budget) {
		return nil, ErrBudgetInfeasible
	}
	return &Result{Tree: mst, Weight: st.Weight(), Subsidy: b, SubsidyCost: cert.Total}, nil
}

// PoSIsOne decides whether the game's price of stability is exactly 1 —
// i.e. whether some MST is an equilibrium without subsidies. This is the
// question Theorem 3 proves NP-hard; the implementation is the honest
// exponential check via tree enumeration.
func PoSIsOne(bg *broadcast.Game, treeLimit int) (bool, error) {
	ok, _, err := broadcast.MSTEquilibrium(bg, treeLimit)
	return ok, err
}

// Verify confirms a Result: the tree spans, the subsidies are valid and
// within the stated cost, and the extension has the tree as equilibrium.
func Verify(bg *broadcast.Game, r *Result, budget float64) error {
	st, err := broadcast.NewState(bg, r.Tree)
	if err != nil {
		return err
	}
	if err := sne.VerifyBroadcast(st, r.Subsidy); err != nil {
		return err
	}
	if got := r.Subsidy.Cost(); math.Abs(got-r.SubsidyCost) > 1e-6*(1+got) {
		return fmt.Errorf("snd: stated subsidy cost %v ≠ actual %v", r.SubsidyCost, got)
	}
	if r.SubsidyCost > budget+1e-6*(1+budget) {
		return fmt.Errorf("snd: subsidy cost %v exceeds budget %v", r.SubsidyCost, budget)
	}
	if math.Abs(st.Weight()-r.Weight) > 1e-6*(1+st.Weight()) {
		return fmt.Errorf("snd: stated weight %v ≠ actual %v", r.Weight, st.Weight())
	}
	return nil
}
