package snd

import (
	"sort"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/parallel"
	"netdesign/internal/sne"
)

// ParetoPoint is one breakpoint of the budget→weight tradeoff: with a
// subsidy budget of at least Budget, a stable design of weight Weight
// (and no lighter one) becomes available.
type ParetoPoint struct {
	Budget float64
	Weight float64
	Tree   []int
}

// ParetoFrontier computes the exact budget–weight tradeoff of STABLE
// NETWORK DESIGN for a broadcast game: for every spanning tree the
// LP-optimal enforcement cost is computed (in parallel), and the lower
// staircase of (cost, weight) pairs is returned in increasing-budget
// order. The first point is the best design enforceable for free; the
// last is the minimum spanning tree. Exponential in instance size via
// tree enumeration (treeLimit ≤ 0 means unlimited).
func ParetoFrontier(bg *broadcast.Game, treeLimit int) ([]ParetoPoint, error) {
	var trees [][]int
	if _, err := graph.EnumerateSpanningTrees(bg.G, treeLimit, func(tr []int) bool {
		trees = append(trees, tr)
		return true
	}); err != nil {
		return nil, err
	}
	type pair struct {
		cost, weight float64
		tree         []int
		err          error
	}
	pairs := parallel.Map(trees, 0, func(tr []int) pair {
		st, err := broadcast.NewState(bg, tr)
		if err != nil {
			return pair{err: err}
		}
		res, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return pair{err: err}
		}
		return pair{cost: res.Cost, weight: st.Weight(), tree: tr}
	})
	for _, p := range pairs {
		if p.err != nil {
			return nil, p.err
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].cost != pairs[j].cost {
			return pairs[i].cost < pairs[j].cost
		}
		return pairs[i].weight < pairs[j].weight
	})
	var frontier []ParetoPoint
	bestW := -1.0
	for _, p := range pairs {
		if bestW < 0 || p.weight < bestW-1e-12 {
			bestW = p.weight
			frontier = append(frontier, ParetoPoint{Budget: p.cost, Weight: p.weight, Tree: p.tree})
		}
	}
	return frontier, nil
}
