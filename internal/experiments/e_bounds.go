package experiments

import (
	"math"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
	"netdesign/internal/subsidy"
)

// RunE5Theorem6 reproduces Theorem 6: the construction enforces any MST
// at exactly wgt(T)/e ≈ 37% (unit multiplicities), with the LP optimum at
// or below that universal bound.
func RunE5Theorem6(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E5",
		Title:   "Theorem-6 construction vs LP optimum on random MSTs",
		Claim:   "Theorem 6: subsidies of wgt(T)/e ≈ 0.3679·wgt(T) always suffice",
		Headers: []string{"n", "wgt(T)", "T6 cost", "T6 frac", "LP cost", "LP frac", "enforced"},
	}
	sizes := []int{6, 10, 16, 24, 40}
	if cfg.Quick {
		sizes = []int{6, 10}
	}
	for _, n := range sizes {
		g := graph.RandomConnected(rng, n, 0.3, 0.5, 3)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		b6, cert, err := subsidy.Enforce(st)
		if err != nil {
			return nil, err
		}
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return nil, err
		}
		enforced := st.IsEquilibrium(b6) && st.IsEquilibrium(lp.Subsidy)
		tb.AddRow(n, st.Weight(), cert.Total, cert.Total/st.Weight(),
			lp.Cost, lp.Cost/st.Weight(), enforced)
	}
	tb.Note("T6 frac is exactly 1/e = %.6f on every instance (unit multiplicities)", numeric.InvE)
	return tb, nil
}

// RunE5bFigure4 regenerates the data behind Figure 4: a path whose heavy
// edges carry m = 1..6 heavy players, with subsidies packed on the least
// crowded edges so the virtual cost of the full path is exactly c.
func RunE5bFigure4(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E5b",
		Title:   "Packed subsidies on a 6-heavy-edge path (c = 1)",
		Claim:   "Figure 4 / Claim 10: vc(q,y) = c·ln(t/(t−|q'|+y(q)/c)); packing 1.6c of subsidies leaves vc = ln(6/1.6)",
		Headers: []string{"edge (by m)", "m", "subsidy y", "vc(a,y)", "cum vc"},
	}
	// Figure 4: ∪{m_a} = {1..6}; the leftmost edge (m=1) fully
	// subsidized and 60% of the m=2 edge — total y(q) = 1.6c.
	c := 1.0
	subs := []float64{1.0, 0.6, 0, 0, 0, 0}
	cum := 0.0
	for i := 0; i < 6; i++ {
		m := int64(i + 1)
		vc := subsidy.VirtualCost(m, subs[i]*c, c)
		cum += vc
		tb.AddRow(i+1, m, subs[i]*c, vc, cum)
	}
	want := c * math.Log(6.0/1.6)
	tb.Note("cumulative vc = %.6f; Claim 10 closed form c·ln(6/1.6) = %.6f (match: %v)",
		cum, want, numeric.AlmostEqualTol(cum, want, 1e-9))
	return tb, nil
}

// RunE6CycleLB reproduces Theorem 11: on the unit cycle, the minimum
// subsidies enforcing the path tree approach wgt(T)/e from below, pinched
// between the analytic lower bound (n+1)/e − 2 and the Theorem-6 upper
// bound n/e.
func RunE6CycleLB(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E6",
		Title:   "Cycle lower bound: LP-optimal subsidy fraction → 1/e",
		Claim:   "Theorem 11: some instances need (1/e − ε)·wgt(T); together with Theorem 6 the 1/e bound is tight",
		Headers: []string{"n", "LP cost", "lower (n+1)/e−2", "upper n/e", "fraction", "1/e − fraction"},
	}
	sizes := []int{8, 16, 32, 64, 128, 256}
	if cfg.Quick {
		sizes = []int{8, 16, 32}
	}
	for _, n := range sizes {
		st, err := gadgets.CycleInstance(n)
		if err != nil {
			return nil, err
		}
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return nil, err
		}
		frac := lp.Cost / st.Weight()
		tb.AddRow(n, lp.Cost, gadgets.CycleLowerBound(n), float64(n)/math.E,
			frac, numeric.InvE-frac)
	}
	tb.Note("fraction increases toward 1/e = %.6f as n grows", numeric.InvE)
	return tb, nil
}

// RunE8AONPath reproduces Theorem 21: the exact all-or-nothing optimum on
// the two-shortcut path approaches e/(2e−1) ≈ 61.3% of wgt(T).
func RunE8AONPath(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E8",
		Title:   "All-or-nothing lower bound on the Theorem-21 path",
		Claim:   "Theorem 21: all-or-nothing enforcement may need (e/(2e−1) − ε)·wgt(T) ≈ 0.6127·wgt(T)",
		Headers: []string{"n", "wgt(T)", "AON cost", "fraction", "fractional LP", "LP frac"},
	}
	sizes := []int{6, 10, 14, 18, 22}
	if cfg.Quick {
		sizes = []int{6, 10}
	}
	for _, n := range sizes {
		st, err := gadgets.AONPathInstance(n)
		if err != nil {
			return nil, err
		}
		aon, err := sne.SolveAON(st, sne.AONOptions{})
		if err != nil {
			return nil, err
		}
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, st.Weight(), aon.Cost, aon.Cost/st.Weight(), lp.Cost, lp.Cost/st.Weight())
	}
	tb.Note("AON fraction approaches e/(2e−1) = %.6f; the fractional optimum stays below 1/e = %.6f",
		numeric.AONBound, numeric.InvE)
	return tb, nil
}

// RunE10Gap contrasts Section 4 with Section 5: fractional enforcement
// never needs more than 36.8% of wgt(T), while all-or-nothing may need
// 61.3% — measured as the AON/LP ratio across instance families.
func RunE10Gap(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E10",
		Title:   "Integrality gap of all-or-nothing subsidies",
		Claim:   "Sections 4–5: fractional ≤ wgt/e (37%) but all-or-nothing up to e/(2e−1) (61%)",
		Headers: []string{"instance", "wgt(T)", "LP frac", "AON frac", "AON/LP"},
	}
	add := func(name string, st *broadcast.State) error {
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return err
		}
		aon, err := sne.SolveAON(st, sne.AONOptions{})
		if err != nil {
			return err
		}
		ratio := math.Inf(1)
		if lp.Cost > 1e-12 {
			ratio = aon.Cost / lp.Cost
		} else if aon.Cost <= 1e-12 {
			ratio = 1
		}
		tb.AddRow(name, st.Weight(), lp.Cost/st.Weight(), aon.Cost/st.Weight(), ratio)
		return nil
	}
	cyc, err := gadgets.CycleInstance(14)
	if err != nil {
		return nil, err
	}
	if err := add("cycle-14", cyc); err != nil {
		return nil, err
	}
	pth, err := gadgets.AONPathInstance(14)
	if err != nil {
		return nil, err
	}
	if err := add("t21-path-14", pth); err != nil {
		return nil, err
	}
	trials := 4
	if cfg.Quick {
		trials = 2
	}
	for k := 0; k < trials; k++ {
		n := 6 + rng.Intn(5)
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		if err := add("random", st); err != nil {
			return nil, err
		}
	}
	return tb, nil
}
