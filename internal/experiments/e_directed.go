package experiments

import (
	"math/rand"

	"netdesign/internal/directed"
	"netdesign/internal/game"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// RunE18DirectedHn reproduces the context the paper builds on: in
// DIRECTED games the H_n price-of-stability bound of Anshelevich et al.
// is tight. On the classic relay instance the unique equilibrium costs
// H_n against an optimum of 1+ε — and the directed SNE solver shows that
// a subsidy of exactly ε rescues the optimum, a vanishing fraction (the
// sharp contrast with the undirected 1/e regime of Theorems 6/11).
func RunE18DirectedHn(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E18",
		Title:   "Directed games: H_n tightness and cheap enforcement",
		Claim:   "Context (§1): the H_n PoS bound is tight for directed networks only; the paper's LP approach adapts easily to digraphs",
		Headers: []string{"n", "OPT", "equilibrium cost", "ratio", "H_n", "SNE cost", "SNE fraction"},
	}
	eps := 0.01
	sizes := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		sizes = []int{2, 4, 8}
	}
	for _, n := range sizes {
		inst, err := directed.NewHnInstance(n, eps)
		if err != nil {
			return nil, err
		}
		opt, err := inst.OptState()
		if err != nil {
			return nil, err
		}
		direct, err := inst.DirectState()
		if err != nil {
			return nil, err
		}
		if opt.IsEquilibrium(nil) || !direct.IsEquilibrium(nil) {
			return nil, errInstanceBroken
		}
		_, cost, err := directed.SolveSNE(opt, 0)
		if err != nil {
			return nil, err
		}
		tb.AddRow(n, opt.EstablishedWeight(), direct.EstablishedWeight(),
			direct.EstablishedWeight()/opt.EstablishedWeight(), numeric.Harmonic(n),
			cost, cost/opt.EstablishedWeight())
	}
	tb.Note("ε = %.2f; the equilibrium/OPT ratio tracks H_n/(1+ε) exactly, while ε of subsidies enforces OPT", eps)
	return tb, nil
}

var errInstanceBroken = errInstance("directed instance invariant broken")

type errInstance string

func (e errInstance) Error() string { return string(e) }

// RunE19Arrival replays the online-arrival process of the multicast
// papers the related work cites (Charikar et al., Chekuri et al.):
// players enter one by one playing best responses against the current
// network, then best-response rounds run to equilibrium. Those papers
// prove polylogarithmic cost guarantees for the reached equilibria; the
// experiment measures the realized quality against OPT and H_n.
func RunE19Arrival(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E19",
		Title:   "Online arrival + best-response convergence",
		Claim:   "Related work [12,13]: arrival-then-converge equilibria have polylog quality",
		Headers: []string{"n", "players", "arrival cost", "final cost", "OPT", "final/OPT", "H_n bound"},
	}
	trials := 6
	if cfg.Quick {
		trials = 3
	}
	for k := 0; k < trials; k++ {
		n := 5 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.45, 0.3, 2)
		var terms []game.Terminal
		for v := 1; v < n; v++ {
			terms = append(terms, game.Terminal{S: v, T: 0})
		}
		gm, err := game.New(g, terms)
		if err != nil {
			return nil, err
		}
		// Arrival phase: player i best-responds against players < i.
		var paths [][]int
		for i := range terms {
			partial, err := game.New(g, terms[:i+1])
			if err != nil {
				return nil, err
			}
			var st *game.State
			if i == 0 {
				sp := graph.Dijkstra(g, terms[0].S, nil)
				paths = append(paths, sp.PathTo(terms[0].T))
				continue
			}
			// Build the state of the first i players plus a provisional
			// path for the newcomer, then replace it with her BR.
			provisional := graph.Dijkstra(g, terms[i].S, nil).PathTo(terms[i].T)
			st, err = game.NewState(partial, append(append([][]int{}, paths...), provisional))
			if err != nil {
				return nil, err
			}
			br, _ := st.BestResponse(i, nil)
			if br == nil {
				br = provisional
			}
			paths = append(paths, br)
		}
		arrivalState, err := game.NewState(gm, paths)
		if err != nil {
			return nil, err
		}
		arrivalCost := arrivalState.EstablishedWeight()
		// Convergence phase.
		res, err := game.BestResponseDynamics(arrivalState, nil, game.RoundRobin, nil, 0)
		if err != nil {
			return nil, err
		}
		finalCost := res.Final.EstablishedWeight()
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		opt := g.WeightOf(mst)
		tb.AddRow(n, len(terms), arrivalCost, finalCost, opt, finalCost/opt,
			numeric.Harmonic(len(terms)))
	}
	tb.Note("final/OPT stayed far below H_n on every instance, consistent with the cited polylog bounds")
	return tb, nil
}
