package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the testdata golden files")

// goldenIDs is the deterministic registry subset pinned by golden files:
// experiments whose quick-mode tables depend only on the seed (no
// wall-clock), so a byte diff means a real formatting or computation
// regression. E9/E20/E21 also pin the sweep-scenario output shape end to
// end; E1 and E11 pin the sparse revised-simplex LP rebase byte for byte
// (E1 reports deterministic pivot counts in place of its old wall-clock
// columns exactly so it can live here).
var goldenIDs = []string{"E1", "E2", "E5b", "E6", "E8", "E9", "E11", "E20", "E21", "E22"}

// TestGoldenTables renders each pinned experiment at a fixed quick-mode
// config and compares byte-for-byte against testdata/<ID>.golden.
// Regenerate with:
//
//	go test ./internal/experiments -run TestGoldenTables -update
func TestGoldenTables(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, id := range goldenIDs {
		id := id
		t.Run(id, func(t *testing.T) {
			e, ok := Get(id)
			if !ok {
				t.Fatalf("experiment %s not registered", id)
			}
			tb, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			tb.Render(&buf)
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output differs from golden %s:\n--- got ---\n%s--- want ---\n%s",
					id, path, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenTablesStable guards the guard: a second render must be
// byte-identical to the first, or the goldens themselves would flake.
func TestGoldenTablesStable(t *testing.T) {
	cfg := Config{Seed: 1, Quick: true}
	for _, id := range goldenIDs {
		e, _ := Get(id)
		a, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var ba, bb bytes.Buffer
		a.Render(&ba)
		b.Render(&bb)
		if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
			t.Errorf("%s renders nondeterministically", id)
		}
	}
}
