package experiments

import (
	"fmt"

	"netdesign/internal/gadgets"
	"netdesign/internal/reductions"
)

// RunE7SAT reproduces Theorem 12 / Figures 5–7: on the 3SAT-4 reduction
// graph, a light (unit-edge-only) all-or-nothing assignment enforcing the
// canonical MST exists iff the formula is satisfiable, and costs exactly
// 3|C| against heavy edges of weight ≥ K. Each formula is checked by
// exhausting truth assignments in exact rational arithmetic.
func RunE7SAT(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E7",
		Title:   "3SAT-4 reduction: light enforcement ⟺ satisfiability",
		Claim:   "Theorem 12 / Corollary 20: all-or-nothing SNE is NP-hard to approximate within any factor",
		Headers: []string{"formula", "|C|", "sat (brute)", "light enforce", "match", "light cost", "K"},
	}
	formulas := []struct {
		name string
		f    *reductions.Formula
	}{
		{"(x0∨¬x1∨x2)", &reductions.Formula{NumVars: 3, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1, Neg: true}, {Var: 2}},
		}}},
		{"chain-share-x0 (ℓ-ℓ)", &reductions.Formula{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0}, {Var: 3}, {Var: 4}},
		}}},
		{"chain-share-x0 (ℓ-ℓ̄)", &reductions.Formula{NumVars: 5, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 3}, {Var: 4}},
		}}},
		{"forcing pair", &reductions.Formula{NumVars: 4, Clauses: []reductions.Clause{
			{{Var: 0}, {Var: 1}, {Var: 2}},
			{{Var: 0, Neg: true}, {Var: 1, Neg: true}, {Var: 3}},
		}}},
	}
	if cfg.Quick {
		formulas = formulas[:2]
	}
	allMatch := true
	for _, fc := range formulas {
		_, satisfiable := fc.f.SolveBrute()
		sg, err := gadgets.BuildSAT(fc.f, nil)
		if err != nil {
			return nil, err
		}
		st, err := sg.State()
		if err != nil {
			return nil, err
		}
		// Light enforcement exists iff some truth assignment's consistent
		// balanced light subsidy enforces T (Lemmas 14/16/17 prove these
		// are the only light candidates).
		enforce := false
		assign := make([]bool, fc.f.NumVars)
		for mask := 0; mask < 1<<fc.f.NumVars && !enforce; mask++ {
			for v := range assign {
				assign[v] = mask&(1<<v) != 0
			}
			if st.IsEquilibrium(sg.SubsidyForAssignment(assign)) {
				enforce = true
			}
		}
		match := satisfiable == enforce
		allMatch = allMatch && match
		kf, _ := sg.K.Float64()
		tb.AddRow(fc.name, len(fc.f.Clauses), satisfiable, enforce, match,
			fmt.Sprintf("%d", 3*len(fc.f.Clauses)), kf)
	}
	tb.Note("gadget constants n_j = 4·n_{j+1}², n_9 = 7 (n_1 ≈ 10^369) via exact big-rational arithmetic")
	tb.Note("equivalence holds on every formula: %v", allMatch)
	return tb, nil
}
