package experiments

import (
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
)

// RunE9PoS maps the price-of-stability landscape the paper's introduction
// builds on: on random broadcast games small enough for exhaustive
// spanning-tree enumeration, the measured PoS always sits within the
// Anshelevich et al. H_n bound (and far below it, consistent with the
// O(log log n) upper and 1.818 lower bounds the paper cites for
// broadcast games).
func RunE9PoS(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E9",
		Title:   "Exact PoS of random broadcast games (tree enumeration)",
		Claim:   "Context (§1): PoS ≤ H_n in general; best known broadcast bounds are [1.818, O(log log n)]",
		Headers: []string{"n", "trees", "equilibria", "OPT", "best eq", "PoS", "H_n bound", "within"},
	}
	trials := 8
	if cfg.Quick {
		trials = 3
	}
	maxPoS := 1.0
	for k := 0; k < trials; k++ {
		n := 4 + rng.Intn(4)
		g := graph.RandomConnected(rng, n, 0.45, 0.3, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		a, err := broadcast.AnalyzeTrees(bg, nil, 20000)
		if err == graph.ErrTooManyTrees {
			continue
		}
		if err != nil {
			return nil, err
		}
		if a.Equilibria == 0 {
			// Possible over tree states only when the best equilibria use
			// non-tree states with zero-weight cycles; none here (weights
			// are positive), so flag it.
			tb.Note("n=%d: no spanning-tree equilibrium found (unexpected for positive weights)", n)
			continue
		}
		hn := numeric.Harmonic(int(bg.NumPlayers()))
		pos := a.PoS()
		if pos > maxPoS {
			maxPoS = pos
		}
		tb.AddRow(n, a.Trees, a.Equilibria, a.OptWeight, a.BestEq, pos, hn, pos <= hn+1e-9)
	}
	tb.Note("maximum PoS observed: %.4f (paper's broadcast lower bound: 1.818)", maxPoS)
	return tb, nil
}
