package experiments

import (
	"netdesign/internal/sweep"
)

// RunE9PoS maps the price-of-stability landscape the paper's introduction
// builds on: on random broadcast games small enough for exhaustive
// spanning-tree enumeration, the measured PoS always sits within the
// Anshelevich et al. H_n bound (and far below it, and within the
// Mamageishvili–Mihalák–Montemezzani H_{n/2}-style refinement the table
// also reports). The instance family lives in the sweep registry
// ("pos-trees"), so the same experiment fans out over checkpointed
// shards via cmd/sweep with bit-identical output.
func RunE9PoS(cfg Config) (*Table, error) {
	return sweep.RunTable(E9Spec(cfg), 1)
}

// E9Spec is the sweep spec RunE9PoS executes serially: the single
// source of truth for the E9 instance family, shared with cmd/sweep.
func E9Spec(cfg Config) sweep.Spec {
	count := 8
	if cfg.Quick {
		count = 3
	}
	return sweep.Spec{Scenario: "pos-trees", Seed: cfg.seed(), Count: count, Size: 4}
}
