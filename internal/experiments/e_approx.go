package experiments

import (
	"netdesign/internal/gadgets"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
)

// RunE14ApproxTradeoff maps the subsidy-vs-stability tradeoff: how much
// cheaper enforcement becomes when the designer settles for α-approximate
// equilibria (the relaxation of Albers–Lenzner, cited in the paper's
// related work). On the Theorem-11 cycle, the requirement interpolates
// from the Nash optimum at α = 1 down to zero at α = H_n, the tree's
// intrinsic stability factor.
func RunE14ApproxTradeoff(cfg Config) (*Table, error) {
	n := 32
	if cfg.Quick {
		n = 16
	}
	st, err := gadgets.CycleInstance(n)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:      "E14",
		Title:   "Subsidies for α-approximate stability (Theorem-11 cycle)",
		Claim:   "Extension: enforcing α-approximate equilibria is an LP; cost falls to 0 at α = H_n",
		Headers: []string{"α", "min subsidies", "fraction of wgt(T)", "α-enforced"},
	}
	sf := sne.StabilityFactor(st)
	alphas := []float64{1, 1.2, 1.5, 2, 2.5, 3, sf}
	for _, alpha := range alphas {
		r, err := sne.SolveBroadcastLPApprox(st, alpha)
		if err != nil {
			return nil, err
		}
		tb.AddRow(alpha, r.Cost, r.Cost/st.Weight(), sne.IsApproxEquilibrium(st, r.Subsidy, alpha))
	}
	tb.Note("n = %d; the tree's intrinsic stability factor is H_n = %.4f — enforcement is free there",
		n, numeric.Harmonic(n))
	return tb, nil
}
