package experiments

import (
	"math"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
)

// The experiments in this file go beyond the paper's published results
// into its Section-6 open problems: a combinatorial SNE algorithm (E11),
// the conjecture that e/(2e−1) is the right all-or-nothing ceiling (E12),
// and coalition deviations (E13).

// RunE11WaterFill measures the combinatorial water-filling heuristic —
// least-crowded-first packing driven directly by the Lemma-2 rows —
// against the LP optimum.
func RunE11WaterFill(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E11",
		Title:   "Combinatorial SNE (water-filling) vs LP optimum",
		Claim:   "Open problem (§6): design a combinatorial algorithm for SNE; Lemma 2 may help",
		Headers: []string{"instance", "wgt(T)", "LP cost", "waterfill cost", "ratio", "enforces"},
	}
	worst := 1.0
	// One pooled workspace across the whole family: instance-to-instance
	// the heuristic allocates only its result.
	ws := sne.NewWaterFillWorkspace()
	add := func(name string, st *broadcast.State) error {
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return err
		}
		wf, err := sne.WaterFillWith(st, ws)
		if err != nil {
			return err
		}
		ratio := 1.0
		if lp.Cost > 1e-9 {
			ratio = wf.Cost / lp.Cost
		}
		if ratio > worst {
			worst = ratio
		}
		tb.AddRow(name, st.Weight(), lp.Cost, wf.Cost, ratio,
			st.IsEquilibrium(wf.Subsidy))
		return nil
	}
	for _, n := range []int{16, 64} {
		st, err := gadgets.CycleInstance(n)
		if err != nil {
			return nil, err
		}
		if err := add("cycle", st); err != nil {
			return nil, err
		}
	}
	pth, err := gadgets.AONPathInstance(16)
	if err != nil {
		return nil, err
	}
	if err := add("t21-path", pth); err != nil {
		return nil, err
	}
	trials := 5
	if cfg.Quick {
		trials = 2
	}
	for k := 0; k < trials; k++ {
		n := 6 + rng.Intn(8)
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		if err := add("random", st); err != nil {
			return nil, err
		}
	}
	tb.Note("worst waterfill/LP ratio observed: %.4f (optimal on the cycle family)", worst)
	return tb, nil
}

// RunE12AONConjecture tests the paper's closing conjecture empirically:
// "there is an algorithm that always uses a fraction of at most e/(2e−1)
// of the weight of the minimum spanning tree as [all-or-nothing]
// subsidies". The exact AON optimum is computed on adversarial and random
// MST instances; the conjecture predicts every fraction stays ≤ 0.6127.
func RunE12AONConjecture(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E12",
		Title:   "Testing the e/(2e−1) conjecture for all-or-nothing subsidies",
		Claim:   "Conjecture (§6): AON enforcement of an MST never needs more than e/(2e−1)·wgt(T) ≈ 0.6127",
		Headers: []string{"family", "instances", "max AON fraction", "mean fraction", "≤ e/(2e−1)"},
	}
	bound := numeric.AONBound
	runFamily := func(name string, states []*broadcast.State) error {
		maxFrac, sum := 0.0, 0.0
		for _, st := range states {
			res, err := sne.SolveAON(st, sne.AONOptions{})
			if err != nil {
				return err
			}
			frac := res.Cost / st.Weight()
			sum += frac
			if frac > maxFrac {
				maxFrac = frac
			}
		}
		tb.AddRow(name, len(states), maxFrac, sum/float64(len(states)), maxFrac <= bound+1e-9)
		return nil
	}

	var cycles []*broadcast.State
	cycleSizes := []int{6, 10, 14, 18}
	if cfg.Quick {
		cycleSizes = []int{6, 10}
	}
	for _, n := range cycleSizes {
		st, err := gadgets.CycleInstance(n)
		if err != nil {
			return nil, err
		}
		cycles = append(cycles, st)
	}
	if err := runFamily("t11-cycles", cycles); err != nil {
		return nil, err
	}

	var paths []*broadcast.State
	pathSizes := []int{6, 10, 14, 18}
	if cfg.Quick {
		pathSizes = []int{6, 10}
	}
	for _, n := range pathSizes {
		st, err := gadgets.AONPathInstance(n)
		if err != nil {
			return nil, err
		}
		paths = append(paths, st)
	}
	if err := runFamily("t21-paths", paths); err != nil {
		return nil, err
	}

	var randoms []*broadcast.State
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	for k := 0; k < trials; k++ {
		n := 5 + rng.Intn(8)
		g := graph.RandomConnected(rng, n, 0.4, 0.3, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		randoms = append(randoms, st)
	}
	if err := runFamily("random-MSTs", randoms); err != nil {
		return nil, err
	}
	tb.Note("conjectured ceiling e/(2e−1) = %.6f; Theorem 21 shows it cannot be lowered", bound)
	return tb, nil
}

// RunE13Coalitions probes the Section-6 coalition variation: do the
// LP-optimal Nash-enforcing subsidies also protect against joint
// deviations by pairs of players?
func RunE13Coalitions(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E13",
		Title:   "Pair-coalition stability of Nash-enforced trees",
		Claim:   "Open problem (§6): SNE under coalition deviations (here: coalitions of size 2)",
		Headers: []string{"n", "LP cost", "Nash", "2-strong", "pair gains"},
	}
	trials := 6
	if cfg.Quick {
		trials = 3
	}
	nashStable, pairStable := 0, 0
	for k := 0; k < trials; k++ {
		n := 4 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.5, 0.5, 2)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		lp, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return nil, err
		}
		_, gst, err := st.ToGeneral(50)
		if err != nil {
			return nil, err
		}
		nash := gst.IsEquilibrium(lp.Subsidy)
		if nash {
			nashStable++
		}
		pv, err := gst.FindPairDeviation(lp.Subsidy, 60)
		if err != nil {
			return nil, err
		}
		gains := "-"
		if pv != nil {
			gains = trunc(pv.Gains[0]) + "/" + trunc(pv.Gains[1])
		} else {
			pairStable++
		}
		tb.AddRow(n, lp.Cost, nash, pv == nil, gains)
	}
	tb.Note("%d/%d Nash-enforced trees were already 2-strong; the rest need extra subsidies — "+
		"the disjunctive blocking condition makes that a non-LP problem", pairStable, nashStable)
	return tb, nil
}

func trunc(x float64) string {
	return numericSprint(math.Round(x*1e4) / 1e4)
}

func numericSprint(x float64) string {
	tb := Table{}
	tb.AddRow(x)
	return tb.Rows[0][0]
}
