package experiments

import (
	"math/rand"

	"netdesign/internal/graph"
	"netdesign/internal/weighted"
)

// RunE16Weighted extends enforcement to demand-weighted players
// (Section 6: "players with different demands [1, 14]"). Weighted
// proportional-sharing games are not potential games — pure equilibria
// can fail to exist — but SNE stays a linear problem for any fixed
// target, so subsidies can always restore stability. The experiment
// surveys random weighted games: does a pure equilibrium exist at all,
// does best-response dynamics converge, and what does enforcing a
// shortest-path profile cost?
func RunE16Weighted(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E16",
		Title:   "Demand-weighted games: equilibrium existence and enforcement",
		Claim:   "Extension (§6): weighted games may lack pure equilibria; SNE remains solvable and full subsidies always enforce",
		Headers: []string{"n", "players", "has PNE", "BR converges", "SNE cost", "fraction"},
	}
	trials := 8
	if cfg.Quick {
		trials = 3
	}
	noPNE := 0
	for k := 0; k < trials; k++ {
		n := 3 + rng.Intn(3)
		g := graph.RandomConnected(rng, n, 0.6, 0.5, 3)
		np := 2 + rng.Intn(2)
		var players []weighted.Player
		for i := 0; i < np; i++ {
			s, t := rng.Intn(n), rng.Intn(n)
			for t == s {
				t = rng.Intn(n)
			}
			players = append(players, weighted.Player{S: s, T: t, Demand: 0.5 + rng.Float64()*4})
		}
		wg, err := weighted.New(g, players)
		if err != nil {
			return nil, err
		}
		hasPNE, _, err := wg.HasPureEquilibrium(100000)
		if err != nil {
			continue // state space too large; skip the instance
		}
		if !hasPNE {
			noPNE++
		}
		paths := make([][]int, np)
		for i, pl := range players {
			paths[i] = graph.Dijkstra(g, pl.S, nil).PathTo(pl.T)
		}
		st, err := weighted.NewState(wg, paths)
		if err != nil {
			return nil, err
		}
		_, _, brErr := weighted.BestResponseDynamics(st, nil, 2000)
		b, cost, _, err := weighted.SolveSNE(st, 0)
		if err != nil {
			return nil, err
		}
		if !st.IsEquilibrium(*b) {
			tb.Note("enforcement verification FAILED on an instance — investigate")
		}
		frac := 0.0
		if w := st.EstablishedWeight(); w > 0 {
			frac = cost / w
		}
		tb.AddRow(n, np, hasPNE, brErr == nil, cost, frac)
	}
	tb.Note("instances without any pure equilibrium: %d (weighted sharing breaks the potential structure)", noPNE)
	return tb, nil
}
