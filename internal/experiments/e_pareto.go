package experiments

import (
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/snd"
)

// RunE17Pareto computes an exact budget–weight tradeoff curve for STABLE
// NETWORK DESIGN: how the lightest enforceable network improves as the
// central authority's subsidy budget grows. This is the optimization
// view of the paper's core question ("what is the best design the
// network designer can guarantee given this budget?", §1).
func RunE17Pareto(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E17",
		Title:   "Exact SND budget–weight Pareto frontier",
		Claim:   "§1: 'What is the best design the network designer can guarantee given this budget?'",
		Headers: []string{"instance", "budget ≥", "best stable weight", "vs MST"},
	}
	build := func(name string, bg *broadcast.Game) error {
		fr, err := snd.ParetoFrontier(bg, 200000)
		if err != nil {
			return err
		}
		mst, err := bg.MST()
		if err != nil {
			return err
		}
		optW := bg.G.WeightOf(mst)
		for _, p := range fr {
			tb.AddRow(name, p.Budget, p.Weight, p.Weight/optW)
		}
		return nil
	}
	// A structured instance: ring + chords, where cheap trees are
	// unstable and the frontier has several steps.
	n := 8
	g := graph.Cycle(n, 1)
	g.AddEdge(2, 6, 1.4)
	g.AddEdge(1, 5, 1.6)
	bg, err := broadcast.NewGame(g, 0)
	if err != nil {
		return nil, err
	}
	if err := build("ring+chords", bg); err != nil {
		return nil, err
	}
	trials := 2
	if cfg.Quick {
		trials = 1
	}
	for k := 0; k < trials; k++ {
		m := 5 + rng.Intn(3)
		rg := graph.RandomConnected(rng, m, 0.5, 0.3, 2)
		rbg, err := broadcast.NewGame(rg, 0)
		if err != nil {
			return nil, err
		}
		if err := build("random", rbg); err != nil {
			return nil, err
		}
	}
	tb.Note("each row is a frontier breakpoint: the smallest budget unlocking that design weight")
	return tb, nil
}
