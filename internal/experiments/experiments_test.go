package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{
		ID:      "T",
		Title:   "demo",
		Claim:   "claim text",
		Headers: []string{"a", "bb"},
	}
	tb.AddRow(1, 2.5)
	tb.AddRow("x", true)
	tb.Note("note %d", 7)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T: demo", "claim text", "2.5000", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### T: demo") {
		t.Errorf("markdown malformed:\n%s", md)
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Artifact == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := Get("E1"); !ok {
		t.Error("Get(E1) failed")
	}
	if _, ok := Get("nope"); ok {
		t.Error("Get(nope) succeeded")
	}
}

// TestAllExperimentsQuick runs every registered experiment in quick mode
// and sanity-checks the emitted tables. This is the integration test of
// the whole reproduction: every theorem's experiment must run end to end.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 3, Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := e.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("experiment produced no rows")
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Headers) {
					t.Fatalf("row width %d ≠ header width %d", len(row), len(tb.Headers))
				}
			}
		})
	}
}

func TestExperimentClaims(t *testing.T) {
	cfg := Config{Seed: 5, Quick: true}

	// E2: every cell must match Lemma 4.
	tb, err := RunE2Bypass(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[5] != "true" {
			t.Errorf("E2 mismatch row: %v", row)
		}
	}

	// E3: reduction matches solver.
	tb, err = RunE3BinPacking(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[5] != "true" {
			t.Errorf("E3 mismatch row: %v", row)
		}
	}

	// E5: Theorem-6 fraction is 1/e on every row.
	tb, err = RunE5Theorem6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[3] != "0.3679" {
			t.Errorf("E5 fraction %s ≠ 0.3679", row[3])
		}
		if row[6] != "true" {
			t.Errorf("E5 not enforced: %v", row)
		}
	}

	// E7: equivalence on every formula.
	tb, err = RunE7SAT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[4] != "true" {
			t.Errorf("E7 mismatch row: %v", row)
		}
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(Config{Seed: 2, Quick: true}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E5b", "E6", "E7", "E8", "E9", "E10"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Errorf("output missing experiment %s", id)
		}
	}
}
