package experiments

import (
	"netdesign/internal/sweep"
)

// The sweep-backed heavy experiments: each wraps a scenario from the
// internal/sweep registry, so the serial registry run here and a
// sharded, checkpointed cmd/sweep run merge to bit-identical tables.

// RunE20SwapPoS estimates the price of stability at instance sizes far
// beyond exhaustive spanning-tree enumeration: multi-start local search
// on the swap graph (broadcast.EstimatePoS over SwapDynamics with the
// exact SwapPotentialDelta guard). Every converged descent certifies an
// upper bound weight/OPT ≥ PoS — the paper's context bounds say far
// below H_n, which the sweep confirms at n the E9 enumeration cannot
// touch.
func RunE20SwapPoS(cfg Config) (*Table, error) {
	return sweep.RunTable(E20Spec(cfg), 1)
}

// E20Spec is the sweep spec behind RunE20SwapPoS, shared with cmd/sweep.
func E20Spec(cfg Config) sweep.Spec {
	count, size := 8, 40
	if cfg.Quick {
		count, size = 3, 16
	}
	return sweep.Spec{Scenario: "pos-swap", Seed: cfg.seed(), Count: count, Size: size}
}

// RunE21EnforceSweep measures the Theorem-6 enforcement construction at
// sweep scale: on every random instance the spend must be exactly
// wgt(T)/e (unit multiplicities) and the MST must end up enforced.
func RunE21EnforceSweep(cfg Config) (*Table, error) {
	return sweep.RunTable(E21Spec(cfg), 1)
}

// E21Spec is the sweep spec behind RunE21EnforceSweep, shared with
// cmd/sweep.
func E21Spec(cfg Config) sweep.Spec {
	count, size := 10, 24
	if cfg.Quick {
		count, size = 4, 10
	}
	return sweep.Spec{Scenario: "enforce", Seed: cfg.seed(), Count: count, Size: size}
}

// RunE22SNELPSweep runs the Theorem-1 LP optimum itself as a sweep
// family (`sne-lp` scenario): per-instance optimal enforcement cost and
// simplex work through the sparse revised-simplex core, under the same
// sharded/checkpointed harness as every other heavy experiment. Paired
// with E21 it reports the gap between the universal 1/e budget and what
// an optimal designer pays instance by instance.
func RunE22SNELPSweep(cfg Config) (*Table, error) {
	return sweep.RunTable(E22Spec(cfg), 1)
}

// E22Spec is the sweep spec behind RunE22SNELPSweep, shared with
// cmd/sweep.
func E22Spec(cfg Config) sweep.Spec {
	count, size := 10, 24
	if cfg.Quick {
		count, size = 4, 10
	}
	return sweep.Spec{Scenario: "sne-lp", Seed: cfg.seed(), Count: count, Size: size}
}
