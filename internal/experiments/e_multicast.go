package experiments

import (
	"math/rand"

	"netdesign/internal/graph"
	"netdesign/internal/multicast"
	"netdesign/internal/numeric"
	"netdesign/internal/sne"
)

// RunE15Multicast extends the enforcement study to multicast games
// (Section 6: "more general instances of SND (e.g., involving multicast
// games) are challenging"). For random instances we compute the exact
// Steiner-optimal design with Dreyfus–Wagner and enforce it via LP (1)
// row generation, measuring whether the broadcast 1/e ceiling appears to
// survive in the multicast world.
func RunE15Multicast(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E15",
		Title:   "Enforcing Steiner-optimal multicast designs",
		Claim:   "Extension (§6): multicast SNE via LP(1) row generation over Dreyfus–Wagner designs",
		Headers: []string{"nodes", "terminals", "Steiner wgt", "min subsidies", "fraction", "≤ 1/e", "rowgen iters"},
	}
	maxFrac := 0.0
	// Adversarial family first: the Theorem-11 cycle with only every
	// second node hosting a player. The optimal design is still the
	// path, and the far terminal still wants the closing edge, so
	// positive subsidies are required.
	mcCycles := []int{8, 16, 32}
	if cfg.Quick {
		mcCycles = []int{8}
	}
	for _, n := range mcCycles {
		g := graph.Cycle(n, 1)
		var terms []int
		for v := 2; v <= n; v += 2 {
			terms = append(terms, v)
		}
		mg, err := multicast.NewGame(g, 0, terms)
		if err != nil {
			return nil, err
		}
		design := make([]int, n)
		for i := range design {
			design[i] = i
		}
		design = design[:n] // the full path, a Steiner-optimal design
		res, st, err := mg.MinSubsidies(design[:n])
		if err != nil {
			return nil, err
		}
		if err := sne.VerifyGeneral(st, res.Subsidy); err != nil {
			return nil, err
		}
		frac := res.Cost / float64(n)
		if frac > maxFrac {
			maxFrac = frac
		}
		tb.AddRow(n+1, len(terms), float64(n), res.Cost, frac, frac <= numeric.InvE+1e-9, res.Iterations)
	}
	trials := 8
	if cfg.Quick {
		trials = 3
	}
	for k := 0; k < trials; k++ {
		n := 6 + rng.Intn(6)
		g := graph.RandomConnected(rng, n, 0.35, 0.3, 3)
		nTerms := 2 + rng.Intn(4)
		perm := rng.Perm(n)
		root := perm[0]
		terms := perm[1 : 1+nTerms]
		mg, err := multicast.NewGame(g, root, terms)
		if err != nil {
			return nil, err
		}
		design, w, err := mg.OptimalDesign()
		if err != nil {
			return nil, err
		}
		res, st, err := mg.MinSubsidies(design)
		if err != nil {
			return nil, err
		}
		if err := sne.VerifyGeneral(st, res.Subsidy); err != nil {
			return nil, err
		}
		frac := 0.0
		if w > 0 {
			frac = res.Cost / w
		}
		if frac > maxFrac {
			maxFrac = frac
		}
		tb.AddRow(n, nTerms, w, res.Cost, frac, frac <= numeric.InvE+1e-9, res.Iterations)
	}
	tb.Note("max fraction observed %.4f vs the broadcast ceiling 1/e = %.4f: the sparse-terminal "+
		"cycle EXCEEDS 1/e and grows with n — empirical evidence that Theorem 6 does not extend "+
		"to multicast games (random instances, by contrast, are usually stable for free)",
		maxFrac, numeric.InvE)
	return tb, nil
}
