package experiments

import (
	"fmt"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/gadgets"
	"netdesign/internal/graph"
	"netdesign/internal/reductions"
)

// RunE2Bypass reproduces Lemma 4 / Figure 1: the Bypass gadget's
// connector player deviates iff fewer than κ players sit behind the
// connector.
func RunE2Bypass(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E2",
		Title:   "Bypass gadget: connector deviates iff β < κ",
		Claim:   "Lemma 4: β < κ ⟹ connector deviates to the bypass edge; β ≥ κ ⟹ basic path stable",
		Headers: []string{"κ", "ℓ", "β", "expected", "measured", "match"},
	}
	kappas := []int{3, 5, 8, 12}
	if cfg.Quick {
		kappas = []int{3, 5}
	}
	allMatch := true
	for _, kappa := range kappas {
		for _, beta := range []int{kappa - 2, kappa - 1, kappa, kappa + 1} {
			if beta < 0 {
				continue
			}
			st, bp, err := gadgets.Lemma4Instance(kappa, beta)
			if err != nil {
				return nil, err
			}
			expected := beta < kappa
			measured := !st.IsEquilibrium(nil)
			match := expected == measured
			allMatch = allMatch && match
			tb.AddRow(kappa, bp.Ell, beta, verdict(expected, "deviates", "stable"),
				verdict(measured, "deviates", "stable"), match)
		}
	}
	tb.Note("all (κ, β) cells match Lemma 4: %v", allMatch)
	return tb, nil
}

// RunE3BinPacking reproduces Theorem 3 / Figure 2: the reduction graph
// has an equilibrium MST iff the strict BIN PACKING instance is solvable,
// cross-checked against the exact packing solver in both directions.
func RunE3BinPacking(cfg Config) (*Table, error) {
	tb := &Table{
		ID:      "E3",
		Title:   "Bin-packing reduction: equilibrium MST ⟺ perfect packing",
		Claim:   "Theorem 3: deciding SND with B = 0, K = wgt(MST) is NP-hard via BIN PACKING",
		Headers: []string{"sizes", "bins", "C", "packing", "equilibrium MST", "match", "MST weight K"},
	}
	instances := []reductions.BinPacking{
		{Sizes: []int{4, 2, 2, 4, 4}, Bins: 2, Capacity: 8},
		{Sizes: []int{8, 8, 8}, Bins: 2, Capacity: 12},
		{Sizes: []int{6, 6, 6, 6}, Bins: 2, Capacity: 12},
		{Sizes: []int{10, 6, 6, 2}, Bins: 2, Capacity: 12},
		{Sizes: []int{10, 10, 10, 6}, Bins: 3, Capacity: 12},
	}
	if cfg.Quick {
		instances = instances[:2]
	}
	allMatch := true
	for _, in := range instances {
		_, solvable := in.SolveExact()
		bp, err := gadgets.BuildBinPack(in)
		if err != nil {
			return nil, err
		}
		witness, hasEq := bp.HasEquilibriumMST()
		match := solvable == hasEq && (!hasEq || in.CheckAssignment(witness))
		allMatch = allMatch && match
		tb.AddRow(fmt.Sprintf("%v", in.Sizes), in.Bins, in.Capacity,
			verdict(solvable, "solvable", "unsolvable"),
			verdict(hasEq, "exists", "none"), match, bp.K)
	}
	tb.Note("reduction agrees with the exact packing solver on every instance: %v", allMatch)
	return tb, nil
}

// RunE4IndependentSet reproduces Theorem 5 / Figure 3: equilibria of the
// reduction correspond to independent sets with weight 5n/2 − (1−δ)m,
// and any tree containing a type C, D or E branch is unstable.
func RunE4IndependentSet(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	delta := 1.0 / 12
	tb := &Table{
		ID:      "E4",
		Title:   "Independent-set reduction: best equilibrium weight = 5n/2 − (1−δ)·α(H)",
		Claim:   "Theorem 5: approximating broadcast PoS better than 571/570 is NP-hard",
		Headers: []string{"H", "n", "α(H)", "predicted wgt", "measured wgt", "equilibrium", "C/D/E unstable"},
	}
	type inst struct {
		name string
		h    *graph.Graph
	}
	var cases []inst
	cases = append(cases, inst{"K4", graph.Complete(4, func(i, j int) float64 { return 1 })})
	k33 := graph.New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			k33.AddEdge(i, j, 1)
		}
	}
	cases = append(cases, inst{"K33", k33})
	ns := []int{8, 10, 12}
	if cfg.Quick {
		ns = []int{8}
	}
	for _, n := range ns {
		h, err := graph.RandomRegular(rng, n, 3)
		if err != nil {
			return nil, err
		}
		cases = append(cases, inst{fmt.Sprintf("rand-%d", n), h})
	}
	for _, c := range cases {
		ig, err := gadgets.BuildIS(c.h, delta)
		if err != nil {
			return nil, err
		}
		best, predicted, mis, err := ig.BestEquilibrium()
		if err != nil {
			return nil, err
		}
		stable := best.IsEquilibrium(nil)
		unstable := true
		for _, build := range []func() ([]int, error){
			func() ([]int, error) { return ig.TreeWithTypeC(0) },
			ig.TreeWithTypeD,
			ig.TreeWithTypeE,
		} {
			tree, err := build()
			if err != nil {
				return nil, err
			}
			st, err := broadcast.NewState(ig.BG, tree)
			if err != nil {
				return nil, err
			}
			if st.IsEquilibrium(nil) {
				unstable = false
			}
		}
		tb.AddRow(c.name, c.h.N(), len(mis), predicted, best.Weight(), stable, unstable)
	}
	tb.Note("δ = 1/12; α(H) computed by exact branch-and-bound")
	return tb, nil
}

func verdict(b bool, yes, no string) string {
	if b {
		return yes
	}
	return no
}
