// Package experiments reproduces the paper's evaluation: since the paper
// is theoretical, its "tables and figures" are theorems, gadget diagrams
// and bound statements, and each experiment here regenerates one of them
// empirically — running the constructions, solving the LPs and measuring
// the fractions the theorems predict. cmd/experiments renders the whole
// suite; EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import "netdesign/internal/table"

// Table is a rendered experiment result. It is an alias for table.Table —
// the concrete type lives in internal/table so the sweep engine
// (internal/sweep) can assemble the identical tables from checkpointed
// shard records without importing this package.
type Table = table.Table
