// Package experiments reproduces the paper's evaluation: since the paper
// is theoretical, its "tables and figures" are theorems, gadget diagrams
// and bound statements, and each experiment here regenerates one of them
// empirically — running the constructions, solving the LPs and measuring
// the fractions the theorems predict. cmd/experiments renders the whole
// suite; EXPERIMENTS.md records paper-vs-measured for every artifact.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's quantitative claim being reproduced
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a free-form observation under the table.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes an aligned plain-text rendering.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(w, "paper claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Markdown renders the table as GitHub-flavored markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s: %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&sb, "*Paper claim:* %s\n\n", t.Claim)
	}
	sb.WriteString("| " + strings.Join(t.Headers, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Headers)) + "\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*Note:* %s\n", n)
	}
	sb.WriteString("\n")
	return sb.String()
}
