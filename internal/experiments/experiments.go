package experiments

import (
	"fmt"
	"io"
	"time"

	"netdesign/internal/parallel"
)

// Config tunes an experiment run.
type Config struct {
	Seed  int64 // RNG seed (0 → 1)
	Quick bool  // smaller instance sweeps (used by benchmarks and -short tests)
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 1
	}
	return c.Seed
}

// Experiment regenerates one of the paper's artifacts.
type Experiment struct {
	ID       string
	Title    string
	Artifact string // which theorem/figure it reproduces
	Run      func(cfg Config) (*Table, error)
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "SNE is in P: three LP formulations agree", Artifact: "Theorem 1, Lemma 2, LPs (1)(2)(3)", Run: RunE1LPAgreement},
		{ID: "E2", Title: "Bypass gadget incentive dichotomy", Artifact: "Lemma 4, Figure 1", Run: RunE2Bypass},
		{ID: "E3", Title: "SND hardness: equilibrium MST ⟺ BIN PACKING", Artifact: "Theorem 3, Figure 2", Run: RunE3BinPacking},
		{ID: "E4", Title: "PoS inapproximability: equilibria ↔ independent sets", Artifact: "Theorem 5, Figure 3", Run: RunE4IndependentSet},
		{ID: "E5", Title: "Theorem-6 construction spends exactly wgt(T)/e", Artifact: "Theorem 6, Lemma 7, Claims 8/10", Run: RunE5Theorem6},
		{ID: "E5b", Title: "Virtual-cost packing on a path", Artifact: "Figure 4", Run: RunE5bFigure4},
		{ID: "E6", Title: "1/e is tight: cycle lower bound", Artifact: "Theorem 11", Run: RunE6CycleLB},
		{ID: "E7", Title: "All-or-nothing SNE ⟺ satisfiability", Artifact: "Theorem 12, Lemmas 13–19, Figures 5–7", Run: RunE7SAT},
		{ID: "E8", Title: "All-or-nothing needs e/(2e−1) ≈ 61%", Artifact: "Theorem 21", Run: RunE8AONPath},
		{ID: "E9", Title: "Price-of-stability landscape on random games", Artifact: "Section 1–2 context (H_n bound)", Run: RunE9PoS},
		{ID: "E10", Title: "Fractional 37% vs all-or-nothing 61%", Artifact: "Section 4 vs Section 5 contrast", Run: RunE10Gap},
		{ID: "E11", Title: "Combinatorial SNE heuristic (water-filling)", Artifact: "Section 6 open problem 1", Run: RunE11WaterFill},
		{ID: "E12", Title: "The e/(2e−1) all-or-nothing conjecture", Artifact: "Section 6 open problem 2", Run: RunE12AONConjecture},
		{ID: "E13", Title: "Coalition (pair) deviations", Artifact: "Section 6 open problem 3", Run: RunE13Coalitions},
		{ID: "E14", Title: "Subsidies for α-approximate stability", Artifact: "Related-work extension (approximate equilibria)", Run: RunE14ApproxTradeoff},
		{ID: "E15", Title: "Multicast enforcement over Steiner designs", Artifact: "Section 6 extension (multicast games)", Run: RunE15Multicast},
		{ID: "E16", Title: "Demand-weighted players", Artifact: "Section 6 extension (weighted demands)", Run: RunE16Weighted},
		{ID: "E17", Title: "SND budget–weight Pareto frontier", Artifact: "Section 1 (budgeted design question)", Run: RunE17Pareto},
		{ID: "E18", Title: "Directed games: H_n tightness, cheap enforcement", Artifact: "Section 1 context (directed adaptation)", Run: RunE18DirectedHn},
		{ID: "E19", Title: "Online arrival + convergence quality", Artifact: "Related work [12,13]", Run: RunE19Arrival},
		{ID: "E20", Title: "Large-n PoS estimation via swap-descent local search", Artifact: "Section 1 context at sweep scale (swap engine)", Run: RunE20SwapPoS},
		{ID: "E21", Title: "Theorem-6 enforcement cost at sweep scale", Artifact: "Theorem 6 (sharded sweep family)", Run: RunE21EnforceSweep},
		{ID: "E22", Title: "Optimal SNE subsidies at sweep scale", Artifact: "Theorem 1 LP optimum (sharded sweep family, revised simplex)", Run: RunE22SNELPSweep},
	}
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunEach executes the given experiments and invokes emit once per
// experiment, in list order. With one worker it runs sequentially,
// emitting each result as soon as it completes and failing fast on the
// first error. With more workers it fans out over the pool (workers ≤ 0
// means one per CPU), runs everything, and then emits in list order;
// the first error in list order is returned after the results preceding
// it have been emitted. Experiments are independent — each derives its
// randomness from cfg alone — so parallel results equal sequential ones.
func RunEach(cfg Config, list []Experiment, workers int, emit func(e Experiment, tb *Table, elapsed time.Duration) error) error {
	if parallel.Workers(workers) == 1 || len(list) <= 1 {
		for _, e := range list {
			start := time.Now()
			tb, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			if err := emit(e, tb, time.Since(start)); err != nil {
				return err
			}
		}
		return nil
	}
	tables := make([]*Table, len(list))
	elapsed := make([]time.Duration, len(list))
	errs := make([]error, len(list))
	parallel.ForEach(len(list), workers, func(i int) {
		start := time.Now()
		tb, err := list[i].Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", list[i].ID, err)
			return
		}
		tables[i] = tb
		elapsed[i] = time.Since(start)
	})
	for i := range list {
		if errs[i] != nil {
			return errs[i]
		}
		if err := emit(list[i], tables[i], elapsed[i]); err != nil {
			return err
		}
	}
	return nil
}

// renderEmit is the RunAll/RunAllParallel output shape: the table plus a
// timing line.
func renderEmit(w io.Writer) func(Experiment, *Table, time.Duration) error {
	return func(e Experiment, tb *Table, elapsed time.Duration) error {
		tb.Render(w)
		_, err := fmt.Fprintf(w, "  [%s completed in %v]\n\n", e.ID, elapsed.Round(time.Millisecond))
		return err
	}
}

// RunAll executes every experiment sequentially, rendering each table to
// w as soon as it completes and stopping at the first failure.
func RunAll(cfg Config, w io.Writer) error {
	return RunEach(cfg, Registry(), 1, renderEmit(w))
}

// RunAllParallel executes every experiment on a worker pool (workers ≤ 0
// means one per CPU) and writes the rendered tables in registry order,
// so the output matches a sequential run regardless of completion order
// (modulo the measured timing lines each table embeds).
func RunAllParallel(cfg Config, w io.Writer, workers int) error {
	return RunEach(cfg, Registry(), workers, renderEmit(w))
}
