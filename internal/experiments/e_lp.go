package experiments

import (
	"math"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/sne"
)

// RunE1LPAgreement reproduces Theorem 1: SNE is solvable in polynomial
// time by linear programming. It solves random broadcast SNE instances
// with the compact broadcast LP (3), the polynomial general LP (2) and
// warm-started constraint generation over LP (1), reporting the three
// optima (they must agree) and the maximum discrepancy. Work is reported
// as deterministic simplex pivot counts rather than wall-clock, so the
// table is byte-for-byte reproducible and golden-pinned (testdata/
// E1.golden); the wall-clock story lives in BenchmarkE1 and the BENCH
// trajectory files.
func RunE1LPAgreement(cfg Config) (*Table, error) {
	rng := rand.New(rand.NewSource(cfg.seed()))
	tb := &Table{
		ID:      "E1",
		Title:   "SNE optimal subsidies: LP(3) vs LP(2) vs row generation",
		Claim:   "Theorem 1: SNE ∈ P; all LP formulations share one optimum",
		Headers: []string{"n", "edges", "LP3 cost", "LP2 cost", "rowgen cost", "max |Δ|", "LP3 pivots", "LP2 pivots", "rowgen iters", "rowgen pivots"},
	}
	sizes := []int{4, 6, 8, 10, 12}
	if cfg.Quick {
		sizes = []int{4, 6}
	}
	worst := 0.0
	for _, n := range sizes {
		g := graph.RandomConnected(rng, n, 0.4, 0.5, 3)
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			return nil, err
		}
		mst, err := graph.MST(g)
		if err != nil {
			return nil, err
		}
		// Enforce a deliberately non-optimal tree when available, so the
		// LP has real work: perturb the MST by an edge swap if possible.
		st, err := broadcast.NewState(bg, mst)
		if err != nil {
			return nil, err
		}
		r3, err := sne.SolveBroadcastLP(st)
		if err != nil {
			return nil, err
		}
		_, gst, err := st.ToGeneral(1000)
		if err != nil {
			return nil, err
		}
		r2, err := sne.SolveGeneralLP(gst)
		if err != nil {
			return nil, err
		}
		r1, err := sne.SolveRowGeneration(gst, 0)
		if err != nil {
			return nil, err
		}
		delta := math.Max(math.Abs(r3.Cost-r2.Cost), math.Abs(r3.Cost-r1.Cost))
		if delta > worst {
			worst = delta
		}
		tb.AddRow(n, g.M(), r3.Cost, r2.Cost, r1.Cost, delta,
			r3.Pivots, r2.Pivots, r1.Iterations, r1.Pivots)
	}
	tb.Note("maximum cross-formulation discrepancy over the sweep: %.2e", worst)
	return tb, nil
}
