package loadgen

import (
	"net/http/httptest"
	"testing"
	"time"

	"netdesign/internal/serve"
)

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(serve.New(serve.Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestRunBothProtocols drives a real server over every mix on both
// protocols with multiple workers and connections; every request must
// succeed and the report must be self-consistent.
func TestRunBothProtocols(t *testing.T) {
	ts := newServer(t)
	for _, binary := range []bool{false, true} {
		path := "/v1/sne"
		if binary {
			path = "/v2/sne"
		}
		for _, mix := range []string{MixJitter, MixAdversarial, MixMixed} {
			bodies, err := Bodies(mix, binary, 16, 6, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(bodies) != 6 {
				t.Fatalf("%s: %d bodies, want 6", mix, len(bodies))
			}
			res, err := Run(Config{
				URL:     ts.URL + path,
				Binary:  binary,
				Bodies:  bodies,
				Workers: 4,
				Conns:   4,
				Total:   40,
				// Generous wall bound so the total budget is what stops us.
				Duration:  30 * time.Second,
				DecodeSNE: true, // a malformed response must count as an error
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Errors != 0 {
				t.Fatalf("%s binary=%v: %d errors: %v", mix, binary, res.Errors, res)
			}
			if res.Requests != 40 {
				t.Fatalf("%s binary=%v: %d requests, want 40", mix, binary, res.Requests)
			}
			if res.ReqPerSec <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.P999 < res.P99 {
				t.Fatalf("%s binary=%v: implausible report %v", mix, binary, res)
			}
		}
	}
}

// TestRunCountsErrors: a mix aimed at a wrong path must be counted, not
// hidden.
func TestRunCountsErrors(t *testing.T) {
	ts := newServer(t)
	bodies, err := Bodies(MixJitter, true, 12, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		URL:      ts.URL + "/v1/sne", // binary frames at the JSON endpoint
		Binary:   true,
		Bodies:   bodies,
		Workers:  2,
		Total:    6,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != res.Requests || res.Errors == 0 {
		t.Fatalf("misdirected run: %d errors of %d requests", res.Errors, res.Requests)
	}
}

func TestBodiesUnknownMix(t *testing.T) {
	if _, err := Bodies("bogus", false, 8, 2, 1); err == nil {
		t.Fatal("unknown mix accepted")
	}
}

// TestRunPipelined: frame-batched binary load; counts are per frame and
// every frame must decode.
func TestRunPipelined(t *testing.T) {
	ts := newServer(t)
	bodies, err := Bodies(MixJitter, true, 16, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		URL:       ts.URL + "/v2/sne",
		Binary:    true,
		Bodies:    bodies,
		Workers:   4,
		Conns:     4,
		Total:     30,
		Pipeline:  3,
		DecodeSNE: true,
		Duration:  30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("pipelined run: %d errors: %v", res.Errors, res)
	}
	if res.Requests != 30 {
		t.Fatalf("pipelined run: %d requests, want 30", res.Requests)
	}
}
