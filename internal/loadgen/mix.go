package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"

	"netdesign/internal/broadcast"
	"netdesign/internal/graph"
	"netdesign/internal/instancefile"
	"netdesign/internal/serve/wire"
)

// Mix kinds. The jitter mix is the warm-friendly E22 stream: one base
// graph, non-tree weights rescaled per instance, so every request after
// the first resolves by basis homotopy. The adversarial mix is the cold
// worst case: every instance a fresh random structure, shuffled, so no
// fingerprint ever repeats and the basis cache buys nothing. The mixed
// stream interleaves the two — the admission policy's home turf.
const (
	MixJitter      = "jitter"
	MixAdversarial = "adversarial"
	MixMixed       = "mixed"
)

// Bodies builds count ready-to-send /sne request bodies over ~n-node
// instances for the chosen mix, deterministically from seed. With binary
// set they are /v2 frames (lp method); otherwise /v1 JSON bodies.
func Bodies(mix string, binary bool, n, count int, seed int64) ([][]byte, error) {
	rng := rand.New(rand.NewSource(seed))
	var insts []*instancefile.Instance
	switch mix {
	case MixJitter:
		insts = jitterInstances(rng, n, count)
	case MixAdversarial:
		insts = adversarialInstances(rng, n, count)
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
	case MixMixed:
		insts = append(jitterInstances(rng, n, (count+1)/2), adversarialInstances(rng, n, count/2)...)
		rng.Shuffle(len(insts), func(i, j int) { insts[i], insts[j] = insts[j], insts[i] })
	default:
		return nil, fmt.Errorf("loadgen: unknown mix %q (want %s|%s|%s)", mix, MixJitter, MixAdversarial, MixMixed)
	}
	bodies := make([][]byte, len(insts))
	for i, inst := range insts {
		if binary {
			bodies[i] = wire.AppendFrame(nil, wire.AppendSNERequest(nil, inst, wire.MethodLP))
			continue
		}
		var buf bytes.Buffer
		if err := instancefile.Write(&buf, inst); err != nil {
			return nil, err
		}
		raw, err := json.Marshal(map[string]string{"instance": buf.String()})
		if err != nil {
			return nil, err
		}
		bodies[i] = raw
	}
	return bodies, nil
}

// jitterInstances is the E22 nearby-instance family: the MST (and with
// it the LP structure fingerprint) provably never changes when only
// non-tree weights scale upward.
func jitterInstances(rng *rand.Rand, n, count int) []*instancefile.Instance {
	base := graph.RandomConnected(rng, n, 0.15, 0.5, 3)
	mst, err := graph.MST(base)
	if err != nil {
		panic(err) // RandomConnected guarantees connectivity
	}
	onTree := make([]bool, base.M())
	for _, id := range mst {
		onTree[id] = true
	}
	out := make([]*instancefile.Instance, 0, count)
	for k := 0; k < count; k++ {
		g := base.Clone()
		for id := 0; id < g.M(); id++ {
			if !onTree[id] {
				g.SetWeight(id, g.Weight(id)*(1+0.25*rng.Float64()))
			}
		}
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			panic(err)
		}
		out = append(out, &instancefile.Instance{Game: bg, Tree: mst})
	}
	return out
}

// adversarialInstances never repeats a structure: each instance is a
// fresh random connected graph (size wobbling around n), so every
// request carries a fingerprint the cache has not seen.
func adversarialInstances(rng *rand.Rand, n, count int) []*instancefile.Instance {
	out := make([]*instancefile.Instance, 0, count)
	for k := 0; k < count; k++ {
		nk := n - 2 + rng.Intn(5)
		if nk < 4 {
			nk = 4
		}
		g := graph.RandomConnected(rng, nk, 0.2, 0.5, 3)
		mst, err := graph.MST(g)
		if err != nil {
			panic(err)
		}
		bg, err := broadcast.NewGame(g, 0)
		if err != nil {
			panic(err)
		}
		out = append(out, &instancefile.Instance{Game: bg, Tree: mst})
	}
	return out
}
