// Package loadgen is the sned load harness: N worker goroutines over M
// pooled TCP connections replaying a seeded instance mix against a
// running daemon, reporting throughput (req/s), latency quantiles
// (p50/p99/p999) and error counts. It drives either protocol — /v1 JSON
// bodies or /v2 binary frames — so the serving benchmarks can hold the
// binary path to its claimed multiple of the JSON baseline on the same
// mix, and CI can assert a real multi-connection process serves cleanly
// under concurrent load.
package loadgen

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netdesign/internal/serve/wire"
)

// Config shapes one load run.
type Config struct {
	// URL is the full endpoint URL, e.g. http://127.0.0.1:8533/v2/sne.
	URL string

	// Binary marks the bodies as /v2 frames (sent as octet-stream and
	// answered by status frames); otherwise they are JSON.
	Binary bool

	// Bodies are the request bodies; worker w replays them round-robin
	// starting at offset w, so concurrent workers spread over the mix.
	Bodies [][]byte

	// Workers is the number of concurrent senders. Default 4.
	Workers int

	// Conns caps the pooled TCP connections to the host. Default =
	// Workers.
	Conns int

	// Duration bounds the run in wall time. Default 2s when Total is 0.
	Duration time.Duration

	// Total, when > 0, bounds the run in requests instead; the run stops
	// at whichever bound (Total, Duration) trips first.
	Total int

	// DecodeSNE makes each worker fully decode and validate every
	// response as an sne payload — json.Unmarshal on /v1 bodies,
	// wire.DecodeSNEResponse on /v2 frames — so the measured cost
	// includes what a real client pays to consume the answer, not just
	// the bytes on the wire. Off, responses are drained and only
	// status-checked.
	DecodeSNE bool

	// Pipeline coalesces this many request frames into each HTTP round
	// trip (binary protocol only; the server answers a frame per frame,
	// in order). 0 or 1 sends one frame per request. Requests, errors
	// and req/s count frames; latency quantiles are per round trip.
	Pipeline int

	// Reconnect retries a request up to this many times when the
	// transport fails — a pooled connection died, the daemon restarted —
	// with capped exponential backoff (10ms doubling to 500ms) between
	// tries. HTTP-status failures are never retried: a 4xx/5xx answer is
	// the server speaking, not the connection dying. 0 disables, so a
	// failed send is simply an error (the strict mode the differential
	// tests use).
	Reconnect int
}

// Result is one run's report.
type Result struct {
	Requests       int           // completed requests (errors included)
	Errors         int           // transport failures + non-200 + non-OK frames
	Reconnects     int           // transport retries that re-sent a request
	Elapsed        time.Duration // wall time of the measured window
	ReqPerSec      float64
	P50, P99, P999 time.Duration
}

func (r *Result) String() string {
	return fmt.Sprintf("%d req in %v (%.0f req/s), errors %d, reconnects %d, p50 %v p99 %v p999 %v",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.ReqPerSec, r.Errors, r.Reconnects, r.P50, r.P99, r.P999)
}

// Run executes the configured load and reports.
func Run(cfg Config) (*Result, error) {
	if len(cfg.Bodies) == 0 {
		return nil, errors.New("loadgen: no request bodies")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Conns <= 0 {
		cfg.Conns = cfg.Workers
	}
	if cfg.Duration <= 0 && cfg.Total <= 0 {
		cfg.Duration = 2 * time.Second
	}
	perOp := 1
	if cfg.Binary && cfg.Pipeline > 1 {
		// Pre-batch: body i carries frames i..i+P-1 (cyclic), so the
		// batched stream covers the mix the same way the flat one does.
		perOp = cfg.Pipeline
		batched := make([][]byte, len(cfg.Bodies))
		for i := range cfg.Bodies {
			var b []byte
			for k := 0; k < perOp; k++ {
				b = append(b, cfg.Bodies[(i+k)%len(cfg.Bodies)]...)
			}
			batched[i] = b
		}
		cfg.Bodies = batched
	}
	contentType := "application/json"
	if cfg.Binary {
		contentType = "application/octet-stream"
	}
	tr := &http.Transport{
		MaxIdleConns:        cfg.Conns,
		MaxIdleConnsPerHost: cfg.Conns,
		MaxConnsPerHost:     cfg.Conns,
	}
	defer tr.CloseIdleConnections()
	client := &http.Client{Transport: tr}

	ctx := context.Background()
	var cancel context.CancelFunc = func() {}
	if cfg.Duration > 0 {
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
	}
	defer cancel()

	var sent atomic.Int64 // tickets: worker proceeds only while < Total
	var errs, recon atomic.Int64
	lats := make([][]time.Duration, cfg.Workers)
	var wg sync.WaitGroup
	t0 := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			my := make([]time.Duration, 0, 1024)
			ws := &workerScratch{body: bytes.NewReader(nil), buf: make([]byte, 4096)}
			for i := w; ; i++ {
				if ctx.Err() != nil {
					break
				}
				if cfg.Total > 0 && sent.Add(int64(perOp)) > int64(cfg.Total) {
					break
				}
				body := cfg.Bodies[i%len(cfg.Bodies)]
				q0 := time.Now()
				if failed := doOne(ctx, client, &cfg, contentType, body, perOp, ws, &recon); failed > 0 {
					errs.Add(int64(failed))
				}
				my = append(my, time.Since(q0))
			}
			lats[w] = my
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	res := &Result{
		Requests:   len(all) * perOp,
		Errors:     int(errs.Load()),
		Reconnects: int(recon.Load()),
		Elapsed:    elapsed,
	}
	if elapsed > 0 {
		res.ReqPerSec = float64(res.Requests) / elapsed.Seconds()
	}
	res.P50 = quantile(all, 0.50)
	res.P99 = quantile(all, 0.99)
	res.P999 = quantile(all, 0.999)
	return res, nil
}

// workerScratch is one sender's reusable request/response plumbing: the
// body reader is Reset per request, responses are read into a growable
// per-worker buffer, and the decoded-response struct recycles its
// subsidy slice — the harness's own garbage stays out of the
// measurement (client and server share cores in the benchmark setup).
type workerScratch struct {
	body *bytes.Reader
	buf  []byte
	sne  wire.SNEResponse
}

// readAll reads r to EOF into the worker's reusable buffer.
func (ws *workerScratch) readAll(r io.Reader) ([]byte, error) {
	n := 0
	for {
		if n == len(ws.buf) {
			ws.buf = append(ws.buf, make([]byte, len(ws.buf)+512)...)
		}
		m, err := r.Read(ws.buf[n:])
		n += m
		if err == io.EOF {
			return ws.buf[:n], nil
		}
		if err != nil {
			return ws.buf[:n], err
		}
	}
}

// doOne sends one round trip of perOp requests and returns how many
// failed. Success is HTTP 200, a well-formed OK status frame per
// pipelined frame on the binary protocol, and (with DecodeSNE) a fully
// decodable response on either protocol. Transport failures — a dead
// pooled connection, a daemon mid-restart — are retried up to
// cfg.Reconnect times with capped exponential backoff; an HTTP error
// status is an answer and is never retried.
func doOne(ctx context.Context, client *http.Client, cfg *Config, contentType string, body []byte, perOp int, ws *workerScratch, recon *atomic.Int64) int {
	var raw []byte
	var resp *http.Response
	backoff := 10 * time.Millisecond
	for attempt := 0; ; attempt++ {
		ws.body.Reset(body)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL, ws.body)
		if err != nil {
			return perOp
		}
		req.ContentLength = int64(len(body))
		req.Header.Set("Content-Type", contentType)
		resp, err = client.Do(req)
		if err == nil {
			raw, err = ws.readAll(resp.Body)
			resp.Body.Close()
			if err == nil {
				break
			}
		}
		if attempt >= cfg.Reconnect || ctx.Err() != nil {
			return perOp
		}
		select {
		case <-ctx.Done():
			return perOp
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
		recon.Add(1)
	}
	if resp.StatusCode != http.StatusOK {
		return perOp
	}
	if cfg.Binary {
		return perOp - ws.okFrames(raw, perOp, cfg.DecodeSNE)
	}
	if cfg.DecodeSNE {
		ws.sne = wire.SNEResponse{Subsidies: ws.sne.Subsidies[:0]}
		if json.Unmarshal(raw, &ws.sne) != nil {
			return 1
		}
	}
	return 0
}

// okFrames walks the response frames in raw and counts the well-formed
// OK ones, up to want (frame header (4) + status byte; StatusOK is 0).
func (ws *workerScratch) okFrames(raw []byte, want int, decodeSNE bool) int {
	ok := 0
	for off := 0; ok < want && off+4 <= len(raw); {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		off += 4
		if n < 1 || off+n > len(raw) {
			break
		}
		frame := raw[off : off+n]
		off += n
		good := frame[0] == 0
		if good && decodeSNE {
			good = wire.DecodeSNEResponse(frame[1:], &ws.sne) == nil
		}
		if good {
			ok++
		}
	}
	return ok
}

// quantile picks the q-th element of sorted latencies (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
