package loadgen

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// connKiller answers the first kill requests by slamming the TCP
// connection shut mid-request — the client sees a transport error, not
// an HTTP status — and serves 200 afterwards.
type connKiller struct {
	kill atomic.Int64
}

func (ck *connKiller) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if ck.kill.Add(-1) >= 0 {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server not hijackable")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close()
		return
	}
	w.WriteHeader(http.StatusOK)
}

// TestReconnectRecoversDeadConnections: with Reconnect budget, requests
// whose pooled connection dies are retried until they land, the run ends
// clean, and the retries are reported.
func TestReconnectRecoversDeadConnections(t *testing.T) {
	ck := &connKiller{}
	ck.kill.Store(3)
	ts := httptest.NewServer(ck)
	defer ts.Close()

	res, err := Run(Config{
		URL:       ts.URL,
		Bodies:    [][]byte{[]byte("{}")},
		Workers:   1,
		Conns:     1,
		Total:     5,
		Duration:  30 * time.Second,
		Reconnect: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("run with reconnects still failed: %v", res)
	}
	if res.Reconnects < 3 {
		t.Fatalf("%d reconnects reported, want >= 3 (one per killed connection): %v", res.Reconnects, res)
	}
}

// TestReconnectDisabledIsSingleShot: the zero config keeps the strict
// semantics — a dead connection is an error, nothing is resent.
func TestReconnectDisabledIsSingleShot(t *testing.T) {
	ck := &connKiller{}
	ck.kill.Store(2)
	ts := httptest.NewServer(ck)
	defer ts.Close()

	res, err := Run(Config{
		URL:      ts.URL,
		Bodies:   [][]byte{[]byte("{}")},
		Workers:  1,
		Conns:    1,
		Total:    4,
		Duration: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 2 || res.Reconnects != 0 {
		t.Fatalf("single-shot run: errors %d (want 2), reconnects %d (want 0)", res.Errors, res.Reconnects)
	}
}
