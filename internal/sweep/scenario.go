package sweep

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"netdesign/internal/table"
)

// Scenario is a registered instance family: per-index generation plus the
// table shape its records merge into. Run must be deterministic given
// (spec, idx) — rng is already seeded with InstanceSeed(spec.Seed, idx)
// and must be the run's only randomness source — and must not retain rng
// or the record's slices across calls. TableID carries the
// internal/experiments registry ID of the table the scenario emits, so
// merged sweep output drops into the same registry-order report.
type Scenario struct {
	Name    string
	TableID string
	Title   string
	Claim   string
	Headers []string

	// Run computes instance idx. A record with no Cells contributes no
	// row (its Notes still surface), so every index yields exactly one
	// record and shard merges can verify completeness.
	Run func(spec Spec, idx int, rng *rand.Rand) (Record, error)

	// RunChained (optional) is Run plus an opaque carry value threaded
	// through the consecutive instances one worker executes — the hook
	// cross-instance warm starts (LP basis homotopy) ride on. carry is
	// nil for a worker's first instance; the returned carry reaches the
	// next instance on the same worker and is dropped at chunk
	// boundaries. The carry must be an accelerator only: any output field
	// the differential harness pins byte-for-byte has to stay a pure
	// function of (spec, idx), so scenarios whose chained path perturbs
	// such fields (pivot counts, say) must gate it behind an opt-in
	// param that the goldens and resume differentials leave off.
	RunChained func(spec Spec, idx int, rng *rand.Rand, carry any) (Record, any, error)

	// Finalize (optional) appends aggregate notes derived from the full
	// record set — it runs after every per-record note and must be a pure
	// function of (spec, recs).
	Finalize func(spec Spec, recs []Record, tb *table.Table)
}

// runInstance dispatches one instance through RunChained when the
// scenario supports carry threading, or Run otherwise (carry passes
// through untouched so a mixed registry composes).
func (sc *Scenario) runInstance(spec Spec, idx int, rng *rand.Rand, carry any) (Record, any, error) {
	if sc.RunChained != nil {
		return sc.RunChained(spec, idx, rng, carry)
	}
	rec, err := sc.Run(spec, idx, rng)
	return rec, carry, err
}

var (
	scenarioMu  sync.RWMutex
	scenarioReg = map[string]*Scenario{}
)

// Register adds a scenario to the registry. It panics on duplicate or
// invalid names — registration is an init-time act.
func Register(sc *Scenario) {
	if sc.Name == "" || sc.Run == nil || len(sc.Headers) == 0 {
		panic(fmt.Sprintf("sweep: scenario %q incompletely defined", sc.Name))
	}
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarioReg[sc.Name]; dup {
		panic(fmt.Sprintf("sweep: scenario %q registered twice", sc.Name))
	}
	scenarioReg[sc.Name] = sc
}

// GetScenario resolves a registered scenario by name.
func GetScenario(name string) (*Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	sc, ok := scenarioReg[name]
	return sc, ok
}

// ScenarioNames lists registered scenarios in sorted order.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarioReg))
	for name := range scenarioReg {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuildTable assembles the scenario's table from a complete record set:
// exactly one record per index in [0, spec.Count). Rows and per-record
// notes land in index order, then Finalize appends aggregates — the same
// construction whether records came from an in-process serial run or
// were merged back from shard checkpoints, which is what makes the two
// byte-identical.
func BuildTable(spec Spec, recs []Record) (*table.Table, error) {
	sc, ok := GetScenario(spec.Scenario)
	if !ok {
		return nil, fmt.Errorf("sweep: unknown scenario %q", spec.Scenario)
	}
	if len(recs) != spec.Count {
		return nil, fmt.Errorf("sweep: %d records for count %d", len(recs), spec.Count)
	}
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Index < sorted[j].Index })
	for i, rec := range sorted {
		if rec.Index != i {
			return nil, fmt.Errorf("sweep: record set not a permutation of [0,%d): saw index %d at position %d", spec.Count, rec.Index, i)
		}
	}
	tb := &table.Table{
		ID:      sc.TableID,
		Title:   sc.Title,
		Claim:   sc.Claim,
		Headers: sc.Headers,
	}
	for _, rec := range sorted {
		if len(rec.Cells) > 0 {
			if len(rec.Cells) != len(sc.Headers) {
				return nil, fmt.Errorf("sweep: record %d has %d cells for %d headers", rec.Index, len(rec.Cells), len(sc.Headers))
			}
			tb.Rows = append(tb.Rows, rec.Cells)
		}
		tb.Notes = append(tb.Notes, rec.Notes...)
	}
	if sc.Finalize != nil {
		sc.Finalize(spec, sorted, tb)
	}
	return tb, nil
}
