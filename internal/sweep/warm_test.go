package sweep

import (
	"strings"
	"testing"
)

// TestSweepSNELPWarmMatchesCold pins the basis-homotopy chain to the cold
// path: on a jittered nearby-instance family, a warm (chained) serial run
// must produce the same table as the cold run in every column except the
// pivot counts — the optimum is the optimum no matter which basis the
// solver started from.
func TestSweepSNELPWarmMatchesCold(t *testing.T) {
	base := Spec{Scenario: "sne-lp", Seed: 11, Count: 12, Size: 24,
		Params: map[string]float64{"jitter": 0.15}}
	warm := Spec{Scenario: "sne-lp", Seed: 11, Count: 12, Size: 24,
		Params: map[string]float64{"jitter": 0.15, "warm": 1}}
	cold, err := RunSerial(base)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := RunSerial(warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Rows) != len(hot.Rows) || len(cold.Rows) != base.Count {
		t.Fatalf("row counts: cold %d hot %d want %d", len(cold.Rows), len(hot.Rows), base.Count)
	}
	// Headers: n, edges, wgt(T), LP cost, frac, pivots — everything up to
	// the pivot column must agree exactly (same instances, same optimum).
	pivotCol := len(cold.Headers) - 1
	if cold.Headers[pivotCol] != "pivots" {
		t.Fatalf("pivot column moved: headers %v", cold.Headers)
	}
	for i := range cold.Rows {
		for c := 0; c < pivotCol; c++ {
			if cold.Rows[i][c] != hot.Rows[i][c] {
				t.Fatalf("row %d col %d (%s): cold %q vs warm %q",
					i, c, cold.Headers[c], cold.Rows[i][c], hot.Rows[i][c])
			}
		}
	}
}

// TestSweepSNELPWarmShardedStillMerges: a warm sharded run must still
// satisfy the merge completeness contract and agree with the cold serial
// oracle on all non-pivot columns — warm starts may not leak across the
// determinism boundary into the instance family itself.
func TestSweepSNELPWarmShardedStillMerges(t *testing.T) {
	spec := Spec{Scenario: "sne-lp", Seed: 7, Count: 10, Size: 20,
		Params: map[string]float64{"jitter": 0.2, "warm": 1}}
	coldSpec := spec
	coldSpec.Params = map[string]float64{"jitter": 0.2}
	cold, err := RunSerial(coldSpec)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, err := Run(spec, dir, 3, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(cold.Rows) {
		t.Fatalf("merged %d rows, cold %d", len(got.Rows), len(cold.Rows))
	}
	pivotCol := len(cold.Headers) - 1
	for i := range cold.Rows {
		for c := 0; c < pivotCol; c++ {
			if cold.Rows[i][c] != got.Rows[i][c] {
				t.Fatalf("row %d col %d: cold %q vs warm-sharded %q", i, c, cold.Rows[i][c], got.Rows[i][c])
			}
		}
	}
}

// TestSweepSNELPJitterDeterministic: the jitter family must stay a pure
// function of (spec, idx) — two serial runs render identical tables.
func TestSweepSNELPJitterDeterministic(t *testing.T) {
	spec := Spec{Scenario: "sne-lp", Seed: 5, Count: 6, Size: 18,
		Params: map[string]float64{"jitter": 0.3}}
	a, err := RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSerial(spec)
	if err != nil {
		t.Fatal(err)
	}
	var sa, sb strings.Builder
	a.Render(&sa)
	b.Render(&sb)
	if sa.String() != sb.String() {
		t.Fatalf("jitter family not deterministic:\n%s\nvs\n%s", sa.String(), sb.String())
	}
}
