package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"sync"
)

// Record is the unit a shard checkpoints: one instance's contribution to
// the final table. Cells (when non-empty) become one preformatted row —
// use table.FormatCells so checkpointed rows match direct AddRow output
// byte for byte. Notes are emitted under the table in index order. Vals
// carries the raw numbers aggregate Finalize hooks need (maxima, means);
// they round-trip through the codec bit-exactly. WallNS is the
// instance's measured compute time in nanoseconds — stamped by the
// engine, ignored by merge and table assembly (so differential runs stay
// byte-identical), and recorded as groundwork for adaptive shard
// balancing: a scheduler can weigh shards by checkpointed cost instead
// of record count. Old checkpoint files without the field decode with
// WallNS 0.
type Record struct {
	Index  int
	Cells  []string
	Vals   []float64
	Notes  []string
	WallNS int64
}

// recordJSON is the JSONL wire form. Float64s travel as hex-float
// strings: bit-exact round-trips including ±Inf and NaN, which
// encoding/json's number encoding cannot represent. Wall time travels as
// an integer nanosecond count (omitted when zero, which keeps old and
// new encoders byte-compatible on timing-free records).
type recordJSON struct {
	I int      `json:"i"`
	C []string `json:"c,omitempty"`
	V []string `json:"v,omitempty"`
	N []string `json:"n,omitempty"`
	W int64    `json:"w,omitempty"`
}

// EncodeRecord renders one checkpoint line (no trailing newline).
func EncodeRecord(rec Record) ([]byte, error) {
	if rec.Index < 0 {
		return nil, fmt.Errorf("sweep: record index %d < 0", rec.Index)
	}
	if rec.WallNS < 0 {
		return nil, fmt.Errorf("sweep: record wall time %dns < 0", rec.WallNS)
	}
	rj := recordJSON{I: rec.Index, C: rec.Cells, N: rec.Notes, W: rec.WallNS}
	if len(rec.Vals) > 0 {
		rj.V = make([]string, len(rec.Vals))
		for i, v := range rec.Vals {
			rj.V[i] = strconv.FormatFloat(v, 'x', -1, 64)
		}
	}
	return json.Marshal(rj)
}

// DecodeRecord parses one checkpoint line.
func DecodeRecord(line []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var rj recordJSON
	if err := dec.Decode(&rj); err != nil {
		return Record{}, fmt.Errorf("sweep: bad checkpoint line: %w", err)
	}
	if dec.More() {
		return Record{}, fmt.Errorf("sweep: trailing data after checkpoint record")
	}
	if rj.I < 0 {
		return Record{}, fmt.Errorf("sweep: record index %d < 0", rj.I)
	}
	if rj.W < 0 {
		return Record{}, fmt.Errorf("sweep: record wall time %dns < 0", rj.W)
	}
	rec := Record{Index: rj.I, Cells: rj.C, Notes: rj.N, WallNS: rj.W}
	if len(rj.V) > 0 {
		rec.Vals = make([]float64, len(rj.V))
		for i, s := range rj.V {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return Record{}, fmt.Errorf("sweep: bad checkpoint value %q: %v", s, err)
			}
			rec.Vals[i] = v
		}
	}
	return rec, nil
}

// readCheckpoint parses an append-only checkpoint buffer. A final segment
// that is unterminated or undecodable is treated as a torn tail from a
// killed writer: it is dropped and the byte length of the valid prefix is
// returned so resume can truncate before appending. An undecodable line
// *before* the last is real corruption and errors.
func readCheckpoint(data []byte) (recs []Record, validLen int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// Unterminated tail: at best a record whose newline never made
			// it to disk. Recomputing one record is cheaper than trusting it.
			return recs, off, nil
		}
		line := data[off : off+nl]
		rec, derr := DecodeRecord(line)
		if derr != nil {
			if off+nl+1 >= len(data) {
				return recs, off, nil // torn final line
			}
			return nil, 0, fmt.Errorf("sweep: checkpoint corrupt at byte %d: %v", off, derr)
		}
		recs = append(recs, rec)
		off += nl + 1
	}
	return recs, off, nil
}

// ReadCheckpointFile loads a shard checkpoint, tolerating a torn tail. A
// missing file reads as an empty checkpoint. validLen is the length in
// bytes of the decodable prefix (the resume point).
func ReadCheckpointFile(path string) (recs []Record, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	rs, n, err := readCheckpoint(data)
	return rs, int64(n), err
}

// DefaultSyncEvery is the durability window used when Options.SyncEvery
// is zero: the checkpoint file is fsynced after this many appended
// records (and always on close). Durability is on by default — a record
// handed to the coordinator as done must survive a *host* crash, not just
// a process kill; the kill/resume differential harness only exercises the
// latter, which is exactly how an unsynced writer hid.
const DefaultSyncEvery = 32

// resolveSyncEvery maps the Options knob to a window: 0 → default,
// negative → disabled (no fsync at all, close included).
func resolveSyncEvery(n int) int {
	if n == 0 {
		return DefaultSyncEvery
	}
	if n < 0 {
		return 0
	}
	return n
}

// CheckpointSyncHook, when non-nil, observes every durability fsync with
// the byte offset now guaranteed on disk. Test-only: the durability
// harness and the shared backend contract suite (backendtest) use it to
// assert the sync-point invariant — no acknowledged record may sit more
// than one sync window beyond the last synced offset, the "acknowledged
// to the coordinator, lost on host crash" hole a process-kill-only
// harness cannot see. It is exported solely so backendtest (and the
// fabric coordinator's tests, where the syncs happen server-side) can
// observe it; production code must never set it.
var CheckpointSyncHook func(synced int64)

// checkpointWriter appends records to a shard file, one fully formed line
// per completed instance, serialized across worker goroutines. Each line
// is written in a single Write call so a kill can tear at most the final
// line — exactly what readCheckpoint recovers from. With syncEvery > 0
// the file is additionally fsynced every syncEvery records and on close,
// so the decodable prefix on stable storage trails the acknowledged
// records by less than one window even if the whole host dies.
type checkpointWriter struct {
	mu        sync.Mutex
	f         *os.File
	syncEvery int   // fsync window in records; 0 disables
	unsynced  int   // records appended since the last fsync
	off       int64 // bytes written (file length)
	synced    int64 // bytes covered by the last fsync
}

// openCheckpoint opens path for appending after truncating any torn tail
// at validLen (as reported by ReadCheckpointFile). syncEvery is the
// already-resolved durability window (see resolveSyncEvery).
func openCheckpoint(path string, validLen int64, syncEvery int) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(validLen, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &checkpointWriter{f: f, syncEvery: syncEvery, off: validLen, synced: validLen}, nil
}

func (w *checkpointWriter) Append(rec Record) error {
	line, err := EncodeRecord(rec)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.f.Write(line)
	w.off += int64(n)
	if err != nil {
		return err
	}
	if w.syncEvery > 0 {
		if w.unsynced++; w.unsynced >= w.syncEvery {
			return w.syncLocked()
		}
	}
	return nil
}

// syncLocked flushes the file to stable storage; callers hold w.mu.
func (w *checkpointWriter) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.unsynced = 0
	w.synced = w.off
	if CheckpointSyncHook != nil {
		CheckpointSyncHook(w.synced)
	}
	return nil
}

func (w *checkpointWriter) Close() error {
	w.mu.Lock()
	var syncErr error
	if w.syncEvery > 0 && w.unsynced > 0 {
		syncErr = w.syncLocked()
	}
	w.mu.Unlock()
	if err := w.f.Close(); syncErr == nil {
		syncErr = err
	}
	return syncErr
}
