// Package sweep is the distribution layer over the per-instance engines:
// it partitions large seeded instance families into deterministic shards,
// runs shards on worker goroutines or spawned worker processes
// (cmd/sweep), checkpoints per-shard results as append-only JSONL under a
// run directory, and merges completed shards into the exact
// registry-order tables internal/experiments emits from a serial run.
//
// The unit of work is an *instance index*, not a materialized graph: a
// Spec names a registered Scenario plus a base seed and a count, and
// instance idx derives its own rng from InstanceSeed(seed, idx). Because
// the derivation ignores shard boundaries, any shard count — and any
// kill/resume interleaving — reproduces bit-identical records, which the
// differential tests assert against the serial oracle.
package sweep

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"unicode"

	"netdesign/internal/instancefile"
)

// Spec is a sharded sweep specification: a seeded instance-family
// generator, not a materialized instance set.
type Spec struct {
	Scenario string             // registered scenario name
	Seed     int64              // base seed; instance idx uses InstanceSeed(Seed, idx)
	Count    int                // number of instances in the family
	Size     int                // base instance-size parameter (scenario-interpreted)
	Params   map[string]float64 // scenario-specific knobs (optional)
}

// Param returns the named parameter or def when absent.
func (s Spec) Param(name string, def float64) float64 {
	if v, ok := s.Params[name]; ok {
		return v
	}
	return def
}

// Validate checks the spec's shape (it does not resolve the scenario —
// ParseSpec must accept specs for scenarios the binary doesn't link).
func (s Spec) Validate() error {
	if s.Scenario == "" {
		return fmt.Errorf("sweep: spec has no scenario")
	}
	if strings.IndexFunc(s.Scenario, unicode.IsSpace) >= 0 {
		return fmt.Errorf("sweep: scenario name %q contains whitespace", s.Scenario)
	}
	if s.Count < 1 {
		return fmt.Errorf("sweep: count %d < 1", s.Count)
	}
	if s.Size < 0 {
		return fmt.Errorf("sweep: size %d < 0", s.Size)
	}
	for name, v := range s.Params {
		// Full unicode.IsSpace, matching the strings.Fields tokenizer in
		// ParseSpec: anything narrower lets Write emit a spec Parse then
		// splits differently and rejects.
		if name == "" || strings.IndexFunc(name, unicode.IsSpace) >= 0 {
			return fmt.Errorf("sweep: bad param name %q", name)
		}
		if v != v { // NaN params would break spec equality checks on resume
			return fmt.Errorf("sweep: param %q is NaN", name)
		}
	}
	return nil
}

// WriteSpec serializes a spec in the line-oriented format of the repo's
// other codecs (instancefile):
//
//	sweep <scenario>
//	seed <int64>
//	count <int>
//	size <int>
//	param <name> <float>      (sorted by name)
//
// Floats use the shortest round-tripping representation, so
// ParseSpec(WriteSpec(s)) == s exactly.
func WriteSpec(w io.Writer, s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sweep %s\n", s.Scenario)
	fmt.Fprintf(&sb, "seed %d\n", s.Seed)
	fmt.Fprintf(&sb, "count %d\n", s.Count)
	fmt.Fprintf(&sb, "size %d\n", s.Size)
	names := make([]string, 0, len(s.Params))
	for name := range s.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&sb, "param %s %s\n", name, strconv.FormatFloat(s.Params[name], 'g', -1, 64))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// ParseSpec parses the WriteSpec format. Blank lines and '#' comments are
// ignored; repeated scalar directives take the last value; repeated param
// names are an error.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	sawSweep, sawCount := false, false
	sc := instancefile.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "sweep":
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("sweep: line %d: want 'sweep <scenario>'", lineNo)
			}
			s.Scenario = fields[1]
			sawSweep = true
		case "seed":
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("sweep: line %d: want 'seed <int64>'", lineNo)
			}
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return Spec{}, fmt.Errorf("sweep: line %d: bad seed %q", lineNo, fields[1])
			}
			s.Seed = v
		case "count":
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("sweep: line %d: want 'count <int>'", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 1 {
				return Spec{}, fmt.Errorf("sweep: line %d: bad count %q", lineNo, fields[1])
			}
			s.Count = v
			sawCount = true
		case "size":
			if len(fields) != 2 {
				return Spec{}, fmt.Errorf("sweep: line %d: want 'size <int>'", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return Spec{}, fmt.Errorf("sweep: line %d: bad size %q", lineNo, fields[1])
			}
			s.Size = v
		case "param":
			if len(fields) != 3 {
				return Spec{}, fmt.Errorf("sweep: line %d: want 'param <name> <value>'", lineNo)
			}
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return Spec{}, fmt.Errorf("sweep: line %d: bad param value %q", lineNo, fields[2])
			}
			if s.Params == nil {
				s.Params = map[string]float64{}
			}
			if _, dup := s.Params[fields[1]]; dup {
				return Spec{}, fmt.Errorf("sweep: line %d: duplicate param %q", lineNo, fields[1])
			}
			s.Params[fields[1]] = v
		default:
			return Spec{}, fmt.Errorf("sweep: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return Spec{}, err
	}
	if !sawSweep {
		return Spec{}, fmt.Errorf("sweep: missing 'sweep' directive")
	}
	if !sawCount {
		return Spec{}, fmt.Errorf("sweep: missing 'count' directive")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Equal reports whether two specs describe the same sweep.
func (s Spec) Equal(o Spec) bool {
	if s.Scenario != o.Scenario || s.Seed != o.Seed || s.Count != o.Count || s.Size != o.Size {
		return false
	}
	if len(s.Params) != len(o.Params) {
		return false
	}
	for k, v := range s.Params {
		if ov, ok := o.Params[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// InstanceSeed derives instance idx's rng seed from the sweep's base seed
// via a SplitMix64 step: shard-independent, collision-scrambled and
// allocation-free, so any partition of [0, Count) regenerates identical
// instances.
func InstanceSeed(seed int64, idx int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(idx+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}
